package repro

import (
	"testing"
)

func TestRunDefaultsMachine(t *testing.T) {
	res, err := Run(Config{App: EM3D, Mechanism: SM, Scale: ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	if res.Bisection < 17 || res.Bisection > 19 {
		t.Errorf("default machine bisection %.1f, want ~18", res.Bisection)
	}
}

func TestRunAllAppsAllMechanisms(t *testing.T) {
	for _, app := range Apps {
		for _, mech := range Mechanisms {
			res, err := Run(Config{App: app, Mechanism: mech, Scale: ScaleTiny})
			if err != nil {
				t.Fatalf("%s/%s: %v", app, mech, err)
			}
			if res.Cycles <= 0 {
				t.Fatalf("%s/%s: empty result", app, mech)
			}
		}
	}
}

func TestBisectionSweepFacade(t *testing.T) {
	pts, err := BisectionSweep(EM3D, []Mechanism{SM, MPPoll}, []float64{0, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// The paper's Figure 8 claim is about absolute runtime curves: the
	// high-volume shared-memory curve rises faster (in cycles) than the
	// message-passing curve as bandwidth drops.
	smSlow := pts[1].Results[SM].Cycles - pts[0].Results[SM].Cycles
	mpSlow := pts[1].Results[MPPoll].Cycles - pts[0].Results[MPPoll].Cycles
	if smSlow <= 0 {
		t.Error("SM did not slow down with reduced bisection")
	}
	if smSlow <= mpSlow {
		t.Errorf("SM slowed by %d cycles, MP by %d; SM should lose more", smSlow, mpSlow)
	}
}

func TestLatencySweepFacade(t *testing.T) {
	pts, err := LatencySweep(EM3D, []Mechanism{SM, MPPoll}, []int64{15, 100})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Results[SM].Cycles <= pts[0].Results[SM].Cycles {
		t.Error("SM insensitive to emulated latency")
	}
	if pts[1].Results[MPPoll].Cycles != pts[0].Results[MPPoll].Cycles {
		t.Error("MP reference curve moved")
	}
}

func TestClockSweepFacade(t *testing.T) {
	pts, err := ClockSweep(EM3D, []Mechanism{SM}, []float64{20, 14})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].X >= pts[0].X {
		t.Error("slower clock should lower relative network latency")
	}
}

func TestMissPenaltiesFacade(t *testing.T) {
	mp := MeasureMissPenalties(DefaultMachine())
	if mp.LocalRead < 8 || mp.LocalRead > 20 {
		t.Errorf("local read = %.1f, want ~11", mp.LocalRead)
	}
	if mp.RemoteCleanRead <= mp.LocalRead {
		t.Error("remote read should exceed local")
	}
}

func TestCrossoverFacade(t *testing.T) {
	pts, err := BisectionSweep(EM3D, []Mechanism{SM, MPPoll}, []float64{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Whether or not it crosses at this scale, the call must be stable.
	if x, found := Crossover(pts, SM, MPPoll); found && (x < 0 || x > 20) {
		t.Errorf("crossover out of range: %.1f", x)
	}
}

func TestEmulateMachineFacade(t *testing.T) {
	cfg, note, err := EmulateMachine("Stanford DASH")
	if err != nil {
		t.Fatal(err)
	}
	if !note.SharedMemory {
		t.Error("DASH supports shared memory")
	}
	res, err := Run(Config{App: EM3D, Mechanism: SM, Scale: ScaleTiny, Machine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("empty emulated run")
	}
	if _, _, err := EmulateMachine("VAX"); err == nil {
		t.Error("unknown machine accepted")
	}
}

func TestTableMachinesFacade(t *testing.T) {
	if len(TableMachines()) != 14 {
		t.Errorf("Table 1 has %d rows", len(TableMachines()))
	}
}

func TestMeasureLogPFacade(t *testing.T) {
	lp := MeasureLogP(DefaultMachine())
	if lp.P != 32 || lp.O <= 0 {
		t.Errorf("implausible LogP: %+v", lp)
	}
}

func TestWithRelaxedConsistencyFacade(t *testing.T) {
	cfg := WithRelaxedConsistency(DefaultMachine())
	res, err := Run(Config{App: EM3D, Mechanism: SM, Scale: ScaleTiny, Machine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatal("empty RC run")
	}
}
