package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	fig := flag.String("fig", "", "figure to regenerate (1-10, S1 for the node-scaling experiment, or S2 for the noise-sensitivity experiment; 6 is the topology diagram)")
	table := flag.Int("table", 0, "table number to regenerate (1 or 2)")
	all := flag.Bool("all", false, "regenerate every paper figure and table (S1 runs machines up to 512 nodes and must be requested explicitly)")
	list := flag.Bool("list", false, "list every artifact paperbench can produce, then exit")
	nodes := flag.Int("nodes", 0, "machine size in nodes for all figures (power of two up to 512; 0 = the paper's 32-node 8x4 mesh)")
	cacheDir := flag.String("cache", "", "persist run results in this directory and reuse them across processes")
	appFlag := flag.String("app", "", "restrict sweep figures to one app (default: all four)")
	scaleName := flag.String("scale", "", "workload scale override (tiny, sweep, default, full)")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files into this directory")
	modelCmp := flag.Bool("model", false, "print the analytical model vs simulator comparison")
	predictFlag := flag.Bool("predict", false, "solve the sweep figures (8, 9, 10) from one instrumented run per "+
		"mechanism via the dependency-graph model instead of simulating every point, and print the "+
		"predicted-vs-simulated validation matrix with -fig 4; with -model, adds the graph-vs-closed-form comparison")
	prune := flag.Bool("prune", false, "with -predict: simulate only the base, low-confidence, and "+
		"near-crossover points of each sweep instead of validating the whole grid")
	predictErr := flag.Float64("predicterr", 0, "with -predict: exit nonzero if the worst "+
		"predicted-vs-simulated error over all validated points exceeds this percentage (0 = report only)")
	jobs := flag.Int("j", 0, "parallel simulation workers (0 = all cores, 1 = serial); "+
		"with sharded runs the per-worker budget is jobs/shards so cores are never oversubscribed")
	shards := flag.Int("shards", 0, "per-run engine shards: 0 = auto (tiled engine with "+
		strconv.Itoa(machine.AutoShardWorkers)+" workers at "+strconv.Itoa(machine.AutoShardNodes)+"+ nodes), "+
		"-1 = force the serial engine, N = force the tiled engine with N workers; "+
		"configs the tiled engine cannot run (cross-traffic, ideal network, jitter faults, "+
		"stochastic noise) fall back to serial — observability capture is shard-safe")
	faults := flag.String("faults", "", "deterministic fault injection spec, e.g. "+
		"'jitter:max=200ns,prob=0.1;outage:node=*,start=10us,dur=2us,every=50us' (robustness studies)")
	seed := flag.Uint64("seed", 1, "fault schedule seed (used with -faults)")
	noise := flag.String("noise", figures.DefaultNoiseSpec, "stochastic noise spec for the Figure S2 "+
		"runtime-distribution panel (hostnoise/netnoise clauses; see internal/fault)")
	noiseSeeds := flag.Int("noiseseeds", 8, "number of noise seeds (1..N) for the Figure S2 runtime distribution")
	timelineDir := flag.String("timeline", "", "write a Perfetto trace-event JSON timeline and a metrics "+
		"snapshot per executed run into this directory (enables metrics collection; byte-identical across reruns)")
	critpath := flag.Bool("critpath", false, "profile the critical path: attribute every cycle of the "+
		"last-finishing processor to compute / memory stall / network latency / network bandwidth / "+
		"synchronization (prints a table with -fig 4, adds a critpath_fig4.csv with -csv, a crit "+
		"record per run with -runlog, and a critpath lane with -timeline)")
	spanCap := flag.Int("spancap", 4096, "thread-state spans retained per run for -timeline (ring buffer capacity)")
	runlog := flag.String("runlog", "", "write one JSON line per simulation run (fingerprint, memoization, "+
		"wall time, outcome, hottest links) to this file")
	dumpTrace := flag.Int("dumptrace", 0, "retain up to n protocol trace events per run and dump them to stderr "+
		"(with -timeline, the events also appear in the timeline JSON)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a host heap profile to this file on success")
	flag.Parse()

	if *faults != "" {
		fc, err := fault.Parse(*faults)
		if err != nil {
			log.Fatal(err)
		}
		if fc.NoiseEnabled() {
			log.Fatal("-faults carries hostnoise/netnoise/delay clauses; those belong in -noise (which has its own seeds)")
		}
	}
	if *noise != "" {
		nc, err := fault.Parse(*noise)
		if err != nil {
			log.Fatal(err)
		}
		if nc.FaultsEnabled() {
			log.Fatal("-noise carries jitter/outage/stall clauses; those belong in -faults")
		}
	}
	if *noiseSeeds < 1 {
		log.Fatal("-noiseseeds must be at least 1")
	}
	if (*prune || *predictErr != 0) && !*predictFlag {
		log.Fatal("-prune and -predicterr only apply with -predict")
	}
	popt := core.PredictOptions{Prune: *prune}
	// predMax tracks the worst predicted-vs-simulated error across every
	// predicted sweep of the invocation; -predicterr gates the exit code
	// on it.
	predMax := 0.0
	notePred := func(ps *core.PredictedSweep) {
		if m, _, _ := ps.MaxErrorPct(); m > predMax {
			predMax = m
		}
	}

	cfg := machine.DefaultConfig()
	if *nodes != 0 {
		var err error
		cfg, err = machine.ConfigForNodes(*nodes)
		if err != nil {
			log.Fatal(err)
		}
	}
	cfg.FaultSpec = *faults
	cfg.FaultSeed = *seed
	cfg.Shards = *shards
	cfg.CritPath = *critpath

	if *list {
		figures.PrintCatalog(os.Stdout)
		if n := cfg.EffectiveShards(); n > 0 {
			fmt.Printf("\nengine: tiled (%dx%d mesh in %d row-band tiles, %d workers, lookahead %v)\n",
				cfg.Width, cfg.Height, cfg.TileCount(), n, cfg.HopLatency)
		} else {
			fmt.Printf("\nengine: serial (%dx%d mesh; the tiled engine auto-selects at %d+ nodes, or force it with -shards N)\n",
				cfg.Width, cfg.Height, machine.AutoShardNodes)
		}
		return
	}

	// Split the core budget between sweep workers and per-run shards.
	core.SetDefaultWorkers(core.BudgetWorkers(*jobs, cfg.EffectiveShards()))

	// Profiling hooks. finishProfiles runs before every exit path that
	// matters (success and sweep failure); log.Fatal paths lose the
	// profile, which is fine — a fatally misconfigured run has nothing
	// worth profiling.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	finishProfiles := func() {
		if *cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC() // report settled live-heap, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}
	}

	// Stats and failures are reported explicitly (not deferred): failure
	// reporting decides the exit code, and os.Exit skips defers.
	report := func() int {
		hits, executed := core.DefaultRunner.Stats()
		if executed > 0 || core.DefaultRunner.DiskHits() > 0 {
			line := fmt.Sprintf("paperbench: %d simulations on %d workers (%d cache hits",
				executed, core.DefaultRunner.Workers(), hits)
			if *cacheDir != "" {
				line += fmt.Sprintf(", %d from disk", core.DefaultRunner.DiskHits())
			}
			fmt.Fprintln(os.Stderr, line+")")
		}
		fails := core.DefaultRunner.Failures()
		if len(fails) == 0 {
			return 0
		}
		fmt.Fprintf(os.Stderr, "paperbench: %d run(s) FAILED; surviving points were still computed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %v\n", f)
		}
		return 1
	}

	writeCSV := func(name string, fn func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s"+"\n", f.Name())
	}

	out := os.Stdout
	if *cacheDir != "" {
		dc, err := core.OpenDiskCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		core.DefaultRunner.SetDiskCache(dc)
	}

	// Observability sinks. All sim-side collection is passive (counters
	// and ring buffers keyed off simulated time), so enabling it changes
	// no figure output.
	if *timelineDir != "" || *runlog != "" || *dumpTrace > 0 {
		tele := &core.Telemetry{Heartbeat: os.Stderr}
		if *timelineDir != "" {
			if err := os.MkdirAll(*timelineDir, 0o755); err != nil {
				log.Fatal(err)
			}
			tele.TimelineDir = *timelineDir
			cfg.Metrics = true
			cfg.SpanCap = *spanCap
		}
		if *runlog != "" {
			f, err := os.Create(*runlog)
			if err != nil {
				log.Fatal(err)
			}
			tele.RunLog = f // os.File writes are unbuffered; exit needs no close
		}
		if *dumpTrace > 0 {
			cfg.TraceCap = *dumpTrace
			tele.TraceOut = os.Stderr
		}
		core.DefaultRunner.SetTelemetry(tele)
	}

	appsToRun := core.AppNames
	if *appFlag != "" {
		appsToRun = []core.AppName{core.AppName(*appFlag)}
	}
	scOr := func(def core.Scale) core.Scale {
		switch *scaleName {
		case "tiny":
			return core.ScaleTiny
		case "sweep":
			return core.ScaleSweep
		case "default":
			return core.ScaleDefault
		case "full":
			return core.ScaleFull
		}
		return def
	}

	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	want := func(n int) bool { return *all || *fig == strconv.Itoa(n) }
	wantS1 := strings.EqualFold(*fig, "S1") // deliberately outside -all: runs machines up to 512 nodes
	wantS2 := strings.EqualFold(*fig, "S2") // deliberately outside -all: every point is a fresh seed, nothing memoizes across specs
	sep := func() {
		fmt.Fprintln(out, "\n----------------------------------------------------------------")
	}

	ranSomething := false

	if want(3) {
		ranSomething = true
		mp := figures.PrintFig3(out, cfg)
		writeCSV("fig3_miss_penalties.csv", func(w *os.File) error {
			return figures.WriteMissPenaltiesCSV(w, mp)
		})
		sep()
	}
	var fig4rows []figures.Fig4Row
	if want(4) || want(5) {
		ranSomething = true
		rows, err := figures.Fig4Data(scOr(core.ScaleDefault), cfg)
		check(err)
		fig4rows = rows
	}
	if want(4) {
		figures.PrintFig4(out, fig4rows)
		writeCSV("fig4_breakdowns.csv", func(w *os.File) error {
			return figures.WriteFig4CSV(w, fig4rows)
		})
		if *critpath {
			fmt.Fprintln(out)
			figures.PrintCritPath(out, fig4rows)
			writeCSV("critpath_fig4.csv", func(w *os.File) error {
				return figures.WriteCritPathCSV(w, fig4rows)
			})
		}
		if *predictFlag {
			fmt.Fprintln(out)
			prows, pstats, err := figures.PredFig4(out, appsToRun, scOr(core.ScaleDefault), cfg, popt)
			check(err)
			if pstats.MaxPct > predMax {
				predMax = pstats.MaxPct
			}
			writeCSV("predicted_fig4.csv", func(w *os.File) error {
				return figures.WritePredictedFig4CSV(w, prows)
			})
			writeCSV("predicted_tolerance.csv", func(w *os.File) error {
				return figures.WriteLatencyToleranceCSV(w, prows)
			})
		}
		sep()
	}
	if want(5) {
		figures.PrintFig5(out, fig4rows)
		sep()
	}
	if want(6) {
		ranSomething = true
		fmt.Fprintln(out, "Figure 6: cross-traffic topology — I/O nodes on both edge columns of the")
		fmt.Fprintln(out, "8x4 mesh stream messages across the bisection in both directions; see")
		fmt.Fprintln(out, "internal/mesh (StartCrossTraffic) and its tests for the geometry.")
		sep()
	}
	if want(7) {
		ranSomething = true
		for _, app := range appsToRun[:1] { // the paper shows one app here
			_, err := figures.Fig7(out, app, scOr(core.ScaleSweep), cfg, 10,
				[]int{16, 32, 64, 128, 256})
			check(err)
		}
		sep()
	}
	var fig8 map[core.AppName][]core.SweepPoint
	if want(8) || want(1) {
		ranSomething = true
		fig8 = map[core.AppName][]core.SweepPoint{}
		rates := []float64{0, 4, 8, 12, 14, 16}
		for _, app := range appsToRun {
			app := app
			if *predictFlag {
				ps, err := figures.PredFig8(out, app, scOr(core.ScaleSweep), cfg, rates, popt)
				check(err)
				notePred(ps)
				fig8[app] = ps.HybridPoints()
				writeCSV(fmt.Sprintf("predicted_fig8_%s.csv", app), func(w *os.File) error {
					return figures.WritePredictedCSV(w, "bisection_bytes_per_cycle", apps.Mechanisms, ps)
				})
			} else {
				pts, err := figures.Fig8(out, app, scOr(core.ScaleSweep), cfg, rates)
				check(err)
				fig8[app] = pts
				writeCSV(fmt.Sprintf("fig8_%s.csv", app), func(w *os.File) error {
					return figures.WriteSweepCSV(w, "bisection_bytes_per_cycle", apps.Mechanisms, pts)
				})
			}
			fmt.Fprintln(out)
		}
		sep()
	}
	if want(1) {
		for _, app := range appsToRun {
			fmt.Fprintf(out, "[%s] ", app)
			figures.Fig1(out, fig8[app], []apps.Mechanism{apps.SM, apps.MPPoll})
		}
		sep()
	}
	if want(9) {
		ranSomething = true
		mhzs := []float64{20, 18, 16, 14}
		for _, app := range appsToRun {
			app := app
			if *predictFlag {
				ps, err := figures.PredFig9(out, app, scOr(core.ScaleSweep), cfg, mhzs, popt)
				check(err)
				notePred(ps)
				writeCSV(fmt.Sprintf("predicted_fig9_%s.csv", app), func(w *os.File) error {
					return figures.WritePredictedCSV(w, "net_latency_cycles", apps.Mechanisms, ps)
				})
			} else {
				pts, err := figures.Fig9(out, app, scOr(core.ScaleSweep), cfg, mhzs)
				check(err)
				writeCSV(fmt.Sprintf("fig9_%s.csv", app), func(w *os.File) error {
					return figures.WriteSweepCSV(w, "net_latency_cycles", apps.Mechanisms, pts)
				})
			}
			fmt.Fprintln(out)
		}
		sep()
	}
	var fig10 map[core.AppName][]core.SweepPoint
	if want(10) || want(2) {
		ranSomething = true
		fig10 = map[core.AppName][]core.SweepPoint{}
		lats := []int64{15, 25, 50, 100, 200}
		for _, app := range appsToRun {
			app := app
			if *predictFlag {
				ps, err := figures.PredFig10(out, app, scOr(core.ScaleSweep), cfg, lats, popt)
				check(err)
				notePred(ps)
				fig10[app] = ps.HybridPoints()
				writeCSV(fmt.Sprintf("predicted_fig10_%s.csv", app), func(w *os.File) error {
					return figures.WritePredictedCSV(w, "one_way_latency_cycles", apps.Mechanisms, ps)
				})
			} else {
				pts, err := figures.Fig10(out, app, scOr(core.ScaleSweep), cfg, lats)
				check(err)
				fig10[app] = pts
				writeCSV(fmt.Sprintf("fig10_%s.csv", app), func(w *os.File) error {
					return figures.WriteSweepCSV(w, "one_way_latency_cycles", apps.Mechanisms, pts)
				})
			}
			fmt.Fprintln(out)
		}
		sep()
	}
	if want(2) {
		for _, app := range appsToRun {
			fmt.Fprintf(out, "[%s] ", app)
			figures.Fig2(out, fig10[app], []apps.Mechanism{apps.SM, apps.SMPrefetch, apps.MPPoll})
		}
		sep()
	}
	if wantS1 {
		ranSomething = true
		for _, app := range appsToRun {
			fixed, scaled, err := figures.FigS1(out, app, scOr(core.ScaleSweep), cfg,
				core.DefaultScalingNodes)
			check(err)
			app := app
			writeCSV(fmt.Sprintf("figS1_%s.csv", app), func(w *os.File) error {
				return figures.WriteScalingCSV(w, apps.Mechanisms, fixed, scaled)
			})
			fmt.Fprintln(out)
		}
		sep()
	}
	if wantS2 {
		ranSomething = true
		seeds := figures.DefaultNoiseSeeds(*noiseSeeds)
		for _, app := range appsToRun {
			dists, props, err := figures.FigS2(out, app, scOr(core.ScaleSweep), cfg, *noise, seeds, 0)
			check(err)
			app := app
			writeCSV(fmt.Sprintf("figS2_%s.csv", app), func(w *os.File) error {
				return figures.WriteNoiseCSV(w, dists, props)
			})
			fmt.Fprintln(out)
		}
		sep()
	}
	if *modelCmp || *all {
		ranSomething = true
		for _, app := range appsToRun {
			if _, err := figures.PrintModelComparison(out, app, scOr(core.ScaleSweep), cfg,
				[]int64{15, 50, 100, 200}); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(out)
			if *predictFlag {
				graphErr, _, err := figures.PrintGraphVsClosedForm(out, app, scOr(core.ScaleSweep), cfg,
					[]int64{15, 50, 100, 200})
				check(err)
				if graphErr.MaxPct > predMax {
					predMax = graphErr.MaxPct
				}
				fmt.Fprintln(out)
			}
		}
		figures.PrintLogP(out, cfg)
		sep()
	}
	if *all || *table == 1 || *table == 2 {
		ranSomething = true
		fmt.Fprintln(out, "Tables 1 and 2 are printed by the `machines` command:")
		fmt.Fprintln(out, "  go run ./cmd/machines            # Table 1")
		fmt.Fprintln(out, "  go run ./cmd/machines -relative  # Table 2")
	}
	if !ranSomething {
		flag.Usage()
		os.Exit(2)
	}
	finishProfiles()
	code := report()
	if *predictFlag && *predictErr > 0 {
		verdict := "within"
		if predMax > *predictErr {
			verdict = "EXCEEDS"
			if code == 0 {
				code = 1
			}
		}
		fmt.Fprintf(os.Stderr, "paperbench: worst predicted-vs-simulated error %.1f%% %s the -predicterr bound %.1f%%\n",
			predMax, verdict, *predictErr)
	}
	if code != 0 {
		os.Exit(code)
	}
}
