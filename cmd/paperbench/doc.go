// Command paperbench regenerates the paper's tables and figures on the
// simulated machine. Select artifacts with -fig / -table, or run the
// whole evaluation with -all.
//
//	paperbench -fig 4              # Figure 4 runtime breakdowns
//	paperbench -fig 8 -app em3d    # Figure 8 bisection sweep for EM3D
//	paperbench -fig S1 -scale tiny # node-scaling experiment, 32-512 nodes
//	paperbench -fig S2 -app em3d   # noise-sensitivity + delay-propagation experiment
//	paperbench -all -scale sweep   # everything, at sweep scale
//	paperbench -list               # catalog of every artifact
package main
