package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also lint _test.go files")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	selected, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		for _, c := range selected {
			fmt.Printf("simlint/%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, flag.Args(), *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, selected)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("simlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
