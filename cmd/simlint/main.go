package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "also lint _test.go files")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the checks and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	selected, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *list {
		for _, c := range selected {
			fmt.Printf("simlint/%-12s [%s] %s\n", c.Name, c.Scope, c.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(root, flag.Args(), *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, selected)
	cwd, _ := os.Getwd()
	for i := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Pos.Filename = rel
			}
		}
	}
	if *jsonOut {
		type jsonDiag struct {
			Check   string `json:"check"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Message string `json:"message"`
		}
		out := make([]jsonDiag, len(diags)) // [] not null when clean
		for i, d := range diags {
			out[i] = jsonDiag{
				Check: d.Check, File: d.Pos.Filename,
				Line: d.Pos.Line, Column: d.Pos.Column,
				Message: d.Message,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("simlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
