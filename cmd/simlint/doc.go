// Command simlint runs the repository's determinism and
// simulation-safety analyzer suite (see internal/lint). It is part of
// `make check` and CI:
//
//	simlint ./...            # lint every package in the module
//	simlint -tests ./...     # include _test.go files
//	simlint -checks maporder,wallclock ./internal/apps/...
//	simlint -list            # describe the suite
//
// Diagnostics print as file:line:col: simlint/<check>: message, and the
// exit status is 1 when any diagnostic survives suppression. Suppress a
// finding with a written reason:
//
//	//lint:allow simlint/<check> <reason>
//
// on the flagged line or the line directly above it.
package main
