// Command benchengine measures the serial event loop against the tiled
// conservative-window engine on single runs, and emits the results as
// machine-readable JSON (the BENCH_engine.json trajectory; see
// `make bench-save`).
//
// Each point runs one application/mechanism at a node count with the
// engine forced serial (-1) or tiled with an explicit worker count, and
// reports best-of-N wall time, the simulated result's cycle count, and
// the tiled engine's tile/window shape. Speedups are relative to the
// serial engine at the same node count. Wall times are host-dependent
// by nature — the JSON records the host's core budget so a single-core
// container's numbers are not mistaken for a parallel speedup
// measurement.
//
//	benchengine                      # default grid to stdout
//	benchengine -o BENCH_engine.json # write the tracked trajectory
//	benchengine -nodes 512 -shards -1,4 -reps 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type point struct {
	Nodes   int     `json:"nodes"`
	Engine  string  `json:"engine"` // "serial" or "tiled"
	Shards  int     `json:"shards"` // the -shards value forced for the run
	Workers int     `json:"workers,omitempty"`
	Reps    int     `json:"reps"`
	WallMS  float64 `json:"wall_ms"` // best-of-reps
	Cycles  int64   `json:"cycles"`
	Tiles   int     `json:"tiles,omitempty"`
	Windows uint64  `json:"windows,omitempty"`
	// SpeedupVsSerial is serial wall / this wall at the same node count;
	// present once the serial point for that node count has run.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

type report struct {
	Benchmark string   `json:"benchmark"`
	App       string   `json:"app"`
	Mech      string   `json:"mech"`
	Scale     string   `json:"scale"`
	Host      hostInfo `json:"host"`
	Note      string   `json:"note"`
	Points    []point  `json:"points"`
}

func main() {
	var (
		out    = flag.String("o", "", "write JSON here (default stdout)")
		nodes  = flag.String("nodes", "32,128,512", "comma-separated node counts")
		shards = flag.String("shards", "-1,1,2,4", "comma-separated -shards values per node count (-1 serial, N tiled with N workers)")
		reps   = flag.Int("reps", 3, "repetitions per point; best wall time is kept")
		weak   = flag.Bool("weak", false, "weak scaling (grow the problem with the machine, the Figure S1 scaled curve); default is the fixed-problem curve")
	)
	flag.Parse()
	if err := run(*out, *nodes, *shards, *reps, *weak); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine:", err)
		os.Exit(1)
	}
}

func run(out, nodesCSV, shardsCSV string, reps int, weak bool) error {
	nodeCounts, err := parseInts(nodesCSV)
	if err != nil {
		return err
	}
	shardList, err := parseInts(shardsCSV)
	if err != nil {
		return err
	}
	if reps < 1 {
		reps = 1
	}
	scaling := "fixed-problem"
	if weak {
		scaling = "weak-scaled"
	}
	rep := report{
		Benchmark: "engine-serial-vs-tiled/" + scaling,
		App:       string(core.EM3D),
		Mech:      apps.SM.String(),
		Scale:     core.ScaleSweep.String(),
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GoVersion: runtime.Version(),
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Note: "wall times are host-dependent; tiled speedup over serial requires " +
			"gomaxprocs > 1 (on a single-core host extra workers only add barrier " +
			"overhead, and auto-sharding clamps to one worker there). Simulated " +
			"results (cycles) are engine-shape-dependent but identical across " +
			"worker counts for the same shards setting.",
	}
	serialWall := map[int]float64{}
	for _, n := range nodeCounts {
		for _, s := range shardList {
			cfg, err := machine.ConfigForNodes(n)
			if err != nil {
				return err
			}
			cfg.Shards = s
			p := point{Nodes: n, Shards: s, Reps: reps, Engine: "serial"}
			if cfg.Tiled() {
				p.Engine = "tiled"
				p.Workers = cfg.EffectiveShards()
			}
			for r := 0; r < reps; r++ {
				start := time.Now()
				res, err := core.Run(core.RunConfig{
					App: core.EM3D, Mech: apps.SM, Scale: core.ScaleSweep,
					Machine: cfg, ScaleProblem: weak, SkipValidate: true,
				})
				if err != nil {
					return fmt.Errorf("%d nodes, shards %d: %w", n, s, err)
				}
				wall := float64(time.Since(start).Microseconds()) / 1000
				if r == 0 || wall < p.WallMS {
					p.WallMS = wall
				}
				p.Cycles, p.Tiles, p.Windows = res.Cycles, res.Tiles, res.Windows
			}
			if p.Engine == "serial" {
				serialWall[n] = p.WallMS
			}
			if sw, ok := serialWall[n]; ok && sw > 0 {
				p.SpeedupVsSerial = round2(sw / p.WallMS)
			}
			p.WallMS = round2(p.WallMS)
			rep.Points = append(rep.Points, p)
			fmt.Fprintf(os.Stderr, "%4d nodes  shards %2d  %-6s  %8.1fms  cycles %d\n",
				n, s, p.Engine, p.WallMS, p.Cycles)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %v", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", csv)
	}
	return out, nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
