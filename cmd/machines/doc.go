// Command machines prints the paper's Table 1 (parameter estimates for
// fourteen 32-processor multiprocessors) and, with -relative, Table 2
// (the same parameters in units of local cache-miss latency).
package main
