package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/machines"
)

func main() {
	relative := flag.Bool("relative", false, "print Table 2 (relative to local miss latency)")
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	na := func(v float64, format string) string {
		if v == machines.NA {
			return "N/A"
		}
		return fmt.Sprintf(format, v)
	}

	if *relative {
		fmt.Println("Table 2: Multiprocessor parameter estimates recalculated in terms of local cache-miss latency.")
		fmt.Fprintln(tw, "Machine\tBsctn BW (bytes/lcl-miss)\tNet Lat (lcl-miss times)")
		for _, m := range machines.Table1() {
			bis := m.BisPerLocalMiss()
			if m.PaperBisPerMiss != machines.NA {
				// The paper's printed value differs from its own formula
				// for this row; show both.
				fmt.Fprintf(tw, "%s\t%s (paper prints %.0f)\t%s\n", m.Name,
					na(bis, "%.0f"), m.PaperBisPerMiss, na(m.NetLatPerLocalMiss(), "%.1f"))
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Name, na(bis, "%.0f"), na(m.NetLatPerLocalMiss(), "%.1f"))
		}
		return
	}

	fmt.Println("Table 1: Parameter estimates for various 32-processor multiprocessors.")
	fmt.Println("Network Latency is one-way transit of a 24-byte packet; latencies in processor cycles.")
	fmt.Fprintln(tw, "Machine\tMHz\tTopology\tBisection MB/s\tbytes/cycle\tNet Lat\tRemote Miss\tLocal Miss\tNote")
	for _, m := range machines.Table1() {
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			m.Name, m.MHz, m.Topology,
			na(m.BisectionMBs, "%.0f"), na(m.BytesPerCycle, "%.1f"),
			na(m.NetLatency, "%.0f"), na(m.RemoteMiss, "%.0f"),
			na(m.LocalMiss, "%.0f"), m.Note)
	}
}
