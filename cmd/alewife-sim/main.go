package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("alewife-sim: ")

	appName := flag.String("app", "em3d", "application: em3d, unstruc, iccg, moldyn")
	mechName := flag.String("mech", "sm", "mechanism: sm, sm+pf, mp-int, mp-poll, bulk")
	scaleName := flag.String("scale", "default", "workload scale: tiny, sweep, default, full")
	clock := flag.Float64("clock", 20, "processor clock in MHz (the network is asynchronous)")
	cross := flag.Float64("cross", 0, "cross-traffic rate in bytes/cycle (bisection emulation)")
	xmsg := flag.Int("xmsg", 64, "cross-traffic message size in bytes")
	idealLat := flag.Int64("ideal-lat", 0, "if nonzero, uniform one-way latency in cycles (ideal network)")
	validate := flag.Bool("validate", true, "check the result against the sequential reference")
	traceN := flag.Int("trace", 0, "dump the last N protocol/message events after the run")
	flag.Parse()

	mech, err := parseMech(*mechName)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := parseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := machine.DefaultConfig()
	cfg.ClockMHz = *clock
	cfg.IdealNetOneWayCycles = *idealLat
	cfg.TraceCap = *traceN
	if *cross > 0 {
		cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: *xmsg, BytesPerCycle: *cross}
	}

	res, err := core.Run(core.RunConfig{
		App: core.AppName(*appName), Mech: mech, Scale: sc,
		Machine: cfg, SkipValidate: !*validate,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s / %s on %d-node machine @ %.0f MHz (scale %s)\n",
		res.App, res.Mech, cfg.Nodes(), cfg.ClockMHz, sc)
	fmt.Printf("runtime: %d processor cycles (%v)\n", res.Cycles, res.Time)
	fmt.Printf("bisection: native %.1f bytes/cycle, emulated %.1f\n",
		res.Bisection, res.EmulatedBisection)

	clk := sim.NewClock(cfg.ClockMHz)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ntime breakdown\tcycles (sum over processors)\tshare")
	bd := res.Breakdown
	for b := stats.BucketSync; b <= stats.BucketCompute; b++ {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", b, clk.ToCycles(bd.T[b]), 100*bd.Frac(b))
	}
	v := res.Volume
	fmt.Fprintln(tw, "\ncommunication volume\tbytes\t")
	fmt.Fprintf(tw, "invalidates\t%d\t\n", v.Bytes[stats.VolInvalidates])
	fmt.Fprintf(tw, "requests\t%d\t\n", v.Bytes[stats.VolRequests])
	fmt.Fprintf(tw, "headers\t%d\t\n", v.Bytes[stats.VolHeaders])
	fmt.Fprintf(tw, "data\t%d\t\n", v.Bytes[stats.VolData])
	fmt.Fprintf(tw, "total\t%d\t\n", v.Total())
	ev := res.Events
	fmt.Fprintln(tw, "\nevents\tcount\t")
	fmt.Fprintf(tw, "remote misses (clean/dirty)\t%d/%d\t\n", ev.RemoteMissesCln, ev.RemoteMissesDty)
	fmt.Fprintf(tw, "local misses\t%d\t\n", ev.LocalMisses)
	fmt.Fprintf(tw, "invalidations\t%d\t\n", ev.Invalidations)
	fmt.Fprintf(tw, "LimitLESS traps\t%d\t\n", ev.LimitLESSTraps)
	fmt.Fprintf(tw, "messages sent/received\t%d/%d\t\n", ev.MessagesSent, ev.MessagesRecv)
	fmt.Fprintf(tw, "interrupts / polls (hits)\t%d / %d (%d)\t\n", ev.Interrupts, ev.Polls, ev.PollHits)
	fmt.Fprintf(tw, "bulk transfers (payload bytes)\t%d (%d)\t\n", ev.BulkTransfers, ev.BulkBytes)
	fmt.Fprintf(tw, "prefetches issued/useful/useless\t%d/%d/%d\t\n",
		ev.PrefetchIssued, ev.PrefetchUseful, ev.PrefetchUseless)
	fmt.Fprintf(tw, "lock acquires (spins)\t%d (%d)\t\n", ev.LockAcquires, ev.LockSpins)
	fmt.Fprintf(tw, "barrier arrivals\t%d\t\n", ev.BarrierArrivals)
	tw.Flush()
	if res.Trace != nil {
		fmt.Printf("\nlast %d trace events (of %d recorded):\n",
			len(res.Trace.Events()), res.Trace.Total())
		res.Trace.Dump(os.Stdout, clk)
	}
	if *validate {
		fmt.Println("\nresult validated against sequential reference")
	}
}

func parseMech(s string) (apps.Mechanism, error) {
	switch s {
	case "sm", "shared-memory":
		return apps.SM, nil
	case "sm+pf", "sm-prefetch", "prefetch":
		return apps.SMPrefetch, nil
	case "mp-int", "mp-interrupt", "interrupt":
		return apps.MPInterrupt, nil
	case "mp-poll", "poll":
		return apps.MPPoll, nil
	case "bulk", "bulk-dma", "dma":
		return apps.Bulk, nil
	}
	return 0, fmt.Errorf("unknown mechanism %q", s)
}

func parseScale(s string) (core.Scale, error) {
	switch s {
	case "tiny":
		return core.ScaleTiny, nil
	case "sweep":
		return core.ScaleSweep, nil
	case "default":
		return core.ScaleDefault, nil
	case "full":
		return core.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}
