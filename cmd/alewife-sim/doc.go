// Command alewife-sim runs one application under one communication
// mechanism on the simulated Alewife-class machine and prints the
// measurements: runtime, the paper's four-way time breakdown, the
// four-way communication-volume breakdown, and protocol event counts.
//
// Examples:
//
//	alewife-sim -app em3d -mech sm
//	alewife-sim -app iccg -mech mp-poll -scale default
//	alewife-sim -app em3d -mech sm -cross 14        # Figure 8 point
//	alewife-sim -app em3d -mech sm -clock 14        # Figure 9 point
//	alewife-sim -app em3d -mech sm -ideal-lat 100   # Figure 10 point
package main
