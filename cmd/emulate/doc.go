// Command emulate runs an application on simulated approximations of the
// paper's Table 1 machines — the forward direction of the paper's own
// framing ("we are using the machine as an emulator for other
// hypothetical machines"): instead of placing published machines on
// Alewife-measured curves, it builds a 32-node configuration matching
// each machine's clock, bisection bandwidth, network latency and miss
// latencies, and measures the mechanisms directly.
package main
