package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machines"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emulate: ")
	appName := flag.String("app", "em3d", "application: em3d, unstruc, iccg, moldyn")
	scaleName := flag.String("scale", "sweep", "workload scale")
	flag.Parse()

	var sc core.Scale
	switch *scaleName {
	case "tiny":
		sc = core.ScaleTiny
	case "sweep":
		sc = core.ScaleSweep
	case "default":
		sc = core.ScaleDefault
	case "full":
		sc = core.ScaleFull
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}

	fmt.Printf("%s on emulated Table 1 machines (32 nodes each; runtimes in processor cycles)\n\n", *appName)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "machine\ttopology\tSM\tMP-poll\tSM/MP\tnote")
	for _, m := range machines.EmulatableMachines() {
		cfg, note, err := machines.ConfigFor(m)
		if err != nil {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t%v\n", m.Name, err)
			continue
		}
		mp, err := core.Run(core.RunConfig{App: core.AppName(*appName), Mech: apps.MPPoll,
			Scale: sc, Machine: cfg, SkipValidate: true})
		if err != nil {
			log.Fatal(err)
		}
		smText := "n/a"
		ratioText := "-"
		if note.SharedMemory {
			sm, err := core.Run(core.RunConfig{App: core.AppName(*appName), Mech: apps.SM,
				Scale: sc, Machine: cfg, SkipValidate: true})
			if err != nil {
				log.Fatal(err)
			}
			smText = fmt.Sprintf("%d", sm.Cycles)
			ratioText = fmt.Sprintf("%.2f", float64(sm.Cycles)/float64(mp.Cycles))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%s\n",
			m.Name, note.Topology, smText, mp.Cycles, ratioText, note.Comment)
	}
	tw.Flush()
	fmt.Println("\nShared-memory columns are shown only for machines that support it in")
	fmt.Println("Table 1. Topologies are approximated on a 32-node grid with matched")
	fmt.Println("bisection bandwidth and network latency (the paper's two parameters).")
}
