// Package repro reproduces Chong, Barua, Dahlgren, Kubiatowicz & Agarwal,
// "The Sensitivity of Communication Mechanisms to Bandwidth and Latency"
// (HPCA 1998) on a from-scratch discrete-event simulator of an
// Alewife-class multiprocessor.
//
// The public API is a thin facade over the internal experiment framework:
//
//	res, err := repro.Run(repro.Config{App: repro.EM3D, Mechanism: repro.SM})
//	pts, err := repro.BisectionSweep(repro.EM3D, nil, nil)
//
// Applications (EM3D, UNSTRUC, ICCG, MOLDYN) are generated
// deterministically, run under any of the five communication mechanisms
// (shared memory, shared memory + prefetch, message passing with
// interrupts, message passing with polling, bulk DMA transfer), validated
// against sequential references, and measured with the paper's
// time-breakdown and communication-volume accounting.
package repro

import (
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/machines"
	"repro/internal/mem"
	"repro/internal/stats"
)

// App identifies one of the paper's four applications.
type App = core.AppName

// The four applications.
const (
	EM3D    = core.EM3D
	UNSTRUC = core.UNSTRUC
	ICCG    = core.ICCG
	MOLDYN  = core.MOLDYN
)

// Apps lists the applications in the paper's order.
var Apps = core.AppNames

// Mechanism is one of the paper's five communication styles.
type Mechanism = apps.Mechanism

// The five mechanisms.
const (
	SM          = apps.SM
	SMPrefetch  = apps.SMPrefetch
	MPInterrupt = apps.MPInterrupt
	MPPoll      = apps.MPPoll
	Bulk        = apps.Bulk
)

// Mechanisms lists all five in the paper's order.
var Mechanisms = apps.Mechanisms

// Scale selects workload size.
type Scale = core.Scale

// Workload scales.
const (
	ScaleTiny    = core.ScaleTiny
	ScaleSweep   = core.ScaleSweep
	ScaleDefault = core.ScaleDefault
	ScaleFull    = core.ScaleFull
)

// MachineConfig parameterizes the simulated multiprocessor.
type MachineConfig = machine.Config

// DefaultMachine returns the calibrated 32-node Alewife (20 MHz, 8x4
// mesh, 18 bytes/cycle bisection, ~15-cycle one-way network latency).
func DefaultMachine() MachineConfig { return machine.DefaultConfig() }

// MaxNodes is the largest supported machine (bounded by the directory's
// sharer bitsets).
const MaxNodes = machine.MaxNodes

// MachineForNodes returns the default machine rescaled to the given node
// count (1 to MaxNodes) on the squarest wormhole mesh that divides it:
// 64 nodes on 8x8, 128 on 16x8, 512 on 32x16. MachineForNodes(32) is
// exactly DefaultMachine().
func MachineForNodes(nodes int) (MachineConfig, error) {
	return machine.ConfigForNodes(nodes)
}

// Config selects one experiment run.
type Config struct {
	App       App
	Mechanism Mechanism
	Scale     Scale         // zero value is ScaleTiny
	Machine   MachineConfig // zero value replaced by DefaultMachine()
	// SkipValidate skips the numerical check against the sequential
	// reference (useful inside large sweeps).
	SkipValidate bool
}

// Result is one run's measurements.
type Result = core.RunResult

// Breakdown re-exports the four-bucket time breakdown.
type Breakdown = stats.Breakdown

// Volume re-exports the four-kind communication volume.
type Volume = stats.Volume

// Run executes one experiment: builds a fresh simulated machine, runs the
// application under the mechanism, validates the numerical result, and
// returns the measurements.
func Run(c Config) (Result, error) {
	if c.Machine.Nodes() == 0 {
		c.Machine = DefaultMachine()
	}
	return core.Run(core.RunConfig{
		App: c.App, Mech: c.Mechanism, Scale: c.Scale,
		Machine: c.Machine, SkipValidate: c.SkipValidate,
	})
}

// SweepPoint is one X position of a parametric experiment.
type SweepPoint = core.SweepPoint

// SetParallelism sets the worker-pool width used by the sweep functions
// (n <= 0 means all cores; 1 means serial) and drops the run cache.
// Sweeps fan individual simulations out over the pool and memoize them
// by configuration; results are bit-identical to serial execution.
func SetParallelism(n int) { core.SetDefaultWorkers(n) }

// Parallelism reports the current sweep worker-pool width.
func Parallelism() int { return core.DefaultRunner.Workers() }

// DefaultCrossRates is the cross-traffic schedule of the Figure 8
// bisection sweep (bytes per processor cycle consumed by I/O traffic).
var DefaultCrossRates = []float64{0, 4, 8, 12, 14, 16}

// DefaultClockMHzs is the Figure 9 clock schedule (the paper's hardware
// range, 20 down to 14 MHz).
var DefaultClockMHzs = []float64{20, 18, 16, 14}

// DefaultIdealLatencies is the Figure 10 context-switch emulation
// schedule, in one-way processor cycles.
var DefaultIdealLatencies = []int64{15, 25, 50, 100, 200}

// BisectionSweep reproduces the Figure 8 methodology for one app at
// ScaleSweep: I/O cross-traffic reduces the effective bisection. Nil
// mechs means all five; nil rates means DefaultCrossRates.
func BisectionSweep(app App, mechs []Mechanism, rates []float64) ([]SweepPoint, error) {
	if mechs == nil {
		mechs = Mechanisms
	}
	if rates == nil {
		rates = DefaultCrossRates
	}
	return core.BisectionSweep(app, core.ScaleSweep, mechs, DefaultMachine(), rates, 64)
}

// ClockSweep reproduces the Figure 9 methodology: vary the processor
// clock against the fixed asynchronous network.
func ClockSweep(app App, mechs []Mechanism, mhzs []float64) ([]SweepPoint, error) {
	if mechs == nil {
		mechs = Mechanisms
	}
	if mhzs == nil {
		mhzs = DefaultClockMHzs
	}
	return core.ClockSweep(app, core.ScaleSweep, mechs, DefaultMachine(), mhzs)
}

// LatencySweep reproduces the Figure 10 methodology: a uniform-latency,
// infinite-bandwidth network for shared memory (message-passing curves
// are fixed references).
func LatencySweep(app App, mechs []Mechanism, oneWayCycles []int64) ([]SweepPoint, error) {
	if mechs == nil {
		mechs = Mechanisms
	}
	if oneWayCycles == nil {
		oneWayCycles = DefaultIdealLatencies
	}
	return core.ContextSwitchSweep(app, core.ScaleSweep, mechs, DefaultMachine(), oneWayCycles)
}

// DefaultScalingNodes is the Figure S1 node-count schedule (32 to 512).
var DefaultScalingNodes = core.DefaultScalingNodes

// ScalingSweep reproduces the Figure S1 methodology for one app at
// ScaleSweep: runtime per mechanism across machine sizes. scaleProblem
// false holds the problem fixed (strong scaling); true grows it
// proportionally to the node count (weak scaling). Nil mechs means all
// five; nil nodeCounts means DefaultScalingNodes. Node counts the
// workload cannot be partitioned for are isolated: they are simply
// absent from that point's Results.
func ScalingSweep(app App, mechs []Mechanism, nodeCounts []int, scaleProblem bool) ([]SweepPoint, error) {
	if mechs == nil {
		mechs = Mechanisms
	}
	if nodeCounts == nil {
		nodeCounts = DefaultScalingNodes
	}
	return core.NodeScalingSweep(app, core.ScaleSweep, mechs, DefaultMachine(), nodeCounts, scaleProblem)
}

// OpenResultCache opens (creating if needed) an on-disk run-result cache
// and attaches it to the sweep runner: completed simulations are
// persisted and reused across processes. Entries are validated against
// the configuration fingerprint and a schema version; stale or corrupt
// entries are ignored and re-simulated.
func OpenResultCache(dir string) error {
	dc, err := core.OpenDiskCache(dir)
	if err != nil {
		return err
	}
	core.DefaultRunner.SetDiskCache(dc)
	return nil
}

// Crossover finds where mechanism a's runtime crosses b's in a sweep.
func Crossover(points []SweepPoint, a, b Mechanism) (x float64, found bool) {
	return core.Crossover(points, a, b)
}

// MissPenalties is the Figure 3 microbenchmark result.
type MissPenalties = core.MissPenalties

// MeasureMissPenalties runs the Figure 3 microbenchmarks on a machine.
func MeasureMissPenalties(cfg MachineConfig) MissPenalties {
	return core.MeasureMissPenalties(cfg)
}

// MachineRow is one row of the paper's Table 1.
type MachineRow = machines.Machine

// TableMachines returns the paper's Table 1 rows.
func TableMachines() []MachineRow { return machines.Table1() }

// EmulationNote describes the approximations behind an emulated machine.
type EmulationNote = machines.EmulationNote

// EmulateMachine builds a 32-node simulator configuration matching a
// Table 1 machine's clock, bisection bandwidth, network latency and miss
// latencies — the forward direction of the paper's emulation framing.
func EmulateMachine(name string) (MachineConfig, EmulationNote, error) {
	m, err := machines.ByName(name)
	if err != nil {
		return MachineConfig{}, EmulationNote{}, err
	}
	return machines.ConfigFor(m)
}

// LogP holds measured LogP parameters (latency, overhead, gap) of a
// machine configuration — the alternative communication model the paper
// contrasts itself with (Martin et al.).
type LogP = core.LogP

// MeasureLogP runs the LogP microbenchmarks on cfg.
func MeasureLogP(cfg MachineConfig) LogP { return core.MeasureLogP(cfg) }

// WithRelaxedConsistency returns cfg switched to write-buffered release
// consistency — the latency-tolerance technique the paper's Section 2
// discusses; see the ablation benchmarks for its measured effect.
func WithRelaxedConsistency(cfg MachineConfig) MachineConfig {
	cfg.Mem.Consistency = mem.RC
	return cfg
}
