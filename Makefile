# Tier-1 verification plus the race-certified concurrency surface.
# `make check` is the gate every PR must pass. `make profile` captures
# host CPU/heap profiles of a tiny figure regeneration (see the bench
# target for simulated-time performance tracking).

GO ?= go

.PHONY: check build test race bench bench-save fuzz lint profile

check: build race test lint
	$(GO) vet ./...

build:
	$(GO) build ./...

# Determinism and simulation-safety analysis (internal/lint), nine
# checks: the per-package wallclock, unseededrand, maporder, rawconc,
# and fingerprint, plus the call-graph-aware callpath, shardsafe,
# serialonly, and intmath. Zero diagnostics — including stale
# //lint:allow comments — is the bar. See DESIGN.md §10.
# The second invocation self-lints the analyzer and its CLI explicitly
# (the pattern set must be import-closed, which these two trees are).
lint:
	$(GO) run ./cmd/simlint ./...
	$(GO) run ./cmd/simlint ./internal/lint ./cmd/simlint

test:
	$(GO) test ./...

# The parallel runner and the event engine are the only concurrent code;
# certify them under the race detector on every check. The suite runs
# real tiny-scale simulations (sharded-equivalence at three worker
# counts, predicted-sweep validation batches) and exceeds go test's
# 10-minute default under -race.
race:
	$(GO) test -race -timeout 25m ./internal/core/... ./internal/sim/...

# Short fixed-budget fuzzing: random op programs against the coherence
# protocol's directory/cache invariant checker, and random strings
# against the fault/noise spec grammar (Parse must never panic, and
# accepted specs must round-trip through their canonical form).
# Deterministic seeds run in `make test`; this explores beyond them.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/mem -run '^$$' -fuzz FuzzProtocolOps -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzParseSpec -fuzztime $(FUZZTIME)

# Host-side profiling of a figure regeneration: where the simulator
# itself spends CPU and heap. Inspect with `go tool pprof /tmp/paperbench.cpu`.
PROFILE_FIG ?= 4
profile:
	$(GO) run ./cmd/paperbench -fig $(PROFILE_FIG) -scale tiny \
		-cpuprofile /tmp/paperbench.cpu -memprofile /tmp/paperbench.mem > /dev/null
	@echo "profiles written: /tmp/paperbench.cpu /tmp/paperbench.mem"

# Performance tracking: event-engine allocation profile and serial vs
# parallel sweep throughput.
bench:
	$(GO) test -bench 'BenchmarkEngine|BenchmarkThreadHandoff' -benchmem -run xxx ./internal/sim/
	$(GO) test -bench 'BenchmarkClockSweep|BenchmarkContextSwitchSweepMemoized' -benchtime 3x -run xxx ./internal/core/

# bench-save runs the bench suite plus the serial-vs-sharded engine
# benchmark (cmd/benchengine) and records the engine results in the
# tracked BENCH_engine.json trajectory. Wall times are host-dependent;
# the JSON carries the host's core budget alongside each point.
bench-save: bench
	$(GO) run ./cmd/benchengine -o BENCH_engine.json
	@echo "engine benchmark written: BENCH_engine.json"
