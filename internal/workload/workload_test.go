package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// --- RCB ---

func TestRCBBalanced(t *testing.T) {
	g := NewMoldyn(DefaultMoldynParams())
	sizes := PartSizes(g.Part, 32)
	min, max := 1<<30, 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Errorf("RCB imbalance: sizes %v", sizes)
	}
}

func TestRCBDeterministic(t *testing.T) {
	pts := NewMoldyn(DefaultMoldynParams()).Pos
	a := RCB(pts, 8)
	b := RCB(pts, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RCB nondeterministic")
		}
	}
}

func TestRCBSpatialLocality(t *testing.T) {
	// Points in the same part should be closer on average than points in
	// different parts.
	b := NewMoldyn(DefaultMoldynParams())
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < 500; i++ {
		for j := i + 1; j < 500; j++ {
			d := math.Sqrt(dist2(b.Pos[i], b.Pos[j]))
			if b.Part[i] == b.Part[j] {
				sameSum += d
				sameN++
			} else {
				crossSum += d
				crossN++
			}
		}
	}
	if sameSum/float64(sameN) >= crossSum/float64(crossN) {
		t.Errorf("no spatial locality: same-part avg %.3f >= cross %.3f",
			sameSum/float64(sameN), crossSum/float64(crossN))
	}
}

func TestRCBBadPartsPanics(t *testing.T) {
	for _, n := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RCB(%d parts) did not panic", n)
				}
			}()
			RCB([]Point3{{}, {}}, n)
		}()
	}
}

func TestBlockPartition(t *testing.T) {
	part := BlockPartition(100, 32)
	sizes := PartSizes(part, 32)
	for p, s := range sizes {
		if s < 3 || s > 4 {
			t.Errorf("part %d has %d items", p, s)
		}
	}
	// Monotone.
	for i := 1; i < len(part); i++ {
		if part[i] < part[i-1] {
			t.Fatal("block partition not monotone")
		}
	}
}

// --- EM3D ---

func TestEM3DShape(t *testing.T) {
	p := DefaultEM3DParams().Scaled(2000, 5)
	g := NewEM3D(p)
	if len(g.EAdj) != 2000 || len(g.HAdj) != 2000 {
		t.Fatal("wrong node counts")
	}
	for i := range g.EAdj {
		if len(g.EAdj[i]) != p.Degree {
			t.Fatalf("E node %d degree %d", i, len(g.EAdj[i]))
		}
	}
	frac := g.RemoteEdgeFraction()
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("remote fraction = %.3f, want ~0.20", frac)
	}
}

func TestEM3DSpanRespected(t *testing.T) {
	p := DefaultEM3DParams().Scaled(3200, 1)
	g := NewEM3D(p)
	check := func(adj [][]int32) {
		for i, nbrs := range adj {
			for _, j := range nbrs {
				oi, oj := int(g.Owner[i]), int(g.Owner[j])
				d := oi - oj
				if d < 0 {
					d = -d
				}
				if d > p.Span && d < p.Procs-p.Span {
					t.Fatalf("edge %d->%d spans %d procs (> span %d)", i, j, d, p.Span)
				}
			}
		}
	}
	check(g.EAdj)
	check(g.HAdj)
}

func TestEM3DDeterministic(t *testing.T) {
	p := DefaultEM3DParams().Scaled(500, 1)
	a, b := NewEM3D(p), NewEM3D(p)
	for i := range a.EAdj {
		for d := range a.EAdj[i] {
			if a.EAdj[i][d] != b.EAdj[i][d] || a.ECoef[i][d] != b.ECoef[i][d] {
				t.Fatal("EM3D generation nondeterministic")
			}
		}
	}
}

func TestEM3DReferenceEvolves(t *testing.T) {
	g := NewEM3D(DefaultEM3DParams().Scaled(200, 3))
	e, h := g.Reference(3)
	diff := 0
	for i := range e {
		if e[i] != g.EInit[i] || h[i] != g.HInit[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("reference computation changed nothing")
	}
	for i := range e {
		if math.IsNaN(e[i]) || math.IsInf(e[i], 0) {
			t.Fatalf("E[%d] = %v", i, e[i])
		}
	}
}

// --- UNSTRUC ---

func TestUnstrucShape(t *testing.T) {
	m := NewUnstruc(DefaultUnstrucParams())
	if len(m.Coords) != 2000 {
		t.Fatalf("nodes = %d", len(m.Coords))
	}
	if len(m.Edges) < 2000 {
		t.Errorf("suspiciously few edges: %d", len(m.Edges))
	}
	// Degrees must be irregular.
	degs := map[int]int{}
	for _, es := range m.NodeEdges {
		degs[len(es)]++
	}
	if len(degs) < 3 {
		t.Errorf("degree distribution too regular: %v", degs)
	}
	// RCB should keep most edges local.
	if f := m.RemoteEdgeFraction(); f > 0.5 {
		t.Errorf("remote edge fraction %.2f too high for RCB", f)
	}
}

func TestUnstrucNoSelfOrOutOfRangeEdges(t *testing.T) {
	m := NewUnstruc(DefaultUnstrucParams())
	for _, ed := range m.Edges {
		if ed[0] == ed[1] {
			t.Fatal("self edge")
		}
		if ed[0] < 0 || ed[1] < 0 || int(ed[0]) >= len(m.Coords) || int(ed[1]) >= len(m.Coords) {
			t.Fatal("edge out of range")
		}
	}
}

func TestUnstrucReferenceStable(t *testing.T) {
	m := NewUnstruc(DefaultUnstrucParams().Scaled(300, 5))
	s := m.Reference(5)
	for i := range s {
		for k := 0; k < 3; k++ {
			if math.IsNaN(s[i][k]) || math.Abs(s[i][k]) > 100 {
				t.Fatalf("state[%d][%d] = %v diverged", i, k, s[i][k])
			}
		}
	}
}

func TestEdgeContribAntisymmetricUse(t *testing.T) {
	prop := func(a0, a1, a2, b0, b1, b2 float64) bool {
		a := [3]float64{clamp(a0), clamp(a1), clamp(a2)}
		b := [3]float64{clamp(b0), clamp(b1), clamp(b2)}
		ab := EdgeContrib(a, b)
		ba := EdgeContrib(b, a)
		for k := 0; k < 3; k++ {
			if ab[k] != -ba[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 10)
}

// --- ICCG ---

func TestICCGDAGAcyclic(t *testing.T) {
	s := NewICCG(DefaultICCGParams())
	for i, preds := range s.Preds {
		for _, j := range preds {
			if int(j) >= i {
				t.Fatalf("row %d has predecessor %d (not strictly lower)", i, j)
			}
		}
	}
}

func TestICCGSuccsMirrorPreds(t *testing.T) {
	s := NewICCG(DefaultICCGParams().Scaled(500))
	count := 0
	for j, succs := range s.Succs {
		for _, i := range succs {
			found := false
			for _, pj := range s.Preds[i] {
				if int(pj) == j {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("succ edge %d->%d has no pred mirror", j, i)
			}
			count++
		}
	}
	if count != s.NNZ() {
		t.Errorf("succ edges %d != nnz %d", count, s.NNZ())
	}
}

func TestICCGSolveCorrect(t *testing.T) {
	s := NewICCG(DefaultICCGParams().Scaled(1000))
	x := s.Reference()
	// Verify Lx = b by recomputing.
	for i := 0; i < 1000; i++ {
		acc := s.Diag[i] * x[i]
		for k, j := range s.Preds[i] {
			acc += s.PredsW[i][k] * x[j]
		}
		if math.Abs(acc-s.B[i]) > 1e-9 {
			t.Fatalf("row %d: Lx = %v, b = %v", i, acc, s.B[i])
		}
	}
}

func TestICCGHasDeepDAG(t *testing.T) {
	s := NewICCG(DefaultICCGParams())
	_, nLevels := s.Levels()
	if nLevels < 50 {
		t.Errorf("DAG only %d levels; not challenging enough", nLevels)
	}
	if f := s.RemoteEdgeFraction(); f < 0.3 {
		t.Errorf("remote edge fraction %.2f; block-cyclic should communicate heavily", f)
	}
}

// --- MOLDYN ---

func TestMoldynPairsSymmetricAndInRange(t *testing.T) {
	b := NewMoldyn(DefaultMoldynParams().Scaled(512, 1))
	pairs := BuildPairs(b.Pos, b.P.Box, b.P.Cutoff)
	if len(pairs) == 0 {
		t.Fatal("no interaction pairs")
	}
	r2 := 4 * b.P.Cutoff * b.P.Cutoff
	seen := map[[2]int32]bool{}
	for _, pr := range pairs {
		if pr[0] >= pr[1] {
			t.Fatal("pair not ordered")
		}
		if dist2(b.Pos[pr[0]], b.Pos[pr[1]]) > r2 {
			t.Fatal("pair outside 2*cutoff")
		}
		if seen[pr] {
			t.Fatal("duplicate pair")
		}
		seen[pr] = true
	}
}

func TestMoldynPairsComplete(t *testing.T) {
	// Brute force check on a small box.
	b := NewMoldyn(MoldynParams{Molecules: 100, Box: 4, Cutoff: 0.9, Iters: 1, ListEvery: 1, Procs: 4, Seed: 9})
	pairs := BuildPairs(b.Pos, b.P.Box, b.P.Cutoff)
	want := 0
	r2 := 4 * b.P.Cutoff * b.P.Cutoff
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if dist2(b.Pos[i], b.Pos[j]) <= r2 {
				want++
			}
		}
	}
	if len(pairs) != want {
		t.Errorf("cell-list pairs %d != brute force %d", len(pairs), want)
	}
}

func TestMoldynReferenceConservesRoughly(t *testing.T) {
	b := NewMoldyn(DefaultMoldynParams().Scaled(256, 10))
	pos, vel := b.Reference()
	for i := range pos {
		if math.IsNaN(pos[i].X) || math.Abs(pos[i].X) > 100 {
			t.Fatalf("molecule %d diverged: %+v", i, pos[i])
		}
		_ = vel
	}
}

func TestPairForceNewtonThirdLaw(t *testing.T) {
	a := Point3{1, 1, 1}
	b := Point3{1.5, 1.2, 0.9}
	f1 := PairForce(a, b, 1.3)
	f2 := PairForce(b, a, 1.3)
	if f1.X != -f2.X || f1.Y != -f2.Y || f1.Z != -f2.Z {
		t.Error("force not antisymmetric")
	}
	// Outside cutoff: zero.
	far := PairForce(Point3{0, 0, 0}, Point3{5, 5, 5}, 1.3)
	if far != (Point3{}) {
		t.Error("force beyond cutoff not zero")
	}
}

// TestGeneratorGoldenStats pins the deterministic generators' summary
// statistics: any unintended change to seeds, distribution logic, or
// iteration order shows up here before it silently shifts every
// experiment in EXPERIMENTS.md.
func TestGeneratorGoldenStats(t *testing.T) {
	em := NewEM3D(DefaultEM3DParams())
	if got := len(em.EAdj) * em.P.Degree; got != 100000 {
		t.Errorf("EM3D E-edges = %d, want 100000", got)
	}
	un := NewUnstruc(DefaultUnstrucParams())
	ic := NewICCG(DefaultICCGParams())
	mo := NewMoldyn(DefaultMoldynParams())
	pairs := BuildPairs(mo.Pos, mo.P.Box, mo.P.Cutoff)
	golden := []struct {
		name string
		got  int
		want int
	}{
		{"unstruc edges", len(un.Edges), 5032},
		{"iccg nnz", ic.NNZ(), 32006},
		{"moldyn pairs", len(pairs), 30730},
	}
	for _, g := range golden {
		if g.got != g.want {
			t.Errorf("%s = %d, want %d (generator changed?)", g.name, g.got, g.want)
		}
	}
}

func TestScaledBoxPreservesDensity(t *testing.T) {
	p := DefaultMoldynParams()
	d0 := float64(p.Molecules) / (p.Box * p.Box * p.Box)
	q := p.ScaledBox(256, 4)
	d1 := float64(q.Molecules) / (q.Box * q.Box * q.Box)
	if math.Abs(d1-d0)/d0 > 0.01 {
		t.Errorf("density changed: %.4f -> %.4f", d0, d1)
	}
	if q.Molecules != 256 || q.Iters != 4 {
		t.Errorf("scaled params wrong: %+v", q)
	}
}

func TestUnstrucFaces(t *testing.T) {
	m := NewUnstruc(DefaultUnstrucParams())
	if len(m.Faces) < 500 {
		t.Fatalf("only %d faces", len(m.Faces))
	}
	for _, fc := range m.Faces {
		seen := map[int32]bool{}
		for _, v := range fc {
			if v < 0 || int(v) >= len(m.Coords) {
				t.Fatal("face corner out of range")
			}
			if seen[v] {
				t.Fatal("degenerate face")
			}
			seen[v] = true
		}
	}
	// FaceContrib antisymmetry under corner rotation by two.
	a := [3]float64{1, 2, 3}
	b := [3]float64{4, 5, 6}
	c := [3]float64{7, 8, 9}
	d := [3]float64{2, 4, 8}
	f1 := FaceContrib(a, b, c, d)
	f2 := FaceContrib(b, c, d, a)
	for k := 0; k < 3; k++ {
		if f1[k] != -f2[k] {
			t.Errorf("face contrib not antisymmetric under rotation: %v vs %v", f1, f2)
		}
	}
}
