package workload

import (
	"math/rand"
)

// UnstrucParams parameterizes the synthetic 3-D unstructured mesh used in
// place of the paper's MESH2K input (2000-node irregular mesh shipped
// with the original code, not distributable here). The generator places
// nodes on a jittered 3-D grid and connects grid neighbors, dropping and
// adding edges randomly for irregular degree.
type UnstrucParams struct {
	Nodes int
	Iters int
	Procs int
	Seed  int64
}

// DefaultUnstrucParams matches the paper's 2000-node mesh.
func DefaultUnstrucParams() UnstrucParams {
	return UnstrucParams{Nodes: 2000, Iters: 10, Procs: 32, Seed: 2}
}

// Scaled returns a reduced instance.
func (p UnstrucParams) Scaled(nodes, iters int) UnstrucParams {
	p.Nodes, p.Iters = nodes, iters
	return p
}

// UnstrucMesh is the generated mesh. Each undirected edge appears once in
// Edges as an (A, B) pair; Faces connect four nodes (grid quads), as in
// the paper's "faces that connect three or four nodes". Part assigns
// nodes to processors by RCB.
type UnstrucMesh struct {
	P      UnstrucParams
	Coords []Point3
	Edges  [][2]int32
	Faces  [][4]int32
	Part   []int
	Init   [][3]float64 // initial 3-component state per node
	// NodeEdges[i] lists edge indices incident to node i.
	NodeEdges [][]int32
}

// NewUnstruc generates a mesh deterministically.
func NewUnstruc(p UnstrucParams) *UnstrucMesh {
	rng := rand.New(rand.NewSource(p.Seed))
	m := &UnstrucMesh{P: p}

	// Grid dimensions: smallest cube covering Nodes.
	side := 1
	for side*side*side < p.Nodes {
		side++
	}
	m.Coords = make([]Point3, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		x, y, z := i%side, (i/side)%side, i/(side*side)
		m.Coords[i] = Point3{
			X: (float64(x) + 0.8*rng.Float64()) / float64(side),
			Y: (float64(y) + 0.8*rng.Float64()) / float64(side),
			Z: (float64(z) + 0.8*rng.Float64()) / float64(side),
		}
	}
	at := func(x, y, z int) int { return x + y*side + z*side*side }
	addEdge := func(a, b int) {
		if a < p.Nodes && b < p.Nodes && a != b {
			m.Edges = append(m.Edges, [2]int32{int32(a), int32(b)})
		}
	}
	for i := 0; i < p.Nodes; i++ {
		x, y, z := i%side, (i/side)%side, i/(side*side)
		// Grid neighbors (+x, +y, +z to avoid duplicates), ~15% dropped.
		if x+1 < side && rng.Float64() > 0.15 {
			addEdge(i, at(x+1, y, z))
		}
		if y+1 < side && rng.Float64() > 0.15 {
			addEdge(i, at(x, y+1, z))
		}
		if z+1 < side && rng.Float64() > 0.15 {
			addEdge(i, at(x, y, z+1))
		}
		// Occasional long-range edge (face diagonals), irregularizing.
		if rng.Float64() < 0.2 && x+1 < side && y+1 < side {
			addEdge(i, at(x+1, y+1, z))
		}
	}
	// Faces: grid quads in the XY plane of each layer, ~20% dropped for
	// irregularity.
	for z := 0; z < side; z++ {
		for y := 0; y+1 < side; y++ {
			for x := 0; x+1 < side; x++ {
				a, b2 := at(x, y, z), at(x+1, y, z)
				c, d := at(x+1, y+1, z), at(x, y+1, z)
				if d < p.Nodes && c < p.Nodes && rng.Float64() > 0.2 {
					m.Faces = append(m.Faces, [4]int32{int32(a), int32(b2), int32(c), int32(d)})
				}
			}
		}
	}
	m.Part = RCB(m.Coords, p.Procs)
	m.Init = make([][3]float64, p.Nodes)
	for i := range m.Init {
		for c := 0; c < 3; c++ {
			m.Init[i][c] = rng.Float64()
		}
	}
	m.NodeEdges = make([][]int32, p.Nodes)
	for e, ed := range m.Edges {
		m.NodeEdges[ed[0]] = append(m.NodeEdges[ed[0]], int32(e))
		m.NodeEdges[ed[1]] = append(m.NodeEdges[ed[1]], int32(e))
	}
	return m
}

// EdgeContrib computes the 3-component edge interaction between node
// states a and b. It stands in for the paper's 75-FLOP-per-edge flux
// computation: the exact arithmetic is unimportant, the data movement
// (read both endpoints, accumulate into both) is what the study measures.
func EdgeContrib(a, b [3]float64) [3]float64 {
	var c [3]float64
	for k := 0; k < 3; k++ {
		d := a[k] - b[k]
		c[k] = d * (0.01 + 0.001*d*d)
	}
	return c
}

// UnstrucFlopsPerEdge is the per-edge compute cost in FLOPs per the paper.
const UnstrucFlopsPerEdge = 75

// UnstrucFlopsPerFace approximates the per-face flux computation.
const UnstrucFlopsPerFace = 40

// FaceContrib computes a face's 3-component contribution from its four
// nodes' states; each node receives it with an alternating sign.
func FaceContrib(a, b, c, d [3]float64) [3]float64 {
	var out [3]float64
	for k := 0; k < 3; k++ {
		v := (a[k] + c[k]) - (b[k] + d[k])
		out[k] = v * 0.005
	}
	return out
}

// Reference runs the sequential computation for iters iterations and
// returns the final per-node state. Each iteration reads the buffered old
// state, accumulates edge contributions into both endpoints, then applies
// the accumulated update.
func (m *UnstrucMesh) Reference(iters int) [][3]float64 {
	state := make([][3]float64, len(m.Init))
	copy(state, m.Init)
	accum := make([][3]float64, len(state))
	for it := 0; it < iters; it++ {
		for i := range accum {
			accum[i] = [3]float64{}
		}
		for _, ed := range m.Edges {
			a, b := ed[0], ed[1]
			c := EdgeContrib(state[a], state[b])
			for k := 0; k < 3; k++ {
				accum[a][k] += c[k]
				accum[b][k] -= c[k]
			}
		}
		for _, fc := range m.Faces {
			c := FaceContrib(state[fc[0]], state[fc[1]], state[fc[2]], state[fc[3]])
			for k := 0; k < 3; k++ {
				accum[fc[0]][k] += c[k]
				accum[fc[1]][k] -= c[k]
				accum[fc[2]][k] += c[k]
				accum[fc[3]][k] -= c[k]
			}
		}
		for i := range state {
			for k := 0; k < 3; k++ {
				state[i][k] += 0.1 * accum[i][k]
			}
		}
	}
	return state
}

// RemoteEdgeFraction reports the fraction of edges crossing partitions.
func (m *UnstrucMesh) RemoteEdgeFraction() float64 {
	remote := 0
	for _, ed := range m.Edges {
		if m.Part[ed[0]] != m.Part[ed[1]] {
			remote++
		}
	}
	return float64(remote) / float64(len(m.Edges))
}
