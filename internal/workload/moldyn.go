package workload

import (
	"math"
	"math/rand"
)

// MoldynParams parameterizes the molecular-dynamics box: molecules
// uniformly distributed over a cuboidal region with a Maxwellian
// distribution of initial velocities, interaction lists built from twice
// the cutoff radius every ListEvery iterations, RCB partitioning — all as
// the paper describes.
type MoldynParams struct {
	Molecules int
	Box       float64 // cube side
	Cutoff    float64 // force cutoff radius
	Iters     int
	ListEvery int // rebuild interaction list every this many iterations
	Procs     int
	Seed      int64
}

// DefaultMoldynParams gives a paper-character instance at tractable
// size. The density (~0.5 molecules per unit volume) keeps neighbor
// counts in the realistic tens, so RCB partitioning yields the locality
// the paper's molecule groups have.
func DefaultMoldynParams() MoldynParams {
	return MoldynParams{
		Molecules: 2048, Box: 16, Cutoff: 1.3,
		Iters: 20, ListEvery: 20, Procs: 32, Seed: 4,
	}
}

// ScaledBox returns a reduced instance with density preserved.
func (p MoldynParams) ScaledBox(n, iters int) MoldynParams {
	ratio := float64(n) / float64(p.Molecules)
	p.Box *= cbrt(ratio)
	p.Molecules, p.Iters = n, iters
	return p
}

func cbrt(v float64) float64 {
	x := v
	for i := 0; i < 60; i++ {
		x = (2*x + v/(x*x)) / 3
	}
	return x
}

// Scaled returns a reduced instance.
func (p MoldynParams) Scaled(n, iters int) MoldynParams {
	p.Molecules, p.Iters = n, iters
	return p
}

// MoldynBox is the generated initial condition plus partitioning.
type MoldynBox struct {
	P    MoldynParams
	Pos  []Point3
	Vel  []Point3
	Part []int
}

// NewMoldyn generates the box deterministically.
func NewMoldyn(p MoldynParams) *MoldynBox {
	rng := rand.New(rand.NewSource(p.Seed))
	b := &MoldynBox{P: p}
	b.Pos = make([]Point3, p.Molecules)
	b.Vel = make([]Point3, p.Molecules)
	for i := range b.Pos {
		b.Pos[i] = Point3{
			X: rng.Float64() * p.Box,
			Y: rng.Float64() * p.Box,
			Z: rng.Float64() * p.Box,
		}
		// Maxwellian: each component normal.
		b.Vel[i] = Point3{
			X: rng.NormFloat64() * 0.1,
			Y: rng.NormFloat64() * 0.1,
			Z: rng.NormFloat64() * 0.1,
		}
	}
	b.Part = RCB(b.Pos, p.Procs)
	return b
}

// MoldynFlopsPerInteraction approximates the per-pair force computation
// cost in FLOP-equivalents: distance, cutoff test, the force evaluation
// (whose divide and square root each cost tens of cycles on a Sparcle
// FPU), and two 3-vector accumulations. This is what makes MOLDYN the
// paper's compute-dominated application.
const MoldynFlopsPerInteraction = 110

// BuildPairs returns the interaction list: all unordered pairs within
// twice the cutoff radius of each other at the given positions, exactly
// the paper's list-building rule. Pairs are (i, j) with i < j, ordered
// deterministically.
func BuildPairs(pos []Point3, box, cutoff float64) [][2]int32 {
	r := 2 * cutoff
	cells := int(box / r)
	if cells < 1 {
		cells = 1
	}
	cw := box / float64(cells)
	cellOf := func(p Point3) (int, int, int) {
		c := func(v float64) int {
			i := int(v / cw)
			if i >= cells {
				i = cells - 1
			}
			if i < 0 {
				i = 0
			}
			return i
		}
		return c(p.X), c(p.Y), c(p.Z)
	}
	bins := make([][]int32, cells*cells*cells)
	at := func(x, y, z int) int { return x + y*cells + z*cells*cells }
	for i, p := range pos {
		x, y, z := cellOf(p)
		bins[at(x, y, z)] = append(bins[at(x, y, z)], int32(i))
	}
	var pairs [][2]int32
	r2 := r * r
	for x := 0; x < cells; x++ {
		for y := 0; y < cells; y++ {
			for z := 0; z < cells; z++ {
				home := bins[at(x, y, z)]
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny, nz := x+dx, y+dy, z+dz
							if nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells || nz >= cells {
								continue
							}
							for _, i := range home {
								for _, j := range bins[at(nx, ny, nz)] {
									if j <= i {
										continue
									}
									d := dist2(pos[i], pos[j])
									if d <= r2 {
										pairs = append(pairs, [2]int32{i, j})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pairs
}

func dist2(a, b Point3) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return dx*dx + dy*dy + dz*dz
}

// PairForce computes the force contribution of pair (i,j) at the given
// positions: a soft short-range repulsion inside the cutoff, zero
// outside. It returns the force on i (j receives the negation).
func PairForce(pi, pj Point3, cutoff float64) Point3 {
	d2 := dist2(pi, pj)
	c2 := cutoff * cutoff
	if d2 >= c2 || d2 == 0 {
		return Point3{}
	}
	// Soft repulsion: magnitude ~ (1 - d2/c2)^2 along the displacement.
	s := 1 - d2/c2
	mag := 0.05 * s * s / math.Sqrt(d2)
	return Point3{
		X: (pi.X - pj.X) * mag,
		Y: (pi.Y - pj.Y) * mag,
		Z: (pi.Z - pj.Z) * mag,
	}
}

// Step advances positions and velocities one timestep given accumulated
// forces (unit mass, dt folded into constants).
func Step(pos, vel, force []Point3) {
	const dt = 0.05
	for i := range pos {
		vel[i].X += dt * force[i].X
		vel[i].Y += dt * force[i].Y
		vel[i].Z += dt * force[i].Z
		pos[i].X += dt * vel[i].X
		pos[i].Y += dt * vel[i].Y
		pos[i].Z += dt * vel[i].Z
	}
}

// Reference runs the sequential MD for Iters iterations and returns final
// positions and velocities.
func (b *MoldynBox) Reference() (pos, vel []Point3) {
	pos = append([]Point3(nil), b.Pos...)
	vel = append([]Point3(nil), b.Vel...)
	var pairs [][2]int32
	force := make([]Point3, len(pos))
	for it := 0; it < b.P.Iters; it++ {
		if it%b.P.ListEvery == 0 {
			pairs = BuildPairs(pos, b.P.Box, b.P.Cutoff)
		}
		for i := range force {
			force[i] = Point3{}
		}
		for _, pr := range pairs {
			i, j := pr[0], pr[1]
			f := PairForce(pos[i], pos[j], b.P.Cutoff)
			force[i].X += f.X
			force[i].Y += f.Y
			force[i].Z += f.Z
			force[j].X -= f.X
			force[j].Y -= f.Y
			force[j].Z -= f.Z
		}
		Step(pos, vel, force)
	}
	return pos, vel
}
