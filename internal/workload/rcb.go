package workload

import (
	"fmt"
	"sort"
)

// Point3 is a position in 3-space.
type Point3 struct{ X, Y, Z float64 }

// RCB partitions points into nparts groups by recursive coordinate
// bisection (Berger & Bokhari): the longest dimension is split at the
// median, recursively. nparts must be a power of two. It returns the
// part index of each point; parts differ in size by at most one point
// per split level.
func RCB(points []Point3, nparts int) []int {
	if nparts <= 0 || nparts&(nparts-1) != 0 {
		panic(fmt.Sprintf("workload: RCB nparts %d is not a positive power of two", nparts))
	}
	part := make([]int, len(points))
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	rcbSplit(points, idx, part, 0, nparts)
	return part
}

func rcbSplit(points []Point3, idx, part []int, base, nparts int) {
	if nparts == 1 {
		for _, i := range idx {
			part[i] = base
		}
		return
	}
	// Find the longest extent dimension.
	var min, max Point3
	min = Point3{1e300, 1e300, 1e300}
	max = Point3{-1e300, -1e300, -1e300}
	for _, i := range idx {
		p := points[i]
		min.X, max.X = minf(min.X, p.X), maxf(max.X, p.X)
		min.Y, max.Y = minf(min.Y, p.Y), maxf(max.Y, p.Y)
		min.Z, max.Z = minf(min.Z, p.Z), maxf(max.Z, p.Z)
	}
	dim := 0
	ex, ey, ez := max.X-min.X, max.Y-min.Y, max.Z-min.Z
	if ey > ex && ey >= ez {
		dim = 1
	} else if ez > ex && ez > ey {
		dim = 2
	}
	coord := func(i int) float64 {
		switch dim {
		case 1:
			return points[i].Y
		case 2:
			return points[i].Z
		}
		return points[i].X
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := coord(idx[a]), coord(idx[b])
		if ca != cb {
			return ca < cb
		}
		return idx[a] < idx[b] // deterministic tie-break
	})
	mid := len(idx) / 2
	rcbSplit(points, idx[:mid], part, base, nparts/2)
	rcbSplit(points, idx[mid:], part, base+nparts/2, nparts/2)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// BlockPartition assigns n items to nparts contiguous, balanced blocks.
func BlockPartition(n, nparts int) []int {
	part := make([]int, n)
	for i := range part {
		part[i] = i * nparts / n
	}
	return part
}

// PartSizes returns the number of items in each of nparts parts.
func PartSizes(part []int, nparts int) []int {
	sizes := make([]int, nparts)
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}
