package workload

import (
	"math/rand"
)

// ICCGParams parameterizes the synthetic sparse lower-triangular system
// standing in for the paper's BCSSTK32 (a 2-million-element Harwell-Boeing
// structural matrix that cannot be shipped here). The generator produces
// an irregular banded sparsity pattern whose elimination DAG has the same
// character: deep, irregular, ~2 FLOPs per edge.
type ICCGParams struct {
	Rows  int
	Band  int // predecessors are drawn from the previous Band rows
	MinIn int // min sub-diagonal nonzeros per row (where available)
	MaxIn int // max sub-diagonal nonzeros per row
	Procs int
	Chunk int // block-cyclic row distribution chunk
	Seed  int64
}

// DefaultICCGParams gives a DAG of paper-like character at tractable size.
func DefaultICCGParams() ICCGParams {
	return ICCGParams{Rows: 8000, Band: 64, MinIn: 2, MaxIn: 6, Procs: 32, Chunk: 4, Seed: 3}
}

// Scaled returns a reduced instance.
func (p ICCGParams) Scaled(rows int) ICCGParams {
	p.Rows = rows
	return p
}

// ICCGSystem is the generated triangular system Lx = b plus its
// dataflow structure: Preds[i] are the rows j<i with L[i][j] != 0 (the
// incoming DAG edges of row i), Succs mirrors them.
type ICCGSystem struct {
	P      ICCGParams
	Preds  [][]int32
	PredsW [][]float64 // L[i][j] for each predecessor
	Succs  [][]int32
	Diag   []float64
	B      []float64
	Part   []int // owner of each row (block-cyclic)
}

// NewICCG generates the system deterministically.
func NewICCG(p ICCGParams) *ICCGSystem {
	rng := rand.New(rand.NewSource(p.Seed))
	s := &ICCGSystem{P: p}
	n := p.Rows
	s.Preds = make([][]int32, n)
	s.PredsW = make([][]float64, n)
	s.Succs = make([][]int32, n)
	s.Diag = make([]float64, n)
	s.B = make([]float64, n)
	for i := 0; i < n; i++ {
		s.Diag[i] = 2 + rng.Float64() // well-conditioned
		s.B[i] = rng.Float64()*2 - 1
		lo := i - p.Band
		if lo < 0 {
			lo = 0
		}
		avail := i - lo
		k := 0
		if avail > 0 {
			k = p.MinIn + rng.Intn(p.MaxIn-p.MinIn+1)
			if k > avail {
				k = avail
			}
		}
		seen := make(map[int32]bool, k)
		for len(seen) < k {
			j := int32(lo + rng.Intn(avail))
			if !seen[j] {
				seen[j] = true
				s.Preds[i] = append(s.Preds[i], j)
				s.PredsW[i] = append(s.PredsW[i], (rng.Float64()-0.5)*0.5)
			}
		}
		for _, j := range s.Preds[i] {
			s.Succs[j] = append(s.Succs[j], int32(i))
		}
	}
	// Block-cyclic row ownership.
	s.Part = make([]int, n)
	for i := range s.Part {
		s.Part[i] = (i / p.Chunk) % p.Procs
	}
	return s
}

// ICCGFlopsPerEdge: subtract and multiply per incoming edge.
const ICCGFlopsPerEdge = 2

// NNZ returns the number of sub-diagonal nonzeros (DAG edges).
func (s *ICCGSystem) NNZ() int {
	t := 0
	for _, p := range s.Preds {
		t += len(p)
	}
	return t
}

// RemoteEdgeFraction reports the fraction of DAG edges crossing owners.
func (s *ICCGSystem) RemoteEdgeFraction() float64 {
	remote, total := 0, 0
	for i, preds := range s.Preds {
		for _, j := range preds {
			total++
			if s.Part[i] != s.Part[j] {
				remote++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(remote) / float64(total)
}

// Levels returns the DAG level of each row (longest path from a source)
// and the number of levels — the critical-path structure that makes
// ICCG's parallelism so challenging.
func (s *ICCGSystem) Levels() ([]int, int) {
	lv := make([]int, s.P.Rows)
	max := 0
	for i := 0; i < s.P.Rows; i++ {
		for _, j := range s.Preds[i] {
			if lv[j]+1 > lv[i] {
				lv[i] = lv[j] + 1
			}
		}
		if lv[i] > max {
			max = lv[i]
		}
	}
	return lv, max + 1
}

// Reference solves Lx = b sequentially by forward substitution.
func (s *ICCGSystem) Reference() []float64 {
	x := make([]float64, s.P.Rows)
	for i := 0; i < s.P.Rows; i++ {
		acc := s.B[i]
		for k, j := range s.Preds[i] {
			acc -= s.PredsW[i][k] * x[j]
		}
		x[i] = acc / s.Diag[i]
	}
	return x
}
