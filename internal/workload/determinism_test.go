package workload

import (
	"reflect"
	"testing"
)

// TestGeneratorsDeterministic builds every workload twice from the same
// seed and requires deep equality: graph and mesh generation must be a
// pure function of the parameters, never of map iteration order or
// hidden global state. This is the runtime backstop behind the
// simlint/maporder and simlint/unseededrand conventions.
func TestGeneratorsDeterministic(t *testing.T) {
	em := DefaultEM3DParams().Scaled(320, 2)
	if a, b := NewEM3D(em), NewEM3D(em); !reflect.DeepEqual(a, b) {
		t.Error("EM3D generation is not deterministic: two builds from the same seed differ")
	}

	un := DefaultUnstrucParams().Scaled(400, 2)
	if a, b := NewUnstruc(un), NewUnstruc(un); !reflect.DeepEqual(a, b) {
		t.Error("UNSTRUC mesh generation is not deterministic: two builds from the same seed differ")
	}

	ic := DefaultICCGParams().Scaled(640)
	if a, b := NewICCG(ic), NewICCG(ic); !reflect.DeepEqual(a, b) {
		t.Error("ICCG system generation is not deterministic: two builds from the same seed differ")
	}

	mo := DefaultMoldynParams().ScaledBox(256, 3)
	a, b := NewMoldyn(mo), NewMoldyn(mo)
	if !reflect.DeepEqual(a, b) {
		t.Error("MOLDYN box generation is not deterministic: two builds from the same seed differ")
	}
	// The interaction list (rebuilt mid-run from positions) must be
	// deterministic too, including its pair order.
	pa := BuildPairs(a.Pos, mo.Box, mo.Cutoff)
	pb := BuildPairs(b.Pos, mo.Box, mo.Cutoff)
	if !reflect.DeepEqual(pa, pb) {
		t.Error("MOLDYN BuildPairs is not deterministic for identical positions")
	}
}

// TestRCBDeterministicAtScaleOutPartCounts re-runs the recursive
// coordinate bisection at the scale-out geometry part counts (8 through
// 512) and requires identical assignments and perfectly balanced parts:
// partitioning must stay a pure function of the points when the machine
// grows beyond the paper's 32 nodes.
func TestRCBDeterministicAtScaleOutPartCounts(t *testing.T) {
	mo := DefaultMoldynParams().ScaledBox(1024, 3)
	box := NewMoldyn(mo)
	for _, nparts := range []int{8, 64, 128, 512} {
		a := RCB(box.Pos, nparts)
		b := RCB(box.Pos, nparts)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("RCB with %d parts is not deterministic", nparts)
			continue
		}
		counts := make([]int, nparts)
		for _, p := range a {
			counts[p]++
		}
		lo, hi := len(a), 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Errorf("RCB with %d parts: part sizes range %d-%d, want balanced", nparts, lo, hi)
		}
	}
}
