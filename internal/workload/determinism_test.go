package workload

import (
	"reflect"
	"testing"
)

// TestGeneratorsDeterministic builds every workload twice from the same
// seed and requires deep equality: graph and mesh generation must be a
// pure function of the parameters, never of map iteration order or
// hidden global state. This is the runtime backstop behind the
// simlint/maporder and simlint/unseededrand conventions.
func TestGeneratorsDeterministic(t *testing.T) {
	em := DefaultEM3DParams().Scaled(320, 2)
	if a, b := NewEM3D(em), NewEM3D(em); !reflect.DeepEqual(a, b) {
		t.Error("EM3D generation is not deterministic: two builds from the same seed differ")
	}

	un := DefaultUnstrucParams().Scaled(400, 2)
	if a, b := NewUnstruc(un), NewUnstruc(un); !reflect.DeepEqual(a, b) {
		t.Error("UNSTRUC mesh generation is not deterministic: two builds from the same seed differ")
	}

	ic := DefaultICCGParams().Scaled(640)
	if a, b := NewICCG(ic), NewICCG(ic); !reflect.DeepEqual(a, b) {
		t.Error("ICCG system generation is not deterministic: two builds from the same seed differ")
	}

	mo := DefaultMoldynParams().ScaledBox(256, 3)
	a, b := NewMoldyn(mo), NewMoldyn(mo)
	if !reflect.DeepEqual(a, b) {
		t.Error("MOLDYN box generation is not deterministic: two builds from the same seed differ")
	}
	// The interaction list (rebuilt mid-run from positions) must be
	// deterministic too, including its pair order.
	pa := BuildPairs(a.Pos, mo.Box, mo.Cutoff)
	pb := BuildPairs(b.Pos, mo.Box, mo.Cutoff)
	if !reflect.DeepEqual(pa, pb) {
		t.Error("MOLDYN BuildPairs is not deterministic for identical positions")
	}
}
