package workload

import (
	"fmt"
	"math/rand"
)

// EM3DParams parameterizes the EM3D bipartite graph exactly as the paper
// reports its configuration: "10000 nodes, degree 10, 20 percent
// non-local edges, span of 3, and 50 iterations".
type EM3DParams struct {
	Nodes     int     // nodes per side (E and H each)
	Degree    int     // edges per E node
	PctRemote float64 // fraction of edges to other processors
	Span      int     // remote edges reach at most this many processors away
	Iters     int     // iterations (two phases each)
	Procs     int
	Seed      int64
}

// DefaultEM3DParams returns the paper's configuration.
func DefaultEM3DParams() EM3DParams {
	return EM3DParams{Nodes: 10000, Degree: 10, PctRemote: 0.20, Span: 3, Iters: 50, Procs: 32, Seed: 1}
}

// Scaled returns a proportionally reduced instance for fast sweeps.
func (p EM3DParams) Scaled(nodes, iters int) EM3DParams {
	p.Nodes, p.Iters = nodes, iters
	return p
}

// EM3DGraph is the generated bipartite graph. E node i is owned by
// Owner[i]; its H-side neighbors are EAdj[i] with coefficients ECoef[i].
// The H side mirrors this. Ownership is blocked: node i lives on
// processor i*P/N (both sides partitioned identically, so edge
// remoteness is controlled purely by the generator).
type EM3DGraph struct {
	P     EM3DParams
	EAdj  [][]int32   // E -> H neighbor lists
	ECoef [][]float64 // per-edge coefficients for the E update
	HAdj  [][]int32   // H -> E neighbor lists
	HCoef [][]float64
	Owner []int32 // owner of node i (same for both sides)
	EInit []float64
	HInit []float64
}

// NewEM3D generates the graph deterministically from p.Seed.
func NewEM3D(p EM3DParams) *EM3DGraph {
	if p.Nodes < p.Procs {
		panic(fmt.Sprintf("workload: EM3D with %d nodes < %d procs", p.Nodes, p.Procs))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &EM3DGraph{P: p}
	n := p.Nodes
	// Index ranges per processor; ownership derives from the same block
	// boundaries so that every consumer of the ranges agrees (i*P/N and
	// its inverse disagree at boundaries when P does not divide N).
	starts := make([]int, p.Procs+1)
	for pr := 0; pr <= p.Procs; pr++ {
		starts[pr] = pr * n / p.Procs
	}
	g.Owner = make([]int32, n)
	for pr := 0; pr < p.Procs; pr++ {
		for i := starts[pr]; i < starts[pr+1]; i++ {
			g.Owner[i] = int32(pr)
		}
	}
	pick := func(pr int) int32 {
		lo, hi := starts[pr], starts[pr+1]
		return int32(lo + rng.Intn(hi-lo))
	}
	gen := func() (adj [][]int32, coef [][]float64) {
		adj = make([][]int32, n)
		coef = make([][]float64, n)
		for i := 0; i < n; i++ {
			owner := int(g.Owner[i])
			adj[i] = make([]int32, p.Degree)
			coef[i] = make([]float64, p.Degree)
			for d := 0; d < p.Degree; d++ {
				pr := owner
				if rng.Float64() < p.PctRemote {
					// Remote within +-Span processors, wrapping.
					off := 1 + rng.Intn(p.Span)
					if rng.Intn(2) == 0 {
						off = -off
					}
					pr = ((owner+off)%p.Procs + p.Procs) % p.Procs
				}
				adj[i][d] = pick(pr)
				coef[i][d] = rng.Float64()*0.02 - 0.01
			}
		}
		return adj, coef
	}
	g.EAdj, g.ECoef = gen()
	g.HAdj, g.HCoef = gen()
	g.EInit = make([]float64, n)
	g.HInit = make([]float64, n)
	for i := 0; i < n; i++ {
		g.EInit[i] = rng.Float64()
		g.HInit[i] = rng.Float64()
	}
	return g
}

// RemoteEdgeFraction reports the achieved fraction of remote edges.
func (g *EM3DGraph) RemoteEdgeFraction() float64 {
	remote, total := 0, 0
	count := func(adj [][]int32) {
		for i, nbrs := range adj {
			for _, j := range nbrs {
				total++
				if g.Owner[i] != g.Owner[j] {
					remote++
				}
			}
		}
	}
	count(g.EAdj)
	count(g.HAdj)
	return float64(remote) / float64(total)
}

// Reference runs the sequential EM3D computation for iters iterations
// and returns the final E and H values. One iteration is an E phase
// (each E node accumulates coef*H over its neighbors) then an H phase.
func (g *EM3DGraph) Reference(iters int) (e, h []float64) {
	e = append([]float64(nil), g.EInit...)
	h = append([]float64(nil), g.HInit...)
	for it := 0; it < iters; it++ {
		for i := range e {
			for d, j := range g.EAdj[i] {
				e[i] -= g.ECoef[i][d] * h[j]
			}
		}
		for i := range h {
			for d, j := range g.HAdj[i] {
				h[i] -= g.HCoef[i][d] * e[j]
			}
		}
	}
	return e, h
}
