// Package workload generates the four applications' input datasets:
// EM3D's irregular bipartite graph, UNSTRUC's 3-D unstructured mesh,
// ICCG's sparse triangular system (a synthetic stand-in for the
// Harwell-Boeing BCSSTK32 matrix, which is not distributable here), and
// MOLDYN's molecule box, plus the recursive-coordinate-bisection
// partitioner the paper uses for MOLDYN. All generation is deterministic
// given a seed.
package workload
