package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestHistogramPowerOfTwoBuckets(t *testing.T) {
	var h obs.Histogram
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41},
	}
	for _, c := range cases {
		before := h.Bucket(c.bucket)
		h.Observe(c.v)
		if h.Bucket(c.bucket) != before+1 {
			t.Errorf("Observe(%d) did not land in bucket %d", c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	if h.Max() != 1<<40 {
		t.Errorf("max = %d, want %d", h.Max(), int64(1)<<40)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("x_total", obs.NodeLabel(3))
	b := r.Counter("x_total", obs.NodeLabel(3))
	if a != b {
		t.Error("re-registering the same (name, label) returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters diverged")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := obs.NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

func TestWriteTextSortedAndFormatted(t *testing.T) {
	r := obs.NewRegistry()
	// Register deliberately out of name/label order; the snapshot must
	// sort regardless of registration order.
	r.Gauge("z_depth", "").Set(7)
	r.Counter("a_total", obs.NodeLabel(10)).Add(2)
	r.Counter("a_total", obs.NodeLabel(2)).Add(1)
	h := r.Histogram("m_lat", "")
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a_total{node=002} 1\n" +
		"a_total{node=010} 2\n" +
		"m_lat hist count=2 sum=103 max=100 b2=1 b7=1\n" +
		"z_depth 7\n"
	if buf.String() != want {
		t.Errorf("snapshot mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestNodeLabelZeroPadsForSortOrder(t *testing.T) {
	if got := obs.NodeLabel(5); got != "node=005" {
		t.Errorf("NodeLabel(5) = %q", got)
	}
	if obs.NodeLabel(9) > obs.NodeLabel(10) {
		t.Error("lexicographic label order disagrees with numeric node order")
	}
}

func TestSpanBufferWraps(t *testing.T) {
	b := obs.NewSpanBuffer(3)
	for i := 0; i < 5; i++ {
		b.Record(obs.Span{Thread: "t", Start: sim.Time(i), End: sim.Time(i + 1)})
	}
	if b.Total() != 5 {
		t.Errorf("total = %d, want 5", b.Total())
	}
	spans := b.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Start != sim.Time(2+i) {
			t.Errorf("retained wrong window: %v", spans)
			break
		}
	}
}

func TestSpanBufferZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpanBuffer(0) did not panic")
		}
	}()
	obs.NewSpanBuffer(0)
}

// timelineInput builds a fixed span/event set exercising every emission
// path: run spans, blocked spans with and without args, and protocol
// instants.
func timelineInput() ([]obs.Span, []trace.Event) {
	spans := []obs.Span{
		{Thread: "proc0", Start: 0, End: 50000},
		{Thread: "proc1", Start: 0, End: 100000, Blocked: true, Reason: "miss-fill", Arg: 42},
		{Thread: "proc0", Start: 50000, End: 150000, Blocked: true, Reason: "await-message"},
	}
	events := []trace.Event{
		{At: 50000, Node: 1, Kind: trace.KMsgSend, A: 0, B: 64},
		{At: 150000, Node: 0, Kind: trace.KMsgRecv, A: 1},
	}
	return spans, events
}

func TestWriteTimelineIsValidTraceEventJSON(t *testing.T) {
	clk := sim.NewClock(20) // 50000 ps per cycle
	spans, events := timelineInput()
	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, clk, spans, events, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, slices, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
		case "i":
			instants++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	// 2 process_name + 2 thread_name records, one slice per span, one
	// instant per trace event.
	if meta != 4 || slices != 3 || instants != 2 {
		t.Errorf("event counts (meta=%d, slices=%d, instants=%d), want (4, 3, 2)", meta, slices, instants)
	}
	// Timestamps are cycles: the second span starts at cycle 0 and lasts
	// 100000 ps / 50000 ps-per-cycle = 2 cycles.
	for _, e := range doc.TraceEvents {
		if e.Name == "miss-fill" && (e.Ts != 0 || e.Dur != 2) {
			t.Errorf("miss-fill slice ts=%d dur=%d, want 0/2", e.Ts, e.Dur)
		}
	}
	if !strings.Contains(buf.String(), `"args":{"arg":42}`) {
		t.Error("blocked span arg missing from timeline")
	}
}

func TestWriteTimelineByteIdentical(t *testing.T) {
	clk := sim.NewClock(20)
	spans, events := timelineInput()
	var a, b bytes.Buffer
	if err := obs.WriteTimeline(&a, clk, spans, events, nil); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTimeline(&b, clk, spans, events, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same input differ")
	}
}

func TestMergeSpansOrdersTrimsAndCountsEvictions(t *testing.T) {
	a, b := obs.NewSpanBuffer(4), obs.NewSpanBuffer(4)
	for _, end := range []sim.Time{10, 30, 50, 70, 90} { // 5 into cap 4: first evicted
		a.Record(obs.Span{Thread: "a", End: end})
	}
	for _, end := range []sim.Time{20, 40, 60} {
		b.Record(obs.Span{Thread: "b", End: end})
	}
	m := obs.MergeSpans(4, a, b)
	if m.Total() != 8 {
		t.Errorf("merged total = %d, want 8 (evictions included)", m.Total())
	}
	got := m.Spans()
	want := []sim.Time{50, 60, 70, 90}
	if len(got) != len(want) {
		t.Fatalf("retained %d spans, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.End != want[i] {
			t.Errorf("span %d ends at %d, want %d", i, s.End, want[i])
		}
	}
	// Equal-End spans keep shard order (stable sort).
	x, y := obs.NewSpanBuffer(2), obs.NewSpanBuffer(2)
	x.Record(obs.Span{Thread: "x", End: 5})
	y.Record(obs.Span{Thread: "y", End: 5})
	tied := obs.MergeSpans(4, x, y).Spans()
	if len(tied) != 2 || tied[0].Thread != "x" || tied[1].Thread != "y" {
		t.Errorf("equal-End merge reordered spans: %+v", tied)
	}
}

func TestHistogramMergeMatchesSingleWriter(t *testing.T) {
	var whole, sa, sb obs.Histogram
	for i, v := range []int64{0, 1, 3, 7, 100, 5000, 5000, 123456} {
		whole.Observe(v)
		if i%2 == 0 {
			sa.Observe(v)
		} else {
			sb.Observe(v)
		}
	}
	var merged obs.Histogram
	merged.Merge(&sa)
	merged.Merge(&sb)
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() || merged.Max() != whole.Max() {
		t.Errorf("merged count/sum/max = %d/%d/%d, single-writer %d/%d/%d",
			merged.Count(), merged.Sum(), merged.Max(), whole.Count(), whole.Sum(), whole.Max())
	}
	for i := 0; i < 65; i++ {
		if merged.Bucket(i) != whole.Bucket(i) {
			t.Errorf("bucket %d: merged %d, single-writer %d", i, merged.Bucket(i), whole.Bucket(i))
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h obs.Histogram
	if h.P50() != 0 || h.P99() != 0 {
		t.Error("empty histogram percentile not 0")
	}
	// 100 samples of 10 and one of 1000: p50 falls in 10's bucket
	// (bit length 4, upper bound 15), p99 likewise, max is exact.
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	h.Observe(1000)
	if got := h.P50(); got != 15 {
		t.Errorf("P50 = %d, want 15 (upper bound of 10's power-of-two bucket)", got)
	}
	if got := h.P99(); got != 15 {
		t.Errorf("P99 = %d, want 15", got)
	}
	if got := h.Percentile(1.0); got != 1000 {
		t.Errorf("Percentile(1.0) = %d, want the exact max 1000", got)
	}
	// All-zero samples stay in bucket 0.
	var z obs.Histogram
	z.Observe(0)
	z.Observe(0)
	if z.P99() != 0 {
		t.Errorf("all-zero P99 = %d, want 0", z.P99())
	}
}

func TestFindHistogramDoesNotRegister(t *testing.T) {
	r := obs.NewRegistry()
	if r.FindHistogram("mesh_hop_wait_ps", "") != nil {
		t.Error("FindHistogram invented an instrument")
	}
	if r.Len() != 0 {
		t.Errorf("FindHistogram registered: len = %d", r.Len())
	}
	h := r.Histogram("mesh_hop_wait_ps", "")
	h.Observe(7)
	got := r.FindHistogram("mesh_hop_wait_ps", "")
	if got != h {
		t.Error("FindHistogram did not return the registered instrument")
	}
	r.Counter("messages", "")
	if r.FindHistogram("messages", "") != nil {
		t.Error("FindHistogram returned a counter as a histogram")
	}
}
