package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestHistogramPowerOfTwoBuckets(t *testing.T) {
	var h obs.Histogram
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41},
	}
	for _, c := range cases {
		before := h.Bucket(c.bucket)
		h.Observe(c.v)
		if h.Bucket(c.bucket) != before+1 {
			t.Errorf("Observe(%d) did not land in bucket %d", c.v, c.bucket)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	if h.Max() != 1<<40 {
		t.Errorf("max = %d, want %d", h.Max(), int64(1)<<40)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("x_total", obs.NodeLabel(3))
	b := r.Counter("x_total", obs.NodeLabel(3))
	if a != b {
		t.Error("re-registering the same (name, label) returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters diverged")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := obs.NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

func TestWriteTextSortedAndFormatted(t *testing.T) {
	r := obs.NewRegistry()
	// Register deliberately out of name/label order; the snapshot must
	// sort regardless of registration order.
	r.Gauge("z_depth", "").Set(7)
	r.Counter("a_total", obs.NodeLabel(10)).Add(2)
	r.Counter("a_total", obs.NodeLabel(2)).Add(1)
	h := r.Histogram("m_lat", "")
	h.Observe(3)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a_total{node=002} 1\n" +
		"a_total{node=010} 2\n" +
		"m_lat hist count=2 sum=103 max=100 b2=1 b7=1\n" +
		"z_depth 7\n"
	if buf.String() != want {
		t.Errorf("snapshot mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

func TestNodeLabelZeroPadsForSortOrder(t *testing.T) {
	if got := obs.NodeLabel(5); got != "node=005" {
		t.Errorf("NodeLabel(5) = %q", got)
	}
	if obs.NodeLabel(9) > obs.NodeLabel(10) {
		t.Error("lexicographic label order disagrees with numeric node order")
	}
}

func TestSpanBufferWraps(t *testing.T) {
	b := obs.NewSpanBuffer(3)
	for i := 0; i < 5; i++ {
		b.Record(obs.Span{Thread: "t", Start: sim.Time(i), End: sim.Time(i + 1)})
	}
	if b.Total() != 5 {
		t.Errorf("total = %d, want 5", b.Total())
	}
	spans := b.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Start != sim.Time(2+i) {
			t.Errorf("retained wrong window: %v", spans)
			break
		}
	}
}

func TestSpanBufferZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpanBuffer(0) did not panic")
		}
	}()
	obs.NewSpanBuffer(0)
}

// timelineInput builds a fixed span/event set exercising every emission
// path: run spans, blocked spans with and without args, and protocol
// instants.
func timelineInput() ([]obs.Span, []trace.Event) {
	spans := []obs.Span{
		{Thread: "proc0", Start: 0, End: 50000},
		{Thread: "proc1", Start: 0, End: 100000, Blocked: true, Reason: "miss-fill", Arg: 42},
		{Thread: "proc0", Start: 50000, End: 150000, Blocked: true, Reason: "await-message"},
	}
	events := []trace.Event{
		{At: 50000, Node: 1, Kind: trace.KMsgSend, A: 0, B: 64},
		{At: 150000, Node: 0, Kind: trace.KMsgRecv, A: 1},
	}
	return spans, events
}

func TestWriteTimelineIsValidTraceEventJSON(t *testing.T) {
	clk := sim.NewClock(20) // 50000 ps per cycle
	spans, events := timelineInput()
	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, clk, spans, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, slices, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
		case "i":
			instants++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	// 2 process_name + 2 thread_name records, one slice per span, one
	// instant per trace event.
	if meta != 4 || slices != 3 || instants != 2 {
		t.Errorf("event counts (meta=%d, slices=%d, instants=%d), want (4, 3, 2)", meta, slices, instants)
	}
	// Timestamps are cycles: the second span starts at cycle 0 and lasts
	// 100000 ps / 50000 ps-per-cycle = 2 cycles.
	for _, e := range doc.TraceEvents {
		if e.Name == "miss-fill" && (e.Ts != 0 || e.Dur != 2) {
			t.Errorf("miss-fill slice ts=%d dur=%d, want 0/2", e.Ts, e.Dur)
		}
	}
	if !strings.Contains(buf.String(), `"args":{"arg":42}`) {
		t.Error("blocked span arg missing from timeline")
	}
}

func TestWriteTimelineByteIdentical(t *testing.T) {
	clk := sim.NewClock(20)
	spans, events := timelineInput()
	var a, b bytes.Buffer
	if err := obs.WriteTimeline(&a, clk, spans, events); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTimeline(&b, clk, spans, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same input differ")
	}
}
