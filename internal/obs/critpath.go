package obs

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// PathCat classifies cycles on the critical path. The five categories
// split the paper's four Figure 4 buckets one level finer: the time a
// processor spends stalled (mem-wait) or synchronizing (sync) is
// decomposed into the part that is pure network latency (head-of-packet
// flight time at zero load), the part that is network bandwidth /
// occupancy (serialization and queueing), and the residue that really is
// memory-system or synchronization delay.
type PathCat int

// Critical-path categories.
const (
	CatCompute      PathCat = iota // instruction execution + message overhead
	CatMemStall                    // miss stall net of network time
	CatNetLatency                  // uncongested packet flight time
	CatNetBandwidth                // serialization, queueing, link occupancy
	CatSync                        // barriers, locks, waiting for a sender

	NumPathCats = 5
)

func (c PathCat) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatMemStall:
		return "mem_stall"
	case CatNetLatency:
		return "net_latency"
	case CatNetBandwidth:
		return "net_bandwidth"
	case CatSync:
		return "sync"
	}
	return fmt.Sprintf("PathCat(%d)", int(c))
}

// CritEdge is one causal edge between thread spans: a message send
// observed at its receive, a miss observed at its fill, a directory
// transaction observed at its grant, a barrier arrival observed at its
// release. Lat and BW carry the recorder's decomposition of the edge
// interval into network latency and bandwidth/occupancy; the remainder
// is protocol or synchronization time.
type CritEdge struct {
	Kind     string   // "msg", "miss", "txn", "barrier"
	Src, Dst int      // cause and effect nodes
	Start    sim.Time // cause timestamp (send, txn begin, barrier arrival)
	End      sim.Time // effect timestamp (receive, fill, grant, release)
	Lat      sim.Time // uncongested network-latency part of [Start, End)
	BW       sim.Time // serialization/occupancy part of [Start, End)
}

// critRing is a fixed-capacity edge ring (mirrors trace.Buffer).
type critRing struct {
	ring  []CritEdge
	next  int
	total int64
}

func (b *critRing) add(e CritEdge) {
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		return
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % cap(b.ring)
}

func (b *critRing) edges() []CritEdge {
	out := make([]CritEdge, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// CritRecorder accumulates the dependency information the critical-path
// pass needs: per-node reclassification totals (how much of each node's
// mem-wait and sync bucket time was really network latency or network
// bandwidth) and a bounded per-tile ring of causal edges. Every method
// is called at the affected node's context, so under the tiled engine
// each slot has a single writer — the node's tile — and the recorder
// is shard-safe without locks; rings are merged deterministically after
// the run.
type CritRecorder struct {
	// latMem/bwMem: picoseconds reclassified out of BucketMemWait into
	// network latency / bandwidth for each node. Single-writer per node.
	latMem, bwMem []sim.Time
	// latSync/bwSync: same, reclassified out of BucketSync (awaited
	// message transit time).
	latSync, bwSync []sim.Time
	rings           []*critRing
	tileOf          []int // node -> ring index; nil means one ring
}

// DefaultCritEdgeCap bounds each tile's edge ring. Edges are a strict
// subset of protocol events, so this is sized like a trace buffer.
const DefaultCritEdgeCap = 4096

// NewCritRecorder sizes a recorder for nodes processors partitioned by
// tileOf (node -> tile index; nil or empty means a single serial ring)
// with edgeCap edges retained per tile.
func NewCritRecorder(nodes int, tileOf []int, edgeCap int) *CritRecorder {
	tiles := 1
	if len(tileOf) > 0 {
		for _, t := range tileOf {
			if t+1 > tiles {
				tiles = t + 1
			}
		}
	} else {
		tileOf = nil
	}
	r := &CritRecorder{
		latMem:  make([]sim.Time, nodes),
		bwMem:   make([]sim.Time, nodes),
		latSync: make([]sim.Time, nodes),
		bwSync:  make([]sim.Time, nodes),
		rings:   make([]*critRing, tiles),
		tileOf:  tileOf,
	}
	for i := range r.rings {
		r.rings[i] = &critRing{ring: make([]CritEdge, 0, edgeCap)}
	}
	return r
}

// MissWait reclassifies lat+bw picoseconds of node's mem-wait bucket as
// network latency and bandwidth. Called when a miss fill wakes a waiter
// whose wait was charged to BucketMemWait.
func (r *CritRecorder) MissWait(node int, lat, bw sim.Time) {
	r.latMem[node] += lat
	r.bwMem[node] += bw
}

// MsgWait reclassifies lat+bw picoseconds of node's sync bucket as
// network latency and bandwidth. Called when an awaited message arrival
// wakes a receiver whose wait was charged to BucketSync.
func (r *CritRecorder) MsgWait(node int, lat, bw sim.Time) {
	r.latSync[node] += lat
	r.bwSync[node] += bw
}

// Edge records one causal edge at node's tile.
func (r *CritRecorder) Edge(node int, e CritEdge) {
	i := 0
	if r.tileOf != nil {
		i = r.tileOf[node]
	}
	r.rings[i].add(e)
}

// EdgesTotal reports how many edges were recorded over the run,
// including ones the rings evicted.
func (r *CritRecorder) EdgesTotal() int64 {
	var t int64
	for _, b := range r.rings {
		t += b.total
	}
	return t
}

// Edges returns the retained edges merged across tiles, stable-sorted by
// (End, tile order) — deterministic at every worker count, since each
// tile's ring content is independent of scheduling.
func (r *CritRecorder) Edges() []CritEdge {
	var all []CritEdge
	for _, b := range r.rings {
		all = append(all, b.edges()...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].End != all[j].End {
			return all[i].End < all[j].End
		}
		return all[i].Start < all[j].Start
	})
	return all
}

// CritStats is the post-run critical-path attribution for one run: the
// last-finishing processor's timeline — whose length is the run's
// makespan — split into the five path categories. The five category
// fields sum to TotalCycles exactly; all fields are exported so the
// summary survives JSON round-trips (runlog, disk cache).
type CritStats struct {
	Node         int   // the critical (last-finishing) processor
	TotalCycles  int64 // critical-path length = sum of the five categories
	Compute      int64 // instruction execution + message overhead
	MemStall     int64 // miss stall net of network latency/bandwidth
	NetLatency   int64 // uncongested flight time of awaited packets
	NetBandwidth int64 // serialization/queueing of awaited packets
	Sync         int64 // barriers, locks, waiting for senders
	EdgesTotal   int64 // causal edges recorded (including evicted)
	TopEdges     []CritEdgeSummary
}

// CritEdgeSummary is one of the longest recorded causal edges, with
// timestamps converted to cycles for the runlog.
type CritEdgeSummary struct {
	Kind        string
	Src, Dst    int
	StartCycles int64
	EndCycles   int64
	LatCycles   int64
	BWCycles    int64
}

// Cat returns the named category's cycle count.
func (s *CritStats) Cat(c PathCat) int64 {
	switch c {
	case CatCompute:
		return s.Compute
	case CatMemStall:
		return s.MemStall
	case CatNetLatency:
		return s.NetLatency
	case CatNetBandwidth:
		return s.NetBandwidth
	case CatSync:
		return s.Sync
	}
	return 0
}

// Summarize runs the critical-path pass: node is the last-finishing
// processor (the critical path in a barrier-terminated program is its
// timeline) and bd its time breakdown. Category picosecond totals are
// exact partitions of the breakdown — compute = compute + msg-overhead,
// net latency/bandwidth are the recorder's reclassifications, and
// mem-stall/sync keep the remainder of their buckets — converted to
// cycles per category so the five cycle counts sum to TotalCycles by
// construction. topN bounds the reported longest edges.
func (r *CritRecorder) Summarize(clk sim.Clock, node int, bd stats.Breakdown, topN int) *CritStats {
	compute := bd.T[stats.BucketCompute] + bd.T[stats.BucketMsgOverhead]
	memStall := bd.T[stats.BucketMemWait] - r.latMem[node] - r.bwMem[node]
	sync := bd.T[stats.BucketSync] - r.latSync[node] - r.bwSync[node]
	lat := r.latMem[node] + r.latSync[node]
	bw := r.bwMem[node] + r.bwSync[node]
	s := &CritStats{
		Node:         node,
		Compute:      clk.ToCycles(compute),
		MemStall:     clk.ToCycles(memStall),
		NetLatency:   clk.ToCycles(lat),
		NetBandwidth: clk.ToCycles(bw),
		Sync:         clk.ToCycles(sync),
		EdgesTotal:   r.EdgesTotal(),
	}
	s.TotalCycles = s.Compute + s.MemStall + s.NetLatency + s.NetBandwidth + s.Sync

	edges := r.Edges()
	sort.SliceStable(edges, func(i, j int) bool {
		di, dj := edges[i].End-edges[i].Start, edges[j].End-edges[j].Start
		if di != dj {
			return di > dj
		}
		if edges[i].Start != edges[j].Start {
			return edges[i].Start < edges[j].Start
		}
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		return edges[i].Kind < edges[j].Kind
	})
	if len(edges) > topN {
		edges = edges[:topN]
	}
	for _, e := range edges {
		s.TopEdges = append(s.TopEdges, CritEdgeSummary{
			Kind:        e.Kind,
			Src:         e.Src,
			Dst:         e.Dst,
			StartCycles: clk.ToCycles(e.Start),
			EndCycles:   clk.ToCycles(e.End),
			LatCycles:   clk.ToCycles(e.Lat),
			BWCycles:    clk.ToCycles(e.BW),
		})
	}
	return s
}
