package obs

import (
	"bufio"
	"io"
	"strconv"

	"repro/internal/sim"
	"repro/internal/trace"
)

// WriteTimeline writes the run's thread-state spans and protocol trace
// events as Chrome trace-event JSON, loadable by Perfetto
// (https://ui.perfetto.dev) and chrome://tracing.
//
// Layout: process 0 ("threads") has one track per simulated thread with
// a complete ("X") slice per pause interval — "run" slices are charged
// execution time (self-armed sleeps), named slices are blocked waits
// labelled by their wait reason. Process 1 ("protocol") has one track
// per node carrying the trace.Buffer events (miss-start/miss-end/inval/
// msg-send/...) as instant events with their operands in args. Process 2
// ("critpath") has one track per destination node carrying recorded
// causal edges (msg/miss/txn/barrier) as complete slices spanning
// [Start, End), with the latency/bandwidth decomposition in args.
//
// Timestamps are emitted in processor cycles via clk (the JSON "ts"
// field, nominally microseconds — read 1 us as 1 cycle). Output is
// byte-identical for identical inputs: integers only, no floats, no map
// iteration.
func WriteTimeline(w io.Writer, clk sim.Clock, spans []Span, events []trace.Event, edges []CritEdge) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\n\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	emit(`{"name":"process_name","ph":"M","pid":0,"args":{"name":"threads"}}`)
	if len(events) > 0 {
		emit(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"protocol"}}`)
	}
	if len(edges) > 0 {
		emit(`{"name":"process_name","ph":"M","pid":2,"args":{"name":"critpath"}}`)
	}

	// Assign thread track ids in order of first appearance, which is
	// deterministic because spans are recorded in simulation order.
	tids := make(map[string]int)
	var order []string
	for _, s := range spans {
		if _, ok := tids[s.Thread]; !ok {
			tids[s.Thread] = len(order)
			order = append(order, s.Thread)
		}
	}
	for tid, name := range order {
		emit(`{"name":"thread_name","ph":"M","pid":0,"tid":` + strconv.Itoa(tid) +
			`,"args":{"name":` + strconv.Quote(name) + `}}`)
	}

	for _, s := range spans {
		name := "run"
		if s.Blocked {
			name = "blocked"
			if s.Reason != "" {
				name = s.Reason
			}
		}
		ts := clk.ToCycles(s.Start)
		dur := clk.ToCycles(s.End) - ts
		line := `{"name":` + strconv.Quote(name) +
			`,"ph":"X","pid":0,"tid":` + strconv.Itoa(tids[s.Thread]) +
			`,"ts":` + strconv.FormatInt(ts, 10) +
			`,"dur":` + strconv.FormatInt(dur, 10)
		if s.Blocked && s.Arg != 0 {
			line += `,"args":{"arg":` + strconv.FormatInt(s.Arg, 10) + `}`
		}
		emit(line + "}")
	}

	for _, e := range events {
		emit(`{"name":` + strconv.Quote(e.Kind.String()) +
			`,"ph":"i","s":"t","pid":1,"tid":` + strconv.Itoa(e.Node) +
			`,"ts":` + strconv.FormatInt(clk.ToCycles(e.At), 10) +
			`,"args":{"a":` + strconv.FormatInt(e.A, 10) +
			`,"b":` + strconv.FormatInt(e.B, 10) + `}}`)
	}

	for _, e := range edges {
		ts := clk.ToCycles(e.Start)
		dur := clk.ToCycles(e.End) - ts
		emit(`{"name":` + strconv.Quote(e.Kind) +
			`,"ph":"X","pid":2,"tid":` + strconv.Itoa(e.Dst) +
			`,"ts":` + strconv.FormatInt(ts, 10) +
			`,"dur":` + strconv.FormatInt(dur, 10) +
			`,"args":{"src":` + strconv.Itoa(e.Src) +
			`,"lat":` + strconv.FormatInt(clk.ToCycles(e.Lat), 10) +
			`,"bw":` + strconv.FormatInt(clk.ToCycles(e.BW), 10) + `}}`)
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}
