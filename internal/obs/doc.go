// Package obs is the simulator's deterministic observability layer: a
// metrics registry (counters, gauges, power-of-two histograms), thread
// state span recording, and a Perfetto-loadable timeline export. It plays
// the role of Alewife's CMMU statistics counters for quantities the paper
// never plotted: where cycles go per phase, which mesh links saturate
// under bisection cross-traffic, and how miss latency distributes.
//
// Determinism contract. Everything in this package observes only
// simulated time (sim.Time) and values handed to it by the (strictly
// single-threaded) simulation; it never reads the host clock, never uses
// randomness, and never iterates a map when producing output. Two runs of
// the same RunConfig therefore produce byte-identical snapshots and
// timelines, and instrumentation never feeds back into simulated timing:
// an instrumented run's figure data is byte-identical to an
// uninstrumented run's. The package is enforced as simulator-facing by
// simlint (wallclock/unseededrand/maporder).
package obs
