package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/stats"
)

// Counter is a monotonically increasing count.
type Counter struct{ v int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time value, with a high-water helper for
// tracking maxima (queue depths, occupancy).
type Gauge struct{ v int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v = v }

// SetMax stores v if it exceeds the current value (high-water mark).
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v }

// histBuckets is the fixed bucket count: bucket i holds observations
// whose value has bit length i, i.e. the power-of-two range
// [2^(i-1), 2^i); bucket 0 holds zero and negative observations. 64
// buckets cover the full int64 range.
const histBuckets = 65

// Histogram accumulates observations into power-of-two buckets. The
// intended unit is simulated cycles (latencies, depths); the exponential
// buckets match the dynamic range of miss latencies under congestion.
type Histogram struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() int64 { return h.max }

// Bucket returns the count in power-of-two bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Merge folds o's samples into h. Bucket counts, count, and sum add and
// max takes the larger value, all commutative and associative — merging
// per-tile scratch histograms in any order yields byte-identical
// snapshots to observing every sample into a single histogram.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Percentile returns the nearest-rank p-quantile of the observed
// samples. Samples are bucketed by power of two, so the result is the
// upper bound of the bucket holding the nearest-rank sample, clamped to
// the observed maximum (exact for p=1). Returns 0 when empty. The rank
// convention matches stats.Summarize.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(stats.NearestRank(int(h.count), p))
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			ub := h.max
			if i < 63 {
				ub = int64(1)<<uint(i) - 1
			}
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// P50 returns the nearest-rank median (bucket upper bound).
func (h *Histogram) P50() int64 { return h.Percentile(0.50) }

// P99 returns the nearest-rank 99th percentile (bucket upper bound).
func (h *Histogram) P99() int64 { return h.Percentile(0.99) }

// metricKind tags the concrete type held by a registry entry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name  string // e.g. "mem_miss_latency_cycles"
	label string // e.g. "node=003" or "" for machine-wide
	kind  metricKind
	c     *Counter
	g     *Gauge
	h     *Histogram
}

// key renders the canonical snapshot identity.
func (m *metric) key() string {
	if m.label == "" {
		return m.name
	}
	return m.name + "{" + m.label + "}"
}

// Registry holds named metrics with deterministic snapshot order. It is
// not safe for concurrent use: the simulator is single-threaded by
// construction, and each run owns a private registry. Registering the
// same (name, label) twice returns the existing instrument, so
// subsystems may look instruments up idempotently.
type Registry struct {
	ordered []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// NodeLabel formats the canonical per-node label. Zero padding keeps
// lexicographic snapshot order equal to numeric node order.
func NodeLabel(node int) string { return fmt.Sprintf("node=%03d", node) }

func (r *Registry) lookup(name, label string, kind metricKind) *metric {
	key := name + "\x00" + label
	if m, ok := r.index[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type", m.key()))
		}
		return m
	}
	m := &metric{name: name, label: label, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.ordered = append(r.ordered, m)
	r.index[key] = m
	return m
}

// Counter registers (or finds) a counter. label may be empty.
func (r *Registry) Counter(name, label string) *Counter {
	return r.lookup(name, label, kindCounter).c
}

// Gauge registers (or finds) a gauge. label may be empty.
func (r *Registry) Gauge(name, label string) *Gauge {
	return r.lookup(name, label, kindGauge).g
}

// Histogram registers (or finds) a power-of-two histogram. label may be
// empty.
func (r *Registry) Histogram(name, label string) *Histogram {
	return r.lookup(name, label, kindHistogram).h
}

// FindHistogram returns the histogram registered under (name, label), or
// nil if absent. Unlike Histogram it never registers, so post-run
// consumers (telemetry) can probe a snapshot without mutating it.
func (r *Registry) FindHistogram(name, label string) *Histogram {
	if m, ok := r.index[name+"\x00"+label]; ok && m.kind == kindHistogram {
		return m.h
	}
	return nil
}

// Len reports the number of registered instruments.
func (r *Registry) Len() int { return len(r.ordered) }

// WriteText writes the snapshot as text, one instrument per line, sorted
// by (name, label). Counters and gauges print their value; histograms
// print count, sum, max, and every non-empty power-of-two bucket as
// b<i>=<count> where bucket i holds values of bit length i (the range
// [2^(i-1), 2^i)). The output is byte-identical across runs of the same
// configuration — golden tests rely on that.
func (r *Registry) WriteText(w io.Writer) error {
	ms := make([]*metric, len(r.ordered))
	copy(ms, r.ordered)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].label < ms[j].label
	})
	for _, m := range ms {
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.key(), m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.key(), m.g.Value())
		case kindHistogram:
			h := m.h
			_, err = fmt.Fprintf(w, "%s hist count=%d sum=%d max=%d", m.key(), h.count, h.sum, h.max)
			if err != nil {
				return err
			}
			for i, c := range h.buckets {
				if c == 0 {
					continue
				}
				if _, err = fmt.Fprintf(w, " b%d=%d", i, c); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintln(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
