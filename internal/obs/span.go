package obs

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Span is one thread-state interval: the thread named Thread was paused
// from Start to End. Blocked distinguishes why it was paused: a false
// Blocked means the thread itself had already armed its wake before
// pausing (a Sleep — the thread is consuming charged execution time),
// while true means it was parked waiting for an external wake (a cache
// miss fill, a message arrival, a lock release), with Reason/Arg carrying
// the wait label set via sim.Thread.SetWaitReason.
type Span struct {
	Thread  string
	Start   sim.Time
	End     sim.Time
	Blocked bool
	Reason  string
	Arg     int64
}

// SpanBuffer is a fixed-capacity ring of thread-state spans, retaining
// the last cap spans (mirroring trace.Buffer). Not safe for concurrent
// use — the simulator is single-threaded by construction.
type SpanBuffer struct {
	ring  []Span
	next  int
	total int64
}

// NewSpanBuffer creates a buffer holding the last cap spans.
func NewSpanBuffer(cap int) *SpanBuffer {
	if cap <= 0 {
		panic(fmt.Sprintf("obs: non-positive span capacity %d", cap))
	}
	return &SpanBuffer{ring: make([]Span, 0, cap)}
}

// Record appends one span, evicting the oldest when full. It is shaped
// to be installed as a sim.Engine span observer via a thin adapter in
// the machine layer.
func (b *SpanBuffer) Record(s Span) {
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, s)
		return
	}
	b.ring[b.next] = s
	b.next = (b.next + 1) % cap(b.ring)
}

// Total reports how many spans were recorded over the run (including
// evicted ones).
func (b *SpanBuffer) Total() int64 { return b.total }

// MergeSpans combines per-tile span rings into one buffer as if every
// span had been recorded into a single ring of capacity cap. Each tile
// records spans in nondecreasing End order (engine dispatch order), so a
// stable sort by End — ties keep tile order — produces one deterministic
// stream regardless of worker count; the last cap spans are retained and
// Total counts every recorded span, including ones the per-tile rings
// already evicted.
func MergeSpans(cap int, shards ...*SpanBuffer) *SpanBuffer {
	out := NewSpanBuffer(cap)
	var all []Span
	var total int64
	for _, s := range shards {
		if s == nil {
			continue
		}
		all = append(all, s.Spans()...)
		total += s.total
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].End < all[j].End })
	if len(all) > cap {
		all = all[len(all)-cap:]
	}
	for _, s := range all {
		out.Record(s)
	}
	out.total = total
	return out
}

// Spans returns the retained spans in recording order.
func (b *SpanBuffer) Spans() []Span {
	if len(b.ring) < cap(b.ring) {
		out := make([]Span, len(b.ring))
		copy(out, b.ring)
		return out
	}
	out := make([]Span, 0, cap(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}
