package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestWriteTimelineGolden pins the exporter's exact byte stream — field
// order, integer-only timestamps, one line per record — against a golden
// file. External consumers (Perfetto, the CI snapshot diff) depend on
// this schema being stable; regenerate deliberately with
// `go test ./internal/obs -run Golden -update` and review the diff.
func TestWriteTimelineGolden(t *testing.T) {
	clk := sim.NewClock(20) // 50000 ps per cycle
	spans, events := timelineInput()
	edges := []obs.CritEdge{
		{Kind: "msg", Src: 1, Dst: 0, Start: 50000, End: 150000, Lat: 50000, BW: 50000},
		{Kind: "barrier", Src: 0, Dst: 0, Start: 150000, End: 200000},
	}
	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, clk, spans, events, edges); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "timeline_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline output drifted from the golden schema (-update to accept):\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}

	// Schema assertions on the golden itself, so drift in the checked-in
	// file is caught even if output and golden drift together.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
	// spans (3) + instants (2) + edges (2) + process/thread metadata (3+2).
	if len(doc.TraceEvents) != 12 {
		t.Errorf("golden holds %d records, want 12", len(doc.TraceEvents))
	}
	text := string(want)
	for _, needle := range []string{
		`"name":"critpath"`,                 // critical-path process lane
		`"args":{"src":1,"lat":1,"bw":1}`,   // edge decomposition in cycles
		`"ph":"i"`,                          // protocol instants survive
		`"ph":"X"`,                          // span/edge slices survive
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("golden lost %s", needle)
		}
	}
	if strings.Contains(text, `"ts":0.`) || strings.Contains(text, `.5,`) {
		t.Error("golden contains fractional timestamps; ts/dur must be integers")
	}
}
