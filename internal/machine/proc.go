package machine

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RecvMode selects how a processor receives active messages.
type RecvMode int

const (
	// RecvInterrupt delivers messages asynchronously: a computing
	// processor is interrupted (paying interrupt entry cost) within
	// InterruptCheckCycles of arrival.
	RecvInterrupt RecvMode = iota
	// RecvPoll defers messages until the program calls Poll.
	RecvPoll
)

func (m RecvMode) String() string {
	if m == RecvPoll {
		return "poll"
	}
	return "interrupt"
}

// Proc is one simulated processor as seen by application code. All of its
// methods must be called from the processor's own body function (they run
// on its simulated thread).
type Proc struct {
	M  *Machine
	ID int
	BD stats.Breakdown
	// Ev accumulates counters owned by layers above the substrates
	// (synchronization library). Per-processor — written only from p's own
	// thread — so the tiled engine needs no locking; Run sums them into
	// Result.Events.
	Ev stats.Events

	th     *sim.Thread
	mode   RecvMode
	doneAt sim.Time // when this processor's body returned (load-imbalance metric)
}

// Thread exposes the underlying simulated thread (for synchronization
// libraries that need Pause/Wake).
func (p *Proc) Thread() *sim.Thread { return p.th }

// Now returns the current simulated time.
func (p *Proc) Now() sim.Time { return p.th.Now() }

// NowCycles returns the current time in processor cycles.
func (p *Proc) NowCycles() int64 { return p.M.Clk.ToCycles(p.th.Now()) }

// SetRecvMode selects interrupt or polled message reception.
func (p *Proc) SetRecvMode(m RecvMode) { p.mode = m }

// RecvMode returns the current reception mode.
func (p *Proc) RecvMode() RecvMode { return p.mode }

// Compute charges cycles of useful computation. Under interrupt
// reception, pending messages are handled at bounded intervals during
// the computation, exactly the asynchrony that perturbs processor
// progress in the paper's ICCG results.
func (p *Proc) Compute(cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("machine: negative compute %d", cycles))
	}
	if p.M.Noise != nil {
		// Host noise dilates the compute phase at its boundary; one-shot
		// injected delays also fire here (the processor is the target, so
		// its compute path is where the stall lands).
		if d := p.M.Noise.ComputeDilation(p.ID, p.th.Now()); d > 0 {
			p.BD.Add(stats.BucketCompute, d)
			p.th.Sleep(d)
		}
	}
	chunk := p.M.Cfg.InterruptCheckCycles
	for cycles > 0 {
		if p.mode == RecvInterrupt {
			p.M.AM.DrainInterrupts(p.th, p.ID, &p.BD)
		}
		c := cycles
		if p.mode == RecvInterrupt && c > chunk {
			c = chunk
		}
		d := p.M.Clk.Cycles(c)
		p.BD.Add(stats.BucketCompute, d)
		p.th.Sleep(d)
		cycles -= c
	}
	if p.mode == RecvInterrupt {
		p.M.AM.DrainInterrupts(p.th, p.ID, &p.BD)
	}
}

// Read performs a sequentially-consistent shared-memory load.
func (p *Proc) Read(a mem.Addr) float64 {
	return p.M.Mem.Load(p.th, p.ID, a, &p.BD, stats.BucketMemWait)
}

// Write performs a sequentially-consistent shared-memory store.
func (p *Proc) Write(a mem.Addr, v float64) {
	p.M.Mem.StoreWord(p.th, p.ID, a, v, &p.BD, stats.BucketMemWait)
}

// RMW performs an atomic read-modify-write on a, returning fn's result.
func (p *Proc) RMW(a mem.Addr, fn func(float64) float64) float64 {
	return p.M.Mem.RMW(p.th, p.ID, a, fn, &p.BD, stats.BucketMemWait)
}

// Update atomically runs fn while holding exclusive ownership of a's
// line (the producer-computes pattern: value and presence counter share
// the line, one ownership acquisition covers both).
func (p *Proc) Update(a mem.Addr, fn func()) {
	p.M.Mem.Update(p.th, p.ID, a, fn, &p.BD, stats.BucketMemWait)
}

// Fence drains the write buffer under release consistency (no-op under
// sequential consistency). Synchronization releases must fence first.
func (p *Proc) Fence() {
	p.M.Mem.Fence(p.th, p.ID, &p.BD, stats.BucketMemWait)
}

// Prefetch issues a non-binding read (write=false) or write-ownership
// (write=true) prefetch. It costs PrefetchIssueCycles and never blocks.
func (p *Proc) Prefetch(a mem.Addr, write bool) {
	d := p.M.Clk.Cycles(p.M.Cfg.PrefetchIssueCycles)
	p.BD.Add(stats.BucketMemWait, d)
	p.th.Sleep(d)
	p.M.Mem.Prefetch(p.ID, a, write)
}

// Peek reads shared memory without timing (initialization/validation).
func (p *Proc) Peek(a mem.Addr) float64 { return p.M.Store.Peek(a) }

// Poke writes node-private memory without coherence timing. Use only for
// data never cached remotely (ghost buffers, handler-local state).
func (p *Proc) Poke(a mem.Addr, v float64) { p.M.Store.Poke(a, v) }

// Send launches a fine-grained active message.
func (p *Proc) Send(dst int, h am.HandlerID, args []int64, vals []float64) {
	p.M.AM.Send(p.th, p.ID, dst, h, args, vals, &p.BD)
}

// SendBulk launches a DMA bulk transfer of data with handler args.
func (p *Proc) SendBulk(dst int, h am.HandlerID, args []int64, data []float64) {
	p.M.AM.SendBulk(p.th, p.ID, dst, h, args, data, &p.BD)
}

// ChargeGather charges the gather/scatter copying cost of moving words of
// irregular data to or from a contiguous DMA buffer (message overhead,
// per the paper's accounting for bulk transfer).
func (p *Proc) ChargeGather(words int) {
	d := p.M.Clk.Cycles(am.GatherScatterCycles(words))
	p.BD.Add(stats.BucketMsgOverhead, d)
	p.th.Sleep(d)
}

// Poll explicitly receives pending messages (polling mode); returns the
// number handled.
func (p *Proc) Poll() int {
	return p.M.AM.Poll(p.th, p.ID, &p.BD)
}

// WaitAndHandle blocks until at least one message is pending, then
// receives the pending batch in the current mode. Waiting time is charged
// as synchronization (the processor is idle for data). It returns the
// number of messages handled.
func (p *Proc) WaitAndHandle() int {
	if !p.M.AM.HasPending(p.ID) {
		start := p.th.Now()
		p.M.AM.Notify(p.ID, func() { p.th.WakeAt(p.th.Engine().Now()) })
		p.th.SetWaitReason("await-message", 0)
		p.th.Pause()
		p.BD.Add(stats.BucketSync, p.th.Now()-start)
		if p.M.Crit != nil {
			p.critMsgWait(start, p.th.Now())
		}
	}
	if p.mode == RecvPoll {
		return p.Poll()
	}
	return p.M.AM.DrainInterrupts(p.th, p.ID, &p.BD)
}

// critMsgWait decomposes an awaited-message wait [start, end) for the
// critical-path recorder and emits the send→receive edge. The wake fires
// at the waking message's arrival, so end is its arrival time; the wait
// before the sender injected it stays synchronization (waiting for the
// sender to produce), and the in-network interval splits into uncongested
// flight time (network latency) and the serialization/queueing remainder
// (network bandwidth).
func (p *Proc) critMsgWait(start, end sim.Time) {
	src, sent, _, ok := p.M.AM.LastArrival(p.ID)
	if !ok {
		return
	}
	transitStart := sent
	if transitStart < start {
		// The message was already in flight when the wait began; only the
		// overlap was spent waiting on the network.
		transitStart = start
	}
	transit := end - transitStart
	if transit < 0 {
		transit = 0
	}
	var latRaw sim.Time
	if src == p.ID {
		latRaw = p.M.Clk.Cycles(2) // NI loopback (see am inject)
	} else {
		latRaw = sim.Time(p.M.Net.Hops(src, p.ID)+1) * p.M.Cfg.HopLatency
	}
	lat := latRaw
	if lat > transit {
		lat = transit
	}
	p.M.Crit.MsgWait(p.ID, lat, transit-lat)
	p.M.Crit.Edge(p.ID, obs.CritEdge{
		Kind: "msg", Src: src, Dst: p.ID,
		Start: sent, End: end, Lat: lat, BW: transit - lat,
	})
}

// HandlePending receives any already-queued messages without blocking.
func (p *Proc) HandlePending() int {
	if !p.M.AM.HasPending(p.ID) {
		return 0
	}
	if p.mode == RecvPoll {
		return p.Poll()
	}
	return p.M.AM.DrainInterrupts(p.th, p.ID, &p.BD)
}

// SpinCycles charges synchronization spin time without other effect;
// synchronization primitives use it for backoff waits.
func (p *Proc) SpinCycles(cycles int64) {
	d := p.M.Clk.Cycles(cycles)
	p.BD.Add(stats.BucketSync, d)
	p.th.Sleep(d)
}

// ReadSync is Read with the stall charged to synchronization (spin-wait
// loads on flags and lock words).
func (p *Proc) ReadSync(a mem.Addr) float64 {
	return p.M.Mem.Load(p.th, p.ID, a, &p.BD, stats.BucketSync)
}

// RMWSync is RMW with the stall charged to synchronization.
func (p *Proc) RMWSync(a mem.Addr, fn func(float64) float64) float64 {
	return p.M.Mem.RMW(p.th, p.ID, a, fn, &p.BD, stats.BucketSync)
}

// WriteSync is Write with the stall charged to synchronization.
func (p *Proc) WriteSync(a mem.Addr, v float64) {
	p.M.Mem.StoreWord(p.th, p.ID, a, v, &p.BD, stats.BucketSync)
}
