// Package machine assembles the simulated multiprocessor: an Alewife-class
// node at every mesh router (Sparcle-like processor, CMMU memory system,
// network interface), plus the experiment knobs the paper turns — processor
// clock, cross-traffic bisection emulation, and the ideal-network
// (context-switch) latency emulation.
package machine
