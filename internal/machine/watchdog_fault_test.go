package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// recoverStall runs body on a fresh machine and returns the *sim.StallError
// it panics with (failing the test if it completes or panics otherwise).
func recoverStall(t *testing.T, cfg Config, body func(p *Proc)) (se *sim.StallError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("run completed; want a watchdog panic")
		}
		var ok bool
		if se, ok = r.(*sim.StallError); !ok {
			t.Fatalf("panic value %T (%v), want *sim.StallError", r, r)
		}
	}()
	New(cfg).Run(body)
	return nil
}

func TestDeadlockDetectedWithDump(t *testing.T) {
	// Procs 0 and 1 wait for messages that never arrive; the rest finish.
	// The watchdog must name the blocked threads instead of hanging or
	// dying with a bare panic string.
	se := recoverStall(t, DefaultConfig(), func(p *Proc) {
		if p.ID < 2 {
			p.WaitAndHandle()
		}
	})
	if se.Kind != sim.StallDeadlock {
		t.Errorf("Kind = %v, want %v", se.Kind, sim.StallDeadlock)
	}
	if len(se.Blocked) != 2 {
		t.Fatalf("Blocked = %+v, want exactly procs 0 and 1", se.Blocked)
	}
	for i, want := range []string{"proc0", "proc1"} {
		if se.Blocked[i].Name != want {
			t.Errorf("Blocked[%d].Name = %q, want %q", i, se.Blocked[i].Name, want)
		}
		if se.Blocked[i].Reason != "await-message" {
			t.Errorf("Blocked[%d].Reason = %q, want await-message", i, se.Blocked[i].Reason)
		}
	}
	msg := se.Error()
	if !strings.Contains(msg, "only 30/32 processors finished") {
		t.Errorf("dump lacks completion note:\n%s", msg)
	}
}

func TestEventLimitAbortCarriesDiagnostic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EventLimit = 5000
	se := recoverStall(t, cfg, func(p *Proc) {
		for {
			p.SpinCycles(10)
		}
	})
	if se.Kind != sim.StallEventLimit {
		t.Errorf("Kind = %v, want %v", se.Kind, sim.StallEventLimit)
	}
	if se.Dispatched != cfg.EventLimit+1 {
		t.Errorf("Dispatched = %d, want %d", se.Dispatched, cfg.EventLimit+1)
	}
	if len(se.Blocked) == 0 {
		t.Error("event-limit dump names no threads")
	}
}

func TestDeadlineAbortCarriesDiagnostic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeadlineCycles = 1000
	se := recoverStall(t, cfg, func(p *Proc) {
		p.Compute(1_000_000)
	})
	if se.Kind != sim.StallDeadline {
		t.Errorf("Kind = %v, want %v", se.Kind, sim.StallDeadline)
	}
	if se.Now > sim.NewClock(cfg.ClockMHz).Cycles(cfg.DeadlineCycles) {
		t.Errorf("diagnosed at %v, past the armed deadline", se.Now)
	}
}

func TestBadFaultSpecPanicsAtBuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultSpec = "jitter:max=banana"
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted a bad fault spec")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "bad fault spec") {
			t.Errorf("panic %v lacks context", r)
		}
	}()
	New(cfg)
}

// faultWorkload drives shared-memory and message traffic, returning the
// run result and the final counter value.
func faultWorkload(cfg Config) (Result, float64) {
	m := New(cfg)
	ctr := m.Alloc(0, 2)
	res := m.Run(func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.RMW(ctr, func(v float64) float64 { return v + 1 })
			p.Compute(50)
		}
	})
	return res, m.Store.Peek(ctr)
}

func TestFaultInjectionDeterministicAndHarmless(t *testing.T) {
	cfg := DefaultConfig()
	base, _ := faultWorkload(cfg)

	cfg.FaultSpec = "jitter:max=500ns,prob=0.5;outage:node=*,start=5us,dur=1us,every=20us"
	cfg.FaultSeed = 3
	r1, c1 := faultWorkload(cfg)
	r2, c2 := faultWorkload(cfg)
	if !reflect.DeepEqual(r1, r2) || c1 != c2 {
		t.Error("same fault spec and seed produced different results")
	}
	// Faults delay, never drop: semantics must survive.
	if c1 != 32*5 {
		t.Errorf("counter = %v under faults, want %d", c1, 32*5)
	}
	if r1.Time < base.Time {
		t.Errorf("faulted run finished at %v, before fault-free %v", r1.Time, base.Time)
	}

	cfg.FaultSeed = 4
	r3, c3 := faultWorkload(cfg)
	if c3 != 32*5 {
		t.Errorf("counter = %v under reseeded faults, want %d", c3, 32*5)
	}
	if r3.Time == r1.Time && reflect.DeepEqual(r1, r3) {
		t.Error("different seeds produced identical runs; schedule ignores the seed")
	}
}

func TestFaultsDisabledLeavesResultsIdentical(t *testing.T) {
	// The injector hooks must be fully inert when no spec is set: results
	// match a build of the same config byte for byte.
	r1, _ := faultWorkload(DefaultConfig())
	r2, _ := faultWorkload(DefaultConfig())
	if !reflect.DeepEqual(r1, r2) {
		t.Error("fault-free runs of one config differ")
	}
	m := New(DefaultConfig())
	if m.Faults != nil {
		t.Error("injector attached without a fault spec")
	}
}

func TestFaultStatsExposed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultSpec = "jitter:max=200ns,prob=1"
	cfg.FaultSeed = 1
	m := New(cfg)
	if m.Faults == nil {
		t.Fatal("no injector for an enabled spec")
	}
	ctr := m.Alloc(0, 2)
	m.Run(func(p *Proc) {
		p.RMW(ctr, func(v float64) float64 { return v + 1 })
	})
	if m.Faults.Stats().Jittered == 0 {
		t.Error("prob=1 jitter never fired during a communicating run")
	}
	if err := m.Mem.CheckInvariants(true); err != nil {
		t.Errorf("invariants violated after faulted run: %v", err)
	}
}
