package machine

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/am"
)

// pingRing runs a paced neighbor ping-pong under cfg: every processor
// sends msgs messages around the ring and consumes the msgs aimed at it.
// The traffic is light enough never to congest a link, so the serial and
// tiled engines execute identical schedules and every observability
// total is engine-independent.
func pingRing(t *testing.T, cfg Config, msgs int) (*Machine, Result) {
	t.Helper()
	m := New(cfg)
	n := cfg.Nodes()
	arrived := make([]int, n)
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		arrived[c.Node]++
	})
	res := m.Run(func(p *Proc) {
		p.SetRecvMode(RecvPoll)
		for i := 0; i < msgs; i++ {
			p.Send((p.ID+1)%n, h, nil, nil)
			p.Compute(200)
		}
		for arrived[p.ID] < msgs {
			p.WaitAndHandle()
		}
	})
	return m, res
}

// TestObsOverflowTotalsMatchSerial overflows deliberately tiny per-tile
// trace and span rings on a multi-tile run and checks the drop
// accounting against the serial engine: totals (and therefore drops =
// total - retained) count every event that ever hit a ring, not just
// the survivors, so they must agree exactly however the rings are
// sharded.
func TestObsOverflowTotalsMatchSerial(t *testing.T) {
	const msgs = 8
	base := DefaultConfig()
	base.TraceCap = 16 // << 2 * msgs * nodes events: every ring overflows
	base.SpanCap = 8   // << spans per tile: every ring evicts

	run := func(shards int) (total, retained, spanTotal, spanKept int64, tiles int) {
		cfg := base
		cfg.Shards = shards
		m, res := pingRing(t, cfg, msgs)
		if m.Trace == nil || m.Spans == nil {
			t.Fatalf("shards=%d: observability buffers missing after Run", shards)
		}
		return m.Trace.Total(), int64(len(m.Trace.Events())),
			m.Spans.Total(), int64(len(m.Spans.Spans())), res.Tiles
	}

	sTotal, sKept, sSpanTotal, sSpanKept, sTiles := run(-1)
	if sTiles != 0 {
		t.Fatalf("Shards=-1 ran tiled")
	}
	wantEvents := int64(2 * msgs * base.Nodes()) // one send + one recv per message
	if sTotal != wantEvents {
		t.Fatalf("serial trace total = %d, want %d", sTotal, wantEvents)
	}
	if sKept != int64(base.TraceCap) {
		t.Fatalf("serial trace retained %d events, want the full cap %d", sKept, base.TraceCap)
	}
	if sSpanTotal <= int64(base.SpanCap) {
		t.Fatalf("serial span total = %d; the test needs eviction (cap %d)", sSpanTotal, base.SpanCap)
	}

	for _, shards := range []int{1, 2} {
		total, kept, spanTotal, spanKept, tiles := run(shards)
		if tiles < 2 {
			t.Fatalf("shards=%d: run used %d tiles, want a multi-tile engine", shards, tiles)
		}
		if total != sTotal || kept != sKept {
			t.Errorf("shards=%d: trace total/retained = %d/%d, serial %d/%d",
				shards, total, kept, sTotal, sKept)
		}
		if spanTotal != sSpanTotal || spanKept != sSpanKept {
			t.Errorf("shards=%d: span total/retained = %d/%d, serial %d/%d",
				shards, spanTotal, spanKept, sSpanTotal, sSpanKept)
		}
	}
}

// critChain runs a message pipeline: node 0 computes and sends, every
// other node blocks for its predecessor's message before computing and
// forwarding. Every node past 0 takes a genuine awaited-message stall,
// so the critical path (the last node) is built from send→receive edges.
func critChain(t *testing.T, cfg Config) (*Machine, Result) {
	t.Helper()
	m := New(cfg)
	n := cfg.Nodes()
	arrived := make([]int, n)
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		arrived[c.Node]++
	})
	res := m.Run(func(p *Proc) {
		p.SetRecvMode(RecvPoll)
		if p.ID > 0 {
			for arrived[p.ID] == 0 {
				p.WaitAndHandle()
			}
		}
		p.Compute(500)
		if p.ID < n-1 {
			p.Send(p.ID+1, h, nil, nil)
		}
	})
	return m, res
}

// TestCritPathExhaustiveAndDeterministic checks the attribution
// invariant — the five categories partition the critical processor's
// cycles exactly, with nothing negative and nothing left over — and
// that profiling the same run twice yields the identical summary.
func TestCritPathExhaustiveAndDeterministic(t *testing.T) {
	run := func() (Result, *Machine) {
		cfg := DefaultConfig()
		cfg.Shards = 2
		cfg.CritPath = true
		m, res := critChain(t, cfg)
		return res, m
	}
	res, m := run()
	cp := res.CritPath
	if cp == nil {
		t.Fatal("CritPath config produced no summary")
	}
	if cp.TotalCycles <= 0 {
		t.Fatalf("critical path total = %d cycles", cp.TotalCycles)
	}
	sum := cp.Compute + cp.MemStall + cp.NetLatency + cp.NetBandwidth + cp.Sync
	if sum != cp.TotalCycles {
		t.Errorf("categories sum to %d, total is %d: attribution is not exhaustive", sum, cp.TotalCycles)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{{"compute", cp.Compute}, {"mem_stall", cp.MemStall}, {"net_latency", cp.NetLatency},
		{"net_bandwidth", cp.NetBandwidth}, {"sync", cp.Sync}} {
		if c.v < 0 {
			t.Errorf("category %s = %d, negative", c.name, c.v)
		}
	}
	// The pipeline's last node waited on a real message: the profiler
	// must see network latency on the critical path, and the send→receive
	// edges feeding it.
	if cp.NetLatency == 0 {
		t.Error("pipeline workload shows zero net_latency on the critical path")
	}
	if cp.EdgesTotal == 0 || len(cp.TopEdges) == 0 {
		t.Errorf("no causal edges recorded (total=%d, top=%d)", cp.EdgesTotal, len(cp.TopEdges))
	}
	if m.Crit == nil || len(m.Crit.Edges()) == 0 {
		t.Error("machine exposes no merged edge stream")
	}

	res2, m2 := run()
	if !reflect.DeepEqual(res.CritPath, res2.CritPath) {
		t.Errorf("critical-path summary not deterministic:\n1: %+v\n2: %+v", res.CritPath, res2.CritPath)
	}
	if !reflect.DeepEqual(m.Crit.Edges(), m2.Crit.Edges()) {
		t.Error("merged edge stream not deterministic across identical runs")
	}
}

// TestSerialReasonInResult pins the Result-side fallback report: tiled
// runs carry no reason, and a config the tiled engine cannot execute
// names the offending field. The Shards policy itself is deliberately
// excluded (Result is memoized across Shards values; the policy-aware
// string lives in Config.SerialReason and the runlog).
func TestSerialReasonInResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 2
	_, res := pingRing(t, cfg, 2)
	if res.SerialReason != "" || res.Tiles == 0 {
		t.Errorf("tiled run: tiles=%d serial_reason=%q", res.Tiles, res.SerialReason)
	}

	ideal := DefaultConfig()
	ideal.Shards = 2
	ideal.IdealNetOneWayCycles = 50
	_, res = pingRing(t, ideal, 2)
	if res.Tiles != 0 || res.SerialReason != "IdealNetOneWayCycles" {
		t.Errorf("ideal-net run: tiles=%d serial_reason=%q, want serial with IdealNetOneWayCycles",
			res.Tiles, res.SerialReason)
	}

	if got := ideal.SerialReason(); got != "IdealNetOneWayCycles" {
		t.Errorf("Config.SerialReason() = %q, want IdealNetOneWayCycles", got)
	}
	forced := DefaultConfig()
	forced.Shards = -1
	if got := forced.SerialReason(); got != "Shards" {
		t.Errorf("Config.SerialReason() on forced-serial = %q, want Shards", got)
	}
}

// TestMetricsSnapshotIdenticalAcrossWorkers is the registry half of the
// shard-safety proof at machine level: the rendered metrics snapshot is
// byte-identical at 1, 2, and 4 workers.
func TestMetricsSnapshotIdenticalAcrossWorkers(t *testing.T) {
	snap := func(shards int) []byte {
		cfg := DefaultConfig()
		cfg.Shards = shards
		cfg.Metrics = true
		m, res := pingRing(t, cfg, 6)
		if res.Tiles == 0 {
			t.Fatalf("shards=%d: run was not tiled", shards)
		}
		var buf bytes.Buffer
		if err := m.Obs.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := snap(1)
	for _, shards := range []int{2, 4} {
		if got := snap(shards); !bytes.Equal(ref, got) {
			t.Errorf("metrics snapshot at %d workers differs from 1 worker:\n--- 1\n%s\n--- %d\n%s",
				shards, ref, shards, got)
		}
	}
}
