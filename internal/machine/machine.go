package machine

import (
	"fmt"
	"runtime"

	"repro/internal/am"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes one machine instance. The zero value is not runnable;
// start from DefaultConfig.
type Config struct {
	Width, Height int     // mesh dimensions; Nodes = Width*Height
	ClockMHz      float64 // processor clock (the paper scales 14-20)

	// Network (wall-clock units: the network is asynchronous).
	HopLatency sim.Time // per-router head latency
	PsPerByte  sim.Time // per-link serialization
	Torus      bool     // wraparound links in both dimensions (T3D/T3E-style)
	AdaptiveXY bool     // minimal adaptive (XY/YX) routing ablation

	Mem mem.Params
	AM  am.Params

	// PrefetchIssueCycles is the processor cost of executing one prefetch
	// instruction (useful or useless).
	PrefetchIssueCycles int64

	// InterruptCheckCycles bounds interrupt latency during long computes:
	// a computing processor notices pending message interrupts at least
	// this often.
	InterruptCheckCycles int64

	// CrossTraffic, if non-zero, emulates reduced bisection bandwidth
	// (Figure 8): BytesPerCycle of I/O traffic is streamed across the
	// bisection for the whole run.
	CrossTraffic mesh.CrossTraffic

	// IdealNetOneWayCycles, if nonzero, switches shared memory to the
	// Figure 10 emulation: every coherence message takes exactly this
	// many processor cycles one-way, uniformly, with infinite bandwidth.
	IdealNetOneWayCycles int64

	// TraceCap, if nonzero, records the last TraceCap protocol and
	// message events into Machine.Trace for post-run inspection.
	TraceCap int

	// Metrics enables the deterministic observability registry
	// (Machine.Obs): per-link mesh utilization, NI occupancy, miss
	// latency histograms, and per-thread cycle breakdowns. Purely
	// passive — enabling it never changes simulated timing.
	Metrics bool

	// SpanCap, if nonzero, records the last SpanCap thread-state spans
	// (run vs blocked intervals per processor thread) into Machine.Spans
	// for timeline export.
	SpanCap int

	// CritPath enables the critical-path profiler: causal edges (message
	// send→receive, miss→fill, directory txn begin→grant, barrier
	// arrive→release) are recorded into bounded per-tile rings, and the
	// post-run pass attributes every cycle of the last-finishing
	// processor's timeline to {compute, mem stall, net latency, net
	// bandwidth, sync} in Result.CritPath. Purely passive — enabling it
	// never changes simulated timing.
	CritPath bool

	// CritEdgeCap, if nonzero, overrides the per-tile causal-edge ring
	// capacity the critical-path profiler retains (default
	// obs.DefaultCritEdgeCap). The prediction layer raises it so the
	// whole edge stream of an instrumented run survives as a dependency
	// DAG; the top-edge summary in Result.CritPath only grows more exact
	// with a larger cap. Meaningful only with CritPath. Passive like
	// CritPath itself: it sizes an observation ring, never timing.
	CritEdgeCap int

	// FaultSpec, if nonempty, enables deterministic fault injection (see
	// fault.Parse for the grammar). Kept as the canonical spec string —
	// not a parsed struct — so Config stays comparable for the sweep
	// runner's memoization cache. Only discrete-fault clauses (jitter,
	// outage, stall) are allowed here; noise clauses go in NoiseSpec.
	FaultSpec string
	// FaultSeed seeds the fault schedule; meaningful only with FaultSpec.
	FaultSeed uint64

	// NoiseSpec, if nonempty, enables seeded stochastic noise injection:
	// hostnoise, netnoise, and delay clauses (see fault.Parse). Kept
	// separate from FaultSpec so noise seeds sweep independently of fault
	// schedules; like FaultSpec it is the canonical spec string so Config
	// stays comparable.
	NoiseSpec string
	// NoiseSeed seeds the noise streams; meaningful only with NoiseSpec.
	NoiseSeed uint64

	// Shards selects the intra-run engine: 0 (the default) chooses
	// automatically — the serial event loop below AutoShardNodes, the
	// tiled conservative-window engine with AutoShardWorkers workers at or
	// above it; a negative value forces the serial engine; N >= 1 forces
	// the tiled engine with N worker goroutines (clamped to the tile
	// count). Tiles are fixed by geometry alone, so for a given config the
	// tiled engine produces identical results at every worker count —
	// Shards only moves wall-clock time. Configs the tiled engine does not
	// support (see tilingOK) fall back to the serial engine.
	Shards int

	// EventLimit overrides the runaway-simulation guard (dispatched-event
	// cap); 0 uses the default of 2e9 events.
	EventLimit uint64
	// DeadlineCycles, if nonzero, arms the no-forward-progress watchdog:
	// the run fails with a diagnostic dump if simulated time would pass
	// this many processor cycles with processors still unfinished.
	DeadlineCycles int64
}

// DefaultConfig returns the calibrated 32-node Alewife: 8x4 mesh at
// 20 MHz, 18 bytes/cycle bisection, ~15-cycle 24-byte one-way latency.
func DefaultConfig() Config {
	return Config{
		Width: 8, Height: 4,
		ClockMHz:             20,
		HopLatency:           40 * sim.Nanosecond,    // 0.8 cycles at 20 MHz
		PsPerByte:            22223 * sim.Picosecond, // 2.25 bytes/cycle/link
		Mem:                  mem.DefaultParams(),
		AM:                   am.DefaultParams(),
		PrefetchIssueCycles:  3,
		InterruptCheckCycles: 100,
	}
}

// MaxNodes is the largest supported machine, bounded by the directory's
// sharer-bitset capacity (see mem.MaxNodes).
const MaxNodes = mem.MaxNodes

// Tiled-engine policy knobs.
const (
	// AutoShardNodes is the node count at or above which Shards = 0 picks
	// the tiled engine automatically. Below it the serial loop wins: the
	// per-window barrier costs more than the work it parallelizes.
	AutoShardNodes = 128
	// AutoShardWorkers is the worker count the automatic choice uses.
	AutoShardWorkers = 4
	// maxTiles caps how many row bands a machine is cut into. Eight keeps
	// bands at least two rows tall on every supported geometry at least
	// 16 rows high, which bounds barrier frequency; more tiles than
	// cores-worth of workers buys nothing.
	maxTiles = 8
)

// TileCount returns how many contiguous row bands the tiled engine would
// split this machine into: one per row, capped at maxTiles. The count
// depends on geometry alone — never on Shards or the worker budget — so a
// machine's tiling, and therefore its simulated result, is a pure
// function of the model.
func (c Config) TileCount() int {
	if c.Height < maxTiles {
		return c.Height
	}
	return maxTiles
}

// serialReason returns the name of the first Config field that forces
// the serial engine, or "" when the tiled engine can run this config.
// Cross-traffic generators, the ideal-network emulation, and stochastic
// injection (jittered faults and every noise clause) all assume one
// serial event loop; such configs keep the serial engine rather than
// grow locks. Outage and stall-window faults are fine: their injector is
// read-only per packet with atomic counters. The observability paths
// (metrics, tracing, spans, critical path) are shard-safe: instruments
// are tile-owned or merged from per-tile scratch after the run (see the
// tilingSafe manifest).
func (c Config) serialReason() string {
	if c.TileCount() < 2 {
		return "Height"
	}
	if c.HopLatency <= 0 {
		return "HopLatency"
	}
	if c.CrossTraffic.BytesPerCycle > 0 {
		return "CrossTraffic"
	}
	if c.IdealNetOneWayCycles > 0 {
		return "IdealNetOneWayCycles"
	}
	if c.NoiseSpec != "" {
		// Noise draws from seeded streams in event order — an ordering
		// only the serial loop provides — and one-shot delays latch state.
		return "NoiseSpec"
	}
	if c.FaultSpec != "" {
		fc, err := fault.Parse(c.FaultSpec)
		if err != nil || fc.Stochastic() {
			// Jitter draws from one RNG stream in global packet-send order,
			// an ordering only the serial loop provides.
			return "FaultSpec"
		}
	}
	return ""
}

// tilingOK reports whether this config can run on the tiled engine.
func (c Config) tilingOK() bool { return c.serialReason() == "" }

// SerialReason names why a config runs on the serial engine — the
// Shards policy ("Shards" for a forced serial engine, "AutoShardNodes"
// below the automatic threshold) or the first model field tilingOK
// rejects — mirroring Tiled's decision order. Empty for tiled configs.
func (c Config) SerialReason() string {
	if c.Shards < 0 {
		return "Shards"
	}
	if c.Shards == 0 && c.Nodes() < AutoShardNodes {
		return "AutoShardNodes"
	}
	return c.serialReason()
}

// Tiled reports whether this config runs on the tiled engine.
func (c Config) Tiled() bool {
	if c.Shards < 0 || (c.Shards == 0 && c.Nodes() < AutoShardNodes) {
		return false
	}
	return c.tilingOK()
}

// EffectiveShards returns the number of worker goroutines the run's
// engine uses: 0 for the serial engine, otherwise Shards (or
// AutoShardWorkers under the automatic choice) clamped to the tile count.
func (c Config) EffectiveShards() int {
	if !c.Tiled() {
		return 0
	}
	n := c.Shards
	if n == 0 {
		n = AutoShardWorkers
	}
	if t := c.TileCount(); n > t {
		n = t
	}
	return n
}

// Geometry factors nodes into the canonical P×Q wormhole-mesh shape:
// the widest near-square grid, width >= height, matching Alewife's 8x4
// at 32 nodes and growing square-ish for the scale-out sizes
// (64 -> 8x8, 128 -> 16x8, 256 -> 16x16, 512 -> 32x16). Height is the
// largest divisor of nodes not exceeding sqrt(nodes); a prime count
// degenerates to an Nx1 path. Errors when nodes is outside
// [1, MaxNodes].
func Geometry(nodes int) (width, height int, err error) {
	if nodes < 1 || nodes > MaxNodes {
		return 0, 0, fmt.Errorf("machine: %d nodes outside the supported range [1, %d]", nodes, MaxNodes)
	}
	height = 1
	for h := 2; h*h <= nodes; h++ {
		if nodes%h == 0 {
			height = h
		}
	}
	return nodes / height, height, nil
}

// ConfigForNodes returns the calibrated Alewife configuration scaled to
// an arbitrary node count: per-node parameters (clock, link bandwidth,
// hop latency, memory and AM costs) are unchanged — so per-node link
// bandwidth is constant while bisection bandwidth per node shrinks and
// average hop count grows with the machine, which is exactly the
// scale-out regime the Figure S1 experiment probes. ConfigForNodes(32)
// equals DefaultConfig.
func ConfigForNodes(nodes int) (Config, error) {
	w, h, err := Geometry(nodes)
	if err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = w, h
	return cfg, nil
}

// Nodes returns the node count.
func (c Config) Nodes() int { return c.Width * c.Height }

// Machine is one simulated multiprocessor instance. Build it with New,
// set up application state (allocations, handlers), then call Run exactly
// once.
type Machine struct {
	Cfg Config
	// Eng is the serial event engine; nil under the tiled engine, where
	// every node's events run on its tile (see EngineFor and Grp).
	Eng *sim.Engine
	// Grp coordinates the tiled engine's conservative windows; nil for
	// serial runs.
	Grp   *sim.Group
	Clk   sim.Clock
	Net   *mesh.Network
	Store *mem.Store
	Mem   *mem.System
	AM    *am.System
	Procs []*Proc

	// ExtraEv accumulates counters owned by layers above the substrates
	// (synchronization library); merged into Result.Events.
	ExtraEv stats.Events

	// Trace holds the last Cfg.TraceCap events when tracing is enabled.
	// Under the tiled engine events are recorded into per-tile rings and
	// Trace is nil until Run merges them (use TraceFor to record during
	// the run).
	Trace *trace.Buffer

	// Obs is the metrics registry when Cfg.Metrics is set; nil otherwise.
	// Instruments are tile-owned or per-tile scratch; the registry is
	// complete once Run returns.
	Obs *obs.Registry

	// Spans holds the last Cfg.SpanCap thread-state spans when span
	// recording is enabled; nil otherwise. Under the tiled engine each
	// tile's engine records into its own ring and Spans is nil until Run
	// merges them.
	Spans *obs.SpanBuffer

	// Crit is the critical-path recorder when Cfg.CritPath is set; nil
	// otherwise. Its per-node slots and per-tile edge rings are safe to
	// record into from any node's engine context.
	Crit *obs.CritRecorder

	// Faults is the live fault injector; nil unless Cfg.FaultSpec is set.
	Faults *fault.Injector

	// Noise is the live stochastic-noise injector; nil unless
	// Cfg.NoiseSpec is set. Separate from Faults so the two spec strings
	// keep independent seeds and RNG streams.
	Noise *fault.Injector

	ran    bool
	doneN  int
	finish sim.Time

	engs   []*sim.Engine // tiled: engs[b] executes band b; nil for serial
	tileOf []int         // tiled: node -> band of the node's row

	// Per-tile observability rings (tiled runs only): index b is written
	// only by band b's engine and merged into Trace/Spans after the run.
	tileTraces []*trace.Buffer
	tileSpans  []*obs.SpanBuffer
}

// TraceFor returns the trace buffer node's events should be recorded
// into, or nil when tracing is disabled: the shared buffer on the serial
// engine, the node's tile ring under the tiled engine. Layers that trace
// from processor context (the synchronization library) must route
// through this so every ring keeps a single writer.
func (m *Machine) TraceFor(node int) *trace.Buffer {
	if m.tileTraces != nil {
		return m.tileTraces[m.tileOf[node]]
	}
	return m.Trace
}

// EngineFor returns the engine that executes node's events: the serial
// engine, or the node's tile under the tiled engine.
func (m *Machine) EngineFor(node int) *sim.Engine {
	if m.Grp == nil {
		return m.Eng
	}
	return m.engs[m.tileOf[node]]
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.Nodes() < 1 {
		panic(fmt.Sprintf("machine: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.Nodes() > MaxNodes {
		panic(fmt.Sprintf("machine: %dx%d = %d nodes exceeds the %d-node directory capacity",
			cfg.Width, cfg.Height, cfg.Nodes(), MaxNodes))
	}
	var (
		eng *sim.Engine
		grp *sim.Group
	)
	if cfg.Tiled() {
		// The per-hop head latency is the lookahead: every band is at
		// least one hop wide, so any cross-band interaction takes at
		// least one HopLatency of simulated time.
		grp = sim.NewGroup(cfg.TileCount(), cfg.HopLatency)
		workers := cfg.EffectiveShards()
		// Auto-sharding adapts the worker count to the host: extra
		// workers on fewer cores only add barrier traffic. An explicit
		// Shards=N is honored exactly (tests rely on forcing multi-worker
		// schedules regardless of host). Engine *choice* stays a pure
		// function of the config — worker count is pure scheduling, so
		// results and cache keys are host-independent either way.
		if cfg.Shards == 0 && workers > runtime.GOMAXPROCS(0) {
			workers = runtime.GOMAXPROCS(0)
		}
		grp.SetWorkers(workers)
		eng = grp.Engine(0) // substrate default; retiled per node below
	} else {
		eng = sim.NewEngine()
	}
	clk := sim.NewClock(cfg.ClockMHz)
	net := mesh.New(eng, mesh.Config{
		Width: cfg.Width, Height: cfg.Height,
		HopLatency: cfg.HopLatency, PsPerByte: cfg.PsPerByte,
		Torus: cfg.Torus, AdaptiveXY: cfg.AdaptiveXY,
	})
	store := mem.NewStore(cfg.Nodes())
	msys := mem.NewSystem(eng, net, clk, cfg.Mem, store)
	asys := am.NewSystem(eng, net, clk, cfg.AM)
	m := &Machine{
		Cfg: cfg, Eng: eng, Grp: grp, Clk: clk, Net: net,
		Store: store, Mem: msys, AM: asys,
	}
	if grp != nil {
		m.Eng = nil
		tiles := grp.Tiles()
		bandOfRow := make([]int, cfg.Height)
		for r := range bandOfRow {
			bandOfRow[r] = r * tiles / cfg.Height
		}
		m.tileOf = make([]int, cfg.Nodes())
		for n := range m.tileOf {
			m.tileOf[n] = bandOfRow[n/cfg.Width]
		}
		m.engs = make([]*sim.Engine, tiles)
		for i := range m.engs {
			m.engs[i] = grp.Engine(i)
		}
		net.SetTiles(bandOfRow, m.engs)
		msys.SetTileEngines(m.EngineFor)
		asys.SetTileEngines(m.EngineFor)
	}
	for i := 0; i < cfg.Nodes(); i++ {
		net.Attach(i, asys.Endpoint(i)) // AM queueing; coherence passes through
		m.Procs = append(m.Procs, &Proc{M: m, ID: i})
	}
	if cfg.IdealNetOneWayCycles > 0 {
		msys.SetIdealNetwork(clk.Cycles(cfg.IdealNetOneWayCycles))
	}
	if cfg.TraceCap > 0 {
		if grp != nil {
			// Per-tile rings, each sized like the final buffer so the
			// merged last-TraceCap events are a subset of what the tiles
			// retain; Run merges them into m.Trace.
			m.tileTraces = make([]*trace.Buffer, len(m.engs))
			for i := range m.tileTraces {
				m.tileTraces[i] = trace.New(cfg.TraceCap)
			}
			msys.SetTraceShards(m.TraceFor)
			asys.SetTraceShards(m.TraceFor)
		} else {
			m.Trace = trace.New(cfg.TraceCap)
			msys.SetTrace(m.Trace)
			asys.SetTrace(m.Trace)
		}
	}
	if cfg.Metrics {
		m.Obs = obs.NewRegistry()
		net.SetMetrics(m.Obs)
		msys.SetMetrics(m.Obs)
		asys.SetMetrics(m.Obs)
	}
	if cfg.SpanCap > 0 {
		record := func(b *obs.SpanBuffer) func(th *sim.Thread, start, end sim.Time, blocked bool, reason string, arg int64) {
			return func(th *sim.Thread, start, end sim.Time, blocked bool, reason string, arg int64) {
				b.Record(obs.Span{
					Thread: th.Name(), Start: start, End: end,
					Blocked: blocked, Reason: reason, Arg: arg,
				})
			}
		}
		if grp != nil {
			// One ring per tile, owned by that tile's engine; Run merges
			// them into m.Spans.
			m.tileSpans = make([]*obs.SpanBuffer, len(m.engs))
			for i, e := range m.engs {
				m.tileSpans[i] = obs.NewSpanBuffer(cfg.SpanCap)
				e.SetSpanObserver(record(m.tileSpans[i]))
			}
		} else {
			m.Spans = obs.NewSpanBuffer(cfg.SpanCap)
			eng.SetSpanObserver(record(m.Spans))
		}
	}
	if cfg.CritPath {
		cap := cfg.CritEdgeCap
		if cap <= 0 {
			cap = obs.DefaultCritEdgeCap
		}
		m.Crit = obs.NewCritRecorder(cfg.Nodes(), m.tileOf, cap)
		msys.SetCritPath(m.Crit)
	}
	if cfg.FaultSpec != "" {
		fc, err := fault.Parse(cfg.FaultSpec)
		if err != nil {
			panic(fmt.Sprintf("machine: bad fault spec: %v", err))
		}
		if fc.NoiseEnabled() {
			panic(fmt.Sprintf("machine: noise clauses in FaultSpec %q; put hostnoise/netnoise/delay in NoiseSpec", cfg.FaultSpec))
		}
		if fc.Enabled() {
			m.Faults = fault.NewInjector(fc, cfg.FaultSeed)
			net.SetFaultInjector(m.Faults)
			asys.SetFaultInjector(m.Faults)
		}
	}
	if cfg.NoiseSpec != "" {
		nc, err := fault.Parse(cfg.NoiseSpec)
		if err != nil {
			panic(fmt.Sprintf("machine: bad noise spec: %v", err))
		}
		if nc.FaultsEnabled() {
			panic(fmt.Sprintf("machine: fault clauses in NoiseSpec %q; put jitter/outage/stall in FaultSpec", cfg.NoiseSpec))
		}
		if nc.Enabled() {
			m.Noise = fault.NewInjector(nc, cfg.NoiseSeed)
			net.SetNoiseInjector(m.Noise)
		}
	}
	return m
}

// Alloc reserves words of shared memory homed at node.
func (m *Machine) Alloc(node, words int) mem.Addr { return m.Store.Alloc(node, words) }

// Result summarizes one run.
type Result struct {
	Time              sim.Time          // wall completion time (slowest processor)
	Cycles            int64             // Time in processor cycles
	PerProc           []stats.Breakdown // per-processor time breakdown
	Breakdown         stats.Breakdown   // machine-wide sum of PerProc
	Volume            stats.Volume      // application bytes injected, by kind
	Events            stats.Events      // mem + am counters merged
	Bisection         float64           // native bisection bandwidth, bytes/cycle
	EmulatedBisection float64           // native minus cross-traffic, bytes/cycle
	Links             []mesh.LinkLoad   // the run's three hottest mesh links

	// Tiled-engine shape: tile and conservative-window counts, both pure
	// functions of the config (identical at every worker count, so they
	// are safe to carry in a result that must deep-equal across Shards
	// settings). Zero means the serial engine ran.
	Tiles   int
	Windows uint64

	// SerialReason names the Config field that forced the serial engine
	// when the model itself rules tiling out (tilingOK); empty for tiled
	// runs and for serial runs chosen purely by the Shards policy, which
	// is not part of the memo key (see Config.SerialReason for the
	// policy-aware answer).
	SerialReason string

	// CritPath is the critical-path attribution when Cfg.CritPath is
	// set; nil otherwise. All fields exported so it survives JSON
	// round-trips (disk cache, runlog).
	CritPath *obs.CritStats

	// DoneCycles records when each processor's body returned, in cycles.
	// The per-node completion profile is what the delay-propagation
	// experiment reads: an injected delay on one node shifts completions
	// outward by hop distance (or not) depending on the mechanism.
	DoneCycles []int64

	// Noise counts stochastic noise actually injected; the zero value when
	// the config carries no NoiseSpec.
	Noise fault.Stats
}

// Run executes body on every processor concurrently (SPMD) and returns
// the run summary. It may be called once per Machine.
func (m *Machine) Run(body func(p *Proc)) Result {
	if m.ran {
		panic("machine: Run called twice; build a fresh Machine per run")
	}
	m.ran = true
	if m.Cfg.CrossTraffic.BytesPerCycle > 0 {
		m.Net.StartCrossTraffic(m.Cfg.CrossTraffic, m.Clk)
	}
	n := len(m.Procs)
	tiled := m.Grp != nil
	for _, p := range m.Procs {
		p := p
		p.th = m.EngineFor(p.ID).Spawn(fmt.Sprintf("proc%d", p.ID), 0, func(th *sim.Thread) {
			body(p)
			p.doneAt = th.Now()
			if !tiled {
				// Cross-tile shared counters are off-limits under tiling;
				// completion is reconstructed from per-proc state after Run.
				m.doneN++
				if m.doneN == n {
					m.finish = th.Now()
					m.Net.StopCrossTraffic()
				}
			}
		})
	}
	limit := m.Cfg.EventLimit
	if limit == 0 {
		limit = 2_000_000_000
	}
	if tiled {
		m.Grp.SetEventLimit(limit)
		if m.Cfg.DeadlineCycles > 0 {
			m.Grp.SetDeadline(m.Clk.Cycles(m.Cfg.DeadlineCycles))
		}
	} else {
		m.Eng.SetEventLimit(limit)
		if m.Cfg.DeadlineCycles > 0 {
			m.Eng.SetDeadline(m.Clk.Cycles(m.Cfg.DeadlineCycles))
		}
	}
	m.runEngine()
	if tiled {
		for _, p := range m.Procs {
			if p.th.State() == sim.ThreadDone {
				m.doneN++
				if p.doneAt > m.finish {
					m.finish = p.doneAt
				}
			}
		}
	}
	if m.doneN != n {
		d := m.diagnose(sim.StallDeadlock)
		d.Notes = append(d.Notes, fmt.Sprintf("only %d/%d processors finished", m.doneN, n))
		panic(m.enrich(d))
	}
	if err := m.Mem.CheckInvariants(true); err != nil {
		panic(fmt.Sprintf("machine: post-run %v", err))
	}
	// Fold per-tile observability state now that the tile engines have
	// joined: scratch instruments into the registry, per-tile rings into
	// the machine-wide buffers. Merges are deterministic (commutative
	// sums; timestamp-ordered stable sorts), so snapshots are identical
	// at every worker count.
	if m.Obs != nil {
		m.Net.FinishMetrics()
		m.Mem.FinishMetrics()
	}
	if m.tileTraces != nil {
		m.Trace = trace.Merge(m.Cfg.TraceCap, m.tileTraces...)
	}
	if m.tileSpans != nil {
		m.Spans = obs.MergeSpans(m.Cfg.SpanCap, m.tileSpans...)
	}
	res := Result{
		Time:    m.finish,
		Cycles:  m.Clk.ToCycles(m.finish),
		Volume:  m.Net.Volume(),
		Events:  m.Mem.Events().Plus(m.AM.Events()).Plus(m.ExtraEv),
		PerProc: make([]stats.Breakdown, n),
	}
	res.DoneCycles = make([]int64, n)
	for i, p := range m.Procs {
		res.PerProc[i] = p.BD
		res.Breakdown = res.Breakdown.Plus(p.BD)
		res.Events = res.Events.Plus(p.Ev)
		res.DoneCycles[i] = m.Clk.ToCycles(p.doneAt)
	}
	if m.Noise != nil {
		res.Noise = m.Noise.Stats()
	}
	if m.Grp != nil {
		res.Tiles = m.Grp.Tiles()
		res.Windows = m.Grp.Windows()
	} else {
		res.SerialReason = m.Cfg.serialReason()
	}
	if m.Crit != nil {
		// The critical path of a barrier-terminated SPMD run is the
		// last-finishing processor's timeline (ties: lowest ID).
		crit := 0
		for i, p := range m.Procs {
			if p.doneAt > m.Procs[crit].doneAt {
				crit = i
			}
		}
		res.CritPath = m.Crit.Summarize(m.Clk, crit, m.Procs[crit].BD, critTopEdges)
	}
	res.Bisection = m.Net.Config().BisectionBytesPerCycle(m.Clk)
	//lint:allow simlint/intmath result-reporting field (Figure 8 x-axis); computed after the run ends
	res.EmulatedBisection = res.Bisection - m.Cfg.CrossTraffic.BytesPerCycle
	res.Links = m.Net.TopLinks(m.finish, 3)
	if m.Obs != nil {
		// Engine-level thread-state breakdown (the paper's "where do the
		// cycles go" split at its coarsest): run is charged execution,
		// block is waiting for fills/messages/locks, tail idle is load
		// imbalance — time between this processor finishing and the
		// machine finishing.
		for _, p := range m.Procs {
			run, block := p.th.TimeBreakdown()
			l := obs.NodeLabel(p.ID)
			m.Obs.Gauge("sim_thread_run_cycles", l).Set(m.Clk.ToCycles(run))
			m.Obs.Gauge("sim_thread_block_cycles", l).Set(m.Clk.ToCycles(block))
			m.Obs.Gauge("sim_thread_tail_idle_cycles", l).Set(m.Clk.ToCycles(m.finish - p.doneAt))
		}
	}
	return res
}

// runEngine drives the event loop, enriching any engine-level stall
// diagnostic (event limit, deadline, liveness) with machine-level state
// before re-panicking: busy directory transactions, occupied mesh links,
// and backed-up NI queues.
func (m *Machine) runEngine() {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*sim.StallError); ok {
				panic(m.enrich(se))
			}
			panic(r)
		}
	}()
	if m.Grp != nil {
		m.Grp.Run()
		return
	}
	m.Eng.Run()
}

// diagnose captures engine-level liveness state from whichever engine ran.
func (m *Machine) diagnose(kind sim.StallKind) *sim.StallError {
	if m.Grp != nil {
		return m.Grp.Diagnose(kind)
	}
	return m.Eng.Diagnose(kind)
}

// maxDumpNotes bounds each subsystem's contribution to a stall dump.
const maxDumpNotes = 8

// critTopEdges bounds the longest-edge summary carried in Result.CritPath.
const critTopEdges = 5

// enrich appends subsystem diagnostics to an engine stall error.
func (m *Machine) enrich(se *sim.StallError) *sim.StallError {
	for _, s := range m.Mem.BusyDump(maxDumpNotes) {
		se.Notes = append(se.Notes, "mem: "+s)
	}
	for _, s := range m.Net.OccupiedLinks(se.Now, maxDumpNotes) {
		se.Notes = append(se.Notes, "net: "+s)
	}
	for _, s := range m.AM.QueueDump(maxDumpNotes) {
		se.Notes = append(se.Notes, "am: "+s)
	}
	if m.Noise != nil {
		// Distinguish a noise-induced stall from a protocol deadlock: a
		// huge injected total means the watchdog likely tripped on noise.
		st := m.Noise.Stats()
		se.Notes = append(se.Notes, fmt.Sprintf(
			"noise: %d samples, %d ps injected (host %d samples/%d ps, net %d samples/%d ps, delays %d/%d ps)",
			st.Samples(), st.InjectedPs(), st.HostNoiseSamples, st.HostNoisePs,
			st.NetNoiseSamples, st.NetNoisePs, st.DelaysFired, st.DelayPs))
	}
	return se
}
