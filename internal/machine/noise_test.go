package machine

import (
	"reflect"
	"strings"
	"testing"
)

// noisyWorkload mixes compute phases with shared-memory traffic so both
// the host-noise hook (compute boundaries) and the net-noise hook
// (packet delivery) fire.
func noisyWorkload(m *Machine) func(*Proc) {
	a := m.Alloc(0, 64)
	return func(p *Proc) {
		p.Write(a+int64Addr(2*p.ID), float64(p.ID))
		p.Compute(500)
		p.Read(a + int64Addr(2*((p.ID+1)%32)))
		p.Compute(500)
	}
}

const testNoiseSpec = "hostnoise:node=*,dist=exp,mean=2us;netnoise:node=*,dist=exp,mean=100ns"

// TestNoiseRunReproducible: one spec and seed give a bit-identical
// result (runtime, per-node completion profile, and injection stats)
// across independent machines, and a different seed gives a different
// run.
func TestNoiseRunReproducible(t *testing.T) {
	run := func(seed uint64) Result {
		cfg := DefaultConfig()
		cfg.NoiseSpec = testNoiseSpec
		cfg.NoiseSeed = seed
		m := New(cfg)
		return m.Run(noisyWorkload(m))
	}
	a, b := run(7), run(7)
	if a.Cycles != b.Cycles || !reflect.DeepEqual(a.DoneCycles, b.DoneCycles) || a.Noise != b.Noise {
		t.Errorf("same seed, different runs: %d vs %d cycles, noise %+v vs %+v",
			a.Cycles, b.Cycles, a.Noise, b.Noise)
	}
	if c := run(8); c.Cycles == a.Cycles && reflect.DeepEqual(c.DoneCycles, a.DoneCycles) {
		t.Error("different noise seeds produced identical runs")
	}
	if a.Noise.HostNoiseSamples == 0 || a.Noise.NetNoiseSamples == 0 {
		t.Errorf("noise hooks never fired: %+v", a.Noise)
	}
	if len(a.DoneCycles) != 32 {
		t.Fatalf("DoneCycles has %d entries, want 32", len(a.DoneCycles))
	}
	for i, d := range a.DoneCycles {
		if d <= 0 || d > a.Cycles {
			t.Errorf("DoneCycles[%d] = %d outside (0, %d]", i, d, a.Cycles)
		}
	}
}

// TestNoiseDilatesRuntime: host noise strictly lengthens the run, and a
// quiet config reports zero injection.
func TestNoiseDilatesRuntime(t *testing.T) {
	run := func(spec string) Result {
		cfg := DefaultConfig()
		cfg.NoiseSpec = spec
		cfg.NoiseSeed = 1
		m := New(cfg)
		return m.Run(noisyWorkload(m))
	}
	quiet := run("")
	if quiet.Noise.Samples() != 0 || quiet.Noise.InjectedPs() != 0 {
		t.Errorf("quiet run reports injection: %+v", quiet.Noise)
	}
	noisy := run("hostnoise:node=*,dist=const,mean=5us")
	if noisy.Cycles <= quiet.Cycles {
		t.Errorf("const 5us host noise did not lengthen the run: %d vs %d cycles",
			noisy.Cycles, quiet.Cycles)
	}
	if noisy.Noise.HostNoiseSamples == 0 || noisy.Noise.HostNoisePs == 0 {
		t.Errorf("noise fired but stats empty: %+v", noisy.Noise)
	}
}

// TestNoiseForcesSerialEngine pins satellite behavior: any NoiseSpec
// disqualifies the tiled engine (noise draws in event order, which only
// the serial loop provides), so noisy runs are identical at every
// Shards value.
func TestNoiseForcesSerialEngine(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	if !cfg.Tiled() {
		t.Fatal("baseline config with Shards=4 is not tiled; test premise broken")
	}
	cfg.NoiseSpec = "netnoise:node=*,dist=const,mean=1ns"
	if cfg.Tiled() {
		t.Error("noise-bearing config still claims the tiled engine")
	}
	if cfg.EffectiveShards() != 0 {
		t.Errorf("EffectiveShards = %d, want 0 (serial)", cfg.EffectiveShards())
	}
	run := func(shards int) Result {
		c := cfg
		c.Shards = shards
		m := New(c)
		return m.Run(noisyWorkload(m))
	}
	forced, auto := run(-1), run(4)
	if forced.Cycles != auto.Cycles || !reflect.DeepEqual(forced.DoneCycles, auto.DoneCycles) {
		t.Errorf("noisy run differs across Shards settings: %d vs %d cycles",
			forced.Cycles, auto.Cycles)
	}
}

// TestNewRejectsMisplacedClauses: the two spec fields are disjoint
// sublanguages — New refuses noise clauses in FaultSpec and fault
// clauses in NoiseSpec, naming the right home for each.
func TestNewRejectsMisplacedClauses(t *testing.T) {
	mustPanic := func(name string, cfg Config, wantSub string) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: New did not panic", name)
				return
			}
			if s, ok := r.(string); !ok || !strings.Contains(s, wantSub) {
				t.Errorf("%s: panic %v, want substring %q", name, r, wantSub)
			}
		}()
		New(cfg)
	}
	cfg := DefaultConfig()
	cfg.FaultSpec = "hostnoise:node=*,dist=exp,mean=1us"
	mustPanic("noise in FaultSpec", cfg, "put hostnoise/netnoise/delay in NoiseSpec")
	cfg = DefaultConfig()
	cfg.NoiseSpec = "jitter:max=100ns,prob=0.5"
	mustPanic("fault in NoiseSpec", cfg, "put jitter/outage/stall in FaultSpec")
}

// TestDelayShiftsOneNode: a one-shot injected delay lands on exactly the
// named node — in a communication-free workload its completion shifts by
// exactly the delay, and every other node is untouched.
func TestDelayShiftsOneNode(t *testing.T) {
	run := func(spec string) Result {
		cfg := DefaultConfig()
		cfg.NoiseSpec = spec
		m := New(cfg)
		return m.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Compute(100)
			}
		})
	}
	quiet := run("")
	delayed := run("delay:node=5,at=0ps,dur=100us")
	want := quiet.DoneCycles[5] + 2000 // 100us at 20 MHz
	if delayed.DoneCycles[5] != want {
		t.Errorf("delayed node done at %d cycles, want %d", delayed.DoneCycles[5], want)
	}
	for i := range quiet.DoneCycles {
		if i == 5 {
			continue
		}
		if delayed.DoneCycles[i] != quiet.DoneCycles[i] {
			t.Errorf("node %d shifted by a delay aimed at node 5: %d vs %d",
				i, delayed.DoneCycles[i], quiet.DoneCycles[i])
		}
	}
	if delayed.Noise.DelaysFired != 1 {
		t.Errorf("DelaysFired = %d, want 1", delayed.Noise.DelaysFired)
	}
}
