package machine

import (
	"reflect"
	"testing"
)

// TestGeometryFactoring pins the mesh shapes the scale-out geometries
// use: the squarest factoring whose height divides the node count, with
// the paper's 32-node machine keeping its 8x4 shape.
func TestGeometryFactoring(t *testing.T) {
	cases := []struct{ nodes, w, h int }{
		{1, 1, 1},
		{2, 2, 1},
		{7, 7, 1}, // prime: degenerates to a line
		{32, 8, 4},
		{48, 8, 6},
		{64, 8, 8},
		{128, 16, 8},
		{256, 16, 16},
		{512, 32, 16},
	}
	for _, c := range cases {
		w, h, err := Geometry(c.nodes)
		if err != nil {
			t.Fatalf("Geometry(%d): %v", c.nodes, err)
		}
		if w != c.w || h != c.h {
			t.Errorf("Geometry(%d) = %dx%d, want %dx%d", c.nodes, w, h, c.w, c.h)
		}
		if w*h != c.nodes || h > w {
			t.Errorf("Geometry(%d) = %dx%d: not a width-major factoring", c.nodes, w, h)
		}
	}
	for _, bad := range []int{0, -4, MaxNodes + 1, 1 << 20} {
		if _, _, err := Geometry(bad); err == nil {
			t.Errorf("Geometry(%d) accepted, want error", bad)
		}
	}
}

// TestConfigForNodesBaseIdentity: the 32-node scaled config must be
// exactly the calibrated default, so scaling sweeps share cache entries
// and goldens with every other figure at the base size.
func TestConfigForNodesBaseIdentity(t *testing.T) {
	cfg, err := ConfigForNodes(32)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, DefaultConfig()) {
		t.Errorf("ConfigForNodes(32) = %+v, want DefaultConfig %+v", cfg, DefaultConfig())
	}
	if _, err := ConfigForNodes(MaxNodes + 1); err == nil {
		t.Error("ConfigForNodes above MaxNodes accepted, want error")
	}
	big, err := ConfigForNodes(512)
	if err != nil {
		t.Fatal(err)
	}
	if big.Nodes() != 512 || big.ClockMHz != DefaultConfig().ClockMHz {
		t.Errorf("ConfigForNodes(512): nodes=%d clock=%v, want 512 nodes at the default clock",
			big.Nodes(), big.ClockMHz)
	}
}
