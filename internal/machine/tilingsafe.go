package machine

// tilingSafe is the in-source manifest consumed by simlint's serialonly
// check: every Config field must either be consulted by tilingOK/Tiled
// (so the tiled-engine gate provably sees it) or be declared here, with
// the reason the tiled and serial engines agree for every value of the
// field. The classification is exclusive — listing a consulted field is
// itself a diagnostic — so deleting a guard from tilingOK immediately
// fails `make lint`.
//
// When adding a Config field, either teach tilingOK about it (the
// "forces serial for now" pattern from ROADMAP items 1 and 3) or argue
// here why tiling cannot change results under it. There is no third
// option, and that is the point.
var tilingSafe = map[string]string{
	"ClockMHz":             "scales the cycle<->picosecond conversion identically on every tile; no cross-tile interaction",
	"PsPerByte":            "per-link serialization only delays messages beyond the HopLatency lookahead the windows are sized by",
	"Torus":                "wrap links cross tile boundaries like any other cross-tile link, through the mailbox path",
	"AdaptiveXY":           "routing choice is a pure function of packet header and static geometry, identical under both engines",
	"Mem":                  "protocol costs are per-node cycle counts; coherence traffic crosses tiles only through mailboxes",
	"AM":                   "active-message costs are per-node cycle counts; delivery crosses tiles only through mailboxes",
	"PrefetchIssueCycles":  "local processor issue cost; never observed off-node",
	"InterruptCheckCycles": "local processor polling cadence; never observed off-node",
	"Metrics":              "instruments are tile-owned (per-node/per-link, single writer) or per-tile scratch merged commutatively after the run; passive either way",
	"TraceCap":             "protocol events are recorded into per-tile rings at node context and merged by timestamp after the run; passive",
	"SpanCap":              "spans are recorded into per-tile rings by each tile's own engine observer and merged by end time after the run; passive",
	"CritPath":             "per-node accumulator slots and per-tile edge rings are single-writer at node context, merged after the run; passive",
	"CritEdgeCap":          "sizes the per-tile CritPath edge rings; each ring keeps a single writer and is merged after the run; passive",
	"FaultSeed":            "meaningful only with FaultSpec, whose stochastic clauses tilingOK already forces serial",
	"NoiseSeed":            "meaningful only with NoiseSpec, which tilingOK already forces serial",
	"EventLimit":           "runaway-dispatch guard, not a model parameter; both engines count dispatched events",
	"DeadlineCycles":       "watchdog arming, not a model parameter; stall blame is certified under sharding (TestStallBlameUnderSharding)",
}
