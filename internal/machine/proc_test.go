package machine

import (
	"testing"

	"repro/internal/am"
	"repro/internal/stats"
)

func TestChargeGatherCost(t *testing.T) {
	m := New(DefaultConfig())
	var elapsed int64
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		start := p.NowCycles()
		p.ChargeGather(2) // one 16-byte line: the paper's ~60 cycles
		elapsed = p.NowCycles() - start
	})
	if elapsed != 60 {
		t.Errorf("gather of one line = %d cycles, want 60", elapsed)
	}
}

func TestWaitAndHandleChargesSync(t *testing.T) {
	m := New(DefaultConfig())
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {})
	var bd stats.Breakdown
	m.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Compute(2000)
			p.Send(1, h, nil, nil)
		case 1:
			p.SetRecvMode(RecvPoll)
			p.WaitAndHandle() // idle from ~0 to ~2000: sync time
			bd = p.BD
		}
	})
	syncCycles := m.Clk.ToCycles(bd.T[stats.BucketSync])
	if syncCycles < 1500 {
		t.Errorf("waiting charged only %d cycles of sync", syncCycles)
	}
}

func TestHandlePendingNonBlocking(t *testing.T) {
	m := New(DefaultConfig())
	handled := 0
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) { handled++ })
	m.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Send(1, h, nil, nil)
		case 1:
			p.SetRecvMode(RecvPoll)
			if n := p.HandlePending(); n != 0 {
				t.Errorf("HandlePending before arrival returned %d", n)
			}
			p.Compute(2000)
			if n := p.HandlePending(); n != 1 {
				t.Errorf("HandlePending after arrival returned %d", n)
			}
		}
	})
	if handled != 1 {
		t.Errorf("handled = %d", handled)
	}
}

func TestPrefetchChargesIssueCost(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Alloc(5, 2)
	var issue int64
	m.Run(func(p *Proc) {
		if p.ID != 0 {
			return
		}
		start := p.NowCycles()
		p.Prefetch(a, false)
		issue = p.NowCycles() - start
	})
	if issue != m.Cfg.PrefetchIssueCycles {
		t.Errorf("prefetch issue = %d cycles, want %d", issue, m.Cfg.PrefetchIssueCycles)
	}
}

func TestComputeNegativePanics(t *testing.T) {
	m := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("negative compute did not panic")
		}
	}()
	m.Run(func(p *Proc) { p.Compute(-1) })
}

func TestUpdateAtomicAcrossProcs(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Alloc(0, 2) // [value, counter] on one line
	m.Store.Poke(a+1, 32)
	zeroSeen := 0
	res := m.Run(func(p *Proc) {
		p.Update(a, func() {
			m.Store.Poke(a, m.Store.Peek(a)+float64(p.ID))
			c := m.Store.Peek(a+1) - 1
			m.Store.Poke(a+1, c)
			if c == 0 {
				zeroSeen++
			}
		})
	})
	if zeroSeen != 1 {
		t.Errorf("counter reached zero %d times, want exactly once", zeroSeen)
	}
	if got := m.Store.Peek(a); got != float64(31*32/2) {
		t.Errorf("sum = %v, want %d", got, 31*32/2)
	}
	if res.Events.RemoteMisses() == 0 {
		t.Error("updates generated no coherence traffic")
	}
}
