package machine

import (
	"testing"

	"repro/internal/am"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes() != 32 {
		t.Errorf("nodes = %d, want 32", cfg.Nodes())
	}
	m := New(cfg)
	if got := m.Net.Config().BisectionBytesPerCycle(m.Clk); got < 17 || got > 19 {
		t.Errorf("bisection = %.2f bytes/cycle, want ~18", got)
	}
}

func TestRunComputeOnly(t *testing.T) {
	m := New(DefaultConfig())
	res := m.Run(func(p *Proc) { p.Compute(1000) })
	if res.Cycles < 1000 || res.Cycles > 1010 {
		t.Errorf("runtime = %d cycles, want ~1000", res.Cycles)
	}
	if res.Breakdown.T[stats.BucketCompute] != m.Clk.Cycles(1000*32) {
		t.Errorf("compute sum = %v, want %v",
			res.Breakdown.T[stats.BucketCompute], m.Clk.Cycles(1000*32))
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := New(DefaultConfig())
	m.Run(func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	m.Run(func(p *Proc) {})
}

func TestSharedMemoryThroughProcs(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Alloc(0, 64)
	res := m.Run(func(p *Proc) {
		// Everyone increments a distinct word, then reads a neighbor's.
		p.Write(a+2*int64Addr(p.ID), float64(p.ID))
		p.Compute(500) // let writes settle
		nb := (p.ID + 1) % 32
		if v := p.Read(a + 2*int64Addr(nb)); v != float64(nb) {
			t.Errorf("proc %d read %v, want %d", p.ID, v, nb)
		}
	})
	if res.Events.RemoteMisses() == 0 {
		t.Error("no remote misses recorded")
	}
}

func int64Addr(i int) mem.Addr { return mem.Addr(i) }

func TestInterruptLatencyBound(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	var sentAt, handledAt int64
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		handledAt = m.Clk.ToCycles(c.Now())
	})
	m.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Compute(200)
			sentAt = p.NowCycles()
			p.Send(1, h, nil, nil)
		case 1:
			p.SetRecvMode(RecvInterrupt)
			p.Compute(3000) // long compute; interrupt must cut in
		}
	})
	if handledAt == 0 {
		t.Fatal("message never handled")
	}
	lat := handledAt - sentAt
	if lat > cfg.InterruptCheckCycles+200 {
		t.Errorf("interrupt latency = %d cycles, want <= ~%d", lat, cfg.InterruptCheckCycles+200)
	}
}

func TestPollModeDefersMessages(t *testing.T) {
	m := New(DefaultConfig())
	var handledAt int64
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		handledAt = m.Clk.ToCycles(c.Now())
	})
	var pollAt int64
	m.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Send(1, h, nil, nil)
		case 1:
			p.SetRecvMode(RecvPoll)
			p.Compute(5000) // message arrives early but must wait
			pollAt = p.NowCycles()
			p.Poll()
		}
	})
	if handledAt < pollAt {
		t.Errorf("polled message handled at %d, before the poll at %d", handledAt, pollAt)
	}
}

func TestCrossTrafficSlowsSharedMemoryRun(t *testing.T) {
	run := func(x float64) int64 {
		cfg := DefaultConfig()
		if x > 0 {
			cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: 64, BytesPerCycle: x}
		}
		m := New(cfg)
		a := m.Alloc(0, 2)
		res := m.Run(func(p *Proc) {
			for i := 0; i < 40; i++ {
				p.RMW(a, func(v float64) float64 { return v + 1 })
			}
		})
		return res.Cycles
	}
	base := run(0)
	loaded := run(16) // leaves ~2 bytes/cycle of bisection
	if loaded <= base {
		t.Errorf("runtime with cross-traffic %d <= base %d", loaded, base)
	}
}

func TestIdealNetworkConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdealNetOneWayCycles = 200
	m := New(cfg)
	a := m.Alloc(5, 2)
	res := m.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Read(a)
		}
	})
	// One remote read: >= 2*200 cycles.
	if res.Cycles < 400 {
		t.Errorf("ideal-net remote read finished in %d cycles, want >= 400", res.Cycles)
	}
	if res.Events.RemoteMissesCln != 1 {
		t.Errorf("remote misses = %d, want 1", res.Events.RemoteMissesCln)
	}
}

func TestResultBisectionFields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: 64, BytesPerCycle: 10}
	m := New(cfg)
	res := m.Run(func(p *Proc) { p.Compute(100) })
	if res.EmulatedBisection >= res.Bisection {
		t.Errorf("emulated bisection %.1f not below native %.1f",
			res.EmulatedBisection, res.Bisection)
	}
	if res.EmulatedBisection < 7 || res.EmulatedBisection > 9 {
		t.Errorf("emulated bisection = %.1f, want ~8", res.EmulatedBisection)
	}
}

func TestDeterministicRun(t *testing.T) {
	run := func() (int64, stats.Volume) {
		m := New(DefaultConfig())
		a := m.Alloc(0, 64)
		res := m.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.RMW(a+int64Addr((p.ID+i)%16)*2, func(v float64) float64 { return v + 1 })
			}
		})
		return res.Cycles, res.Volume
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("nondeterministic runs: %d/%v vs %d/%v", c1, v1, c2, v2)
	}
}

func TestRecvModeString(t *testing.T) {
	if RecvInterrupt.String() != "interrupt" || RecvPoll.String() != "poll" {
		t.Error("RecvMode strings wrong")
	}
}

func TestTraceCapturesProtocolAndMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceCap = 1024
	m := New(cfg)
	a := m.Alloc(5, 2)
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {})
	m.Run(func(p *Proc) {
		switch p.ID {
		case 0:
			p.Read(a)
			p.Send(1, h, nil, nil)
		case 1:
			p.SetRecvMode(RecvPoll)
			p.WaitAndHandle()
		}
	})
	if m.Trace == nil || m.Trace.Total() == 0 {
		t.Fatal("no trace recorded")
	}
	if len(m.Trace.Filter(trace.KMissStart, 0)) == 0 {
		t.Error("no miss-start events for node 0")
	}
	if len(m.Trace.Filter(trace.KMsgSend, 0)) != 1 {
		t.Error("expected exactly one msg-send from node 0")
	}
	if len(m.Trace.Filter(trace.KMsgRecv, 1)) != 1 {
		t.Error("expected exactly one msg-recv at node 1")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := New(DefaultConfig())
	a := m.Alloc(3, 2)
	m.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Read(a)
		}
	})
	if m.Trace != nil {
		t.Error("trace allocated without TraceCap")
	}
}
