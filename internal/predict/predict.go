package predict

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Input is everything Build needs from one instrumented run: the
// critical-path recorder's retained edge stream, the per-processor
// completion profile, and the traffic totals the confidence estimate
// reads. All of it comes out of a single core.RunResult with
// Machine.CritPath set.
type Input struct {
	Nodes int
	Clk   sim.Clock

	// Edges is the retained causal-edge stream (obs.CritRecorder.Edges).
	Edges []obs.CritEdge
	// EdgesTotal counts every edge the run recorded, including ones the
	// rings evicted; retained/total is the model's coverage.
	EdgesTotal int64

	// DoneCycles is each processor's completion time in cycles
	// (machine.Result.DoneCycles). The makespan over the predicted
	// completion profile is the predicted runtime.
	DoneCycles []int64

	// BisectionBytes is the application traffic expected to cross the
	// machine's middle cut over the run (total injected bytes times the
	// dimension-order crossing fraction), and BisectionBW the native cut
	// bandwidth in bytes per cycle. Together they estimate the offered
	// bisection utilization at each solved point, which is what the
	// confidence estimate distrusts: the solver scales serialization
	// linearly and cannot see congestion collapse.
	BisectionBytes float64
	BisectionBW    float64
}

// Point is one (latency, bandwidth) evaluation: LatScale multiplies
// every edge's network-latency component, BWScale every serialization/
// occupancy component, both relative to the instrumented base run.
// Fixed protocol and compute time never scale.
type Point struct {
	LatScale float64
	BWScale  float64
	// ExtraRho is bisection-cut utilization by traffic the model's own
	// edges do not carry (e.g. the Figure 8 cross-traffic streams). It
	// is added to the app-traffic utilization estimate before the
	// confidence discount and never changes the predicted cycles: its
	// job is to make the model distrust points whose contention it
	// cannot see, so the pruned sweep simulates them.
	ExtraRho float64
}

// Base is the instrumented run's own operating point. Solve(Base)
// reproduces the measured runtime exactly (see TestSolveExactAtBase).
var Base = Point{LatScale: 1, BWScale: 1}

// Prediction is one solved point.
type Prediction struct {
	// Cycles is the predicted runtime (makespan over the predicted
	// per-processor completion profile), in base-clock cycles.
	Cycles int64
	// Confidence in [0,1]: the edge-stream coverage discounted by how
	// deep into congestion the point runs. Low confidence is the pruned
	// sweep's cue to fall back to a real simulation.
	Confidence float64
	// Rho is the estimated offered bisection utilization at this point.
	Rho float64
}

// event kinds in solve order. Edges chain a wait onto a source chain;
// markers and terminals only advance a chain through rigid time.
const (
	kindEdge     = iota // miss/msg: wait = fixed + latScale·Lat + bwScale·BW
	kindMarker          // barrier release: dependence is carried by inner edges
	kindTerminal        // processor completion
)

// event is one node of the dependency DAG in solve form: something that
// happened on a processor chain at base time at, optionally fed by a
// wait that departed chain src at base time start.
type event struct {
	node  int
	at    sim.Time // base-run time of the effect (edge End, completion)
	start sim.Time // base-run time of the cause (edge Start)
	src   int      // chain the wait departs from (miss: self; msg: sender)
	fixed sim.Time // protocol part of the wait; never scales
	lat   sim.Time // network-latency part; scales with LatScale
	bw    sim.Time // serialization/occupancy part; scales with BWScale
	kind  int
}

// Model is the retained dependency DAG of one instrumented run, ready
// to re-solve at arbitrary (latency, bandwidth) points. Build it once
// per base run; Solve is read-only and safe for concurrent use.
type Model struct {
	nodes    int
	clk      sim.Clock
	events   []event
	coverage float64
	bisBytes float64
	bisBW    float64
}

// Build compiles an instrumented run into a solvable dependency DAG.
//
// Per edge kind: "miss" edges chain a round-trip wait onto the
// requester's own chain (departure at Start, arrival at End); "msg"
// edges chain the wait onto the sender's chain, which is what carries a
// perturbation across processors; "barrier" edges are markers — the
// cross-processor dependence of a barrier is already carried by the
// miss/msg edges of its spin reads and notification messages; "txn"
// edges are the home directory's view of a transaction the requester's
// own miss edge already covers, so they are dropped rather than letting
// one round trip perturb two chains. Time between consecutive effects
// on a chain is rigid compute by construction, which also makes edges
// the rings evicted degrade the model gracefully: their time is kept,
// just frozen at base cost.
func Build(in Input) (*Model, error) {
	if in.Nodes < 1 {
		return nil, fmt.Errorf("predict: %d nodes", in.Nodes)
	}
	if len(in.DoneCycles) != in.Nodes {
		return nil, fmt.Errorf("predict: %d completion times for %d nodes", len(in.DoneCycles), in.Nodes)
	}
	events := make([]event, 0, len(in.Edges)+in.Nodes)
	for _, e := range in.Edges {
		if e.Dst < 0 || e.Dst >= in.Nodes || e.Src < 0 || e.Src >= in.Nodes {
			return nil, fmt.Errorf("predict: edge %+v outside the %d-node machine", e, in.Nodes)
		}
		if e.End < e.Start {
			return nil, fmt.Errorf("predict: edge %+v ends before it starts", e)
		}
		switch e.Kind {
		case "txn":
			continue
		case "barrier":
			events = append(events, event{node: e.Dst, at: e.End, start: e.Start, kind: kindMarker})
		default: // "miss", "msg"
			d := e.End - e.Start
			lat, bw := e.Lat, e.BW
			// The recorder's decomposition is bounded by the edge span;
			// clamp defensively so fixed stays nonnegative.
			if bw > d {
				bw = d
			}
			if lat > d-bw {
				lat = d - bw
			}
			src := e.Src
			if e.Kind != "msg" {
				src = e.Dst
			}
			events = append(events, event{
				node: e.Dst, at: e.End, start: e.Start, src: src,
				fixed: d - lat - bw, lat: lat, bw: bw, kind: kindEdge,
			})
		}
	}
	for n, done := range in.DoneCycles {
		events = append(events, event{node: n, at: in.Clk.Cycles(done), kind: kindTerminal})
	}
	// Global solve order: by base effect time, with a full deterministic
	// tiebreak. Processing in effect-time order guarantees that when an
	// edge reads its source chain's potential at the (earlier) departure
	// time, every event that shaped that potential has been applied.
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.start != b.start {
			return a.start < b.start
		}
		return a.src < b.src
	})
	cov := 1.0
	if in.EdgesTotal > 0 {
		cov = float64(len(in.Edges)) / float64(in.EdgesTotal)
		if cov > 1 {
			cov = 1
		}
	}
	return &Model{
		nodes:    in.Nodes,
		clk:      in.Clk,
		events:   events,
		coverage: cov,
		bisBytes: in.BisectionBytes,
		bisBW:    in.BisectionBW,
	}, nil
}

// Coverage is the fraction of the run's causal edges the model retains;
// below 1, evicted edges are frozen at base cost inside rigid gaps.
func (m *Model) Coverage() float64 { return m.coverage }

// Events reports the solved DAG's event count (edges plus terminals).
func (m *Model) Events() int { return len(m.events) }

// scaleTime rounds t·f to the nearest picosecond. Per-edge rounding
// (rather than accumulating floats) keeps the solve integer-exact at
// the base point and bit-stable everywhere.
func scaleTime(t sim.Time, f float64) sim.Time {
	if f == 1 {
		return t
	}
	return sim.Time(math.Round(float64(t) * f))
}

// Solve predicts the runtime at pt by a single longest-path pass over
// the DAG in base-time order. Each chain keeps two clocks: lastBase,
// its base-run position, and pred, its predicted position. The base gap
// between consecutive effects is rigid (compute plus unobserved time);
// an edge then completes at the later of its chain's local progress and
// its rescaled wait's arrival from the source chain — the max/plus
// recurrence of a topological longest-path. Slack behaves like the real
// machine in two ways: a receiver whose own progress outruns a delayed
// sender absorbs the delay (the local side of the max), and a delayed
// non-critical chain moves nothing until it overtakes the makespan (the
// final max over chains) — the same imbalance slack behind the Figure
// S2 delay-hiding asymmetry. What self-chained blocking waits expose,
// by contrast, stretches in full, which is exactly sequentially
// consistent shared memory's liability.
func (m *Model) Solve(pt Point) Prediction {
	lastBase := make([]sim.Time, m.nodes)
	pred := make([]sim.Time, m.nodes)
	for _, e := range m.events {
		gap := e.at - lastBase[e.node]
		if gap < 0 {
			// Terminal timestamps are cycle-quantized and may land just
			// before the chain's last edge; rigid time never runs backward.
			gap = 0
		}
		switch e.kind {
		case kindEdge:
			span := e.fixed + e.lat + e.bw
			wait := span
			if wait > gap {
				// The base run overlapped part of this wait with the
				// chain's other progress; only the exposed part is slack.
				wait = gap
			}
			local := pred[e.node] + (gap - wait)
			srcPot := pred[e.src] + (e.start - lastBase[e.src])
			if srcPot < 0 {
				srcPot = 0
			}
			arr := srcPot + e.fixed + scaleTime(e.lat, pt.LatScale) + scaleTime(e.bw, pt.BWScale)
			if arr < local {
				arr = local
			}
			pred[e.node] = arr
		default: // marker, terminal
			pred[e.node] += gap
		}
		if e.at > lastBase[e.node] {
			lastBase[e.node] = e.at
		}
	}
	var makespan sim.Time
	for _, t := range pred {
		if t > makespan {
			makespan = t
		}
	}
	p := Prediction{Cycles: m.clk.ToCycles(makespan)}
	p.Rho = m.rho(p.Cycles, pt.BWScale) + pt.ExtraRho
	p.Confidence = m.coverage * (1 - 0.5*math.Min(p.Rho, 1))
	return p
}

// rho estimates offered bisection utilization at a predicted runtime:
// the base run's cut-crossing bytes against the cut bandwidth left at
// this point (BWScale stretches serialization, i.e. divides bandwidth).
func (m *Model) rho(cycles int64, bwScale float64) float64 {
	if cycles <= 0 || m.bisBW <= 0 || m.bisBytes <= 0 {
		return 0
	}
	if bwScale < 1 {
		bwScale = 1
	}
	return m.bisBytes * bwScale / (float64(cycles) * m.bisBW)
}

// LatencyTolerance returns the latency scale at which the predicted
// runtime first exceeds (1+growth) times the base runtime, holding
// bandwidth fixed — the paper-style "how much latency can this
// mechanism hide" number. Returns +Inf when even maxLatScale does not
// reach the target (the mechanism is latency-insensitive at this scale,
// e.g. an edge-free single-node run).
func (m *Model) LatencyTolerance(growth float64) float64 {
	base := float64(m.Solve(Base).Cycles)
	if base <= 0 {
		return math.Inf(1)
	}
	target := base * (1 + growth)
	const maxLatScale = 1 << 20
	hi := 2.0
	for float64(m.Solve(Point{LatScale: hi, BWScale: 1}).Cycles) < target {
		hi *= 2
		if hi > maxLatScale {
			return math.Inf(1)
		}
	}
	lo := hi / 2
	for i := 0; i < 50; i++ {
		mid := lo + (hi-lo)/2
		if float64(m.Solve(Point{LatScale: mid, BWScale: 1}).Cycles) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
