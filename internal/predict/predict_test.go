package predict

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// testClock is 20 MHz: 50000 ps per cycle, matching the default machine.
func testClock() sim.Clock { return sim.NewClock(20) }

// twoNodeInput is a hand-built two-processor run: a shared-memory miss
// on node 0, a message from node 0 consumed by node 1, a barrier marker
// on node 1, and a directory-transaction edge the builder must drop.
func twoNodeInput() Input {
	clk := testClock()
	c := clk.Cycles
	return Input{
		Nodes: 2,
		Clk:   clk,
		Edges: []obs.CritEdge{
			{Kind: "txn", Src: 0, Dst: 1, Start: c(1), End: c(2)},
			{Kind: "miss", Src: 1, Dst: 0, Start: c(10), End: c(20), Lat: c(4), BW: c(2)},
			{Kind: "msg", Src: 0, Dst: 1, Start: c(12), End: c(25), Lat: c(5), BW: c(1)},
			{Kind: "barrier", Src: 1, Dst: 1, Start: c(25), End: c(28)},
		},
		EdgesTotal: 4,
		DoneCycles: []int64{30, 32},
	}
}

// TestSolveExactAtBase is the model's anchor: at (LatScale, BWScale) =
// (1, 1) the longest-path pass must reproduce the measured makespan
// exactly, because every edge arrives exactly when it arrived and every
// gap is rigid.
func TestSolveExactAtBase(t *testing.T) {
	m, err := Build(twoNodeInput())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Solve(Base)
	if got.Cycles != 32 {
		t.Errorf("Solve(Base) = %d cycles, want the measured 32", got.Cycles)
	}
}

// TestSolveScalesLatency pins the full recurrence on the hand-built
// DAG at LatScale 2. Node 0's miss departs its own chain at cycle 10
// and arrives at 10 + 4(fixed) + 2·4(lat) + 2(bw) = 24; the message
// departs node 0's chain at its base time 12, back-projected through
// node 0's 4-cycle accumulated delay to potential 16, and arrives at
// node 1 at 16 + 7(fixed) + 2·5(lat) + 1(bw) = 34; the barrier marker
// and terminal add their rigid 3 + 4 cycles: makespan 41.
func TestSolveScalesLatency(t *testing.T) {
	m, err := Build(twoNodeInput())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Solve(Point{LatScale: 2, BWScale: 1}); got.Cycles != 41 {
		t.Errorf("Solve(lat×2) = %d cycles, want 41", got.Cycles)
	}
	// Bandwidth scaling stretches only the BW components (2 + 1 cycles).
	if got := m.Solve(Point{LatScale: 1, BWScale: 2}); got.Cycles != 35 {
		t.Errorf("Solve(bw×2) = %d cycles, want 35", got.Cycles)
	}
}

// TestSolveMonotone: predictions never shrink as either scale grows.
func TestSolveMonotone(t *testing.T) {
	m, err := Build(twoNodeInput())
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for _, s := range []float64{1, 1.5, 2, 4, 8, 32} {
		c := m.Solve(Point{LatScale: s, BWScale: 1}).Cycles
		if c < prev {
			t.Fatalf("prediction shrank from %d to %d cycles at LatScale %v", prev, c, s)
		}
		prev = c
	}
}

// TestSolveSlackAbsorbs: a latency-stretched chain that is not the
// critical one moves nothing until it overtakes the makespan — the
// imbalance slack behind the Figure S2 delay-hiding asymmetry.
func TestSolveSlackAbsorbs(t *testing.T) {
	clk := testClock()
	c := clk.Cycles
	in := Input{
		Nodes: 2,
		Clk:   clk,
		Edges: []obs.CritEdge{
			// Node 0's miss: 2 cycles of latency inside a 10-cycle stall.
			{Kind: "miss", Src: 0, Dst: 0, Start: c(10), End: c(20), Lat: c(2)},
		},
		EdgesTotal: 1,
		DoneCycles: []int64{30, 50},
	}
	m, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0's chain predicts 28 + 2·LatScale cycles; node 1's rigid 50
	// cycles hide the stretch until LatScale exceeds 11.
	for _, s := range []float64{1, 5, 11} {
		if got := m.Solve(Point{LatScale: s, BWScale: 1}).Cycles; got != 50 {
			t.Errorf("Solve(lat×%v) = %d cycles, want 50 (imbalance slack should absorb)", s, got)
		}
	}
	if got := m.Solve(Point{LatScale: 16, BWScale: 1}).Cycles; got != 60 {
		t.Errorf("Solve(lat×16) = %d cycles, want 60 (10 cycles past the slack)", got)
	}
}

// TestBuildRejectsBadEdges: node indexes outside the machine and
// negative spans are construction errors, not solver surprises.
func TestBuildRejectsBadEdges(t *testing.T) {
	clk := testClock()
	base := Input{Nodes: 1, Clk: clk, DoneCycles: []int64{10}}
	bad := base
	bad.Edges = []obs.CritEdge{{Kind: "miss", Src: 0, Dst: 3, Start: 0, End: 1}}
	if _, err := Build(bad); err == nil {
		t.Error("edge to node 3 of a 1-node machine built without error")
	}
	bad = base
	bad.Edges = []obs.CritEdge{{Kind: "miss", Src: 0, Dst: 0, Start: 5, End: 2}}
	if _, err := Build(bad); err == nil {
		t.Error("backward edge built without error")
	}
	bad = base
	bad.DoneCycles = nil
	if _, err := Build(bad); err == nil {
		t.Error("missing completion profile built without error")
	}
}

// TestBuildClampsDecomposition: a recorded lat+bw larger than the edge
// span (which the recorder should never produce, but the model must
// not trust) is clamped so the fixed part stays nonnegative and the
// base solve stays exact.
func TestBuildClampsDecomposition(t *testing.T) {
	clk := testClock()
	c := clk.Cycles
	in := Input{
		Nodes: 1,
		Clk:   clk,
		Edges: []obs.CritEdge{
			{Kind: "miss", Src: 0, Dst: 0, Start: c(1), End: c(3), Lat: c(5), BW: c(5)},
		},
		EdgesTotal: 1,
		DoneCycles: []int64{10},
	}
	m, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Solve(Base).Cycles; got != 10 {
		t.Errorf("Solve(Base) with clamped edge = %d cycles, want 10", got)
	}
}

// TestConfidence: full retention at idle utilization is fully trusted;
// eviction and congestion each discount it.
func TestConfidence(t *testing.T) {
	in := twoNodeInput()
	m, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Solve(Base).Confidence; got != 1 {
		t.Errorf("confidence = %v with full retention and no traffic, want 1", got)
	}
	in.EdgesTotal = 8 // half the stream evicted
	m, err = Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Coverage(); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	// A run whose traffic saturates the cut halves the trust again.
	in.BisectionBytes = 1e12
	in.BisectionBW = 1
	m, err = Build(in)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Solve(Base)
	if p.Rho < 1 {
		t.Fatalf("rho = %v, want saturated (>= 1)", p.Rho)
	}
	if p.Confidence != 0.25 {
		t.Errorf("confidence = %v at coverage 0.5 and rho >= 1, want 0.25", p.Confidence)
	}
}

// TestExtraRho: utilization the model's edges cannot see (cross
// traffic) discounts confidence without touching the predicted cycles.
func TestExtraRho(t *testing.T) {
	m, err := Build(twoNodeInput())
	if err != nil {
		t.Fatal(err)
	}
	plain := m.Solve(Base)
	loaded := m.Solve(Point{LatScale: 1, BWScale: 1, ExtraRho: 0.6})
	if loaded.Cycles != plain.Cycles {
		t.Errorf("ExtraRho changed the prediction: %d vs %d cycles", loaded.Cycles, plain.Cycles)
	}
	if loaded.Rho != plain.Rho+0.6 {
		t.Errorf("rho = %v, want %v", loaded.Rho, plain.Rho+0.6)
	}
	if loaded.Confidence >= plain.Confidence {
		t.Errorf("confidence %v not discounted (was %v)", loaded.Confidence, plain.Confidence)
	}
}

// TestLatencyTolerance: the hand-built DAG has 9 cycles of latency on
// a 32-cycle base, so a 10% growth target (35.2 cycles) is crossed at
// a small finite scale; an edge-free run never crosses it.
func TestLatencyTolerance(t *testing.T) {
	m, err := Build(twoNodeInput())
	if err != nil {
		t.Fatal(err)
	}
	s := m.LatencyTolerance(0.10)
	if math.IsInf(s, 1) || s <= 1 {
		t.Fatalf("latency tolerance = %v, want a finite scale > 1", s)
	}
	at := m.Solve(Point{LatScale: s, BWScale: 1}).Cycles
	below := m.Solve(Point{LatScale: s * 0.99, BWScale: 1}).Cycles
	if float64(at) < 1.1*32 {
		t.Errorf("runtime at the reported tolerance = %d cycles, want >= 35.2", at)
	}
	if float64(below) >= 1.1*32 && below != at {
		t.Errorf("runtime just below the tolerance = %d cycles, already past the target", below)
	}

	quiet := Input{Nodes: 1, Clk: testClock(), DoneCycles: []int64{100}}
	qm, err := Build(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if s := qm.LatencyTolerance(0.10); !math.IsInf(s, 1) {
		t.Errorf("edge-free run reports finite latency tolerance %v", s)
	}
}

// TestSolveDeterministic: repeated solves of one model are identical —
// the in-package half of the race-certified determinism test that
// lives in internal/core.
func TestSolveDeterministic(t *testing.T) {
	m, err := Build(twoNodeInput())
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{Base, {LatScale: 3.7, BWScale: 1.9}, {LatScale: 128, BWScale: 4}}
	var first []Prediction
	for round := 0; round < 3; round++ {
		var got []Prediction
		for _, pt := range pts {
			got = append(got, m.Solve(pt))
		}
		if round == 0 {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("solve round %d diverged: %+v vs %+v", round, got, first)
		}
	}
}
