// Package predict re-solves one instrumented run across a whole
// (latency, bandwidth) sweep without re-simulating it.
//
// The critical-path recorder (internal/obs) captures a run's causal
// edges — message send→receive, miss→fill, barrier arrive→release —
// each decomposed into fixed protocol time, uncongested network
// latency, and serialization/occupancy. Build retains that stream as a
// dependency DAG whose nodes are per-processor intervals: consecutive
// effects on one processor chain are joined by rigid compute spans, and
// each edge contributes a wait of
//
//	fixed + k_lat·LatScale + k_bw·BWScale
//
// departing a source chain at its recorded start time. Solve is then a
// single longest-path pass in topological (base-time) order — the DAG
// is acyclic by construction since every edge points forward in base
// time — so a whole figure's grid costs milliseconds against one base
// simulation per mechanism. No LP solver, no floats in sim time: the
// solve is integer picosecond arithmetic with one rounding per scaled
// edge, which makes it bit-deterministic and exact at the base point.
//
// The model's honesty bound is congestion: waits rescale linearly, so
// points that drive the bisection deep into contention (the run's own
// traffic against a shrinking cut, or cross-traffic streams the edge
// DAG never saw — fed in via Point.ExtraRho) compound queueing the
// solve cannot see. Solve therefore reports a confidence — edge
// coverage discounted by estimated cut utilization — and the pruned
// sweep mode (core.PredictedSweep with Prune) simulates exactly the
// points the model distrusts plus those near mechanism crossovers.
//
// This package is host-side post-run analysis, deliberately outside
// simlint's sim scopes: it never runs in simulated time.
package predict
