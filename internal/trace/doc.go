// Package trace is a lightweight bounded event trace for the simulator:
// protocol and message events are recorded into a per-machine ring buffer
// and dumped as text. It exists for debugging protocol behaviour (the
// directory FIFO starvation this repository once had is obvious in a
// trace) and for teaching: tracing a single cache line through a run
// shows the paper's four-messages-per-value pattern directly.
package trace
