package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestBufferRetainsInOrder(t *testing.T) {
	b := New(4)
	for i := 0; i < 3; i++ {
		b.Add(Event{At: sim.Time(i), Node: i, Kind: KMsgSend})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Node != i {
			t.Errorf("event %d from node %d", i, e.Node)
		}
	}
}

func TestBufferRingWraps(t *testing.T) {
	b := New(4)
	for i := 0; i < 10; i++ {
		b.Add(Event{At: sim.Time(i), Node: i, Kind: KInval})
	}
	if b.Total() != 10 {
		t.Errorf("total = %d, want 10", b.Total())
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Node != 6+i {
			t.Errorf("retained wrong window: %v", evs)
			break
		}
	}
}

func TestFilter(t *testing.T) {
	b := New(16)
	b.Add(Event{Node: 1, Kind: KMsgSend})
	b.Add(Event{Node: 2, Kind: KInval})
	b.Add(Event{Node: 1, Kind: KInval})
	if got := len(b.Filter(KInval, -1)); got != 2 {
		t.Errorf("Filter(KInval, any) = %d, want 2", got)
	}
	if got := len(b.Filter(KInval, 1)); got != 1 {
		t.Errorf("Filter(KInval, 1) = %d, want 1", got)
	}
}

func TestDump(t *testing.T) {
	b := New(2)
	for i := 0; i < 3; i++ {
		b.Add(Event{At: sim.Time(i) * 50000, Node: i, Kind: KBarrier})
	}
	var buf bytes.Buffer
	b.Dump(&buf, sim.NewClock(20))
	out := buf.String()
	if !strings.Contains(out, "barrier") {
		t.Errorf("dump missing kind:\n%s", out)
	}
	if !strings.Contains(out, "1 earlier events dropped") {
		t.Errorf("dump missing drop note:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KMissStart; k <= KLock; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d lacks a name", int(k))
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	// Every in-range kind must have a distinct name (a duplicate would
	// make dumps ambiguous), and out-of-range values must degrade to the
	// numeric form rather than stealing a real kind's name.
	seen := map[string]Kind{}
	for k := KMissStart; k <= KLock; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
	}
	for _, k := range []Kind{KLock + 1, Kind(99), Kind(-1)} {
		want := "Kind(" + itoa(int(k)) + ")"
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
		if _, taken := seen[k.String()]; taken {
			t.Errorf("out-of-range kind %d collides with a named kind", int(k))
		}
	}
}

// itoa avoids importing strconv into the test for one conversion.
func itoa(n int) string { return fmt.Sprintf("%d", n) }

func TestDumpPartialRingReportsNoDrops(t *testing.T) {
	// A partially filled ring (len < cap) has dropped nothing; the drop
	// accounting must measure against capacity, not the filling length.
	b := New(8)
	for i := 0; i < 3; i++ {
		b.Add(Event{At: sim.Time(i) * 50000, Node: i, Kind: KBarrier})
	}
	var buf bytes.Buffer
	b.Dump(&buf, sim.NewClock(20))
	if strings.Contains(buf.String(), "dropped") {
		t.Errorf("partial ring reported drops:\n%s", buf.String())
	}
}

func TestZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestMergeOrdersTrimsAndCountsDrops(t *testing.T) {
	a, b := New(4), New(4)
	for _, at := range []sim.Time{10, 30, 50, 70, 90} { // 5 into cap 4: 10 evicted
		a.Add(Event{At: at, Node: 0})
	}
	for _, at := range []sim.Time{20, 40, 60} {
		b.Add(Event{At: at, Node: 1})
	}
	m := Merge(4, a, b)
	// Total counts every recorded event, including a's evicted one, so
	// drop accounting matches one serial ring seeing all 8 events.
	if m.Total() != 8 {
		t.Errorf("merged total = %d, want 8", m.Total())
	}
	got := m.Events()
	want := []sim.Time{50, 60, 70, 90} // last 4 of the sorted survivors
	if len(got) != len(want) {
		t.Fatalf("retained %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.At != want[i] {
			t.Errorf("event %d at %d, want %d", i, e.At, want[i])
		}
	}
}

func TestMergeTiesKeepShardOrder(t *testing.T) {
	a, b := New(4), New(4)
	a.Add(Event{At: 100, Node: 0, A: 1})
	a.Add(Event{At: 100, Node: 0, A: 2})
	b.Add(Event{At: 100, Node: 1, A: 3})
	m := Merge(4, a, b)
	got := m.Events()
	if len(got) != 3 || got[0].A != 1 || got[1].A != 2 || got[2].A != 3 {
		t.Errorf("equal-timestamp merge reordered events: %+v", got)
	}
	// nil shards are skipped, not dereferenced.
	if m2 := Merge(2, nil, a); m2.Total() != 2 {
		t.Errorf("merge with nil shard: total = %d, want 2", m2.Total())
	}
}
