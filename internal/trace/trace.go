package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Kind classifies trace events.
type Kind int

// Trace event kinds.
const (
	KMissStart Kind = iota // node began a miss transaction on line A (B=1 for write)
	KMissEnd               // node completed a miss transaction on line A
	KInval                 // node's cached copy of line A was invalidated
	KMsgSend               // node sent an active message to node A (B=bytes)
	KMsgRecv               // node handled an active message from node A
	KBulk                  // node sent a bulk transfer to node A (B=payload bytes)
	KBarrier               // node arrived at a barrier
	KLock                  // node acquired (B=1) or released (B=0) the lock at A
)

func (k Kind) String() string {
	switch k {
	case KMissStart:
		return "miss-start"
	case KMissEnd:
		return "miss-end"
	case KInval:
		return "inval"
	case KMsgSend:
		return "msg-send"
	case KMsgRecv:
		return "msg-recv"
	case KBulk:
		return "bulk"
	case KBarrier:
		return "barrier"
	case KLock:
		return "lock"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Node int
	Kind Kind
	A, B int64 // kind-specific operands (line, peer, bytes, ...)
}

// Buffer is a fixed-capacity ring of events. The zero value is unusable;
// create one with New. Not safe for concurrent use — the simulator is
// single-threaded by construction.
type Buffer struct {
	ring  []Event
	next  int
	total int64
}

// New creates a buffer holding the last cap events.
func New(cap int) *Buffer {
	if cap <= 0 {
		panic(fmt.Sprintf("trace: non-positive capacity %d", cap))
	}
	return &Buffer{ring: make([]Event, 0, cap)}
}

// Add records an event, evicting the oldest when full.
func (b *Buffer) Add(e Event) {
	b.total++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
		return
	}
	b.ring[b.next] = e
	b.next = (b.next + 1) % cap(b.ring)
}

// Total reports how many events were recorded over the run (including
// evicted ones).
func (b *Buffer) Total() int64 { return b.total }

// Merge combines per-tile buffers into one buffer as if every event had
// been recorded into a single ring of capacity cap: events are ordered
// by timestamp (a stable sort — ties keep tile order, and each tile's
// internal order), the last cap are retained, and Total counts every
// recorded event, including ones the per-tile rings already evicted —
// so dropped-event accounting matches a serial run recording the same
// event population into one ring.
func Merge(cap int, shards ...*Buffer) *Buffer {
	out := New(cap)
	var all []Event
	var total int64
	for _, s := range shards {
		if s == nil {
			continue
		}
		all = append(all, s.Events()...)
		total += s.total
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	if len(all) > cap {
		all = all[len(all)-cap:]
	}
	for _, e := range all {
		out.Add(e)
	}
	out.total = total
	return out
}

// Events returns the retained events in recording order.
func (b *Buffer) Events() []Event {
	if len(b.ring) < cap(b.ring) {
		out := make([]Event, len(b.ring))
		copy(out, b.ring)
		return out
	}
	out := make([]Event, 0, cap(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Filter returns retained events matching kind (any node if node < 0).
func (b *Buffer) Filter(kind Kind, node int) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == kind && (node < 0 || e.Node == node) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the retained events as text, timestamps in cycles.
func (b *Buffer) Dump(w io.Writer, clk sim.Clock) {
	for _, e := range b.Events() {
		fmt.Fprintf(w, "%10d  node %2d  %-10s  a=%d b=%d\n",
			clk.ToCycles(e.At), e.Node, e.Kind, e.A, e.B)
	}
	// Retained count is len(b.ring) only while filling; once the ring has
	// wrapped it stays pinned at cap(b.ring), which is what drops are
	// measured against.
	if dropped := b.total - int64(cap(b.ring)); dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", dropped)
	}
}
