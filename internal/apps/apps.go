package apps

import (
	"fmt"

	"repro/internal/machine"
)

// Mechanism is one of the paper's five communication styles.
type Mechanism int

const (
	// SM is sequentially-consistent hardware shared memory.
	SM Mechanism = iota
	// SMPrefetch is shared memory plus software prefetch.
	SMPrefetch
	// MPInterrupt is fine-grained active messages received by interrupts.
	MPInterrupt
	// MPPoll is fine-grained active messages received by polling.
	MPPoll
	// Bulk is DMA bulk transfer.
	Bulk

	NumMechanisms
)

// Mechanisms lists all five in presentation order (the paper's figures).
var Mechanisms = []Mechanism{SM, SMPrefetch, MPInterrupt, MPPoll, Bulk}

func (m Mechanism) String() string {
	switch m {
	case SM:
		return "shared-memory"
	case SMPrefetch:
		return "sm+prefetch"
	case MPInterrupt:
		return "mp-interrupt"
	case MPPoll:
		return "mp-poll"
	case Bulk:
		return "bulk-dma"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// Short returns a compact column label.
func (m Mechanism) Short() string {
	switch m {
	case SM:
		return "SM"
	case SMPrefetch:
		return "SM+PF"
	case MPInterrupt:
		return "MP-I"
	case MPPoll:
		return "MP-P"
	case Bulk:
		return "BULK"
	}
	return "?"
}

// UsesMessages reports whether the mechanism communicates via the
// message layer (as opposed to the coherence protocol).
func (m Mechanism) UsesMessages() bool { return m >= MPInterrupt }

// UsesPrefetch reports whether prefetch instructions are issued.
func (m Mechanism) UsesPrefetch() bool { return m == SMPrefetch }

// RecvMode returns the message reception mode for message mechanisms.
// Bulk transfers on Alewife are received like interrupt-driven messages.
func (m Mechanism) RecvMode() machine.RecvMode {
	if m == MPPoll {
		return machine.RecvPoll
	}
	return machine.RecvInterrupt
}

// App is one application bound to one machine and one mechanism. The
// lifecycle is: construct (generates the workload), Setup (allocates
// simulated memory and registers handlers), machine.Run(app.Body), then
// Validate against the sequential reference.
type App interface {
	// Name identifies the application ("em3d", "unstruc", ...).
	Name() string
	// Setup binds the app to a machine and mechanism. Called once,
	// before Machine.Run.
	Setup(m *machine.Machine, mech Mechanism)
	// Body is the SPMD per-processor program.
	Body(p *machine.Proc)
	// Validate compares the simulated result with the sequential
	// reference, returning a descriptive error on mismatch.
	Validate() error
}

// CyclesPerFlop converts application FLOP counts to Sparcle cycles.
const CyclesPerFlop = 2

// BlockRange returns the [lo, hi) range of items owned by proc pr when n
// items are block-distributed over nprocs.
func BlockRange(n, nprocs, pr int) (lo, hi int) {
	return pr * n / nprocs, (pr + 1) * n / nprocs
}
