package iccg

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func tinyParams() workload.ICCGParams {
	p := workload.DefaultICCGParams()
	p.Rows = 640
	p.Band = 32
	return p
}

func runOne(t *testing.T, mech apps.Mechanism) machine.Result {
	t.Helper()
	a := New(tinyParams())
	m := machine.New(machine.DefaultConfig())
	a.Setup(m, mech)
	res := m.Run(a.Body)
	if err := a.Validate(); err != nil {
		t.Fatalf("%v: %v", mech, err)
	}
	return res
}

func TestAllMechanismsValidate(t *testing.T) {
	for _, mech := range apps.Mechanisms {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			res := runOne(t, mech)
			if res.Cycles <= 0 {
				t.Fatal("no simulated time")
			}
		})
	}
}

func TestInterruptsCauseMoreSyncThanPolling(t *testing.T) {
	// The paper's strongest polling result: asynchronous interrupts
	// produce uneven processor progress and high synchronization time on
	// ICCG's dependence-heavy DAG.
	resInt := runOne(t, apps.MPInterrupt)
	resPoll := runOne(t, apps.MPPoll)
	if resPoll.Cycles >= resInt.Cycles {
		t.Errorf("polling (%d cycles) not faster than interrupts (%d)",
			resPoll.Cycles, resInt.Cycles)
	}
}

func TestSMUsesProducerComputesPattern(t *testing.T) {
	res := runOne(t, apps.SM)
	// Producer-computes: remote Updates dominate; messages only from the
	// final barrier... none, since SM barrier is also shared memory.
	if res.Events.MessagesSent != 0 {
		t.Errorf("SM ICCG sent %d app messages", res.Events.MessagesSent)
	}
	if res.Events.RemoteMisses() == 0 {
		t.Error("SM ICCG made no remote accesses")
	}
	if res.Events.Invalidations == 0 {
		t.Error("producer-computes made no invalidations")
	}
}

func TestBulkBuffersEdges(t *testing.T) {
	resBulk := runOne(t, apps.Bulk)
	resFine := runOne(t, apps.MPInterrupt)
	if resBulk.Events.MessagesSent >= resFine.Events.MessagesSent {
		t.Errorf("bulk messages %d >= fine-grained %d",
			resBulk.Events.MessagesSent, resFine.Events.MessagesSent)
	}
	if resBulk.Events.BulkTransfers == 0 {
		t.Error("no bulk transfers")
	}
}

func TestFineGrainedMessageCountMatchesRemoteEdges(t *testing.T) {
	a := New(tinyParams())
	m := machine.New(machine.DefaultConfig())
	a.Setup(m, apps.MPInterrupt)
	res := m.Run(a.Body)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	remote := 0
	for i, preds := range a.sys.Preds {
		for _, j := range preds {
			if a.sys.Part[i] != a.sys.Part[j] {
				remote++
			}
		}
	}
	// App messages = one per remote DAG edge (plus barrier messages).
	appMsgs := res.Events.MessagesSent
	if appMsgs < int64(remote) {
		t.Errorf("sent %d messages for %d remote edges", appMsgs, remote)
	}
	if appMsgs > int64(remote)+int64(5*a.par.Procs) {
		t.Errorf("sent %d messages, expected ~%d + barrier traffic", appMsgs, remote)
	}
}

func TestVolumeSMHighest(t *testing.T) {
	resSM := runOne(t, apps.SM)
	resMP := runOne(t, apps.MPPoll)
	ratio := float64(resSM.Volume.Total()) / float64(resMP.Volume.Total())
	if ratio < 1.5 {
		t.Errorf("SM/MP volume ratio = %.2f, want well above 1 (paper: up to 6x)", ratio)
	}
}

func TestBulkPaddingShowsInData(t *testing.T) {
	// ICCG bulk transfers are small; DMA alignment padding should make
	// the data volume exceed the raw payload.
	res := runOne(t, apps.Bulk)
	raw := res.Events.BulkBytes
	data := res.Volume.Bytes[stats.VolData]
	if data <= raw {
		t.Errorf("bulk data volume %d <= raw payload %d; padding missing", data, raw)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		a := New(tinyParams())
		m := machine.New(machine.DefaultConfig())
		a.Setup(m, apps.MPPoll)
		res := m.Run(a.Body)
		return res.Cycles, res.Volume.Total()
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", c1, v1, c2, v2)
	}
}
