// Package iccg implements the paper's ICCG sparse triangular solve in all
// five styles. The computation graph is a DAG: each row waits for its
// incoming edge values, performs 2 FLOPs per edge, then sends values
// along outgoing edges.
//
// The message-passing versions are dataflow with per-row presence
// counters. The shared-memory versions use the paper's producer-computes
// model: a row's accumulator and presence counter share one cache line,
// so a producer's single remote ownership acquisition (Update) performs
// the subtraction and decrements the counter in one transaction — the
// paper's piggybacked lock. Owners discover completed rows by scanning
// their pending rows' counters: unchanged counters stay cached (cheap
// hits), only freshly-decremented ones fetch.
package iccg
