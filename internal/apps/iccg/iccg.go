package iccg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/psync"
	"repro/internal/workload"
)

const (
	rowOverheadCycles  = 8  // worklist pop, divide, bookkeeping per row
	edgeSendOverhead   = 2  // index arithmetic per outgoing edge
	bulkFlushThreshold = 16 // edges buffered per destination before DMA
)

// App is one ICCG instance.
type App struct {
	par  workload.ICCGParams
	sys  *workload.ICCGSystem
	m    *machine.Machine
	mech apps.Mechanism

	// rowAddr[i]: line-aligned [acc|x, counter] pair (producer-computes
	// colocation). For MP these live at the owner and are only touched
	// locally (Poke/Peek); for SM they are the coherent rendezvous.
	rowAddr []mem.Addr
	myRows  []int // rows per proc
	sources [][]int32

	// MP state (Go-level, owner-local).
	need        []int32 // remaining incoming edges per row
	ready       [][]int32
	donePerProc []int
	edgeH       am.HandlerID
	bulkH       am.HandlerID

	smBar  *psync.SMBarrier
	msgBar *psync.MsgBarrier
}

// New generates the system.
func New(p workload.ICCGParams) *App {
	return &App{par: p, sys: workload.NewICCG(p)}
}

// Name implements apps.App.
func (a *App) Name() string { return "iccg" }

// System exposes the generated workload.
func (a *App) System() *workload.ICCGSystem { return a.sys }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine, mech apps.Mechanism) {
	a.m, a.mech = m, mech
	n := a.par.Rows
	procs := a.par.Procs

	a.rowAddr = make([]mem.Addr, n)
	a.myRows = make([]int, procs)
	a.sources = make([][]int32, procs)
	for i := 0; i < n; i++ {
		pr := a.sys.Part[i]
		a.myRows[pr]++
		a.rowAddr[i] = m.Alloc(pr, 2) // one line: [acc, counter]
		m.Store.Poke(a.rowAddr[i], a.sys.B[i])
		m.Store.Poke(a.rowAddr[i]+1, float64(len(a.sys.Preds[i])))
		if len(a.sys.Preds[i]) == 0 {
			a.sources[pr] = append(a.sources[pr], int32(i))
		}
	}

	if mech.UsesMessages() {
		a.need = make([]int32, n)
		for i := range a.need {
			a.need[i] = int32(len(a.sys.Preds[i]))
		}
		a.ready = make([][]int32, procs)
		a.donePerProc = make([]int, procs)
		for pr := range a.sources {
			a.ready[pr] = append([]int32(nil), a.sources[pr]...)
		}
		a.edgeH = m.AM.Register(a.handleEdge)
		a.bulkH = m.AM.Register(a.handleBulk)
		a.msgBar = psync.NewMsgBarrier(m)
	} else {
		a.smBar = psync.NewSMBarrier(m)
	}
}

// succWeight returns L[succ][row]: the weight of DAG edge row -> succ.
func (a *App) succWeight(row, succ int32) float64 {
	preds := a.sys.Preds[succ]
	for k, j := range preds {
		if j == row {
			return a.sys.PredsW[succ][k]
		}
	}
	panic("iccg: missing edge weight")
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	if a.mech.UsesMessages() {
		p.SetRecvMode(a.mech.RecvMode())
		a.bodyMP(p)
	} else {
		a.bodySM(p)
	}
}

// ---------------------------------------------------------------------------
// Message-passing dataflow
// ---------------------------------------------------------------------------

// handleEdge applies one incoming edge value: args=[row], vals=[w*x].
func (a *App) handleEdge(c *am.Ctx, args []int64, vals []float64) {
	a.applyEdge(c.Node, int32(args[0]), vals[0])
}

// handleBulk applies a buffered batch: args=rows, vals=contributions.
func (a *App) handleBulk(c *am.Ctx, args []int64, vals []float64) {
	c.Overhead(am.GatherScatterCycles(len(vals)))
	for k, r := range args {
		a.applyEdge(c.Node, int32(r), vals[k])
	}
}

func (a *App) applyEdge(node int, row int32, contrib float64) {
	ra := a.rowAddr[row]
	a.m.Store.Poke(ra, a.m.Store.Peek(ra)-contrib)
	a.need[row]--
	if a.need[row] == 0 {
		a.ready[node] = append(a.ready[node], row)
	}
}

type bulkBuf struct {
	rows []int64
	vals []float64
}

func (a *App) bodyMP(p *machine.Proc) {
	me := p.ID
	total := a.myRows[me]
	done := 0
	var bulks map[int]*bulkBuf
	if a.mech == apps.Bulk {
		bulks = make(map[int]*bulkBuf)
	}
	for done < total {
		if len(a.ready[me]) == 0 {
			if a.mech == apps.Bulk {
				a.flushBulks(p, bulks, 0) // avoid deadlock: ship partial buffers
			}
			p.WaitAndHandle()
			continue
		}
		row := a.ready[me][0]
		a.ready[me] = a.ready[me][1:]
		a.processRowMP(p, row, bulks)
		done++
		if a.mech == apps.MPPoll {
			p.Poll()
		}
	}
	if a.mech == apps.Bulk {
		a.flushBulks(p, bulks, 0)
	}
	a.msgBar.Wait(p)
}

// processRowMP finalizes row (divide) and propagates its value along
// outgoing edges.
func (a *App) processRowMP(p *machine.Proc, row int32, bulks map[int]*bulkBuf) {
	ra := a.rowAddr[row]
	x := p.Peek(ra) / a.sys.Diag[row]
	p.Poke(ra, x)
	p.Compute(rowOverheadCycles)
	for _, succ := range a.sys.Succs[row] {
		w := a.succWeight(row, succ)
		contrib := w * x
		owner := a.sys.Part[succ]
		p.Compute(apps.CyclesPerFlop + edgeSendOverhead)
		if owner == p.ID {
			a.applyEdge(p.ID, succ, contrib)
			p.Compute(apps.CyclesPerFlop)
			continue
		}
		if a.mech == apps.Bulk {
			b := bulks[owner]
			if b == nil {
				b = &bulkBuf{}
				bulks[owner] = b
			}
			b.rows = append(b.rows, int64(succ))
			b.vals = append(b.vals, contrib)
			if len(b.rows) >= bulkFlushThreshold {
				a.flushBulks(p, map[int]*bulkBuf{owner: b}, 0)
				delete(bulks, owner)
			}
			continue
		}
		p.Send(owner, a.edgeH, []int64{int64(succ)}, []float64{contrib})
	}
}

// flushBulks ships every buffer with more than min entries.
func (a *App) flushBulks(p *machine.Proc, bulks map[int]*bulkBuf, min int) {
	dsts := make([]int, 0, len(bulks))
	for d := range bulks {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	for _, d := range dsts {
		b := bulks[d]
		if len(b.rows) <= min {
			continue
		}
		p.ChargeGather(len(b.vals))
		p.SendBulk(d, a.bulkH, b.rows, b.vals)
		b.rows, b.vals = nil, nil
	}
}

// ---------------------------------------------------------------------------
// Shared-memory producer-computes
// ---------------------------------------------------------------------------

func (a *App) bodySM(p *machine.Proc) {
	me := p.ID
	pf := a.mech.UsesPrefetch()
	// Rows this processor owns, in index order; each is finalized by its
	// owner once its presence counter (colocated with the accumulator)
	// reaches zero. Producers decrement counters via remote
	// read-modify-writes; owners discover completion by scanning their
	// pending rows’ counters — unchanged counters stay cached (hits),
	// only freshly-written ones fetch.
	remaining := make([]int32, 0, a.myRows[me])
	for i := 0; i < a.par.Rows; i++ {
		if a.sys.Part[i] == me {
			remaining = append(remaining, int32(i))
		}
	}
	backoff := int64(20)
	for len(remaining) > 0 {
		progress := false
		out := remaining[:0]
		for _, row := range remaining {
			// Counter poll: same line as the value.
			if p.ReadSync(a.rowAddr[row]+1) != 0 {
				out = append(out, row)
				continue
			}
			progress = true
			a.processRowSM(p, row, pf)
		}
		remaining = out
		if !progress {
			p.SpinCycles(backoff)
			if backoff < 320 {
				backoff *= 2
			}
		} else {
			backoff = 20
		}
	}
	a.smBar.Wait(p)
}

// processRowSM finalizes a completed row and propagates its value along
// outgoing edges with producer-computes remote updates.
func (a *App) processRowSM(p *machine.Proc, row int32, pf bool) {
	ra := a.rowAddr[row]
	// The counter read cached the line; finalize in place.
	x := p.Read(ra) / a.sys.Diag[row]
	p.Write(ra, x)
	p.Compute(rowOverheadCycles)
	succs := a.sys.Succs[row]
	for si, succ := range succs {
		if pf && si+2 < len(succs) {
			// Two nodes ahead, as the paper inserts them. Most of these
			// are useless when the target is local — the effect the
			// paper reports slowing ICCG down.
			p.Prefetch(a.rowAddr[succs[si+2]], true)
		}
		w := a.succWeight(row, succ)
		contrib := w * x
		sa := a.rowAddr[succ]
		// One ownership acquisition updates value and counter (they
		// share the line) — the paper’s piggybacked lock.
		p.Update(sa, func() {
			a.m.Store.Poke(sa, a.m.Store.Peek(sa)-contrib)
			a.m.Store.Poke(sa+1, a.m.Store.Peek(sa+1)-1)
		})
		p.Compute(apps.CyclesPerFlop*workload.ICCGFlopsPerEdge + edgeSendOverhead)
	}
}

// Validate implements apps.App.
func (a *App) Validate() error {
	want := a.sys.Reference()
	for i := range want {
		got := a.m.Store.Peek(a.rowAddr[i])
		scale := math.Abs(want[i])
		if scale < 1 {
			scale = 1
		}
		if math.Abs(got-want[i])/scale > 1e-9 {
			return fmt.Errorf("iccg: x[%d] = %v, want %v", i, got, want[i])
		}
	}
	return nil
}
