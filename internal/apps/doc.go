// Package apps defines the contract between applications and the
// experiment framework: the five communication mechanisms of the paper
// and the App interface every application implements in all five styles.
package apps
