package unstruc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/psync"
	"repro/internal/workload"
)

const (
	edgeOverheadCycles  = 6  // index arithmetic per edge
	flushOverheadCycles = 4  // per-node flush bookkeeping
	updateFlopCycles    = 12 // 3-component node update
	stateGhostPerMsg    = 2  // nodes per fine-grained state message
)

// App is one UNSTRUC instance.
type App struct {
	par  workload.UnstrucParams
	mesh *workload.UnstrucMesh
	m    *machine.Machine
	mech apps.Mechanism

	stateAddr []mem.Addr // base of 3 state words (padded line-aligned)
	accumAddr []mem.Addr // base of [lock, a0, a1, a2] block
	locks     []*psync.SpinLock

	myEdges   [][]int32    // edges computed by each proc
	myFaces   [][]int32    // faces computed by each proc
	myNodes   [][]int32    // nodes owned by each proc
	touched   [][]int32    // nodes each proc accumulates into
	stateRead [][]mem.Addr // resolved state base per node per proc (MP ghosts)

	// MP machinery.
	sendState []([]sendPair) // per src: state ghosts to push
	expState  []int
	recvState []int
	expAccum  []int
	recvAccum []int
	stateH    am.HandlerID
	accumH    am.HandlerID
	bulkAccH  am.HandlerID

	smBar  *psync.SMBarrier
	msgBar *psync.MsgBarrier
}

type sendPair struct {
	dst   int
	nodes []int32
	base  mem.Addr
}

// New generates the mesh.
func New(p workload.UnstrucParams) *App {
	return &App{par: p, mesh: workload.NewUnstruc(p)}
}

// Name implements apps.App.
func (a *App) Name() string { return "unstruc" }

// Mesh exposes the generated workload.
func (a *App) Mesh() *workload.UnstrucMesh { return a.mesh }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine, mech apps.Mechanism) {
	a.m, a.mech = m, mech
	n := a.par.Nodes
	procs := a.par.Procs

	a.stateAddr = make([]mem.Addr, n)
	a.accumAddr = make([]mem.Addr, n)
	a.locks = make([]*psync.SpinLock, n)
	a.myNodes = make([][]int32, procs)
	for i := 0; i < n; i++ {
		pr := a.mesh.Part[i]
		a.myNodes[pr] = append(a.myNodes[pr], int32(i))
		a.stateAddr[i] = m.Alloc(pr, 4) // 3 state words, line padded
		a.accumAddr[i] = m.Alloc(pr, 4) // [lock, a0] [a1, a2]
		for k := 0; k < 3; k++ {
			m.Store.Poke(a.stateAddr[i]+mem.Addr(k), a.mesh.Init[i][k])
		}
		a.locks[i] = psync.LockAt(m, a.accumAddr[i])
	}

	// Edge ownership: the owner of endpoint A computes the edge.
	a.myEdges = make([][]int32, procs)
	touchSet := make([]map[int32]bool, procs)
	for pr := range touchSet {
		touchSet[pr] = make(map[int32]bool)
	}
	counts := make([]int, procs)
	for e, ed := range a.mesh.Edges {
		// Boundary edges go to whichever endpoint's processor currently
		// has fewer edges (deterministic greedy balance).
		pr := a.mesh.Part[ed[0]]
		if o2 := a.mesh.Part[ed[1]]; o2 != pr && counts[o2] < counts[pr] {
			pr = o2
		}
		counts[pr]++
		a.myEdges[pr] = append(a.myEdges[pr], int32(e))
		touchSet[pr][ed[0]] = true
		touchSet[pr][ed[1]] = true
	}
	// Faces go to the least-loaded owner among their corners.
	a.myFaces = make([][]int32, procs)
	for f, fc := range a.mesh.Faces {
		pr := a.mesh.Part[fc[0]]
		for _, v := range fc[1:] {
			if o := a.mesh.Part[v]; counts[o] < counts[pr] {
				pr = o
			}
		}
		counts[pr]++
		a.myFaces[pr] = append(a.myFaces[pr], int32(f))
		for _, v := range fc {
			touchSet[pr][v] = true
		}
	}
	a.touched = make([][]int32, procs)
	for pr, set := range touchSet {
		for i := range set {
			a.touched[pr] = append(a.touched[pr], i)
		}
		sort.Slice(a.touched[pr], func(x, y int) bool { return a.touched[pr][x] < a.touched[pr][y] })
	}

	if mech.UsesMessages() {
		a.setupMP()
		a.msgBar = psync.NewMsgBarrier(m)
	} else {
		a.stateRead = make([][]mem.Addr, procs)
		for pr := 0; pr < procs; pr++ {
			a.stateRead[pr] = a.stateAddr // direct remote reads
		}
		a.smBar = psync.NewSMBarrier(m)
	}
}

// setupMP builds ghost shipping for node state and counts expected
// accumulate messages.
func (a *App) setupMP() {
	procs := a.par.Procs
	a.sendState = make([][]sendPair, procs)
	a.expState = make([]int, procs)
	a.recvState = make([]int, procs)
	a.expAccum = make([]int, procs)
	a.recvAccum = make([]int, procs)
	a.stateRead = make([][]mem.Addr, procs)

	// Which remote node states does each proc need? (endpoints of its
	// edges not owned by it.)
	need := make([]map[int32]bool, procs)
	for pr := range need {
		need[pr] = make(map[int32]bool)
		for _, e := range a.myEdges[pr] {
			ed := a.mesh.Edges[e]
			for _, v := range []int32{ed[0], ed[1]} {
				if a.mesh.Part[v] != pr {
					need[pr][v] = true
				}
			}
		}
		for _, f := range a.myFaces[pr] {
			for _, v := range a.mesh.Faces[f] {
				if a.mesh.Part[v] != pr {
					need[pr][v] = true
				}
			}
		}
	}
	for c := 0; c < procs; c++ {
		a.stateRead[c] = append([]mem.Addr(nil), a.stateAddr...)
		// Group in sorted-node order so every per-source ghost list comes
		// out ascending regardless of map iteration order.
		needed := make([]int32, 0, len(need[c]))
		for v := range need[c] {
			needed = append(needed, v)
		}
		sort.Slice(needed, func(x, y int) bool { return needed[x] < needed[y] })
		bySrc := make(map[int][]int32)
		for _, v := range needed {
			bySrc[a.mesh.Part[v]] = append(bySrc[a.mesh.Part[v]], v)
		}
		srcs := make([]int, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, s := range srcs {
			nodes := bySrc[s]
			base := a.m.Alloc(c, 3*len(nodes)+1)
			for k, v := range nodes {
				a.stateRead[c][v] = base + mem.Addr(3*k)
			}
			a.sendState[s] = append(a.sendState[s], sendPair{dst: c, nodes: nodes, base: base})
			if a.mech == apps.Bulk {
				a.expState[c]++
			} else {
				a.expState[c] += (len(nodes) + stateGhostPerMsg - 1) / stateGhostPerMsg
			}
		}
	}
	// Expected accumulate messages at each owner: one per (proc, node)
	// pair for fine-grained, one per (proc with any) for bulk.
	for pr := 0; pr < procs; pr++ {
		byDst := make(map[int]int)
		for _, v := range a.touched[pr] {
			if d := a.mesh.Part[v]; d != pr {
				byDst[d]++
			}
		}
		for d, cnt := range byDst {
			if a.mech == apps.Bulk {
				a.expAccum[d]++
			} else {
				a.expAccum[d] += cnt
			}
		}
	}

	a.stateH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		base := mem.Addr(args[0])
		for k, v := range vals {
			a.m.Store.Poke(base+mem.Addr(k), v)
		}
		a.recvState[c.Node]++
	})
	a.accumH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		base := mem.Addr(args[0])
		for k := 0; k < 3; k++ {
			a.m.Store.Poke(base+mem.Addr(1+k), a.m.Store.Peek(base+mem.Addr(1+k))+vals[k])
		}
		a.recvAccum[c.Node]++
	})
	a.bulkAccH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		// args[k] is the accum base of the k-th node; vals in triples.
		c.Overhead(am.GatherScatterCycles(len(vals)))
		for k, arg := range args {
			base := mem.Addr(arg)
			for j := 0; j < 3; j++ {
				a.m.Store.Poke(base+mem.Addr(1+j), a.m.Store.Peek(base+mem.Addr(1+j))+vals[3*k+j])
			}
		}
		a.recvAccum[c.Node]++
	})
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	if a.mech.UsesMessages() {
		p.SetRecvMode(a.mech.RecvMode())
	}
	priv := make(map[int32]*[3]float64, len(a.touched[p.ID]))
	for it := 0; it < a.par.Iters; it++ {
		if a.mech.UsesMessages() {
			a.shipState(p)
		}
		a.edgePhase(p, priv)
		a.flushPhase(p, priv)
		a.barrier(p)
		a.updatePhase(p)
		a.barrier(p)
	}
}

func (a *App) barrier(p *machine.Proc) {
	if a.msgBar != nil {
		a.msgBar.Wait(p)
	} else {
		a.smBar.Wait(p)
	}
}

// shipState pushes node states to consumers and waits for own ghosts.
func (a *App) shipState(p *machine.Proc) {
	sends := 0
	for _, sp := range a.sendState[p.ID] {
		if a.mech == apps.Bulk {
			buf := make([]float64, 0, 3*len(sp.nodes))
			for _, v := range sp.nodes {
				for k := 0; k < 3; k++ {
					buf = append(buf, p.Peek(a.stateAddr[v]+mem.Addr(k)))
				}
			}
			p.ChargeGather(len(buf))
			p.SendBulk(sp.dst, a.stateH, []int64{int64(sp.base)}, buf)
			continue
		}
		for off := 0; off < len(sp.nodes); off += stateGhostPerMsg {
			end := off + stateGhostPerMsg
			if end > len(sp.nodes) {
				end = len(sp.nodes)
			}
			vals := make([]float64, 0, 3*(end-off))
			for _, v := range sp.nodes[off:end] {
				for k := 0; k < 3; k++ {
					vals = append(vals, p.Peek(a.stateAddr[v]+mem.Addr(k)))
				}
			}
			p.Send(sp.dst, a.stateH, []int64{int64(sp.base) + int64(3*off)}, vals)
			sends++
			if a.mech == apps.MPPoll && sends%4 == 0 {
				p.Poll()
			}
		}
	}
	for a.recvState[p.ID] < a.expState[p.ID] {
		p.WaitAndHandle()
	}
	a.recvState[p.ID] = 0
}

// readState loads a node's 3-component state through the cache (real
// location for SM, local ghost for MP).
func (a *App) readState(p *machine.Proc, node int32) [3]float64 {
	base := a.stateRead[p.ID][node]
	var s [3]float64
	for k := 0; k < 3; k++ {
		s[k] = p.Read(base + mem.Addr(k))
	}
	return s
}

// edgePhase computes all of this processor's edges into private
// accumulators.
func (a *App) edgePhase(p *machine.Proc, priv map[int32]*[3]float64) {
	pf := a.mech.UsesPrefetch()
	edges := a.myEdges[p.ID]
	polls := 0
	for idx, e := range edges {
		ed := a.mesh.Edges[e]
		u, v := ed[0], ed[1]
		if pf && idx+2 < len(edges) {
			// Read-prefetch the state of the edge two computations ahead.
			nxt := a.mesh.Edges[edges[idx+2]]
			p.Prefetch(a.stateRead[p.ID][nxt[0]], false)
			p.Prefetch(a.stateRead[p.ID][nxt[1]], false)
		}
		su := a.readState(p, u)
		sv := a.readState(p, v)
		c := workload.EdgeContrib(su, sv)
		p.Compute(workload.UnstrucFlopsPerEdge*apps.CyclesPerFlop + edgeOverheadCycles)
		au := privAt(priv, u)
		av := privAt(priv, v)
		for k := 0; k < 3; k++ {
			au[k] += c[k]
			av[k] -= c[k]
		}
		if a.mech == apps.MPPoll {
			polls++
			if polls%8 == 0 {
				p.Poll()
			}
		}
	}
	// Face phase: each face reads its four corners and accumulates with
	// alternating sign.
	for _, f := range a.myFaces[p.ID] {
		fc := a.mesh.Faces[f]
		s0 := a.readState(p, fc[0])
		s1 := a.readState(p, fc[1])
		s2 := a.readState(p, fc[2])
		s3 := a.readState(p, fc[3])
		c := workload.FaceContrib(s0, s1, s2, s3)
		p.Compute(workload.UnstrucFlopsPerFace*apps.CyclesPerFlop + edgeOverheadCycles)
		signs := [4]float64{1, -1, 1, -1}
		for vi, v := range fc {
			acc := privAt(priv, v)
			for k := 0; k < 3; k++ {
				acc[k] += signs[vi] * c[k]
			}
		}
		if a.mech == apps.MPPoll {
			polls++
			if polls%8 == 0 {
				p.Poll()
			}
		}
	}
}

func privAt(priv map[int32]*[3]float64, node int32) *[3]float64 {
	if a := priv[node]; a != nil {
		return a
	}
	a := &[3]float64{}
	priv[node] = a
	return a
}

// flushPhase pushes private accumulations into the shared per-node
// accumulators: lock-protected writes for shared memory, handler
// messages for message passing.
func (a *App) flushPhase(p *machine.Proc, priv map[int32]*[3]float64) {
	pf := a.mech.UsesPrefetch()
	nodes := a.touched[p.ID]
	if a.mech.UsesMessages() {
		type bulkBuf struct {
			args []int64
			vals []float64
		}
		bulks := make(map[int]*bulkBuf)
		sends := 0
		for _, v := range nodes {
			acc := priv[v]
			if acc == nil {
				continue
			}
			owner := a.mesh.Part[v]
			if owner == p.ID {
				// Local flush: direct memory update; handlers that
				// target the same words run on this same thread, so no
				// lock is needed.
				p.Compute(flushOverheadCycles)
				for k := 0; k < 3; k++ {
					ad := a.accumAddr[v] + mem.Addr(1+k)
					p.Poke(ad, p.Peek(ad)+acc[k])
				}
			} else if a.mech == apps.Bulk {
				b := bulks[owner]
				if b == nil {
					b = &bulkBuf{}
					bulks[owner] = b
				}
				b.args = append(b.args, int64(a.accumAddr[v]))
				b.vals = append(b.vals, acc[0], acc[1], acc[2])
			} else {
				p.Send(owner, a.accumH, []int64{int64(a.accumAddr[v])}, acc[0:3][:])
				sends++
				if a.mech == apps.MPPoll && sends%4 == 0 {
					p.Poll()
				}
			}
			*acc = [3]float64{}
		}
		dsts := make([]int, 0, len(bulks))
		for d := range bulks {
			dsts = append(dsts, d)
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			b := bulks[d]
			p.ChargeGather(len(b.vals))
			p.SendBulk(d, a.bulkAccH, b.args, b.vals)
		}
		for a.recvAccum[p.ID] < a.expAccum[p.ID] {
			p.WaitAndHandle()
		}
		a.recvAccum[p.ID] = 0
		return
	}
	// Shared memory: per-node lock, colocated with the accumulator.
	for idx, v := range nodes {
		acc := priv[v]
		if acc == nil {
			continue
		}
		if pf && idx+2 < len(nodes) {
			// Write-prefetch the accumulator two nodes ahead (the
			// paper's two-edge-computations-ahead insertion).
			p.Prefetch(a.accumAddr[nodes[idx+2]], true)
		}
		l := a.locks[v]
		l.Acquire(p)
		for k := 0; k < 3; k++ {
			ad := a.accumAddr[v] + mem.Addr(1+k)
			p.Write(ad, p.Read(ad)+acc[k])
		}
		l.Release(p)
		p.Compute(flushOverheadCycles)
		*acc = [3]float64{}
	}
}

// updatePhase applies accumulated updates to owned nodes and clears the
// accumulators.
func (a *App) updatePhase(p *machine.Proc) {
	for _, v := range a.myNodes[p.ID] {
		p.Compute(updateFlopCycles)
		for k := 0; k < 3; k++ {
			sa := a.stateAddr[v] + mem.Addr(k)
			ad := a.accumAddr[v] + mem.Addr(1+k)
			acc := p.Read(ad)
			p.Write(sa, p.Read(sa)+0.1*acc)
			p.Write(ad, 0)
		}
	}
}

// Validate implements apps.App.
func (a *App) Validate() error {
	want := a.mesh.Reference(a.par.Iters)
	for i := range want {
		for k := 0; k < 3; k++ {
			got := a.m.Store.Peek(a.stateAddr[i] + mem.Addr(k))
			w := want[i][k]
			scale := math.Abs(w)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(got-w)/scale > 1e-6 {
				return fmt.Errorf("unstruc: state[%d][%d] = %v, want %v", i, k, got, w)
			}
		}
	}
	return nil
}
