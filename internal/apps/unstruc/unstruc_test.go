package unstruc

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func tinyParams() workload.UnstrucParams {
	p := workload.DefaultUnstrucParams()
	return p.Scaled(800, 2)
}

func runOne(t *testing.T, mech apps.Mechanism) machine.Result {
	t.Helper()
	a := New(tinyParams())
	m := machine.New(machine.DefaultConfig())
	a.Setup(m, mech)
	res := m.Run(a.Body)
	if err := a.Validate(); err != nil {
		t.Fatalf("%v: %v", mech, err)
	}
	return res
}

func TestAllMechanismsValidate(t *testing.T) {
	for _, mech := range apps.Mechanisms {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			res := runOne(t, mech)
			if res.Cycles <= 0 {
				t.Fatal("no simulated time")
			}
		})
	}
}

func TestSMPaysLockingOverhead(t *testing.T) {
	// The paper: UNSTRUC's shared-memory versions incur locking overhead
	// protecting node updates; message passing avoids locks entirely.
	resSM := runOne(t, apps.SM)
	if resSM.Events.LockAcquires == 0 {
		t.Error("SM UNSTRUC acquired no locks")
	}
	resMP := runOne(t, apps.MPInterrupt)
	if resMP.Events.LockAcquires != 0 {
		t.Errorf("MP UNSTRUC acquired %d locks; handlers should suffice",
			resMP.Events.LockAcquires)
	}
}

func TestComputeDominatesOnHighFlopApp(t *testing.T) {
	// 75 FLOPs/edge: compute should be the largest bucket for the
	// low-overhead polling version, and a substantial share even for
	// shared memory at this reduced scale.
	res := runOne(t, apps.MPPoll)
	bd := res.Breakdown
	c := bd.T[stats.BucketCompute]
	for b := stats.TimeBucket(0); b < stats.BucketCompute; b++ {
		if bd.T[b] > c {
			t.Errorf("bucket %v (%v) exceeds compute (%v)", b, bd.T[b], c)
		}
	}
	if f := runOne(t, apps.SM).Breakdown.Frac(stats.BucketCompute); f < 0.25 {
		t.Errorf("SM compute fraction %.2f, want >= 0.25", f)
	}
}

func TestBulkChargesGatherScatter(t *testing.T) {
	res := runOne(t, apps.Bulk)
	if res.Events.BulkTransfers == 0 {
		t.Fatal("no bulk transfers")
	}
	if res.Breakdown.T[stats.BucketMsgOverhead] == 0 {
		t.Error("bulk version charged no message overhead")
	}
}

func TestPrefetchVersionIssues(t *testing.T) {
	res := runOne(t, apps.SMPrefetch)
	if res.Events.PrefetchIssued == 0 {
		t.Error("no prefetches issued")
	}
}

func TestVolumeOrdering(t *testing.T) {
	resSM := runOne(t, apps.SM)
	resMP := runOne(t, apps.MPPoll)
	if resSM.Volume.Total() <= resMP.Volume.Total() {
		t.Errorf("SM volume %d <= MP volume %d", resSM.Volume.Total(), resMP.Volume.Total())
	}
	if resSM.Volume.Bytes[stats.VolInvalidates] == 0 {
		t.Error("SM UNSTRUC produced no invalidation traffic")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		a := New(tinyParams())
		m := machine.New(machine.DefaultConfig())
		a.Setup(m, apps.SM)
		res := m.Run(a.Body)
		return res.Cycles, res.Volume.Total()
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", c1, v1, c2, v2)
	}
}
