// Package unstruc implements the paper's UNSTRUC benchmark (fluid flow
// over a 3-D unstructured mesh, 75 FLOPs per edge) in all five styles.
// All versions privatize edge accumulations and flush per touched node.
// The shared-memory flushes are protected by per-node spin locks (the
// locking overhead the paper calls out); the message-passing flushes need
// no locks because non-interruptible handlers provide mutual exclusion.
package unstruc
