// Package moldyn implements the paper's MOLDYN molecular dynamics
// application in all five styles: molecules RCB-partitioned into groups,
// interaction lists rebuilt every 20 iterations from twice the cutoff
// radius, and per-owner position/velocity updates. Cross-group forces go
// through per-(writer,molecule) delta slots in shared memory — the
// paper's exclusive remote force-delta locations, each with a colocated
// lock whose acquisition rides the write-ownership request ("the locks
// performed much better here, because of lower contention") — through
// handler-serialized messages in the fine-grained versions, and through
// per-destination aggregates for bulk transfer. Computation dominates, as
// in the paper.
package moldyn
