package moldyn

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func tinyParams() workload.MoldynParams {
	p := workload.DefaultMoldynParams().ScaledBox(256, 4)
	p.ListEvery = 2 // exercise the rebuild path
	return p
}

func runOne(t *testing.T, mech apps.Mechanism) machine.Result {
	t.Helper()
	a := New(tinyParams())
	m := machine.New(machine.DefaultConfig())
	a.Setup(m, mech)
	res := m.Run(a.Body)
	if err := a.Validate(); err != nil {
		t.Fatalf("%v: %v", mech, err)
	}
	return res
}

func TestAllMechanismsValidate(t *testing.T) {
	for _, mech := range apps.Mechanisms {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			res := runOne(t, mech)
			if res.Cycles <= 0 {
				t.Fatal("no simulated time")
			}
		})
	}
}

func TestComputeDominates(t *testing.T) {
	// The paper: MOLDYN's high computation-to-communication ratio masks
	// mechanism differences. At this unit-test scale (8 molecules per
	// processor — all surface, no interior) the full effect only shows
	// for the low-overhead mechanisms; the paper-scale shape is asserted
	// by the Figure 4 harness tests in internal/core.
	res := runOne(t, apps.MPPoll)
	if res.Breakdown.Frac(stats.BucketCompute) < 0.35 {
		t.Errorf("compute fraction %.2f; MOLDYN should be compute-heavy",
			res.Breakdown.Frac(stats.BucketCompute))
	}
}

func TestMechanismSpreadBounded(t *testing.T) {
	// At unit-test scale the spread is inflated by the surface-dominated
	// partition; it must still stay within a few x (paper-scale masking
	// is asserted in internal/core).
	var min, max int64 = 1 << 62, 0
	for _, mech := range apps.Mechanisms {
		c := runOne(t, mech).Cycles
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(min) > 4.5 {
		t.Errorf("mechanism spread %0.2fx; expected bounded differences", float64(max)/float64(min))
	}
}

func TestLocksUsedWithLowContention(t *testing.T) {
	res := runOne(t, apps.SM)
	if res.Events.LockAcquires == 0 {
		t.Fatal("SM MOLDYN used no locks")
	}
	// Lower contention than raw acquires: spins should be well below
	// acquires (the paper: "locks performed much better here").
	if res.Events.LockSpins > res.Events.LockAcquires {
		t.Errorf("lock spins %d exceed acquires %d; contention too high",
			res.Events.LockSpins, res.Events.LockAcquires)
	}
}

func TestRebuildHappens(t *testing.T) {
	a := New(tinyParams())
	m := machine.New(machine.DefaultConfig())
	a.Setup(m, apps.SM)
	initialPairs := len(a.pairs)
	m.Run(a.Body)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if initialPairs == 0 {
		t.Fatal("no interaction pairs")
	}
}

func TestMessageVersionsShipPositions(t *testing.T) {
	res := runOne(t, apps.MPInterrupt)
	if res.Events.MessagesSent == 0 {
		t.Error("MP MOLDYN sent nothing")
	}
	resBulk := runOne(t, apps.Bulk)
	if resBulk.Events.BulkTransfers == 0 {
		t.Error("bulk MOLDYN made no transfers")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		a := New(tinyParams())
		m := machine.New(machine.DefaultConfig())
		a.Setup(m, apps.Bulk)
		res := m.Run(a.Body)
		return res.Cycles, res.Volume.Total()
	}
	c1, v1 := run()
	c2, v2 := run()
	if c1 != c2 || v1 != v2 {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", c1, v1, c2, v2)
	}
}
