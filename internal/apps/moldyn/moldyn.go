package moldyn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/psync"
	"repro/internal/workload"
)

const (
	pairOverheadCycles   = 6
	updateCycles         = 18 // velocity + position integration per molecule
	rebuildCyclesPerMol  = 30 // cell-list binning share per owned molecule
	rebuildCyclesPerPair = 4  // pair-distance tests share
	posGhostPerMsg       = 2  // molecules per fine-grained position message
)

// App is one MOLDYN instance.
type App struct {
	par  workload.MoldynParams
	box  *workload.MoldynBox
	m    *machine.Machine
	mech apps.Mechanism

	posAddr   []mem.Addr        // 3 words (padded) per molecule, owner-homed
	forceAddr []mem.Addr        // [lock, f0][f1, f2] per molecule, owner-homed (MP only)
	vel       []workload.Point3 // owner-private velocities
	myMols    [][]int32

	// SM force-delta slots: deltaBase[mol] + 4*writer is a [lock, d0]
	// [d1, d2] block homed at mol's owner and written only by writer —
	// the paper's exclusive remote force-delta locations, with the lock
	// word colocated so acquisition piggybacks on write ownership.
	deltaBase []mem.Addr
	// writersOf[mol]: procs (other than the owner) accumulating into mol
	// under the current interaction list.
	writersOf [][]int32

	// Ghost area: per proc, 3 words per molecule (worst case), so slot
	// addresses survive interaction-list rebuilds.
	ghostBase []mem.Addr
	// posRead[pr][i]: where proc pr reads molecule i's position.
	posRead [][]mem.Addr

	// Interaction list state (rebuilt every ListEvery iterations by proc
	// 0 between barriers; identical and deterministic for all).
	pairs   [][2]int32
	myPairs [][]int32
	sendPos [][]sendPair // per src
	expPos  []int
	recvPos []int
	expAcc  []int
	recvAcc []int
	touched [][]int32

	posH  am.HandlerID
	accH  am.HandlerID
	bulkH am.HandlerID

	smBar  *psync.SMBarrier
	msgBar *psync.MsgBarrier
}

type sendPair struct {
	dst  int
	mols []int32
}

// New generates the box.
func New(p workload.MoldynParams) *App {
	return &App{par: p, box: workload.NewMoldyn(p)}
}

// Name implements apps.App.
func (a *App) Name() string { return "moldyn" }

// Box exposes the generated workload.
func (a *App) Box() *workload.MoldynBox { return a.box }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine, mech apps.Mechanism) {
	a.m, a.mech = m, mech
	n := a.par.Molecules
	procs := a.par.Procs

	a.posAddr = make([]mem.Addr, n)
	a.forceAddr = make([]mem.Addr, n)
	a.vel = append([]workload.Point3(nil), a.box.Vel...)
	a.myMols = make([][]int32, procs)
	for i := 0; i < n; i++ {
		pr := a.box.Part[i]
		a.myMols[pr] = append(a.myMols[pr], int32(i))
		a.posAddr[i] = m.Alloc(pr, 4)
		a.forceAddr[i] = m.Alloc(pr, 4)
		p := a.box.Pos[i]
		m.Store.Poke(a.posAddr[i], p.X)
		m.Store.Poke(a.posAddr[i]+1, p.Y)
		m.Store.Poke(a.posAddr[i]+2, p.Z)
	}

	a.posRead = make([][]mem.Addr, procs)
	if mech.UsesMessages() {
		a.ghostBase = make([]mem.Addr, procs)
		for pr := 0; pr < procs; pr++ {
			a.ghostBase[pr] = m.Alloc(pr, 3*n)
			a.posRead[pr] = make([]mem.Addr, n)
			for i := 0; i < n; i++ {
				if a.box.Part[i] == pr {
					a.posRead[pr][i] = a.posAddr[i]
				} else {
					a.posRead[pr][i] = a.ghostBase[pr] + mem.Addr(3*i)
				}
			}
		}
		a.expPos = make([]int, procs)
		a.recvPos = make([]int, procs)
		a.expAcc = make([]int, procs)
		a.recvAcc = make([]int, procs)
		a.registerHandlers()
		a.msgBar = psync.NewMsgBarrier(m)
	} else {
		for pr := 0; pr < procs; pr++ {
			a.posRead[pr] = a.posAddr
		}
		a.deltaBase = make([]mem.Addr, n)
		for i := 0; i < n; i++ {
			a.deltaBase[i] = m.Alloc(a.box.Part[i], 4*procs)
		}
		a.smBar = psync.NewSMBarrier(m)
	}
	a.rebuild() // initial interaction list
}

func (a *App) registerHandlers() {
	a.posH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		for k, mol := range args {
			base := a.ghostBase[c.Node] + mem.Addr(3*mol)
			for j := 0; j < 3; j++ {
				a.m.Store.Poke(base+mem.Addr(j), vals[3*k+j])
			}
		}
		a.recvPos[c.Node]++
	})
	a.accH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		a.applyDelta(int32(args[0]), vals)
		a.recvAcc[c.Node]++
	})
	a.bulkH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		c.Overhead(am.GatherScatterCycles(len(vals)))
		for k, mol := range args {
			a.applyDelta(int32(mol), vals[3*k:3*k+3])
		}
		a.recvAcc[c.Node]++
	})
}

func (a *App) applyDelta(mol int32, d []float64) {
	base := a.forceAddr[mol]
	for j := 0; j < 3; j++ {
		a.m.Store.Poke(base+mem.Addr(1+j), a.m.Store.Peek(base+mem.Addr(1+j))+d[j])
	}
}

// rebuild recomputes the interaction list and all derived communication
// structure from the current (authoritative) positions. Deterministic.
func (a *App) rebuild() {
	n := a.par.Molecules
	procs := a.par.Procs
	pos := make([]workload.Point3, n)
	for i := 0; i < n; i++ {
		pos[i] = workload.Point3{
			X: a.m.Store.Peek(a.posAddr[i]),
			Y: a.m.Store.Peek(a.posAddr[i] + 1),
			Z: a.m.Store.Peek(a.posAddr[i] + 2),
		}
	}
	a.pairs = workload.BuildPairs(pos, a.par.Box, a.par.Cutoff)
	a.myPairs = make([][]int32, procs)
	touchSet := make([]map[int32]bool, procs)
	needPos := make([]map[int32]bool, procs)
	for pr := range touchSet {
		touchSet[pr] = make(map[int32]bool)
		needPos[pr] = make(map[int32]bool)
	}
	counts := make([]int, procs)
	for e, pr := range a.pairs {
		// Boundary pairs go to whichever endpoint's group currently has
		// fewer pairs — deterministic greedy load balancing, standing in
		// for the paper's partitioner-balanced interaction lists.
		owner := a.box.Part[pr[0]]
		if o2 := a.box.Part[pr[1]]; o2 != owner && counts[o2] < counts[owner] {
			owner = o2
		}
		counts[owner]++
		a.myPairs[owner] = append(a.myPairs[owner], int32(e))
		touchSet[owner][pr[0]] = true
		touchSet[owner][pr[1]] = true
		for _, mol := range pr {
			if a.box.Part[mol] != owner {
				needPos[owner][mol] = true
			}
		}
	}
	a.touched = make([][]int32, procs)
	for pr, set := range touchSet {
		for i := range set {
			a.touched[pr] = append(a.touched[pr], i)
		}
		sortI32(a.touched[pr])
	}
	if !a.mech.UsesMessages() {
		// Walk the sorted touched lists, not the touch sets: ascending pr
		// appends leave every writer list sorted by construction.
		a.writersOf = make([][]int32, n)
		for pr := range a.touched {
			for _, mol := range a.touched[pr] {
				if a.box.Part[mol] != pr {
					a.writersOf[mol] = append(a.writersOf[mol], int32(pr))
				}
			}
		}
		return
	}
	a.sendPos = make([][]sendPair, procs)
	for pr := range a.expPos {
		a.expPos[pr] = 0
		a.expAcc[pr] = 0
	}
	for c := 0; c < procs; c++ {
		// Group in sorted-molecule order so every per-source ghost list
		// comes out ascending regardless of map iteration order.
		needed := make([]int32, 0, len(needPos[c]))
		for mol := range needPos[c] {
			needed = append(needed, mol)
		}
		sortI32(needed)
		bySrc := make(map[int][]int32)
		for _, mol := range needed {
			bySrc[a.box.Part[mol]] = append(bySrc[a.box.Part[mol]], mol)
		}
		srcs := make([]int, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		for _, s := range srcs {
			mols := bySrc[s]
			a.sendPos[s] = append(a.sendPos[s], sendPair{dst: c, mols: mols})
			if a.mech == apps.Bulk {
				a.expPos[c]++
			} else {
				a.expPos[c] += (len(mols) + posGhostPerMsg - 1) / posGhostPerMsg
			}
		}
	}
	for pr := 0; pr < procs; pr++ {
		byDst := make(map[int]int)
		for _, mol := range a.touched[pr] {
			if d := a.box.Part[mol]; d != pr {
				byDst[d]++
			}
		}
		for d, cnt := range byDst {
			if a.mech == apps.Bulk {
				a.expAcc[d]++
			} else {
				a.expAcc[d] += cnt
			}
		}
	}
}

func sortI32(s []int32) {
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	if a.mech.UsesMessages() {
		p.SetRecvMode(a.mech.RecvMode())
	}
	priv := make(map[int32]*[3]float64)
	for it := 0; it < a.par.Iters; it++ {
		if it > 0 && it%a.par.ListEvery == 0 {
			// Positions are settled (post-barrier). Proc 0 rebuilds the
			// shared structure; everyone charges their binning share.
			p.Compute(rebuildCyclesPerMol * int64(len(a.myMols[p.ID])))
			if p.ID == 0 {
				a.rebuild()
			}
			a.barrier(p)
			p.Compute(rebuildCyclesPerPair * int64(len(a.myPairs[p.ID])))
		}
		if a.mech.UsesMessages() {
			a.shipPositions(p)
		}
		a.forcePhase(p, priv)
		a.flushPhase(p, priv)
		a.barrier(p)
		a.updatePhase(p, priv)
		a.barrier(p)
	}
}

func (a *App) barrier(p *machine.Proc) {
	if a.msgBar != nil {
		a.msgBar.Wait(p)
	} else {
		a.smBar.Wait(p)
	}
}

func (a *App) shipPositions(p *machine.Proc) {
	sends := 0
	for _, sp := range a.sendPos[p.ID] {
		if a.mech == apps.Bulk {
			args := make([]int64, len(sp.mols))
			vals := make([]float64, 0, 3*len(sp.mols))
			for k, mol := range sp.mols {
				args[k] = int64(mol)
				for j := 0; j < 3; j++ {
					vals = append(vals, p.Peek(a.posAddr[mol]+mem.Addr(j)))
				}
			}
			p.ChargeGather(len(vals))
			p.SendBulk(sp.dst, a.posH, args, vals)
			continue
		}
		for off := 0; off < len(sp.mols); off += posGhostPerMsg {
			end := off + posGhostPerMsg
			if end > len(sp.mols) {
				end = len(sp.mols)
			}
			args := make([]int64, 0, end-off)
			vals := make([]float64, 0, 3*(end-off))
			for _, mol := range sp.mols[off:end] {
				args = append(args, int64(mol))
				for j := 0; j < 3; j++ {
					vals = append(vals, p.Peek(a.posAddr[mol]+mem.Addr(j)))
				}
			}
			p.Send(sp.dst, a.posH, args, vals)
			sends++
			if a.mech == apps.MPPoll && sends%4 == 0 {
				p.Poll()
			}
		}
	}
	for a.recvPos[p.ID] < a.expPos[p.ID] {
		p.WaitAndHandle()
	}
	a.recvPos[p.ID] = 0
}

func (a *App) readPos(p *machine.Proc, mol int32) workload.Point3 {
	base := a.posRead[p.ID][mol]
	return workload.Point3{
		X: p.Read(base),
		Y: p.Read(base + 1),
		Z: p.Read(base + 2),
	}
}

func (a *App) forcePhase(p *machine.Proc, priv map[int32]*[3]float64) {
	pf := a.mech.UsesPrefetch()
	mine := a.myPairs[p.ID]
	for idx, e := range mine {
		pr := a.pairs[e]
		i, j := pr[0], pr[1]
		if pf && idx+2 < len(mine) {
			nxt := a.pairs[mine[idx+2]]
			// Read-prefetch upcoming remote coordinates (the paper
			// prefetches remote coordinates one iteration ahead; two
			// pairs ahead is the in-loop equivalent).
			p.Prefetch(a.posRead[p.ID][nxt[0]], false)
			p.Prefetch(a.posRead[p.ID][nxt[1]], false)
		}
		pi := a.readPos(p, i)
		pj := a.readPos(p, j)
		f := workload.PairForce(pi, pj, a.par.Cutoff)
		p.Compute(workload.MoldynFlopsPerInteraction*apps.CyclesPerFlop + pairOverheadCycles)
		ai, aj := privAt(priv, i), privAt(priv, j)
		ai[0] += f.X
		ai[1] += f.Y
		ai[2] += f.Z
		aj[0] -= f.X
		aj[1] -= f.Y
		aj[2] -= f.Z
		if a.mech == apps.MPPoll && idx%8 == 7 {
			p.Poll()
		}
	}
}

func privAt(priv map[int32]*[3]float64, mol int32) *[3]float64 {
	if a := priv[mol]; a != nil {
		return a
	}
	a := &[3]float64{}
	priv[mol] = a
	return a
}

func (a *App) flushPhase(p *machine.Proc, priv map[int32]*[3]float64) {
	pf := a.mech.UsesPrefetch()
	mols := a.touched[p.ID]
	if a.mech.UsesMessages() {
		type bulkBuf struct {
			args []int64
			vals []float64
		}
		bulks := make(map[int]*bulkBuf)
		sends := 0
		for _, mol := range mols {
			acc := priv[mol]
			if acc == nil {
				continue
			}
			owner := a.box.Part[mol]
			if owner == p.ID {
				continue // consumed from priv at update
			}
			if a.mech == apps.Bulk {
				b := bulks[owner]
				if b == nil {
					b = &bulkBuf{}
					bulks[owner] = b
				}
				b.args = append(b.args, int64(mol))
				b.vals = append(b.vals, acc[0], acc[1], acc[2])
			} else {
				p.Send(owner, a.accH, []int64{int64(mol)}, acc[:])
				sends++
				if a.mech == apps.MPPoll && sends%4 == 0 {
					p.Poll()
				}
			}
			*acc = [3]float64{}
		}
		dsts := make([]int, 0, len(bulks))
		for d := range bulks {
			dsts = append(dsts, d)
		}
		sort.Ints(dsts)
		for _, d := range dsts {
			b := bulks[d]
			p.ChargeGather(len(b.vals))
			p.SendBulk(d, a.bulkH, b.args, b.vals)
		}
		for a.recvAcc[p.ID] < a.expAcc[p.ID] {
			p.WaitAndHandle()
		}
		a.recvAcc[p.ID] = 0
		return
	}
	for idx, mol := range mols {
		acc := priv[mol]
		if acc == nil {
			continue
		}
		if a.box.Part[mol] == p.ID {
			continue // owner's own contributions are consumed at update
		}
		slot := a.deltaBase[mol] + mem.Addr(4*p.ID)
		if pf && idx+2 < len(mols) {
			// Write-prefetch upcoming remote force-delta locations (the
			// paper prefetches them one iteration prior).
			nxt := mols[idx+2]
			if a.box.Part[nxt] != p.ID {
				ns := a.deltaBase[nxt] + mem.Addr(4*p.ID)
				p.Prefetch(ns, true)
				p.Prefetch(ns+2, true)
			}
		}
		// Lock word shares the slot's first line: acquisition rides the
		// write-ownership request (uncontended by construction).
		l := psync.LockAt(a.m, slot)
		l.Acquire(p)
		p.Write(slot+1, p.Peek(slot+1)+acc[0])
		p.Write(slot+2, p.Peek(slot+2)+acc[1])
		p.Write(slot+3, p.Peek(slot+3)+acc[2])
		l.Release(p)
		p.Compute(4)
		*acc = [3]float64{}
	}
}

func (a *App) updatePhase(p *machine.Proc, priv map[int32]*[3]float64) {
	const dt = 0.05
	for _, mol := range a.myMols[p.ID] {
		p.Compute(updateCycles)
		var f [3]float64
		if a.mech.UsesMessages() {
			if acc := priv[mol]; acc != nil {
				f = *acc
				*acc = [3]float64{}
			}
			fb := a.forceAddr[mol]
			for j := 0; j < 3; j++ {
				f[j] += p.Read(fb + mem.Addr(1+j))
				p.Write(fb+mem.Addr(1+j), 0)
			}
		} else {
			// Own contributions straight from the private accumulator.
			if acc := priv[mol]; acc != nil {
				f = *acc
				*acc = [3]float64{}
			}
			// Remote writers' exclusive delta slots: one ownership
			// acquisition per line reads and clears it.
			for _, w := range a.writersOf[mol] {
				slot := a.deltaBase[mol] + mem.Addr(4*w)
				p.Update(slot, func() {
					f[0] += a.m.Store.Peek(slot + 1)
					a.m.Store.Poke(slot+1, 0)
				})
				p.Update(slot+2, func() {
					f[1] += a.m.Store.Peek(slot + 2)
					f[2] += a.m.Store.Peek(slot + 3)
					a.m.Store.Poke(slot+2, 0)
					a.m.Store.Poke(slot+3, 0)
				})
				p.Compute(6)
			}
		}
		v := &a.vel[mol]
		v.X += dt * f[0]
		v.Y += dt * f[1]
		v.Z += dt * f[2]
		for j, d := range []float64{v.X, v.Y, v.Z} {
			pa := a.posAddr[mol] + mem.Addr(j)
			p.Write(pa, p.Read(pa)+dt*d)
		}
	}
}

// Validate implements apps.App.
func (a *App) Validate() error {
	wantPos, wantVel := a.box.Reference()
	for i := range wantPos {
		got := workload.Point3{
			X: a.m.Store.Peek(a.posAddr[i]),
			Y: a.m.Store.Peek(a.posAddr[i] + 1),
			Z: a.m.Store.Peek(a.posAddr[i] + 2),
		}
		if err := close3(got, wantPos[i]); err != nil {
			return fmt.Errorf("moldyn: pos[%d] %v", i, err)
		}
		if err := close3(a.vel[i], wantVel[i]); err != nil {
			return fmt.Errorf("moldyn: vel[%d] %v", i, err)
		}
	}
	return nil
}

func close3(got, want workload.Point3) error {
	for _, pair := range [][2]float64{{got.X, want.X}, {got.Y, want.Y}, {got.Z, want.Z}} {
		scale := math.Abs(pair[1])
		if scale < 1 {
			scale = 1
		}
		if math.Abs(pair[0]-pair[1])/scale > 1e-6 {
			return fmt.Errorf("= %+v, want %+v", got, want)
		}
	}
	return nil
}
