// Package em3d implements the paper's EM3D benchmark (electromagnetic
// wave propagation on an irregular bipartite graph) in all five
// communication styles. The message-passing versions pre-communicate
// "ghost node" values five double-words at a time before each phase, the
// bulk version gathers per-destination buffers for DMA, and the
// shared-memory versions read neighbor values directly, optionally with
// the paper's prefetch insertion (write-prefetch the node being updated,
// read-prefetch edge values two edge-computations ahead).
package em3d
