package em3d

import (
	"fmt"
	"math"

	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/psync"
	"repro/internal/workload"
)

// edgeOverheadCycles is the loop/index overhead per edge computation:
// indirect addressing of the neighbor and coefficient, the accumulate,
// and loop control on a single-issue Sparcle.
const edgeOverheadCycles = 16

// ghostBlock is the fine-grained message payload size in values: the
// paper communicates ghost values five double-words at a time.
const ghostBlock = 5

// App is one EM3D instance.
type App struct {
	par  workload.EM3DParams
	g    *workload.EM3DGraph
	m    *machine.Machine
	mech apps.Mechanism
	// packed stores two values per cache line instead of one (the
	// value-layout ablation; see Setup).
	packed bool

	// Per-side value addresses (side 0 = E, side 1 = H).
	valAddr [2][]mem.Addr
	// resolved[ph][i] holds, for each local node i of the consuming side
	// of phase ph, the addresses its edge values are read from (real
	// locations for shared memory; local ghosts for message passing).
	resolved [2][][]mem.Addr

	// Message-passing state.
	sendList [2][][]sendPair // [phase][src] -> destinations
	expected [2][]int        // messages expected per consumer per phase
	recv     [2][]int
	ghostH   am.HandlerID

	smBar  *psync.SMBarrier
	msgBar *psync.MsgBarrier
}

// sendPair is one (src -> dst) ghost shipment for a phase.
type sendPair struct {
	dst   int
	nodes []int32  // producer-side node ids, in slot order
	base  mem.Addr // ghost block base at dst
}

// New generates the workload (deterministic in p.Seed).
func New(p workload.EM3DParams) *App {
	return &App{par: p, g: workload.NewEM3D(p)}
}

// Name implements apps.App.
func (a *App) Name() string { return "em3d" }

// Graph exposes the generated workload (for tests and reporting).
func (a *App) Graph() *workload.EM3DGraph { return a.g }

// SetPackedLayout switches to two values per cache line (halving read
// misses but overflowing the LimitLESS directory on nearly every value
// line). Call before Setup. The default padded layout is both faster
// under LimitLESS-5 and closer to the paper's volume ratio.
func (a *App) SetPackedLayout(packed bool) { a.packed = packed }

// Setup implements apps.App.
func (a *App) Setup(m *machine.Machine, mech apps.Mechanism) {
	a.m, a.mech = m, mech
	n := a.par.Nodes
	procs := a.par.Procs

	// Allocate per-owner value blocks, one value per cache line. Packing
	// two values per 16-byte line halves read misses but pushes value
	// lines to ~5 sharers, overflowing the LimitLESS directory on nearly
	// every line every phase; the padded layout is both faster under
	// LimitLESS-5 and closer to the paper's measured volume ratio (see
	// EXPERIMENTS.md). The paper's ~6x SM/MP volume is consistent with a
	// line per value.
	stride := mem.Addr(2)
	if a.packed {
		stride = 1
	}
	for side := 0; side < 2; side++ {
		a.valAddr[side] = make([]mem.Addr, n)
		for pr := 0; pr < procs; pr++ {
			lo, hi := apps.BlockRange(n, procs, pr)
			if hi == lo {
				continue
			}
			base := m.Alloc(pr, int(stride)*(hi-lo))
			for i := lo; i < hi; i++ {
				a.valAddr[side][i] = base + stride*mem.Addr(i-lo)
			}
		}
	}
	for i := 0; i < n; i++ {
		m.Store.Poke(a.valAddr[0][i], a.g.EInit[i])
		m.Store.Poke(a.valAddr[1][i], a.g.HInit[i])
	}

	if mech.UsesMessages() {
		a.setupGhosts()
		a.msgBar = psync.NewMsgBarrier(m)
	} else {
		a.resolveDirect()
		a.smBar = psync.NewSMBarrier(m)
	}
}

// resolveDirect points every edge read at the real remote location.
func (a *App) resolveDirect() {
	for ph := 0; ph < 2; ph++ {
		adj := a.adj(ph)
		src := 1 - ph // values consumed come from the other side
		a.resolved[ph] = make([][]mem.Addr, len(adj))
		for i, nbrs := range adj {
			row := make([]mem.Addr, len(nbrs))
			for d, j := range nbrs {
				row[d] = a.valAddr[src][j]
			}
			a.resolved[ph][i] = row
		}
	}
}

// adj returns the consuming side's adjacency for a phase: phase 0 updates
// E nodes from H values, phase 1 updates H nodes from E values.
func (a *App) adj(ph int) [][]int32 {
	if ph == 0 {
		return a.g.EAdj
	}
	return a.g.HAdj
}

func (a *App) coef(ph int) [][]float64 {
	if ph == 0 {
		return a.g.ECoef
	}
	return a.g.HCoef
}

// setupGhosts builds the ghost-node machinery: for each phase, each
// producer ships each consumer the deduplicated set of values the
// consumer's edges need, into a contiguous ghost block at the consumer.
func (a *App) setupGhosts() {
	procs := a.par.Procs
	for ph := 0; ph < 2; ph++ {
		adj := a.adj(ph)
		srcSide := 1 - ph
		need := make([]map[int32]bool, procs) // per producer: nodes needed by current consumer
		a.sendList[ph] = make([][]sendPair, procs)
		a.expected[ph] = make([]int, procs)
		a.recv[ph] = make([]int, procs)
		ghostAddr := make([]map[int32]mem.Addr, procs) // per consumer
		for c := 0; c < procs; c++ {
			ghostAddr[c] = make(map[int32]mem.Addr)
			for s := range need {
				need[s] = nil
			}
			lo, hi := apps.BlockRange(a.par.Nodes, procs, c)
			for i := lo; i < hi; i++ {
				for _, j := range adj[i] {
					owner := int(a.g.Owner[j])
					if owner == c {
						continue
					}
					if need[owner] == nil {
						need[owner] = make(map[int32]bool)
					}
					need[owner][j] = true
				}
			}
			for s := 0; s < procs; s++ {
				if len(need[s]) == 0 {
					continue
				}
				nodes := make([]int32, 0, len(need[s]))
				for j := range need[s] {
					nodes = append(nodes, j)
				}
				sortInt32(nodes)
				base := a.m.Alloc(c, len(nodes))
				for k, j := range nodes {
					ghostAddr[c][j] = base + mem.Addr(k)
				}
				a.sendList[ph][s] = append(a.sendList[ph][s], sendPair{dst: c, nodes: nodes, base: base})
				if a.mech == apps.Bulk {
					a.expected[ph][c]++
				} else {
					a.expected[ph][c] += (len(nodes) + ghostBlock - 1) / ghostBlock
				}
			}
		}
		// Resolve edge reads to local values or ghosts.
		a.resolved[ph] = make([][]mem.Addr, len(adj))
		for i, nbrs := range adj {
			owner := int(a.g.Owner[i])
			row := make([]mem.Addr, len(nbrs))
			for d, j := range nbrs {
				if int(a.g.Owner[j]) == owner {
					row[d] = a.valAddr[srcSide][j]
				} else {
					row[d] = ghostAddr[owner][j]
				}
			}
			a.resolved[ph][i] = row
		}
	}
	// One handler serves both phases: args = [ghost base addr, phase].
	a.ghostH = a.m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		base := mem.Addr(args[0])
		ph := int(args[1])
		for k, v := range vals {
			a.m.Store.Poke(base+mem.Addr(k), v)
		}
		a.recv[ph][c.Node]++
	})
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Body implements apps.App.
func (a *App) Body(p *machine.Proc) {
	if a.mech.UsesMessages() {
		p.SetRecvMode(a.mech.RecvMode())
	}
	for it := 0; it < a.par.Iters; it++ {
		for ph := 0; ph < 2; ph++ {
			if a.mech.UsesMessages() {
				a.commStep(p, ph)
			}
			a.computePhase(p, ph)
			a.barrier(p)
		}
	}
}

func (a *App) barrier(p *machine.Proc) {
	if a.msgBar != nil {
		a.msgBar.Wait(p)
	} else {
		a.smBar.Wait(p)
	}
}

// commStep pushes this processor's produced values to its consumers and
// waits for its own ghosts to arrive.
func (a *App) commStep(p *machine.Proc, ph int) {
	srcSide := 1 - ph
	sends := 0
	for _, sp := range a.sendList[ph][p.ID] {
		if a.mech == apps.Bulk {
			// Gather all values into a contiguous buffer, one DMA shot.
			buf := make([]float64, len(sp.nodes))
			for k, j := range sp.nodes {
				buf[k] = p.Peek(a.valAddr[srcSide][j])
			}
			p.ChargeGather(len(buf))
			p.SendBulk(sp.dst, a.ghostH, []int64{int64(sp.base), int64(ph)}, buf)
			continue
		}
		// Fine-grained: five double-words at a time; the send itself
		// gathers via indirect references into the network queue.
		for off := 0; off < len(sp.nodes); off += ghostBlock {
			end := off + ghostBlock
			if end > len(sp.nodes) {
				end = len(sp.nodes)
			}
			vals := make([]float64, end-off)
			for k := off; k < end; k++ {
				vals[k-off] = p.Peek(a.valAddr[srcSide][sp.nodes[k]])
			}
			p.Send(sp.dst, a.ghostH, []int64{int64(sp.base) + int64(off), int64(ph)}, vals)
			sends++
			if a.mech == apps.MPPoll && sends%4 == 0 {
				p.Poll()
			}
		}
	}
	for a.recv[ph][p.ID] < a.expected[ph][p.ID] {
		p.WaitAndHandle()
	}
	a.recv[ph][p.ID] = 0
}

// computePhase updates this processor's nodes of the phase's side.
func (a *App) computePhase(p *machine.Proc, ph int) {
	lo, hi := apps.BlockRange(a.par.Nodes, a.par.Procs, p.ID)
	coef := a.coef(ph)
	pf := a.mech.UsesPrefetch()
	for i := lo; i < hi; i++ {
		own := a.valAddr[ph][i]
		row := a.resolved[ph][i]
		if pf {
			// Write-prefetch the node being updated (overlap the
			// ownership acquisition with the edge computations).
			p.Prefetch(own, true)
			if len(row) > 0 {
				p.Prefetch(row[0], false)
			}
			if len(row) > 1 {
				p.Prefetch(row[1], false)
			}
		}
		acc := p.Read(own)
		for d := range row {
			if pf && d+2 < len(row) {
				p.Prefetch(row[d+2], false)
			}
			v := p.Read(row[d])
			acc -= coef[i][d] * v
			p.Compute(2*apps.CyclesPerFlop + edgeOverheadCycles)
		}
		p.Write(own, acc)
	}
}

// Validate implements apps.App.
func (a *App) Validate() error {
	e, h := a.g.Reference(a.par.Iters)
	for i := range e {
		if err := closeEnough(a.m.Store.Peek(a.valAddr[0][i]), e[i]); err != nil {
			return fmt.Errorf("em3d: E[%d] %v", i, err)
		}
		if err := closeEnough(a.m.Store.Peek(a.valAddr[1][i]), h[i]); err != nil {
			return fmt.Errorf("em3d: H[%d] %v", i, err)
		}
	}
	return nil
}

func closeEnough(got, want float64) error {
	if got == want {
		return nil
	}
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(got-want)/scale > 1e-9 {
		return fmt.Errorf("= %v, want %v", got, want)
	}
	return nil
}
