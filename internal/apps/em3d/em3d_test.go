package em3d

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func tinyParams() workload.EM3DParams {
	p := workload.DefaultEM3DParams()
	return p.Scaled(320, 2)
}

func runOne(t *testing.T, mech apps.Mechanism) (machine.Result, *App) {
	t.Helper()
	a := New(tinyParams())
	m := machine.New(machine.DefaultConfig())
	a.Setup(m, mech)
	res := m.Run(a.Body)
	if err := a.Validate(); err != nil {
		t.Fatalf("%v: %v", mech, err)
	}
	return res, a
}

func TestAllMechanismsValidate(t *testing.T) {
	for _, mech := range apps.Mechanisms {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			res, _ := runOne(t, mech)
			if res.Cycles <= 0 {
				t.Fatal("no simulated time elapsed")
			}
			if res.Breakdown.T[stats.BucketCompute] == 0 {
				t.Error("no compute time")
			}
		})
	}
}

func TestSharedMemoryUsesCoherence(t *testing.T) {
	res, _ := runOne(t, apps.SM)
	if res.Events.RemoteMisses() == 0 {
		t.Error("SM EM3D produced no remote misses")
	}
	if res.Events.MessagesSent > res.Events.BarrierArrivals {
		t.Errorf("SM EM3D sent %d app messages", res.Events.MessagesSent)
	}
}

func TestMessagePassingUsesMessages(t *testing.T) {
	res, _ := runOne(t, apps.MPInterrupt)
	if res.Events.MessagesSent == 0 {
		t.Error("MP EM3D sent no messages")
	}
	if res.Events.Interrupts == 0 {
		t.Error("MP-interrupt EM3D took no interrupts")
	}
}

func TestPollingPollsAndInterruptVersionDoesNot(t *testing.T) {
	resPoll, _ := runOne(t, apps.MPPoll)
	if resPoll.Events.Polls == 0 {
		t.Error("MP-poll EM3D never polled")
	}
	resInt, _ := runOne(t, apps.MPInterrupt)
	if resInt.Events.Polls != 0 {
		t.Errorf("MP-interrupt EM3D polled %d times", resInt.Events.Polls)
	}
}

func TestBulkUsesDMA(t *testing.T) {
	res, _ := runOne(t, apps.Bulk)
	if res.Events.BulkTransfers == 0 {
		t.Error("bulk EM3D made no DMA transfers")
	}
	// Far fewer messages than fine-grained.
	resFine, _ := runOne(t, apps.MPInterrupt)
	if res.Events.MessagesSent >= resFine.Events.MessagesSent {
		t.Errorf("bulk sent %d messages, fine-grained %d",
			res.Events.MessagesSent, resFine.Events.MessagesSent)
	}
}

func TestPrefetchIssuesPrefetches(t *testing.T) {
	res, _ := runOne(t, apps.SMPrefetch)
	if res.Events.PrefetchIssued == 0 {
		t.Error("prefetch version issued no prefetches")
	}
	if res.Events.PrefetchUseful == 0 {
		t.Error("no prefetch was useful")
	}
}

func TestSMVolumeExceedsMPVolume(t *testing.T) {
	// Figure 5: shared memory moves several times the bytes of message
	// passing on the same app.
	resSM, _ := runOne(t, apps.SM)
	resMP, _ := runOne(t, apps.MPInterrupt)
	if resSM.Volume.Total() <= resMP.Volume.Total() {
		t.Errorf("SM volume %d <= MP volume %d",
			resSM.Volume.Total(), resMP.Volume.Total())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	r1, _ := runOne(t, apps.SM)
	r2, _ := runOne(t, apps.SM)
	if r1.Cycles != r2.Cycles || r1.Volume != r2.Volume {
		t.Errorf("nondeterministic: %d/%v vs %d/%v",
			r1.Cycles, r1.Volume, r2.Cycles, r2.Volume)
	}
}

func TestRemoteFractionMatchesSpec(t *testing.T) {
	a := New(tinyParams())
	f := a.Graph().RemoteEdgeFraction()
	if f < 0.12 || f > 0.28 {
		t.Errorf("remote edge fraction %.3f, want ~0.20", f)
	}
}

// TestAllMechanismsBitIdentical: EM3D's update order is identical across
// all five mechanisms (each node accumulates its edges in index order on
// exact copies of the neighbor values), so the parallel results must be
// bit-identical to the sequential reference — not merely close.
func TestAllMechanismsBitIdentical(t *testing.T) {
	p := tinyParams()
	ref, refH := workload.NewEM3D(p).Reference(p.Iters)
	for _, mech := range apps.Mechanisms {
		a := New(p)
		m := machine.New(machine.DefaultConfig())
		a.Setup(m, mech)
		m.Run(a.Body)
		for i := range ref {
			if got := m.Store.Peek(a.valAddr[0][i]); got != ref[i] {
				t.Fatalf("%v: E[%d] = %x, want %x (bit-exact)", mech, i, got, ref[i])
			}
			if got := m.Store.Peek(a.valAddr[1][i]); got != refH[i] {
				t.Fatalf("%v: H[%d] = %x, want %x (bit-exact)", mech, i, got, refH[i])
			}
		}
	}
}
