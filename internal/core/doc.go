// Package core is the experiment framework reproducing the paper's
// methodology: it binds the four applications (in five communication
// styles each) to simulated machines and runs the parametric studies —
// communication volume, bisection-bandwidth emulation via cross-traffic,
// network-latency emulation via clock scaling, and the context-switch
// (ideal network) emulation — producing the data behind every figure and
// table in the evaluation.
package core
