package core

import (
	"fmt"

	"repro/internal/apps"
)

// Region is one of the performance regimes of the paper's Figures 1 & 2.
type Region int

const (
	// LatencyHiding: performance is unaffected — communication cost is
	// hidden by low volume or parallel slackness.
	LatencyHiding Region = iota
	// LatencyDominated: performance degrades roughly linearly with the
	// parameter — stalls cannot be hidden with useful computation.
	LatencyDominated
	// CongestionDominated: performance degrades superlinearly — queueing
	// in the network dominates.
	CongestionDominated
)

func (r Region) String() string {
	switch r {
	case LatencyHiding:
		return "latency-hiding"
	case LatencyDominated:
		return "latency-dominated"
	case CongestionDominated:
		return "congestion-dominated"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Classification thresholds: a segment whose runtime grows by less than
// flatTol per unit of normalized X is "hiding"; one whose local slope
// exceeds superRatio times the first non-flat slope is "congestion".
const (
	flatTol    = 0.08
	superRatio = 2.5
)

// ClassifyRegions assigns a region to each interval of a sweep for one
// mechanism. Points must be ordered so that increasing index means
// increasing communication stress (for bisection sweeps pass the points
// in decreasing-bandwidth order). The returned slice has len(points)-1
// entries, one per interval.
func ClassifyRegions(points []SweepPoint, mech apps.Mechanism) []Region {
	if len(points) < 2 {
		return nil
	}
	base := float64(points[0].Results[mech].Cycles)
	// Normalized positions 0..1 across the sweep.
	x0, x1 := points[0].X, points[len(points)-1].X
	span := x1 - x0
	if span == 0 {
		span = 1
	}
	slopes := make([]float64, len(points)-1)
	for i := 1; i < len(points); i++ {
		dy := (float64(points[i].Results[mech].Cycles) - float64(points[i-1].Results[mech].Cycles)) / base
		dx := (points[i].X - points[i-1].X) / span
		if dx < 0 {
			dx = -dx
		}
		if dx == 0 {
			dx = 1e-9
		}
		slopes[i-1] = dy / dx
	}
	// Reference slope: the first interval that is not flat.
	ref := 0.0
	for _, s := range slopes {
		if s > flatTol {
			ref = s
			break
		}
	}
	out := make([]Region, len(slopes))
	for i, s := range slopes {
		switch {
		case s <= flatTol:
			out[i] = LatencyHiding
		case ref > 0 && s > superRatio*ref:
			out[i] = CongestionDominated
		default:
			out[i] = LatencyDominated
		}
	}
	return out
}
