// Package core is the experiment framework reproducing the paper's
// methodology: it binds the four applications (in five communication
// styles each) to simulated machines and runs the parametric studies —
// communication volume, bisection-bandwidth emulation via cross-traffic,
// network-latency emulation via clock scaling, and the context-switch
// (ideal network) emulation — producing the data behind every figure and
// table in the evaluation.
package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/em3d"
	"repro/internal/apps/iccg"
	"repro/internal/apps/moldyn"
	"repro/internal/apps/unstruc"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AppName selects one of the paper's four applications.
type AppName string

// The four applications of the study.
const (
	EM3D    AppName = "em3d"
	UNSTRUC AppName = "unstruc"
	ICCG    AppName = "iccg"
	MOLDYN  AppName = "moldyn"
)

// AppNames lists the applications in the paper's presentation order.
var AppNames = []AppName{EM3D, UNSTRUC, ICCG, MOLDYN}

// Scale selects workload size.
type Scale int

const (
	// ScaleTiny: seconds-fast instances for unit tests.
	ScaleTiny Scale = iota
	// ScaleDefault: reduced instances preserving per-iteration behaviour;
	// the default for figure regeneration.
	ScaleDefault
	// ScaleSweep: further reduced instances for many-point sweeps.
	ScaleSweep
	// ScaleFull: the paper's published parameters (EM3D 10000 nodes,
	// degree 10, 50 iterations, ...). Slow.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleDefault:
		return "default"
	case ScaleSweep:
		return "sweep"
	case ScaleFull:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// NewApp constructs an application instance at the given scale. Instances
// are deterministic: the same (name, scale) always yields the same
// workload.
func NewApp(name AppName, sc Scale) (apps.App, error) {
	switch name {
	case EM3D:
		p := workload.DefaultEM3DParams()
		switch sc {
		case ScaleTiny:
			p = p.Scaled(320, 2)
		case ScaleSweep:
			p = p.Scaled(1000, 3)
		case ScaleDefault:
			p = p.Scaled(2000, 5)
		case ScaleFull: // the paper's parameters
		}
		return em3d.New(p), nil
	case UNSTRUC:
		p := workload.DefaultUnstrucParams()
		switch sc {
		case ScaleTiny:
			p = p.Scaled(400, 2)
		case ScaleSweep:
			p = p.Scaled(1000, 3)
		case ScaleDefault:
			p = p.Scaled(2000, 4) // the paper's 2000-node mesh
		case ScaleFull:
			p = p.Scaled(2000, 10)
		}
		return unstruc.New(p), nil
	case ICCG:
		p := workload.DefaultICCGParams()
		switch sc {
		case ScaleTiny:
			p = p.Scaled(640)
		case ScaleSweep:
			p = p.Scaled(2000)
		case ScaleDefault:
			p = p.Scaled(4000)
		case ScaleFull:
			p = p.Scaled(8000)
		}
		return iccg.New(p), nil
	case MOLDYN:
		p := workload.DefaultMoldynParams()
		switch sc {
		case ScaleTiny:
			p = p.ScaledBox(256, 3)
			p.ListEvery = 2
		case ScaleSweep:
			p = p.ScaledBox(512, 3)
			p.ListEvery = 2
		case ScaleDefault:
			p = p.ScaledBox(1024, 6)
			p.ListEvery = 3
		case ScaleFull:
			p = p.ScaledBox(2048, 20) // lists every 20 iterations, as published
		}
		return moldyn.New(p), nil
	}
	return nil, fmt.Errorf("core: unknown application %q", name)
}

// RunConfig is one experiment point.
type RunConfig struct {
	App     AppName
	Mech    apps.Mechanism
	Scale   Scale
	Machine machine.Config
	// SkipValidate skips the numerical check (sweeps re-run the same
	// validated workload many times; validation is O(workload)).
	SkipValidate bool
}

// RunResult is the outcome of one run.
type RunResult struct {
	machine.Result
	App  AppName
	Mech apps.Mechanism
	// Trace holds the machine's event trace when Machine.TraceCap was set.
	Trace *trace.Buffer
	// Obs holds the run's metrics registry when Machine.Metrics was set.
	Obs *obs.Registry
	// Spans holds the thread-state timeline when Machine.SpanCap was set.
	Spans *obs.SpanBuffer
}

// RunError is a crashed run recovered into a value: the simulation
// panicked (watchdog stall, protocol invariant violation, or an
// application bug) instead of completing. When the panic was a watchdog
// diagnostic, Stall carries it in structured form.
type RunError struct {
	App   AppName
	Mech  apps.Mechanism
	Panic string          // rendered panic value
	Stall *sim.StallError // structured watchdog diagnostic, when available
}

func (e *RunError) Error() string {
	return fmt.Sprintf("core: %s/%s run failed: %s", e.App, e.Mech, e.Panic)
}

// Run builds a fresh machine, runs the app under the mechanism, validates
// the numerical result against the sequential reference, and returns the
// measurements. A panicking simulation is recovered into a *RunError
// rather than crashing the process; the crashed machine's paused thread
// goroutines are abandoned (they hold no locks and touch no shared state,
// so abandonment is safe, but a pathological sweep of thousands of
// crashing points would accumulate them).
func Run(rc RunConfig) (res RunResult, err error) {
	a, err := NewApp(rc.App, rc.Scale)
	if err != nil {
		return RunResult{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			re := &RunError{App: rc.App, Mech: rc.Mech, Panic: fmt.Sprint(r)}
			if se, ok := r.(*sim.StallError); ok {
				re.Stall = se
			}
			res, err = RunResult{}, re
		}
	}()
	m := machine.New(rc.Machine)
	a.Setup(m, rc.Mech)
	mres := m.Run(a.Body)
	if !rc.SkipValidate {
		if err := a.Validate(); err != nil {
			return RunResult{}, fmt.Errorf("core: %s/%s: %w", rc.App, rc.Mech, err)
		}
	}
	return RunResult{Result: mres, App: rc.App, Mech: rc.Mech, Trace: m.Trace, Obs: m.Obs, Spans: m.Spans}, nil
}

// MustRun is Run, panicking on error (for benchmarks and examples).
func MustRun(rc RunConfig) RunResult {
	r, err := Run(rc)
	if err != nil {
		panic(err)
	}
	return r
}
