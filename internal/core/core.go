package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/apps/em3d"
	"repro/internal/apps/iccg"
	"repro/internal/apps/moldyn"
	"repro/internal/apps/unstruc"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// AppName selects one of the paper's four applications.
type AppName string

// The four applications of the study.
const (
	EM3D    AppName = "em3d"
	UNSTRUC AppName = "unstruc"
	ICCG    AppName = "iccg"
	MOLDYN  AppName = "moldyn"
)

// AppNames lists the applications in the paper's presentation order.
var AppNames = []AppName{EM3D, UNSTRUC, ICCG, MOLDYN}

// Scale selects workload size.
type Scale int

const (
	// ScaleTiny: seconds-fast instances for unit tests.
	ScaleTiny Scale = iota
	// ScaleDefault: reduced instances preserving per-iteration behaviour;
	// the default for figure regeneration.
	ScaleDefault
	// ScaleSweep: further reduced instances for many-point sweeps.
	ScaleSweep
	// ScaleFull: the paper's published parameters (EM3D 10000 nodes,
	// degree 10, 50 iterations, ...). Slow.
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleDefault:
		return "default"
	case ScaleSweep:
		return "sweep"
	case ScaleFull:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// BaseProcs is the paper's machine size: every workload's published
// parameters assume a 32-processor partition, and scaled-problem sizing
// (weak scaling) holds per-processor work at its BaseProcs value.
const BaseProcs = 32

// NewApp constructs an application instance at the given scale for the
// paper's 32-processor machine. Instances are deterministic: the same
// (name, scale) always yields the same workload.
func NewApp(name AppName, sc Scale) (apps.App, error) {
	return NewAppSized(name, sc, BaseProcs, false)
}

// NewAppSized constructs an application instance at the given scale,
// partitioned over procs processors. With scaleProblem false the
// problem size is the scale's fixed size (strong scaling: the same
// problem cut into more pieces); with scaleProblem true the problem
// grows proportionally to procs/32, holding per-processor work constant
// (weak scaling). At procs = BaseProcs both modes equal NewApp exactly,
// byte for byte. Returns a descriptive error — not a panic — when the
// workload cannot be partitioned that finely (EM3D needs at least one
// graph node per processor; UNSTRUC and MOLDYN use the paper's RCB
// partitioner, which requires a power-of-two processor count).
func NewAppSized(name AppName, sc Scale, procs int, scaleProblem bool) (apps.App, error) {
	if procs < 1 {
		return nil, fmt.Errorf("core: %s with %d processors", name, procs)
	}
	// sized scales a base problem dimension by procs/BaseProcs in
	// weak-scaling mode, keeping the exact base value at BaseProcs.
	sized := func(base int) int {
		if !scaleProblem {
			return base
		}
		return base * procs / BaseProcs
	}
	pow2 := procs&(procs-1) == 0
	switch name {
	case EM3D:
		p := workload.DefaultEM3DParams()
		switch sc {
		case ScaleTiny:
			p = p.Scaled(sized(320), 2)
		case ScaleSweep:
			p = p.Scaled(sized(1000), 3)
		case ScaleDefault:
			p = p.Scaled(sized(2000), 5)
		case ScaleFull: // the paper's parameters
			p = p.Scaled(sized(p.Nodes), p.Iters)
		}
		p.Procs = procs
		if p.Nodes < p.Procs {
			return nil, fmt.Errorf("core: em3d at scale %s has %d graph nodes, too few for %d processors", sc, p.Nodes, procs)
		}
		return em3d.New(p), nil
	case UNSTRUC:
		if !pow2 {
			return nil, fmt.Errorf("core: unstruc RCB partitioning needs a power-of-two processor count, not %d", procs)
		}
		p := workload.DefaultUnstrucParams()
		switch sc {
		case ScaleTiny:
			p = p.Scaled(sized(400), 2)
		case ScaleSweep:
			p = p.Scaled(sized(1000), 3)
		case ScaleDefault:
			p = p.Scaled(sized(2000), 4) // the paper's 2000-node mesh
		case ScaleFull:
			p = p.Scaled(sized(2000), 10)
		}
		p.Procs = procs
		return unstruc.New(p), nil
	case ICCG:
		p := workload.DefaultICCGParams()
		switch sc {
		case ScaleTiny:
			p = p.Scaled(sized(640))
		case ScaleSweep:
			p = p.Scaled(sized(2000))
		case ScaleDefault:
			p = p.Scaled(sized(4000))
		case ScaleFull:
			p = p.Scaled(sized(8000))
		}
		p.Procs = procs
		return iccg.New(p), nil
	case MOLDYN:
		if !pow2 {
			return nil, fmt.Errorf("core: moldyn RCB partitioning needs a power-of-two processor count, not %d", procs)
		}
		p := workload.DefaultMoldynParams()
		switch sc {
		case ScaleTiny:
			p = p.ScaledBox(sized(256), 3)
			p.ListEvery = 2
		case ScaleSweep:
			p = p.ScaledBox(sized(512), 3)
			p.ListEvery = 2
		case ScaleDefault:
			p = p.ScaledBox(sized(1024), 6)
			p.ListEvery = 3
		case ScaleFull:
			p = p.ScaledBox(sized(2048), 20) // lists every 20 iterations, as published
		}
		p.Procs = procs
		return moldyn.New(p), nil
	}
	return nil, fmt.Errorf("core: unknown application %q", name)
}

// RunConfig is one experiment point. The workload is partitioned over
// exactly Machine.Nodes() processors, so changing the machine geometry
// automatically repartitions the application.
type RunConfig struct {
	App     AppName
	Mech    apps.Mechanism
	Scale   Scale
	Machine machine.Config
	// ScaleProblem grows the workload proportionally to
	// Machine.Nodes()/BaseProcs (weak scaling: constant per-processor
	// work). False keeps the scale's fixed problem size (strong
	// scaling). At 32 nodes the two modes are identical.
	ScaleProblem bool
	// SkipValidate skips the numerical check (sweeps re-run the same
	// validated workload many times; validation is O(workload)).
	SkipValidate bool
}

// RunResult is the outcome of one run.
type RunResult struct {
	machine.Result
	App  AppName
	Mech apps.Mechanism
	// Trace holds the machine's event trace when Machine.TraceCap was set.
	Trace *trace.Buffer
	// Obs holds the run's metrics registry when Machine.Metrics was set.
	Obs *obs.Registry
	// Spans holds the thread-state timeline when Machine.SpanCap was set.
	Spans *obs.SpanBuffer
	// Crit holds the critical-path recorder (edge stream) when
	// Machine.CritPath was set; the summary lives in Result.CritPath.
	Crit *obs.CritRecorder
}

// RunError is a crashed run recovered into a value: the simulation
// panicked (watchdog stall, protocol invariant violation, or an
// application bug) instead of completing. When the panic was a watchdog
// diagnostic, Stall carries it in structured form.
type RunError struct {
	App   AppName
	Mech  apps.Mechanism
	Panic string          // rendered panic value
	Stall *sim.StallError // structured watchdog diagnostic, when available
}

func (e *RunError) Error() string {
	return fmt.Sprintf("core: %s/%s run failed: %s", e.App, e.Mech, e.Panic)
}

// Run builds a fresh machine, runs the app under the mechanism, validates
// the numerical result against the sequential reference, and returns the
// measurements. A panicking simulation is recovered into a *RunError
// rather than crashing the process; the crashed machine's paused thread
// goroutines are abandoned (they hold no locks and touch no shared state,
// so abandonment is safe, but a pathological sweep of thousands of
// crashing points would accumulate them).
func Run(rc RunConfig) (res RunResult, err error) {
	a, err := NewAppSized(rc.App, rc.Scale, rc.Machine.Nodes(), rc.ScaleProblem)
	if err != nil {
		return RunResult{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			re := &RunError{App: rc.App, Mech: rc.Mech, Panic: fmt.Sprint(r)}
			if se, ok := r.(*sim.StallError); ok {
				re.Stall = se
			}
			res, err = RunResult{}, re
		}
	}()
	m := machine.New(rc.Machine)
	a.Setup(m, rc.Mech)
	mres := m.Run(a.Body)
	if !rc.SkipValidate {
		if err := a.Validate(); err != nil {
			return RunResult{}, fmt.Errorf("core: %s/%s: %w", rc.App, rc.Mech, err)
		}
	}
	return RunResult{Result: mres, App: rc.App, Mech: rc.Mech, Trace: m.Trace, Obs: m.Obs, Spans: m.Spans, Crit: m.Crit}, nil
}

// MustRun is Run, panicking on error (for benchmarks and examples).
func MustRun(rc RunConfig) RunResult {
	r, err := Run(rc)
	if err != nil {
		panic(err)
	}
	return r
}
