package core

import (
	"math"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/predict"
)

// DefaultPredictEdgeCap is the per-tile edge-ring capacity predicted
// sweeps instrument their base runs with. Large enough to retain every
// causal edge of the reduced-scale workloads (coverage 1.0), small
// enough that one retained run is a few megabytes.
const DefaultPredictEdgeCap = 1 << 17

// PredictOptions tunes a predicted sweep. The zero value means: predict
// every grid point, simulate every grid point for validation columns,
// default edge cap, 10% latency-tolerance growth target.
type PredictOptions struct {
	// Prune switches from validate-everything to simulate-on-demand:
	// only the base point (free), points where the model's confidence
	// drops below ConfidenceFloor, and points near a predicted mechanism
	// crossover are simulated; everywhere else the prediction stands.
	Prune bool
	// ConfidenceFloor is the minimum self-reported confidence a
	// prediction needs to stand unsimulated under Prune (default 0.7).
	ConfidenceFloor float64
	// CrossoverMargin is the relative gap between the two fastest
	// predicted mechanisms below which a point's verdict counts as
	// ambiguous and is simulated under Prune (default 0.05).
	CrossoverMargin float64
	// EdgeCap overrides the instrumented base runs' per-tile edge-ring
	// capacity (default DefaultPredictEdgeCap).
	EdgeCap int
	// GrowthTarget is the runtime growth defining the latency-tolerance
	// metric (default 0.10: the latency at which runtime grows 10%).
	GrowthTarget float64
}

func (o PredictOptions) withDefaults() PredictOptions {
	if o.ConfidenceFloor == 0 {
		o.ConfidenceFloor = 0.7
	}
	if o.CrossoverMargin == 0 {
		o.CrossoverMargin = 0.05
	}
	if o.EdgeCap == 0 {
		o.EdgeCap = DefaultPredictEdgeCap
	}
	if o.GrowthTarget == 0 {
		o.GrowthTarget = 0.10
	}
	return o
}

// PredictedPoint is one X position of a predicted sweep: the model's
// prediction for every mechanism, plus the validating simulation where
// one ran (every point without Prune; the confirming subset with it).
type PredictedPoint struct {
	X    float64
	Pred map[apps.Mechanism]predict.Prediction
	Sim  map[apps.Mechanism]RunResult
}

// PredictedSweep is one figure grid solved from one instrumented base
// run per mechanism.
type PredictedSweep struct {
	Points []PredictedPoint
	// Base holds the instrumented base runs the models were built from.
	Base map[apps.Mechanism]RunResult
	// Tolerance is the latency-tolerance metric per mechanism: the
	// one-way network latency, in processor cycles, at which the model
	// predicts runtime grows by the configured target (+Inf when the
	// mechanism never reaches it — latency-insensitive at this scale).
	Tolerance map[apps.Mechanism]float64
	// Grid counts mechanism-points in the sweep; Simulated counts the
	// distinct simulations executed for it, including the instrumented
	// base runs. Grid - Simulated is the pruning win.
	Grid, Simulated int
}

// predictJob is one mechanism's slice of a predicted sweep: the
// uninstrumented base config the model is built at, the (LatScale,
// BWScale) evaluation per grid point, the config a validating
// simulation of that point would run, and the base one-way latency (in
// cycles) that converts the tolerance scale into cycles.
type predictJob struct {
	mech       apps.Mechanism
	base       machine.Config
	points     []predict.Point
	cfgs       []machine.Config
	baseOneWay float64
}

// instrumentedRun executes rc (which must enable CritPath) preferring
// the in-memory memo; a disk-served result lacks the edge recorder, so
// it falls back to a direct execution.
func (r *Runner) instrumentedRun(rc RunConfig) (RunResult, error) {
	res, err := r.Run(rc)
	if err != nil || res.Crit != nil {
		return res, err
	}
	r.executed.Add(1)
	return Run(rc)
}

// bisectionCrossFrac is the fraction of injected bytes assumed to cross
// the machine's middle cut under dimension-order routing on a uniform
// traffic pattern — the same convention model.Fit uses.
const bisectionCrossFrac = 0.5

// predictedSweep is the common engine: instrument one base run per
// mechanism, build its dependency-graph model, solve every grid point,
// pick the validation set, and fold in the confirming simulations.
func (r *Runner) predictedSweep(app AppName, sc Scale, jobs []predictJob, xs []float64, opt PredictOptions) (*PredictedSweep, error) {
	opt = opt.withDefaults()
	ps := &PredictedSweep{
		Base:      make(map[apps.Mechanism]RunResult, len(jobs)),
		Tolerance: make(map[apps.Mechanism]float64, len(jobs)),
		Grid:      len(jobs) * len(xs),
	}
	ps.Points = make([]PredictedPoint, len(xs))
	for i, x := range xs {
		ps.Points[i] = PredictedPoint{
			X:    x,
			Pred: make(map[apps.Mechanism]predict.Prediction),
			Sim:  make(map[apps.Mechanism]RunResult),
		}
	}

	// Phase 1: instrumented base runs and their models. A mechanism
	// whose base run fails is isolated like a crashed sweep point —
	// absent from every map — and the sweep only errors when nothing
	// survived.
	models := make([]*predict.Model, len(jobs))
	var firstErr error
	alive := 0
	for ji, job := range jobs {
		icfg := job.base
		icfg.CritPath = true
		icfg.CritEdgeCap = opt.EdgeCap
		res, err := r.instrumentedRun(RunConfig{App: app, Mech: job.mech, Scale: sc, Machine: icfg, SkipValidate: true})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m, err := predict.Build(predict.Input{
			Nodes:          icfg.Nodes(),
			Clk:            clockOf(job.base),
			Edges:          res.Crit.Edges(),
			EdgesTotal:     res.Crit.EdgesTotal(),
			DoneCycles:     res.DoneCycles,
			BisectionBytes: bisectionCrossFrac * float64(res.Volume.Total()),
			BisectionBW:    res.Bisection,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		models[ji] = m
		ps.Base[job.mech] = res
		ps.Tolerance[job.mech] = m.LatencyTolerance(opt.GrowthTarget) * job.baseOneWay
		ps.Simulated++
		alive++
		for i := range xs {
			ps.Points[i].Pred[job.mech] = m.Solve(job.points[i])
		}
	}
	if alive == 0 {
		return nil, firstErr
	}

	// Phase 2: pick the validation set. Base-config points are free
	// (the instrumented run is that simulation, CritPath being passive);
	// the rest simulate always without Prune, on demand with it.
	need := make([]bool, len(xs))
	if !opt.Prune {
		for i := range need {
			need[i] = true
		}
	} else {
		for i := range xs {
			for ji := range jobs {
				if models[ji] == nil {
					continue
				}
				if ps.Points[i].Pred[jobs[ji].mech].Confidence < opt.ConfidenceFloor {
					need[i] = true
				}
			}
			if a, b, ok := topTwo(ps.Points[i].Pred); ok && b > 0 && float64(b-a) <= opt.CrossoverMargin*float64(a) {
				need[i] = true
			}
		}
		// A predicted order flip between adjacent points is a crossover;
		// simulate both ends so the hybrid curve nails its position.
		for ji := range jobs {
			for jk := ji + 1; jk < len(jobs); jk++ {
				if models[ji] == nil || models[jk] == nil {
					continue
				}
				a, b := jobs[ji].mech, jobs[jk].mech
				for i := 1; i < len(xs); i++ {
					d0 := ps.Points[i-1].Pred[a].Cycles - ps.Points[i-1].Pred[b].Cycles
					d1 := ps.Points[i].Pred[a].Cycles - ps.Points[i].Pred[b].Cycles
					if d0 != 0 && d1 != 0 && (d0 < 0) != (d1 < 0) {
						need[i-1], need[i] = true, true
					}
				}
			}
		}
	}

	// Phase 3: run the validation simulations. Identical configs (the
	// flat reference mechanisms of the context-switch sweep) dedupe
	// through the memo, so count distinct fingerprints, not jobs.
	type simRef struct{ pt, job int }
	var (
		rcs  []RunConfig
		refs []simRef
	)
	distinct := make(map[RunConfig]bool)
	for i := range xs {
		for ji, job := range jobs {
			if models[ji] == nil {
				continue
			}
			if job.cfgs[i] == job.base {
				// The instrumented run is this point's simulation.
				ps.Points[i].Sim[job.mech] = ps.Base[job.mech]
				continue
			}
			if !need[i] {
				continue
			}
			rc := RunConfig{App: app, Mech: job.mech, Scale: sc, Machine: job.cfgs[i], SkipValidate: true}
			rcs = append(rcs, rc)
			refs = append(refs, simRef{pt: i, job: ji})
			distinct[fingerprint(rc)] = true
		}
	}
	ps.Simulated += len(distinct)
	results, errs := r.RunBatchAll(rcs)
	for k, ref := range refs {
		if errs[k] == nil {
			ps.Points[ref.pt].Sim[jobs[ref.job].mech] = results[k]
		}
	}
	return ps, nil
}

// topTwo returns the two smallest predicted cycle counts of one point.
func topTwo(pred map[apps.Mechanism]predict.Prediction) (best, second int64, ok bool) {
	n := 0
	for _, p := range pred {
		n++
		switch {
		case n == 1:
			best = p.Cycles
		case p.Cycles < best:
			second = best
			best = p.Cycles
		case n == 2 || p.Cycles < second:
			second = p.Cycles
		}
	}
	return best, second, n >= 2
}

// MaxErrorPct reports the worst and mean absolute predicted-vs-measured
// relative error over all mechanism-points that have both values, in
// percent, and how many such points there are. The base points count —
// they pin the exactness guarantee at 0%.
func (ps *PredictedSweep) MaxErrorPct() (max, mean float64, n int) {
	for i := range ps.Points {
		for _, mech := range apps.Mechanisms {
			sim, simOK := ps.Points[i].Sim[mech]
			pred, ok := ps.Points[i].Pred[mech]
			if !simOK || !ok || sim.Cycles == 0 {
				continue
			}
			e := 100 * math.Abs(float64(pred.Cycles)-float64(sim.Cycles)) / float64(sim.Cycles)
			if e > max {
				max = e
			}
			mean += e
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	return max, mean, n
}

// HybridPoints renders the sweep as ordinary SweepPoints — the measured
// result where a simulation ran, the prediction standing in elsewhere —
// so downstream analysis (Crossover, fastest-mechanism verdicts, CSVs)
// treats pruned and full sweeps identically. Synthetic results carry
// only the cycle count.
func (ps *PredictedSweep) HybridPoints() []SweepPoint {
	out := make([]SweepPoint, len(ps.Points))
	for i, pt := range ps.Points {
		sp := SweepPoint{X: pt.X, Results: make(map[apps.Mechanism]RunResult, len(pt.Pred))}
		for mech, pred := range pt.Pred {
			if sim, ok := pt.Sim[mech]; ok {
				sp.Results[mech] = sim
				continue
			}
			var rr RunResult
			rr.Mech = mech
			rr.Cycles = pred.Cycles
			sp.Results[mech] = rr
		}
		out[i] = sp
	}
	return out
}

// FastestPerPoint returns the winning mechanism at each point of the
// hybrid curve (ties to the lower mechanism value, matching the stable
// order of apps.Mechanisms), or -1 where nothing was measured or
// predicted — the per-point half of the sweep's mechanism verdicts.
func (ps *PredictedSweep) FastestPerPoint() []apps.Mechanism {
	out := make([]apps.Mechanism, len(ps.Points))
	for i, sp := range ps.HybridPoints() {
		best := apps.Mechanism(-1)
		var bestCycles int64
		for _, mech := range apps.Mechanisms {
			r, ok := sp.Results[mech]
			if !ok {
				continue
			}
			if best < 0 || r.Cycles < bestCycles {
				best, bestCycles = mech, r.Cycles
			}
		}
		out[i] = best
	}
	return out
}

// PredictedClockSweep is the predicted form of ClockSweep (Figure 9):
// one instrumented run per mechanism at the base clock, re-solved for
// every clock in mhzs. Slowing the clock leaves network picoseconds
// untouched but shrinks them relative to a cycle, so in base-run time
// units both network components scale by mhz/base — LatScale and
// BWScale move together.
func (r *Runner) PredictedClockSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, mhzs []float64, opt PredictOptions) (*PredictedSweep, error) {
	xs := make([]float64, len(mhzs))
	cfgs := make([]machine.Config, len(mhzs))
	points := make([]predict.Point, len(mhzs))
	for i, mhz := range mhzs {
		cfg := base
		cfg.ClockMHz = mhz
		cfgs[i] = cfg
		xs[i] = NetLatencyCycles(cfg)
		s := mhz / base.ClockMHz
		points[i] = predict.Point{LatScale: s, BWScale: s}
	}
	jobs := make([]predictJob, len(mechs))
	for ji, mech := range mechs {
		jobs[ji] = predictJob{mech: mech, base: base, points: points, cfgs: cfgs, baseOneWay: NetLatencyCycles(base)}
	}
	return r.predictedSweep(app, sc, jobs, xs, opt)
}

// xHopFrac is the expected fraction of a uniform-traffic route's hops
// that lie in the X dimension of a w-by-h mesh (E|dx| = (w^2-1)/(3w)
// for independent uniform endpoints): the share of a packet's hop
// latency exposed to the horizontal cross-traffic streams.
func xHopFrac(w, h int) float64 {
	ex := float64(w*w-1) / float64(3*w)
	ey := float64(h*h-1) / float64(3*h)
	if ex+ey == 0 {
		return 0
	}
	return ex / (ex + ey)
}

// PredictedBisectionSweep is the predicted form of BisectionSweep
// (Figure 8). A cross-traffic stream consuming u = rate/native of the
// cut reserves every X link it crosses for its message's serialization
// time, so an application packet's head waits, on average, the residual
// of that occupancy (u*S/2) at each X hop — a queueing delay on the
// latency component, not a stretch of the application's own
// serialization, which still moves at full link rate once the link is
// won. LatScale folds that expected wait into each edge's hop latency;
// BWScale stays 1. The mapping's blind spot is compounding queueing
// near saturation, so the cross-traffic utilization rides along as
// ExtraRho: the model distrusts exactly the points it cannot see, and
// the pruned mode simulates them.
func (r *Runner) PredictedBisectionSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, crossRates []float64, msgBytes int, opt PredictOptions) (*PredictedSweep, error) {
	native := mesh.Config{Width: base.Width, Height: base.Height, HopLatency: base.HopLatency, PsPerByte: base.PsPerByte}.
		BisectionBytesPerCycle(clockOf(base))
	sCross := float64(msgBytes) * float64(base.PsPerByte) // link occupancy per cross packet, ps
	fx := xHopFrac(base.Width, base.Height)
	xs := make([]float64, len(crossRates))
	cfgs := make([]machine.Config, len(crossRates))
	points := make([]predict.Point, len(crossRates))
	for i, rate := range crossRates {
		cfg := base
		if rate > 0 {
			cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: msgBytes, BytesPerCycle: rate}
		}
		cfgs[i] = cfg
		xs[i] = native - rate
		u := 0.0
		if rate > 0 && native > 0 {
			u = rate / native
			if u > 1 {
				u = 1
			}
		}
		lat := 1.0
		if u > 0 && base.HopLatency > 0 {
			lat = 1 + fx*u*sCross/(2*float64(base.HopLatency))
		}
		points[i] = predict.Point{LatScale: lat, BWScale: 1, ExtraRho: u}
	}
	jobs := make([]predictJob, len(mechs))
	for ji, mech := range mechs {
		jobs[ji] = predictJob{mech: mech, base: base, points: points, cfgs: cfgs, baseOneWay: NetLatencyCycles(base)}
	}
	return r.predictedSweep(app, sc, jobs, xs, opt)
}

// PredictedContextSwitchSweep is the predicted form of
// ContextSwitchSweep (Figure 10): the shared-memory mechanisms are
// instrumented once under the ideal-network emulation at the first
// latency and re-solved with LatScale = lat/first; the message-passing
// mechanisms are untouched by the emulation, so their instrumented base
// runs on the real network stand at every point, exactly like the
// hoisted reference runs of the simulated sweep.
func (r *Runner) PredictedContextSwitchSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, oneWayCycles []int64, opt PredictOptions) (*PredictedSweep, error) {
	xs := make([]float64, len(oneWayCycles))
	for i, lat := range oneWayCycles {
		xs[i] = float64(lat)
	}
	jobs := make([]predictJob, len(mechs))
	for ji, mech := range mechs {
		job := predictJob{mech: mech, points: make([]predict.Point, len(oneWayCycles)), cfgs: make([]machine.Config, len(oneWayCycles))}
		if mech.UsesMessages() {
			job.base = base
			job.baseOneWay = NetLatencyCycles(base)
			for i := range oneWayCycles {
				job.points[i] = predict.Base
				job.cfgs[i] = base
			}
		} else {
			swBase := base
			swBase.IdealNetOneWayCycles = oneWayCycles[0]
			job.base = swBase
			job.baseOneWay = float64(oneWayCycles[0])
			for i, lat := range oneWayCycles {
				cfg := base
				cfg.IdealNetOneWayCycles = lat
				job.cfgs[i] = cfg
				job.points[i] = predict.Point{LatScale: float64(lat) / float64(oneWayCycles[0]), BWScale: 1}
			}
		}
		jobs[ji] = job
	}
	return r.predictedSweep(app, sc, jobs, xs, opt)
}
