package core

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
)

func cachedRC() RunConfig {
	return RunConfig{App: ICCG, Mech: apps.MPPoll, Scale: ScaleTiny,
		Machine: machine.DefaultConfig(), SkipValidate: true}
}

// TestDiskCacheRoundTrip is the cross-process contract: a second runner
// (standing in for a second process) sharing the cache directory serves
// the run from disk — zero simulations executed — with measurements
// identical to the original.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rc := cachedRC()

	r1 := NewRunner(1)
	dc1, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1.SetDiskCache(dc1)
	want, err := r1.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if _, executed := r1.Stats(); executed != 1 || r1.DiskHits() != 0 {
		t.Fatalf("first run: executed=%d diskHits=%d, want 1 and 0", executed, r1.DiskHits())
	}

	r2 := NewRunner(1)
	dc2, err := OpenDiskCache(dir) // fresh handle, as a new process would open
	if err != nil {
		t.Fatal(err)
	}
	r2.SetDiskCache(dc2)
	got, err := r2.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if _, executed := r2.Stats(); executed != 0 {
		t.Errorf("second runner executed %d simulations, want 0 (disk hit)", executed)
	}
	if r2.DiskHits() != 1 {
		t.Errorf("second runner diskHits=%d, want 1", r2.DiskHits())
	}
	if !reflect.DeepEqual(got.Result.Cycles, want.Result.Cycles) ||
		!reflect.DeepEqual(got.Result.Breakdown, want.Result.Breakdown) ||
		!reflect.DeepEqual(got.Result.Volume, want.Result.Volume) ||
		!reflect.DeepEqual(got.Result.Events, want.Result.Events) {
		t.Error("disk-served measurements differ from the executed run")
	}
	if got.App != want.App || got.Mech != want.Mech {
		t.Errorf("disk-served identity %s/%s, want %s/%s", got.App, got.Mech, want.App, want.Mech)
	}
}

// corruptAndRerun seeds a cache entry, applies corrupt to its file, and
// returns how many simulations a fresh runner then executes (1 means
// the entry was correctly distrusted, 0 means it was served).
func corruptAndRerun(t *testing.T, corrupt func(path string)) uint64 {
	t.Helper()
	dir := t.TempDir()
	rc := cachedRC()
	r1 := NewRunner(1)
	dc, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r1.SetDiskCache(dc)
	if _, err := r1.Run(rc); err != nil {
		t.Fatal(err)
	}
	path := dc.path(fingerprint(rc))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}
	corrupt(path)

	r2 := NewRunner(1)
	r2.SetDiskCache(dc)
	if _, err := r2.Run(rc); err != nil {
		t.Fatal(err)
	}
	_, executed := r2.Stats()
	return executed
}

// TestDiskCacheDistrustsBadEntries: corrupt JSON, wrong schema versions,
// and entries whose canonical fingerprint no longer matches (a stale
// RunConfig layout) are all silent misses that re-simulate.
func TestDiskCacheDistrustsBadEntries(t *testing.T) {
	rewrite := func(mutate func(e map[string]any)) func(string) {
		return func(path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var e map[string]any
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatal(err)
			}
			mutate(e)
			out, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	cases := []struct {
		name    string
		corrupt func(path string)
	}{
		{"truncated", func(p string) {
			if err := os.WriteFile(p, []byte(`{"schema":`), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(p string) {
			if err := os.WriteFile(p, []byte("not json at all\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-schema", rewrite(func(e map[string]any) { e["schema"] = diskCacheSchema + 1 })},
		{"stale-fingerprint", rewrite(func(e map[string]any) {
			e["fingerprint"] = e["fingerprint"].(string) + " extra-field:1"
		})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if executed := corruptAndRerun(t, c.corrupt); executed != 1 {
				t.Errorf("executed=%d after %s entry, want 1 (re-simulated)", executed, c.name)
			}
		})
	}
}

// TestDiskCacheSkipsFailedRuns: runs that error (here: a workload that
// cannot be partitioned for the machine) leave no cache entry behind.
func TestDiskCacheSkipsFailedRuns(t *testing.T) {
	dir := t.TempDir()
	cfg, err := machine.ConfigForNodes(512)
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny, Machine: cfg, SkipValidate: true}
	r := NewRunner(1)
	dc, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.SetDiskCache(dc)
	if _, err := r.Run(rc); err == nil {
		t.Fatal("fixed tiny em3d on 512 nodes should fail to partition")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed run left %d cache entries", len(entries))
	}
}
