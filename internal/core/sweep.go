package core

import (
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// SweepPoint is one X position of a parametric experiment with the
// measured results per mechanism.
type SweepPoint struct {
	X       float64 // meaning depends on the sweep (bytes/cycle, cycles, ...)
	Results map[apps.Mechanism]RunResult
}

// runPoint executes all mechanisms at one machine configuration.
func runPoint(app AppName, sc Scale, mechs []apps.Mechanism, cfg machine.Config, x float64) (SweepPoint, error) {
	pt := SweepPoint{X: x, Results: make(map[apps.Mechanism]RunResult, len(mechs))}
	for _, mech := range mechs {
		r, err := Run(RunConfig{App: app, Mech: mech, Scale: sc, Machine: cfg, SkipValidate: true})
		if err != nil {
			return pt, err
		}
		pt.Results[mech] = r
	}
	return pt, nil
}

// BisectionSweep reproduces the Figure 8 methodology: I/O cross-traffic
// consumes crossRates[i] bytes/cycle of the bisection; each point's X is
// the emulated bisection (native minus cross-traffic) in bytes per
// processor cycle. msgBytes is the cross-traffic message size (the paper
// settles on 64 after Figure 7).
func BisectionSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, crossRates []float64, msgBytes int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, rate := range crossRates {
		cfg := base
		if rate > 0 {
			cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: msgBytes, BytesPerCycle: rate}
		}
		native := mesh.Config{Width: cfg.Width, Height: cfg.Height, HopLatency: cfg.HopLatency, PsPerByte: cfg.PsPerByte}.
			BisectionBytesPerCycle(clockOf(cfg))
		pt, err := runPoint(app, sc, mechs, cfg, native-rate)
		if err != nil {
			return out, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// ClockSweep reproduces the Figure 9 methodology: the processor clock
// varies (the paper's 14-20 MHz range and beyond) while the asynchronous
// network is untouched, so relative network latency varies. X is the
// one-way network latency of a 24-byte packet in processor cycles over
// the average distance (the paper's Table 1 convention).
func ClockSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, mhzs []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, mhz := range mhzs {
		cfg := base
		cfg.ClockMHz = mhz
		pt, err := runPoint(app, sc, mechs, cfg, NetLatencyCycles(cfg))
		if err != nil {
			return out, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// ContextSwitchSweep reproduces the Figure 10 methodology: every remote
// miss costs a uniform emulated latency over an ideal network (infinite
// bandwidth). Only the shared-memory mechanisms are affected; the paper
// plots message-passing curves for reference only, and so does this
// sweep (their machine config is untouched). X is the emulated one-way
// latency in processor cycles.
func ContextSwitchSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, oneWayCycles []int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, lat := range oneWayCycles {
		pt := SweepPoint{X: float64(lat), Results: make(map[apps.Mechanism]RunResult, len(mechs))}
		for _, mech := range mechs {
			cfg := base
			if !mech.UsesMessages() {
				cfg.IdealNetOneWayCycles = lat
			}
			r, err := Run(RunConfig{App: app, Mech: mech, Scale: sc, Machine: cfg, SkipValidate: true})
			if err != nil {
				return out, err
			}
			pt.Results[mech] = r
		}
		out = append(out, pt)
	}
	return out, nil
}

// MsgLenSweep reproduces Figure 7: the sensitivity of the bisection
// emulation to the cross-traffic message length. It holds the emulated
// bisection constant and varies the message size; X is the message size
// in bytes, and the result records the application runtime plus the
// achieved cross-traffic rate.
func MsgLenSweep(app AppName, sc Scale, mech apps.Mechanism, base machine.Config, crossRate float64, sizes []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, size := range sizes {
		cfg := base
		cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: size, BytesPerCycle: crossRate}
		pt, err := runPoint(app, sc, []apps.Mechanism{mech}, cfg, float64(size))
		if err != nil {
			return out, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// NetLatencyCycles returns the one-way delivery time of a 24-byte packet
// over the mesh's average distance, in processor cycles — the latency
// convention of the paper's Table 1 (Alewife ~ 15 at 20 MHz).
func NetLatencyCycles(cfg machine.Config) float64 {
	clk := sim.NewClock(cfg.ClockMHz)
	m := mesh.New(sim.NewEngine(), mesh.Config{Width: cfg.Width, Height: cfg.Height,
		HopLatency: cfg.HopLatency, PsPerByte: cfg.PsPerByte, Torus: cfg.Torus})
	avg := m.AvgHops()
	t := float64(cfg.HopLatency)*(avg+1) + 24*float64(cfg.PsPerByte)
	return t / float64(clk.PsPerCycle())
}

// Crossover scans a sweep (ordered by X) for the first X interval where
// mechanism a's runtime goes from faster to slower than b's, returning
// the interpolated crossing X.
func Crossover(points []SweepPoint, a, b apps.Mechanism) (x float64, found bool) {
	for i := 1; i < len(points); i++ {
		p0, p1 := points[i-1], points[i]
		d0 := float64(p0.Results[a].Cycles - p0.Results[b].Cycles)
		d1 := float64(p1.Results[a].Cycles - p1.Results[b].Cycles)
		if d0 == d1 {
			continue
		}
		if (d0 <= 0 && d1 > 0) || (d0 >= 0 && d1 < 0) {
			frac := -d0 / (d1 - d0)
			return p0.X + frac*(p1.X-p0.X), true
		}
	}
	return 0, false
}

func clockOf(cfg machine.Config) sim.Clock { return sim.NewClock(cfg.ClockMHz) }
