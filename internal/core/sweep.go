package core

import (
	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// SweepPoint is one X position of a parametric experiment with the
// measured results per mechanism.
type SweepPoint struct {
	X       float64 // meaning depends on the sweep (bytes/cycle, cycles, ...)
	Results map[apps.Mechanism]RunResult
}

// The package-level sweep functions run on DefaultRunner: points and
// mechanisms execute concurrently on a worker pool and identical
// configurations are memoized, with results bit-identical to serial
// execution (simulations are isolated per machine.New). Use a *Runner
// directly for an isolated cache or an explicit worker count.

// BisectionSweep reproduces the Figure 8 methodology: I/O cross-traffic
// consumes crossRates[i] bytes/cycle of the bisection; each point's X is
// the emulated bisection (native minus cross-traffic) in bytes per
// processor cycle. msgBytes is the cross-traffic message size (the paper
// settles on 64 after Figure 7).
func BisectionSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, crossRates []float64, msgBytes int) ([]SweepPoint, error) {
	return DefaultRunner.BisectionSweep(app, sc, mechs, base, crossRates, msgBytes)
}

// ClockSweep reproduces the Figure 9 methodology: the processor clock
// varies (the paper's 14-20 MHz range and beyond) while the asynchronous
// network is untouched, so relative network latency varies. X is the
// one-way network latency of a 24-byte packet in processor cycles over
// the average distance (the paper's Table 1 convention).
func ClockSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, mhzs []float64) ([]SweepPoint, error) {
	return DefaultRunner.ClockSweep(app, sc, mechs, base, mhzs)
}

// ContextSwitchSweep reproduces the Figure 10 methodology: every remote
// miss costs a uniform emulated latency over an ideal network (infinite
// bandwidth). Only the shared-memory mechanisms are affected; the paper
// plots message-passing curves for reference only, and so does this
// sweep (their machine config is untouched, so they execute once and are
// shared across points). X is the emulated one-way latency in processor
// cycles.
func ContextSwitchSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, oneWayCycles []int64) ([]SweepPoint, error) {
	return DefaultRunner.ContextSwitchSweep(app, sc, mechs, base, oneWayCycles)
}

// DefaultScalingNodes is the Figure S1 node-count schedule: the paper's
// 32-node machine plus the scale-out geometries.
var DefaultScalingNodes = []int{32, 64, 128, 256, 512}

// NodeScalingSweep reproduces the Figure S1 methodology on the default
// runner: runtime per mechanism across machine sizes, at a fixed
// (strong-scaling) or proportionally grown (weak-scaling) problem size.
// X is the node count. The paper never ran beyond 32 nodes; this sweep
// is the reproduction's extrapolation of its central question to the
// scale-out regime.
func NodeScalingSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, nodeCounts []int, scaleProblem bool) ([]SweepPoint, error) {
	return DefaultRunner.NodeScalingSweep(app, sc, mechs, base, nodeCounts, scaleProblem)
}

// MsgLenSweep reproduces Figure 7: the sensitivity of the bisection
// emulation to the cross-traffic message length. It holds the emulated
// bisection constant and varies the message size; X is the message size
// in bytes, and the result records the application runtime plus the
// achieved cross-traffic rate.
func MsgLenSweep(app AppName, sc Scale, mech apps.Mechanism, base machine.Config, crossRate float64, sizes []int) ([]SweepPoint, error) {
	return DefaultRunner.MsgLenSweep(app, sc, mech, base, crossRate, sizes)
}

// NetLatencyCycles returns the one-way delivery time of a 24-byte packet
// over the mesh's average distance, in processor cycles — the latency
// convention of the paper's Table 1 (Alewife ~ 15 at 20 MHz).
func NetLatencyCycles(cfg machine.Config) float64 {
	clk := sim.NewClock(cfg.ClockMHz)
	m := mesh.New(sim.NewEngine(), mesh.Config{Width: cfg.Width, Height: cfg.Height,
		HopLatency: cfg.HopLatency, PsPerByte: cfg.PsPerByte, Torus: cfg.Torus})
	avg := m.AvgHops()
	t := float64(cfg.HopLatency)*(avg+1) + 24*float64(cfg.PsPerByte)
	return t / float64(clk.PsPerCycle())
}

// Crossover scans a sweep (ordered by X) for the first X interval where
// mechanism a's runtime goes from strictly faster to strictly slower
// than b's (or vice versa), returning the interpolated crossing X.
// Points that did not measure both mechanisms (partial mechanism sets)
// are skipped explicitly, and exact ties establish no direction: curves
// that touch and separate back to the same side do not cross, curves
// that touch and come out on the other side cross exactly at the touch
// point, and a sweep that never has two opposite-signed points reports
// no crossing.
func Crossover(points []SweepPoint, a, b apps.Mechanism) (x float64, found bool) {
	prev := -1 // index of the last point with both measured and a nonzero difference
	tie := -1  // last exact-tie point seen since prev
	for i := range points {
		ra, okA := points[i].Results[a]
		rb, okB := points[i].Results[b]
		if !okA || !okB {
			continue
		}
		d := float64(ra.Cycles - rb.Cycles)
		if d == 0 {
			tie = i
			continue
		}
		if prev >= 0 {
			d0 := float64(points[prev].Results[a].Cycles - points[prev].Results[b].Cycles)
			if (d0 < 0) != (d < 0) {
				if tie >= 0 {
					return points[tie].X, true
				}
				p0, p1 := points[prev], points[i]
				frac := -d0 / (d - d0)
				return p0.X + frac*(p1.X-p0.X), true
			}
		}
		prev, tie = i, -1
	}
	return 0, false
}

func clockOf(cfg machine.Config) sim.Clock { return sim.NewClock(cfg.ClockMHz) }
