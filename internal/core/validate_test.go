package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mem"
)

// TestSweepScaleValidation validates every application under every
// mechanism at ScaleSweep (whose sizes are not divisible by the
// processor count, catching partition-boundary bugs that exact-multiple
// tiny workloads hide).
func TestSweepScaleValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-scale validation is slow")
	}
	for _, app := range AppNames {
		for _, mech := range apps.Mechanisms {
			if _, err := Run(RunConfig{App: app, Mech: mech, Scale: ScaleSweep,
				Machine: machine.DefaultConfig()}); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

// TestRelaxedConsistencyValidates runs the shared-memory versions of all
// four applications under release consistency and validates numerically:
// the fences at locks, barriers and atomics must be sufficient for
// race-free correctness.
func TestRelaxedConsistencyValidates(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mem.Consistency = mem.RC
	for _, app := range AppNames {
		for _, mech := range []apps.Mechanism{apps.SM, apps.SMPrefetch} {
			if _, err := Run(RunConfig{App: app, Mech: mech, Scale: ScaleTiny,
				Machine: cfg}); err != nil {
				t.Errorf("RC %v", err)
			}
		}
	}
}

// TestRelaxedConsistencyHidesWriteLatency checks the Section 2 claim the
// extension exists to demonstrate: under RC, shared memory tolerates
// network latency better than under SC, because stores no longer stall.
func TestRelaxedConsistencyHidesWriteLatency(t *testing.T) {
	run := func(c mem.Consistency, lat int64) int64 {
		cfg := machine.DefaultConfig()
		cfg.Mem.Consistency = c
		cfg.IdealNetOneWayCycles = lat
		return MustRun(RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleSweep,
			Machine: cfg, SkipValidate: true}).Cycles
	}
	scSlow := float64(run(mem.SC, 100)) / float64(run(mem.SC, 15))
	rcSlow := float64(run(mem.RC, 100)) / float64(run(mem.RC, 15))
	if rcSlow >= scSlow {
		t.Errorf("RC slowdown %.2fx >= SC slowdown %.2fx at 100-cycle latency", rcSlow, scSlow)
	}
	// And RC is at least as fast in absolute terms at high latency.
	if rc, sc := run(mem.RC, 100), run(mem.SC, 100); rc >= sc {
		t.Errorf("RC (%d) not faster than SC (%d) at 100-cycle latency", rc, sc)
	}
}

// TestUpdateProtocolValidates runs the shared-memory applications under
// the write-through update protocol (the ablation of the paper's
// invalidation-volume argument) and validates numerically.
func TestUpdateProtocolValidates(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mem.Protocol = mem.ProtocolUpdate
	for _, app := range AppNames {
		if _, err := Run(RunConfig{App: app, Mech: apps.SM, Scale: ScaleTiny,
			Machine: cfg}); err != nil {
			t.Errorf("update protocol: %v", err)
		}
	}
}
