package core

import (
	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LogP holds the measured LogP parameters of a machine configuration, in
// processor cycles — the model the paper's related work (Martin et al.,
// "Effects of communication latency, overhead, and bandwidth in a cluster
// architecture") uses for message passing. The paper argues LogP predicts
// overhead and gap effects well but is too simple for the latency and
// bandwidth effects this study measures; these microbenchmarks let a user
// compare both framings on the same simulated machine.
type LogP struct {
	L float64 // latency: wire time of a small message, sender ready to receiver visible
	O float64 // overhead: processor busy time per message (send + receive averaged)
	G float64 // gap: minimum interval between messages at one node (1/bandwidth)
	P int     // processors
}

// MeasureLogP runs the classic ping and flood microbenchmarks.
func MeasureLogP(cfg machine.Config) LogP {
	oSend, oRecv := measureOverheads(cfg)
	rtt := measureRTT(cfg)
	g := measureGap(cfg)
	l := rtt/2 - oSend - oRecv
	if l < 0 {
		l = 0
	}
	return LogP{L: l, O: (oSend + oRecv) / 2, G: g, P: cfg.Nodes()}
}

// measureOverheads measures processor busy time for a send and a polled
// receive of a small message.
func measureOverheads(cfg machine.Config) (oSend, oRecv float64) {
	m := machine.New(cfg)
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {})
	const n = 32
	var sendBusy, recvBusy sim.Time
	m.Run(func(p *machine.Proc) {
		switch p.ID {
		case 0:
			for i := 0; i < n; i++ {
				before := p.BD.T[stats.BucketMsgOverhead]
				p.Send(1, h, []int64{int64(i)}, nil)
				sendBusy += p.BD.T[stats.BucketMsgOverhead] - before
				p.Compute(300) // spacing: measure isolated sends
			}
		case 1:
			p.SetRecvMode(machine.RecvPoll)
			for got := 0; got < n; {
				got += p.WaitAndHandle()
			}
			recvBusy = p.BD.T[stats.BucketMsgOverhead]
		}
	})
	clk := m.Clk
	return clk.ToCyclesF(sendBusy) / n, clk.ToCyclesF(recvBusy) / n
}

// measureRTT measures a request-reply round trip between nodes four hops
// apart.
func measureRTT(cfg machine.Config) float64 {
	m := machine.New(cfg)
	var pongH am.HandlerID
	pingH := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		c.Reply(c.Src, pongH, nil, nil)
	})
	pongH = m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {})
	const n = 16
	var total sim.Time
	m.Run(func(p *machine.Proc) {
		switch p.ID {
		case 0:
			p.SetRecvMode(machine.RecvPoll)
			for i := 0; i < n; i++ {
				start := p.Now()
				p.Send(4, pingH, nil, nil)
				p.WaitAndHandle()
				total += p.Now() - start
			}
		case 4:
			p.SetRecvMode(machine.RecvPoll)
			for i := 0; i < n; i++ {
				p.WaitAndHandle()
			}
		}
	})
	return m.Clk.ToCyclesF(total) / n
}

// measureGap floods small messages from one node and reports the steady
// interval between deliveries (bounded by either the sender's occupancy
// or the link bandwidth, whichever is tighter).
func measureGap(cfg machine.Config) float64 {
	m := machine.New(cfg)
	var lastArrival, firstArrival sim.Time
	arrivals := 0
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		if arrivals == 0 {
			firstArrival = c.Now()
		}
		lastArrival = c.Now()
		arrivals++
	})
	const n = 64
	m.Run(func(p *machine.Proc) {
		switch p.ID {
		case 0:
			for i := 0; i < n; i++ {
				p.Send(1, h, nil, nil)
			}
		case 1:
			p.SetRecvMode(machine.RecvPoll)
			for arrivals < n {
				p.WaitAndHandle()
			}
		}
	})
	if arrivals < 2 {
		return 0
	}
	return m.Clk.ToCyclesF(lastArrival-firstArrival) / float64(arrivals-1)
}
