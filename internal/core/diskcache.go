package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/machine"
)

// diskCacheSchema versions the on-disk entry layout. Bump it whenever
// the serialized result shape or the meaning of any RunConfig field
// changes: entries with a different schema are ignored, never trusted.
const diskCacheSchema = 5 // 5: Config gained CritEdgeCap (4: Result gained SerialReason + CritPath; Config gained CritPath)

// DiskCache persists completed run results across processes, extending
// the Runner's in-memory single-flight memoization. Entries are keyed
// by the canonical RunConfig fingerprint (the same normalization the
// in-memory cache uses, validated by simlint's fingerprint check) and
// carry both a schema version and the full canonical fingerprint text;
// a load only hits when schema, key hash, and fingerprint text all
// match, so corrupt files, hash collisions, and entries written by an
// older RunConfig layout are all treated as misses and re-simulated.
//
// Only successful runs are stored, and only their measurements:
// observability byproducts (Trace, Obs, Spans) are host-side ring
// buffers that are not serialized, so a run served from disk has them
// nil. Figure and CSV generation never read them; per-run timeline
// artifacts are only emitted for executed runs (see Telemetry).
//
// Concurrent use — including by unrelated processes sharing the
// directory — is safe: writes go to a unique temp file first and are
// renamed into place, so readers see either a complete entry or none.
type DiskCache struct {
	dir string
}

// OpenDiskCache opens (creating if needed) a result cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (dc *DiskCache) Dir() string { return dc.dir }

// diskEntry is the JSON layout of one cached run.
type diskEntry struct {
	Schema      int            `json:"schema"`
	Fingerprint string         `json:"fingerprint"` // canonical RunConfig, %+v rendering
	App         string         `json:"app"`
	Mech        string         `json:"mech"`
	Scale       string         `json:"scale"`
	Result      machine.Result `json:"result"`
}

// path returns the entry file for a canonical (fingerprinted) config.
func (dc *DiskCache) path(key RunConfig) string {
	return filepath.Join(dc.dir, fmt.Sprintf("%s_%s_%s.json", key.App, key.Mech, FingerprintLabel(key)))
}

// canonicalText renders the canonical fingerprint as the collision- and
// staleness-proof validation string stored inside each entry. A new
// RunConfig field changes this rendering, so entries written before the
// field existed stop matching even without a schema bump.
func canonicalText(key RunConfig) string { return fmt.Sprintf("%+v", key) }

// Load returns the cached result for an already-fingerprinted config,
// or ok=false when there is no trustworthy entry (absent, unreadable,
// corrupt, wrong schema, or fingerprint mismatch). Untrustworthy
// entries are ignored, not deleted: a concurrent writer with a newer
// schema may own the file.
func (dc *DiskCache) Load(key RunConfig) (RunResult, bool) {
	data, err := os.ReadFile(dc.path(key))
	if err != nil {
		return RunResult{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return RunResult{}, false
	}
	if e.Schema != diskCacheSchema || e.Fingerprint != canonicalText(key) {
		return RunResult{}, false
	}
	return RunResult{Result: e.Result, App: key.App, Mech: key.Mech}, true
}

// Store persists one successful run. Failures are reported to the
// caller but are safe to ignore: the cache is an accelerator, not a
// store of record.
func (dc *DiskCache) Store(key RunConfig, res RunResult) error {
	e := diskEntry{
		Schema:      diskCacheSchema,
		Fingerprint: canonicalText(key),
		App:         string(key.App),
		Mech:        key.Mech.String(),
		Scale:       key.Scale.String(),
		Result:      res.Result,
	}
	data, err := json.MarshalIndent(&e, "", "\t")
	if err != nil {
		return fmt.Errorf("core: disk cache: %w", err)
	}
	f, err := os.CreateTemp(dc.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("core: disk cache: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return fmt.Errorf("core: disk cache: %w", werr)
	}
	if err := os.Rename(f.Name(), dc.path(key)); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("core: disk cache: %w", err)
	}
	return nil
}
