package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mesh"
)

// runAllSweeps exercises all four sweep kinds on r at ScaleTiny and
// returns their points, keyed by sweep name.
func runAllSweeps(t *testing.T, r *Runner) map[string][]SweepPoint {
	t.Helper()
	cfg := machine.DefaultConfig()
	mechs := []apps.Mechanism{apps.SM, apps.SMPrefetch, apps.MPPoll}
	out := map[string][]SweepPoint{}
	var err error
	out["bisection"], err = r.BisectionSweep(EM3D, ScaleTiny, mechs, cfg, []float64{0, 8, 14}, 64)
	if err != nil {
		t.Fatal(err)
	}
	out["clock"], err = r.ClockSweep(EM3D, ScaleTiny, mechs, cfg, []float64{20, 14})
	if err != nil {
		t.Fatal(err)
	}
	out["ctxswitch"], err = r.ContextSwitchSweep(EM3D, ScaleTiny, mechs, cfg, []int64{15, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	out["msglen"], err = r.MsgLenSweep(EM3D, ScaleTiny, apps.SM, cfg, 8, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelSweepsMatchSerial is the runner's core guarantee: every
// sweep kind produces results deep-equal to single-worker execution.
// Run it under -race to also certify the worker pool.
func TestParallelSweepsMatchSerial(t *testing.T) {
	serial := runAllSweeps(t, NewRunner(1))
	parallel := runAllSweeps(t, NewRunner(0))
	for name, want := range serial {
		got := parallel[name]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s sweep: parallel results differ from serial", name)
		}
	}
}

// TestRunnerMemoization checks single-flight dedup: identical
// configurations execute once, within and across batches.
func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(0)
	rc := RunConfig{App: ICCG, Mech: apps.MPPoll, Scale: ScaleTiny,
		Machine: machine.DefaultConfig(), SkipValidate: true}
	batch := []RunConfig{rc, rc, rc, rc}
	results, err := r.RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if hits, executed := r.Stats(); executed != 1 || hits != 3 {
		t.Errorf("4 identical jobs: executed=%d hits=%d, want 1 and 3", executed, hits)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("memoized result %d differs from first", i)
		}
	}
	// A later individual Run is a pure cache hit.
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	if hits, executed := r.Stats(); executed != 1 || hits != 4 {
		t.Errorf("after repeat Run: executed=%d hits=%d, want 1 and 4", executed, hits)
	}
	r.ClearCache()
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	if _, executed := r.Stats(); executed != 2 {
		t.Errorf("after ClearCache: executed=%d, want 2", executed)
	}
}

// TestFingerprintNormalizesInertKnobs checks that configurations
// differing only in knobs that cannot affect the simulation share one
// cache entry (cross-traffic message size with a zero rate).
func TestFingerprintNormalizesInertKnobs(t *testing.T) {
	r := NewRunner(1)
	rc := RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: machine.DefaultConfig(), SkipValidate: true}
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	rc.Machine.CrossTraffic = mesh.CrossTraffic{MsgBytes: 64} // rate 0: inert
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	if hits, executed := r.Stats(); executed != 1 || hits != 1 {
		t.Errorf("inert msg-size change re-executed: executed=%d hits=%d", executed, hits)
	}
	// A live cross-traffic config must NOT be conflated.
	rc.Machine.CrossTraffic = mesh.CrossTraffic{MsgBytes: 64, BytesPerCycle: 8}
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	if _, executed := r.Stats(); executed != 2 {
		t.Errorf("live cross-traffic config was served from cache: executed=%d", executed)
	}
}

// TestContextSwitchSweepHoistsReferences checks the reference
// (message-passing) mechanisms run once regardless of latency point
// count — hoisting, not just memoization.
func TestContextSwitchSweepHoistsReferences(t *testing.T) {
	r := NewRunner(0)
	lats := []int64{15, 25, 50, 100}
	mechs := []apps.Mechanism{apps.SM, apps.MPInterrupt, apps.MPPoll, apps.Bulk}
	pts, err := r.ContextSwitchSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(), lats)
	if err != nil {
		t.Fatal(err)
	}
	// 4 SM points + 3 reference runs, not 4x4.
	wantExec := uint64(len(lats) + 3)
	if hits, executed := r.Stats(); executed != wantExec || hits != 0 {
		t.Errorf("executed=%d hits=%d, want %d executions (references hoisted)",
			executed, hits, wantExec)
	}
	for _, pt := range pts {
		for _, mech := range mechs {
			if _, ok := pt.Results[mech]; !ok {
				t.Fatalf("point X=%v missing %v", pt.X, mech)
			}
		}
		// Reference curves are shared, hence exactly flat.
		if pt.Results[apps.MPPoll].Cycles != pts[0].Results[apps.MPPoll].Cycles {
			t.Error("MP-poll reference curve not flat")
		}
	}
}

// TestRunnerErrorPropagation checks batch and sweep error paths under
// parallel execution.
func TestRunnerErrorPropagation(t *testing.T) {
	r := NewRunner(0)
	good := RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: machine.DefaultConfig(), SkipValidate: true}
	bad := good
	bad.App = "nonesuch"
	if _, err := r.RunBatch([]RunConfig{good, bad, good, bad}); err == nil {
		t.Error("batch with failing job did not error")
	}
	// The error is memoized like any result.
	if _, err := r.Run(bad); err == nil {
		t.Error("cached failing run did not error")
	}
}

// TestCrossoverPartialMechanismSets: points missing one of the two
// mechanisms are skipped, not treated as zero-cycle runs.
func TestCrossoverPartialMechanismSets(t *testing.T) {
	full := func(x float64, a, b int64) SweepPoint {
		return SweepPoint{X: x, Results: map[apps.Mechanism]RunResult{
			apps.SM:     {Result: machine.Result{Cycles: a}},
			apps.MPPoll: {Result: machine.Result{Cycles: b}},
		}}
	}
	partial := func(x float64, a int64) SweepPoint {
		return SweepPoint{X: x, Results: map[apps.Mechanism]RunResult{
			apps.SM: {Result: machine.Result{Cycles: a}},
		}}
	}
	// The middle point lacks MPPoll; the crossing must still be found by
	// bridging over it, interpolated between X=10 and X=2.
	pts := []SweepPoint{full(10, 100, 120), partial(6, 110), full(2, 160, 125)}
	x, found := Crossover(pts, apps.SM, apps.MPPoll)
	if !found {
		t.Fatal("crossover not found across partial point")
	}
	if x <= 2 || x >= 10 {
		t.Errorf("crossover at %.1f, want within (2, 10)", x)
	}
	// With the seed behavior, a missing mechanism read as zero cycles and
	// could fabricate a sign flip. A sweep where SM always wins among
	// measured points must report no crossing despite gaps.
	pts2 := []SweepPoint{full(10, 100, 120), partial(6, 200), full(2, 110, 130)}
	if x, found := Crossover(pts2, apps.SM, apps.MPPoll); found {
		t.Errorf("spurious crossover at %.1f from partial point", x)
	}
	// Fewer than two measured points: nothing to scan.
	pts3 := []SweepPoint{partial(10, 100), full(6, 110, 120), partial(2, 160)}
	if _, found := Crossover(pts3, apps.SM, apps.MPPoll); found {
		t.Error("crossover claimed with a single fully-measured point")
	}
}
