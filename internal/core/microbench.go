package core

import (
	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MissPenalties holds measured shared-memory access penalties in
// processor cycles, mirroring the cost table of the paper's Figure 3.
type MissPenalties struct {
	LocalRead       float64 // paper: 11
	RemoteCleanRead float64 // paper: 38-42
	RemoteDirtyRead float64 // paper: 63 (3-party)
	LimitLESSRead   float64 // paper: 425

	LocalWrite       float64 // paper: 12
	RemoteCleanWrite float64 // paper: 38-40
	RemoteInvalWrite float64 // paper: 43-66 (invalidating one reader)
	RemoteDirtyWrite float64 // paper: 66-84 (3-party)
	LimitLESSWrite   float64 // paper: 707

	NullAMCycles float64 // paper: 102 (+0.8/hop)
	NetLatency24 float64 // paper: 15 (one-way 24B)
}

// MeasureMissPenalties runs targeted microbenchmarks on fresh machines
// with cfg and reports the achieved penalties. Remote cases use nodes
// four hops apart (the mesh's average distance).
func MeasureMissPenalties(cfg machine.Config) MissPenalties {
	var mp MissPenalties
	m := machine.New(cfg)
	// Requester 0 at (0,0); home 4 hops east (node 4 at (4,0) on the
	// default 8x4 mesh, clamped to the row on narrower machines); third
	// party one hop from the home — the row below when the machine has
	// one, the neighboring column otherwise.
	req, home, third := 0, 4, 4+cfg.Width
	if home > cfg.Width-1 {
		home = cfg.Width - 1
	}
	if cfg.Height > 1 {
		third = home + cfg.Width
	} else if home > 1 {
		third = home - 1
	} else {
		third = home + 1 // degenerate 1- or 2-node machines measure local-ish costs
	}
	mkAddrs := func(n int) []mem.Addr {
		out := make([]mem.Addr, n)
		for i := range out {
			out[i] = m.Alloc(home, 2)
		}
		return out
	}
	localAddrs := make([]mem.Addr, 32)
	for i := range localAddrs {
		localAddrs[i] = m.Alloc(req, 2)
	}
	cleanR := mkAddrs(16)
	dirtyR := mkAddrs(16)
	llR := mkAddrs(8)
	cleanW := mkAddrs(16)
	invalW := mkAddrs(16)
	dirtyW := mkAddrs(16)
	llW := mkAddrs(8)

	avg := func(p *machine.Proc, addrs []mem.Addr, op func(a mem.Addr)) float64 {
		start := p.Now()
		for _, a := range addrs {
			op(a)
		}
		return m.Clk.ToCyclesF(p.Now()-start) / float64(len(addrs))
	}

	m.Run(func(p *machine.Proc) {
		switch {
		case p.ID == third:
			// Dirty the dirty-read/write lines; share the inval lines.
			for _, a := range dirtyR {
				p.Write(a, 1)
			}
			for _, a := range dirtyW {
				p.Write(a, 1)
			}
			for _, a := range invalW {
				p.Read(a)
			}
		case p.ID >= 16 && p.ID < 22:
			// Six sharers overflow the 5-pointer directory on the
			// LimitLESS lines.
			p.Compute(8000)
			for _, a := range llR {
				p.Read(a)
			}
			for _, a := range llW {
				p.Read(a)
			}
		case p.ID == req:
			p.Compute(4000) // let the third party finish state setup
			mp.LocalRead = avg(p, localAddrs[:16], func(a mem.Addr) { p.Read(a) })
			mp.LocalWrite = avg(p, localAddrs[16:], func(a mem.Addr) { p.Write(a, 1) })
			mp.RemoteCleanRead = avg(p, cleanR, func(a mem.Addr) { p.Read(a) })
			mp.RemoteDirtyRead = avg(p, dirtyR, func(a mem.Addr) { p.Read(a) })
			mp.RemoteCleanWrite = avg(p, cleanW, func(a mem.Addr) { p.Write(a, 1) })
			mp.RemoteInvalWrite = avg(p, invalW, func(a mem.Addr) { p.Write(a, 1) })
			mp.RemoteDirtyWrite = avg(p, dirtyW, func(a mem.Addr) { p.Write(a, 1) })
			p.Compute(40000) // LimitLESS sharers are in place by now
			mp.LimitLESSRead = avg(p, llR, func(a mem.Addr) { p.Read(a) })
			mp.LimitLESSWrite = avg(p, llW, func(a mem.Addr) { p.Write(a, 1) })
		}
	})
	mp.NetLatency24 = NetLatencyCycles(cfg)
	mp.NullAMCycles = measureNullAM(cfg)
	return mp
}

// measureNullAM measures the end-to-end cost of a null active message
// between nodes four hops apart: send-construct through handler dispatch,
// under interrupt reception (the paper's 102-cycle figure).
func measureNullAM(cfg machine.Config) float64 {
	m := machine.New(cfg)
	var sendAt, handleAt sim.Time
	h := m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		handleAt = c.Now()
	})
	m.Run(func(p *machine.Proc) {
		switch p.ID {
		case 0:
			p.Compute(100)
			sendAt = p.Now()
			p.Send(4, h, nil, nil)
		case 4:
			p.WaitAndHandle()
		}
	})
	return m.Clk.ToCyclesF(handleAt - sendAt)
}
