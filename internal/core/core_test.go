package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
)

func TestNewAppAllNamesAndScales(t *testing.T) {
	for _, name := range AppNames {
		for _, sc := range []Scale{ScaleTiny, ScaleSweep, ScaleDefault} {
			a, err := NewApp(name, sc)
			if err != nil {
				t.Fatalf("NewApp(%s, %s): %v", name, sc, err)
			}
			if a.Name() != string(name) {
				t.Errorf("app name %q != %q", a.Name(), name)
			}
		}
	}
	if _, err := NewApp("nonesuch", ScaleTiny); err == nil {
		t.Error("unknown app name did not error")
	}
}

func TestRunValidatesAndMeasures(t *testing.T) {
	r, err := Run(RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: machine.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Volume.Total() == 0 {
		t.Errorf("implausible result: %d cycles, %d bytes", r.Cycles, r.Volume.Total())
	}
	if r.App != EM3D || r.Mech != apps.SM {
		t.Error("result labels wrong")
	}
}

func TestNetLatencyCyclesMatchesTable1(t *testing.T) {
	lat := NetLatencyCycles(machine.DefaultConfig())
	if lat < 12 || lat > 18 {
		t.Errorf("Alewife 24B one-way = %.1f cycles, want ~15 (Table 1)", lat)
	}
	// At 14 MHz the same wall-clock network is fewer processor cycles.
	cfg := machine.DefaultConfig()
	cfg.ClockMHz = 14
	if l14 := NetLatencyCycles(cfg); l14 >= lat {
		t.Errorf("14MHz latency %.1f >= 20MHz latency %.1f", l14, lat)
	}
}

func TestScaleStrings(t *testing.T) {
	for sc, want := range map[Scale]string{
		ScaleTiny: "tiny", ScaleDefault: "default",
		ScaleSweep: "sweep", ScaleFull: "full", Scale(9): "Scale(9)",
	} {
		if sc.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(sc), sc.String(), want)
		}
	}
}

func TestCrossoverSynthetic(t *testing.T) {
	mk := func(x float64, a, b int64) SweepPoint {
		return SweepPoint{X: x, Results: map[apps.Mechanism]RunResult{
			apps.SM:     {Result: machine.Result{Cycles: a}},
			apps.MPPoll: {Result: machine.Result{Cycles: b}},
		}}
	}
	// SM faster at X=10, slower at X=2: crossing in between.
	pts := []SweepPoint{mk(10, 100, 120), mk(6, 110, 120), mk(2, 160, 125)}
	x, found := Crossover(pts, apps.SM, apps.MPPoll)
	if !found {
		t.Fatal("crossover not found")
	}
	if x < 2 || x > 6 {
		t.Errorf("crossover at %.1f, want within (2, 6)", x)
	}
	// No crossing when one always wins.
	pts2 := []SweepPoint{mk(10, 100, 120), mk(2, 110, 130)}
	if _, found := Crossover(pts2, apps.SM, apps.MPPoll); found {
		t.Error("found spurious crossover")
	}
}

func TestClassifyRegionsSynthetic(t *testing.T) {
	mk := func(x float64, c int64) SweepPoint {
		return SweepPoint{X: x, Results: map[apps.Mechanism]RunResult{
			apps.SM: {Result: machine.Result{Cycles: c}},
		}}
	}
	// Flat, then linear, then explosive: the three regions of Figure 1.
	pts := []SweepPoint{
		mk(0, 1000), mk(1, 1010), mk(2, 1200), mk(3, 1400), mk(4, 2600),
	}
	regions := ClassifyRegions(pts, apps.SM)
	if len(regions) != 4 {
		t.Fatalf("got %d regions", len(regions))
	}
	if regions[0] != LatencyHiding {
		t.Errorf("interval 0 = %v, want latency-hiding", regions[0])
	}
	if regions[1] != LatencyDominated || regions[2] != LatencyDominated {
		t.Errorf("middle intervals = %v/%v, want latency-dominated", regions[1], regions[2])
	}
	if regions[3] != CongestionDominated {
		t.Errorf("interval 3 = %v, want congestion-dominated", regions[3])
	}
	if got := ClassifyRegions(pts[:1], apps.SM); got != nil {
		t.Error("single point should classify to nil")
	}
}

func TestRegionStrings(t *testing.T) {
	for r, want := range map[Region]string{
		LatencyHiding: "latency-hiding", LatencyDominated: "latency-dominated",
		CongestionDominated: "congestion-dominated", Region(5): "Region(5)",
	} {
		if r.String() != want {
			t.Errorf("%v != %q", r, want)
		}
	}
}

func TestMissPenaltiesNearPaper(t *testing.T) {
	mp := MeasureMissPenalties(machine.DefaultConfig())
	check := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s = %.1f cycles, want in [%v, %v]", name, got, lo, hi)
		}
	}
	// Paper Figure 3 values with generous bands (we match shape, not
	// exact cycle counts).
	check("LocalRead", mp.LocalRead, 8, 20)
	check("RemoteCleanRead", mp.RemoteCleanRead, 30, 60)
	check("RemoteDirtyRead", mp.RemoteDirtyRead, 50, 110)
	check("LimitLESSRead", mp.LimitLESSRead, 300, 600)
	check("LocalWrite", mp.LocalWrite, 8, 20)
	check("RemoteCleanWrite", mp.RemoteCleanWrite, 30, 60)
	check("RemoteInvalWrite", mp.RemoteInvalWrite, 40, 90)
	check("RemoteDirtyWrite", mp.RemoteDirtyWrite, 50, 110)
	check("LimitLESSWrite", mp.LimitLESSWrite, 400, 1100)
	check("NullAM", mp.NullAMCycles, 60, 140)
	check("NetLatency24", mp.NetLatency24, 12, 18)
	// Orderings the paper's table exhibits.
	if !(mp.LocalRead < mp.RemoteCleanRead && mp.RemoteCleanRead < mp.RemoteDirtyRead) {
		t.Errorf("read penalty ordering violated: %.1f, %.1f, %.1f",
			mp.LocalRead, mp.RemoteCleanRead, mp.RemoteDirtyRead)
	}
	if mp.LimitLESSWrite <= mp.LimitLESSRead {
		t.Errorf("LimitLESS write %.1f should exceed read %.1f (more sharers to invalidate)",
			mp.LimitLESSWrite, mp.LimitLESSRead)
	}
}

func TestBisectionSweepShape(t *testing.T) {
	// Figure 8's essence at test scale: as bisection drops, SM degrades
	// faster than MP.
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	pts, err := BisectionSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(),
		[]float64{0, 12, 16}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].X < 17 || pts[0].X > 19 {
		t.Errorf("native point X = %.1f, want ~18", pts[0].X)
	}
	smDeg := float64(pts[2].Results[apps.SM].Cycles) / float64(pts[0].Results[apps.SM].Cycles)
	mpDeg := float64(pts[2].Results[apps.MPPoll].Cycles) / float64(pts[0].Results[apps.MPPoll].Cycles)
	if smDeg <= mpDeg {
		t.Errorf("SM degradation %.2fx <= MP degradation %.2fx", smDeg, mpDeg)
	}
	if smDeg < 1.05 {
		t.Errorf("SM barely degraded (%.2fx) at 2 bytes/cycle", smDeg)
	}
}

func TestClockSweepRelativeLatency(t *testing.T) {
	// Figure 9's essence: slowing the clock makes the network relatively
	// faster; SM (in cycles) improves more than MP. The paper's hardware
	// range is 14-20 MHz; we widen it to 8 MHz for a clear signal at
	// test scale.
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	pts, err := ClockSweep(EM3D, ScaleSweep, mechs, machine.DefaultConfig(),
		[]float64{20, 8})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].X >= pts[0].X {
		t.Errorf("latency at 8MHz (%.1f) not below 20MHz (%.1f)", pts[1].X, pts[0].X)
	}
	smGain := float64(pts[0].Results[apps.SM].Cycles) - float64(pts[1].Results[apps.SM].Cycles)
	mpGain := float64(pts[0].Results[apps.MPPoll].Cycles) - float64(pts[1].Results[apps.MPPoll].Cycles)
	if smGain <= mpGain {
		t.Errorf("SM gained %.0f cycles from a faster network, MP gained %.0f; SM should gain more",
			smGain, mpGain)
	}
}

func TestContextSwitchSweepChandraPoint(t *testing.T) {
	// Figure 10's essence: at ~100-cycle one-way latency, message
	// passing beats shared memory by roughly 2x (reconciling Chandra et
	// al.); MP curves are flat (they are not varied).
	mechs := []apps.Mechanism{apps.SM, apps.SMPrefetch, apps.MPPoll}
	pts, err := ContextSwitchSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(),
		[]int64{15, 100})
	if err != nil {
		t.Fatal(err)
	}
	mp0 := pts[0].Results[apps.MPPoll].Cycles
	mp1 := pts[1].Results[apps.MPPoll].Cycles
	if mp0 != mp1 {
		t.Errorf("MP reference curve moved: %d -> %d", mp0, mp1)
	}
	sm1 := pts[1].Results[apps.SM].Cycles
	ratio := float64(sm1) / float64(mp1)
	// The paper reports ~2x at this point (reconciling Chandra et al.);
	// our substrate lands higher at unit-test scale because barrier and
	// write-invalidation round trips amplify under uniform latency (see
	// EXPERIMENTS.md). The qualitative claim under test: MP wins by a
	// multiple once latency reaches ~100 cycles.
	if ratio < 1.5 || ratio > 8 {
		t.Errorf("SM/MP at 100-cycle latency = %.2fx, want a clear MP win (~2-5x)", ratio)
	}
	// Prefetching hides some of the latency.
	pf1 := pts[1].Results[apps.SMPrefetch].Cycles
	if pf1 >= sm1 {
		t.Errorf("prefetch (%d) no better than SM (%d) at high latency", pf1, sm1)
	}
	// SM degrades with latency.
	if sm1 <= pts[0].Results[apps.SM].Cycles {
		t.Error("SM did not degrade with emulated latency")
	}
}

func TestMsgLenSweepSmallSizesEmulateBetter(t *testing.T) {
	// Figure 7: the emulation works across message sizes; runtimes vary
	// with cross-traffic granularity but stay in a band.
	pts, err := MsgLenSweep(EM3D, ScaleTiny, apps.SM, machine.DefaultConfig(),
		8, []int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	base := pts[0].Results[apps.SM].Cycles
	for _, pt := range pts {
		c := pt.Results[apps.SM].Cycles
		if c <= 0 {
			t.Fatalf("empty result at size %v", pt.X)
		}
		r := float64(c) / float64(base)
		if r < 0.5 || r > 2.0 {
			t.Errorf("size %v runtime ratio %.2f; emulation too sensitive", pt.X, r)
		}
	}
}

func TestDeterministicRunResults(t *testing.T) {
	rc := RunConfig{App: ICCG, Mech: apps.MPPoll, Scale: ScaleTiny,
		Machine: machine.DefaultConfig()}
	r1 := MustRun(rc)
	r2 := MustRun(rc)
	if r1.Cycles != r2.Cycles || r1.Volume != r2.Volume {
		t.Error("core.Run nondeterministic")
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	if _, err := BisectionSweep("nonesuch", ScaleTiny, []apps.Mechanism{apps.SM},
		machine.DefaultConfig(), []float64{0}, 64); err == nil {
		t.Error("bisection sweep with unknown app did not error")
	}
	if _, err := ClockSweep("nonesuch", ScaleTiny, []apps.Mechanism{apps.SM},
		machine.DefaultConfig(), []float64{20}); err == nil {
		t.Error("clock sweep with unknown app did not error")
	}
	if _, err := ContextSwitchSweep("nonesuch", ScaleTiny, []apps.Mechanism{apps.SM},
		machine.DefaultConfig(), []int64{15}); err == nil {
		t.Error("context-switch sweep with unknown app did not error")
	}
	if _, err := MsgLenSweep("nonesuch", ScaleTiny, apps.SM,
		machine.DefaultConfig(), 4, []int{64}); err == nil {
		t.Error("msg-len sweep with unknown app did not error")
	}
}

// TestCrossoverExactTies: ties establish no direction. Curves that
// touch and separate back to the same side never cross; curves that
// touch and come out on the other side cross exactly at the touch
// point; identical curves and tie-then-diverge sweeps report nothing.
func TestCrossoverExactTies(t *testing.T) {
	mk := func(x float64, a, b int64) SweepPoint {
		return SweepPoint{X: x, Results: map[apps.Mechanism]RunResult{
			apps.SM:     {Result: machine.Result{Cycles: a}},
			apps.MPPoll: {Result: machine.Result{Cycles: b}},
		}}
	}
	// Touch and return: SM ahead, tied, ahead again — no crossing.
	touch := []SweepPoint{mk(0, 100, 120), mk(1, 110, 110), mk(2, 100, 130)}
	if x, found := Crossover(touch, apps.SM, apps.MPPoll); found {
		t.Errorf("touch-and-return reported a crossover at %.1f", x)
	}
	// Touch and cross: the tie point is exactly the crossing.
	cross := []SweepPoint{mk(0, 100, 120), mk(1, 115, 115), mk(2, 130, 110)}
	x, found := Crossover(cross, apps.SM, apps.MPPoll)
	if !found {
		t.Fatal("touch-and-cross not found")
	}
	if x != 1 {
		t.Errorf("touch-and-cross at %.2f, want exactly 1 (the tie point)", x)
	}
	// Identical curves everywhere: no direction, no crossing.
	equal := []SweepPoint{mk(0, 100, 100), mk(1, 90, 90), mk(2, 110, 110)}
	if _, found := Crossover(equal, apps.SM, apps.MPPoll); found {
		t.Error("identical curves reported a crossover")
	}
	// Tie at the start then one direction: no established sign flip.
	lead := []SweepPoint{mk(0, 100, 100), mk(1, 90, 120), mk(2, 95, 130)}
	if _, found := Crossover(lead, apps.SM, apps.MPPoll); found {
		t.Error("tie-then-diverge reported a crossover")
	}
}
