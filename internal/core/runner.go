package core

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/mesh"
)

// Runner executes experiment runs on a worker pool with memoization.
// Simulations are isolated per machine.New and workloads are generated
// from fixed seeds, so a run's result depends only on its RunConfig;
// the runner exploits both properties: identical configurations execute
// once (single-flight, cached), and distinct configurations execute
// concurrently. Results are bit-identical to serial execution.
//
// A Runner is safe for concurrent use. Cached results are shared — treat
// RunResult (including its PerProc slice and Trace buffer) as read-only.
type Runner struct {
	workers int

	mu    sync.Mutex
	cache map[RunConfig]*runnerEntry

	hits     atomic.Uint64
	diskHits atomic.Uint64
	executed atomic.Uint64

	failMu   sync.Mutex
	failures []*RunError

	tele atomic.Pointer[Telemetry]
	disk atomic.Pointer[DiskCache]
}

// runnerEntry is one memoized (possibly in-flight) run.
type runnerEntry struct {
	done chan struct{} // closed when res/err are valid
	res  RunResult
	err  error
}

// NewRunner returns a runner with the given worker-pool width; workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, cache: make(map[RunConfig]*runnerEntry)}
}

// DefaultRunner executes the package-level sweep functions. Its cache
// persists across sweeps, so e.g. regenerating Figure 8 after Figure 7
// reuses any overlapping points.
var DefaultRunner = NewRunner(0)

// SetDefaultWorkers resets the default runner to n workers (n <= 0 means
// GOMAXPROCS) with a fresh cache. It is not safe to call concurrently
// with sweeps on the default runner.
func SetDefaultWorkers(n int) { DefaultRunner = NewRunner(n) }

// Workers reports the pool width.
func (r *Runner) Workers() int { return r.workers }

// Stats reports how many runs were served from cache and how many
// actually executed a simulation.
func (r *Runner) Stats() (hits, executed uint64) {
	return r.hits.Load(), r.executed.Load()
}

// DiskHits reports how many runs were served from the persistent disk
// cache (a subset of neither Stats counter: disk hits execute no
// simulation and did not hit the in-memory cache).
func (r *Runner) DiskHits() uint64 { return r.diskHits.Load() }

// SetDiskCache attaches (or, with nil, detaches) a persistent result
// cache: subsequent misses of the in-memory cache consult the disk
// before simulating, and executed runs are stored back. Safe to call
// concurrently with sweeps.
func (r *Runner) SetDiskCache(dc *DiskCache) { r.disk.Store(dc) }

// SetTelemetry attaches (or, with nil, detaches) an observability sink:
// every subsequent Run — cache hit or miss — is logged to it, and
// executed runs write their timeline/metrics/trace artifacts. Safe to
// call concurrently with sweeps; in-flight runs may record to either
// sink around the switch.
func (r *Runner) SetTelemetry(t *Telemetry) { r.tele.Store(t) }

// ClearCache drops all memoized results.
func (r *Runner) ClearCache() {
	r.mu.Lock()
	r.cache = make(map[RunConfig]*runnerEntry)
	r.mu.Unlock()
}

// Failures returns the crashed runs recovered so far, one per distinct
// failing configuration (cache hits on a failed entry do not re-report).
// Callers like paperbench use it to report sweep failures and exit
// nonzero after letting the surviving points complete.
func (r *Runner) Failures() []*RunError {
	r.failMu.Lock()
	defer r.failMu.Unlock()
	return append([]*RunError(nil), r.failures...)
}

// fingerprint canonicalizes rc into the cache key: knobs that cannot
// affect the simulation are normalized away so incidentally-different
// configurations still dedupe. machine.Config is comparable (scalars
// only), so the canonical RunConfig is itself the key.
func fingerprint(rc RunConfig) RunConfig {
	if rc.Machine.CrossTraffic.BytesPerCycle == 0 {
		// Cross-traffic is only started for a nonzero rate; the message
		// size is inert without it.
		rc.Machine.CrossTraffic = mesh.CrossTraffic{}
	}
	if rc.Machine.FaultSpec == "" {
		// The fault seed is inert without a fault spec.
		rc.Machine.FaultSeed = 0
	}
	if rc.Machine.NoiseSpec == "" {
		// Likewise, the noise seed is inert without a noise spec.
		rc.Machine.NoiseSeed = 0
	}
	if !rc.Machine.CritPath {
		// The edge-ring capacity is inert without the critical-path
		// profiler. With it, distinct caps key separately: they change
		// which edges the rings retain, and through them the recorder
		// and top-edge summary a cached RunResult carries.
		rc.Machine.CritEdgeCap = 0
	}
	if rc.Machine.Nodes() == BaseProcs {
		// Weak and strong scaling coincide at the paper's machine size
		// (the problem-growth factor is 1), so the flag is inert.
		rc.ScaleProblem = false
	}
	if rc.Machine.Tiled() {
		// The tiled engine's result is identical at every worker count, so
		// every tiled Shards setting shares one cache key. The serial
		// engine reserves congested links in a different order than the
		// tiled one, so serial results key separately.
		rc.Machine.Shards = 1
	} else {
		rc.Machine.Shards = -1
	}
	return rc
}

// BudgetWorkers splits the global core budget between sweep workers and
// per-run engine shards so -j times -shards never oversubscribes: it
// returns jobs/shards with a floor of one. jobs <= 0 means GOMAXPROCS;
// shards below one (the serial engine) costs one core per run.
func BudgetWorkers(jobs, shards int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		shards = 1
	}
	if w := jobs / shards; w > 1 {
		return w
	}
	return 1
}

// Run executes one configuration, memoized and single-flight: the first
// caller for a fingerprint runs the simulation, concurrent duplicates
// block on it, later duplicates return the cached result immediately.
func (r *Runner) Run(rc RunConfig) (RunResult, error) {
	key := fingerprint(rc)
	r.mu.Lock()
	e, ok := r.cache[key]
	if ok {
		r.mu.Unlock()
		r.hits.Add(1)
		start := time.Now()
		<-e.done
		r.tele.Load().observe(rc, e.res, e.err, time.Since(start), true)
		return e.res, e.err
	}
	e = &runnerEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()
	if dc := r.disk.Load(); dc != nil {
		if res, ok := dc.Load(key); ok {
			r.diskHits.Add(1)
			e.res = res
			close(e.done)
			r.tele.Load().observe(rc, e.res, nil, 0, true)
			return e.res, nil
		}
	}
	r.executed.Add(1)
	start := time.Now()
	e.res, e.err = Run(rc)
	wall := time.Since(start)
	if re, ok := e.err.(*RunError); ok {
		r.failMu.Lock()
		r.failures = append(r.failures, re)
		r.failMu.Unlock()
	}
	close(e.done)
	if dc := r.disk.Load(); dc != nil && e.err == nil {
		if serr := dc.Store(key, e.res); serr != nil {
			fmt.Fprintf(os.Stderr, "core: %v\n", serr)
		}
	}
	r.tele.Load().observe(rc, e.res, e.err, wall, false)
	return e.res, e.err
}

// RunBatch executes configurations on the worker pool and returns their
// results in input order. On error it returns the first error encountered
// in input order among completed jobs; remaining jobs are abandoned.
func (r *Runner) RunBatch(rcs []RunConfig) ([]RunResult, error) {
	out := make([]RunResult, len(rcs))
	workers := r.workers
	if workers > len(rcs) {
		workers = len(rcs)
	}
	if workers <= 1 {
		for i, rc := range rcs {
			res, err := r.Run(rc)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errMu   sync.Mutex
		firstI  int
		firstEr error
		wg      sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= len(rcs) {
					return
				}
				res, err := r.Run(rcs[i])
				if err != nil {
					errMu.Lock()
					if firstEr == nil || i < firstI {
						firstI, firstEr = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				out[i] = res
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

// RunBatchAll executes every configuration on the worker pool, never
// aborting: errs[i] is non-nil exactly where job i failed. Unlike
// RunBatch, one crashing point leaves the rest of the batch completed —
// this is the sweep runners' isolation guarantee.
func (r *Runner) RunBatchAll(rcs []RunConfig) (out []RunResult, errs []error) {
	out = make([]RunResult, len(rcs))
	errs = make([]error, len(rcs))
	workers := r.workers
	if workers > len(rcs) {
		workers = len(rcs)
	}
	if workers <= 1 {
		for i, rc := range rcs {
			out[i], errs[i] = r.Run(rc)
		}
		return out, errs
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(rcs) {
					return
				}
				out[i], errs[i] = r.Run(rcs[i])
			}
		}()
	}
	wg.Wait()
	return out, errs
}

// sweepJobs fans out the cross-product of per-point machine configs and
// mechanisms, then folds the results back into ordered SweepPoints. This
// is the common core of the Bisection/Clock/MsgLen sweeps; the
// ContextSwitch sweep has its own fold (reference mechanisms are hoisted
// out of the point loop).
//
// Failed runs are isolated, not fatal: a crashing point is simply absent
// from its SweepPoint.Results (downstream analysis like Crossover skips
// partial mechanism sets), and the RunError is recorded on the Runner for
// reporting via Failures. The sweep errors only when nothing succeeded.
func (r *Runner) sweepJobs(app AppName, sc Scale, mechs []apps.Mechanism, cfgs []machine.Config, xs []float64) ([]SweepPoint, error) {
	return r.sweepJobsScaled(app, sc, mechs, cfgs, xs, false)
}

// sweepJobsScaled is sweepJobs with an explicit problem-scaling mode
// (the node-scaling sweep runs both; every fixed-geometry sweep passes
// false).
func (r *Runner) sweepJobsScaled(app AppName, sc Scale, mechs []apps.Mechanism, cfgs []machine.Config, xs []float64, scaleProblem bool) ([]SweepPoint, error) {
	jobs := make([]RunConfig, 0, len(cfgs)*len(mechs))
	for _, cfg := range cfgs {
		for _, mech := range mechs {
			jobs = append(jobs, RunConfig{App: app, Mech: mech, Scale: sc, Machine: cfg, ScaleProblem: scaleProblem, SkipValidate: true})
		}
	}
	results, errs := r.RunBatchAll(jobs)
	if err := allFailed(errs); err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(cfgs))
	for pi := range cfgs {
		pt := SweepPoint{X: xs[pi], Results: make(map[apps.Mechanism]RunResult, len(mechs))}
		for mi, mech := range mechs {
			if j := pi*len(mechs) + mi; errs[j] == nil {
				pt.Results[mech] = results[j]
			}
		}
		out[pi] = pt
	}
	return out, nil
}

// allFailed returns the first error if every job in a nonempty batch
// failed (a wholly failed sweep should surface, not return empty points),
// and nil otherwise.
func allFailed(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			return nil
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// BisectionSweep is the parallel, memoized form of the package-level
// BisectionSweep (Figure 8 methodology).
func (r *Runner) BisectionSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, crossRates []float64, msgBytes int) ([]SweepPoint, error) {
	cfgs := make([]machine.Config, len(crossRates))
	xs := make([]float64, len(crossRates))
	native := mesh.Config{Width: base.Width, Height: base.Height, HopLatency: base.HopLatency, PsPerByte: base.PsPerByte}.
		BisectionBytesPerCycle(clockOf(base))
	for i, rate := range crossRates {
		cfg := base
		if rate > 0 {
			cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: msgBytes, BytesPerCycle: rate}
		}
		cfgs[i] = cfg
		xs[i] = native - rate
	}
	return r.sweepJobs(app, sc, mechs, cfgs, xs)
}

// ClockSweep is the parallel, memoized form of the package-level
// ClockSweep (Figure 9 methodology).
func (r *Runner) ClockSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, mhzs []float64) ([]SweepPoint, error) {
	cfgs := make([]machine.Config, len(mhzs))
	xs := make([]float64, len(mhzs))
	for i, mhz := range mhzs {
		cfg := base
		cfg.ClockMHz = mhz
		cfgs[i] = cfg
		xs[i] = NetLatencyCycles(cfg)
	}
	return r.sweepJobs(app, sc, mechs, cfgs, xs)
}

// ContextSwitchSweep is the parallel, memoized form of the package-level
// ContextSwitchSweep (Figure 10 methodology). The emulated latency only
// applies to the shared-memory mechanisms; the message-passing curves are
// flat reference lines, so those runs are hoisted out of the per-latency
// loop and executed once each, independent of the memo cache.
func (r *Runner) ContextSwitchSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, oneWayCycles []int64) ([]SweepPoint, error) {
	var refMechs, swMechs []apps.Mechanism
	for _, mech := range mechs {
		if mech.UsesMessages() {
			refMechs = append(refMechs, mech)
		} else {
			swMechs = append(swMechs, mech)
		}
	}
	jobs := make([]RunConfig, 0, len(refMechs)+len(oneWayCycles)*len(swMechs))
	for _, mech := range refMechs {
		jobs = append(jobs, RunConfig{App: app, Mech: mech, Scale: sc, Machine: base, SkipValidate: true})
	}
	for _, lat := range oneWayCycles {
		cfg := base
		cfg.IdealNetOneWayCycles = lat
		for _, mech := range swMechs {
			jobs = append(jobs, RunConfig{App: app, Mech: mech, Scale: sc, Machine: cfg, SkipValidate: true})
		}
	}
	results, errs := r.RunBatchAll(jobs)
	if err := allFailed(errs); err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(oneWayCycles))
	for pi, lat := range oneWayCycles {
		pt := SweepPoint{X: float64(lat), Results: make(map[apps.Mechanism]RunResult, len(mechs))}
		for mi, mech := range refMechs {
			if errs[mi] == nil {
				pt.Results[mech] = results[mi]
			}
		}
		for mi, mech := range swMechs {
			if j := len(refMechs) + pi*len(swMechs) + mi; errs[j] == nil {
				pt.Results[mech] = results[j]
			}
		}
		out[pi] = pt
	}
	return out, nil
}

// NodeScalingSweep is the Figure S1 methodology: the same application
// and mechanisms across machine geometries of nodeCounts nodes each
// (canonical machine.Geometry shapes; base supplies every non-geometry
// knob). X is the node count. With scaleProblem false the problem size
// stays at the scale's fixed size (strong scaling); with true it grows
// proportionally to the node count (weak scaling, constant work per
// processor). Node counts whose workload cannot be partitioned (e.g. a
// fixed-size graph with fewer nodes than processors) are isolated like
// crashed points: absent from that point's Results, reported via
// Failures only when the run itself crashed.
func (r *Runner) NodeScalingSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, nodeCounts []int, scaleProblem bool) ([]SweepPoint, error) {
	cfgs := make([]machine.Config, len(nodeCounts))
	xs := make([]float64, len(nodeCounts))
	for i, n := range nodeCounts {
		w, h, err := machine.Geometry(n)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Width, cfg.Height = w, h
		cfgs[i] = cfg
		xs[i] = float64(n)
	}
	return r.sweepJobsScaled(app, sc, mechs, cfgs, xs, scaleProblem)
}

// MsgLenSweep is the parallel, memoized form of the package-level
// MsgLenSweep (Figure 7 methodology).
func (r *Runner) MsgLenSweep(app AppName, sc Scale, mech apps.Mechanism, base machine.Config, crossRate float64, sizes []int) ([]SweepPoint, error) {
	cfgs := make([]machine.Config, len(sizes))
	xs := make([]float64, len(sizes))
	for i, size := range sizes {
		cfg := base
		cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: size, BytesPerCycle: crossRate}
		cfgs[i] = cfg
		xs[i] = float64(size)
	}
	return r.sweepJobs(app, sc, []apps.Mechanism{mech}, cfgs, xs)
}
