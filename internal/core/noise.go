package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// This file is the Figure S2 methodology: the paper's mechanism axis
// re-asked under stochastic system noise (fennel's LBMachine idiom) and
// under a single injected delay (Afzal, Hager & Wellein's propagation
// question). Both experiments run on the memoized runner, so repeated
// regeneration is cheap and byte-identical.

// NoiseDistribution is one mechanism's runtime distribution across noise
// seeds under a fixed noise spec.
type NoiseDistribution struct {
	Mech   apps.Mechanism
	Seeds  []uint64 // the seeds actually measured, in input order
	Cycles []int64  // completion time per measured seed, parallel to Seeds
}

// NoiseSeedSweep measures each mechanism's runtime distribution under
// spec across the given seeds (Figure S2, distribution panel). Crashed
// seeds are isolated like crashed sweep points: absent from that
// mechanism's samples, reported via Runner.Failures. The sweep errors
// only when every run failed.
func (r *Runner) NoiseSeedSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, spec string, seeds []uint64) ([]NoiseDistribution, error) {
	if _, err := fault.Parse(spec); err != nil {
		return nil, err
	}
	jobs := make([]RunConfig, 0, len(mechs)*len(seeds))
	for _, mech := range mechs {
		for _, seed := range seeds {
			cfg := base
			cfg.NoiseSpec = spec
			cfg.NoiseSeed = seed
			jobs = append(jobs, RunConfig{App: app, Mech: mech, Scale: sc, Machine: cfg, SkipValidate: true})
		}
	}
	results, errs := r.RunBatchAll(jobs)
	if err := allFailed(errs); err != nil {
		return nil, err
	}
	out := make([]NoiseDistribution, len(mechs))
	for mi, mech := range mechs {
		d := NoiseDistribution{Mech: mech}
		for si, seed := range seeds {
			if j := mi*len(seeds) + si; errs[j] == nil {
				d.Seeds = append(d.Seeds, seed)
				d.Cycles = append(d.Cycles, results[j].Cycles)
			}
		}
		out[mi] = d
	}
	return out, nil
}

// PropagationResult is one mechanism's response to a single injected
// delay (Figure S2, propagation panel): how far the perturbation spreads
// across the mesh, measured as per-node completion shift grouped by hop
// distance from the delayed node.
type PropagationResult struct {
	Mech        apps.Mechanism
	BaseCycles  int64 // unperturbed completion time
	AtCycles    int64 // when the delay was injected, cycles
	DelayCycles int64 // injected delay length, cycles

	// RuntimeShift is the whole-machine completion shift (perturbed minus
	// baseline), in cycles. A shift near DelayCycles means the delay
	// propagated undamped to the critical path; near zero means the
	// mechanism absorbed it in slack.
	RuntimeShift int64

	// ShiftByHops[h] is the mean per-node completion shift in cycles over
	// the nodes at hop distance h from the delayed node. A flat curve
	// means the delay reached everyone (tight coupling); a decaying curve
	// means it stayed local.
	ShiftByHops []float64
}

// DelayPropagation measures how a single injected delay on node spreads
// per mechanism: a baseline run fixes each mechanism's unperturbed
// timeline, then a one-shot delay:node clause stalls the node for a tenth
// of the baseline runtime starting a quarter of the way in, and the
// per-node completion profile (Result.DoneCycles) is compared by hop
// distance. Mechanisms whose baseline crashed are omitted; the experiment
// errors only when every baseline failed.
func (r *Runner) DelayPropagation(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, node int) ([]PropagationResult, error) {
	if node < 0 || node >= base.Nodes() {
		return nil, fmt.Errorf("core: delay node %d outside the %d-node machine", node, base.Nodes())
	}
	baseJobs := make([]RunConfig, len(mechs))
	for i, mech := range mechs {
		baseJobs[i] = RunConfig{App: app, Mech: mech, Scale: sc, Machine: base, SkipValidate: true}
	}
	baseRes, baseErrs := r.RunBatchAll(baseJobs)
	if err := allFailed(baseErrs); err != nil {
		return nil, err
	}

	clk := clockOf(base)
	var live []int   // indices into mechs with a successful baseline
	var durs []int64 // injected delay length per job, cycles
	jobs := make([]RunConfig, 0, len(mechs))
	for i := range mechs {
		if baseErrs[i] != nil {
			continue
		}
		live = append(live, i)
		// At 25% of the baseline the machine is in steady state; a tenth
		// of the runtime (at least 1000 cycles) is large enough to see
		// above discretization but small enough to stay in the linear
		// response regime.
		durCycles := baseRes[i].Cycles / 10
		if durCycles < 1000 {
			durCycles = 1000
		}
		durs = append(durs, durCycles)
		spec := fault.Config{Delays: []fault.Delay{{
			Node: node,
			At:   baseRes[i].Time / 4,
			Dur:  clk.Cycles(durCycles),
		}}}.String()
		cfg := base
		cfg.NoiseSpec = spec
		jobs = append(jobs, RunConfig{App: app, Mech: mechs[i], Scale: sc, Machine: cfg, SkipValidate: true})
	}
	pertRes, pertErrs := r.RunBatchAll(jobs)
	if err := allFailed(pertErrs); err != nil {
		return nil, err
	}

	// Hop distances from the delayed node, from a throwaway mesh (pure
	// geometry; no simulation).
	m := mesh.New(sim.NewEngine(), mesh.Config{Width: base.Width, Height: base.Height,
		HopLatency: base.HopLatency, PsPerByte: base.PsPerByte, Torus: base.Torus})
	hops := make([]int, base.Nodes())
	maxHops := 0
	for i := range hops {
		hops[i] = m.Hops(node, i)
		if hops[i] > maxHops {
			maxHops = hops[i]
		}
	}

	var out []PropagationResult
	for ji, mi := range live {
		if pertErrs[ji] != nil {
			continue
		}
		b, p := baseRes[mi], pertRes[ji]
		pr := PropagationResult{
			Mech:         mechs[mi],
			BaseCycles:   b.Cycles,
			AtCycles:     clk.ToCycles(b.Time / 4),
			DelayCycles:  durs[ji],
			RuntimeShift: p.Cycles - b.Cycles,
			ShiftByHops:  make([]float64, maxHops+1),
		}
		counts := make([]int, maxHops+1)
		for n := range hops {
			pr.ShiftByHops[hops[n]] += float64(p.DoneCycles[n] - b.DoneCycles[n])
			counts[hops[n]]++
		}
		for h := range pr.ShiftByHops {
			if counts[h] > 0 {
				pr.ShiftByHops[h] /= float64(counts[h])
			}
		}
		out = append(out, pr)
	}
	return out, nil
}

// NoiseSeedSweep runs the Figure S2 distribution panel on DefaultRunner.
func NoiseSeedSweep(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, spec string, seeds []uint64) ([]NoiseDistribution, error) {
	return DefaultRunner.NoiseSeedSweep(app, sc, mechs, base, spec, seeds)
}

// DelayPropagation runs the Figure S2 propagation panel on DefaultRunner.
func DelayPropagation(app AppName, sc Scale, mechs []apps.Mechanism, base machine.Config, node int) ([]PropagationResult, error) {
	return DefaultRunner.DelayPropagation(app, sc, mechs, base, node)
}
