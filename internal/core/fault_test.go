package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/sim"
)

// poisoned returns a config guaranteed to trip the event-limit watchdog
// long before any tiny-scale app completes.
func poisoned() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.EventLimit = 1000
	return cfg
}

func TestRunRecoversCrashIntoRunError(t *testing.T) {
	_, err := Run(RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: poisoned(), SkipValidate: true})
	if err == nil {
		t.Fatal("poisoned run succeeded")
	}
	re, ok := err.(*RunError)
	if !ok {
		t.Fatalf("error type %T (%v), want *RunError", err, err)
	}
	if re.App != EM3D || re.Mech != apps.SM {
		t.Errorf("RunError identifies %s/%s, want em3d/SM", re.App, re.Mech)
	}
	if re.Stall == nil {
		t.Fatal("RunError.Stall is nil; watchdog diagnostic lost in recovery")
	}
	if re.Stall.Kind != sim.StallEventLimit {
		t.Errorf("Stall.Kind = %v, want %v", re.Stall.Kind, sim.StallEventLimit)
	}
	if !strings.Contains(re.Error(), "em3d") {
		t.Errorf("RunError text %q lacks the app name", re.Error())
	}
}

func TestCrashIsolationLeavesSweepCompleted(t *testing.T) {
	r := NewRunner(0)
	good := machine.DefaultConfig()
	cfgs := []machine.Config{good, poisoned(), good}
	// The middle config differs only in EventLimit, so it is a distinct
	// cache key and crashes alone.
	cfgs[2].ClockMHz = 14
	pts, err := r.sweepJobs(EM3D, ScaleTiny, []apps.Mechanism{apps.SM}, cfgs, []float64{0, 1, 2})
	if err != nil {
		t.Fatalf("sweep with one crashing point errored: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if len(pts[0].Results) != 1 || len(pts[2].Results) != 1 {
		t.Error("surviving points incomplete; crash was not isolated")
	}
	if len(pts[1].Results) != 0 {
		t.Error("crashed point reported results")
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("Failures() = %d entries, want 1", len(fails))
	}
	if fails[0].Stall == nil || fails[0].Stall.Kind != sim.StallEventLimit {
		t.Errorf("failure lacks the watchdog diagnostic: %+v", fails[0])
	}
}

func TestWhollyFailedSweepErrors(t *testing.T) {
	r := NewRunner(0)
	pts, err := r.sweepJobs(EM3D, ScaleTiny, []apps.Mechanism{apps.SM},
		[]machine.Config{poisoned()}, []float64{0})
	if err == nil {
		t.Fatalf("sweep with zero surviving points returned %v, want error", pts)
	}
	if _, ok := err.(*RunError); !ok {
		t.Errorf("error type %T, want *RunError", err)
	}
}

func TestRunBatchAllNeverAborts(t *testing.T) {
	r := NewRunner(0)
	good := RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: machine.DefaultConfig(), SkipValidate: true}
	bad := good
	bad.Machine = poisoned()
	results, errs := r.RunBatchAll([]RunConfig{bad, good, bad, good})
	for _, i := range []int{0, 2} {
		if errs[i] == nil {
			t.Errorf("job %d: poisoned run did not error", i)
		}
	}
	for _, i := range []int{1, 3} {
		if errs[i] != nil {
			t.Errorf("job %d: good run failed: %v", i, errs[i])
		}
		if results[i].Cycles == 0 {
			t.Errorf("job %d: good run has empty result", i)
		}
	}
	// Both failing jobs share one fingerprint: one recorded failure.
	if got := len(r.Failures()); got != 1 {
		t.Errorf("Failures() = %d entries, want 1 (per distinct config)", got)
	}
}

// TestEM3DValidatesUnderSeededFaults is the seeded-fault stress test:
// EM3D tiny runs under link outages, jitter, and drain stalls, and its
// numerical results must still validate against the sequential reference
// (faults delay traffic but never drop it).
func TestEM3DValidatesUnderSeededFaults(t *testing.T) {
	rc := RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: machine.DefaultConfig()}
	rc.Machine.FaultSpec = "jitter:max=400ns,prob=0.3;" +
		"outage:node=*,start=20us,dur=5us,every=100us;" +
		"stall:node=5,start=10us,dur=10us,every=200us"
	rc.Machine.FaultSeed = 42

	res1, err := Run(rc)
	if err != nil {
		t.Fatalf("EM3D under faults failed validation: %v", err)
	}
	res2, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Error("same fault seed produced different results")
	}

	// Message-passing mechanisms exercise the NI drain-stall path.
	rc.Mech = apps.MPPoll
	if _, err := Run(rc); err != nil {
		t.Fatalf("EM3D/MPPoll under faults failed validation: %v", err)
	}
}

func TestFaultSeedsAreDistinctCacheKeys(t *testing.T) {
	r := NewRunner(1)
	rc := RunConfig{App: EM3D, Mech: apps.SM, Scale: ScaleTiny,
		Machine: machine.DefaultConfig(), SkipValidate: true}
	rc.Machine.FaultSpec = "jitter:max=200ns,prob=0.5"
	rc.Machine.FaultSeed = 1
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	rc.Machine.FaultSeed = 2
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	if _, executed := r.Stats(); executed != 2 {
		t.Errorf("executed %d runs, want 2 (distinct seeds with a live spec)", executed)
	}
}
