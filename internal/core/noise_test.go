package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/machine"
)

// TestNoiseExperimentRerunByteIdentical is the Figure S2 determinism
// guarantee: the same noise spec and seed schedule on fresh runners
// (nothing served from cache) reproduce the distribution panel, the
// propagation panel, and the CSV byte-for-byte. Run under -race via
// `make check`, this also certifies the noisy path free of data races.
func TestNoiseExperimentRerunByteIdentical(t *testing.T) {
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	seeds := []uint64{1, 2, 3}
	const spec = "hostnoise:node=*,dist=heavytail,mean=2us;netnoise:node=*,dist=exp,mean=100ns"
	run := func() ([]core.NoiseDistribution, []core.PropagationResult, []byte) {
		t.Helper()
		r := core.NewRunner(0)
		dists, err := r.NoiseSeedSweep(core.EM3D, core.ScaleTiny, mechs, machine.DefaultConfig(), spec, seeds)
		if err != nil {
			t.Fatal(err)
		}
		props, err := r.DelayPropagation(core.EM3D, core.ScaleTiny, mechs, machine.DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := figures.WriteNoiseCSV(&buf, dists, props); err != nil {
			t.Fatal(err)
		}
		return dists, props, buf.Bytes()
	}
	d1, p1, csv1 := run()
	d2, p2, csv2 := run()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(p1, p2) {
		t.Error("re-running the noise experiment on a fresh runner produced different results")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("noise figure data differs between identical runs:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
}

// TestNoiseSeedSweepShape: every mechanism keeps its seeds in input
// order with positive runtimes, and the seeds actually move the result —
// a distribution over identical samples would mean the noise never
// reached the machine.
func TestNoiseSeedSweepShape(t *testing.T) {
	mechs := []apps.Mechanism{apps.SM}
	seeds := []uint64{4, 5, 6}
	dists, err := core.NewRunner(0).NoiseSeedSweep(core.EM3D, core.ScaleTiny, mechs,
		machine.DefaultConfig(), "hostnoise:node=*,dist=exp,mean=2us", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 1 || !reflect.DeepEqual(dists[0].Seeds, seeds) {
		t.Fatalf("dists = %+v, want one entry with seeds %v", dists, seeds)
	}
	distinct := map[int64]bool{}
	for i, c := range dists[0].Cycles {
		if c <= 0 {
			t.Errorf("seed %d: non-positive runtime %d", seeds[i], c)
		}
		distinct[c] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d seeds produced the same runtime; noise is not reaching the run", len(seeds))
	}
}

// TestDelayPropagationShape: the propagation panel reports every
// mechanism with a sane delay size and a full hop profile covering the
// mesh.
func TestDelayPropagationShape(t *testing.T) {
	mechs := []apps.Mechanism{apps.MPPoll}
	props, err := core.NewRunner(0).DelayPropagation(core.EM3D, core.ScaleTiny, mechs,
		machine.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 1 {
		t.Fatalf("got %d propagation results, want 1", len(props))
	}
	p := props[0]
	if p.BaseCycles <= 0 || p.DelayCycles < 1000 || p.AtCycles <= 0 {
		t.Errorf("degenerate experiment: %+v", p)
	}
	// The default 8x4 mesh has a farthest node 7+3=10 hops from node 0.
	if len(p.ShiftByHops) != 11 {
		t.Errorf("hop profile has %d entries, want 11", len(p.ShiftByHops))
	}
	if p.RuntimeShift <= 0 {
		t.Errorf("injected delay did not shift completion: %d", p.RuntimeShift)
	}
}

func TestNoiseExperimentErrors(t *testing.T) {
	r := core.NewRunner(0)
	mechs := []apps.Mechanism{apps.SM}
	if _, err := r.NoiseSeedSweep(core.EM3D, core.ScaleTiny, mechs,
		machine.DefaultConfig(), "hostnoise:dist=gaussian,mean=1us", []uint64{1}); err == nil {
		t.Error("bad noise spec accepted")
	}
	if _, err := r.DelayPropagation(core.EM3D, core.ScaleTiny, mechs,
		machine.DefaultConfig(), 99); err == nil {
		t.Error("out-of-range delay node accepted")
	}
}
