package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
)

// TestPredictedSweepExactAtBase pins the prediction layer's anchor
// guarantee end to end: at the instrumented (latency, bandwidth) point
// the dependency-graph solve must reproduce the simulated runtime
// exactly — not approximately — because every edge arrives exactly when
// it arrived and instrumentation is passive.
func TestPredictedSweepExactAtBase(t *testing.T) {
	r := NewRunner(0)
	ps, err := r.PredictedClockSweep(EM3D, ScaleTiny, []apps.Mechanism{apps.SM, apps.MPPoll},
		machine.DefaultConfig(), []float64{20, 16}, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := ps.Points[0] // mhz 20 is the base config
	for _, mech := range []apps.Mechanism{apps.SM, apps.MPPoll} {
		sim, ok := base.Sim[mech]
		if !ok {
			t.Fatalf("%v: no base simulation", mech)
		}
		if pred := base.Pred[mech]; pred.Cycles != sim.Cycles {
			t.Errorf("%v: predicted %d cycles at the base point, simulated %d; must be exact",
				mech, pred.Cycles, sim.Cycles)
		}
		if cov := 1.0; ps.Base[mech].Crit.EdgesTotal() > int64(DefaultPredictEdgeCap) {
			t.Logf("%v: edge stream larger than the cap (coverage < %v)", mech, cov)
		}
	}
}

// TestPredictedSweepErrorBound asserts the committed validation bound
// on real grids: every predicted point of a tiny clock sweep and a
// tiny moderate-load bisection sweep lands within 15% of its
// simulation.
func TestPredictedSweepErrorBound(t *testing.T) {
	r := NewRunner(0)
	for _, app := range []AppName{EM3D, MOLDYN} {
		ps, err := r.PredictedClockSweep(app, ScaleTiny, []apps.Mechanism{apps.SM, apps.MPPoll},
			machine.DefaultConfig(), []float64{20, 16, 14}, PredictOptions{})
		if err != nil {
			t.Fatal(err)
		}
		max, mean, n := ps.MaxErrorPct()
		if n < 6 {
			t.Fatalf("%s: only %d validated mechanism-points", app, n)
		}
		if max > 15 {
			t.Errorf("%s: worst predicted-vs-simulated error %.1f%% (mean %.1f%%), committed bound is 15%%", app, max, mean)
		}
	}
	bs, err := r.PredictedBisectionSweep(EM3D, ScaleTiny, []apps.Mechanism{apps.SM, apps.MPPoll},
		machine.DefaultConfig(), []float64{0, 4, 6}, 64, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if max, mean, n := bs.MaxErrorPct(); n < 6 || max > 15 {
		t.Errorf("bisection axis: worst error %.1f%% (mean %.1f%%) over %d points, committed bound is 15%%", max, mean, n)
	}
}

// TestPredictedBisectionConfidence: cross-traffic utilization the edge
// DAG cannot see must surface as distrust — at a heavily loaded cut
// the confidence falls below the pruning floor, so the pruned sweep
// simulates exactly the points the queueing model is blind to.
func TestPredictedBisectionConfidence(t *testing.T) {
	r := NewRunner(0)
	ps, err := r.PredictedBisectionSweep(EM3D, ScaleTiny, []apps.Mechanism{apps.SM},
		machine.DefaultConfig(), []float64{0, 12}, 64, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idle, loaded := ps.Points[0].Pred[apps.SM], ps.Points[1].Pred[apps.SM]
	if loaded.Rho < idle.Rho+0.5 {
		t.Errorf("rho at 12 bytes/cycle of cross traffic = %v (idle %v), want the cut utilization reflected", loaded.Rho, idle.Rho)
	}
	if loaded.Confidence >= 0.7 {
		t.Errorf("confidence %v at a 2/3-loaded cut, want below the 0.7 pruning floor", loaded.Confidence)
	}
}

// flattenPredictions renders the deterministic core of a predicted
// sweep (predictions, tolerances, counts) into a canonical string for
// byte-equality comparison. Measured RunResults are excluded only
// because they carry pointers whose rendering is address-dependent;
// their determinism is covered by TestDeterminism.
func flattenPredictions(ps *PredictedSweep) string {
	s := fmt.Sprintf("grid=%d sim=%d\n", ps.Grid, ps.Simulated)
	for _, mech := range apps.Mechanisms {
		if tol, ok := ps.Tolerance[mech]; ok {
			s += fmt.Sprintf("tol %v %.9g\n", mech, tol)
		}
	}
	for _, pt := range ps.Points {
		s += fmt.Sprintf("x=%.9g", pt.X)
		for _, mech := range apps.Mechanisms {
			if p, ok := pt.Pred[mech]; ok {
				s += fmt.Sprintf(" %v:%d:%.9g:%.9g", mech, p.Cycles, p.Confidence, p.Rho)
			}
			if r, ok := pt.Sim[mech]; ok {
				s += fmt.Sprintf(" sim:%d", r.Cycles)
			}
		}
		s += "\n"
	}
	return s
}

// TestPredictedSweepDeterministic: two predicted sweeps of the same
// grid — fresh runner each, so every simulation and model build
// repeats — are byte-identical. Runs under the race suite, which also
// certifies the concurrent validation batch.
func TestPredictedSweepDeterministic(t *testing.T) {
	run := func() string {
		r := NewRunner(0)
		ps, err := r.PredictedClockSweep(EM3D, ScaleTiny, []apps.Mechanism{apps.SM, apps.MPPoll},
			machine.DefaultConfig(), []float64{20, 16}, PredictOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return flattenPredictions(ps)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two predictions of the same run differ:\n%s\nvs:\n%s", a, b)
	}
}

// TestPredictedSweepPruned: the pruned sweep must reach the same
// mechanism verdicts as the fully validated one — same fastest
// mechanism at every point, same crossover presence — while simulating
// fewer points.
func TestPredictedSweepPruned(t *testing.T) {
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll, apps.Bulk}
	grid := []float64{20, 16, 14}
	full, err := NewRunner(0).PredictedClockSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(), grid, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := NewRunner(0).PredictedClockSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(), grid, PredictOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.FastestPerPoint(), pruned.FastestPerPoint()) {
		t.Errorf("pruned verdicts %v differ from validated verdicts %v",
			pruned.FastestPerPoint(), full.FastestPerPoint())
	}
	for i := range mechs {
		for j := i + 1; j < len(mechs); j++ {
			_, fullX := Crossover(full.HybridPoints(), mechs[i], mechs[j])
			_, prunedX := Crossover(pruned.HybridPoints(), mechs[i], mechs[j])
			if fullX != prunedX {
				t.Errorf("%v/%v crossover presence differs: validated %v, pruned %v",
					mechs[i], mechs[j], fullX, prunedX)
			}
		}
	}
	if pruned.Simulated > full.Simulated {
		t.Errorf("pruning simulated %d of %d mechanism-points, validation %d",
			pruned.Simulated, pruned.Grid, full.Simulated)
	}
	if pruned.Simulated >= pruned.Grid {
		t.Errorf("pruning saved nothing: %d simulations for a %d-point grid", pruned.Simulated, pruned.Grid)
	}
}

// TestPredictedContextSwitchSweep: the Figure 10 planner's reference
// mechanisms are flat — one instrumented run stands at every point —
// and the shared-memory base point is exact like every other sweep's.
func TestPredictedContextSwitchSweep(t *testing.T) {
	r := NewRunner(0)
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	ps, err := r.PredictedContextSwitchSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(),
		[]int64{15, 50}, PredictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := ps.Points[0]
	if pred, sim := base.Pred[apps.SM], base.Sim[apps.SM]; pred.Cycles != sim.Cycles {
		t.Errorf("SM base point: predicted %d, simulated %d; must be exact", pred.Cycles, sim.Cycles)
	}
	for i := range ps.Points {
		if pred, sim := ps.Points[i].Pred[apps.MPPoll], ps.Points[i].Sim[apps.MPPoll]; pred.Cycles != sim.Cycles {
			t.Errorf("MP-poll reference at point %d: predicted %d, simulated %d; the flat line is its own base",
				i, pred.Cycles, sim.Cycles)
		}
	}
	if tol, ok := ps.Tolerance[apps.SM]; !ok || (tol <= 15 && !math.IsInf(tol, 1)) {
		t.Errorf("SM latency tolerance = %v cycles, want > the 15-cycle base or +Inf", tol)
	}
}
