package core

import (
	"testing"

	"repro/internal/machine"
)

func TestMeasureLogPAlewife(t *testing.T) {
	lp := MeasureLogP(machine.DefaultConfig())
	if lp.P != 32 {
		t.Errorf("P = %d, want 32", lp.P)
	}
	// Overhead: roughly half the ~85-cycle null message cost per side.
	if lp.O < 15 || lp.O > 80 {
		t.Errorf("o = %.1f cycles, want ~25-60", lp.O)
	}
	// Latency: positive, below the full round trip.
	if lp.L <= 0 || lp.L > 100 {
		t.Errorf("L = %.1f cycles, implausible", lp.L)
	}
	// Gap: bounded below by the sender's per-message occupancy and above
	// by something sane.
	if lp.G < 5 || lp.G > 200 {
		t.Errorf("g = %.1f cycles, implausible", lp.G)
	}
}

func TestLogPScalesWithMachine(t *testing.T) {
	base := MeasureLogP(machine.DefaultConfig())
	slow := machine.DefaultConfig()
	slow.HopLatency *= 8
	lp := MeasureLogP(slow)
	if lp.L <= base.L {
		t.Errorf("8x hop latency: L %.1f not above base %.1f", lp.L, base.L)
	}
	// Overheads are processor-side: unchanged.
	if d := lp.O - base.O; d > 5 || d < -5 {
		t.Errorf("overhead moved with network latency: %.1f vs %.1f", lp.O, base.O)
	}
}
