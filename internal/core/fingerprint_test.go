package core

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mesh"
)

// fingerprintBase is a baseline RunConfig whose normalization knobs are
// all active (nonzero cross-traffic, nonempty fault and noise specs), so
// fingerprint collapses nothing and every field perturbation must change
// the key.
func fingerprintBase() RunConfig {
	rc := RunConfig{App: EM3D, Scale: ScaleTiny}
	rc.Machine.ClockMHz = 20
	rc.Machine.CrossTraffic = mesh.CrossTraffic{MsgBytes: 64, BytesPerCycle: 8}
	rc.Machine.FaultSpec = "jitter:p=0.1"
	rc.Machine.FaultSeed = 7
	rc.Machine.NoiseSpec = "hostnoise:node=*,dist=exp,mean=1us"
	rc.Machine.NoiseSeed = 11
	return rc
}

// TestFingerprintCoversAllFields is the runtime twin of the static
// simlint/fingerprint check: it perturbs every leaf field of RunConfig
// (recursively, via reflection) and asserts the memo key changes. A
// newly added config field that fingerprint normalizes away
// unconditionally — silently aliasing distinct runs in the cache —
// fails here even if the analyzer cannot prove it.
func TestFingerprintCoversAllFields(t *testing.T) {
	base := fingerprintBase()
	key := fingerprint(base)
	leaves := leafFields(reflect.TypeOf(base), nil, "")
	if len(leaves) < 10 {
		t.Fatalf("suspiciously few RunConfig leaf fields (%d); reflection walk broken?", len(leaves))
	}
	for _, leaf := range leaves {
		if leaf.path == "Machine.Shards" {
			// Fully normalized on this base: the cross-traffic and
			// jitter-fault knobs force the serial engine at every Shards
			// value, so aliasing them is correct. The field's semantic
			// boundary — serial vs tiled — is covered by
			// TestFingerprintShards.
			continue
		}
		if leaf.path == "Machine.CritEdgeCap" {
			// Fully normalized on this base (CritPath off makes the ring
			// capacity inert); the CritPath-on boundary is covered by
			// TestFingerprintCritEdgeCap.
			continue
		}
		mut := base
		f := reflect.ValueOf(&mut).Elem().FieldByIndex(leaf.index)
		perturb(t, leaf.path, f)
		if fingerprint(mut) == key {
			t.Errorf("perturbing RunConfig.%s does not change the fingerprint: distinct runs would alias one memo entry", leaf.path)
		}
	}
}

// TestFingerprintShards pins the Shards normalization: serial and tiled
// runs of one config key apart (the engines order congested link
// reservations differently), while worker counts within each engine
// alias (the tiled result is identical at every worker count, and a
// forced-serial run equals an auto-serial one).
func TestFingerprintShards(t *testing.T) {
	rc := RunConfig{App: EM3D, Scale: ScaleTiny}
	rc.Machine = machine.DefaultConfig() // 8x4: tilable, below the auto threshold
	serial := fingerprint(rc)
	rc.Machine.Shards = 1
	tiled := fingerprint(rc)
	if serial == tiled {
		t.Fatal("serial and tiled runs alias one memo entry")
	}
	rc.Machine.Shards = 4
	if fingerprint(rc) != tiled {
		t.Fatal("tiled worker counts key separately; identical results would simulate repeatedly")
	}
	rc.Machine.Shards = -1
	if fingerprint(rc) != serial {
		t.Fatal("forced-serial and auto-serial runs key separately")
	}
}

// TestFingerprintCritEdgeCap pins the edge-cap normalization: the ring
// capacity is inert — normalized away — without the critical-path
// profiler, and meaningful with it (the cap decides which edges the
// cached recorder and top-edge summary retain), so instrumented runs at
// different caps never alias while incidentally-capped plain runs do.
func TestFingerprintCritEdgeCap(t *testing.T) {
	rc := RunConfig{App: EM3D, Scale: ScaleTiny}
	rc.Machine = machine.DefaultConfig()
	plain := fingerprint(rc)
	rc.Machine.CritEdgeCap = 1 << 17
	if fingerprint(rc) != plain {
		t.Fatal("edge cap without CritPath changes the key; inert configs would simulate repeatedly")
	}
	rc.Machine.CritPath = true
	capped1 := fingerprint(rc)
	if capped1 == plain {
		t.Fatal("CritPath does not change the key; instrumented runs would alias plain ones")
	}
	rc.Machine.CritEdgeCap = 1 << 16
	if fingerprint(rc) == capped1 {
		t.Fatal("edge caps alias one memo entry under CritPath; differently-truncated edge streams would be shared")
	}
}

// TestFingerprintNoise pins the noise normalization: the seed is inert —
// normalized away — without a noise spec, and meaningful with one, so
// distinct noisy runs never alias while incidentally-seeded quiet runs
// always do.
func TestFingerprintNoise(t *testing.T) {
	rc := RunConfig{App: EM3D, Scale: ScaleTiny}
	rc.Machine = machine.DefaultConfig()
	quiet := fingerprint(rc)
	rc.Machine.NoiseSeed = 99
	if fingerprint(rc) != quiet {
		t.Fatal("noise seed without a noise spec changes the key; inert configs would simulate repeatedly")
	}
	rc.Machine.NoiseSpec = "netnoise:node=*,dist=uniform,mean=200ns"
	noisy1 := fingerprint(rc)
	if noisy1 == quiet {
		t.Fatal("noise spec does not change the key; noisy runs would alias quiet ones")
	}
	rc.Machine.NoiseSeed = 100
	if fingerprint(rc) == noisy1 {
		t.Fatal("noise seeds alias one memo entry; a seed sweep would measure one run")
	}
}

// TestRunConfigValueSemantics asserts every field reachable from
// RunConfig is a pure value type: no pointers, slices, maps, channels,
// funcs, or interfaces. Struct equality on the memo key is only
// semantic equality under this property (the static check proves the
// same; this catches kinds it might not see through).
func TestRunConfigValueSemantics(t *testing.T) {
	var walk func(path string, ty reflect.Type)
	walk = func(path string, ty reflect.Type) {
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Chan,
			reflect.Func, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("RunConfig%s has reference type %s; memo-key equality would compare identity, not content", path, ty)
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				walk(path+"."+f.Name, f.Type)
			}
		case reflect.Array:
			walk(path+"[]", ty.Elem())
		}
	}
	walk("", reflect.TypeOf(RunConfig{}))
}

// leaf is one settable basic-kind field path of a struct type.
type leaf struct {
	path  string
	index []int
}

func leafFields(ty reflect.Type, index []int, path string) []leaf {
	var out []leaf
	for i := 0; i < ty.NumField(); i++ {
		f := ty.Field(i)
		idx := append(append([]int(nil), index...), i)
		p := f.Name
		if path != "" {
			p = path + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct {
			out = append(out, leafFields(f.Type, idx, p)...)
			continue
		}
		out = append(out, leaf{path: p, index: idx})
	}
	return out
}

// perturb changes f to a different value of its kind.
func perturb(t *testing.T, path string, f reflect.Value) {
	t.Helper()
	switch f.Kind() {
	case reflect.Bool:
		f.SetBool(!f.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		f.SetInt(f.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		f.SetUint(f.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		f.SetFloat(f.Float() + 1.5)
	case reflect.String:
		f.SetString(f.String() + "x")
	default:
		t.Fatalf("RunConfig.%s has unhandled kind %s; extend perturb (and check the field keeps value semantics)", path, f.Kind())
	}
}
