package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/machine"
)

// TestSweepRerunByteIdentical runs the same tiny sweep twice on fresh
// runners (so nothing is served from cache) and requires the results —
// and the figure data generated from them — to be byte-identical. This
// is the end-to-end determinism guarantee the paper's Figures 7–10
// rest on: re-running an experiment reproduces its data exactly.
// TestParallelSweepsMatchSerial covers parallel-vs-serial equivalence;
// this covers run-to-run equivalence. Run under -race via `make check`.
func TestSweepRerunByteIdentical(t *testing.T) {
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	run := func() ([]core.SweepPoint, []byte) {
		t.Helper()
		r := core.NewRunner(0)
		pts, err := r.ClockSweep(core.EM3D, core.ScaleTiny, mechs, machine.DefaultConfig(), []float64{20, 14})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := figures.WriteSweepCSV(&buf, "net_latency_cycles", mechs, pts); err != nil {
			t.Fatal(err)
		}
		return pts, buf.Bytes()
	}
	pts1, csv1 := run()
	pts2, csv2 := run()
	if !reflect.DeepEqual(pts1, pts2) {
		t.Error("re-running the same sweep on a fresh runner produced different results")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("figure data differs between identical sweep runs:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
}
