package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Telemetry is the runner's host-side observability sink: a JSONL run
// log, a throttled progress heartbeat, per-run Perfetto timelines and
// metrics snapshots, and text trace dumps. All fields are optional;
// leave one nil/empty to disable that sink. Attach with
// Runner.SetTelemetry before starting sweeps.
//
// Host/sim split: this file is deliberately outside the simulator-facing
// packages — it observes the host wall clock (run durations, heartbeat
// throttling), which simlint's wallclock check bans inside the
// simulation. Nothing here feeds back into simulated state; the
// simulation-side data it serializes (timelines, metrics snapshots) is a
// deterministic function of the RunConfig, so those files are
// byte-identical across runs. The run log is not (it records wall time).
type Telemetry struct {
	// RunLog receives one JSON line per Runner.Run call (cache hits
	// included, marked memo=hit).
	RunLog io.Writer
	// Heartbeat receives throttled one-line progress reports.
	Heartbeat io.Writer
	// TimelineDir, when nonempty, receives <run>.json Perfetto timelines
	// and <run>.metrics.txt registry snapshots for every executed run
	// that recorded them (see machine.Config.Metrics/SpanCap/TraceCap).
	TimelineDir string
	// TraceOut receives a text dump of every executed run's trace.Buffer
	// (see machine.Config.TraceCap), delimited by header lines.
	TraceOut io.Writer

	mu       sync.Mutex
	enc      *json.Encoder
	done     int
	hits     int
	fails    int
	lastBeat time.Time
}

// RunRecord is one sweep run's log entry, serialized as a JSON line.
type RunRecord struct {
	Fingerprint string  `json:"fingerprint"`          // canonical RunConfig hash
	App         string  `json:"app"`                  // application name
	Mech        string  `json:"mech"`                 // communication mechanism
	Scale       string  `json:"scale"`                // workload scale
	Memo        string  `json:"memo"`                 // "hit" or "miss"
	WallMS      float64 `json:"wall_ms"`              // host time spent (≈0 for hits)
	SimCycles   int64   `json:"sim_cycles,omitempty"` // completion time, processor cycles
	FaultSpec   string  `json:"fault_spec,omitempty"` // canonical fault injection spec
	NoiseSpec   string  `json:"noise_spec,omitempty"` // canonical stochastic noise spec
	NoiseSeed   uint64  `json:"noise_seed,omitempty"` // noise stream seed (meaningful with noise_spec)

	// Per-run noise accounting (omitted when no noise was injected).
	NoiseSamples    int64 `json:"noise_samples,omitempty"`     // stochastic draws that injected time
	NoiseInjectedPs int64 `json:"noise_injected_ps,omitempty"` // total simulated time injected, ps

	Shards   int      `json:"shards,omitempty"`        // configured tiled-engine workers (0 = serial; auto runs may be clamped to GOMAXPROCS)
	Tiles    int      `json:"tiles,omitempty"`         // tiled-engine tile count (0 = serial engine)
	Windows  uint64   `json:"windows,omitempty"`       // conservative windows executed (0 = serial engine)
	Engine   string   `json:"engine"`                  // "tiled" or "serial"
	Reason   string   `json:"serial_reason,omitempty"` // why the serial engine ran (Config field name)
	Outcome  string   `json:"outcome"`                 // "ok", "stall", or "crash"
	Error    string   `json:"error,omitempty"`         // failure detail
	HotLinks []string `json:"hot_links,omitempty"`     // top-3 mesh links by bytes (+ machine-wide p99 hop wait when metrics ran)

	// Crit is the critical-path summary (omitted unless the run was
	// profiled with machine.Config.CritPath).
	Crit *CritRecord `json:"crit,omitempty"`
}

// CritRecord is the runlog's critical-path summary: category cycles
// summing to total_cycles, plus the longest recorded causal edges
// rendered "kind src->dst [start,end)cyc lat=N bw=N".
type CritRecord struct {
	Node     int      `json:"node"`
	Total    int64    `json:"total_cycles"`
	Compute  int64    `json:"compute"`
	MemStall int64    `json:"mem_stall"`
	NetLat   int64    `json:"net_latency"`
	NetBW    int64    `json:"net_bandwidth"`
	Sync     int64    `json:"sync"`
	TopEdges []string `json:"top_edges,omitempty"`
}

// FingerprintLabel returns a stable 16-hex-digit hash of rc's canonical
// fingerprint: the same configuration always maps to the same label, and
// it names the run's telemetry files and log records.
func FingerprintLabel(rc RunConfig) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", fingerprint(rc))
	return fmt.Sprintf("%016x", h.Sum64())
}

// runName builds the telemetry file stem for one run.
func runName(rc RunConfig) string {
	return fmt.Sprintf("%s_%s_%s", rc.App, rc.Mech, FingerprintLabel(rc))
}

// observe records one completed Runner.Run call. memo marks cache hits.
func (t *Telemetry) observe(rc RunConfig, res RunResult, err error, wall time.Duration, memo bool) {
	if t == nil {
		return
	}
	if !memo && err == nil {
		t.writeArtifacts(rc, res)
	}
	rec := RunRecord{
		Fingerprint: FingerprintLabel(rc),
		App:         string(rc.App),
		Mech:        rc.Mech.String(),
		Scale:       rc.Scale.String(),
		Memo:        "miss",
		WallMS:      float64(wall.Microseconds()) / 1000,
		FaultSpec:   rc.Machine.FaultSpec,
		NoiseSpec:   rc.Machine.NoiseSpec,
		Shards:      rc.Machine.EffectiveShards(),
		Outcome:     "ok",
	}
	if rc.Machine.NoiseSpec != "" {
		rec.NoiseSeed = rc.Machine.NoiseSeed
	}
	if rc.Machine.Tiled() {
		rec.Engine = "tiled"
	} else {
		rec.Engine = "serial"
		rec.Reason = rc.Machine.SerialReason()
	}
	if memo {
		rec.Memo = "hit"
	}
	switch {
	case err == nil:
		rec.SimCycles = res.Cycles
		rec.Tiles = res.Tiles
		rec.Windows = res.Windows
		rec.NoiseSamples = res.Noise.Samples()
		rec.NoiseInjectedPs = res.Noise.InjectedPs()
		p99 := ""
		if res.Obs != nil {
			if h := res.Obs.FindHistogram("mesh_hop_wait_ps", ""); h != nil {
				p99 = fmt.Sprintf(" p99wait=%dps", h.P99())
			}
		}
		for _, l := range res.Links {
			rec.HotLinks = append(rec.HotLinks,
				fmt.Sprintf("%s(%d<->%d) bytes=%d util=%.3f%s", l.Link, l.A, l.B, l.Bytes, l.Utilization, p99))
		}
		if cp := res.CritPath; cp != nil {
			cr := &CritRecord{
				Node: cp.Node, Total: cp.TotalCycles,
				Compute: cp.Compute, MemStall: cp.MemStall,
				NetLat: cp.NetLatency, NetBW: cp.NetBandwidth, Sync: cp.Sync,
			}
			for _, e := range cp.TopEdges {
				cr.TopEdges = append(cr.TopEdges, fmt.Sprintf("%s %d->%d [%d,%d)cyc lat=%d bw=%d",
					e.Kind, e.Src, e.Dst, e.StartCycles, e.EndCycles, e.LatCycles, e.BWCycles))
			}
			rec.Crit = cr
		}
	default:
		rec.Outcome = "crash"
		rec.Error = err.Error()
		if re, ok := err.(*RunError); ok && re.Stall != nil {
			rec.Outcome = "stall"
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if memo {
		t.hits++
	}
	if err != nil {
		t.fails++
	}
	if t.RunLog != nil {
		if t.enc == nil {
			t.enc = json.NewEncoder(t.RunLog)
		}
		t.enc.Encode(&rec) // best-effort: a full disk must not kill the sweep
	}
	if t.Heartbeat != nil {
		// Throttle to ~2 lines/second so huge sweeps stay readable.
		if now := time.Now(); now.Sub(t.lastBeat) >= 500*time.Millisecond {
			t.lastBeat = now
			fmt.Fprintf(t.Heartbeat, "telemetry: %d runs done (%d cache hits, %d failed), last %s/%s %s\n",
				t.done, t.hits, t.fails, rec.App, rec.Mech, rec.Outcome)
		}
	}
}

// writeArtifacts emits the per-run timeline, metrics snapshot, and trace
// dump for an executed (non-memoized) successful run. Single-flight
// execution guarantees each configuration writes its files exactly once;
// the contents are a deterministic function of the RunConfig.
func (t *Telemetry) writeArtifacts(rc RunConfig, res RunResult) {
	clk := sim.NewClock(rc.Machine.ClockMHz)
	name := runName(rc)
	if t.TimelineDir != "" && (res.Spans != nil || res.Trace != nil || res.Crit != nil) {
		var spans []obs.Span
		var events []trace.Event
		var edges []obs.CritEdge
		if res.Spans != nil {
			spans = res.Spans.Spans()
		}
		if res.Trace != nil {
			events = res.Trace.Events()
		}
		if res.Crit != nil {
			edges = res.Crit.Edges()
		}
		t.toFile(filepath.Join(t.TimelineDir, name+".json"), func(w io.Writer) error {
			return obs.WriteTimeline(w, clk, spans, events, edges)
		})
	}
	if t.TimelineDir != "" && res.Obs != nil {
		t.toFile(filepath.Join(t.TimelineDir, name+".metrics.txt"), func(w io.Writer) error {
			return res.Obs.WriteText(w)
		})
	}
	if t.TraceOut != nil && res.Trace != nil {
		t.mu.Lock()
		fmt.Fprintf(t.TraceOut, "== trace %s (%d events, %d retained) ==\n",
			name, res.Trace.Total(), len(res.Trace.Events()))
		res.Trace.Dump(t.TraceOut, clk)
		t.mu.Unlock()
	}
}

// toFile writes one telemetry artifact, reporting failures to stderr
// rather than failing the sweep (telemetry must never break science).
func (t *Telemetry) toFile(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		return
	}
	werr := fn(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %s: %v\n", path, werr)
	}
}
