package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
)

// benchClockSweep runs the Figure 9 sweep on a fresh runner of the given
// width (fresh so memoization cannot cross iterations and the benchmark
// measures real simulation work).
func benchClockSweep(b *testing.B, workers int) {
	b.ReportAllocs()
	mechs := []apps.Mechanism{apps.SM, apps.SMPrefetch, apps.MPPoll}
	for i := 0; i < b.N; i++ {
		r := NewRunner(workers)
		if _, err := r.ClockSweep(EM3D, ScaleTiny, mechs, machine.DefaultConfig(),
			[]float64{20, 18, 16, 14}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClockSweepSerial is the seed execution model: one run at a time.
func BenchmarkClockSweepSerial(b *testing.B) { benchClockSweep(b, 1) }

// BenchmarkClockSweepParallel fans the 12 runs out over GOMAXPROCS workers.
func BenchmarkClockSweepParallel(b *testing.B) { benchClockSweep(b, 0) }

// BenchmarkContextSwitchSweepMemoized measures the Figure 10 sweep with
// hoisted reference runs: 4 message-passing runs total instead of 20.
func BenchmarkContextSwitchSweepMemoized(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(0)
		if _, err := r.ContextSwitchSweep(EM3D, ScaleTiny, apps.Mechanisms,
			machine.DefaultConfig(), []int64{15, 25, 50, 100, 200}); err != nil {
			b.Fatal(err)
		}
	}
}
