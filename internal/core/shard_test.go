package core_test

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/machine"
	"repro/internal/sim"
)

// tiledTinyConfig is the Figure 4 machine forced onto the tiled engine
// with n workers (8x4 tiles into 4 row bands; n <= 4).
func tiledTinyConfig(n int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Shards = n
	return cfg
}

// TestTiledEquivalenceWorkers is the deep-equal-under-race proof for the
// tiled engine: the full Figure 4 tiny matrix (every app x mechanism)
// produces identical results — and byte-identical figure CSV — at 1, 2,
// and 4 shards. Tiles are fixed by geometry, so worker count is pure
// scheduling; any divergence is a determinism bug. Run under -race via
// `make check`.
func TestTiledEquivalenceWorkers(t *testing.T) {
	run := func(shards int) ([]core.RunResult, []byte) {
		t.Helper()
		var jobs []core.RunConfig
		for _, app := range core.AppNames {
			for _, mech := range apps.Mechanisms {
				jobs = append(jobs, core.RunConfig{
					App: app, Mech: mech, Scale: core.ScaleTiny,
					Machine: tiledTinyConfig(shards), SkipValidate: false,
				})
			}
		}
		var out []core.RunResult
		rows := make([]figures.Fig4Row, 0, len(jobs))
		for _, rc := range jobs {
			res, err := core.Run(rc)
			if err != nil {
				t.Fatalf("shards=%d %s/%s: %v", shards, rc.App, rc.Mech, err)
			}
			out = append(out, res)
			rows = append(rows, figures.Fig4Row{App: rc.App, Res: res})
		}
		var buf bytes.Buffer
		if err := figures.WriteFig4CSV(&buf, rows); err != nil {
			t.Fatal(err)
		}
		return out, buf.Bytes()
	}
	ref, refCSV := run(1)
	for _, r := range ref {
		if r.Tiles != 4 || r.Windows == 0 {
			t.Fatalf("%s/%s: tiled run reports tiles=%d windows=%d; the tiled engine did not run",
				r.App, r.Mech, r.Tiles, r.Windows)
		}
	}
	for _, shards := range []int{2, 4} {
		got, gotCSV := run(shards)
		if !reflect.DeepEqual(ref, got) {
			for i := range ref {
				if !reflect.DeepEqual(ref[i], got[i]) {
					t.Fatalf("shards=%d: %s/%s differs from the 1-shard run:\n1: %+v\n%d: %+v",
						shards, ref[i].App, ref[i].Mech, ref[i].Result, shards, got[i].Result)
				}
			}
		}
		if !bytes.Equal(refCSV, gotCSV) {
			t.Fatalf("shards=%d: Figure 4 CSV differs from the 1-shard run", shards)
		}
	}
}

// TestTiledObsEquivalence is the shard-safety proof for the
// observability stack: with every sink enabled — metrics, trace ring,
// span ring, critical-path profiler — a tiled run produces byte-identical
// metrics snapshots, identical span/trace ring contents, the same
// critical-path attribution, and the same merged causal-edge stream at
// 1, 2, and 4 workers. Run under -race via `make check`.
func TestTiledObsEquivalence(t *testing.T) {
	run := func(mech apps.Mechanism, shards int) core.RunResult {
		t.Helper()
		cfg := tiledTinyConfig(shards)
		cfg.Metrics = true
		cfg.TraceCap = 512
		cfg.SpanCap = 512
		cfg.CritPath = true
		res, err := core.Run(core.RunConfig{
			App: core.EM3D, Mech: mech, Scale: core.ScaleTiny, Machine: cfg,
		})
		if err != nil {
			t.Fatalf("%s shards=%d: %v", mech, shards, err)
		}
		if res.Tiles == 0 {
			t.Fatalf("%s shards=%d: run was not tiled", mech, shards)
		}
		return res
	}
	snapshot := func(res core.RunResult) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := res.Obs.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	netShare := map[apps.Mechanism]float64{}
	for _, mech := range []apps.Mechanism{apps.SM, apps.MPPoll} {
		ref := run(mech, 1)
		refSnap := snapshot(ref)
		for _, shards := range []int{2, 4} {
			got := run(mech, shards)
			if snap := snapshot(got); !bytes.Equal(refSnap, snap) {
				t.Errorf("%s: metrics snapshot at %d workers differs from 1 worker", mech, shards)
			}
			if !reflect.DeepEqual(ref.Trace.Events(), got.Trace.Events()) ||
				ref.Trace.Total() != got.Trace.Total() {
				t.Errorf("%s: trace ring at %d workers differs from 1 worker", mech, shards)
			}
			if !reflect.DeepEqual(ref.Spans.Spans(), got.Spans.Spans()) ||
				ref.Spans.Total() != got.Spans.Total() {
				t.Errorf("%s: span ring at %d workers differs from 1 worker", mech, shards)
			}
			if !reflect.DeepEqual(ref.CritPath, got.CritPath) {
				t.Errorf("%s: critical-path summary at %d workers differs from 1 worker:\n1: %+v\n%d: %+v",
					mech, shards, ref.CritPath, shards, got.CritPath)
			}
			if !reflect.DeepEqual(ref.Crit.Edges(), got.Crit.Edges()) {
				t.Errorf("%s: causal-edge stream at %d workers differs from 1 worker", mech, shards)
			}
		}
		if cp := ref.CritPath; cp == nil {
			t.Errorf("%s: no critical-path summary", mech)
		} else {
			if sum := cp.Compute + cp.MemStall + cp.NetLatency + cp.NetBandwidth + cp.Sync; sum != cp.TotalCycles {
				t.Errorf("%s: categories sum to %d of %d total cycles", mech, sum, cp.TotalCycles)
			}
			netShare[mech] = float64(cp.NetLatency+cp.NetBandwidth) / float64(cp.TotalCycles)
		}
	}
	// The Figure S2 finding as a share gap: shared memory's critical path
	// carries substantial network round-trip time (the slack that damps an
	// injected delay), while message passing's waits are producer
	// synchronization with almost no exposed network time — which is why
	// injected delay propagates to MP runtime nearly undamped.
	if netShare[apps.SM] <= 2*netShare[apps.MPPoll] {
		t.Errorf("network share of the critical path: SM %.4f vs MP-poll %.4f; expected SM well above MP",
			netShare[apps.SM], netShare[apps.MPPoll])
	}
}

// TestShardsAutoSelection pins the -shards policy: auto keeps small
// machines serial and tiles at AutoShardNodes and above; forcing works
// both ways; observability capture is shard-safe and stays tiled, while
// genuinely unsupported configs (jitter faults) fall back to serial even
// when forced.
func TestShardsAutoSelection(t *testing.T) {
	small := machine.DefaultConfig()
	if small.Tiled() || small.EffectiveShards() != 0 {
		t.Errorf("32-node auto config chose the tiled engine")
	}
	big, err := machine.ConfigForNodes(machine.AutoShardNodes)
	if err != nil {
		t.Fatal(err)
	}
	if !big.Tiled() || big.EffectiveShards() != machine.AutoShardWorkers {
		t.Errorf("%d-node auto config: tiled=%v shards=%d, want tiled with %d workers",
			machine.AutoShardNodes, big.Tiled(), big.EffectiveShards(), machine.AutoShardWorkers)
	}
	forcedOff := big
	forcedOff.Shards = -1
	if forcedOff.Tiled() {
		t.Errorf("Shards=-1 did not force the serial engine")
	}
	forcedOn := small
	forcedOn.Shards = 2
	if !forcedOn.Tiled() || forcedOn.EffectiveShards() != 2 {
		t.Errorf("Shards=2 on a 32-node config: tiled=%v shards=%d", forcedOn.Tiled(), forcedOn.EffectiveShards())
	}
	obsOn := forcedOn
	obsOn.Metrics = true
	obsOn.TraceCap = 256
	obsOn.SpanCap = 256
	obsOn.CritPath = true
	if !obsOn.Tiled() {
		t.Errorf("observability run fell back to the serial engine; capture is shard-safe")
	}
	jitter := forcedOn
	jitter.FaultSpec = "jitter:max=100ns,prob=0.5"
	if jitter.Tiled() {
		t.Errorf("jittered-fault run did not fall back to the serial engine")
	}
	outage := forcedOn
	outage.FaultSpec = "outage:node=3,start=10us,dur=20us"
	if !outage.Tiled() {
		t.Errorf("outage-fault run fell back to the serial engine; read-only fault windows are tiling-safe")
	}
}

// TestBudgetWorkers pins the sweep-worker / per-run-shard core split.
func TestBudgetWorkers(t *testing.T) {
	for _, c := range []struct{ jobs, shards, want int }{
		{16, 4, 4}, {16, 0, 16}, {8, 4, 2}, {4, 4, 1}, {2, 4, 1}, {5, 2, 2},
	} {
		if got := core.BudgetWorkers(c.jobs, c.shards); got != c.want {
			t.Errorf("BudgetWorkers(%d, %d) = %d, want %d", c.jobs, c.shards, got, c.want)
		}
	}
}

// stallBlame runs EM3D tiny against a from-the-start link outage long
// enough to trip the run deadline, and returns the watchdog diagnostic.
func stallBlame(t *testing.T, shards int) *sim.StallError {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Shards = shards
	// All of node 3's links go dark at t=0 for a full second — far past
	// the deadline — so the run cannot complete and the watchdog fires.
	cfg.FaultSpec = "outage:node=3,start=0us,dur=1000000us"
	cfg.DeadlineCycles = 2_000_000
	_, err := core.Run(core.RunConfig{
		App: core.EM3D, Mech: apps.MPPoll, Scale: core.ScaleTiny,
		Machine: cfg, SkipValidate: true,
	})
	if err == nil {
		t.Fatalf("shards=%d: outage run completed; expected a deadline stall", shards)
	}
	re, ok := err.(*core.RunError)
	if !ok || re.Stall == nil {
		t.Fatalf("shards=%d: outage run failed without a stall diagnostic: %v", shards, err)
	}
	return re.Stall
}

// TestStallBlameUnderSharding is the watchdog-blame regression for the
// tiled engine: a link outage must produce the same stall kind and blame
// the same blocked threads (names and wait reasons) whether the run is
// serial or sharded — and the sharded diagnostic must agree exactly,
// times included, across worker counts.
func TestStallBlameUnderSharding(t *testing.T) {
	serial := stallBlame(t, -1)
	tiled1 := stallBlame(t, 1)
	tiled4 := stallBlame(t, 4)

	// Worker count is pure scheduling: the whole diagnostic — blame,
	// times, dispatch count — deep-equals between 1 and 4 workers. Notes
	// are excluded: subsystem dumps (directory state, link occupancy)
	// iterate Go maps, so their order is not deterministic.
	tiled1.Notes, tiled4.Notes = nil, nil
	if !reflect.DeepEqual(tiled1, tiled4) {
		t.Errorf("tiled stall diagnostic differs across worker counts:\n1: %+v\n4: %+v", tiled1, tiled4)
	}

	// The serial engine orders congested links differently, so times may
	// drift — but the stall kind and the set of blamed threads (with
	// their wait reasons) must match.
	if serial.Kind != tiled4.Kind {
		t.Errorf("stall kind: serial %v, sharded %v", serial.Kind, tiled4.Kind)
	}
	blame := func(se *sim.StallError) []string {
		var out []string
		for _, b := range se.Blocked {
			out = append(out, b.Name+" "+b.Reason)
		}
		sort.Strings(out)
		return out
	}
	if sb, tb := blame(serial), blame(tiled4); !reflect.DeepEqual(sb, tb) {
		t.Errorf("blamed threads differ:\nserial:  %v\nsharded: %v", sb, tb)
	}
}
