package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/machine"
)

// TestNodeScalingSweepDeterministic: the Figure S1 sweep is a pure
// function of its parameters, across fresh runners and both scaling
// modes. Run under -race this also certifies the concurrent fan-out.
func TestNodeScalingSweepDeterministic(t *testing.T) {
	cfg := machine.DefaultConfig()
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	nodes := []int{32, 64}
	for _, scaled := range []bool{false, true} {
		a, err := NewRunner(0).NodeScalingSweep(EM3D, ScaleTiny, mechs, cfg, nodes, scaled)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewRunner(0).NodeScalingSweep(EM3D, ScaleTiny, mechs, cfg, nodes, scaled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("scaled=%v: two node-scaling sweeps differ", scaled)
		}
	}
}

// TestScalingModesCoincideAtBase: at the paper's 32-node machine the
// problem-growth factor is 1, so weak and strong scaling are the same
// run — the fingerprint normalizes the flag away and the runner serves
// the second mode from cache.
func TestScalingModesCoincideAtBase(t *testing.T) {
	cfg := machine.DefaultConfig()
	rc := RunConfig{App: ICCG, Mech: apps.MPPoll, Scale: ScaleTiny, Machine: cfg, SkipValidate: true}
	weak := rc
	weak.ScaleProblem = true
	if fingerprint(rc) != fingerprint(weak) {
		t.Error("ScaleProblem not normalized away at 32 nodes")
	}
	r := NewRunner(1)
	if _, err := r.Run(rc); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(weak); err != nil {
		t.Fatal(err)
	}
	if hits, executed := r.Stats(); executed != 1 || hits != 1 {
		t.Errorf("executed=%d hits=%d, want the weak-scaled run served from cache", executed, hits)
	}
	// Away from the base size the flag is a real parameter.
	big, err := machine.ConfigForNodes(64)
	if err != nil {
		t.Fatal(err)
	}
	rc.Machine, weak.Machine = big, big
	if fingerprint(rc) == fingerprint(weak) {
		t.Error("ScaleProblem wrongly normalized away at 64 nodes")
	}
}

// TestNodeScalingSweepIsolatesUnpartitionable: a node count the fixed
// workload cannot be cut into (tiny em3d's 320-node graph on 512
// processors) yields a point with no results, not a sweep error — the
// same crash-isolation contract the other sweeps follow.
func TestNodeScalingSweepIsolatesUnpartitionable(t *testing.T) {
	cfg := machine.DefaultConfig()
	pts, err := NewRunner(1).NodeScalingSweep(EM3D, ScaleTiny, []apps.Mechanism{apps.SM},
		cfg, []int{32, 512}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if _, ok := pts[0].Results[apps.SM]; !ok {
		t.Error("32-node point missing its result")
	}
	if len(pts[1].Results) != 0 {
		t.Errorf("512-node point has %d results, want none (unpartitionable)", len(pts[1].Results))
	}
}

// TestNewAppSizedPartitionersDeterministic builds every application
// twice at non-default geometries and requires deep equality: the
// partitioners (block ranges, RCB, graph distribution) must be pure
// functions of (scale, procs), with no hidden global state. Weak
// scaling exercises the problem-growth path too.
func TestNewAppSizedPartitionersDeterministic(t *testing.T) {
	for _, procs := range []int{8, 64, 128} {
		for _, name := range AppNames {
			for _, scaled := range []bool{false, true} {
				a, err := NewAppSized(name, ScaleTiny, procs, scaled)
				if err != nil {
					t.Fatalf("%s at %d procs (scaled=%v): %v", name, procs, scaled, err)
				}
				b, err := NewAppSized(name, ScaleTiny, procs, scaled)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s at %d procs (scaled=%v): two builds differ", name, procs, scaled)
				}
			}
		}
	}
	// Invalid geometries are errors, not panics.
	if _, err := NewAppSized(UNSTRUC, ScaleTiny, 48, false); err == nil {
		t.Error("unstruc accepted non-power-of-two 48 procs")
	}
	if _, err := NewAppSized(MOLDYN, ScaleTiny, 48, false); err == nil {
		t.Error("moldyn accepted non-power-of-two 48 procs")
	}
	if _, err := NewAppSized(EM3D, ScaleTiny, 512, false); err == nil {
		t.Error("em3d accepted more procs than fixed-size graph nodes")
	}
}
