package core_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

// telemetryConfig is one cheap, instrumentation-heavy run: metrics,
// spans, and protocol trace all enabled.
func telemetryConfig() core.RunConfig {
	cfg := machine.DefaultConfig()
	cfg.Metrics = true
	cfg.SpanCap = 2048
	cfg.TraceCap = 1024
	return core.RunConfig{App: core.EM3D, Mech: apps.MPPoll, Scale: core.ScaleTiny,
		Machine: cfg, SkipValidate: true}
}

// TestTelemetryArtifactsByteIdentical runs the same configuration twice
// on fresh runners writing into fresh directories and requires the
// Perfetto timeline and the metrics snapshot to be byte-identical — the
// observability layer's determinism guarantee. Run under -race via
// `make check` (the runner pool makes the telemetry sinks concurrent).
func TestTelemetryArtifactsByteIdentical(t *testing.T) {
	run := func(dir string) {
		t.Helper()
		r := core.NewRunner(2)
		r.SetTelemetry(&core.Telemetry{TimelineDir: dir})
		if _, err := r.Run(telemetryConfig()); err != nil {
			t.Fatal(err)
		}
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	run(dir1)
	run(dir2)
	names, err := filepath.Glob(filepath.Join(dir1, "*"))
	if err != nil || len(names) != 2 {
		t.Fatalf("expected a timeline and a metrics file in %s, got %v (err %v)", dir1, names, err)
	}
	for _, n := range names {
		a, err := os.ReadFile(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, filepath.Base(n)))
		if err != nil {
			t.Fatalf("second run did not produce %s: %v", filepath.Base(n), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical runs", filepath.Base(n))
		}
		if len(a) == 0 {
			t.Errorf("%s is empty", filepath.Base(n))
		}
	}
}

// TestRunLogRecordsMemoization drives the same configuration through one
// runner twice and checks the JSONL log: an executed record, then a
// cache-hit record, both naming the same fingerprint.
func TestRunLogRecordsMemoization(t *testing.T) {
	var log bytes.Buffer
	r := core.NewRunner(1)
	r.SetTelemetry(&core.Telemetry{RunLog: &log})
	rc := telemetryConfig()
	for i := 0; i < 2; i++ {
		if _, err := r.Run(rc); err != nil {
			t.Fatal(err)
		}
	}
	dec := json.NewDecoder(&log)
	var recs []core.RunRecord
	for dec.More() {
		var rec core.RunRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("run log is not valid JSONL: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Memo != "miss" || recs[1].Memo != "hit" {
		t.Errorf("memo flags = %q, %q; want miss, hit", recs[0].Memo, recs[1].Memo)
	}
	if recs[0].Fingerprint == "" || recs[0].Fingerprint != recs[1].Fingerprint {
		t.Errorf("fingerprints = %q, %q; want equal and nonempty", recs[0].Fingerprint, recs[1].Fingerprint)
	}
	for _, rec := range recs {
		if rec.Outcome != "ok" || rec.App != "em3d" || rec.Mech != "mp-poll" || rec.Scale != "tiny" {
			t.Errorf("bad record %+v", rec)
		}
		if rec.SimCycles <= 0 {
			t.Errorf("record missing sim cycles: %+v", rec)
		}
		if len(rec.HotLinks) == 0 || len(rec.HotLinks) > 3 {
			t.Errorf("hot links = %v, want 1..3 entries", rec.HotLinks)
		}
	}
}

// TestRunLogRecordsStallOutcome checks that a watchdog-stalled run is
// logged as outcome "stall" rather than a bare crash.
func TestRunLogRecordsStallOutcome(t *testing.T) {
	var log bytes.Buffer
	r := core.NewRunner(1)
	r.SetTelemetry(&core.Telemetry{RunLog: &log})
	rc := telemetryConfig()
	// A permanent outage from t=0 on every node starves the run; the
	// liveness watchdog turns that into a structured stall.
	rc.Machine.FaultSpec = "outage:node=*,start=0,dur=1s"
	rc.Machine.FaultSeed = 1
	if _, err := r.Run(rc); err == nil {
		t.Skip("total outage did not stall this workload; nothing to log")
	}
	var rec core.RunRecord
	if err := json.Unmarshal(log.Bytes(), &rec); err != nil {
		t.Fatalf("run log: %v", err)
	}
	if rec.Outcome != "stall" && rec.Outcome != "crash" {
		t.Errorf("outcome = %q, want stall or crash", rec.Outcome)
	}
	if rec.Error == "" {
		t.Error("failed run logged without error detail")
	}
}

// TestInstrumentationIsPassive requires the paper-facing measurements of
// an instrumented run to equal an uninstrumented run's exactly: metrics,
// spans, and tracing observe the simulation without perturbing it, so
// enabling them can never change figure data.
func TestInstrumentationIsPassive(t *testing.T) {
	bare := telemetryConfig()
	bare.Machine.Metrics = false
	bare.Machine.SpanCap = 0
	bare.Machine.TraceCap = 0
	plain, err := core.Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := core.Run(telemetryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if instr.Obs == nil || instr.Spans == nil || instr.Trace == nil {
		t.Fatal("instrumented run did not record metrics/spans/trace")
	}
	if !reflect.DeepEqual(plain.Result, instr.Result) {
		t.Errorf("instrumentation perturbed the run:\nplain: %+v\ninstrumented: %+v",
			plain.Result, instr.Result)
	}
}
