// Package machines holds the paper's Table 1 — parameter estimates for
// fourteen 32-processor multiprocessors — and derives Table 2 (the same
// parameters recalculated in units of local cache-miss latency). The data
// is transcribed from the paper; derived columns are recomputed from the
// raw parameters, with the paper's own printed values preserved where its
// arithmetic differs (see PaperBisPerMiss).
package machines
