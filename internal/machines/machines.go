package machines

import "fmt"

// NA marks an unavailable numeric field.
const NA = -1

// Machine is one row of Table 1. Latencies are in processor cycles;
// NetLatency is the one-way transit time of a 24-byte packet.
type Machine struct {
	Name          string
	MHz           float64
	Topology      string
	BisectionMBs  float64 // bisection bandwidth, Mbytes/s (NA if none)
	BytesPerCycle float64 // bisection bytes per processor cycle (NA if none)
	NetLatency    float64 // cycles (NA if unknown)
	RemoteMiss    float64 // cycles (NA if unsupported)
	LocalMiss     float64 // cycles
	Note          string  // "", "projected", or "simulated"

	// PaperBisPerMiss is Table 2's printed bisection-bytes-per-local-miss
	// where it differs from BytesPerCycle*LocalMiss (the paper's FLASH
	// and Origin rows do not follow its own formula); NA elsewhere.
	PaperBisPerMiss float64
}

// Table1 returns the paper's Table 1 rows in printed order.
func Table1() []Machine {
	return []Machine{
		{Name: "MIT Alewife", MHz: 20, Topology: "4x8 Mesh", BisectionMBs: 360, BytesPerCycle: 18.0, NetLatency: 15, RemoteMiss: 50, LocalMiss: 11, PaperBisPerMiss: NA},
		{Name: "TMC CM5", MHz: 33, Topology: "4-ary Fat-Tree", BisectionMBs: 640, BytesPerCycle: 19.4, NetLatency: 50, RemoteMiss: NA, LocalMiss: 16, PaperBisPerMiss: NA},
		{Name: "KSR-2", MHz: 20, Topology: "Ring", BisectionMBs: 1000, BytesPerCycle: 50.0, NetLatency: NA, RemoteMiss: 126, LocalMiss: 18, PaperBisPerMiss: NA},
		{Name: "MIT J-Machine", MHz: 12.5, Topology: "4x4x2 Mesh", BisectionMBs: 3200, BytesPerCycle: 256.0, NetLatency: 7, RemoteMiss: NA, LocalMiss: 7, PaperBisPerMiss: NA},
		{Name: "MIT M-Machine", MHz: 100, Topology: "4x4x2 Mesh", BisectionMBs: 12800, BytesPerCycle: 128.0, NetLatency: 10, RemoteMiss: 154, LocalMiss: 21, Note: "simulated", PaperBisPerMiss: NA},
		{Name: "Intel Delta", MHz: 40, Topology: "4x8 Mesh", BisectionMBs: 216, BytesPerCycle: 5.4, NetLatency: 15, RemoteMiss: NA, LocalMiss: 10, PaperBisPerMiss: NA},
		{Name: "Intel Paragon", MHz: 50, Topology: "4x8 Mesh", BisectionMBs: 2800, BytesPerCycle: 56.0, NetLatency: 12, RemoteMiss: NA, LocalMiss: 10, PaperBisPerMiss: NA},
		{Name: "Stanford DASH", MHz: 33, Topology: "2x4 4-proc clusters", BisectionMBs: 480, BytesPerCycle: 14.5, NetLatency: 31, RemoteMiss: 120, LocalMiss: 30, PaperBisPerMiss: NA},
		{Name: "Stanford FLASH", MHz: 200, Topology: "4x8 Mesh", BisectionMBs: 3200, BytesPerCycle: 16.0, NetLatency: 62, RemoteMiss: 352, LocalMiss: 40, Note: "projected", PaperBisPerMiss: 1248},
		{Name: "Wisconsin T0", MHz: 200, Topology: "none simulated", BisectionMBs: NA, BytesPerCycle: NA, NetLatency: 200, RemoteMiss: 1461, LocalMiss: 40, Note: "simulated", PaperBisPerMiss: NA},
		{Name: "Wisconsin T1", MHz: 200, Topology: "none simulated", BisectionMBs: NA, BytesPerCycle: NA, NetLatency: 200, RemoteMiss: 401, LocalMiss: 40, Note: "simulated", PaperBisPerMiss: NA},
		{Name: "Cray T3D", MHz: 150, Topology: "4x2x2 Torus 2-proc clusters", BisectionMBs: 4800, BytesPerCycle: 32.0, NetLatency: 15, RemoteMiss: 100, LocalMiss: 23, PaperBisPerMiss: NA},
		{Name: "Cray T3E", MHz: 300, Topology: "4x4x2 Torus", BisectionMBs: 19200, BytesPerCycle: 64.0, NetLatency: 110, RemoteMiss: 450, LocalMiss: 80, PaperBisPerMiss: NA},
		{Name: "SGI Origin", MHz: 200, Topology: "Hypercube 4-proc clusters", BisectionMBs: 10800, BytesPerCycle: 54.0, NetLatency: 60, RemoteMiss: 150, LocalMiss: 61, PaperBisPerMiss: 2700},
	}
}

// ByName returns the machine row with the given name.
func ByName(name string) (Machine, error) {
	for _, m := range Table1() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("machines: unknown machine %q", name)
}

// Alewife returns the study's base machine row.
func Alewife() Machine {
	m, _ := ByName("MIT Alewife")
	return m
}

// BisPerLocalMiss returns Table 2's "bisection bytes per local-miss
// time": bytes/cycle times local miss cycles. NA when no network.
func (m Machine) BisPerLocalMiss() float64 {
	if m.BytesPerCycle == NA {
		return NA
	}
	return m.BytesPerCycle * m.LocalMiss
}

// NetLatPerLocalMiss returns Table 2's "network latency in local-miss
// times". NA when the latency is unknown.
func (m Machine) NetLatPerLocalMiss() float64 {
	if m.NetLatency == NA {
		return NA
	}
	return m.NetLatency / m.LocalMiss
}

// RelBisection returns this machine's bisection bandwidth per cycle as a
// fraction of Alewife's (the X-axis of Figure 8, normalized). NA when no
// network.
func (m Machine) RelBisection() float64 {
	if m.BytesPerCycle == NA {
		return NA
	}
	return m.BytesPerCycle / Alewife().BytesPerCycle
}

// RelNetLatency returns this machine's network latency relative to
// Alewife's 15 cycles (the X-axis of Figures 9/10, normalized).
func (m Machine) RelNetLatency() float64 {
	if m.NetLatency == NA {
		return NA
	}
	return m.NetLatency / Alewife().NetLatency
}
