package machines

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mesh"
	"repro/internal/sim"
)

// EmulationNote describes how far an emulated configuration is from the
// real machine it approximates.
type EmulationNote struct {
	SharedMemory bool   // the real machine supports shared memory
	Topology     string // topology substituted in the simulator
	Comment      string
}

// ConfigFor builds a 32-node simulator configuration whose headline
// parameters match a Table 1 row: processor clock, bisection bytes per
// cycle, one-way 24-byte network latency, and local/remote miss
// latencies. Topologies are approximated on the simulator's 8x4 grid —
// tori for the Cray rows, meshes otherwise; fat-tree, ring and hypercube
// rows are approximated by the grid with matched bisection and latency
// (the two parameters the paper's analysis is about).
//
// This realizes the paper's own framing — "we are using the machine as an
// emulator for other hypothetical machines" — in the forward direction:
// run the applications on machines the paper could only tabulate.
func ConfigFor(m Machine) (machine.Config, EmulationNote, error) {
	note := EmulationNote{SharedMemory: m.RemoteMiss != NA}
	if m.BytesPerCycle == NA || m.NetLatency == NA {
		return machine.Config{}, note,
			fmt.Errorf("machines: %s has no network parameters to emulate", m.Name)
	}

	cfg := machine.DefaultConfig()
	cfg.ClockMHz = m.MHz
	clk := sim.NewClock(m.MHz)

	switch m.Name {
	case "Cray T3D", "Cray T3E":
		cfg.Mem.LineWords = 2
		note.Topology = "8x4 torus"
		cfg.CrossTraffic = mesh.CrossTraffic{} // tori don't support the emulation
	default:
		note.Topology = "8x4 mesh"
	}
	torus := note.Topology == "8x4 torus"

	// Per-link bandwidth from the bisection target.
	links := 2 * cfg.Height
	if torus {
		links = 4 * cfg.Height
	}
	cfg.PsPerByte = sim.Time(float64(links) * float64(clk.PsPerCycle()) / m.BytesPerCycle)
	if cfg.PsPerByte < 1 {
		cfg.PsPerByte = 1
	}

	// Per-hop latency from the one-way 24-byte target over the average
	// distance.
	avgHops := 4.0 // 8x4 mesh
	if torus {
		avgHops = 3.0
	}
	target := float64(m.NetLatency) * float64(clk.PsPerCycle())
	ser := 24 * float64(cfg.PsPerByte)
	hop := (target - ser) / (avgHops + 1)
	if hop < float64(clk.PsPerCycle())/10 {
		hop = float64(clk.PsPerCycle()) / 10
		note.Comment = "serialization alone exceeds the latency target; hop latency clamped"
	}
	cfg.HopLatency = sim.Time(hop)

	// Memory system: local miss as published; endpoint costs of a remote
	// miss fitted so request+latency+reply lands near the published
	// remote miss (when the machine has one).
	cfg.Mem.LocalMissCycles = int64(m.LocalMiss)
	if cfg.Mem.LocalMissCycles <= cfg.Mem.HomeOccCycles {
		cfg.Mem.HomeOccCycles = cfg.Mem.LocalMissCycles - 1
		if cfg.Mem.HomeOccCycles < 1 {
			cfg.Mem.HomeOccCycles = 1
		}
	}
	if m.RemoteMiss != NA {
		endpoint := m.RemoteMiss - 2*float64(m.NetLatency)
		if endpoint < 8 {
			endpoint = 8
		}
		cfg.Mem.ReqCycles = int64(endpoint * 0.15)
		cfg.Mem.HomeOccCycles = int64(endpoint * 0.40)
		cfg.Mem.DRAMCycles = int64(endpoint * 0.30)
		cfg.Mem.FillCycles = int64(endpoint * 0.15)
		if cfg.Mem.CtlServiceCycles > cfg.Mem.HomeOccCycles {
			cfg.Mem.CtlServiceCycles = cfg.Mem.HomeOccCycles
		}
	}
	if w, h := cfg.Width, cfg.Height; w*h != 32 {
		return cfg, note, fmt.Errorf("machines: emulation assumes 32 nodes, got %dx%d", w, h)
	}
	cfg.Mem.HdrBytes = 8
	if torus {
		// mesh.Config carried through machine.Config:
		cfg = withTorus(cfg)
	}
	return cfg, note, nil
}

// withTorus flips the topology flag (machine.Config embeds the mesh
// parameters directly).
func withTorus(cfg machine.Config) machine.Config {
	cfg.Torus = true
	return cfg
}

// EmulatableMachines returns the Table 1 rows that have enough network
// parameters to emulate.
func EmulatableMachines() []Machine {
	var out []Machine
	for _, m := range Table1() {
		if m.BytesPerCycle != NA && m.NetLatency != NA {
			out = append(out, m)
		}
	}
	return out
}
