package machines

import (
	"math"
	"testing"
)

func TestTable1HasFourteenRows(t *testing.T) {
	rows := Table1()
	if len(rows) != 14 {
		t.Fatalf("Table 1 has %d rows, want 14", len(rows))
	}
	seen := map[string]bool{}
	for _, m := range rows {
		if seen[m.Name] {
			t.Errorf("duplicate machine %q", m.Name)
		}
		seen[m.Name] = true
		if m.LocalMiss <= 0 {
			t.Errorf("%s: local miss %v", m.Name, m.LocalMiss)
		}
	}
}

func TestAlewifeRow(t *testing.T) {
	a := Alewife()
	if a.MHz != 20 || a.BytesPerCycle != 18 || a.NetLatency != 15 || a.LocalMiss != 11 {
		t.Errorf("Alewife row wrong: %+v", a)
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("Cray T3E")
	if err != nil {
		t.Fatal(err)
	}
	if m.MHz != 300 {
		t.Errorf("T3E MHz = %v", m.MHz)
	}
	if _, err := ByName("PDP-11"); err == nil {
		t.Error("unknown machine did not error")
	}
}

// TestTable2DerivedValues checks our recomputation against the paper's
// printed Table 2 for every row where the paper follows its own formula.
func TestTable2DerivedValues(t *testing.T) {
	want := map[string]struct{ bis, lat float64 }{
		"MIT Alewife":   {198, 1.3},
		"TMC CM5":       {310, 3.1},
		"KSR-2":         {900, NA},
		"MIT J-Machine": {1792, 1.0},
		"MIT M-Machine": {2688, 0.5},
		"Intel Delta":   {54, 1.5},
		"Intel Paragon": {560, 1.2},
		"Stanford DASH": {435, 1.0},
		"Cray T3D":      {736, 0.7},
		"Cray T3E":      {5120, 1.4},
	}
	for name, w := range want {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.BisPerLocalMiss(); math.Abs(got-w.bis) > 0.5 {
			t.Errorf("%s bisection/local-miss = %.1f, want %.1f", name, got, w.bis)
		}
		if w.lat != NA {
			if got := m.NetLatPerLocalMiss(); math.Abs(got-w.lat) > 0.11 {
				t.Errorf("%s net-lat/local-miss = %.2f, want %.1f", name, got, w.lat)
			}
		}
	}
}

func TestNAPropagation(t *testing.T) {
	t0, _ := ByName("Wisconsin T0")
	if t0.BisPerLocalMiss() != NA {
		t.Error("no-network machine should have NA bisection per miss")
	}
	if got := t0.NetLatPerLocalMiss(); math.Abs(got-5.0) > 0.01 {
		t.Errorf("T0 latency per miss = %v, want 5.0 (paper)", got)
	}
	ksr, _ := ByName("KSR-2")
	if ksr.NetLatPerLocalMiss() != NA {
		t.Error("unknown latency should be NA")
	}
}

func TestPaperDivergenceRecorded(t *testing.T) {
	// The paper's FLASH and Origin Table 2 rows do not follow its own
	// formula; we must preserve the printed values for comparison.
	flash, _ := ByName("Stanford FLASH")
	if flash.PaperBisPerMiss != 1248 {
		t.Errorf("FLASH paper value = %v, want 1248", flash.PaperBisPerMiss)
	}
	origin, _ := ByName("SGI Origin")
	if origin.PaperBisPerMiss != 2700 {
		t.Errorf("Origin paper value = %v, want 2700", origin.PaperBisPerMiss)
	}
}

func TestRelativeToAlewife(t *testing.T) {
	a := Alewife()
	if a.RelBisection() != 1 || a.RelNetLatency() != 1 {
		t.Error("Alewife should be 1.0 relative to itself")
	}
	delta, _ := ByName("Intel Delta")
	if r := delta.RelBisection(); math.Abs(r-0.3) > 0.01 {
		t.Errorf("Delta relative bisection = %.2f, want 0.30", r)
	}
	t0, _ := ByName("Wisconsin T0")
	if t0.RelBisection() != NA {
		t.Error("T0 relative bisection should be NA")
	}
}
