package machines

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestConfigForMatchesHeadlineParams(t *testing.T) {
	for _, m := range EmulatableMachines() {
		cfg, note, err := ConfigFor(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if cfg.ClockMHz != m.MHz {
			t.Errorf("%s: clock %v, want %v", m.Name, cfg.ClockMHz, m.MHz)
		}
		// Bisection match.
		clk := sim.NewClock(m.MHz)
		links := 2.0 * float64(cfg.Height)
		if cfg.Torus {
			links *= 2
		}
		bis := links * float64(clk.PsPerCycle()) / float64(cfg.PsPerByte)
		if math.Abs(bis-m.BytesPerCycle)/m.BytesPerCycle > 0.05 {
			t.Errorf("%s: bisection %.1f bytes/cycle, want %.1f", m.Name, bis, m.BytesPerCycle)
		}
		// Latency match (unless clamped).
		if note.Comment == "" {
			lat := core.NetLatencyCycles(cfg)
			if math.Abs(lat-m.NetLatency)/m.NetLatency > 0.15 {
				t.Errorf("%s: latency %.1f cycles, want %.0f", m.Name, lat, m.NetLatency)
			}
		}
		if got := m.RemoteMiss != NA; note.SharedMemory != got {
			t.Errorf("%s: SharedMemory note %v", m.Name, note.SharedMemory)
		}
	}
}

func TestConfigForCrayIsTorus(t *testing.T) {
	for _, name := range []string{"Cray T3D", "Cray T3E"} {
		m, _ := ByName(name)
		cfg, note, err := ConfigFor(m)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Torus || note.Topology != "8x4 torus" {
			t.Errorf("%s not emulated as a torus", name)
		}
	}
}

func TestConfigForRejectsNetworklessMachines(t *testing.T) {
	m, _ := ByName("Wisconsin T0")
	if _, _, err := ConfigFor(m); err == nil {
		t.Error("T0 (no network) should not be emulatable")
	}
	if len(EmulatableMachines()) != 11 {
		t.Errorf("emulatable machines = %d, want 11 (14 minus T0, T1, KSR-2)",
			len(EmulatableMachines()))
	}
}

func TestEmulatedMachinesRunAndValidate(t *testing.T) {
	// Run EM3D on a few representative emulated machines end to end,
	// with numerical validation.
	for _, name := range []string{"Stanford DASH", "Cray T3D", "Intel Paragon"} {
		m, _ := ByName(name)
		cfg, note, err := ConfigFor(m)
		if err != nil {
			t.Fatal(err)
		}
		mech := apps.MPPoll
		if note.SharedMemory {
			mech = apps.SM
		}
		if _, err := core.Run(core.RunConfig{App: core.EM3D, Mech: mech,
			Scale: core.ScaleTiny, Machine: cfg}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestEmulatedLatencyOrderingMatchesConclusion(t *testing.T) {
	// The paper's conclusion: network latency is the severe problem for
	// shared memory, worsening on modern machines. Emulated FLASH
	// (62-cycle latency) should show a worse SM/MP ratio than emulated
	// Alewife (15 cycles).
	ratio := func(name string) float64 {
		m, _ := ByName(name)
		cfg, _, err := ConfigFor(m)
		if err != nil {
			t.Fatal(err)
		}
		sm := core.MustRun(core.RunConfig{App: core.EM3D, Mech: apps.SM,
			Scale: core.ScaleTiny, Machine: cfg, SkipValidate: true})
		mp := core.MustRun(core.RunConfig{App: core.EM3D, Mech: apps.MPPoll,
			Scale: core.ScaleTiny, Machine: cfg, SkipValidate: true})
		return float64(sm.Cycles) / float64(mp.Cycles)
	}
	alewife := ratio("MIT Alewife")
	flash := ratio("Stanford FLASH")
	if flash <= alewife {
		t.Errorf("FLASH SM/MP %.2f <= Alewife %.2f; latency should hurt SM more", flash, alewife)
	}
}
