package am

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// HandlerID names a registered active-message handler.
type HandlerID int

// Ctx is the context passed to an executing handler. Handlers run inline
// on the receiving processor's thread at message-dispatch time; they must
// not block, but they may charge compute time and send replies.
type Ctx struct {
	sys  *System
	Node int              // receiving node
	Src  int              // sending node
	th   *sim.Thread      // receiving processor's thread
	bd   *stats.Breakdown // receiving processor's time breakdown
}

// Compute charges cycles of handler computation (useful work).
func (c *Ctx) Compute(cycles int64) {
	d := c.sys.clk.Cycles(cycles)
	c.bd.Add(stats.BucketCompute, d)
	c.th.Sleep(d)
}

// Overhead charges cycles of handler bookkeeping (message overhead).
func (c *Ctx) Overhead(cycles int64) {
	d := c.sys.clk.Cycles(cycles)
	c.bd.Add(stats.BucketMsgOverhead, d)
	c.th.Sleep(d)
}

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.th.Now() }

// Reply sends an active message back into the network from the handler.
// It never blocks (handlers cannot wait for queue space); the construct
// cost is charged as message overhead.
func (c *Ctx) Reply(dst int, h HandlerID, args []int64, vals []float64) {
	c.Overhead(c.sys.par.SendConstructCycles + c.sys.par.SendPerWordCycles*niWords(args, vals))
	c.sys.inject(c.Node, dst, h, args, vals, false, 0)
}

// niWords counts 32-bit NI register transfers: one per argument, two per
// double-precision value.
func niWords(args []int64, vals []float64) int64 {
	return int64(len(args) + 2*len(vals))
}

// Handler is an active-message handler body.
type Handler func(c *Ctx, args []int64, vals []float64)

// Params configures the message system. Costs are processor cycles.
type Params struct {
	SendConstructCycles   int64 // fixed construct+launch cost per message
	SendPerWordCycles     int64 // per argument/value word written to the NI
	InterruptEntryCycles  int64 // interrupt entry+exit per message batch head
	InterruptPerMsgCycles int64 // per-message dispatch under interrupts
	PollCycles            int64 // cost of one poll check
	PollPerMsgCycles      int64 // per-message dispatch under polling
	RecvPerWordCycles     int64 // per payload word moved out of the NI (fine-grained only; DMA exempt)
	BulkSetupCycles       int64 // DMA descriptor setup per transfer
	BulkRecvCycles        int64 // receive-side DMA initiation per transfer

	HdrBytes       int // network header per message
	ArgBytes       int // per int64 argument on the wire (Alewife args are 32-bit)
	ValBytes       int // per float64 value on the wire
	DescBytes      int // per DMA (address,length) descriptor
	DMAAlign       int // payload alignment for DMA (double word)
	MaxInlineWords int // max args+vals in a fine-grained message (NI registers)

	InQueueCap    int   // NI input queue capacity in messages
	RetryCycles   int64 // network retry interval when the input queue is full
	OutQueueLimit int64 // max cycles of injection backlog before the sender stalls
}

// DefaultParams returns parameters calibrated so a null active message
// costs ~102 cycles end-to-end with interrupts (the paper's figure).
func DefaultParams() Params {
	return Params{
		SendConstructCycles:   22,
		SendPerWordCycles:     2,
		InterruptEntryCycles:  45,
		InterruptPerMsgCycles: 10,
		PollCycles:            6,
		PollPerMsgCycles:      16,
		RecvPerWordCycles:     3,
		BulkSetupCycles:       30,
		BulkRecvCycles:        20,

		HdrBytes:       8,
		ArgBytes:       4,
		ValBytes:       8,
		DescBytes:      8,
		DMAAlign:       8,
		MaxInlineWords: 14,

		InQueueCap:    16,
		RetryCycles:   20,
		OutQueueLimit: 256,
	}
}

// msg is one queued message at a receiving NI.
type msg struct {
	src     int
	handler HandlerID
	args    []int64
	vals    []float64
	bulk    bool
	bytes   int      // wire size, for stats
	sent    sim.Time // injection timestamp at the source
}

// ni is one node's network interface receive side.
type ni struct {
	q        []*msg
	notify   func() // one-shot arm: fires on message arrival
	waitFull int64
	// Last arrival, for the critical-path recorder: a receiver woken by
	// its armed notify can ask what message woke it (see LastArrival).
	lastSrc   int
	lastSent  sim.Time
	lastBytes int
	arrivals  int64
}

// System is the machine-wide active message layer.
type System struct {
	eng      *sim.Engine
	net      *mesh.Network
	clk      sim.Clock
	par      Params
	handlers []Handler
	nis      []*ni
	// evs is per-node message accounting; each slot is only written from
	// its node's engine context, so tiled runs count lock-free. Events
	// sums across nodes.
	evs []stats.Events
	// engOf, when non-nil, maps a node to its tile engine (tiled runs);
	// nil means every node shares eng. See SetTileEngines.
	engOf func(node int) *sim.Engine

	// outFree[n] is node n's injection backlog horizon.
	outFree []sim.Time

	// trOf, when non-nil, routes trace events to the recording node's
	// buffer (the sender for send events, the receiver for receive
	// events). Serial runs route every node to one shared buffer; tiled
	// runs hand out per-tile buffers so recording stays single-writer.
	trOf func(node int) *trace.Buffer

	// fault, when non-nil, injects endpoint drain stalls (the NI refuses
	// deliveries during a stall window, exercising the mesh retry path).
	fault DrainStaller

	// Per-node instruments, allocated by SetMetrics; nil when metrics
	// are disabled. Purely passive.
	mSend     []*obs.Counter   // messages injected per source node
	mRecv     []*obs.Counter   // messages dispatched per receiving node
	mInDepth  []*obs.Histogram // NI input-queue depth at each arrival
	mOutBack  []*obs.Histogram // injection backlog (cycles) at each send
	mWaitFull []*obs.Counter   // deliveries refused on a full input queue
}

// SetMetrics registers the message layer's instruments on reg and begins
// recording: per-node send/receive occupancy counters, the NI input
// queue depth distribution (observed at every arrival), the send-side
// injection backlog distribution in processor cycles (observed at every
// inject), and full-queue delivery refusals. nil is ignored.
func (s *System) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	n := len(s.nis)
	s.mSend = make([]*obs.Counter, n)
	s.mRecv = make([]*obs.Counter, n)
	s.mInDepth = make([]*obs.Histogram, n)
	s.mOutBack = make([]*obs.Histogram, n)
	s.mWaitFull = make([]*obs.Counter, n)
	for i := 0; i < n; i++ {
		l := obs.NodeLabel(i)
		s.mSend[i] = reg.Counter("am_send_total", l)
		s.mRecv[i] = reg.Counter("am_recv_total", l)
		s.mInDepth[i] = reg.Histogram("am_ni_in_depth", l)
		s.mOutBack[i] = reg.Histogram("am_out_backlog_cycles", l)
		s.mWaitFull[i] = reg.Counter("am_ni_full_refusals_total", l)
	}
}

// DrainStaller injects endpoint drain stalls deterministically. It is
// implemented by *fault.Injector; the interface keeps this package
// decoupled from the fault package.
type DrainStaller interface {
	// DrainStalledUntil reports when node's NI resumes accepting
	// deliveries for an attempt at time t (0 or <=t means no stall).
	DrainStalledUntil(node int, t sim.Time) sim.Time
}

// SetFaultInjector attaches a drain-stall injector (nil disables it).
// With no injector attached the delivery paths are byte-identical to a
// fault-free build.
func (s *System) SetFaultInjector(fi DrainStaller) { s.fault = fi }

// SetTrace attaches an event trace buffer shared by all nodes (nil
// disables tracing). Serial engine only — for tiled runs use
// SetTraceShards.
func (s *System) SetTrace(tr *trace.Buffer) {
	if tr == nil {
		s.trOf = nil
		return
	}
	s.trOf = func(int) *trace.Buffer { return tr }
}

// SetTraceShards attaches a per-node trace routing function; under the
// tiled engine it must return the recording node's own tile buffer so
// every buffer keeps a single writer.
func (s *System) SetTraceShards(trOf func(node int) *trace.Buffer) { s.trOf = trOf }

// NewSystem creates the message layer for every node of net.
func NewSystem(eng *sim.Engine, net *mesh.Network, clk sim.Clock, par Params) *System {
	s := &System{eng: eng, net: net, clk: clk, par: par}
	s.evs = make([]stats.Events, net.Nodes())
	s.nis = make([]*ni, net.Nodes())
	for i := range s.nis {
		s.nis[i] = &ni{}
	}
	s.outFree = make([]sim.Time, net.Nodes())
	return s
}

// Params returns the message-layer parameters.
func (s *System) Params() Params { return s.par }

// SetTileEngines routes per-node work to tile engines: everything the
// message layer schedules on behalf of node n goes to engOf(n). The
// serial engine passed to NewSystem remains the default when engOf is
// nil. Cross-node messages travel the mesh, whose banded walk performs
// the engine handoff, so arrivals and handler dispatch always run in
// the destination node's context.
func (s *System) SetTileEngines(engOf func(node int) *sim.Engine) {
	s.engOf = engOf
}

// engAt returns the engine that executes node's events.
func (s *System) engAt(node int) *sim.Engine {
	if s.engOf != nil {
		return s.engOf(node)
	}
	return s.eng
}

// Events returns accumulated message counters.
func (s *System) Events() stats.Events {
	var ev stats.Events
	for i := range s.evs {
		ev = ev.Plus(s.evs[i])
	}
	return ev
}

// Register installs a handler and returns its id. Handlers must be
// registered identically on all nodes (the table is machine-wide, which
// models a SPMD program image).
func (s *System) Register(h Handler) HandlerID {
	s.handlers = append(s.handlers, h)
	return HandlerID(len(s.handlers) - 1)
}

// wireBytes computes the payload size of a fine-grained message.
func (s *System) wireBytes(args []int64, vals []float64) int {
	return s.par.ArgBytes*len(args) + s.par.ValBytes*len(vals)
}

// Send launches a fine-grained active message from node's processor
// thread th. The construct cost is charged as message overhead; if the
// injection backlog exceeds the output-queue limit the thread stalls
// (charged as memory+NI wait, per the paper's breakdown definition).
func (s *System) Send(th *sim.Thread, node, dst int, h HandlerID, args []int64, vals []float64, bd *stats.Breakdown) {
	if len(args)+2*len(vals) > s.par.MaxInlineWords {
		panic(fmt.Sprintf("am: %d args + %d vals exceed NI capacity of %d words",
			len(args), len(vals), s.par.MaxInlineWords))
	}
	cost := s.clk.Cycles(s.par.SendConstructCycles + s.par.SendPerWordCycles*niWords(args, vals))
	bd.Add(stats.BucketMsgOverhead, cost)
	th.Sleep(cost)
	s.stallIfBacklogged(th, node, bd)
	s.inject(node, dst, h, args, vals, false, 0)
}

// SendBulk launches a DMA bulk transfer: args are handler arguments, data
// is the gathered payload (already copied into a contiguous buffer by the
// application, which charges GatherScatterCycles for that copy). The
// payload is padded to DMA alignment; ICCG's many small transfers lose
// their header savings to exactly this padding, as in Figure 5.
func (s *System) SendBulk(th *sim.Thread, node, dst int, h HandlerID, args []int64, data []float64, bd *stats.Breakdown) {
	cost := s.clk.Cycles(s.par.BulkSetupCycles + s.par.SendPerWordCycles*int64(len(args)))
	bd.Add(stats.BucketMsgOverhead, cost)
	th.Sleep(cost)
	s.stallIfBacklogged(th, node, bd)
	s.inject(node, dst, h, args, data, true, s.par.DescBytes)
}

// stallIfBacklogged blocks th until the node's injection backlog drops
// below the output-queue limit.
func (s *System) stallIfBacklogged(th *sim.Thread, node int, bd *stats.Breakdown) {
	limit := s.clk.Cycles(s.par.OutQueueLimit)
	now := th.Now()
	if s.outFree[node] > now+limit {
		s.evs[node].NIQueueFullStall++
		wait := s.outFree[node] - limit - now
		bd.Add(stats.BucketMemWait, wait)
		th.Sleep(wait)
	}
}

// inject places the message on the wire (or loops it back locally).
func (s *System) inject(src, dst int, h HandlerID, args []int64, vals []float64, bulk bool, extraHdr int) {
	s.evs[src].MessagesSent++
	if s.mSend != nil {
		s.mSend[src].Inc()
		back := s.outFree[src] - s.engAt(src).Now()
		if back < 0 {
			back = 0
		}
		s.mOutBack[src].Observe(s.clk.ToCycles(back))
	}
	if s.trOf != nil {
		k := trace.KMsgSend
		if bulk {
			k = trace.KBulk
		}
		s.trOf(src).Add(trace.Event{At: s.engAt(src).Now(), Node: src, Kind: k,
			A: int64(dst), B: int64(s.par.ValBytes * len(vals))})
	}
	if bulk {
		s.evs[src].BulkTransfers++
		s.evs[src].BulkBytes += int64(s.par.ValBytes * len(vals))
	}
	// Copy payloads: applications commonly reuse gather buffers.
	m := &msg{src: src, handler: h, bulk: bulk, sent: s.engAt(src).Now()}
	m.args = append([]int64(nil), args...)
	m.vals = append([]float64(nil), vals...)

	payload := s.wireBytes(args, vals)
	if bulk && s.par.DMAAlign > 1 {
		if r := payload % s.par.DMAAlign; r != 0 {
			payload += s.par.DMAAlign - r // alignment padding on the wire
		}
	}
	hdr := s.par.HdrBytes + extraHdr
	m.bytes = hdr + payload

	if src == dst {
		// Loopback through the NI without entering the mesh.
		s.engAt(src).After(s.clk.Cycles(2), func() { s.arrive(dst, m) })
		return
	}
	depart := s.net.Send(&mesh.Packet{
		Src: src, Dst: dst,
		Class:    classOf(bulk),
		HdrBytes: hdr, PayloadBytes: payload,
		Deliver: func(now sim.Time, p *mesh.Packet) { s.arrive(dst, m) },
	})
	if depart > s.outFree[src] {
		s.outFree[src] = depart
	}
	// Track our own serialization contribution to the backlog.
	ser := sim.Time(m.bytes) * s.net.Config().PsPerByte
	s.outFree[src] += ser
}

func classOf(bulk bool) mesh.Class {
	if bulk {
		return mesh.ClassBulk
	}
	return mesh.ClassAM
}

// Endpoint adapts node id's NI to the mesh Endpoint interface, applying
// input-queue back-pressure. Coherence-class packets pass straight
// through to their Deliver callbacks (the CMMU drains them in hardware).
func (s *System) Endpoint(node int) mesh.Endpoint {
	return endpoint{s: s, node: node}
}

type endpoint struct {
	s    *System
	node int
}

func (e endpoint) TryDeliver(now sim.Time, p *mesh.Packet) (bool, sim.Time) {
	switch p.Class {
	case mesh.ClassAM, mesh.ClassBulk:
		ni := e.s.nis[e.node]
		if e.s.fault != nil {
			if u := e.s.fault.DrainStalledUntil(e.node, now); u > now {
				ni.waitFull++
				if e.s.mWaitFull != nil {
					e.s.mWaitFull[e.node].Inc()
				}
				return false, u
			}
		}
		if len(ni.q) >= e.s.par.InQueueCap {
			ni.waitFull++
			if e.s.mWaitFull != nil {
				e.s.mWaitFull[e.node].Inc()
			}
			return false, now + e.s.clk.Cycles(e.s.par.RetryCycles)
		}
		if p.Deliver != nil {
			p.Deliver(now, p)
		}
		return true, 0
	default:
		if p.Deliver != nil {
			p.Deliver(now, p)
		}
		return true, 0
	}
}

// arrive enqueues a message at the destination NI and fires any armed
// notification.
func (s *System) arrive(node int, m *msg) {
	ni := s.nis[node]
	ni.q = append(ni.q, m)
	ni.lastSrc, ni.lastSent, ni.lastBytes = m.src, m.sent, m.bytes
	ni.arrivals++
	if s.mInDepth != nil {
		s.mInDepth[node].Observe(int64(len(ni.q)))
	}
	if f := ni.notify; f != nil {
		ni.notify = nil
		f()
	}
}

// LastArrival describes the most recent message arrival at node: its
// source, injection timestamp, and wire size. ok is false before the
// first arrival. A receiver woken by its Notify callback uses this to
// attribute the wake — the notify fires synchronously at arrival, so at
// wake time the waking message is the last arrival.
func (s *System) LastArrival(node int) (src int, sent sim.Time, bytes int, ok bool) {
	ni := s.nis[node]
	return ni.lastSrc, ni.lastSent, ni.lastBytes, ni.arrivals > 0
}

// HasPending reports whether node has undelivered messages queued.
func (s *System) HasPending(node int) bool { return len(s.nis[node].q) > 0 }

// QueueDepth returns the number of queued messages at node.
func (s *System) QueueDepth(node int) int { return len(s.nis[node].q) }

// Notify arms a one-shot callback invoked at the next message arrival at
// node (or panics if one is already armed — a model bug).
func (s *System) Notify(node int, fn func()) {
	ni := s.nis[node]
	if ni.notify != nil {
		panic("am: notify already armed")
	}
	ni.notify = fn
}

// NotifyArmed reports whether a notification callback is pending.
func (s *System) NotifyArmed(node int) bool { return s.nis[node].notify != nil }

// ClearNotify disarms a pending notification.
func (s *System) ClearNotify(node int) { s.nis[node].notify = nil }

// Poll performs one polling operation on node's thread: it charges the
// poll cost and dispatches every queued message with the cheap polled
// per-message overhead. It returns the number of messages handled.
func (s *System) Poll(th *sim.Thread, node int, bd *stats.Breakdown) int {
	s.evs[node].Polls++
	s.charge(th, bd, s.par.PollCycles)
	n := s.drain(th, node, bd, s.par.PollPerMsgCycles)
	if n > 0 {
		s.evs[node].PollHits++
	}
	return n
}

// DrainInterrupts dispatches every queued message with interrupt costs:
// one interrupt entry for the batch plus a per-message dispatch. It
// returns the number of messages handled. The caller (the processor
// model) invokes it when it takes a message interrupt.
func (s *System) DrainInterrupts(th *sim.Thread, node int, bd *stats.Breakdown) int {
	if !s.HasPending(node) {
		return 0
	}
	s.evs[node].Interrupts++
	s.charge(th, bd, s.par.InterruptEntryCycles)
	return s.drain(th, node, bd, s.par.InterruptPerMsgCycles)
}

// drain dispatches queued messages until the queue is empty, charging
// perMsg overhead cycles per message, then running the handler inline.
func (s *System) drain(th *sim.Thread, node int, bd *stats.Breakdown, perMsg int64) int {
	ni := s.nis[node]
	n := 0
	for len(ni.q) > 0 {
		m := ni.q[0]
		ni.q = ni.q[1:]
		n++
		s.evs[node].MessagesRecv++
		if s.mRecv != nil {
			s.mRecv[node].Inc()
		}
		if s.trOf != nil {
			s.trOf(node).Add(trace.Event{At: s.engAt(node).Now(), Node: node, Kind: trace.KMsgRecv, A: int64(m.src)})
		}
		cost := perMsg
		if m.bulk {
			cost += s.par.BulkRecvCycles // DMA moves the payload; no per-word cost
		} else {
			cost += s.par.RecvPerWordCycles * niWords(m.args, m.vals)
		}
		s.charge(th, bd, cost)
		ctx := &Ctx{sys: s, Node: node, Src: m.src, th: th, bd: bd}
		s.handlers[m.handler](ctx, m.args, m.vals)
	}
	return n
}

func (s *System) charge(th *sim.Thread, bd *stats.Breakdown, cycles int64) {
	d := s.clk.Cycles(cycles)
	bd.Add(stats.BucketMsgOverhead, d)
	th.Sleep(d)
}

// QueueDump lists the non-empty NI input queues (node, depth, head
// message source/handler), at most max entries (0 = no limit). Used by
// watchdog diagnostics when a run stalls.
func (s *System) QueueDump(max int) []string {
	var out []string
	for node, ni := range s.nis {
		if len(ni.q) == 0 {
			continue
		}
		m := ni.q[0]
		out = append(out, fmt.Sprintf("node %d NI queue depth %d (head: src=%d handler=%d bulk=%v)",
			node, len(ni.q), m.src, m.handler, m.bulk))
		if max > 0 && len(out) >= max {
			return out
		}
	}
	return out
}

// GatherScatterCycles returns the processor cost of copying words of
// irregular data to or from a contiguous DMA buffer: the paper cites up
// to 60 cycles per 16-byte cache line, i.e. 30 per 8-byte word.
func GatherScatterCycles(words int) int64 { return int64(words) * 30 }
