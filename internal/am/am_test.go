package am

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

type rig struct {
	eng *sim.Engine
	net *mesh.Network
	clk sim.Clock
	sys *System
}

func newRig() *rig {
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223})
	clk := sim.NewClock(20)
	sys := NewSystem(eng, net, clk, DefaultParams())
	for i := 0; i < net.Nodes(); i++ {
		net.Attach(i, sys.Endpoint(i))
	}
	return &rig{eng: eng, net: net, clk: clk, sys: sys}
}

// waitAndDrain blocks th until a message is pending, then drains with
// interrupt (or poll) costs.
func (r *rig) waitAndDrain(th *sim.Thread, node int, bd *stats.Breakdown, poll bool) {
	if !r.sys.HasPending(node) {
		r.sys.Notify(node, func() { th.WakeAt(r.eng.Now()) })
		th.Pause()
	}
	if poll {
		r.sys.Poll(th, node, bd)
	} else {
		r.sys.DrainInterrupts(th, node, bd)
	}
}

func TestNullActiveMessageCost(t *testing.T) {
	r := newRig()
	var handled sim.Time = -1
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) { handled = c.Now() })
	var bd0, bd1 stats.Breakdown
	var start sim.Time
	r.eng.Spawn("recv", 0, func(th *sim.Thread) {
		r.waitAndDrain(th, 1, &bd1, false)
	})
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		start = th.Now()
		r.sys.Send(th, 0, 1, h, nil, nil, &bd0)
	})
	r.eng.Run()
	if handled < 0 {
		t.Fatal("handler never ran")
	}
	total := r.clk.ToCyclesF(handled - start)
	// Paper: 102 cycles + 0.8/hop for a null message.
	if total < 60 || total > 140 {
		t.Errorf("null AM end-to-end = %.1f cycles, want ~80-110", total)
	}
	if r.sys.Events().MessagesSent != 1 || r.sys.Events().MessagesRecv != 1 {
		t.Errorf("message counters: %+v", r.sys.Events())
	}
}

func TestPollingCheaperThanInterruptsPerMessage(t *testing.T) {
	const msgs = 20
	recvOverhead := func(poll bool) sim.Time {
		r := newRig()
		h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
		var bdS, bdR stats.Breakdown
		r.eng.Spawn("send", 0, func(th *sim.Thread) {
			for i := 0; i < msgs; i++ {
				// Spaced sends: each message is received in isolation,
				// the common case when communication is spread through
				// a computation (no interrupt-entry amortization).
				th.Sleep(r.clk.Cycles(500))
				r.sys.Send(th, 0, 1, h, []int64{int64(i)}, nil, &bdS)
			}
		})
		r.eng.Spawn("recv", 0, func(th *sim.Thread) {
			for done := 0; done < msgs; {
				if !r.sys.HasPending(1) {
					r.sys.Notify(1, func() { th.WakeAt(r.eng.Now()) })
					th.Pause()
				}
				if poll {
					done += r.sys.Poll(th, 1, &bdR)
				} else {
					done += r.sys.DrainInterrupts(th, 1, &bdR)
				}
			}
		})
		r.eng.Run()
		return bdR.T[stats.BucketMsgOverhead]
	}
	intr := recvOverhead(false)
	poll := recvOverhead(true)
	if poll >= intr {
		t.Errorf("polled receive overhead %v >= interrupt %v", poll, intr)
	}
	// ICCG saw ~35%% overhead reduction; allow a broad band.
	ratio := float64(poll) / float64(intr)
	if ratio > 0.9 || ratio < 0.2 {
		t.Errorf("poll/interrupt overhead ratio = %.2f, want ~0.4-0.8", ratio)
	}
}

func TestHandlerReceivesArgsAndVals(t *testing.T) {
	r := newRig()
	var gotArgs []int64
	var gotVals []float64
	var gotSrc int
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {
		gotArgs, gotVals, gotSrc = args, vals, c.Src
	})
	var bd stats.Breakdown
	r.eng.Spawn("recv", 0, func(th *sim.Thread) { r.waitAndDrain(th, 5, &bd, true) })
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		r.sys.Send(th, 2, 5, h, []int64{7, 8}, []float64{1.5, 2.5}, &bd)
	})
	r.eng.Run()
	if gotSrc != 2 {
		t.Errorf("src = %d, want 2", gotSrc)
	}
	if len(gotArgs) != 2 || gotArgs[0] != 7 || gotArgs[1] != 8 {
		t.Errorf("args = %v", gotArgs)
	}
	if len(gotVals) != 2 || gotVals[0] != 1.5 || gotVals[1] != 2.5 {
		t.Errorf("vals = %v", gotVals)
	}
}

func TestHandlerReply(t *testing.T) {
	r := newRig()
	var pong bool
	var pongH HandlerID
	pongH = r.sys.Register(func(c *Ctx, args []int64, vals []float64) { pong = true })
	pingH := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {
		c.Reply(c.Src, pongH, nil, nil)
	})
	var bd0, bd1 stats.Breakdown
	r.eng.Spawn("n1", 0, func(th *sim.Thread) { r.waitAndDrain(th, 1, &bd1, false) })
	r.eng.Spawn("n0", 0, func(th *sim.Thread) {
		r.sys.Send(th, 0, 1, pingH, nil, nil, &bd0)
		r.waitAndDrain(th, 0, &bd0, false)
	})
	r.eng.Run()
	if !pong {
		t.Error("reply never handled")
	}
}

func TestFineGrainedVolumeAccounting(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd stats.Breakdown
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		// 2 args (4B each) + 5 vals (8B each) = 48B payload + 8B header.
		r.sys.Send(th, 0, 9, h, []int64{1, 2}, []float64{1, 2, 3, 4, 5}, &bd)
	})
	var bdr stats.Breakdown
	r.eng.Spawn("recv", 0, func(th *sim.Thread) { r.waitAndDrain(th, 9, &bdr, true) })
	r.eng.Run()
	v := r.net.Volume()
	if v.Bytes[stats.VolHeaders] != 8 {
		t.Errorf("headers = %d, want 8", v.Bytes[stats.VolHeaders])
	}
	if v.Bytes[stats.VolData] != 48 {
		t.Errorf("data = %d, want 48", v.Bytes[stats.VolData])
	}
}

func TestBulkTransferPaddingAndDescriptor(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd, bdr stats.Breakdown
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		// 3 args = 12B -> padded to 16B; +4 vals = 32B data. Header 8+8 desc.
		r.sys.SendBulk(th, 0, 9, h, []int64{1, 2, 3}, []float64{1, 2, 3, 4}, &bd)
	})
	r.eng.Spawn("recv", 0, func(th *sim.Thread) { r.waitAndDrain(th, 9, &bdr, true) })
	r.eng.Run()
	v := r.net.Volume()
	if v.Bytes[stats.VolHeaders] != 16 {
		t.Errorf("bulk headers = %d, want 16 (hdr+descriptor)", v.Bytes[stats.VolHeaders])
	}
	if v.Bytes[stats.VolData] != 48 {
		t.Errorf("bulk data = %d, want 48 (12 args padded to 16 + 32 vals)", v.Bytes[stats.VolData])
	}
	ev := r.sys.Events()
	if ev.BulkTransfers != 1 || ev.BulkBytes != 32 {
		t.Errorf("bulk counters = %+v", ev)
	}
}

func TestBulkAmortizesPerWordCost(t *testing.T) {
	// Sending N words fine-grained costs ~N*perWord at the sender; bulk
	// costs a fixed setup. Compare sender-side overhead for 64 words.
	sendOverhead := func(bulk bool) sim.Time {
		r := newRig()
		h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
		var bd, bdr stats.Breakdown
		vals := make([]float64, 64)
		r.eng.Spawn("send", 0, func(th *sim.Thread) {
			if bulk {
				r.sys.SendBulk(th, 0, 1, h, nil, vals, &bd)
			} else {
				for i := 0; i < len(vals); i += 4 {
					r.sys.Send(th, 0, 1, h, nil, vals[i:i+4], &bd)
				}
			}
		})
		r.eng.Spawn("recv", 0, func(th *sim.Thread) {
			for got := 0; got < 1; {
				r.waitAndDrain(th, 1, &bdr, true)
				if !bulk && r.sys.Events().MessagesRecv < 16 {
					continue
				}
				got = 1
			}
		})
		r.eng.Run()
		return bd.T[stats.BucketMsgOverhead]
	}
	fine := sendOverhead(false)
	bulk := sendOverhead(true)
	if bulk >= fine/2 {
		t.Errorf("bulk send overhead %v not well below fine-grained %v", bulk, fine)
	}
}

func TestInputQueueBackpressure(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bdS, bdR stats.Breakdown
	const msgs = 40 // well beyond InQueueCap=16
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		for i := 0; i < msgs; i++ {
			r.sys.Send(th, 0, 1, h, []int64{int64(i)}, nil, &bdS)
		}
	})
	r.eng.Spawn("recv", 0, func(th *sim.Thread) {
		// Slow consumer: drain one batch every 2000 cycles.
		for done := 0; done < msgs; {
			th.Sleep(r.clk.Cycles(2000))
			done += r.sys.Poll(th, 1, &bdR)
		}
	})
	r.eng.Run()
	if r.net.Retries() == 0 {
		t.Error("no network retries despite a full input queue")
	}
	if got := r.sys.Events().MessagesRecv; got != msgs {
		t.Errorf("received %d, want %d", got, msgs)
	}
}

func TestOutputBacklogStallsSender(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd, bdr stats.Breakdown
	const msgs = 40
	payload := make([]float64, 400) // 3200B: far above the link rate
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		for i := 0; i < msgs; i++ {
			r.sys.SendBulk(th, 0, 1, h, nil, payload, &bd)
		}
	})
	r.eng.Spawn("recv", 0, func(th *sim.Thread) {
		for r.sys.Events().MessagesRecv < msgs {
			r.waitAndDrain(th, 1, &bdr, true)
		}
	})
	r.eng.Run()
	if r.sys.Events().NIQueueFullStall == 0 {
		t.Error("sender never stalled on injection backlog")
	}
	if bd.T[stats.BucketMemWait] == 0 {
		t.Error("no NI wait time charged to the sender")
	}
}

func TestNotifyOneShotAndDoubleArmPanics(t *testing.T) {
	r := newRig()
	r.sys.Notify(3, func() {})
	if !r.sys.NotifyArmed(3) {
		t.Error("notify not armed")
	}
	defer func() {
		if recover() == nil {
			t.Error("double arm did not panic")
		}
	}()
	r.sys.Notify(3, func() {})
}

func TestClearNotify(t *testing.T) {
	r := newRig()
	r.sys.Notify(3, func() { t.Error("cleared notify fired") })
	r.sys.ClearNotify(3)
	if r.sys.NotifyArmed(3) {
		t.Error("notify still armed after clear")
	}
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd stats.Breakdown
	r.eng.Spawn("send", 0, func(th *sim.Thread) { r.sys.Send(th, 0, 3, h, nil, nil, &bd) })
	r.eng.Run()
}

func TestOversizeInlineMessagePanics(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd stats.Breakdown
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("oversize message did not panic")
			}
		}()
		r.sys.Send(th, 0, 1, h, make([]int64, 3), make([]float64, 6), &bd)
	})
	func() {
		defer func() { recover() }() // thread panic propagates via engine
		r.eng.Run()
	}()
}

func TestLocalLoopback(t *testing.T) {
	r := newRig()
	ran := false
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) { ran = true })
	var bd stats.Breakdown
	r.eng.Spawn("n0", 0, func(th *sim.Thread) {
		r.sys.Send(th, 0, 0, h, nil, nil, &bd)
		r.waitAndDrain(th, 0, &bd, true)
	})
	r.eng.Run()
	if !ran {
		t.Error("loopback handler never ran")
	}
	if r.net.PacketsSent() != 0 {
		t.Errorf("loopback used the network: %d packets", r.net.PacketsSent())
	}
}

func TestPayloadCopiedOnSend(t *testing.T) {
	r := newRig()
	var got []float64
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) { got = vals })
	var bd, bdr stats.Breakdown
	buf := []float64{1, 2, 3}
	r.eng.Spawn("recv", 0, func(th *sim.Thread) { r.waitAndDrain(th, 1, &bdr, true) })
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		r.sys.Send(th, 0, 1, h, nil, buf, &bd)
		buf[0] = 99 // mutate after send: receiver must see the original
	})
	r.eng.Run()
	if got[0] != 1 {
		t.Errorf("receiver saw mutated buffer: %v", got)
	}
}

func TestGatherScatterCycles(t *testing.T) {
	// Paper: up to 60 cycles per 16-byte line = 2 words.
	if GatherScatterCycles(2) != 60 {
		t.Errorf("GatherScatterCycles(2) = %d, want 60", GatherScatterCycles(2))
	}
	if GatherScatterCycles(0) != 0 {
		t.Error("zero words should cost zero")
	}
}

func TestManyToOneAllDelivered(t *testing.T) {
	r := newRig()
	received := make(map[int64]bool)
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) { received[args[0]] = true })
	var bdr stats.Breakdown
	const senders, per = 8, 10
	for sNode := 0; sNode < senders; sNode++ {
		sNode := sNode
		var bd stats.Breakdown
		r.eng.Spawn("send", 0, func(th *sim.Thread) {
			for i := 0; i < per; i++ {
				r.sys.Send(th, sNode+8, 2, h, []int64{int64(sNode*per + i)}, nil, &bd)
			}
		})
	}
	r.eng.Spawn("recv", 0, func(th *sim.Thread) {
		for len(received) < senders*per {
			r.waitAndDrain(th, 2, &bdr, false)
		}
	})
	r.eng.Run()
	if len(received) != senders*per {
		t.Errorf("received %d distinct messages, want %d", len(received), senders*per)
	}
}
