// Package am simulates Alewife's message-passing mechanisms: user-level
// active messages received by interrupts or by polling (the Remote Queues
// abstraction), and bulk transfer via DMA with (address,length) descriptor
// overhead and double-word alignment padding.
//
// Cost structure follows the paper: a null active message costs ~102
// cycles end to end (construct + launch + interrupt entry + dispatch);
// polling replaces the interrupt entry with a much cheaper per-message
// dispatch, cutting receive overhead by roughly a third; DMA eliminates
// per-word processor cost but the applications pay explicit gather/scatter
// copying (~60 cycles per 16-byte line, charged via GatherScatterCycles).
package am
