package am

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stats"
)

// oneWay measures send-to-handler latency for one null message 0 -> 1.
func oneWay(t *testing.T, prep func(r *rig)) sim.Time {
	t.Helper()
	r := newRig()
	if prep != nil {
		prep(r)
	}
	var handled sim.Time = -1
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) { handled = c.Now() })
	var bd0, bd1 stats.Breakdown
	r.eng.Spawn("recv", 0, func(th *sim.Thread) {
		r.waitAndDrain(th, 1, &bd1, false)
	})
	var start sim.Time
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		start = th.Now()
		r.sys.Send(th, 0, 1, h, nil, nil, &bd0)
	})
	r.eng.SetEventLimit(1_000_000)
	r.eng.Run()
	if handled < 0 {
		t.Fatal("handler never ran")
	}
	return handled - start
}

func TestDrainStallDelaysDelivery(t *testing.T) {
	base := oneWay(t, nil)
	cfg, err := fault.Parse("stall:node=1,start=0ps,dur=20us")
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(cfg, 1)
	stalled := oneWay(t, func(r *rig) { r.sys.SetFaultInjector(in) })
	if stalled <= base || stalled < 20*sim.Microsecond {
		t.Errorf("stalled one-way = %v, want past the 20us stall window (baseline %v)", stalled, base)
	}
	if in.Stats().StallRefusals == 0 {
		t.Error("injector recorded no stall refusals")
	}

	// A stall on a different node leaves this path untouched.
	cfg, _ = fault.Parse("stall:node=9,start=0ps,dur=20us")
	clear := oneWay(t, func(r *rig) { r.sys.SetFaultInjector(fault.NewInjector(cfg, 1)) })
	if clear != base {
		t.Errorf("unrelated stall changed one-way: %v != %v", clear, base)
	}
}

func TestQueueDumpShowsBackedUpNI(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd stats.Breakdown
	// Nobody drains node 1: messages pile up in its NI input queue.
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		for i := 0; i < 3; i++ {
			r.sys.Send(th, 0, 1, h, []int64{int64(i)}, nil, &bd)
		}
	})
	r.eng.Run()
	dump := r.sys.QueueDump(0)
	if len(dump) != 1 {
		t.Fatalf("QueueDump = %v, want one backed-up node", dump)
	}
	if !strings.Contains(dump[0], "node 1") || !strings.Contains(dump[0], "depth 3") {
		t.Errorf("dump entry %q lacks node or depth", dump[0])
	}
	if got := r.sys.QueueDump(1); len(got) != 1 {
		t.Errorf("QueueDump(1) returned %d entries", len(got))
	}
}
