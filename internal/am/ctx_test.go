package am

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestCtxComputeAndOverheadBuckets(t *testing.T) {
	r := newRig()
	var inHandler sim.Time
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {
		start := c.Now()
		c.Compute(40)
		c.Overhead(10)
		inHandler = c.Now() - start
	})
	var bdS, bdR stats.Breakdown
	r.eng.Spawn("recv", 0, func(th *sim.Thread) { r.waitAndDrain(th, 1, &bdR, true) })
	r.eng.Spawn("send", 0, func(th *sim.Thread) { r.sys.Send(th, 0, 1, h, nil, nil, &bdS) })
	r.eng.Run()
	if got := r.clk.ToCycles(inHandler); got != 50 {
		t.Errorf("handler consumed %d cycles, want 50", got)
	}
	if got := r.clk.ToCycles(bdR.T[stats.BucketCompute]); got != 40 {
		t.Errorf("handler compute charged %d cycles, want 40", got)
	}
}

func TestQueueDepthTracksArrivals(t *testing.T) {
	r := newRig()
	h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
	var bd stats.Breakdown
	r.eng.Spawn("send", 0, func(th *sim.Thread) {
		for i := 0; i < 5; i++ {
			r.sys.Send(th, 0, 1, h, nil, nil, &bd)
		}
	})
	r.eng.Run() // receiver never drains
	if got := r.sys.QueueDepth(1); got != 5 {
		t.Errorf("queue depth = %d, want 5", got)
	}
	if r.sys.QueueDepth(2) != 0 {
		t.Error("unrelated node has queued messages")
	}
}

func TestNIWordsCountsDoublesTwice(t *testing.T) {
	if got := niWords([]int64{1, 2}, []float64{1.0}); got != 4 {
		t.Errorf("niWords(2 args, 1 val) = %d, want 4", got)
	}
	if got := niWords(nil, nil); got != 0 {
		t.Errorf("niWords(nil,nil) = %d", got)
	}
}

func TestBulkRecvChargesDMACostNotPerWord(t *testing.T) {
	// A large bulk payload must not scale the receiver's dispatch cost
	// the way a fine-grained message would.
	recvOverhead := func(bulk bool) sim.Time {
		r := newRig()
		h := r.sys.Register(func(c *Ctx, args []int64, vals []float64) {})
		var bdS, bdR stats.Breakdown
		r.eng.Spawn("send", 0, func(th *sim.Thread) {
			if bulk {
				r.sys.SendBulk(th, 0, 1, h, nil, make([]float64, 64), &bdS)
			} else {
				r.sys.Send(th, 0, 1, h, nil, make([]float64, 6), &bdS)
			}
		})
		r.eng.Spawn("recv", 0, func(th *sim.Thread) { r.waitAndDrain(th, 1, &bdR, true) })
		r.eng.Run()
		return bdR.T[stats.BucketMsgOverhead]
	}
	bulkCost := recvOverhead(true)  // 64 doubles via DMA
	fineCost := recvOverhead(false) // 6 doubles inline
	if bulkCost > 3*fineCost {
		t.Errorf("bulk receive %v much dearer than fine %v; DMA should not pay per word",
			bulkCost, fineCost)
	}
}
