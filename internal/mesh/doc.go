// Package mesh simulates the Alewife EMRC-style 2-D mesh interconnect:
// dimension-order (X then Y) cut-through routing, per-link bandwidth and
// occupancy, per-hop router latency, endpoint back-pressure, and the
// paper's bisection-bandwidth emulation via I/O cross-traffic injected
// across both edges of the mesh (Figure 6).
//
// Timing model. A packet's head advances one router per HopLatency; its
// body follows in a pipeline, so an uncongested delivery takes
//
//	(hops+1)*HopLatency + Size*PsPerByte
//
// matching Alewife's ~15 processor cycles for a 24-byte packet at 20 MHz.
// Each directed link is a server that is occupied for Size*PsPerByte per
// packet; when a link is busy the head waits, which is what produces the
// nonlinear congestion of the paper's "Congestion Dominated" region.
// Link reservations are made in send order (a standard fast cut-through
// approximation: one delivery event per packet rather than one per hop).
package mesh
