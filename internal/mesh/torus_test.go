package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func torusCfg() Config {
	c := alewifeCfg()
	c.Torus = true
	return c
}

func TestTorusHopsShortWay(t *testing.T) {
	n := New(sim.NewEngine(), torusCfg())
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 7, 1},                       // wrap: (0,0) -> (7,0) is 1 hop west
		{0, 4, 4},                       // half way: either direction is 4
		{0, 31, 2},                      // (0,0)->(7,3): 1 west wrap + 1 south wrap
		{n.ID(1, 0), n.ID(6, 3), 3 + 1}, // x: 1->6 short way = 3 west; y: 0->3 wrap = 1
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestTorusHopsNeverExceedMesh(t *testing.T) {
	tor := New(sim.NewEngine(), torusCfg())
	msh := New(sim.NewEngine(), alewifeCfg())
	prop := func(a, b uint8) bool {
		s, d := int(a)%32, int(b)%32
		return tor.Hops(s, d) <= msh.Hops(s, d)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusAvgHopsBelowMesh(t *testing.T) {
	tor := New(sim.NewEngine(), torusCfg())
	msh := New(sim.NewEngine(), alewifeCfg())
	if tor.AvgHops() >= msh.AvgHops() {
		t.Errorf("torus avg hops %.2f >= mesh %.2f", tor.AvgHops(), msh.AvgHops())
	}
}

func TestTorusDelivery(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, torusCfg())
	delivered := 0
	// Wraparound route: 1 hop.
	var at sim.Time
	n.Send(&Packet{Src: 0, Dst: 7, Class: ClassAM, HdrBytes: 24,
		Deliver: func(now sim.Time, _ *Packet) { delivered++; at = now }})
	eng.Run()
	if delivered != 1 {
		t.Fatal("packet not delivered")
	}
	if want := n.UncongestedLatency(1, 24); at != want {
		t.Errorf("wrap delivery at %v, want %v", at, want)
	}
}

func TestTorusAllPairsDeliver(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, torusCfg())
	want := 0
	got := 0
	for s := 0; s < 32; s += 3 {
		for d := 0; d < 32; d += 5 {
			want++
			n.Send(&Packet{Src: s, Dst: d, Class: ClassAM, HdrBytes: 8,
				Deliver: func(now sim.Time, _ *Packet) { got++ }})
		}
	}
	eng.Run()
	if got != want {
		t.Errorf("delivered %d of %d", got, want)
	}
}

func TestTorusDoublesBisection(t *testing.T) {
	clk := sim.NewClock(20)
	m := alewifeCfg().BisectionBytesPerCycle(clk)
	tc := torusCfg().BisectionBytesPerCycle(clk)
	if tc != 2*m {
		t.Errorf("torus bisection %.1f, want 2x mesh %.1f", tc, m)
	}
}

func TestTorusWrapCrossingCounted(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, torusCfg())
	// 0 -> 7 goes west over the wrap link: that crosses the (second cut
	// of the) bisection.
	n.Send(&Packet{Src: 0, Dst: 7, Class: ClassAM, HdrBytes: 24})
	eng.Run()
	app, _ := n.BisectionCrossings()
	if app != 24 {
		t.Errorf("wrap crossing not counted: %d", app)
	}
}

func TestTorusRejectsCrossTraffic(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, torusCfg())
	defer func() {
		if recover() == nil {
			t.Error("cross-traffic on torus did not panic")
		}
	}()
	n.StartCrossTraffic(CrossTraffic{MsgBytes: 64, BytesPerCycle: 4}, sim.NewClock(20))
}

func TestTorusDeterministicContention(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		n := New(eng, torusCfg())
		for i := 0; i < 50; i++ {
			n.Send(&Packet{Src: i % 32, Dst: (i*7 + 3) % 32, Class: ClassAM, HdrBytes: 24})
		}
		return eng.Run()
	}
	if run() != run() {
		t.Error("torus contention nondeterministic")
	}
}

func TestAdaptiveRoutingDeliversAndIsDeterministic(t *testing.T) {
	run := func() (sim.Time, int) {
		eng := sim.NewEngine()
		cfg := alewifeCfg()
		cfg.AdaptiveXY = true
		n := New(eng, cfg)
		got := 0
		for i := 0; i < 100; i++ {
			n.Send(&Packet{Src: i % 32, Dst: (i*11 + 5) % 32, Class: ClassAM, HdrBytes: 24,
				Deliver: func(now sim.Time, _ *Packet) { got++ }})
		}
		return eng.Run(), got
	}
	t1, g1 := run()
	t2, g2 := run()
	if g1 != 100 || g2 != 100 {
		t.Fatalf("delivered %d/%d of 100", g1, g2)
	}
	if t1 != t2 {
		t.Error("adaptive routing nondeterministic")
	}
}

func TestAdaptiveRoutingAvoidsHotColumn(t *testing.T) {
	// Flood the X links of row 0, then send a packet from (0,0) to (4,2):
	// XY order queues behind the flood, YX escapes it. The adaptive
	// network must deliver no later than the deterministic one.
	measure := func(adaptive bool) sim.Time {
		eng := sim.NewEngine()
		cfg := alewifeCfg()
		cfg.AdaptiveXY = adaptive
		n := New(eng, cfg)
		for i := 0; i < 30; i++ {
			n.Send(&Packet{Src: n.ID(0, 0), Dst: n.ID(7, 0), Class: ClassAM, HdrBytes: 64})
		}
		var at sim.Time
		n.Send(&Packet{Src: n.ID(0, 0), Dst: n.ID(4, 2), Class: ClassAM, HdrBytes: 24,
			Deliver: func(now sim.Time, _ *Packet) { at = now }})
		eng.Run()
		return at
	}
	det := measure(false)
	ada := measure(true)
	if ada > det {
		t.Errorf("adaptive delivery %v later than deterministic %v", ada, det)
	}
	if ada == det {
		t.Log("note: adaptive made no difference on this pattern")
	}
}
