package mesh

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// fixedFault is a hand-controlled FaultInjector for precise assertions.
type fixedFault struct {
	jitter         sim.Time
	blockA, blockB int
	until          sim.Time
}

func (f *fixedFault) PacketJitter() sim.Time { return f.jitter }

func (f *fixedFault) LinkBlockedUntil(a, b int, t sim.Time) sim.Time {
	if ((a == f.blockA && b == f.blockB) || (a == f.blockB && b == f.blockA)) && t < f.until {
		return f.until
	}
	return 0
}

func deliveryTime(t *testing.T, prep func(n *Network)) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	if prep != nil {
		prep(n)
	}
	var at sim.Time = -1
	n.Send(&Packet{Src: 0, Dst: 1, Class: ClassAM, HdrBytes: 8, PayloadBytes: 16,
		Deliver: func(now sim.Time, _ *Packet) { at = now }})
	eng.Run()
	if at < 0 {
		t.Fatal("packet never delivered")
	}
	return at
}

func TestJitterShiftsDeliveryExactly(t *testing.T) {
	base := deliveryTime(t, nil)
	const j = 5 * sim.Nanosecond
	got := deliveryTime(t, func(n *Network) {
		n.SetFaultInjector(&fixedFault{jitter: j})
	})
	if got != base+j {
		t.Errorf("jittered delivery at %v, want %v + %v", got, base, j)
	}
}

func TestOutageDelaysLinkReservation(t *testing.T) {
	base := deliveryTime(t, nil)
	until := 2 * sim.Microsecond
	got := deliveryTime(t, func(n *Network) {
		n.SetFaultInjector(&fixedFault{blockA: 0, blockB: 1, until: until})
	})
	if got <= base || got < until {
		t.Errorf("delivery at %v under outage until %v (baseline %v)", got, until, base)
	}
	// An outage on an unrelated link must not delay this packet.
	clear := deliveryTime(t, func(n *Network) {
		n.SetFaultInjector(&fixedFault{blockA: 30, blockB: 31, until: until})
	})
	if clear != base {
		t.Errorf("unrelated outage changed delivery: %v != %v", clear, base)
	}
}

func TestNilInjectorMatchesBaseline(t *testing.T) {
	base := deliveryTime(t, nil)
	got := deliveryTime(t, func(n *Network) {
		n.SetFaultInjector(&fixedFault{jitter: sim.Nanosecond})
		n.SetFaultInjector(nil)
	})
	if got != base {
		t.Errorf("nil injector delivery at %v, want baseline %v", got, base)
	}
}

func TestRealInjectorOutageCountsStats(t *testing.T) {
	cfg, err := fault.Parse("outage:node=*,start=0ps,dur=1us")
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(cfg, 1)
	base := deliveryTime(t, nil)
	got := deliveryTime(t, func(n *Network) { n.SetFaultInjector(in) })
	if got <= base {
		t.Errorf("delivery %v not delayed past baseline %v by a global outage", got, base)
	}
	if in.Stats().OutageDelays == 0 {
		t.Error("injector recorded no outage delays")
	}
}

func TestOccupiedLinksDump(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	// A large packet keeps its links reserved well past t=0.
	n.Send(&Packet{Src: 0, Dst: 2, Class: ClassBulk, HdrBytes: 8, PayloadBytes: 1024})
	occ := n.OccupiedLinks(0, 0)
	if len(occ) != 2 {
		t.Fatalf("OccupiedLinks = %v, want the two east links of the route", occ)
	}
	if !strings.Contains(occ[0], "east link") || !strings.Contains(occ[0], "0<->1") {
		t.Errorf("dump entry %q lacks direction and endpoints", occ[0])
	}
	if got := n.OccupiedLinks(0, 1); len(got) != 1 {
		t.Errorf("OccupiedLinks(max=1) returned %d entries", len(got))
	}
	eng.Run()
	if occ := n.OccupiedLinks(eng.Now(), 0); len(occ) != 0 {
		t.Errorf("links still occupied after drain: %v", occ)
	}
}

func TestLinkEndsRoundTrip(t *testing.T) {
	for _, torus := range []bool{false, true} {
		cfg := alewifeCfg()
		cfg.Torus = torus
		n := New(sim.NewEngine(), cfg)
		seen := map[[2]int]bool{}
		for d := range n.busyUntil {
			for i := range n.busyUntil[d] {
				a, b := n.linkEnds(d, i)
				if a < 0 || a >= n.Nodes() || b < 0 || b >= n.Nodes() || a == b {
					t.Fatalf("torus=%v dir=%d idx=%d: bad endpoints %d,%d", torus, d, i, a, b)
				}
				ax, ay := n.XY(a)
				bx, by := n.XY(b)
				dx, dy := bx-ax, by-ay
				if cfg.Torus {
					dx, dy = (dx+cfg.Width)%cfg.Width, (dy+cfg.Height)%cfg.Height
					if !((dx == 1 && dy == 0) || (dx == 0 && dy == 1)) {
						t.Fatalf("torus dir=%d idx=%d: %d->%d not adjacent", d, i, a, b)
					}
				} else if dx+dy != 1 || dx*dy != 0 {
					t.Fatalf("mesh dir=%d idx=%d: %d->%d not adjacent", d, i, a, b)
				}
				seen[[2]int{d, i}] = true
			}
		}
		if len(seen) == 0 {
			t.Fatal("no links enumerated")
		}
	}
}
