package mesh

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Class identifies what a packet carries, for volume accounting and for
// choosing the endpoint drain path (hardware CMMU vs processor handler).
type Class int

const (
	// ClassCohReq is a coherence read/write/upgrade request.
	ClassCohReq Class = iota
	// ClassCohInval is an invalidation or an invalidation acknowledgment.
	ClassCohInval
	// ClassCohAck is a protocol acknowledgment that is not part of
	// invalidation traffic (e.g. ownership grants without data).
	ClassCohAck
	// ClassCohData is a cache-line carrying coherence message.
	ClassCohData
	// ClassAM is a fine-grained active message.
	ClassAM
	// ClassBulk is a DMA bulk-transfer message.
	ClassBulk
	// ClassXTraffic is I/O cross-traffic used for bisection emulation;
	// it is accounted separately from application volume.
	ClassXTraffic
)

func (c Class) String() string {
	switch c {
	case ClassCohReq:
		return "coh-req"
	case ClassCohInval:
		return "coh-inval"
	case ClassCohAck:
		return "coh-ack"
	case ClassCohData:
		return "coh-data"
	case ClassAM:
		return "am"
	case ClassBulk:
		return "bulk"
	case ClassXTraffic:
		return "x-traffic"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Packet is one network message. HdrBytes+PayloadBytes is the wire size.
type Packet struct {
	Src, Dst     int
	Class        Class
	HdrBytes     int
	PayloadBytes int

	// Deliver is invoked when the endpoint accepts the packet. It runs in
	// engine context and must not block. Nil packets are absorbed.
	Deliver func(now sim.Time, p *Packet)

	// Payload carries model-level contents (protocol ops, AM args). The
	// network does not interpret it.
	Payload interface{}
}

// Size returns the wire size in bytes.
func (p *Packet) Size() int { return p.HdrBytes + p.PayloadBytes }

// Endpoint receives packets at a node. TryDeliver is offered a packet when
// its tail has fully arrived; returning ok=false applies back-pressure and
// the network retries at retryAt (which must be in the future).
type Endpoint interface {
	TryDeliver(now sim.Time, p *Packet) (ok bool, retryAt sim.Time)
}

// AcceptAll is an Endpoint that consumes every packet immediately.
type AcceptAll struct{}

// TryDeliver implements Endpoint.
func (AcceptAll) TryDeliver(now sim.Time, p *Packet) (bool, sim.Time) {
	if p.Deliver != nil {
		p.Deliver(now, p)
	}
	return true, 0
}

// Config parameterizes the mesh.
type Config struct {
	Width, Height int      // router grid; node id = y*Width + x
	HopLatency    sim.Time // per-router head latency
	PsPerByte     sim.Time // link serialization: time per byte
	// Torus adds wraparound links in both dimensions and routes each
	// dimension the short way around, doubling bisection bandwidth and
	// halving worst-case distance (the Cray T3D/T3E topologies of
	// Table 1). Cross-traffic emulation is mesh-only.
	Torus bool
	// AdaptiveXY enables minimal adaptive routing: each packet picks XY
	// or YX dimension order by whichever first link is free sooner
	// (deterministic given simulation state). Alewife's EMRC is
	// dimension-ordered; this exists as a network-design ablation.
	AdaptiveXY bool
}

// bisectionLinks counts directed links crossing the X-dimension middle
// cut: 2 per row for a mesh, 4 per row for a torus (the cut severs the
// ring twice).
func (c Config) bisectionLinks() int {
	if c.Torus {
		return 4 * c.Height
	}
	return 2 * c.Height
}

// BisectionBytesPerCycle returns the native bisection bandwidth in bytes
// per processor cycle for the given clock.
func (c Config) BisectionBytesPerCycle(clk sim.Clock) float64 {
	//lint:allow simlint/intmath reporting figure (bandwidth label); never feeds event times
	return float64(c.bisectionLinks()) * float64(clk.PsPerCycle()) / float64(c.PsPerByte)
}

// Network is a simulated 2-D mesh.
type Network struct {
	// engs[b] executes all traffic while it is inside row band b, and
	// bandOfRow maps a mesh row to its band; a row's links (its X links
	// plus the Y links leaving it) are reserved and accounted only by the
	// band's engine. An untiled network has a single band — engs[0] is
	// the engine passed to New — and the segmented walk in Send then
	// collapses to one eager in-line walk. See SetTiles.
	engs      []*sim.Engine
	bandOfRow []int
	cfg       Config

	// busyUntil[d][i] is the reservation horizon of directed link i in
	// direction d. X links: index y*(Width-1)+x for the link between
	// (x,y) and (x+1,y). Y links: index y*Width+x for the link between
	// (x,y) and (x,y+1).
	busyUntil [4][]sim.Time
	// linkBytes accumulates bytes serialized per directed link, for
	// utilization and hot-spot reporting.
	linkBytes [4][]int64

	endpoints []Endpoint

	// bc is per-band traffic accounting; each band's counters are only
	// written by its own engine, and the public accessors sum across
	// bands.
	bc []bandCounters

	stopX bool // stops cross-traffic generators

	// fault, when non-nil, perturbs link reservations and deliveries
	// (deterministic fault injection; see internal/fault).
	fault FaultInjector

	// noise, when non-nil, adds seeded stochastic per-packet delivery
	// delay (network noise; see internal/fault).
	noise NoiseInjector

	// Per-link instruments, allocated by SetMetrics; nil when metrics
	// are disabled (one nil check on the reservation path). Indexed like
	// busyUntil.
	mBusy  [4][]*obs.Counter // serialization time per link, ps
	mWait  [4][]*obs.Gauge   // high-water head wait (queueing delay), ps
	mQueue *obs.Histogram    // head wait distribution across all hops, ps
	// mQBand is per-band scratch for mQueue: every link is reserved only
	// by its owning band's engine, so each scratch histogram has a single
	// writer, and FinishMetrics folds them into mQueue after the run
	// (merge is commutative, so the snapshot is identical at every worker
	// count). Indexed like bc.
	mQBand []obs.Histogram
}

// bandCounters is one row band's share of the network's traffic
// accounting.
type bandCounters struct {
	// vol is application traffic volume by kind.
	vol stats.Volume
	// Cross-traffic accounting.
	xPackets, xBytes int64
	// Bytes that crossed the X-dimension bisection, by app vs cross.
	appBisectionBytes, xBisectionBytes int64

	packetsSent int64
	retries     int64
}

// FaultInjector perturbs network behaviour deterministically. It is
// implemented by *fault.Injector; the interface keeps the mesh decoupled
// from the fault package. Faults delay traffic but never drop it.
type FaultInjector interface {
	// PacketJitter returns the extra delivery delay for the next packet.
	// Called exactly once per packet, in send order.
	PacketJitter() sim.Time
	// LinkBlockedUntil reports when the link joining nodes a and b
	// becomes usable for a reservation desired at time t (0 = no outage).
	LinkBlockedUntil(a, b int, t sim.Time) sim.Time
}

// SetFaultInjector attaches a fault injector (nil disables injection).
// With no injector attached the timing paths are byte-identical to a
// fault-free build.
func (n *Network) SetFaultInjector(fi FaultInjector) { n.fault = fi }

// NoiseInjector adds stochastic per-packet delay. It is implemented by
// *fault.Injector; a separate interface from FaultInjector because noise
// carries its own seed and spec (machine.Config.NoiseSpec).
type NoiseInjector interface {
	// PacketDelay returns the extra delivery delay for the next packet
	// from src to dst. Called exactly once per packet, in delivery order
	// (serial engine only).
	PacketDelay(src, dst int) sim.Time
}

// SetNoiseInjector attaches a noise injector (nil disables injection).
// With no injector attached the timing paths are byte-identical to a
// noise-free build.
func (n *Network) SetNoiseInjector(ni NoiseInjector) { n.noise = ni }

// Directions for link indexing.
const (
	dirEast = iota
	dirWest
	dirNorth // +y
	dirSouth // -y
)

// dirNames renders link directions for diagnostics and metric labels.
var dirNames = [4]string{"east", "west", "north", "south"}

// linkName renders the canonical label of directed link (d, idx). Zero
// padding keeps lexicographic metric order equal to numeric link order.
func linkName(d, idx int) string { return fmt.Sprintf("%s%03d", dirNames[d], idx) }

// SetMetrics registers the mesh's instruments on reg and begins
// recording: per-link serialization time (utilization numerator),
// per-link high-water head wait (queueing backlog), and the head-wait
// distribution across all hops. Purely passive — enabling metrics never
// perturbs packet timing. Call before traffic flows; nil is ignored.
func (n *Network) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for d := range n.busyUntil {
		n.mBusy[d] = make([]*obs.Counter, len(n.busyUntil[d]))
		n.mWait[d] = make([]*obs.Gauge, len(n.busyUntil[d]))
		for i := range n.busyUntil[d] {
			n.mBusy[d][i] = reg.Counter("mesh_link_busy_ps", "link="+linkName(d, i))
			n.mWait[d][i] = reg.Gauge("mesh_link_wait_hw_ps", "link="+linkName(d, i))
		}
	}
	n.mQueue = reg.Histogram("mesh_hop_wait_ps", "")
	n.mQBand = make([]obs.Histogram, len(n.bc))
}

// FinishMetrics folds per-band scratch instruments into the registered
// registry entries. Call once after the run, before reading snapshots;
// single-threaded (the tile engines have joined by then).
func (n *Network) FinishMetrics() {
	if n.mQueue == nil {
		return
	}
	for i := range n.mQBand {
		n.mQueue.Merge(&n.mQBand[i])
		n.mQBand[i] = obs.Histogram{}
	}
}

// New creates a mesh network. All endpoints default to AcceptAll.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.Width < 1 || cfg.Height < 1 {
		panic(fmt.Sprintf("mesh: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.PsPerByte <= 0 {
		panic("mesh: PsPerByte must be positive")
	}
	n := &Network{
		engs:      []*sim.Engine{eng},
		bandOfRow: make([]int, cfg.Height),
		bc:        make([]bandCounters, 1),
		cfg:       cfg,
	}
	nx := (cfg.Width - 1) * cfg.Height
	ny := cfg.Width * (cfg.Height - 1)
	if cfg.Torus {
		nx = cfg.Width * cfg.Height
		ny = cfg.Width * cfg.Height
	}
	n.busyUntil[dirEast] = make([]sim.Time, nx)
	n.busyUntil[dirWest] = make([]sim.Time, nx)
	n.busyUntil[dirNorth] = make([]sim.Time, ny)
	n.busyUntil[dirSouth] = make([]sim.Time, ny)
	for d := range n.linkBytes {
		n.linkBytes[d] = make([]int64, len(n.busyUntil[d]))
	}
	n.endpoints = make([]Endpoint, cfg.Width*cfg.Height)
	for i := range n.endpoints {
		n.endpoints[i] = AcceptAll{}
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// SetTiles partitions execution across engines for the tiled parallel
// engine: row y's links are owned by engs[bandOfRow[y]], and a packet's
// walk hops engines (via sim.Engine.CrossAt) whenever it crosses a band
// boundary, so link state stays single-writer without locks. bandOfRow
// must assign every row a band, non-decreasing from 0 through
// len(engs)-1, so bands are contiguous row ranges. Because every band
// reserves at least one link — at least one HopLatency of simulated
// time — before a packet can leave it, HopLatency is a safe lookahead
// for the group's conservative windows.
func (n *Network) SetTiles(bandOfRow []int, engs []*sim.Engine) {
	if len(bandOfRow) != n.cfg.Height {
		panic(fmt.Sprintf("mesh: bandOfRow covers %d rows, mesh has %d", len(bandOfRow), n.cfg.Height))
	}
	prev := 0
	for y, b := range bandOfRow {
		if b < prev || b >= len(engs) {
			panic(fmt.Sprintf("mesh: bad band %d for row %d", b, y))
		}
		prev = b
	}
	if bandOfRow[0] != 0 || prev != len(engs)-1 {
		panic(fmt.Sprintf("mesh: %d bands must cover rows contiguously from band 0", len(engs)))
	}
	n.engs = append([]*sim.Engine(nil), engs...)
	n.bandOfRow = append([]int(nil), bandOfRow...)
	n.bc = make([]bandCounters, len(engs))
	if n.mQueue != nil {
		n.mQBand = make([]obs.Histogram, len(engs))
	}
}

// bandOf returns the band owning a node's row.
func (n *Network) bandOf(node int) int { return n.bandOfRow[node/n.cfg.Width] }

// Nodes returns the number of routers (compute endpoints).
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Attach installs ep as the endpoint of node id.
func (n *Network) Attach(id int, ep Endpoint) { n.endpoints[id] = ep }

// XY returns the mesh coordinates of node id.
func (n *Network) XY(id int) (x, y int) { return id % n.cfg.Width, id / n.cfg.Width }

// ID returns the node id at coordinates (x, y).
func (n *Network) ID(x, y int) int { return y*n.cfg.Width + x }

// Hops returns the dimension-order hop count between two nodes (shortest
// way around each ring for a torus).
func (n *Network) Hops(src, dst int) int {
	sx, sy := n.XY(src)
	dx, dy := n.XY(dst)
	hx, hy := abs(dx-sx), abs(dy-sy)
	if n.cfg.Torus {
		if w := n.cfg.Width - hx; w < hx {
			hx = w
		}
		if w := n.cfg.Height - hy; w < hy {
			hy = w
		}
	}
	return hx + hy
}

// stepX decides the next X move from x toward dx: +1 (east) or -1
// (west), taking the short way around on a torus.
func (n *Network) stepX(x, dx int) int {
	if !n.cfg.Torus {
		if dx > x {
			return 1
		}
		return -1
	}
	fwd := ((dx - x) + n.cfg.Width) % n.cfg.Width
	if fwd <= n.cfg.Width-fwd {
		return 1
	}
	return -1
}

func (n *Network) stepY(y, dy int) int {
	if !n.cfg.Torus {
		if dy > y {
			return 1
		}
		return -1
	}
	fwd := ((dy - y) + n.cfg.Height) % n.cfg.Height
	if fwd <= n.cfg.Height-fwd {
		return 1
	}
	return -1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Send injects p into the network at the current simulated time. The
// packet is routed X-then-Y; its Deliver callback (if any) runs when the
// destination endpoint accepts it. The returned time is when the packet's
// head actually enters its first link — under congestion this lags Now,
// which senders use to model finite output-queue depth. The first link
// is always owned by the sender's own band, so the departure time is
// resolved synchronously even when the rest of the walk continues on
// other engines.
func (n *Network) Send(p *Packet) sim.Time {
	band := n.bandOf(p.Src)
	now := n.engs[band].Now()
	n.bc[band].packetsSent++
	n.account(band, p)

	wk := &walk{
		p:      p,
		size:   sim.Time(p.Size()) * n.cfg.PsPerByte,
		head:   now,
		depart: now,
		first:  true,
	}
	wk.x, wk.y = n.XY(p.Src)
	wk.dx, wk.dy = n.XY(p.Dst)
	wk.yFirst = n.cfg.AdaptiveXY && wk.x != wk.dx && wk.y != wk.dy &&
		n.yFirstFreer(wk.x, wk.y, wk.dx, wk.dy)
	n.walkFrom(band, wk)
	return wk.depart
}

// walk is one packet's in-flight routing state. The route advances link
// by link inside the band that owns each link and hands off to the next
// band's engine at band boundaries, so every reservation is made by its
// owner. With one band the whole walk runs inline in Send and
// reproduces the eager single-engine behaviour event for event.
type walk struct {
	p      *Packet
	size   sim.Time
	head   sim.Time
	depart sim.Time
	first  bool
	x, y   int
	dx, dy int
	yFirst bool // route Y before X (the adaptive choice)
	cross  bool // crossed the X-dimension bisection
}

func (wk *walk) arrived() bool { return wk.x == wk.dx && wk.y == wk.dy }

// walkFrom advances wk through every link owned by band. When the walk
// leaves the band it resumes on the next band's engine at the head's
// arrival time; the handoff always follows at least one reservation in
// this band, so it lands at least one HopLatency past this engine's now
// — within the tiled engine's lookahead bound.
func (n *Network) walkFrom(band int, wk *walk) {
	for {
		if b := n.bandOfRow[wk.y]; b != band && !wk.arrived() {
			n.engs[band].CrossAt(n.engs[b], wk.head, func() { n.walkFrom(b, wk) })
			return
		}
		d, idx, ok := n.nextLink(wk)
		if !ok {
			break
		}
		wk.head = n.reserve(band, d, idx, wk.head, wk.size)
		if wk.first {
			wk.depart, wk.first = wk.head-n.cfg.HopLatency, false
		}
	}
	n.finish(band, wk)
}

// nextLink picks the packet's next directed link per dimension-ordered
// routing (X then Y, or Y then X when the adaptive choice flipped),
// advances the walk's position, and flags bisection crossings. ok=false
// means the packet has arrived.
func (n *Network) nextLink(wk *walk) (d, idx int, ok bool) {
	w, h := n.cfg.Width, n.cfg.Height
	switch {
	case wk.x != wk.dx && (!wk.yFirst || wk.y == wk.dy):
		if n.stepX(wk.x, wk.dx) > 0 {
			d = dirEast
			if n.cfg.Torus {
				idx = wk.y*w + wk.x
				if wk.x == w/2-1 || wk.x == w-1 {
					wk.cross = true
				}
			} else {
				idx = wk.y*(w-1) + wk.x
				if wk.x == w/2-1 {
					wk.cross = true
				}
			}
			wk.x = (wk.x + 1) % w
		} else {
			d = dirWest
			if n.cfg.Torus {
				idx = wk.y*w + (wk.x-1+w)%w
				if wk.x == w/2 || wk.x == 0 {
					wk.cross = true
				}
			} else {
				idx = wk.y*(w-1) + (wk.x - 1)
				if wk.x == w/2 {
					wk.cross = true
				}
			}
			wk.x = (wk.x - 1 + w) % w
		}
		return d, idx, true
	case wk.y != wk.dy:
		if n.stepY(wk.y, wk.dy) > 0 {
			d = dirNorth
			idx = wk.y*w + wk.x
			wk.y = (wk.y + 1) % h
		} else {
			d = dirSouth
			if n.cfg.Torus {
				idx = ((wk.y-1+h)%h)*w + wk.x
			} else {
				idx = (wk.y-1)*w + wk.x
			}
			wk.y = (wk.y - 1 + h) % h
		}
		return d, idx, true
	}
	return 0, 0, false
}

// finish completes an arrived walk in its final band: bisection
// accounting, tail timing, and delivery scheduling on the destination
// node's engine.
func (n *Network) finish(band int, wk *walk) {
	p := wk.p
	if wk.cross {
		if p.Class == ClassXTraffic {
			n.bc[band].xBisectionBytes += int64(p.Size())
		} else {
			n.bc[band].appBisectionBytes += int64(p.Size())
		}
	}
	// Head passes the routers plus the ejection stage; the tail follows
	// by the serialization time.
	tail := wk.head + n.cfg.HopLatency + wk.size
	if n.fault != nil {
		tail += n.fault.PacketJitter()
	}
	if n.noise != nil {
		tail += n.noise.PacketDelay(p.Src, p.Dst)
	}
	if db := n.bandOf(p.Dst); db != band {
		// A walk whose last link ends on the first row of another band
		// delivers there.
		n.engs[band].CrossAt(n.engs[db], tail, func() { n.deliver(p) })
	} else {
		n.engs[band].At(tail, func() { n.deliver(p) })
	}
}

// yFirstFreer reports whether the first Y-direction link out of (x,y) is
// free sooner than the first X-direction link (the adaptive XY/YX choice).
func (n *Network) yFirstFreer(x, y, dx, dy int) bool {
	w := n.cfg.Width
	var xd, xi int
	if n.stepX(x, dx) > 0 {
		xd = dirEast
		if n.cfg.Torus {
			xi = y*w + x
		} else {
			xi = y*(w-1) + x
		}
	} else {
		xd = dirWest
		if n.cfg.Torus {
			xi = y*w + (x-1+w)%w
		} else {
			xi = y*(w-1) + (x - 1)
		}
	}
	h := n.cfg.Height
	var yd, yi int
	if n.stepY(y, dy) > 0 {
		yd = dirNorth
		yi = y*w + x
	} else {
		yd = dirSouth
		if n.cfg.Torus {
			yi = ((y-1+h)%h)*w + x
		} else {
			yi = (y-1)*w + x
		}
	}
	return n.busyUntil[yd][yi] < n.busyUntil[xd][xi]
}

// reserve occupies directed link (d, idx) from the head's arrival and
// returns when the head reaches the next router. band is the owning row
// band (the caller's engine context), used to shard the hop-wait
// histogram.
func (n *Network) reserve(band, d, idx int, head, size sim.Time) sim.Time {
	start := head
	if bu := n.busyUntil[d][idx]; bu > start {
		start = bu
	}
	if n.fault != nil {
		a, b := n.linkEnds(d, idx)
		if u := n.fault.LinkBlockedUntil(a, b, start); u > start {
			start = u
		}
	}
	n.busyUntil[d][idx] = start + size
	n.linkBytes[d][idx] += int64(size / n.cfg.PsPerByte)
	if n.mBusy[d] != nil {
		n.mBusy[d][idx].Add(int64(size))
		wait := int64(start - head)
		n.mWait[d][idx].SetMax(wait)
		n.mQBand[band].Observe(wait)
	}
	return start + n.cfg.HopLatency
}

// linkEnds returns the node ids of the routers joined by directed link
// (d, idx), inverting the index scheme documented on busyUntil. Outage
// windows target nodes; a link is out when either endpoint is targeted.
func (n *Network) linkEnds(d, idx int) (a, b int) {
	w, h := n.cfg.Width, n.cfg.Height
	switch d {
	case dirEast, dirWest:
		if n.cfg.Torus {
			x, y := idx%w, idx/w
			return n.ID(x, y), n.ID((x+1)%w, y)
		}
		x, y := idx%(w-1), idx/(w-1)
		return n.ID(x, y), n.ID(x+1, y)
	default: // dirNorth, dirSouth
		x, y := idx%w, idx/w
		return n.ID(x, y), n.ID(x, (y+1)%h)
	}
}

func (n *Network) deliver(p *Packet) {
	if p.Class == ClassXTraffic {
		// Cross-traffic exits the mesh at the edge I/O nodes without
		// disturbing the compute node's network interface.
		return
	}
	band := n.bandOf(p.Dst)
	eng := n.engs[band]
	ep := n.endpoints[p.Dst]
	ok, retryAt := ep.TryDeliver(eng.Now(), p)
	if ok {
		return
	}
	n.bc[band].retries++
	if retryAt <= eng.Now() {
		retryAt = eng.Now() + n.cfg.HopLatency
	}
	eng.At(retryAt, func() { n.deliver(p) })
}

func (n *Network) account(band int, p *Packet) {
	bc := &n.bc[band]
	if p.Class == ClassXTraffic {
		bc.xPackets++
		bc.xBytes += int64(p.Size())
		return
	}
	switch p.Class {
	case ClassCohReq, ClassCohAck:
		bc.vol.Add(stats.VolRequests, int64(p.Size()))
	case ClassCohInval:
		bc.vol.Add(stats.VolInvalidates, int64(p.Size()))
	case ClassCohData, ClassAM, ClassBulk:
		bc.vol.Add(stats.VolHeaders, int64(p.HdrBytes))
		bc.vol.Add(stats.VolData, int64(p.PayloadBytes))
	}
}

// Volume returns accumulated application traffic volume by kind.
func (n *Network) Volume() stats.Volume {
	var v stats.Volume
	for i := range n.bc {
		for k, b := range n.bc[i].vol.Bytes {
			v.Bytes[k] += b
		}
	}
	return v
}

// PacketsSent returns the count of application and cross-traffic packets.
func (n *Network) PacketsSent() int64 {
	var t int64
	for i := range n.bc {
		t += n.bc[i].packetsSent
	}
	return t
}

// Retries returns how many endpoint deliveries were back-pressured.
func (n *Network) Retries() int64 {
	var t int64
	for i := range n.bc {
		t += n.bc[i].retries
	}
	return t
}

// CrossTrafficStats returns injected cross-traffic packet and byte counts.
func (n *Network) CrossTrafficStats() (packets, bytes int64) {
	for i := range n.bc {
		packets += n.bc[i].xPackets
		bytes += n.bc[i].xBytes
	}
	return packets, bytes
}

// BisectionCrossings returns bytes that crossed the mesh's X bisection,
// split into application and cross-traffic bytes.
func (n *Network) BisectionCrossings() (app, cross int64) {
	for i := range n.bc {
		app += n.bc[i].appBisectionBytes
		cross += n.bc[i].xBisectionBytes
	}
	return app, cross
}

// CrossTraffic describes the paper's bisection-emulation workload: I/O
// nodes on both edges of the mesh stream fixed-size messages across the
// bisection in both directions (Figure 6).
type CrossTraffic struct {
	// MsgBytes is the cross-traffic message size (the paper settles on 64).
	MsgBytes int
	// BytesPerCycle is the aggregate injection rate across the bisection,
	// in bytes per processor cycle (this is what is subtracted from the
	// native bisection to obtain the emulated bisection).
	BytesPerCycle float64
}

// StartCrossTraffic launches cross-traffic generators: one per row per
// direction, each sending MsgBytes-sized packets across the full width of
// the mesh at an even share of the aggregate rate. Generators run until
// StopCrossTraffic. Offsets are staggered deterministically to avoid
// phase-locking artifacts.
func (n *Network) StartCrossTraffic(ct CrossTraffic, clk sim.Clock) {
	if n.cfg.Torus {
		panic("mesh: cross-traffic bisection emulation requires a mesh (the paper's topology)")
	}
	if len(n.engs) > 1 {
		// Generators share one stop flag and tick on a single engine;
		// the machine layer gates cross-traffic runs to the serial path.
		panic("mesh: cross-traffic generators require the serial engine")
	}
	if ct.BytesPerCycle <= 0 || ct.MsgBytes <= 0 {
		return
	}
	n.stopX = false
	gens := 2 * n.cfg.Height
	//lint:allow simlint/intmath one-time generator-period setup, latched as integer Time before any event runs; cross-traffic also forces the serial engine
	perGen := ct.BytesPerCycle / float64(gens)
	//lint:allow simlint/intmath one-time generator-period setup, latched as integer Time before any event runs
	periodCycles := float64(ct.MsgBytes) / perGen
	//lint:allow simlint/intmath one-time generator-period setup, latched as integer Time before any event runs
	period := sim.Time(periodCycles * float64(clk.PsPerCycle()))
	if period <= 0 {
		period = 1
	}
	for g := 0; g < gens; g++ {
		y := g / 2
		eastbound := g%2 == 0
		src, dst := n.ID(0, y), n.ID(n.cfg.Width-1, y)
		if !eastbound {
			src, dst = dst, src
		}
		offset := period * sim.Time(g) / sim.Time(gens)
		n.scheduleXGen(src, dst, ct.MsgBytes, period, offset)
	}
}

func (n *Network) scheduleXGen(src, dst, size int, period, offset sim.Time) {
	var tick func()
	tick = func() {
		if n.stopX {
			return
		}
		n.Send(&Packet{
			Src: src, Dst: dst, Class: ClassXTraffic,
			HdrBytes: 8, PayloadBytes: size - 8,
		})
		n.engs[0].After(period, tick)
	}
	n.engs[0].After(offset, tick)
}

// StopCrossTraffic halts all cross-traffic generators after their next
// tick check.
func (n *Network) StopCrossTraffic() { n.stopX = true }

// LinkStats summarizes per-link load over an elapsed interval.
type LinkStats struct {
	AvgUtilization float64 // mean fraction of link time spent serializing
	MaxUtilization float64 // the hottest link's fraction
	Hotspot        string  // human-readable hottest link
	TotalBytes     int64   // sum over all links (bytes x hops traversed)
}

// LinkStats computes utilization over the interval [0, elapsed]: a
// link's utilization is its serialized bytes times PsPerByte over the
// elapsed time. Use it to see where the paper's congestion-dominated
// region comes from.
func (n *Network) LinkStats(elapsed sim.Time) LinkStats {
	if elapsed <= 0 {
		return LinkStats{}
	}
	var st LinkStats
	links := 0
	for d := range n.linkBytes {
		for i, b := range n.linkBytes[d] {
			st.TotalBytes += b
			//lint:allow simlint/intmath post-run utilization reporting; never feeds event times
			u := float64(b) * float64(n.cfg.PsPerByte) / float64(elapsed)
			//lint:allow simlint/intmath post-run utilization reporting; never feeds event times
			st.AvgUtilization += u
			links++
			if u > st.MaxUtilization {
				st.MaxUtilization = u
				st.Hotspot = fmt.Sprintf("%s link %d", dirNames[d], i)
			}
		}
	}
	if links > 0 {
		//lint:allow simlint/intmath post-run utilization reporting; never feeds event times
		st.AvgUtilization /= float64(links)
	}
	return st
}

// OccupiedLinks lists the directed links still reserved past now, most
// heavily loaded first is not guaranteed — order follows link indexing.
// At most max entries are returned (0 means no limit). Used by watchdog
// diagnostics to show where traffic is parked when a run stalls.
func (n *Network) OccupiedLinks(now sim.Time, max int) []string {
	var out []string
	for d := range n.busyUntil {
		for i, bu := range n.busyUntil[d] {
			if bu <= now {
				continue
			}
			a, b := n.linkEnds(d, i)
			out = append(out, fmt.Sprintf("%s link %d (%d<->%d) busy until %v", dirNames[d], i, a, b, bu))
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// LinkLoad is one directed link's traffic summary, for hot-spot
// reporting (run logs, telemetry).
type LinkLoad struct {
	Link        string  // canonical link name, e.g. "east003"
	A, B        int     // joined router node ids
	Bytes       int64   // bytes serialized over the run (bytes x hops)
	Utilization float64 // fraction of the elapsed interval spent serializing
}

// TopLinks returns the k most heavily loaded directed links over the
// interval [0, elapsed], sorted by bytes descending with the canonical
// link name as a deterministic tie-break. Links that carried no traffic
// are omitted, so the result may be shorter than k.
func (n *Network) TopLinks(elapsed sim.Time, k int) []LinkLoad {
	if k <= 0 || elapsed <= 0 {
		return nil
	}
	var all []LinkLoad
	for d := range n.linkBytes {
		for i, b := range n.linkBytes[d] {
			if b == 0 {
				continue
			}
			a, bb := n.linkEnds(d, i)
			all = append(all, LinkLoad{
				Link: linkName(d, i), A: a, B: bb, Bytes: b,
				//lint:allow simlint/intmath post-run utilization reporting; never feeds event times
				Utilization: float64(b) * float64(n.cfg.PsPerByte) / float64(elapsed),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Bytes != all[j].Bytes {
			return all[i].Bytes > all[j].Bytes
		}
		return all[i].Link < all[j].Link
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// UncongestedLatency returns the no-contention delivery time for a packet
// of size bytes over hops hops.
func (n *Network) UncongestedLatency(hops, size int) sim.Time {
	return sim.Time(hops+1)*n.cfg.HopLatency + sim.Time(size)*n.cfg.PsPerByte
}

// AvgHops returns the average dimension-order distance between distinct
// compute nodes, useful for calibration.
func (n *Network) AvgHops() float64 {
	total, pairs := 0, 0
	for s := 0; s < n.Nodes(); s++ {
		for d := 0; d < n.Nodes(); d++ {
			if s == d {
				continue
			}
			total += n.Hops(s, d)
			pairs++
		}
	}
	//lint:allow simlint/intmath topology statistic for docs/experiments; never feeds event times
	return float64(total) / float64(pairs)
}
