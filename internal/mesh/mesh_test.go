package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
)

// alewifeCfg mirrors the calibrated machine defaults: 8x4 mesh, 2.25
// bytes/cycle/link at 20MHz (22222 ps/byte), 0.8-cycle hop latency.
func alewifeCfg() Config {
	return Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223}
}

func TestXYIDRoundTrip(t *testing.T) {
	n := New(sim.NewEngine(), alewifeCfg())
	for id := 0; id < n.Nodes(); id++ {
		x, y := n.XY(id)
		if n.ID(x, y) != id {
			t.Fatalf("ID(XY(%d)) = %d", id, n.ID(x, y))
		}
		if x < 0 || x >= 8 || y < 0 || y >= 4 {
			t.Fatalf("node %d out of grid: (%d,%d)", id, x, y)
		}
	}
}

func TestHopsManhattan(t *testing.T) {
	n := New(sim.NewEngine(), alewifeCfg())
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 7, 7},
		{0, 31, 10}, // (0,0) -> (7,3)
		{n.ID(3, 1), n.ID(5, 2), 3},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	n := New(sim.NewEngine(), alewifeCfg())
	prop := func(a, b uint8) bool {
		s, d := int(a)%n.Nodes(), int(b)%n.Nodes()
		return n.Hops(s, d) == n.Hops(d, s)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUncongestedDeliveryTime(t *testing.T) {
	eng := sim.NewEngine()
	cfg := alewifeCfg()
	n := New(eng, cfg)
	var at sim.Time = -1
	p := &Packet{
		Src: 0, Dst: n.ID(4, 2), Class: ClassAM, HdrBytes: 8, PayloadBytes: 16,
		Deliver: func(now sim.Time, _ *Packet) { at = now },
	}
	n.Send(p)
	eng.Run()
	hops := n.Hops(0, n.ID(4, 2)) // 6
	want := n.UncongestedLatency(hops, 24)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
	// Sanity: a 24-byte packet over ~avg distance should be ~15 cycles
	// at 20MHz (the paper's Table 1 Alewife row).
	clk := sim.NewClock(20)
	cycles := clk.ToCyclesF(want)
	if cycles < 12 || cycles < 0 || cycles > 19 {
		t.Errorf("24B delivery = %.1f cycles, want ~15", cycles)
	}
}

func TestLocalDelivery(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	var at sim.Time = -1
	n.Send(&Packet{Src: 3, Dst: 3, Class: ClassAM, HdrBytes: 8,
		Deliver: func(now sim.Time, _ *Packet) { at = now }})
	eng.Run()
	if at < 0 {
		t.Fatal("local packet never delivered")
	}
	if at != n.UncongestedLatency(0, 8) {
		t.Errorf("local delivery at %v, want %v", at, n.UncongestedLatency(0, 8))
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	eng := sim.NewEngine()
	cfg := alewifeCfg()
	n := New(eng, cfg)
	// Two same-size packets over the same single link: the second's tail
	// must arrive one serialization time after the first's.
	var times []sim.Time
	deliver := func(now sim.Time, _ *Packet) { times = append(times, now) }
	for i := 0; i < 2; i++ {
		n.Send(&Packet{Src: 0, Dst: 1, Class: ClassAM, HdrBytes: 8, PayloadBytes: 56, Deliver: deliver})
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(times))
	}
	gap := times[1] - times[0]
	want := sim.Time(64) * cfg.PsPerByte
	if gap != want {
		t.Errorf("second delivery gap = %v, want serialization %v", gap, want)
	}
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	var times []sim.Time
	deliver := func(now sim.Time, _ *Packet) { times = append(times, now) }
	// Rows 0 and 1: completely disjoint X paths.
	n.Send(&Packet{Src: n.ID(0, 0), Dst: n.ID(7, 0), Class: ClassAM, HdrBytes: 24, Deliver: deliver})
	n.Send(&Packet{Src: n.ID(0, 1), Dst: n.ID(7, 1), Class: ClassAM, HdrBytes: 24, Deliver: deliver})
	eng.Run()
	if times[0] != times[1] {
		t.Errorf("disjoint packets delivered at %v and %v, want equal", times[0], times[1])
	}
}

func TestDimensionOrderRoutingCrossesBisection(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	n.Send(&Packet{Src: n.ID(0, 0), Dst: n.ID(7, 3), Class: ClassAM, HdrBytes: 24})
	eng.Run()
	app, cross := n.BisectionCrossings()
	if app != 24 || cross != 0 {
		t.Errorf("bisection crossings app=%d cross=%d, want 24, 0", app, cross)
	}
	// A packet within the left half must not cross.
	n.Send(&Packet{Src: n.ID(0, 0), Dst: n.ID(3, 3), Class: ClassAM, HdrBytes: 24})
	eng.Run()
	app, _ = n.BisectionCrossings()
	if app != 24 {
		t.Errorf("intra-half packet crossed bisection: app=%d", app)
	}
}

func TestVolumeAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	n.Send(&Packet{Src: 0, Dst: 1, Class: ClassCohReq, HdrBytes: 8})
	n.Send(&Packet{Src: 0, Dst: 1, Class: ClassCohInval, HdrBytes: 8})
	n.Send(&Packet{Src: 0, Dst: 1, Class: ClassCohData, HdrBytes: 8, PayloadBytes: 16})
	n.Send(&Packet{Src: 0, Dst: 1, Class: ClassAM, HdrBytes: 8, PayloadBytes: 40})
	eng.Run()
	v := n.Volume()
	if v.Bytes[stats.VolRequests] != 8 {
		t.Errorf("requests = %d, want 8", v.Bytes[stats.VolRequests])
	}
	if v.Bytes[stats.VolInvalidates] != 8 {
		t.Errorf("invalidates = %d, want 8", v.Bytes[stats.VolInvalidates])
	}
	if v.Bytes[stats.VolHeaders] != 16 {
		t.Errorf("headers = %d, want 16", v.Bytes[stats.VolHeaders])
	}
	if v.Bytes[stats.VolData] != 56 {
		t.Errorf("data = %d, want 56", v.Bytes[stats.VolData])
	}
}

type rejectingEndpoint struct {
	rejects int
	got     int
	when    []sim.Time
}

func (r *rejectingEndpoint) TryDeliver(now sim.Time, p *Packet) (bool, sim.Time) {
	if r.rejects > 0 {
		r.rejects--
		return false, now + 1000
	}
	r.got++
	r.when = append(r.when, now)
	return true, 0
}

func TestEndpointBackpressureRetries(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	ep := &rejectingEndpoint{rejects: 3}
	n.Attach(1, ep)
	n.Send(&Packet{Src: 0, Dst: 1, Class: ClassAM, HdrBytes: 8})
	eng.Run()
	if ep.got != 1 {
		t.Fatalf("packet delivered %d times, want 1", ep.got)
	}
	if n.Retries() != 3 {
		t.Errorf("retries = %d, want 3", n.Retries())
	}
}

func TestCrossTrafficInjectsAndIsAbsorbed(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	clk := sim.NewClock(20)
	got := 0
	n.Attach(n.ID(7, 0), epFunc(func(now sim.Time, p *Packet) (bool, sim.Time) {
		got++
		return true, 0
	}))
	n.StartCrossTraffic(CrossTraffic{MsgBytes: 64, BytesPerCycle: 8}, clk)
	eng.RunUntil(clk.Cycles(10000))
	n.StopCrossTraffic()
	pkts, bytes := n.CrossTrafficStats()
	if pkts == 0 {
		t.Fatal("no cross-traffic injected")
	}
	if bytes != pkts*64 {
		t.Errorf("bytes = %d, want %d", bytes, pkts*64)
	}
	if got != 0 {
		t.Errorf("cross-traffic disturbed a compute endpoint %d times", got)
	}
	// Rate check: 8 bytes/cycle for 10000 cycles = ~80000 bytes.
	if bytes < 70000 || bytes > 90000 {
		t.Errorf("cross bytes = %d, want ~80000", bytes)
	}
	_, cross := n.BisectionCrossings()
	if cross != bytes {
		t.Errorf("bisection cross bytes = %d, want all %d", cross, bytes)
	}
	// Generators stop.
	eng.RunUntil(clk.Cycles(20000))
	pkts2, _ := n.CrossTrafficStats()
	if pkts2 > pkts+int64(2*4) { // at most one in-flight tick per generator
		t.Errorf("cross-traffic kept flowing after stop: %d -> %d", pkts, pkts2)
	}
}

type epFunc func(now sim.Time, p *Packet) (bool, sim.Time)

func (f epFunc) TryDeliver(now sim.Time, p *Packet) (bool, sim.Time) { return f(now, p) }

func TestCrossTrafficDegradesAppLatency(t *testing.T) {
	// An app packet crossing the bisection must be slower under heavy
	// cross-traffic than without it.
	measure := func(rate float64) sim.Time {
		eng := sim.NewEngine()
		n := New(eng, alewifeCfg())
		clk := sim.NewClock(20)
		if rate > 0 {
			n.StartCrossTraffic(CrossTraffic{MsgBytes: 64, BytesPerCycle: rate}, clk)
		}
		// Warm the network, then time one packet.
		eng.RunUntil(clk.Cycles(5000))
		var sent, recv sim.Time
		sent = eng.Now()
		n.Send(&Packet{Src: n.ID(0, 0), Dst: n.ID(7, 0), Class: ClassAM, HdrBytes: 24,
			Deliver: func(now sim.Time, _ *Packet) { recv = now; eng.Stop() }})
		eng.Run()
		n.StopCrossTraffic()
		return recv - sent
	}
	free := measure(0)
	// 16 bytes/cycle of cross traffic on an 18 bytes/cycle bisection.
	loaded := measure(16)
	if loaded <= free {
		t.Errorf("latency under load %v <= unloaded %v", loaded, free)
	}
}

func TestBisectionBytesPerCycle(t *testing.T) {
	cfg := alewifeCfg()
	clk := sim.NewClock(20)
	got := cfg.BisectionBytesPerCycle(clk)
	if got < 17.5 || got > 18.5 {
		t.Errorf("native bisection = %.2f bytes/cycle, want ~18 (Table 1)", got)
	}
}

func TestAvgHops(t *testing.T) {
	n := New(sim.NewEngine(), alewifeCfg())
	avg := n.AvgHops()
	// 8x4 mesh: E[|dx|]=2.625, E[|dy|]=1.25 over distinct pairs ~ 4.0.
	if avg < 3.5 || avg > 4.5 {
		t.Errorf("avg hops = %.2f, want ~4", avg)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Width: 0, Height: 4, PsPerByte: 1},
		{Width: 8, Height: 4, PsPerByte: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(sim.NewEngine(), cfg)
		}()
	}
}

func TestClassString(t *testing.T) {
	for c := ClassCohReq; c <= ClassXTraffic; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty string", int(c))
		}
	}
}

func TestLinkStats(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, alewifeCfg())
	for i := 0; i < 10; i++ {
		n.Send(&Packet{Src: 0, Dst: 7, Class: ClassAM, HdrBytes: 24})
	}
	end := eng.Run()
	st := n.LinkStats(end)
	if st.TotalBytes != 10*24*7 {
		t.Errorf("total link bytes = %d, want %d (10 packets x 24B x 7 hops)",
			st.TotalBytes, 10*24*7)
	}
	if st.MaxUtilization <= st.AvgUtilization {
		t.Error("hotspot not above average")
	}
	if st.Hotspot == "" {
		t.Error("no hotspot named")
	}
	if st.MaxUtilization > 1.01 {
		t.Errorf("utilization %f above 1", st.MaxUtilization)
	}
	if z := n.LinkStats(0); z.TotalBytes != 0 {
		t.Error("zero-elapsed stats should be empty")
	}
}

func TestLinkStatsCongestion(t *testing.T) {
	// A saturating flood should push the first link toward ~1.0.
	eng := sim.NewEngine()
	cfg := alewifeCfg()
	n := New(eng, cfg)
	for i := 0; i < 200; i++ {
		n.Send(&Packet{Src: 0, Dst: 1, Class: ClassAM, HdrBytes: 64})
	}
	end := eng.Run()
	st := n.LinkStats(end)
	if st.MaxUtilization < 0.9 {
		t.Errorf("flooded link utilization %.2f, want ~1.0", st.MaxUtilization)
	}
}

// Property: no packet is ever delivered earlier than its uncongested
// latency (conservation of physics under any contention pattern).
func TestDeliveryLowerBoundProperty(t *testing.T) {
	prop := func(seeds []uint16) bool {
		if len(seeds) == 0 || len(seeds) > 60 {
			return true
		}
		eng := sim.NewEngine()
		n := New(eng, alewifeCfg())
		ok := true
		for _, s := range seeds {
			src := int(s) % 32
			dst := int(s/32) % 32
			size := 8 + int(s)%56
			sendAt := eng.Now()
			hops := n.Hops(src, dst)
			lb := n.UncongestedLatency(hops, size)
			n.Send(&Packet{Src: src, Dst: dst, Class: ClassAM,
				HdrBytes: 8, PayloadBytes: size - 8,
				Deliver: func(now sim.Time, _ *Packet) {
					if now-sendAt < lb {
						ok = false
					}
				}})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
