package psync

import (
	"testing"

	"repro/internal/machine"
)

func TestSMCentralBarrierSynchronizes(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewSMCentralBarrier(m)
	var maxBefore, minAfter int64 = 0, 1 << 62
	m.Run(func(p *machine.Proc) {
		p.Compute(int64(p.ID) * 90)
		if c := p.NowCycles(); c > maxBefore {
			maxBefore = c
		}
		b.Wait(p)
		if c := p.NowCycles(); c < minAfter {
			minAfter = c
		}
	})
	if minAfter < maxBefore {
		t.Errorf("left central barrier at %d before last arrival %d", minAfter, maxBefore)
	}
}

func TestSMCentralBarrierReusable(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewSMCentralBarrier(m)
	counts := make([]int, 32)
	m.Run(func(p *machine.Proc) {
		for it := 0; it < 4; it++ {
			counts[p.ID]++
			b.Wait(p)
			for _, c := range counts {
				if c != counts[p.ID] {
					t.Errorf("skew after central barrier: %v", counts)
					return
				}
			}
			b.Wait(p)
		}
	})
}

func TestTreeBarrierBeatsOrMatchesCentralUnderRepetition(t *testing.T) {
	measure := func(central bool) int64 {
		m := machine.New(machine.DefaultConfig())
		var wait func(p *machine.Proc)
		if central {
			wait = NewSMCentralBarrier(m).Wait
		} else {
			wait = NewSMBarrier(m).Wait
		}
		return m.Run(func(p *machine.Proc) {
			for i := 0; i < 10; i++ {
				wait(p)
			}
		}).Cycles
	}
	tree, central := measure(false), measure(true)
	if tree > central*11/10 {
		t.Errorf("tree barrier %d cycles not competitive with central %d", tree, central)
	}
}

func TestSMBarrierTreeStructure(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewSMBarrier(m)
	// 32 procs, arity 4: 8 leaves + 2 mid + 1 root = 11 nodes.
	if len(b.counters) != 11 {
		t.Errorf("tree has %d nodes, want 11", len(b.counters))
	}
	roots := 0
	for _, p := range b.parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("tree has %d roots", roots)
	}
	// Expected arrivals: leaves 4 each, mids 4, root 2.
	total := 0
	for i, e := range b.expect {
		if e < 1 || e > barrierArity {
			t.Errorf("node %d expects %d", i, e)
		}
		total += e
	}
	if total != 32+8+2 {
		t.Errorf("total expected arrivals %d, want 42", total)
	}
}
