package psync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

func TestRCLockProtectedAccumulateExact(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mem.Consistency = mem.RC
	m := machine.New(cfg)
	// Block [lock, a0][a1, a2] like UNSTRUC's accumulators.
	base := m.Alloc(0, 4)
	l := LockAt(m, base)
	const per = 20
	m.Run(func(p *machine.Proc) {
		for i := 0; i < per; i++ {
			l.Acquire(p)
			for k := 1; k <= 3; k++ {
				ad := base + mem.Addr(k)
				p.Write(ad, p.Read(ad)+1)
			}
			l.Release(p)
		}
	})
	for k := 1; k <= 3; k++ {
		if got := m.Store.Peek(base + mem.Addr(k)); got != 32*per {
			t.Errorf("word %d = %v, want %d", k, got, 32*per)
		}
	}
}
