package psync

import (
	"fmt"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// traceEvent records a synchronization event when tracing is enabled.
// TraceFor routes to the calling node's tile-local ring under the tiled
// engine (the merged Machine.Trace only exists after Run).
func traceEvent(m *machine.Machine, p *machine.Proc, kind trace.Kind, a, b int64) {
	if tr := m.TraceFor(p.ID); tr != nil {
		tr.Add(trace.Event{At: p.Now(), Node: p.ID, Kind: kind, A: a, B: b})
	}
}

// critBarrier records a barrier arrive→release causal edge. The wait
// itself is already charged to synchronization (with any in-network
// portion reattributed by the miss/message wait hooks); the edge names
// the dependency for the timeline lane and top-edge summary.
func critBarrier(m *machine.Machine, p *machine.Proc, start sim.Time) {
	if m.Crit != nil {
		m.Crit.Edge(p.ID, obs.CritEdge{Kind: "barrier", Src: p.ID, Dst: p.ID, Start: start, End: p.Now()})
	}
}

// ---------------------------------------------------------------------------
// Shared-memory barrier
// ---------------------------------------------------------------------------

// SMBarrier is a software combining-tree barrier in shared memory (the
// standard scalable barrier for invalidation-protocol machines): arrivals
// combine up a 4-ary tree of counters distributed across nodes, and the
// release flips per-subtree generation flags on the way down, so both
// fan-in and fan-out are parallel across the tree rather than serialized
// on one hot line.
type SMBarrier struct {
	m *machine.Machine
	n int

	// Tree node i has counter counters[i] (own line) and generation flag
	// gens[i] (own line). Processor p arrives at leaf group p/arity.
	counters []mem.Addr
	gens     []mem.Addr
	parent   []int
	expect   []int // arrivals expected at each tree node
}

const barrierArity = 4

// NewSMBarrier allocates a combining-tree barrier for all processors.
func NewSMBarrier(m *machine.Machine) *SMBarrier {
	b := &SMBarrier{m: m, n: m.Cfg.Nodes()}
	// Build the tree bottom-up: level 0 groups of barrierArity procs.
	groups := (b.n + barrierArity - 1) / barrierArity
	level := make([]int, 0, groups)
	for g := 0; g < groups; g++ {
		id := b.addNode(g*barrierArity, minInt(barrierArity, b.n-g*barrierArity))
		level = append(level, id)
	}
	for len(level) > 1 {
		var next []int
		for off := 0; off < len(level); off += barrierArity {
			end := minInt(off+barrierArity, len(level))
			// Parent homed at the first child's home node.
			pid := b.addNode(b.homeOf(level[off]), end-off)
			for _, c := range level[off:end] {
				b.parent[c] = pid
			}
			next = append(next, pid)
		}
		level = next
	}
	b.parent[level[0]] = -1
	return b
}

// addNode allocates a tree node's counter and flag homed at node home,
// expecting expect arrivals, and returns its index.
func (b *SMBarrier) addNode(home, expect int) int {
	home = home % b.n
	b.counters = append(b.counters, b.m.Alloc(home, 2))
	b.gens = append(b.gens, b.m.Alloc(home, 2))
	b.parent = append(b.parent, -1)
	b.expect = append(b.expect, expect)
	return len(b.counters) - 1
}

func (b *SMBarrier) homeOf(node int) int {
	return b.m.Store.Home(b.counters[node])
}

func minInt(a, c int) int {
	if a < c {
		return a
	}
	return c
}

// Wait blocks p until all processors have arrived.
func (b *SMBarrier) Wait(p *machine.Proc) {
	p.Ev.BarrierArrivals++
	arriveAt := p.Now()
	traceEvent(b.m, p, trace.KBarrier, 0, 0)
	// Sense value for this episode, read before arriving. This must be a
	// real load, not a backdoor peek: under release consistency the
	// previous episode's releaser may still have its own gen-flip store
	// in the write buffer, and only the load path forwards it.
	myGen := p.ReadSync(b.gens[0])
	b.arrive(p, p.ID/barrierArity)
	backoff := int64(10)
	for p.ReadSync(b.gens[0]) == myGen {
		p.SpinCycles(backoff)
		if backoff < 160 {
			backoff *= 2
		}
	}
	critBarrier(b.m, p, arriveAt)
}

// arrive combines an arrival into tree node id, recursing upward when the
// subtree is complete; the processor completing the root performs the
// release (one write that invalidates every spinner's cached flag).
func (b *SMBarrier) arrive(p *machine.Proc, id int) {
	last := p.RMWSync(b.counters[id], func(v float64) float64 { return v + 1 })
	if int(last) < b.expect[id] {
		return
	}
	p.WriteSync(b.counters[id], 0)
	if b.parent[id] >= 0 {
		b.arrive(p, b.parent[id])
		return
	}
	// Release semantics: the counter resets must be visible before the
	// generation flip frees the spinners (matters under RC).
	p.Fence()
	p.WriteSync(b.gens[0], p.Peek(b.gens[0])+1)
}

// ---------------------------------------------------------------------------
// Centralized shared-memory barrier (ablation baseline)
// ---------------------------------------------------------------------------

// SMCentralBarrier is the naive single-counter barrier: every arrival is
// an atomic increment of one hot line and every waiter spins on one
// generation flag. It exists as the ablation baseline for the combining
// tree (see the ablation benchmarks): on 32 processors its arrivals
// serialize through one home node.
type SMCentralBarrier struct {
	m       *machine.Machine
	n       int
	counter mem.Addr
	gen     mem.Addr
}

// NewSMCentralBarrier allocates the barrier, homed at node 0.
func NewSMCentralBarrier(m *machine.Machine) *SMCentralBarrier {
	return &SMCentralBarrier{
		m: m, n: m.Cfg.Nodes(),
		counter: m.Alloc(0, 2),
		gen:     m.Alloc(0, 2),
	}
}

// Wait blocks p until all processors have arrived.
func (b *SMCentralBarrier) Wait(p *machine.Proc) {
	p.Ev.BarrierArrivals++
	arriveAt := p.Now()
	myGen := p.ReadSync(b.gen) // forwarding load; see SMBarrier.Wait

	last := p.RMWSync(b.counter, func(v float64) float64 { return v + 1 })
	if int(last) == b.n {
		p.WriteSync(b.counter, 0)
		p.Fence() // release semantics under RC
		p.WriteSync(b.gen, myGen+1)
		critBarrier(b.m, p, arriveAt)
		return
	}
	backoff := int64(10)
	for p.ReadSync(b.gen) == myGen {
		p.SpinCycles(backoff)
		if backoff < 160 {
			backoff *= 2
		}
	}
	critBarrier(b.m, p, arriveAt)
}

// ---------------------------------------------------------------------------
// Message-passing tree barrier
// ---------------------------------------------------------------------------

// MsgBarrier is a binary-tree barrier over active messages: arrivals fan
// in to the root, the release fans back out, handler-forwarded. Build it
// before Machine.Run (it registers handlers).
type MsgBarrier struct {
	m        *machine.Machine
	n        int
	arriveH  am.HandlerID
	releaseH am.HandlerID
	arrived  []int // pending child arrivals per node
	released []int // pending releases per node
}

// NewMsgBarrier registers the barrier's handlers on m.
func NewMsgBarrier(m *machine.Machine) *MsgBarrier {
	b := &MsgBarrier{m: m, n: m.Cfg.Nodes()}
	b.arrived = make([]int, b.n)
	b.released = make([]int, b.n)
	b.arriveH = m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		b.arrived[c.Node]++
	})
	b.releaseH = m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		b.released[c.Node]++
		// Forward the release down the tree from within the handler.
		for _, ch := range b.children(c.Node) {
			c.Reply(ch, b.releaseH, nil, nil)
		}
	})
	return b
}

func (b *MsgBarrier) children(id int) []int {
	var cs []int
	if l := 2*id + 1; l < b.n {
		cs = append(cs, l)
	}
	if r := 2*id + 2; r < b.n {
		cs = append(cs, r)
	}
	return cs
}

// Wait blocks p until all processors have arrived.
func (b *MsgBarrier) Wait(p *machine.Proc) {
	p.Ev.BarrierArrivals++
	arriveAt := p.Now()
	id := p.ID
	need := len(b.children(id))
	for b.arrived[id] < need {
		p.WaitAndHandle()
	}
	b.arrived[id] -= need
	if id == 0 {
		for _, ch := range b.children(0) {
			p.Send(ch, b.releaseH, nil, nil)
		}
		critBarrier(b.m, p, arriveAt)
		return
	}
	p.Send((id-1)/2, b.arriveH, nil, nil)
	for b.released[id] == 0 {
		p.WaitAndHandle()
	}
	b.released[id]--
	critBarrier(b.m, p, arriveAt)
}

// ---------------------------------------------------------------------------
// Shared-memory spin lock
// ---------------------------------------------------------------------------

// SpinLock is a test-and-set spin lock with bounded exponential backoff.
// The lock word may be colocated with protected data (LockAt), modeling
// Alewife's piggybacking of lock acquisition on the data's
// write-ownership request.
type SpinLock struct {
	m    *machine.Machine
	addr mem.Addr
}

// NewSpinLock allocates a lock in its own cache line homed at node.
func NewSpinLock(m *machine.Machine, node int) *SpinLock {
	return &SpinLock{m: m, addr: m.Alloc(node, 2)}
}

// LockAt wraps an existing shared word as a lock (colocate it with the
// data it protects to share ownership requests).
func LockAt(m *machine.Machine, addr mem.Addr) *SpinLock {
	return &SpinLock{m: m, addr: addr}
}

// Addr returns the lock word's address.
func (l *SpinLock) Addr() mem.Addr { return l.addr }

// Acquire spins until the lock is held by p.
func (l *SpinLock) Acquire(p *machine.Proc) {
	backoff := int64(20)
	for {
		got := false
		p.RMWSync(l.addr, func(v float64) float64 {
			if v == 0 {
				got = true
				return 1
			}
			return v
		})
		if got {
			p.Ev.LockAcquires++
			traceEvent(l.m, p, trace.KLock, int64(l.addr), 1)
			return
		}
		p.Ev.LockSpins++
		p.SpinCycles(backoff)
		if backoff < 320 {
			backoff *= 2
		}
	}
}

// Release unlocks; only the holder may call it. Under release
// consistency the fence orders the critical section's buffered stores
// before the lock becomes visible as free.
func (l *SpinLock) Release(p *machine.Proc) {
	p.Fence()
	if p.Peek(l.addr) != 1 {
		panic(fmt.Sprintf("psync: Release of unheld lock at %d", l.addr))
	}
	traceEvent(l.m, p, trace.KLock, int64(l.addr), 0)
	p.WriteSync(l.addr, 0)
}
