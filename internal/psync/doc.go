// Package psync provides the synchronization library the applications
// are written against: shared-memory spin barriers and spin locks (whose
// traffic flows through the coherence protocol), and message-passing tree
// barriers built on active messages. The paper's codes use the barrier
// matching their communication mechanism.
package psync
