package psync

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
)

func TestSMBarrierSynchronizes(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewSMBarrier(m)
	var maxBefore, minAfter int64 = 0, 1 << 62
	m.Run(func(p *machine.Proc) {
		p.Compute(int64(p.ID) * 100) // staggered arrivals
		if c := p.NowCycles(); c > maxBefore {
			maxBefore = c
		}
		b.Wait(p)
		if c := p.NowCycles(); c < minAfter {
			minAfter = c
		}
	})
	if minAfter < maxBefore {
		t.Errorf("a processor left the barrier at %d before the last arrival at %d",
			minAfter, maxBefore)
	}
}

func TestSMBarrierReusable(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewSMBarrier(m)
	counts := make([]int, 32)
	m.Run(func(p *machine.Proc) {
		for it := 0; it < 5; it++ {
			counts[p.ID]++
			b.Wait(p)
			// All processors must have the same count after each barrier.
			for _, c := range counts {
				if c != counts[p.ID] {
					t.Errorf("iteration skew: %v", counts)
					return
				}
			}
			b.Wait(p)
		}
	})
}

func TestSMBarrierGeneratesCoherenceTraffic(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewSMBarrier(m)
	res := m.Run(func(p *machine.Proc) { b.Wait(p) })
	if res.Events.Invalidations == 0 {
		t.Error("SM barrier produced no invalidations")
	}
	if res.Volume.Total() == 0 {
		t.Error("SM barrier produced no network volume")
	}
	if res.Breakdown.T[stats.BucketSync] == 0 {
		t.Error("SM barrier charged no sync time")
	}
	if res.Events.BarrierArrivals != 32 {
		t.Errorf("barrier arrivals = %d, want 32", res.Events.BarrierArrivals)
	}
}

func TestMsgBarrierSynchronizes(t *testing.T) {
	for _, mode := range []machine.RecvMode{machine.RecvInterrupt, machine.RecvPoll} {
		m := machine.New(machine.DefaultConfig())
		b := NewMsgBarrier(m)
		var maxBefore, minAfter int64 = 0, 1 << 62
		m.Run(func(p *machine.Proc) {
			p.SetRecvMode(mode)
			p.Compute(int64(p.ID) * 137)
			if c := p.NowCycles(); c > maxBefore {
				maxBefore = c
			}
			b.Wait(p)
			if c := p.NowCycles(); c < minAfter {
				minAfter = c
			}
		})
		if minAfter < maxBefore {
			t.Errorf("mode %v: left barrier at %d before last arrival %d",
				mode, minAfter, maxBefore)
		}
	}
}

func TestMsgBarrierReusableManyIterations(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewMsgBarrier(m)
	phase := make([]int, 32)
	m.Run(func(p *machine.Proc) {
		p.SetRecvMode(machine.RecvPoll)
		for it := 0; it < 10; it++ {
			phase[p.ID] = it
			b.Wait(p)
			for q, ph := range phase {
				if ph < it {
					t.Errorf("iter %d: proc %d saw proc %d still in phase %d", it, p.ID, q, ph)
					return
				}
			}
		}
	})
}

func TestMsgBarrierUsesMessagesNotSharedMemory(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	b := NewMsgBarrier(m)
	res := m.Run(func(p *machine.Proc) {
		p.SetRecvMode(machine.RecvPoll)
		b.Wait(p)
	})
	if res.Events.MessagesSent == 0 {
		t.Error("message barrier sent no messages")
	}
	if res.Events.RemoteMisses() != 0 {
		t.Errorf("message barrier caused %d remote misses", res.Events.RemoteMisses())
	}
}

func TestMsgBarrierCheaperThanSMBarrier(t *testing.T) {
	// On Alewife-like parameters a log-depth message barrier should beat
	// a 32-way central counter barrier.
	smCycles := func() int64 {
		m := machine.New(machine.DefaultConfig())
		b := NewSMBarrier(m)
		return m.Run(func(p *machine.Proc) { b.Wait(p) }).Cycles
	}()
	msgCycles := func() int64 {
		m := machine.New(machine.DefaultConfig())
		b := NewMsgBarrier(m)
		return m.Run(func(p *machine.Proc) {
			p.SetRecvMode(machine.RecvInterrupt)
			b.Wait(p)
		}).Cycles
	}()
	if msgCycles >= smCycles {
		t.Logf("note: msg barrier %d cycles, SM barrier %d cycles", msgCycles, smCycles)
	}
	if smCycles < 500 {
		t.Errorf("SM barrier suspiciously cheap: %d cycles", smCycles)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	l := NewSpinLock(m, 0)
	shared := m.Alloc(0, 4) // two lines of protected data
	m.Run(func(p *machine.Proc) {
		for i := 0; i < 5; i++ {
			l.Acquire(p)
			// Non-atomic two-word critical section: read both, bump both.
			a := p.Read(shared)
			b := p.Read(shared + 2)
			p.Compute(20)
			p.Write(shared, a+1)
			p.Write(shared+2, b+1)
			l.Release(p)
		}
	})
	if got := m.Store.Peek(shared); got != 160 {
		t.Errorf("word A = %v, want 160", got)
	}
	if got := m.Store.Peek(shared + 2); got != 160 {
		t.Errorf("word B = %v, want 160", got)
	}
}

func TestSpinLockCountsContention(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	l := NewSpinLock(m, 0)
	res := m.Run(func(p *machine.Proc) {
		l.Acquire(p)
		p.Compute(200) // hold it a while to force contention
		l.Release(p)
	})
	if res.Events.LockAcquires != 32 {
		t.Errorf("acquires = %d, want 32", res.Events.LockAcquires)
	}
	if res.Events.LockSpins == 0 {
		t.Error("no contention recorded despite serialized critical sections")
	}
	if res.Breakdown.T[stats.BucketSync] == 0 {
		t.Error("no sync time charged")
	}
}

func TestReleaseUnheldLockPanics(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	l := NewSpinLock(m, 0)
	defer func() {
		if recover() == nil {
			t.Error("releasing unheld lock did not panic")
		}
	}()
	m.Run(func(p *machine.Proc) {
		if p.ID == 0 {
			l.Release(p)
		}
	})
}

func TestLockAtColocation(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	data := m.Alloc(3, 2) // lock word shares the line with the datum
	l := LockAt(m, data)
	m.Run(func(p *machine.Proc) {
		l.Acquire(p)
		v := p.Read(data + 1)
		p.Write(data+1, v+1)
		l.Release(p)
	})
	if got := m.Store.Peek(data + 1); got != 32 {
		t.Errorf("colocated counter = %v, want 32", got)
	}
}

func TestSpinLockRoughFairness(t *testing.T) {
	// With the directory's FIFO request queue, repeated acquisitions
	// should be spread across processors, not monopolized by the
	// closest node.
	m := machine.New(machine.DefaultConfig())
	l := NewSpinLock(m, 0)
	counts := make([]int, 32)
	m.Run(func(p *machine.Proc) {
		for i := 0; i < 6; i++ {
			l.Acquire(p)
			counts[p.ID]++
			p.Compute(30)
			l.Release(p)
		}
	})
	for pr, c := range counts {
		if c != 6 {
			t.Fatalf("proc %d acquired %d times, want 6", pr, c)
		}
	}
}

func TestMixedBarrierKindsCoexist(t *testing.T) {
	// SM and message barriers in the same program (coherence and AM
	// traffic share the network and endpoints).
	m := machine.New(machine.DefaultConfig())
	smB := NewSMBarrier(m)
	msgB := NewMsgBarrier(m)
	phase := make([]int, 32)
	m.Run(func(p *machine.Proc) {
		p.SetRecvMode(machine.RecvPoll)
		for it := 0; it < 3; it++ {
			phase[p.ID]++
			smB.Wait(p)
			for _, ph := range phase {
				if ph != phase[p.ID] {
					t.Error("skew after SM barrier")
					return
				}
			}
			msgB.Wait(p)
		}
	})
}
