package sim

import "fmt"

// Clock converts between processor cycles and simulated time for a given
// clock frequency. All Alewife processors share one clock (the paper's
// clock-scaling experiment slows every node together), so a single Clock
// serves a whole machine.
type Clock struct {
	psPerCycle Time
}

// NewClock returns a clock running at mhz megahertz. Frequencies that do
// not divide evenly into picoseconds are rounded to the nearest picosecond
// per cycle (exact for every frequency the paper uses: 14–20 MHz and the
// Table 1 machines).
func NewClock(mhz float64) Clock {
	if mhz <= 0 {
		panic(fmt.Sprintf("sim: non-positive clock frequency %v MHz", mhz))
	}
	//lint:allow simlint/intmath one-time MHz->picosecond conversion at construction; latched as integer Time before any event runs
	return Clock{psPerCycle: Time(1e6/mhz + 0.5)}
}

// PsPerCycle returns the cycle period in picoseconds.
func (c Clock) PsPerCycle() Time { return c.psPerCycle }

// MHz returns the clock frequency in megahertz.
//
//lint:allow simlint/intmath reporting label only; never feeds event times
func (c Clock) MHz() float64 { return 1e6 / float64(c.psPerCycle) }

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n int64) Time { return Time(n) * c.psPerCycle }

// ToCycles converts a duration to whole cycles, rounding to nearest.
func (c Clock) ToCycles(t Time) int64 {
	return (int64(t) + int64(c.psPerCycle)/2) / int64(c.psPerCycle)
}

// ToCyclesF converts a duration to fractional cycles.
func (c Clock) ToCyclesF(t Time) float64 {
	//lint:allow simlint/intmath figure-output conversion only; never feeds event times
	return float64(t) / float64(c.psPerCycle)
}
