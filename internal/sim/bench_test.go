package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate — the
// simulator's fundamental speed limit. With the value-slab heap this is
// allocation-free at steady state (the seed's pointer heap paid one
// allocation per scheduled event).
func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineDeepQueue measures dispatch with many events pending —
// the realistic regime (every processor, controller and router holds
// scheduled work), where heap sift depth and cache behavior dominate.
func BenchmarkEngineDeepQueue(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(Time(1+n%97), tick)
		}
	}
	// 1024 concurrent event chains with scattered timestamps.
	for i := 0; i < 1024; i++ {
		e.After(Time(1+i%97), tick)
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkThreadHandoff measures the cooperative-scheduling round trip
// (engine -> thread -> engine), the cost of every simulated blocking op.
func BenchmarkThreadHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn("t", 0, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}
