package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw event dispatch rate — the
// simulator's fundamental speed limit.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkThreadHandoff measures the cooperative-scheduling round trip
// (engine -> thread -> engine), the cost of every simulated blocking op.
func BenchmarkThreadHandoff(b *testing.B) {
	e := NewEngine()
	e.Spawn("t", 0, func(th *Thread) {
		for i := 0; i < b.N; i++ {
			th.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}
