package sim

import "fmt"

// Time is a point in simulated time, in picoseconds. The zero Time is the
// beginning of the simulation.
type Time int64

// Common durations expressed in Time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * 1000
	Millisecond Time = 1000 * 1000 * 1000
)

func (t Time) String() string {
	switch {
	case t >= Millisecond:
		//lint:allow simlint/intmath duration formatting for humans; never feeds event times
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		//lint:allow simlint/intmath duration formatting for humans; never feeds event times
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		//lint:allow simlint/intmath duration formatting for humans; never feeds event times
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is a scheduled callback. Events are stored by value inside the
// engine's heap slab, so scheduling one costs no heap allocation beyond
// the caller's closure (and occasional slab growth, amortized away by the
// preallocated backing array).
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

// initialHeapCap is the event slab's starting capacity. A simulation
// schedules millions of events; starting at a few thousand makes slab
// growth a one-off cost instead of a steady-state one, while a bare
// engine (clock tests, microbenchmarks) stays cheap.
const initialHeapCap = 4096

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now Time
	seq uint64
	// events is a binary min-heap ordered by (at, seq), stored by value:
	// the slice is the slab, there are no per-event allocations and no
	// interface boxing (unlike container/heap). (at, seq) is a total
	// order — seq is unique — so dispatch order is independent of the
	// heap's treatment of equal elements.
	events  []event
	stopped bool

	// dispatched counts events executed; useful for progress limits.
	dispatched uint64
	// limit, if nonzero, aborts Run after this many events (runaway guard).
	limit uint64
	// deadline, if nonzero, aborts Run once the next event would fire
	// after it while spawned threads are still unfinished (see SetDeadline).
	deadline Time

	// threads registers every spawned thread, for watchdog diagnostics
	// (blocked-thread dumps, deadlock detection).
	threads []*Thread

	// spanObs, when non-nil, observes every completed thread pause
	// interval (see SetSpanObserver). Purely passive: it runs after the
	// thread has already resumed and must not mutate simulation state.
	spanObs func(th *Thread, start, end Time, blocked bool, reason string, arg int64)

	// Tiled execution (see Group). A grouped engine is one tile of a
	// conservatively windowed parallel run: grp/tile identify it, winEnd
	// is the exclusive end of the window it is currently executing.
	grp    *Group
	tile   int
	winEnd Time
}

// SetSpanObserver installs fn to be called once per completed thread
// pause with the interval [start, end], whether the pause was a blocked
// wait (no wake armed at pause time) or a self-armed sleep, and the wait
// reason label active during the pause. The observability layer uses it
// to record thread-state spans for timeline export; nil disables
// observation (the default, costing one nil check per pause).
func (e *Engine) SetSpanObserver(fn func(th *Thread, start, end Time, blocked bool, reason string, arg int64)) {
	e.spanObs = fn
}

// NewEngine returns an engine with simulated time at zero and an empty
// event queue.
func NewEngine() *Engine {
	return &Engine{events: make([]event, 0, initialHeapCap)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Dispatched reports how many events have executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// SetEventLimit aborts Run after n dispatched events by panicking with a
// *StallError diagnostic (queue depth, upcoming event times, blocked
// threads). Zero (the default) means no limit. It exists to turn
// accidental infinite simulations into immediate, debuggable failures.
func (e *Engine) SetEventLimit(n uint64) { e.limit = n }

// At schedules fn to run at absolute time t. Scheduling an event in the
// past (t < Now) panics: it indicates a model bug that would silently
// corrupt causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: at %v, now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// less orders heap slots by (at, seq).
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap (sift-up).
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down). The vacated slab
// slot is zeroed so the callback closure can be collected.
func (e *Engine) pop() event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	e.events = h[:n]
	// Sift the relocated last element down to its place.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.less(l, min) {
			min = l
		}
		if r < n && e.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		e.events[i], e.events[min] = e.events[min], e.events[i]
		i = min
	}
	return top
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue is empty or Stop is
// called. It returns the final simulated time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.pastDeadline() {
			panic(e.Diagnose(StallDeadline))
		}
		e.step()
	}
	return e.now
}

// RunUntil executes events in time order until the queue is empty, Stop is
// called, or the next event would fire after deadline. Time advances to at
// most deadline — except after a Stop, which leaves now at the last
// dispatched event (a stopped run must not silently skip simulated time).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			e.now = deadline
			return e.now
		}
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

func (e *Engine) step() {
	ev := e.pop()
	e.now = ev.at
	e.dispatched++
	if e.limit != 0 && e.dispatched > e.limit {
		panic(e.Diagnose(StallEventLimit))
	}
	ev.fn()
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// CrossAt schedules fn at absolute time t on dst, which may be another
// tile of the same Group. For the local engine (or an ungrouped one)
// this is plain At; for a foreign tile the event goes into the source
// tile's outgoing mailbox and is merged into dst at the window barrier.
// Conservative windowing requires t to be at or past the current window
// end — the lookahead guarantees it, and the violation panic here is
// what turns a wrong lookahead into a loud failure instead of a silent
// causality break.
func (e *Engine) CrossAt(dst *Engine, t Time, fn func()) {
	if dst == e || e.grp == nil {
		dst.At(t, fn)
		return
	}
	if dst.grp != e.grp {
		panic("sim: CrossAt between engines of different groups")
	}
	if t < e.winEnd {
		panic(fmt.Sprintf("sim: cross-tile event at %v inside the current window (end %v): lookahead exceeds the real cross-tile latency", t, e.winEnd))
	}
	e.grp.post(e.tile, dst.tile, t, fn)
}

// runWindow executes queued events strictly before end, then advances
// now to end. It is the per-tile body of one conservative window; the
// Group runs it concurrently across tiles.
func (e *Engine) runWindow(end Time) {
	for len(e.events) > 0 && e.events[0].at < end {
		e.step()
	}
	e.now = end
}
