package sim

import (
	"strings"
	"testing"
)

func TestThreadRunsAtSpawnTime(t *testing.T) {
	e := NewEngine()
	var started Time = -1
	e.Spawn("t", 100, func(th *Thread) { started = th.Now() })
	e.Run()
	if started != 100 {
		t.Errorf("thread started at %d, want 100", started)
	}
}

func TestThreadSleepAdvancesTime(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("t", 0, func(th *Thread) {
		th.Sleep(250)
		wake = th.Now()
	})
	e.Run()
	if wake != 250 {
		t.Errorf("woke at %d, want 250", wake)
	}
}

func TestThreadsInterleaveDeterministically(t *testing.T) {
	// Two threads sleeping different amounts must interleave by time.
	run := func() []string {
		e := NewEngine()
		var trace []string
		e.Spawn("a", 0, func(th *Thread) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "a")
				th.Sleep(10)
			}
		})
		e.Spawn("b", 5, func(th *Thread) {
			for i := 0; i < 3; i++ {
				trace = append(trace, "b")
				th.Sleep(10)
			}
		})
		e.Run()
		return trace
	}
	first := run()
	want := "ababab"
	if got := strings.Join(first, ""); got != want {
		t.Errorf("interleaving = %q, want %q", got, want)
	}
	// Determinism: identical across runs.
	for i := 0; i < 5; i++ {
		again := run()
		if strings.Join(again, "") != strings.Join(first, "") {
			t.Fatalf("nondeterministic interleaving: %v vs %v", again, first)
		}
	}
}

func TestThreadPauseAndExternalWake(t *testing.T) {
	e := NewEngine()
	var resumed Time
	th := e.Spawn("sleeper", 0, func(th *Thread) {
		th.Pause()
		resumed = th.Now()
	})
	e.At(40, func() { th.WakeAt(70) })
	e.Run()
	if resumed != 70 {
		t.Errorf("resumed at %d, want 70", resumed)
	}
	if th.State() != ThreadDone {
		t.Errorf("state = %v, want done", th.State())
	}
}

func TestThreadWakeFromAnotherThread(t *testing.T) {
	e := NewEngine()
	var order []string
	var waiter *Thread
	waiter = e.Spawn("waiter", 0, func(th *Thread) {
		order = append(order, "wait")
		th.Pause()
		order = append(order, "woken")
	})
	e.Spawn("waker", 10, func(th *Thread) {
		order = append(order, "wake")
		waiter.WakeAfter(5)
	})
	e.Run()
	got := strings.Join(order, ",")
	if got != "wait,wake,woken" {
		t.Errorf("order = %q, want wait,wake,woken", got)
	}
}

func TestThreadDoubleWakePanics(t *testing.T) {
	e := NewEngine()
	th := e.Spawn("t", 0, func(th *Thread) { th.Pause() })
	e.At(5, func() {
		th.WakeAt(10)
		defer func() {
			if recover() == nil {
				t.Error("duplicate wake did not panic")
			}
		}()
		th.WakeAt(20)
	})
	e.Run()
}

func TestThreadBodyPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bad", 0, func(th *Thread) { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("thread panic did not propagate to engine")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic value %v does not mention cause", r)
		}
	}()
	e.Run()
}

func TestThreadWakePending(t *testing.T) {
	e := NewEngine()
	e.Spawn("t", 0, func(th *Thread) {
		if th.WakePending() {
			t.Error("wake pending while running")
		}
		th.WakeAfter(10)
		if !th.WakePending() {
			t.Error("wake not pending after WakeAfter")
		}
		th.Pause()
	})
	e.Run()
}

func TestManyThreadsBarrierStyle(t *testing.T) {
	// n threads pause; a controller wakes them all; all complete.
	e := NewEngine()
	const n = 64
	done := 0
	threads := make([]*Thread, n)
	for i := 0; i < n; i++ {
		threads[i] = e.Spawn("w", 0, func(th *Thread) {
			th.Pause()
			done++
		})
	}
	e.At(100, func() {
		for _, th := range threads {
			th.WakeAfter(1)
		}
	})
	e.Run()
	if done != n {
		t.Errorf("completed %d threads, want %d", done, n)
	}
}

func TestSpawnNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(33, func() {
		e.SpawnNow("t", func(th *Thread) { at = th.Now() })
	})
	e.Run()
	if at != 33 {
		t.Errorf("SpawnNow thread ran at %d, want 33", at)
	}
}

func TestThreadStateString(t *testing.T) {
	states := map[ThreadState]string{
		ThreadNew: "new", ThreadRunning: "running",
		ThreadPaused: "paused", ThreadDone: "done",
		ThreadState(42): "ThreadState(42)",
	}
	for s, want := range states {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
