package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// Group runs several engines — tiles of one simulation — in parallel
// under conservative time windows. Each window, the group finds the
// globally soonest pending event time minNext and lets every tile
// execute its own queue concurrently up to the barrier
//
//	end = minNext + lookahead
//
// which is safe when every causal chain between tiles takes at least
// lookahead of simulated time: an event inside the window (at >=
// minNext) can then only affect another tile at or after end. Events
// that target another tile are posted through per-(src,dst) mailboxes
// (see Engine.CrossAt) and merged at the barrier in deterministic
// (at, seq, src) order, so the simulation's result is a pure function
// of the model — identical for every worker count, including one.
//
// The group owns scheduling policy only; model state stays inside the
// tiles. Within a window each engine runs single-threaded exactly as in
// serial mode, so per-tile state needs no locking; anything shared
// across tiles must be reached through CrossAt (which is what makes the
// lookahead bound hold in the first place).
type Group struct {
	lookahead Time
	engines   []*Engine
	// mail[src][dst] buffers cross-tile events posted during the current
	// window. Each box is written only by src's worker goroutine and
	// drained only by the coordinator at the barrier.
	mail [][]mailbox

	workers  int
	limit    uint64
	deadline Time
	windows  uint64

	// Barrier machinery. Windows are typically a few microseconds of
	// work, so a channel handoff per window would cost more than the
	// window itself; instead the coordinator (which doubles as worker 0)
	// publishes each window by bumping epoch, and workers report back by
	// decrementing remaining. Waiters adaptively spin, then yield, then
	// park on their wake channel (see await). The atomics carry the
	// happens-before edges: winEnd/stop are written before the epoch
	// store and read after the epoch load; everything a tile did in
	// window k is published by its worker's remaining decrement and
	// observed by the coordinator's read of zero before it opens k+1.
	epoch     atomic.Uint64
	remaining atomic.Int64
	winEnd    Time
	stop      bool
	running   bool
	parked    []atomic.Bool   // parked[i]: waiter i blocked on wake[i]
	wake      []chan struct{} // buffered(1) wake tokens; [workers] is the coordinator's
	wpanics   [][]tilePanic   // per-worker panic slots, single-writer
	merged    []mergedEvent   // barrier-merge scratch, reused across windows
}

// mailbox is one directed cross-tile event buffer. seq persists across
// windows so (at, seq) totally orders everything a given source ever
// sent to a given destination.
type mailbox struct {
	seq uint64
	evs []crossEvent
}

type crossEvent struct {
	at  Time
	seq uint64
	fn  func()
}

// mergedEvent is a mailbox event tagged with its source tile for the
// deterministic (at, seq, src) barrier sort.
type mergedEvent struct {
	at  Time
	seq uint64
	src int
	fn  func()
}

// tilePanic records a panic raised while running one tile's window.
type tilePanic struct {
	tile int
	val  interface{}
}

// NewGroup creates a group of tiles fresh engines with the given
// lookahead (the minimum simulated time any cross-tile interaction
// takes). The lookahead must be positive — a zero bound admits no
// window at all.
func NewGroup(tiles int, lookahead Time) *Group {
	if tiles < 1 {
		panic(fmt.Sprintf("sim: group needs at least one tile, got %d", tiles))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: group lookahead must be positive, got %v", lookahead))
	}
	g := &Group{
		lookahead: lookahead,
		engines:   make([]*Engine, tiles),
		mail:      make([][]mailbox, tiles),
		workers:   1,
	}
	for i := range g.engines {
		e := NewEngine()
		e.grp, e.tile = g, i
		g.engines[i] = e
		g.mail[i] = make([]mailbox, tiles)
	}
	return g
}

// Engine returns tile i's engine.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Tiles returns the number of tiles.
func (g *Group) Tiles() int { return len(g.engines) }

// Lookahead returns the conservative window length.
func (g *Group) Lookahead() Time { return g.lookahead }

// Windows reports how many conservative windows Run has executed.
func (g *Group) Windows() uint64 { return g.windows }

// Workers reports how many goroutines execute tiles each window.
func (g *Group) Workers() int { return g.workers }

// SetWorkers sets how many goroutines execute tiles each window,
// clamped to [1, Tiles]. Worker w owns tiles w, w+workers, ... — a
// static assignment, but one that only affects wall-clock behavior:
// results are identical for every worker count.
func (g *Group) SetWorkers(n int) {
	if g.running {
		panic("sim: SetWorkers after Run started")
	}
	if n < 1 {
		n = 1
	}
	if n > len(g.engines) {
		n = len(g.engines)
	}
	g.workers = n
}

// SetEventLimit aborts Run once the group has dispatched n events in
// total, and also arms each tile with the full budget so a runaway
// self-feeding loop inside a single window still trips deterministically
// (the window barrier alone would never be reached).
func (g *Group) SetEventLimit(n uint64) {
	g.limit = n
	for _, e := range g.engines {
		e.limit = n
	}
}

// SetDeadline arms the no-forward-progress watchdog, checked at each
// window head: if the globally soonest event would fire after t while
// spawned threads are unfinished, Run panics with a *StallError.
func (g *Group) SetDeadline(t Time) { g.deadline = t }

// SetSpanObserver installs fn on every tile. Under more than one worker
// the observer runs concurrently from worker goroutines, so it must be
// internally synchronized; the machine layer instead gates span capture
// to the serial engine.
func (g *Group) SetSpanObserver(fn func(th *Thread, start, end Time, blocked bool, reason string, arg int64)) {
	for _, e := range g.engines {
		e.spanObs = fn
	}
}

// Now returns the group's simulated time: every tile advances to each
// window's end, so all engines agree once Run returns.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Dispatched reports the total events executed across all tiles.
func (g *Group) Dispatched() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.dispatched
	}
	return n
}

// post buffers a cross-tile event (from Engine.CrossAt, on src's worker
// goroutine during a window).
func (g *Group) post(src, dst int, t Time, fn func()) {
	m := &g.mail[src][dst]
	m.seq++
	m.evs = append(m.evs, crossEvent{at: t, seq: m.seq, fn: fn})
}

// minNext returns the soonest pending event time across all tiles.
func (g *Group) minNext() (Time, bool) {
	var mn Time
	found := false
	for _, e := range g.engines {
		if len(e.events) == 0 {
			continue
		}
		if t := e.events[0].at; !found || t < mn {
			mn, found = t, true
		}
	}
	return mn, found
}

// Barrier waiter tuning: a waiter polls spinBudget times (peers usually
// finish within the window's few microseconds), yields the OS thread
// yieldBudget times (covers oversubscribed hosts, where spinning only
// steals cycles from the goroutine being waited for), then parks on its
// wake channel (idle group, or a heavily instrumented build where every
// poll is expensive).
const (
	spinBudget  = 1 << 10
	yieldBudget = 8
)

// await polls cond until it holds, escalating spin -> yield -> park.
// Waiter i parks by publishing parked[i] and re-checking cond before
// blocking on wake[i]; wakers bring it back with unpark(i) after making
// cond true. Spurious tokens are harmless — the loop re-checks cond.
func (g *Group) await(i int, cond func() bool) {
	for spin := 0; ; spin++ {
		if cond() {
			return
		}
		switch {
		case spin < spinBudget:
		case spin < spinBudget+yieldBudget:
			runtime.Gosched()
		default:
			g.parked[i].Store(true)
			if cond() {
				// The waker may have missed the flag; it is cleared (by us
				// or by a waker that also sent a token) and any stale token
				// is consumed by the next park, which re-checks cond.
				g.parked[i].Store(false)
				return
			}
			<-g.wake[i]
			spin = 0
		}
	}
}

// unpark wakes waiter i if it is parked (or about to park; the token is
// buffered so the handoff never blocks the waker).
func (g *Group) unpark(i int) {
	if g.parked[i].Swap(false) {
		g.wake[i] <- struct{}{}
	}
}

// Run executes windows until every tile's queue (and every mailbox) is
// empty, returning the final simulated time. Panics raised inside a
// tile — including per-tile event-limit stalls — are re-raised on the
// caller's goroutine; when several tiles panic in one window the lowest
// tile index wins, which is the same one that panics at one worker.
func (g *Group) Run() Time {
	if g.running {
		panic("sim: Group.Run is one-shot")
	}
	g.running = true
	g.wpanics = make([][]tilePanic, g.workers)
	if g.workers > 1 {
		g.parked = make([]atomic.Bool, g.workers+1)
		g.wake = make([]chan struct{}, g.workers+1)
		for i := range g.wake {
			g.wake[i] = make(chan struct{}, 1)
		}
		for w := 1; w < g.workers; w++ {
			go g.runWorker(w)
		}
		defer func() {
			// Release the workers even when a tile panic unwinds this
			// frame; they are never mid-window here (the coordinator waits
			// out the barrier before acting on anything), so they exit
			// promptly.
			g.stop = true
			g.epoch.Add(1)
			for w := 1; w < g.workers; w++ {
				g.unpark(w)
			}
		}()
	}
	for {
		minNext, ok := g.minNext()
		if !ok {
			break
		}
		if g.pastDeadline(minNext) {
			panic(g.Diagnose(StallDeadline))
		}
		end := minNext + g.lookahead
		g.windows++
		var panics []tilePanic
		if g.workers == 1 {
			// Single worker: no goroutines, no atomics — the coordinator
			// runs every tile inline. This is the byte-identical baseline
			// the parallel schedule is compared against, and the shape
			// auto-sharding picks on a single-core host.
			panics = g.runTiles(0, end, g.wpanics[0][:0])
			g.wpanics[0] = panics
		} else {
			g.winEnd = end
			g.remaining.Store(int64(g.workers - 1))
			g.epoch.Add(1) // open the window: publishes winEnd to the workers
			for w := 1; w < g.workers; w++ {
				g.unpark(w)
			}
			g.wpanics[0] = g.runTiles(0, end, g.wpanics[0][:0])
			g.await(g.workers, func() bool { return g.remaining.Load() == 0 })
			for _, ps := range g.wpanics {
				panics = append(panics, ps...)
			}
		}
		if len(panics) > 0 {
			sort.Slice(panics, func(i, j int) bool { return panics[i].tile < panics[j].tile })
			if se, ok := panics[0].val.(*StallError); ok {
				// Re-diagnose at group level so the dump blames blocked
				// threads on every tile, not just the one that tripped.
				panic(g.Diagnose(se.Kind))
			}
			panic(panics[0].val)
		}
		g.mergeMail()
		if g.limit != 0 && g.Dispatched() > g.limit {
			panic(g.Diagnose(StallEventLimit))
		}
	}
	return g.Now()
}

// runTiles executes one worker's tile share for the window ending at
// end, appending any tile panic to ps (reused across windows).
func (g *Group) runTiles(w int, end Time, ps []tilePanic) []tilePanic {
	for t := w; t < len(g.engines); t += g.workers {
		e := g.engines[t]
		if len(e.events) == 0 || e.events[0].at >= end {
			// Idle tile: nothing fires this window, so skip the
			// panic-capture call frame and just advance its clock.
			e.winEnd, e.now = end, end
			continue
		}
		if v := runTileWindow(e, end); v != nil {
			ps = append(ps, tilePanic{tile: t, val: v})
			// Skip this worker's remaining tiles: any earlier tile in its
			// sequence that would have panicked already did, so the
			// minimum panicking tile is still reported deterministically.
			break
		}
	}
	return ps
}

// runWorker is the body of workers 1..workers-1: wait for the
// coordinator to open a window, run this worker's tile share, report
// back; the final remaining decrement wakes a parked coordinator.
func (g *Group) runWorker(w int) {
	last := uint64(0)
	for {
		g.await(w, func() bool { return g.epoch.Load() != last })
		last = g.epoch.Load()
		if g.stop {
			return
		}
		g.wpanics[w] = g.runTiles(w, g.winEnd, g.wpanics[w][:0])
		if g.remaining.Add(-1) == 0 {
			g.unpark(g.workers)
		}
	}
}

// runTileWindow runs one tile's window, converting a panic into a value
// so the coordinator can pick the deterministic one to re-raise.
func runTileWindow(e *Engine, end Time) (pv interface{}) {
	defer func() { pv = recover() }()
	e.winEnd = end
	e.runWindow(end)
	return nil
}

// mergeMail drains every mailbox into its destination tile. Per
// destination, events from all sources are ordered by (at, seq, src) —
// a total order independent of worker scheduling — and pushed through
// the destination's normal At path, which restamps them with local
// sequence numbers in that same order.
func (g *Group) mergeMail() {
	for dst := range g.engines {
		buf := g.merged[:0]
		for src := range g.engines {
			m := &g.mail[src][dst]
			if len(m.evs) == 0 {
				continue
			}
			for _, ev := range m.evs {
				buf = append(buf, mergedEvent{at: ev.at, seq: ev.seq, src: src, fn: ev.fn})
			}
			for i := range m.evs {
				m.evs[i] = crossEvent{} // release the closures
			}
			m.evs = m.evs[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sortMerged(buf)
		e := g.engines[dst]
		for i := range buf {
			e.At(buf[i].at, buf[i].fn)
		}
		g.merged = buf[:0]
	}
}

// sortMerged orders one destination's merged events by (at, seq, src).
// Windows carry a handful of cross events at most, so an insertion sort
// beats sort.Slice's reflection setup on the per-window fast path; the
// sort.Slice fallback keeps a pathological burst O(n log n).
func sortMerged(buf []mergedEvent) {
	if len(buf) < 2 {
		return
	}
	less := func(a, b *mergedEvent) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.src < b.src
	}
	if len(buf) <= 32 {
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && less(&buf[j], &buf[j-1]); j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
		return
	}
	sort.Slice(buf, func(i, j int) bool { return less(&buf[i], &buf[j]) })
}

// pastDeadline reports whether the soonest pending event violates the
// armed deadline while threads are unfinished.
func (g *Group) pastDeadline(minNext Time) bool {
	if g.deadline <= 0 || minNext <= g.deadline {
		return false
	}
	for _, e := range g.engines {
		for _, th := range e.threads {
			if th.state != ThreadDone {
				return true
			}
		}
	}
	return false
}

// Diagnose captures group-wide liveness state as a StallError: queue
// depths and dispatch counts summed over tiles, blocked threads merged
// in tile order (tiles are contiguous node bands, so the dump lists
// processors in ascending order, same as the serial engine's).
func (g *Group) Diagnose(kind StallKind) *StallError {
	d := &StallError{Kind: kind}
	var times []Time
	for _, e := range g.engines {
		if e.now > d.Now {
			d.Now = e.now
		}
		d.Dispatched += e.dispatched
		d.Pending += len(e.events)
		for i := range e.events {
			times = append(times, e.events[i].at)
		}
		d.Blocked = append(d.Blocked, e.blockedDump(kind)...)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(times) > maxDiagEvents {
		times = times[:maxDiagEvents]
	}
	d.NextEvents = times
	return d
}

// CheckLiveness returns a deadlock diagnostic if every queue drained
// while paused threads remain with no wake scheduled, or nil if the
// group is live. Call it after Run returns.
func (g *Group) CheckLiveness() *StallError {
	if _, ok := g.minNext(); ok {
		return nil
	}
	for _, e := range g.engines {
		for _, th := range e.threads {
			if th.state == ThreadPaused && !th.wakePending {
				return g.Diagnose(StallDeadlock)
			}
		}
	}
	return nil
}
