package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order at %d: got %d", i, v)
		}
	}
}

func TestEngineNowAdvancesDuringEvents(t *testing.T) {
	e := NewEngine()
	var seen []Time
	e.At(7, func() { seen = append(seen, e.Now()) })
	e.At(11, func() { seen = append(seen, e.Now()) })
	e.Run()
	if seen[0] != 7 || seen[1] != 11 {
		t.Errorf("Now() during events = %v, want [7 11]", seen)
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Errorf("After fired at %d, want 150", at)
	}
}

func TestEnginePastEventPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling event in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("events after Stop ran: count = %d, want 1", count)
	}
	// Run again resumes the queue.
	e.Run()
	if count != 2 {
		t.Errorf("resumed Run did not execute pending event: count = %d", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++ })
	e.At(20, func() { count++ })
	e.At(30, func() { count++ })
	now := e.RunUntil(20)
	if count != 2 {
		t.Errorf("RunUntil(20) executed %d events, want 2", count)
	}
	if now != 20 {
		t.Errorf("RunUntil(20) time = %d, want 20", now)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// RunUntil past the last event advances time to the deadline.
	now = e.RunUntil(100)
	if count != 3 || now != 100 {
		t.Errorf("RunUntil(100): count=%d now=%d, want 3, 100", count, now)
	}
}

func TestEngineEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(10)
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("event limit exceeded without panic")
		}
	}()
	e.Run()
}

func TestEngineDispatchedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Dispatched() != 5 {
		t.Errorf("Dispatched = %d, want 5", e.Dispatched())
	}
}

// Property: for any set of event times, events fire in nondecreasing time
// order and the engine's final time equals the maximum scheduled time.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		var max Time
		for _, d := range delays {
			at := Time(d)
			if at > max {
				max = at
			}
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		end := e.Run()
		if end != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}
