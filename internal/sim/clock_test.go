package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClock20MHz(t *testing.T) {
	c := NewClock(20)
	if c.PsPerCycle() != 50000 {
		t.Errorf("20MHz period = %d ps, want 50000", c.PsPerCycle())
	}
	if c.Cycles(10) != 500000 {
		t.Errorf("10 cycles = %d ps, want 500000", c.Cycles(10))
	}
	if got := c.ToCycles(500000); got != 10 {
		t.Errorf("ToCycles(500000) = %d, want 10", got)
	}
}

func TestClockPaperRange(t *testing.T) {
	// The paper scales 14..20 MHz; every one of these must round-trip
	// cycle counts exactly.
	for mhz := 14.0; mhz <= 20.0; mhz++ {
		c := NewClock(mhz)
		for _, n := range []int64{0, 1, 7, 1000, 1 << 30} {
			if got := c.ToCycles(c.Cycles(n)); got != n {
				t.Errorf("%vMHz: round-trip of %d cycles = %d", mhz, n, got)
			}
		}
	}
}

func TestClockMHz(t *testing.T) {
	for _, mhz := range []float64{14, 16, 20, 33, 50, 100, 150, 200, 300} {
		c := NewClock(mhz)
		if math.Abs(c.MHz()-mhz)/mhz > 1e-3 {
			t.Errorf("NewClock(%v).MHz() = %v", mhz, c.MHz())
		}
	}
}

func TestClockToCyclesRounds(t *testing.T) {
	c := NewClock(20) // 50000 ps/cycle
	if got := c.ToCycles(74999); got != 1 {
		t.Errorf("ToCycles(74999) = %d, want 1", got)
	}
	if got := c.ToCycles(75000); got != 2 {
		t.Errorf("ToCycles(75000) = %d, want 2", got)
	}
}

func TestClockToCyclesF(t *testing.T) {
	c := NewClock(20)
	if got := c.ToCyclesF(25000); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ToCyclesF(25000) = %v, want 0.5", got)
	}
}

func TestClockNonPositivePanics(t *testing.T) {
	for _, mhz := range []float64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v) did not panic", mhz)
				}
			}()
			NewClock(mhz)
		}()
	}
}

// Property: cycle conversion is monotone and additive at 20 MHz.
func TestClockAdditiveProperty(t *testing.T) {
	c := NewClock(20)
	prop := func(a, b uint16) bool {
		return c.Cycles(int64(a))+c.Cycles(int64(b)) == c.Cycles(int64(a)+int64(b))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
