package sim

import (
	"fmt"
	"sort"
	"strings"
)

// StallKind classifies a liveness failure.
type StallKind string

const (
	// StallDeadlock: the event queue drained while threads were still
	// paused with no wake scheduled — nothing can ever run them again.
	StallDeadlock StallKind = "deadlock"
	// StallEventLimit: the configured event limit was exceeded (a runaway
	// simulation making no application progress).
	StallEventLimit StallKind = "event-limit"
	// StallDeadline: simulated time would pass the configured deadline
	// with threads still blocked.
	StallDeadline StallKind = "deadline"
)

// BlockedThread describes one paused thread in a diagnostic dump.
type BlockedThread struct {
	Name   string
	Reason string // from Thread.SetWaitReason; "" if unset
	Since  Time   // when the thread last paused
}

// StallError is the watchdog's structured diagnostic: instead of a bare
// panic string, a failed run carries the engine state needed to debug it —
// blocked thread names and wait reasons, queue depth, upcoming event
// times, and free-form notes appended by higher layers (directory state,
// link occupancy, NI queues). It is delivered by panicking with the
// *StallError as the value; the sweep runner recovers it into a RunError.
type StallError struct {
	Kind       StallKind
	Now        Time
	Dispatched uint64
	Pending    int
	NextEvents []Time // times of the soonest few queued events
	Blocked    []BlockedThread
	Notes      []string // subsystem diagnostics appended by higher layers
}

// Error formats the full multi-line diagnostic dump.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s at t=%v after %d events: %d blocked thread(s), %d pending event(s)",
		e.Kind, e.Now, e.Dispatched, len(e.Blocked), e.Pending)
	for _, th := range e.Blocked {
		fmt.Fprintf(&b, "\n  blocked: %s", th.Name)
		if th.Reason != "" {
			fmt.Fprintf(&b, " (%s)", th.Reason)
		}
		fmt.Fprintf(&b, " since t=%v", th.Since)
	}
	if len(e.NextEvents) > 0 {
		fmt.Fprintf(&b, "\n  next events at:")
		for _, t := range e.NextEvents {
			fmt.Fprintf(&b, " %v", t)
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "\n  note: %s", n)
	}
	return b.String()
}

// maxDiagEvents bounds the upcoming-event times listed in a dump.
const maxDiagEvents = 4

// Diagnose captures the engine's current liveness state as a StallError
// of the given kind. It is cheap relative to any failure path and safe to
// call at any time.
func (e *Engine) Diagnose(kind StallKind) *StallError {
	d := &StallError{
		Kind:       kind,
		Now:        e.now,
		Dispatched: e.dispatched,
		Pending:    len(e.events),
	}
	times := make([]Time, 0, len(e.events))
	for i := range e.events {
		times = append(times, e.events[i].at)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	if len(times) > maxDiagEvents {
		times = times[:maxDiagEvents]
	}
	d.NextEvents = times
	d.Blocked = e.blockedDump(kind)
	return d
}

// blockedDump renders the engine's paused threads for a diagnostic of
// the given kind. Shared between the single-engine Diagnose and the
// Group fan-in, so sharded dumps blame threads identically.
func (e *Engine) blockedDump(kind StallKind) []BlockedThread {
	var out []BlockedThread
	for _, th := range e.threads {
		if th.state != ThreadPaused {
			continue
		}
		if th.wakePending && kind == StallDeadlock {
			// A scheduled wake means the thread will run again; it is not
			// part of a deadlock. For deadline/event-limit stalls it still
			// belongs in the dump — it is where the time went.
			continue
		}
		reason := th.formatWaitReason()
		if th.wakePending {
			if reason != "" {
				reason += "; "
			}
			reason += "wake scheduled"
		}
		out = append(out, BlockedThread{
			Name:   th.name,
			Reason: reason,
			Since:  th.blockedSince,
		})
	}
	return out
}

// CheckLiveness returns a deadlock diagnostic if the event queue is empty
// while paused threads remain with no wake scheduled (they can never run
// again), or nil if the engine is live. Call it after Run returns.
func (e *Engine) CheckLiveness() *StallError {
	if len(e.events) > 0 {
		return nil
	}
	for _, th := range e.threads {
		if th.state == ThreadPaused && !th.wakePending {
			return e.Diagnose(StallDeadlock)
		}
	}
	return nil
}

// BlockedThreads returns the threads currently paused with no wake
// scheduled.
func (e *Engine) BlockedThreads() []*Thread {
	var out []*Thread
	for _, th := range e.threads {
		if th.state == ThreadPaused && !th.wakePending {
			out = append(out, th)
		}
	}
	return out
}

// SetDeadline arms the no-forward-progress watchdog: if the next event
// would fire after t while any spawned thread has not finished, Run
// panics with a *StallError diagnostic instead of silently simulating
// past the deadline. Zero (the default) disables the deadline.
func (e *Engine) SetDeadline(t Time) { e.deadline = t }

// pastDeadline reports whether dispatching the next event would violate
// the armed deadline.
func (e *Engine) pastDeadline() bool {
	if e.deadline <= 0 || len(e.events) == 0 || e.events[0].at <= e.deadline {
		return false
	}
	for _, th := range e.threads {
		if th.state != ThreadDone {
			return true
		}
	}
	return false
}
