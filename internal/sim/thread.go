package sim

import "fmt"

// ThreadState describes the lifecycle of a simulated thread.
type ThreadState int

const (
	// ThreadNew has been spawned but its start event has not fired yet.
	ThreadNew ThreadState = iota
	// ThreadRunning currently holds control (its body is executing).
	ThreadRunning
	// ThreadPaused has yielded and waits for a Wake.
	ThreadPaused
	// ThreadDone has returned from its body.
	ThreadDone
)

func (s ThreadState) String() string {
	switch s {
	case ThreadNew:
		return "new"
	case ThreadRunning:
		return "running"
	case ThreadPaused:
		return "paused"
	case ThreadDone:
		return "done"
	}
	return fmt.Sprintf("ThreadState(%d)", int(s))
}

// Thread is a cooperatively scheduled simulated thread. A thread's body
// runs on its own goroutine, but control is handed off strictly: while the
// body executes, the engine goroutine (and every other thread) is blocked,
// so the body may freely read and mutate simulation state and schedule
// events. A body gives up control only through Pause (or by returning).
//
// A paused thread is resumed by exactly one pending Wake; issuing a second
// Wake for an already-woken thread is a model bug and panics.
type Thread struct {
	eng   *Engine
	name  string
	state ThreadState

	resume chan struct{} // engine -> thread: run now
	yield  chan struct{} // thread -> engine: control returned

	wakePending bool
	panicVal    interface{}

	// Wait-reason bookkeeping for watchdog dumps. Two plain stores per
	// pause keep the hot path allocation-free; formatting happens only
	// when a diagnostic is produced.
	waitReason   string
	waitArg      int64
	blockedSince Time

	// Pause-time accounting for the observability layer: runPs is time
	// spent in self-armed pauses (Sleep — the thread consuming charged
	// execution time), blockPs is time spent parked waiting for an
	// external wake (miss fills, message arrivals, lock releases).
	// Accumulated unconditionally; two integer adds per pause.
	runPs   Time
	blockPs Time
}

// Spawn creates a thread named name whose body starts at absolute time at.
// The body runs to completion unless it pauses; Spawn itself returns
// immediately (the thread first runs when the engine reaches time at).
func (e *Engine) Spawn(name string, at Time, body func(*Thread)) *Thread {
	th := &Thread{
		eng:    e,
		name:   name,
		state:  ThreadNew,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	go func() {
		<-th.resume
		defer func() {
			if r := recover(); r != nil {
				th.panicVal = r
			}
			th.state = ThreadDone
			th.yield <- struct{}{}
		}()
		body(th)
	}()
	th.wakePending = true
	e.threads = append(e.threads, th)
	e.At(at, th.dispatch)
	return th
}

// SpawnNow is Spawn at the current simulated time.
func (e *Engine) SpawnNow(name string, body func(*Thread)) *Thread {
	return e.Spawn(name, e.now, body)
}

// dispatch transfers control to the thread and blocks until it yields.
// It runs in engine context (as an event callback).
func (th *Thread) dispatch() {
	if th.state == ThreadDone {
		panic(fmt.Sprintf("sim: wake of finished thread %q", th.name))
	}
	th.wakePending = false
	th.state = ThreadRunning
	th.resume <- struct{}{}
	<-th.yield
	if th.state == ThreadDone && th.panicVal != nil {
		// Re-raise body panics on the engine goroutine so tests see them.
		panic(fmt.Sprintf("sim: thread %q panicked: %v", th.name, th.panicVal))
	}
}

// Engine returns the engine this thread belongs to.
func (th *Thread) Engine() *Engine { return th.eng }

// Name returns the thread's name.
func (th *Thread) Name() string { return th.name }

// State returns the thread's lifecycle state.
func (th *Thread) State() ThreadState { return th.state }

// Now returns the current simulated time.
func (th *Thread) Now() Time { return th.eng.Now() }

// Pause yields control until a Wake fires. It must only be called from the
// thread's own body. The caller must arrange (before pausing or from
// another context afterwards) exactly one WakeAt/WakeAfter.
func (th *Thread) Pause() {
	if th.state != ThreadRunning {
		panic(fmt.Sprintf("sim: Pause on %s thread %q", th.state, th.name))
	}
	th.state = ThreadPaused
	th.blockedSince = th.eng.now
	armed := th.wakePending
	th.yield <- struct{}{}
	<-th.resume
	th.state = ThreadRunning
	d := th.eng.now - th.blockedSince
	if armed {
		th.runPs += d
	} else {
		th.blockPs += d
	}
	if obs := th.eng.spanObs; obs != nil {
		obs(th, th.blockedSince, th.eng.now, !armed, th.waitReason, th.waitArg)
	}
	th.waitReason, th.waitArg = "", 0
}

// TimeBreakdown reports where the thread's simulated time went across
// its pauses so far: run is time in self-armed sleeps (charged
// execution), block is time parked waiting for an external wake. The
// paper's finer compute/sync/communicate split lives in stats.Breakdown;
// this is the engine-level ground truth beneath it.
func (th *Thread) TimeBreakdown() (run, block Time) { return th.runPs, th.blockPs }

// SetWaitReason labels the cause of the thread's next Pause for watchdog
// diagnostics ("mem-miss", line number; "await-message", node; ...). The
// label is cleared when the thread resumes. arg is an optional detail
// rendered alongside the reason; pass 0 when meaningless.
func (th *Thread) SetWaitReason(reason string, arg int64) {
	th.waitReason, th.waitArg = reason, arg
}

// WaitReason returns the current wait label set by SetWaitReason.
func (th *Thread) WaitReason() (string, int64) { return th.waitReason, th.waitArg }

// formatWaitReason renders the wait label for a diagnostic dump.
func (th *Thread) formatWaitReason() string {
	if th.waitReason == "" {
		return ""
	}
	if th.waitArg == 0 {
		return th.waitReason
	}
	return fmt.Sprintf("%s %d", th.waitReason, th.waitArg)
}

// WakeAt schedules the thread to resume at absolute time t. It may be
// called from any context that currently holds control (the engine or
// another thread), including the thread's own body immediately before
// Pause. Exactly one wake may be pending at a time.
func (th *Thread) WakeAt(t Time) {
	if th.state == ThreadDone {
		panic(fmt.Sprintf("sim: WakeAt on finished thread %q", th.name))
	}
	if th.wakePending {
		panic(fmt.Sprintf("sim: duplicate wake for thread %q", th.name))
	}
	th.wakePending = true
	th.eng.At(t, th.dispatch)
}

// WakeAfter schedules the thread to resume d picoseconds from now.
func (th *Thread) WakeAfter(d Time) { th.WakeAt(th.eng.Now() + d) }

// WakePending reports whether a wake event is already scheduled.
func (th *Thread) WakePending() bool { return th.wakePending }

// Sleep pauses the thread for duration d of simulated time.
func (th *Thread) Sleep(d Time) {
	th.WakeAfter(d)
	th.Pause()
}
