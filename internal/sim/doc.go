// Package sim provides a deterministic discrete-event simulation engine
// with cooperatively scheduled simulated threads.
//
// Simulated time is measured in integer picoseconds (Time). Events fire in
// nondecreasing time order; ties are broken by scheduling order, so a
// simulation is fully deterministic given deterministic inputs. Exactly one
// simulated thread runs at any moment (strict channel handoff between the
// engine goroutine and thread goroutines), so simulation state never needs
// locking.
package sim
