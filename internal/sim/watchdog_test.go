package sim

import (
	"strings"
	"testing"
)

func TestCheckLivenessDetectsDeadlock(t *testing.T) {
	eng := NewEngine()
	// Two threads pause forever with no wake scheduled: a deadlock once
	// the queue drains.
	eng.Spawn("consumer", 0, func(th *Thread) {
		th.SetWaitReason("await-message", 0)
		th.Pause()
	})
	eng.Spawn("producer", 10*Nanosecond, func(th *Thread) {
		th.SetWaitReason("mem-miss line", 42)
		th.Pause()
	})
	eng.Run()

	se := eng.CheckLiveness()
	if se == nil {
		t.Fatal("CheckLiveness returned nil for a deadlocked engine")
	}
	if se.Kind != StallDeadlock {
		t.Errorf("Kind = %v, want %v", se.Kind, StallDeadlock)
	}
	if len(se.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want both threads", se.Blocked)
	}
	if se.Blocked[0].Name != "consumer" || se.Blocked[1].Name != "producer" {
		t.Errorf("blocked names = %q, %q", se.Blocked[0].Name, se.Blocked[1].Name)
	}
	if se.Blocked[0].Reason != "await-message" {
		t.Errorf("consumer reason = %q, want await-message", se.Blocked[0].Reason)
	}
	if se.Blocked[1].Reason != "mem-miss line 42" {
		t.Errorf("producer reason = %q, want mem-miss line 42", se.Blocked[1].Reason)
	}
	if se.Blocked[1].Since != 10*Nanosecond {
		t.Errorf("producer blocked since %v, want 10ns", se.Blocked[1].Since)
	}
	msg := se.Error()
	for _, want := range []string{"deadlock", "consumer", "producer", "mem-miss line 42"} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump missing %q:\n%s", want, msg)
		}
	}
	if got := eng.BlockedThreads(); len(got) != 2 {
		t.Errorf("BlockedThreads returned %d, want 2", len(got))
	}
}

func TestCheckLivenessNilWhenAllThreadsFinish(t *testing.T) {
	eng := NewEngine()
	eng.Spawn("worker", 0, func(th *Thread) { th.Sleep(5 * Nanosecond) })
	eng.Run()
	if se := eng.CheckLiveness(); se != nil {
		t.Errorf("CheckLiveness = %v, want nil", se)
	}
}

func TestCheckLivenessNilWithPendingEvents(t *testing.T) {
	eng := NewEngine()
	th := eng.Spawn("waiter", 0, func(th *Thread) { th.Pause() })
	eng.RunUntil(1 * Nanosecond)
	// The thread is paused but a wake is queued: not a deadlock.
	th.WakeAt(5 * Nanosecond)
	if se := eng.CheckLiveness(); se != nil {
		t.Errorf("CheckLiveness = %v, want nil (wake pending)", se)
	}
	eng.Run()
}

func TestEventLimitPanicsWithDiagnostic(t *testing.T) {
	eng := NewEngine()
	var tick func()
	tick = func() { eng.After(1*Nanosecond, tick) }
	eng.After(0, tick)
	eng.At(1*Millisecond, func() {}) // stays queued; must show in the dump
	eng.SetEventLimit(10)

	defer func() {
		r := recover()
		se, ok := r.(*StallError)
		if !ok {
			t.Fatalf("panic value %T (%v), want *StallError", r, r)
		}
		if se.Kind != StallEventLimit {
			t.Errorf("Kind = %v, want %v", se.Kind, StallEventLimit)
		}
		if se.Dispatched != 11 {
			t.Errorf("Dispatched = %d, want 11", se.Dispatched)
		}
		if len(se.NextEvents) == 0 {
			t.Error("diagnostic lists no upcoming events")
		}
	}()
	eng.Run()
	t.Fatal("Run returned; want event-limit panic")
}

func TestDeadlinePanicsWithDiagnostic(t *testing.T) {
	eng := NewEngine()
	eng.Spawn("slow", 0, func(th *Thread) {
		th.SetWaitReason("long-sleep", 0)
		th.Sleep(1 * Millisecond)
	})
	eng.SetDeadline(1 * Microsecond)

	defer func() {
		r := recover()
		se, ok := r.(*StallError)
		if !ok {
			t.Fatalf("panic value %T (%v), want *StallError", r, r)
		}
		if se.Kind != StallDeadline {
			t.Errorf("Kind = %v, want %v", se.Kind, StallDeadline)
		}
		if len(se.Blocked) != 1 || se.Blocked[0].Name != "slow" {
			t.Fatalf("Blocked = %+v, want the sleeping thread", se.Blocked)
		}
		if se.Blocked[0].Reason != "long-sleep; wake scheduled" {
			t.Errorf("Reason = %q, want wait reason plus pending wake", se.Blocked[0].Reason)
		}
	}()
	eng.Run()
	t.Fatal("Run returned; want deadline panic")
}

func TestDeadlineAllowsCompletion(t *testing.T) {
	eng := NewEngine()
	done := false
	eng.Spawn("quick", 0, func(th *Thread) {
		th.Sleep(10 * Nanosecond)
		done = true
	})
	eng.SetDeadline(1 * Microsecond)
	eng.Run()
	if !done {
		t.Error("thread did not finish under an ample deadline")
	}
}

func TestDiagnoseBoundsNextEvents(t *testing.T) {
	eng := NewEngine()
	for i := 8; i >= 1; i-- {
		eng.At(Time(i)*Nanosecond, func() {})
	}
	se := eng.Diagnose(StallDeadlock)
	if len(se.NextEvents) != maxDiagEvents {
		t.Fatalf("NextEvents has %d entries, want %d", len(se.NextEvents), maxDiagEvents)
	}
	for i := 0; i < maxDiagEvents; i++ {
		if want := Time(i+1) * Nanosecond; se.NextEvents[i] != want {
			t.Errorf("NextEvents[%d] = %v, want %v (sorted ascending)", i, se.NextEvents[i], want)
		}
	}
	if se.Pending != 8 {
		t.Errorf("Pending = %d, want 8", se.Pending)
	}
}

func TestRunUntilAfterStopStaysAtLastEvent(t *testing.T) {
	eng := NewEngine()
	eng.At(10*Nanosecond, func() { eng.Stop() })
	eng.At(20*Nanosecond, func() {})
	if got := eng.RunUntil(100 * Nanosecond); got != 10*Nanosecond {
		t.Errorf("RunUntil after Stop = %v, want 10ns (must not warp to the deadline)", got)
	}
	// Resuming picks the queue back up and then advances to the deadline.
	if got := eng.RunUntil(100 * Nanosecond); got != 100*Nanosecond {
		t.Errorf("resumed RunUntil = %v, want 100ns", got)
	}
}

func TestStallErrorNotesRendered(t *testing.T) {
	se := &StallError{Kind: StallDeadlock, Notes: []string{"mem: home 3 line 7 busy"}}
	if !strings.Contains(se.Error(), "note: mem: home 3 line 7 busy") {
		t.Errorf("notes not rendered:\n%s", se.Error())
	}
}
