package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// execRecord is one dispatched event as observed by its tile: per-tile
// slices are single-writer (each tile's window runs on one goroutine),
// so recording is race-free at any worker count.
type execRecord struct {
	At  Time
	Tag string
}

// shardScenario drives a deterministic pseudo-random storm of local and
// cross-tile events through a fresh group and returns the per-tile
// execution logs. The event pattern depends only on (tiles, lookahead,
// seed) — never on workers — so logs must deep-equal across worker
// counts.
func shardScenario(tiles, workers int, lookahead Time, seed uint64) ([][]execRecord, *Group) {
	g := NewGroup(tiles, lookahead)
	g.SetWorkers(workers)
	logs := make([][]execRecord, tiles)
	// Every pseudo-random choice is a pure hash of (seed, id, depth): the
	// scenario must not depend on execution interleave, and a shared RNG
	// stream would both race across workers and consume in varying order.
	choose := func(id, depth int, n uint64) uint64 {
		h := seed ^ uint64(id)*0x9e3779b97f4a7c15 ^ uint64(depth)*0xbf58476d1ce4e5b9
		h ^= h >> 31
		h *= 0x94d049bb133111eb
		h ^= h >> 29
		return h % n
	}
	// Each chain hops tile-to-tile: wait a hashed local delay, then
	// forward to a hashed tile at exactly now+lookahead (the tightest
	// legal cross time, exercising the barrier boundary).
	var hop func(tile, depth int, id int)
	hop = func(tile, depth, id int) {
		e := g.Engine(tile)
		logs[tile] = append(logs[tile], execRecord{At: e.Now(), Tag: fmt.Sprintf("chain%d.%d@%d", id, depth, tile)})
		if depth == 0 {
			return
		}
		local := Time(choose(id, depth, uint64(lookahead)))
		e.After(local, func() {
			dst := int(choose(id, depth+100, uint64(tiles)))
			at := e.Now() + lookahead
			e.CrossAt(g.Engine(dst), at, func() { hop(dst, depth-1, id) })
		})
	}
	for id := 0; id < 4*tiles; id++ {
		tile := id % tiles
		start := Time(choose(id, 0, 64))
		id := id
		g.Engine(tile).At(start, func() { hop(tile, 6, id) })
	}
	g.Run()
	return logs, g
}

// TestGroupDeterministicAcrossWorkers is the engine-level half of the
// byte-identical guarantee: the same scenario at 1, 2, and 4 workers
// produces identical per-tile execution logs, final time, dispatch
// count, and window count.
func TestGroupDeterministicAcrossWorkers(t *testing.T) {
	const tiles = 4
	for _, seed := range []uint64{1, 7, 42} {
		ref, refG := shardScenario(tiles, 1, 100, seed)
		for _, workers := range []int{2, 4} {
			got, g := shardScenario(tiles, workers, 100, seed)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d: execution logs differ between 1 and %d workers", seed, workers)
			}
			if g.Now() != refG.Now() || g.Dispatched() != refG.Dispatched() || g.Windows() != refG.Windows() {
				t.Fatalf("seed %d: now/dispatched/windows differ between 1 and %d workers: (%v,%d,%d) vs (%v,%d,%d)",
					seed, workers, g.Now(), g.Dispatched(), g.Windows(), refG.Now(), refG.Dispatched(), refG.Windows())
			}
		}
	}
}

// TestGroupMergeOrderProperty checks the mailbox-merge ordering contract
// directly: everything a destination tile executes is in nondecreasing
// time, and cross-tile events that tie on time execute in (sender seq,
// source tile) order — including ties created exactly at a window
// barrier by different source tiles.
func TestGroupMergeOrderProperty(t *testing.T) {
	const tiles = 3
	g := NewGroup(tiles, 50)
	g.SetWorkers(1)
	var got []string
	// Window 1: every tile posts two events to tile 0 at the identical
	// barrier-tie time. Deterministic order must be (at, sender seq, src)
	// — seq compares before source tile, so the senders' first posts
	// precede all second posts — regardless of posting interleave.
	for src := 1; src < tiles; src++ {
		src := src
		e := g.Engine(src)
		e.At(10, func() {
			at := e.Now() + 50
			for _, tag := range []string{"a", "b"} {
				tag := tag
				e.CrossAt(g.Engine(0), at, func() {
					got = append(got, fmt.Sprintf("src%d.%s@%v", src, tag, g.Engine(0).Now()))
				})
			}
		})
	}
	// Tile 0 keeps its own queue busy so merged events interleave with
	// local ones; local events at the tie time were scheduled earlier and
	// must still run before the merged ones (lower seq).
	e0 := g.Engine(0)
	for _, at := range []Time{10, 60, 70} {
		at := at
		e0.At(at, func() { got = append(got, fmt.Sprintf("local@%v", at)) })
	}
	g.Run()
	want := []string{"local@10ps", "local@60ps", "src1.a@60ps", "src2.a@60ps", "src1.b@60ps", "src2.b@60ps", "local@70ps"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
}

// TestCrossAtInsideWindowPanics pins the lookahead-violation guard: a
// cross-tile event targeted inside the current window is a causality
// break and must fail loudly.
func TestCrossAtInsideWindowPanics(t *testing.T) {
	g := NewGroup(2, 100)
	e := g.Engine(0)
	e.At(0, func() {
		e.CrossAt(g.Engine(1), e.Now()+1, func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cross-tile event inside the window did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("panic %v does not name the lookahead violation", r)
		}
	}()
	g.Run()
}

// TestCrossAtLocalIsPlainAt checks the degenerate cases: same-engine and
// ungrouped CrossAt behave exactly like At.
func TestCrossAtLocalIsPlainAt(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.CrossAt(e, 5, func() { ran++ })
	dst := NewEngine()
	e.CrossAt(dst, 7, func() { ran++ })
	e.Run()
	dst.Run()
	if ran != 2 {
		t.Fatalf("ran %d of 2 degenerate CrossAt events", ran)
	}
}

// TestGroupDiagnoseMergesTiles checks watchdog fan-in: blocked threads on
// every tile appear in one StallError, in tile order.
func TestGroupDiagnoseMergesTiles(t *testing.T) {
	g := NewGroup(3, 10)
	for i := 0; i < 3; i++ {
		i := i
		g.Engine(i).Spawn(fmt.Sprintf("proc%d", i), 0, func(th *Thread) {
			th.SetWaitReason("await-message", int64(i))
			th.Pause()
		})
	}
	g.Run()
	se := g.CheckLiveness()
	if se == nil {
		t.Fatal("group with three parked threads reported live")
	}
	if se.Kind != StallDeadlock {
		t.Fatalf("kind = %v, want deadlock", se.Kind)
	}
	if len(se.Blocked) != 3 {
		t.Fatalf("blamed %d threads, want 3: %+v", len(se.Blocked), se.Blocked)
	}
	for i, b := range se.Blocked {
		if want := fmt.Sprintf("proc%d", i); b.Name != want {
			t.Fatalf("blocked[%d] = %q, want %q (tile-order merge)", i, b.Name, want)
		}
		if !strings.Contains(b.Reason, "await-message") {
			t.Fatalf("blocked[%d] reason %q lost the wait reason", i, b.Reason)
		}
	}
}

// TestGroupEventLimitInsideWindow checks that a runaway self-feeding tile
// trips the event limit inside a window (the barrier alone would never
// be reached) and surfaces as a group-level diagnostic.
func TestGroupEventLimitInsideWindow(t *testing.T) {
	g := NewGroup(2, 10)
	g.SetEventLimit(1000)
	e := g.Engine(1)
	var loop func()
	loop = func() { e.After(0, loop) }
	e.At(0, loop)
	defer func() {
		se, ok := recover().(*StallError)
		if !ok {
			t.Fatal("runaway tile did not panic with a StallError")
		}
		if se.Kind != StallEventLimit {
			t.Fatalf("kind = %v, want event-limit", se.Kind)
		}
	}()
	g.Run()
}
