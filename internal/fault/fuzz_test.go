package fault

import (
	"reflect"
	"testing"
)

// FuzzParseSpec fuzzes the fault/noise spec grammar: Parse must never
// panic, and any spec it accepts must render (String) to a canonical
// form that re-parses to the identical Config — the fixed point the
// memo cache and run log rely on, since canonical spec strings are part
// of the cache key.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"jitter:max=200ns,prob=0.1",
		"outage:node=*,start=10us,dur=2us,every=50us",
		"stall:node=3,start=1us,dur=500ns",
		"hostnoise:node=*,dist=heavytail,mean=2us",
		"netnoise:node=1,dist=exp,mean=100ns,prob=0.5",
		"delay:node=4,at=10us,dur=2us",
		"hostnoise:node=*,dist=exp,mean=500ns;netnoise:node=*,dist=uniform,mean=20ns;delay:node=0,dur=1us",
		"jitter:max=1us;outage:node=0,dur=1ns;stall:node=*,start=2ms,dur=1us,every=2ms",
		"hostnoise:dist=exp,mean=1.5us,prob=0.999",
		"delay:node=-1,at=0ps,dur=250ps",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := Parse(spec)
		if err != nil {
			return // rejected specs only need to not panic
		}
		canon := c.String()
		c2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) ok but canonical form %q does not re-parse: %v", spec, canon, err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("canonical form is not a fixed point:\n  spec  %q\n  canon %q\n  cfg   %+v\n  again %+v", spec, canon, c, c2)
		}
		if canon2 := c2.String(); canon2 != canon {
			t.Fatalf("String unstable: %q then %q (from %q)", canon, canon2, spec)
		}
	})
}
