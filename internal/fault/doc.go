// Package fault provides deterministic, seeded fault injection for the
// simulated machine: link-outage windows on mesh links, bounded per-packet
// delay jitter, and endpoint drain stalls. It is the software analogue of
// the perturbations the paper applies to running hardware (cross-traffic,
// slowed clocks) and of the failure modes Alewife's CMMU recovers from
// (a blocked network output queue trapping to software).
//
// Determinism is the core contract: an Injector's entire fault schedule is
// a pure function of (Config, seed, query order). The simulator is
// single-threaded and dispatches events in a total order, so two runs of
// the same configuration with the same seed see byte-identical fault
// schedules and therefore produce byte-identical results.
//
// Faults only delay traffic; they never drop it. Every injected fault is
// therefore safe for protocol correctness — it stresses queueing,
// back-pressure, and retry paths without requiring recovery logic the
// modeled hardware does not have.
package fault
