// Package fault provides deterministic, seeded fault and noise
// injection for the simulated machine.
//
// The fault half models discrete degradation events: link-outage
// windows on mesh links, bounded per-packet delay jitter, and endpoint
// drain stalls — the software analogue of the perturbations the paper
// applies to running hardware (cross-traffic, slowed clocks) and of the
// failure modes Alewife's CMMU recovers from (a blocked network output
// queue trapping to software).
//
// The noise half models the statistical imperfections of a real
// machine: per-node host noise dilating compute phases (hostnoise:),
// per-packet network delivery noise (netnoise:), and one-shot injected
// delays for perturbation-propagation studies (delay:). Magnitudes are
// drawn from configurable distributions — const, uniform, exp (von
// Neumann's comparison method), and a capped shifted-Pareto heavytail —
// sampled with integer arithmetic only, so draws are bit-identical on
// every platform and Go version.
//
// Determinism is the core contract: an Injector's entire schedule,
// stochastic or not, is a pure function of (Config, seed, query order).
// Host noise draws from one splitmix64 stream per node (the node id
// salts the seed), network noise from a dedicated stream consumed in
// delivery order; the serial simulator dispatches events in a total
// order, so two runs of the same configuration with the same seed see
// byte-identical schedules and therefore produce byte-identical
// results.
//
// Faults and noise only delay traffic or compute; they never drop
// anything. Every injection is therefore safe for protocol correctness
// — it stresses queueing, back-pressure, and retry paths without
// requiring recovery logic the modeled hardware does not have.
//
// Specs are canonical strings (Parse / Config.String round-trip, fuzzed
// by FuzzParseSpec), which keeps machine.Config comparable for the
// sweep runner's memo cache. Fault clauses (jitter, outage, stall) and
// noise clauses (hostnoise, netnoise, delay) are carried in separate
// machine.Config fields so fault schedules and noise seeds sweep
// independently.
package fault
