package fault

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/sim"
)

// Window is one fault-activation window against a target node. With
// Every == 0 the window opens once at Start for Dur; otherwise it reopens
// every Every from Start onward (Dur must be < Every for the fault to
// ever clear).
type Window struct {
	Node  int      // target node id; AllNodes targets every node
	Start sim.Time // first opening
	Dur   sim.Time // length of each opening
	Every sim.Time // repeat period; 0 = one-shot
}

// AllNodes as a Window.Node targets every node.
const AllNodes = -1

// activeUntil returns the end of the window opening covering t, or 0 if
// the window is closed at t.
func (w Window) activeUntil(t sim.Time) sim.Time {
	if t < w.Start {
		return 0
	}
	if w.Every <= 0 {
		if t < w.Start+w.Dur {
			return w.Start + w.Dur
		}
		return 0
	}
	phase := (t - w.Start) % w.Every
	if phase < w.Dur {
		return t - phase + w.Dur
	}
	return 0
}

// matches reports whether the window targets node.
func (w Window) matches(node int) bool { return w.Node == AllNodes || w.Node == node }

// Jitter adds a bounded uniform extra delay to a fraction of packets.
type Jitter struct {
	Max  sim.Time // maximum extra delivery delay per packet; 0 disables
	Prob float64  // fraction of packets jittered (0, 1]
}

// DistKind selects a noise distribution. Every kind is parameterized by
// its mean, so swapping distributions holds the injected load constant
// and varies only its shape.
type DistKind int

const (
	// DistConst injects exactly the mean every time.
	DistConst DistKind = iota
	// DistUniform draws uniformly from [0, 2*mean].
	DistUniform
	// DistExp draws from an exponential with the given mean (system
	// noise with memoryless arrivals).
	DistExp
	// DistHeavyTail draws from a shifted Pareto with tail index 2 and
	// the given mean — a betaprime-like polynomial tail (finite mean,
	// infinite variance): most draws are small, rare ones are huge.
	// Samples are capped at 1024x the mean so a single draw cannot
	// masquerade as a deadlock.
	DistHeavyTail
)

func (k DistKind) String() string {
	switch k {
	case DistConst:
		return "const"
	case DistUniform:
		return "uniform"
	case DistExp:
		return "exp"
	case DistHeavyTail:
		return "heavytail"
	}
	return fmt.Sprintf("DistKind(%d)", int(k))
}

// heavyTailCap bounds a single DistHeavyTail draw, in units of the mean.
const heavyTailCap = 1024

// Noise is one stochastic noise source: every matching event receives an
// extra delay drawn from the distribution. Host noise dilates compute
// phases on the targeted nodes; network noise delays packet delivery for
// packets whose source or destination matches.
type Noise struct {
	Node int      // target node id; AllNodes targets every node
	Dist DistKind // distribution shape
	Mean sim.Time // mean extra delay per noised event
	Prob float64  // fraction of events noised (0, 1]
}

// matches reports whether the source targets node.
func (n Noise) matches(node int) bool { return n.Node == AllNodes || n.Node == node }

// Delay is a one-shot injected delay for propagation studies (Afzal,
// Hager & Wellein): the targeted node's processor stalls for Dur at its
// first compute-phase boundary at or after At, exactly once.
type Delay struct {
	Node int      // target node id; AllNodes delays every node once
	At   sim.Time // earliest firing time
	Dur  sim.Time // injected stall length
}

// matches reports whether the delay targets node.
func (d Delay) matches(node int) bool { return d.Node == AllNodes || d.Node == node }

// Config is a parsed fault specification. The zero value injects nothing.
type Config struct {
	Jitter    Jitter
	HostNoise []Noise  // per-node compute-phase dilation
	NetNoise  []Noise  // per-packet delivery delay
	Delays    []Delay  // one-shot injected processor delays
	Outages   []Window // link outages: links incident to the node are blocked
	Stalls    []Window // endpoint drain stalls: the node's NI refuses input
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool { return c.FaultsEnabled() || c.NoiseEnabled() }

// FaultsEnabled reports whether the config injects discrete faults —
// jitter, outages, or stalls, the clauses machine.Config.FaultSpec
// carries.
func (c Config) FaultsEnabled() bool {
	return c.Jitter.Max > 0 || len(c.Outages) > 0 || len(c.Stalls) > 0
}

// NoiseEnabled reports whether the config injects stochastic noise or
// one-shot delays — the clauses machine.Config.NoiseSpec carries.
func (c Config) NoiseEnabled() bool {
	return len(c.HostNoise) > 0 || len(c.NetNoise) > 0 || len(c.Delays) > 0
}

// Stochastic reports whether the config consumes seeded stream or
// one-shot state whose draw order the serial engine alone pins down
// (jitter and every noise clause). Pure window lookups are not
// stochastic: the tiled engine may keep them.
func (c Config) Stochastic() bool {
	return c.Jitter.Max > 0 || c.NoiseEnabled()
}

// String renders the canonical spec text that Parse accepts. Re-parsing
// the rendering yields an identical Config (spec strings are memo-cache
// keys), and rendering is a fixed point of Parse-then-String.
func (c Config) String() string {
	var parts []string
	if c.Jitter.Max > 0 {
		parts = append(parts, fmt.Sprintf("jitter:max=%s,prob=%g", fmtDur(c.Jitter.Max), c.Jitter.Prob))
	}
	noise := func(kind string, n Noise) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:node=%s,dist=%s,mean=%s", kind, fmtNode(n.Node), n.Dist, fmtDur(n.Mean))
		if n.Prob != 1 {
			fmt.Fprintf(&b, ",prob=%g", n.Prob)
		}
		return b.String()
	}
	for _, n := range c.HostNoise {
		parts = append(parts, noise("hostnoise", n))
	}
	for _, n := range c.NetNoise {
		parts = append(parts, noise("netnoise", n))
	}
	for _, d := range c.Delays {
		parts = append(parts, fmt.Sprintf("delay:node=%s,at=%s,dur=%s", fmtNode(d.Node), fmtDur(d.At), fmtDur(d.Dur)))
	}
	clause := func(kind string, w Window) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:node=%s,start=%s,dur=%s", kind, fmtNode(w.Node), fmtDur(w.Start), fmtDur(w.Dur))
		if w.Every > 0 {
			fmt.Fprintf(&b, ",every=%s", fmtDur(w.Every))
		}
		return b.String()
	}
	for _, w := range c.Outages {
		parts = append(parts, clause("outage", w))
	}
	for _, w := range c.Stalls {
		parts = append(parts, clause("stall", w))
	}
	return strings.Join(parts, ";")
}

func fmtNode(n int) string {
	if n == AllNodes {
		return "*"
	}
	return strconv.Itoa(n)
}

func fmtDur(t sim.Time) string {
	switch {
	case t >= sim.Millisecond && t%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t >= sim.Microsecond && t%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	case t >= sim.Nanosecond && t%sim.Nanosecond == 0:
		return fmt.Sprintf("%dns", t/sim.Nanosecond)
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Parse reads a fault specification of semicolon-separated clauses:
//
//	jitter:max=<dur>,prob=<float>
//	hostnoise:node=<id|*>,dist=<const|uniform|exp|heavytail>,mean=<dur>[,prob=<float>]
//	netnoise:node=<id|*>,dist=<const|uniform|exp|heavytail>,mean=<dur>[,prob=<float>]
//	delay:node=<id|*>,at=<dur>,dur=<dur>
//	outage:node=<id|*>,start=<dur>,dur=<dur>[,every=<dur>]
//	stall:node=<id|*>,start=<dur>,dur=<dur>[,every=<dur>]
//
// Durations take a ps/ns/us/ms suffix (e.g. 300ns, 40us). A node of "*"
// (or -1) targets every node. Whitespace around clauses is ignored.
// Discrete-fault clauses (jitter, outage, stall) belong in
// machine.Config.FaultSpec; noise clauses (hostnoise, netnoise, delay)
// belong in machine.Config.NoiseSpec, which carries its own seed.
func Parse(spec string) (Config, error) {
	var c Config
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Config{}, fmt.Errorf("fault: clause %q: want kind:key=val,...", clause)
		}
		kv, err := parseKVs(rest)
		if err != nil {
			return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch kind {
		case "jitter":
			j, err := parseJitter(kv)
			if err != nil {
				return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if c.Jitter.Max > 0 {
				return Config{}, fmt.Errorf("fault: duplicate jitter clause %q", clause)
			}
			c.Jitter = j
		case "hostnoise", "netnoise":
			n, err := parseNoise(kv)
			if err != nil {
				return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if kind == "hostnoise" {
				c.HostNoise = append(c.HostNoise, n)
			} else {
				c.NetNoise = append(c.NetNoise, n)
			}
		case "delay":
			d, err := parseDelay(kv)
			if err != nil {
				return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			c.Delays = append(c.Delays, d)
		case "outage", "stall":
			w, err := parseWindow(kv)
			if err != nil {
				return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if kind == "outage" {
				c.Outages = append(c.Outages, w)
			} else {
				c.Stalls = append(c.Stalls, w)
			}
		default:
			return Config{}, fmt.Errorf("fault: unknown clause kind %q (want jitter, hostnoise, netnoise, delay, outage, or stall)", kind)
		}
	}
	return c, nil
}

func parseKVs(s string) (map[string]string, error) {
	kv := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad key=value pair %q", pair)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func parseJitter(kv map[string]string) (Jitter, error) {
	var j Jitter
	for k, v := range kv {
		switch k {
		case "max":
			d, err := ParseDuration(v)
			if err != nil {
				return Jitter{}, err
			}
			j.Max = d
		case "prob":
			p, err := parseProb(v)
			if err != nil {
				return Jitter{}, err
			}
			j.Prob = p
		default:
			return Jitter{}, fmt.Errorf("unknown jitter key %q", k)
		}
	}
	if j.Max <= 0 {
		return Jitter{}, fmt.Errorf("jitter needs max=<dur> > 0")
	}
	if j.Prob == 0 {
		j.Prob = 1
	}
	return j, nil
}

// parseProb rejects NaN explicitly: NaN slips past range comparisons and
// would render as "NaN", breaking the Parse/String fixed point.
func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil || p != p || p <= 0 || p > 1 {
		return 0, fmt.Errorf("bad prob %q (want 0 < prob <= 1)", v)
	}
	return p, nil
}

func parseNoise(kv map[string]string) (Noise, error) {
	n := Noise{Node: AllNodes, Dist: -1}
	for k, v := range kv {
		switch k {
		case "node":
			if v == "*" || v == "-1" {
				n.Node = AllNodes
				continue
			}
			id, err := strconv.Atoi(v)
			if err != nil || id < 0 {
				return Noise{}, fmt.Errorf("bad node %q", v)
			}
			n.Node = id
		case "dist":
			switch v {
			case "const":
				n.Dist = DistConst
			case "uniform":
				n.Dist = DistUniform
			case "exp":
				n.Dist = DistExp
			case "heavytail":
				n.Dist = DistHeavyTail
			default:
				return Noise{}, fmt.Errorf("bad dist %q (want const, uniform, exp, or heavytail)", v)
			}
		case "mean":
			d, err := ParseDuration(v)
			if err != nil {
				return Noise{}, err
			}
			n.Mean = d
		case "prob":
			p, err := parseProb(v)
			if err != nil {
				return Noise{}, err
			}
			n.Prob = p
		default:
			return Noise{}, fmt.Errorf("unknown noise key %q", k)
		}
	}
	if n.Dist < 0 {
		return Noise{}, fmt.Errorf("noise needs dist=<const|uniform|exp|heavytail>")
	}
	if n.Mean <= 0 {
		return Noise{}, fmt.Errorf("noise needs mean=<dur> > 0")
	}
	if n.Prob == 0 {
		n.Prob = 1
	}
	return n, nil
}

func parseDelay(kv map[string]string) (Delay, error) {
	d := Delay{Node: AllNodes}
	sawNode := false
	for k, v := range kv {
		switch k {
		case "node":
			sawNode = true
			if v == "*" || v == "-1" {
				d.Node = AllNodes
				continue
			}
			id, err := strconv.Atoi(v)
			if err != nil || id < 0 {
				return Delay{}, fmt.Errorf("bad node %q", v)
			}
			d.Node = id
		case "at", "dur":
			t, err := ParseDuration(v)
			if err != nil {
				return Delay{}, err
			}
			if k == "at" {
				d.At = t
			} else {
				d.Dur = t
			}
		default:
			return Delay{}, fmt.Errorf("unknown delay key %q", k)
		}
	}
	if !sawNode {
		return Delay{}, fmt.Errorf("delay needs node=<id|*>")
	}
	if d.Dur <= 0 {
		return Delay{}, fmt.Errorf("delay needs dur=<dur> > 0")
	}
	return d, nil
}

func parseWindow(kv map[string]string) (Window, error) {
	w := Window{Node: AllNodes}
	sawNode := false
	for k, v := range kv {
		switch k {
		case "node":
			sawNode = true
			if v == "*" || v == "-1" {
				w.Node = AllNodes
				continue
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Window{}, fmt.Errorf("bad node %q", v)
			}
			w.Node = n
		case "start", "dur", "every":
			d, err := ParseDuration(v)
			if err != nil {
				return Window{}, err
			}
			switch k {
			case "start":
				w.Start = d
			case "dur":
				w.Dur = d
			case "every":
				w.Every = d
			}
		default:
			return Window{}, fmt.Errorf("unknown window key %q", k)
		}
	}
	if !sawNode {
		return Window{}, fmt.Errorf("window needs node=<id|*>")
	}
	if w.Dur <= 0 {
		return Window{}, fmt.Errorf("window needs dur=<dur> > 0")
	}
	if w.Every > 0 && w.Dur >= w.Every {
		return Window{}, fmt.Errorf("repeating window never closes: dur %v >= every %v", w.Dur, w.Every)
	}
	return w, nil
}

// ParseDuration reads a simulated duration with a ps/ns/us/ms suffix.
func ParseDuration(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		scale  sim.Time
	}{
		{"ms", sim.Millisecond}, {"us", sim.Microsecond}, {"ns", sim.Nanosecond}, {"ps", sim.Picosecond},
	}
	for _, u := range units {
		if v, ok := strings.CutSuffix(s, u.suffix); ok {
			f, err := strconv.ParseFloat(v, 64)
			//lint:allow simlint/intmath spec-parse-time overflow bound; result is latched as integer Time
			if err != nil || f < 0 || f >= float64(math.MaxInt64)/float64(u.scale) {
				return 0, fmt.Errorf("bad duration %q", s)
			}
			//lint:allow simlint/intmath spec-parse-time unit conversion; result is latched as integer Time
			return sim.Time(f * float64(u.scale)), nil
		}
	}
	return 0, fmt.Errorf("bad duration %q (want e.g. 300ns, 40us)", s)
}

// Stats counts faults actually injected, so tests and reports can confirm
// the schedule fired.
type Stats struct {
	Jittered      int64 // packets given extra delivery delay
	OutageDelays  int64 // link reservations pushed past an outage window
	StallRefusals int64 // endpoint deliveries refused during a stall window

	HostNoiseSamples int64 // compute phases dilated by host noise
	HostNoisePs      int64 // total host-noise dilation injected, in ps
	NetNoiseSamples  int64 // packets delayed by network noise
	NetNoisePs       int64 // total network-noise delay injected, in ps
	DelaysFired      int64 // one-shot injected delays that fired
	DelayPs          int64 // total one-shot delay injected, in ps
}

// Samples is the total number of stochastic noise draws that injected
// time (host + net + one-shot delays).
func (s Stats) Samples() int64 { return s.HostNoiseSamples + s.NetNoiseSamples + s.DelaysFired }

// InjectedPs is the total simulated time injected by noise, in ps.
func (s Stats) InjectedPs() int64 { return s.HostNoisePs + s.NetNoisePs + s.DelayPs }

// Injector is the live fault source attached to one simulated machine.
// The schedule-consuming path (PacketJitter) is not safe for concurrent
// use and only runs under the serial engine; the pure window lookups
// (LinkBlockedUntil, DrainStalledUntil) are read-only over the schedule
// and count injections atomically, so the tiled engine may call them
// from several tiles at once.
type Injector struct {
	cfg Config
	rng uint64

	// Noise state. Each node gets its own host-noise stream (seeded from
	// the injector seed mixed with the node id) so one node's compute
	// pattern cannot perturb another's draws; network noise shares one
	// stream consumed in delivery order. All of it is serial-engine-only
	// state: Config.Stochastic() forces the tiling fallback.
	netRng uint64
	seed   uint64
	nodes  []nodeNoise

	jittered      atomic.Int64
	outageDelays  atomic.Int64
	stallRefusals atomic.Int64

	hostNoiseSamples atomic.Int64
	hostNoisePs      atomic.Int64
	netNoiseSamples  atomic.Int64
	netNoisePs       atomic.Int64
	delaysFired      atomic.Int64
	delayPs          atomic.Int64
}

// nodeNoise is one node's private noise state.
type nodeNoise struct {
	init       bool
	rng        uint64
	delayFired []bool // parallel to cfg.Delays; one-shot latches
}

// NewInjector builds an injector for cfg with the given schedule seed.
func NewInjector(cfg Config, seed uint64) *Injector {
	return &Injector{
		cfg:    cfg,
		rng:    splitmix64Init(seed),
		netRng: splitmix64Init(mix64(seed, 0x6e6574)), // "net"
		seed:   seed,
	}
}

// node returns the lazily-initialized state for one node.
func (in *Injector) node(id int) *nodeNoise {
	if id >= len(in.nodes) {
		grown := make([]nodeNoise, id+1)
		copy(grown, in.nodes)
		in.nodes = grown
	}
	st := &in.nodes[id]
	if !st.init {
		st.init = true
		st.rng = splitmix64Init(mix64(in.seed, uint64(id)))
		st.delayFired = make([]bool, len(in.cfg.Delays))
	}
	return st
}

// Config returns the injector's fault configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns counts of faults injected so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Jittered:      in.jittered.Load(),
		OutageDelays:  in.outageDelays.Load(),
		StallRefusals: in.stallRefusals.Load(),

		HostNoiseSamples: in.hostNoiseSamples.Load(),
		HostNoisePs:      in.hostNoisePs.Load(),
		NetNoiseSamples:  in.netNoiseSamples.Load(),
		NetNoisePs:       in.netNoisePs.Load(),
		DelaysFired:      in.delaysFired.Load(),
		DelayPs:          in.delayPs.Load(),
	}
}

// splitmix64: tiny, well-mixed, and stable across Go versions (unlike
// math/rand's unexported algorithms), which keeps fault schedules
// reproducible forever.
func splitmix64Init(seed uint64) uint64 { return seed + 0x9e3779b97f4a7c15 }

// next advances one splitmix64 stream and returns the next 64-bit draw.
func next(rng *uint64) uint64 {
	*rng += 0x9e3779b97f4a7c15
	z := *rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 derives an independent stream seed from a base seed and a salt by
// running the salted base through one splitmix64 output step.
func mix64(seed, salt uint64) uint64 {
	z := seed ^ (salt+1)*0x9e3779b97f4a7c15
	return next(&z)
}

func (in *Injector) next() uint64 { return next(&in.rng) }

// gate reports whether an event with the given probability fires, drawing
// one value from the stream iff prob < 1 (prob == 1 consumes nothing, so
// the common fully-noised case draws exactly one sample per event).
func gate(rng *uint64, prob float64) bool {
	if prob >= 1 {
		return true
	}
	//lint:allow simlint/intmath 53-bit mantissa divided by a power of two is exact; the compare is bit-identical on every IEEE-754 host
	return float64(next(rng)>>11)/(1<<53) < prob
}

// isqrt is the integer square root (floor) by Newton's method.
func isqrt(v uint64) uint64 {
	if v < 2 {
		return v
	}
	x := uint64(1) << ((bits.Len64(v) + 1) / 2)
	for {
		y := (x + v/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

// sampleDist draws one value from the distribution using only integer
// arithmetic on the splitmix64 stream, so samples are bit-identical on
// every platform and Go version. Every kind has expectation mean.
func sampleDist(rng *uint64, kind DistKind, mean sim.Time) sim.Time {
	switch kind {
	case DistConst:
		return mean
	case DistUniform:
		// Uniform on [0, 2*mean]: scale a 64-bit draw by the range width
		// via the high word of the 128-bit product (unbiased to ~2^-64).
		hi, _ := bits.Mul64(next(rng), uint64(2*mean)+1)
		return sim.Time(hi)
	case DistExp:
		// Von Neumann's comparison method: exponential variates from
		// uniform draws and comparisons alone, no logarithms. Generate
		// runs u1 > u2 > ... > uk; a run of odd length k accepts n + u1
		// (in units of the mean) where n counts rejected rounds.
		n := uint64(0)
		for {
			u1 := next(rng)
			prev, k := u1, 1
			for {
				u := next(rng)
				if u >= prev {
					break
				}
				prev = u
				k++
			}
			if k&1 == 1 {
				hi, _ := bits.Mul64(u1, uint64(mean))
				return sim.Time(n*uint64(mean) + hi)
			}
			n++
		}
	case DistHeavyTail:
		// Shifted Pareto with tail index 2: X = mean*(1/sqrt(U) - 1) has
		// E[X] = mean, P(X > x) ~ (mean/x)^2 — a betaprime-like
		// polynomial tail with finite mean and infinite variance.
		// 1/sqrt(U) is computed as 2^32/isqrt(U); draws are capped at
		// heavyTailCap*mean (which also keeps Div64 in range).
		u := next(rng) | 1
		s := isqrt(u)
		if s < (1<<32)/(heavyTailCap+1) {
			return heavyTailCap * mean
		}
		hi, lo := bits.Mul64(uint64(mean), 1<<32)
		q, _ := bits.Div64(hi, lo, s)
		x := sim.Time(q) - mean
		if x < 0 {
			x = 0
		}
		if x > heavyTailCap*mean {
			x = heavyTailCap * mean
		}
		return x
	}
	return 0
}

// ComputeDilation returns the extra stall to insert at a compute-phase
// boundary on node at time now: host-noise dilation plus any one-shot
// injected delay whose firing time has arrived. It consumes per-node
// deterministic stream state, so callers must invoke it exactly once per
// compute phase, in that node's program order (serial engine only).
func (in *Injector) ComputeDilation(nodeID int, now sim.Time) sim.Time {
	if len(in.cfg.HostNoise) == 0 && len(in.cfg.Delays) == 0 {
		return 0
	}
	st := in.node(nodeID)
	var total sim.Time
	for _, n := range in.cfg.HostNoise {
		if !n.matches(nodeID) || !gate(&st.rng, n.Prob) {
			continue
		}
		d := sampleDist(&st.rng, n.Dist, n.Mean)
		if d > 0 {
			in.hostNoiseSamples.Add(1)
			in.hostNoisePs.Add(int64(d))
			total += d
		}
	}
	for i, dl := range in.cfg.Delays {
		if st.delayFired[i] || !dl.matches(nodeID) || now < dl.At {
			continue
		}
		st.delayFired[i] = true
		in.delaysFired.Add(1)
		in.delayPs.Add(int64(dl.Dur))
		total += dl.Dur
	}
	return total
}

// PacketDelay returns the extra delivery delay network noise adds to one
// packet from src to dst. It consumes the shared network stream, so
// callers must invoke it exactly once per packet, in delivery order
// (serial engine only).
func (in *Injector) PacketDelay(src, dst int) sim.Time {
	var total sim.Time
	for _, n := range in.cfg.NetNoise {
		if (!n.matches(src) && !n.matches(dst)) || !gate(&in.netRng, n.Prob) {
			continue
		}
		d := sampleDist(&in.netRng, n.Dist, n.Mean)
		if d > 0 {
			in.netNoiseSamples.Add(1)
			in.netNoisePs.Add(int64(d))
			total += d
		}
	}
	return total
}

// PacketJitter returns the extra delivery delay for the next packet
// (possibly zero). It consumes deterministic schedule state, so callers
// must invoke it exactly once per packet, in dispatch order.
func (in *Injector) PacketJitter() sim.Time {
	j := in.cfg.Jitter
	if j.Max <= 0 {
		return 0
	}
	r := in.next()
	//lint:allow simlint/intmath 53-bit mantissa divided by a power of two is exact; the compare is bit-identical on every IEEE-754 host
	if j.Prob < 1 && float64(r>>11)/(1<<53) >= j.Prob {
		return 0
	}
	d := sim.Time(in.next() % uint64(j.Max+1))
	if d > 0 {
		in.jittered.Add(1)
	}
	return d
}

// LinkBlockedUntil reports when a mesh link joining nodes a and b becomes
// usable, given a desired reservation at time t: the end of the covering
// outage window, or 0 if no outage applies.
func (in *Injector) LinkBlockedUntil(a, b int, t sim.Time) sim.Time {
	var until sim.Time
	for _, w := range in.cfg.Outages {
		if !w.matches(a) && !w.matches(b) {
			continue
		}
		if u := w.activeUntil(t); u > until {
			until = u
		}
	}
	if until > t {
		in.outageDelays.Add(1)
		return until
	}
	return 0
}

// DrainStalledUntil reports when node's endpoint resumes draining input,
// or 0 if it is not stalled at time t.
func (in *Injector) DrainStalledUntil(node int, t sim.Time) sim.Time {
	var until sim.Time
	for _, w := range in.cfg.Stalls {
		if !w.matches(node) {
			continue
		}
		if u := w.activeUntil(t); u > until {
			until = u
		}
	}
	if until > t {
		in.stallRefusals.Add(1)
		return until
	}
	return 0
}

// Schedule tabulates, for documentation and debugging, the first openings
// of every window (up to max entries), in time order.
func (c Config) Schedule(max int) []string {
	type opening struct {
		at   sim.Time
		desc string
	}
	var all []opening
	add := func(kind string, w Window) {
		all = append(all, opening{w.Start, fmt.Sprintf("%s node=%s [%v, %v)", kind, fmtNode(w.Node), w.Start, w.Start+w.Dur)})
	}
	for _, w := range c.Outages {
		add("outage", w)
	}
	for _, w := range c.Stalls {
		add("stall", w)
	}
	for _, d := range c.Delays {
		all = append(all, opening{d.At, fmt.Sprintf("delay node=%s at=%v dur=%v", fmtNode(d.Node), d.At, d.Dur)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].at < all[j].at })
	if len(all) > max {
		all = all[:max]
	}
	out := make([]string, len(all))
	for i, o := range all {
		out[i] = o.desc
	}
	return out
}
