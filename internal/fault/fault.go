package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/sim"
)

// Window is one fault-activation window against a target node. With
// Every == 0 the window opens once at Start for Dur; otherwise it reopens
// every Every from Start onward (Dur must be < Every for the fault to
// ever clear).
type Window struct {
	Node  int      // target node id; AllNodes targets every node
	Start sim.Time // first opening
	Dur   sim.Time // length of each opening
	Every sim.Time // repeat period; 0 = one-shot
}

// AllNodes as a Window.Node targets every node.
const AllNodes = -1

// activeUntil returns the end of the window opening covering t, or 0 if
// the window is closed at t.
func (w Window) activeUntil(t sim.Time) sim.Time {
	if t < w.Start {
		return 0
	}
	if w.Every <= 0 {
		if t < w.Start+w.Dur {
			return w.Start + w.Dur
		}
		return 0
	}
	phase := (t - w.Start) % w.Every
	if phase < w.Dur {
		return t - phase + w.Dur
	}
	return 0
}

// matches reports whether the window targets node.
func (w Window) matches(node int) bool { return w.Node == AllNodes || w.Node == node }

// Jitter adds a bounded uniform extra delay to a fraction of packets.
type Jitter struct {
	Max  sim.Time // maximum extra delivery delay per packet; 0 disables
	Prob float64  // fraction of packets jittered (0, 1]
}

// Config is a parsed fault specification. The zero value injects nothing.
type Config struct {
	Jitter  Jitter
	Outages []Window // link outages: links incident to the node are blocked
	Stalls  []Window // endpoint drain stalls: the node's NI refuses input
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Jitter.Max > 0 || len(c.Outages) > 0 || len(c.Stalls) > 0
}

// String renders the canonical spec text that Parse accepts.
func (c Config) String() string {
	var parts []string
	if c.Jitter.Max > 0 {
		parts = append(parts, fmt.Sprintf("jitter:max=%s,prob=%g", fmtDur(c.Jitter.Max), c.Jitter.Prob))
	}
	clause := func(kind string, w Window) string {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:node=%s,start=%s,dur=%s", kind, fmtNode(w.Node), fmtDur(w.Start), fmtDur(w.Dur))
		if w.Every > 0 {
			fmt.Fprintf(&b, ",every=%s", fmtDur(w.Every))
		}
		return b.String()
	}
	for _, w := range c.Outages {
		parts = append(parts, clause("outage", w))
	}
	for _, w := range c.Stalls {
		parts = append(parts, clause("stall", w))
	}
	return strings.Join(parts, ";")
}

func fmtNode(n int) string {
	if n == AllNodes {
		return "*"
	}
	return strconv.Itoa(n)
}

func fmtDur(t sim.Time) string {
	switch {
	case t >= sim.Millisecond && t%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t >= sim.Microsecond && t%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	case t >= sim.Nanosecond && t%sim.Nanosecond == 0:
		return fmt.Sprintf("%dns", t/sim.Nanosecond)
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Parse reads a fault specification of semicolon-separated clauses:
//
//	jitter:max=<dur>,prob=<float>
//	outage:node=<id|*>,start=<dur>,dur=<dur>[,every=<dur>]
//	stall:node=<id|*>,start=<dur>,dur=<dur>[,every=<dur>]
//
// Durations take a ps/ns/us/ms suffix (e.g. 300ns, 40us). A node of "*"
// (or -1) targets every node. Whitespace around clauses is ignored.
func Parse(spec string) (Config, error) {
	var c Config
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Config{}, fmt.Errorf("fault: clause %q: want kind:key=val,...", clause)
		}
		kv, err := parseKVs(rest)
		if err != nil {
			return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch kind {
		case "jitter":
			j, err := parseJitter(kv)
			if err != nil {
				return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if c.Jitter.Max > 0 {
				return Config{}, fmt.Errorf("fault: duplicate jitter clause %q", clause)
			}
			c.Jitter = j
		case "outage", "stall":
			w, err := parseWindow(kv)
			if err != nil {
				return Config{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			if kind == "outage" {
				c.Outages = append(c.Outages, w)
			} else {
				c.Stalls = append(c.Stalls, w)
			}
		default:
			return Config{}, fmt.Errorf("fault: unknown clause kind %q (want jitter, outage, or stall)", kind)
		}
	}
	return c, nil
}

func parseKVs(s string) (map[string]string, error) {
	kv := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("bad key=value pair %q", pair)
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}

func parseJitter(kv map[string]string) (Jitter, error) {
	var j Jitter
	for k, v := range kv {
		switch k {
		case "max":
			d, err := ParseDuration(v)
			if err != nil {
				return Jitter{}, err
			}
			j.Max = d
		case "prob":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p <= 0 || p > 1 {
				return Jitter{}, fmt.Errorf("bad prob %q (want 0 < prob <= 1)", v)
			}
			j.Prob = p
		default:
			return Jitter{}, fmt.Errorf("unknown jitter key %q", k)
		}
	}
	if j.Max <= 0 {
		return Jitter{}, fmt.Errorf("jitter needs max=<dur> > 0")
	}
	if j.Prob == 0 {
		j.Prob = 1
	}
	return j, nil
}

func parseWindow(kv map[string]string) (Window, error) {
	w := Window{Node: AllNodes}
	sawNode := false
	for k, v := range kv {
		switch k {
		case "node":
			sawNode = true
			if v == "*" || v == "-1" {
				w.Node = AllNodes
				continue
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Window{}, fmt.Errorf("bad node %q", v)
			}
			w.Node = n
		case "start", "dur", "every":
			d, err := ParseDuration(v)
			if err != nil {
				return Window{}, err
			}
			switch k {
			case "start":
				w.Start = d
			case "dur":
				w.Dur = d
			case "every":
				w.Every = d
			}
		default:
			return Window{}, fmt.Errorf("unknown window key %q", k)
		}
	}
	if !sawNode {
		return Window{}, fmt.Errorf("window needs node=<id|*>")
	}
	if w.Dur <= 0 {
		return Window{}, fmt.Errorf("window needs dur=<dur> > 0")
	}
	if w.Every > 0 && w.Dur >= w.Every {
		return Window{}, fmt.Errorf("repeating window never closes: dur %v >= every %v", w.Dur, w.Every)
	}
	return w, nil
}

// ParseDuration reads a simulated duration with a ps/ns/us/ms suffix.
func ParseDuration(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		scale  sim.Time
	}{
		{"ms", sim.Millisecond}, {"us", sim.Microsecond}, {"ns", sim.Nanosecond}, {"ps", sim.Picosecond},
	}
	for _, u := range units {
		if v, ok := strings.CutSuffix(s, u.suffix); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				return 0, fmt.Errorf("bad duration %q", s)
			}
			return sim.Time(f * float64(u.scale)), nil
		}
	}
	return 0, fmt.Errorf("bad duration %q (want e.g. 300ns, 40us)", s)
}

// Stats counts faults actually injected, so tests and reports can confirm
// the schedule fired.
type Stats struct {
	Jittered      int64 // packets given extra delivery delay
	OutageDelays  int64 // link reservations pushed past an outage window
	StallRefusals int64 // endpoint deliveries refused during a stall window
}

// Injector is the live fault source attached to one simulated machine.
// The schedule-consuming path (PacketJitter) is not safe for concurrent
// use and only runs under the serial engine; the pure window lookups
// (LinkBlockedUntil, DrainStalledUntil) are read-only over the schedule
// and count injections atomically, so the tiled engine may call them
// from several tiles at once.
type Injector struct {
	cfg Config
	rng uint64

	jittered      atomic.Int64
	outageDelays  atomic.Int64
	stallRefusals atomic.Int64
}

// NewInjector builds an injector for cfg with the given schedule seed.
func NewInjector(cfg Config, seed uint64) *Injector {
	return &Injector{cfg: cfg, rng: splitmix64Init(seed)}
}

// Config returns the injector's fault configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns counts of faults injected so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Jittered:      in.jittered.Load(),
		OutageDelays:  in.outageDelays.Load(),
		StallRefusals: in.stallRefusals.Load(),
	}
}

// splitmix64: tiny, well-mixed, and stable across Go versions (unlike
// math/rand's unexported algorithms), which keeps fault schedules
// reproducible forever.
func splitmix64Init(seed uint64) uint64 { return seed + 0x9e3779b97f4a7c15 }

func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PacketJitter returns the extra delivery delay for the next packet
// (possibly zero). It consumes deterministic schedule state, so callers
// must invoke it exactly once per packet, in dispatch order.
func (in *Injector) PacketJitter() sim.Time {
	j := in.cfg.Jitter
	if j.Max <= 0 {
		return 0
	}
	r := in.next()
	if j.Prob < 1 && float64(r>>11)/(1<<53) >= j.Prob {
		return 0
	}
	d := sim.Time(in.next() % uint64(j.Max+1))
	if d > 0 {
		in.jittered.Add(1)
	}
	return d
}

// LinkBlockedUntil reports when a mesh link joining nodes a and b becomes
// usable, given a desired reservation at time t: the end of the covering
// outage window, or 0 if no outage applies.
func (in *Injector) LinkBlockedUntil(a, b int, t sim.Time) sim.Time {
	var until sim.Time
	for _, w := range in.cfg.Outages {
		if !w.matches(a) && !w.matches(b) {
			continue
		}
		if u := w.activeUntil(t); u > until {
			until = u
		}
	}
	if until > t {
		in.outageDelays.Add(1)
		return until
	}
	return 0
}

// DrainStalledUntil reports when node's endpoint resumes draining input,
// or 0 if it is not stalled at time t.
func (in *Injector) DrainStalledUntil(node int, t sim.Time) sim.Time {
	var until sim.Time
	for _, w := range in.cfg.Stalls {
		if !w.matches(node) {
			continue
		}
		if u := w.activeUntil(t); u > until {
			until = u
		}
	}
	if until > t {
		in.stallRefusals.Add(1)
		return until
	}
	return 0
}

// Schedule tabulates, for documentation and debugging, the first openings
// of every window (up to max entries), in time order.
func (c Config) Schedule(max int) []string {
	type opening struct {
		at   sim.Time
		desc string
	}
	var all []opening
	add := func(kind string, w Window) {
		all = append(all, opening{w.Start, fmt.Sprintf("%s node=%s [%v, %v)", kind, fmtNode(w.Node), w.Start, w.Start+w.Dur)})
	}
	for _, w := range c.Outages {
		add("outage", w)
	}
	for _, w := range c.Stalls {
		add("stall", w)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].at < all[j].at })
	if len(all) > max {
		all = all[:max]
	}
	out := make([]string, len(all))
	for i, o := range all {
		out[i] = o.desc
	}
	return out
}
