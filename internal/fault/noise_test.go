package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseNoiseRoundTrip(t *testing.T) {
	specs := []string{
		"hostnoise:node=*,dist=exp,mean=2us",
		"hostnoise:node=3,dist=heavytail,mean=1us,prob=0.25",
		"netnoise:node=*,dist=uniform,mean=100ns",
		"netnoise:node=1,dist=const,mean=50ns,prob=0.5",
		"delay:node=4,at=10us,dur=2us",
		"delay:node=0,dur=1us",
		"hostnoise:node=*,dist=exp,mean=500ns;netnoise:node=*,dist=heavytail,mean=20ns;delay:node=7,at=1ms,dur=40us",
	}
	for _, spec := range specs {
		c, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if !c.NoiseEnabled() || c.FaultsEnabled() {
			t.Errorf("Parse(%q): NoiseEnabled=%v FaultsEnabled=%v, want true/false",
				spec, c.NoiseEnabled(), c.FaultsEnabled())
		}
		c2, err := Parse(c.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", c.String(), err)
			continue
		}
		if !reflect.DeepEqual(c, c2) {
			t.Errorf("round trip changed config:\n  spec %q\n  got  %q", spec, c.String())
		}
	}
}

func TestParseNoiseErrors(t *testing.T) {
	bad := map[string]string{
		"hostnoise:mean=1us":                     "needs dist",
		"netnoise:dist=exp":                      "needs mean",
		"hostnoise:dist=gaussian,mean=1us":       "bad dist",
		"hostnoise:dist=exp,mean=0ps":            "needs mean",
		"netnoise:dist=exp,mean=1us,prob=0":      "bad prob",
		"netnoise:dist=exp,mean=1us,prob=nan":    "bad prob",
		"hostnoise:dist=exp,mean=1us,shape=9":    "unknown noise key",
		"delay:at=1us,dur=1us":                   "needs node",
		"delay:node=2,at=1us":                    "needs dur",
		"delay:node=2,dur=1us,every=1us":         "unknown delay key",
		"hostnoise:dist=exp,mean=999999999999ms": "bad duration",
	}
	for spec, wantSub := range bad {
		_, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", spec, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", spec, err, wantSub)
		}
	}
}

// TestConfigClasses pins the clause taxonomy the engine-selection and
// spec-validation logic rely on: jitter/outage/stall are faults,
// hostnoise/netnoise/delay are noise, and jitter + noise are the
// stochastic (serial-engine-only) clauses.
func TestConfigClasses(t *testing.T) {
	cases := []struct {
		spec                      string
		faults, noise, stochastic bool
	}{
		{"jitter:max=1us,prob=0.5", true, false, true},
		{"outage:node=*,dur=1us", true, false, false},
		{"stall:node=1,dur=1us", true, false, false},
		{"hostnoise:dist=exp,mean=1us", false, true, true},
		{"netnoise:dist=const,mean=1ns", false, true, true},
		{"delay:node=0,dur=1us", false, true, true},
	}
	for _, tc := range cases {
		c, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if c.FaultsEnabled() != tc.faults || c.NoiseEnabled() != tc.noise || c.Stochastic() != tc.stochastic {
			t.Errorf("%q: FaultsEnabled=%v NoiseEnabled=%v Stochastic=%v, want %v/%v/%v",
				tc.spec, c.FaultsEnabled(), c.NoiseEnabled(), c.Stochastic(),
				tc.faults, tc.noise, tc.stochastic)
		}
		if !c.Enabled() {
			t.Errorf("%q: Enabled() = false", tc.spec)
		}
	}
}

// TestComputeDilationDeterminism: one seed, one stream — and the streams
// are per node, so interleaving other nodes' draws must not perturb a
// node's own sequence.
func TestComputeDilationDeterminism(t *testing.T) {
	cfg, err := Parse("hostnoise:node=*,dist=exp,mean=1us")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64, interleave bool) []sim.Time {
		in := NewInjector(cfg, seed)
		out := make([]sim.Time, 100)
		for i := range out {
			if interleave {
				in.ComputeDilation(1, sim.Time(i)) // another node's stream
			}
			out[i] = in.ComputeDilation(0, sim.Time(i))
		}
		return out
	}
	plain := draw(7, false)
	if !reflect.DeepEqual(plain, draw(7, false)) {
		t.Error("same seed produced different host-noise streams")
	}
	if !reflect.DeepEqual(plain, draw(7, true)) {
		t.Error("node 1's draws perturbed node 0's stream; per-node streams are not independent")
	}
	if reflect.DeepEqual(plain, draw(8, false)) {
		t.Error("different seeds produced identical host-noise streams")
	}
}

func TestPacketDelayDeterminism(t *testing.T) {
	cfg, err := Parse("netnoise:node=*,dist=heavytail,mean=100ns")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64) []sim.Time {
		in := NewInjector(cfg, seed)
		out := make([]sim.Time, 200)
		for i := range out {
			out[i] = in.PacketDelay(i%16, (i+1)%16)
		}
		return out
	}
	if !reflect.DeepEqual(draw(3), draw(3)) {
		t.Error("same seed produced different net-noise streams")
	}
	if reflect.DeepEqual(draw(3), draw(4)) {
		t.Error("different seeds produced identical net-noise streams")
	}
}

// TestSampleDistMeans checks every distribution empirically: mean close
// to the configured mean, and support respected (uniform bounded by
// 2*mean, nothing negative). Seeds are fixed, so these are exact
// regression checks, not flaky statistical ones.
func TestSampleDistMeans(t *testing.T) {
	const mean = sim.Time(1000)
	const n = 50000
	for _, tc := range []struct {
		kind    DistKind
		tolPct  float64
		maxDraw sim.Time
	}{
		{DistConst, 0, mean},
		{DistUniform, 2, 2 * mean},
		{DistExp, 2, 0}, // unbounded
		{DistHeavyTail, 25, heavyTailCap * mean},
	} {
		rng := splitmix64Init(42)
		var sum int64
		for i := 0; i < n; i++ {
			d := sampleDist(&rng, tc.kind, mean)
			if d < 0 {
				t.Fatalf("%v: negative sample %v", tc.kind, d)
			}
			if tc.maxDraw > 0 && d > tc.maxDraw {
				t.Fatalf("%v: sample %v above support bound %v", tc.kind, d, tc.maxDraw)
			}
			sum += int64(d)
		}
		got := float64(sum) / n
		if dev := 100 * (got - float64(mean)) / float64(mean); dev < -tc.tolPct || dev > tc.tolPct {
			t.Errorf("%v: empirical mean %.1f deviates %.1f%% from %d (tolerance %.0f%%)",
				tc.kind, got, dev, mean, tc.tolPct)
		}
	}
}

// TestDelayFiresOnce: a one-shot injected delay latches after its first
// firing on the matching node and never fires again.
func TestDelayFiresOnce(t *testing.T) {
	cfg, err := Parse("delay:node=2,at=1us,dur=5us")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(cfg, 1)
	if got := in.ComputeDilation(2, 500*sim.Nanosecond); got != 0 {
		t.Errorf("delay fired before its time: %v", got)
	}
	if got := in.ComputeDilation(0, 2*sim.Microsecond); got != 0 {
		t.Errorf("delay fired on the wrong node: %v", got)
	}
	if got := in.ComputeDilation(2, 2*sim.Microsecond); got != 5*sim.Microsecond {
		t.Errorf("delay = %v, want 5us", got)
	}
	if got := in.ComputeDilation(2, 3*sim.Microsecond); got != 0 {
		t.Errorf("one-shot delay fired twice: %v", got)
	}
	st := in.Stats()
	if st.DelaysFired != 1 || st.DelayPs != int64(5*sim.Microsecond) {
		t.Errorf("Stats = fired %d / %d ps, want 1 / %d", st.DelaysFired, st.DelayPs, 5*sim.Microsecond)
	}
}

// TestNoiseProbGate: prob thins host noise to roughly its configured
// rate, and the stats counters account every injected picosecond.
func TestNoiseProbGate(t *testing.T) {
	cfg, err := Parse("hostnoise:node=*,dist=const,mean=1us,prob=0.1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(cfg, 1)
	fired := 0
	for i := 0; i < 1000; i++ {
		if in.ComputeDilation(0, sim.Time(i)) > 0 {
			fired++
		}
	}
	if fired == 0 || fired > 300 {
		t.Errorf("prob=0.1 const noise fired %d/1000 times", fired)
	}
	st := in.Stats()
	if st.HostNoiseSamples != int64(fired) {
		t.Errorf("Stats.HostNoiseSamples = %d, want %d", st.HostNoiseSamples, fired)
	}
	if st.HostNoisePs != int64(fired)*int64(sim.Microsecond) {
		t.Errorf("Stats.HostNoisePs = %d, want %d", st.HostNoisePs, int64(fired)*int64(sim.Microsecond))
	}
	if st.Samples() != int64(fired) || st.InjectedPs() != st.HostNoisePs {
		t.Errorf("aggregate Samples/InjectedPs = %d/%d, want %d/%d",
			st.Samples(), st.InjectedPs(), fired, st.HostNoisePs)
	}
}

// TestNoiseNodeFilter: a node-scoped netnoise clause touches only
// packets with that node as an endpoint.
func TestNoiseNodeFilter(t *testing.T) {
	cfg, err := Parse("netnoise:node=3,dist=const,mean=10ns")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(cfg, 1)
	if got := in.PacketDelay(0, 1); got != 0 {
		t.Errorf("unrelated packet delayed %v", got)
	}
	if got := in.PacketDelay(3, 1); got != 10*sim.Nanosecond {
		t.Errorf("src-matching packet delayed %v, want 10ns", got)
	}
	if got := in.PacketDelay(0, 3); got != 10*sim.Nanosecond {
		t.Errorf("dst-matching packet delayed %v, want 10ns", got)
	}
}

// TestScheduleIncludesDelays: one-shot delays appear in the
// human-readable schedule preview alongside windows.
func TestScheduleIncludesDelays(t *testing.T) {
	cfg, err := Parse("delay:node=4,at=2us,dur=1us;outage:node=1,start=5us,dur=1us")
	if err != nil {
		t.Fatal(err)
	}
	sched := cfg.Schedule(4)
	if len(sched) != 2 {
		t.Fatalf("Schedule(4) returned %d entries: %v", len(sched), sched)
	}
	if !strings.Contains(sched[0], "delay node=4") {
		t.Errorf("delay missing or out of order in schedule: %v", sched)
	}
}
