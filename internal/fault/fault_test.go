package fault

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"jitter:max=200ns,prob=0.1",
		"outage:node=*,start=10us,dur=2us,every=50us",
		"stall:node=3,start=1us,dur=500ns",
		"jitter:max=1us,prob=0.5;outage:node=0,start=0ps,dur=1ns;stall:node=*,start=2ms,dur=1us,every=2ms",
	}
	for _, spec := range specs {
		c, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		if !c.Enabled() {
			t.Errorf("Parse(%q): config reports disabled", spec)
		}
		// String must render the canonical form, and re-parsing it must
		// yield the identical config (spec strings are memo-cache keys).
		c2, err := Parse(c.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", c.String(), err)
			continue
		}
		if !reflect.DeepEqual(c, c2) {
			t.Errorf("round trip changed config:\n  spec %q\n  got  %q", spec, c.String())
		}
	}
}

func TestParseWhitespaceAndDefaults(t *testing.T) {
	c, err := Parse(" jitter:max=100ns ; outage:node=5,dur=1us ")
	if err != nil {
		t.Fatal(err)
	}
	if c.Jitter.Prob != 1 {
		t.Errorf("jitter prob default = %v, want 1", c.Jitter.Prob)
	}
	if len(c.Outages) != 1 || c.Outages[0].Node != 5 || c.Outages[0].Start != 0 {
		t.Errorf("outage = %+v", c.Outages)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"jitter":                               "want kind:key=val",
		"jitter:prob=0.5":                      "needs max",
		"jitter:max=100ns,prob=2":              "bad prob",
		"jitter:max=100ns;jitter:max=1us":      "duplicate jitter",
		"outage:start=0ns,dur=1us":             "needs node",
		"outage:node=x,dur=1us":                "bad node",
		"outage:node=1":                        "needs dur",
		"outage:node=1,dur=2us,every=1us":      "never closes",
		"outage:node=1,dur=1us,dur=2us":        "duplicate key",
		"stall:node=1,dur=10crowns":            "bad duration",
		"teleport:node=1,dur=1us":              "unknown clause kind",
		"outage:node=1,dur=1us,flavor=vanilla": "unknown window key",
	}
	for spec, wantSub := range bad {
		_, err := Parse(spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", spec, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", spec, err, wantSub)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := map[string]sim.Time{
		"0ps":   0,
		"300ns": 300 * sim.Nanosecond,
		"40us":  40 * sim.Microsecond,
		"2ms":   2 * sim.Millisecond,
		"1.5us": 1500 * sim.Nanosecond,
		"250ps": 250,
	}
	for s, want := range cases {
		got, err := ParseDuration(s)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "5", "5s", "-1ns"} {
		if _, err := ParseDuration(s); err == nil {
			t.Errorf("ParseDuration(%q) succeeded, want error", s)
		}
	}
}

func TestWindowActiveUntil(t *testing.T) {
	oneShot := Window{Node: 0, Start: 100, Dur: 50}
	for _, tc := range []struct {
		t    sim.Time
		want sim.Time
	}{
		{0, 0}, {99, 0}, {100, 150}, {149, 150}, {150, 0}, {1000, 0},
	} {
		if got := oneShot.activeUntil(tc.t); got != tc.want {
			t.Errorf("one-shot activeUntil(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
	repeating := Window{Node: 0, Start: 100, Dur: 50, Every: 200}
	for _, tc := range []struct {
		t    sim.Time
		want sim.Time
	}{
		{99, 0}, {100, 150}, {149, 150}, {150, 0}, {299, 0},
		{300, 350}, {320, 350}, {350, 0}, {500, 550},
	} {
		if got := repeating.activeUntil(tc.t); got != tc.want {
			t.Errorf("repeating activeUntil(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg, err := Parse("jitter:max=300ns,prob=0.4")
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed uint64) []sim.Time {
		in := NewInjector(cfg, seed)
		out := make([]sim.Time, 200)
		for i := range out {
			out[i] = in.PacketJitter()
		}
		return out
	}
	if !reflect.DeepEqual(draw(7), draw(7)) {
		t.Error("same seed produced different jitter schedules")
	}
	if reflect.DeepEqual(draw(7), draw(8)) {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestPacketJitterBoundsAndStats(t *testing.T) {
	cfg, _ := Parse("jitter:max=100ns,prob=1")
	in := NewInjector(cfg, 1)
	nonzero := 0
	for i := 0; i < 1000; i++ {
		d := in.PacketJitter()
		if d < 0 || d > 100*sim.Nanosecond {
			t.Fatalf("jitter %v out of [0, 100ns]", d)
		}
		if d > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("prob=1 jitter never fired")
	}
	if got := in.Stats().Jittered; got != int64(nonzero) {
		t.Errorf("Stats.Jittered = %d, want %d", got, nonzero)
	}

	// prob=0.1 must jitter roughly a tenth of packets, not all of them.
	cfg, _ = Parse("jitter:max=100ns,prob=0.1")
	in = NewInjector(cfg, 1)
	fired := 0
	for i := 0; i < 1000; i++ {
		if in.PacketJitter() > 0 {
			fired++
		}
	}
	if fired == 0 || fired > 300 {
		t.Errorf("prob=0.1 fired %d/1000 times", fired)
	}
}

func TestLinkBlockedUntil(t *testing.T) {
	cfg, err := Parse("outage:node=3,start=1us,dur=2us")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(cfg, 1)
	if got := in.LinkBlockedUntil(0, 1, 2*sim.Microsecond); got != 0 {
		t.Errorf("unrelated link blocked until %v", got)
	}
	if got := in.LinkBlockedUntil(3, 4, 500*sim.Nanosecond); got != 0 {
		t.Errorf("link blocked before window opens: %v", got)
	}
	want := 3 * sim.Microsecond
	if got := in.LinkBlockedUntil(3, 4, 2*sim.Microsecond); got != want {
		t.Errorf("blocked until %v, want %v (node as link endpoint a)", got, want)
	}
	if got := in.LinkBlockedUntil(2, 3, 2*sim.Microsecond); got != want {
		t.Errorf("blocked until %v, want %v (node as link endpoint b)", got, want)
	}
	if got := in.Stats().OutageDelays; got != 2 {
		t.Errorf("Stats.OutageDelays = %d, want 2", got)
	}
}

func TestDrainStalledUntilAllNodes(t *testing.T) {
	cfg, err := Parse("stall:node=*,start=0ps,dur=1us,every=10us")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(cfg, 1)
	if got := in.DrainStalledUntil(7, 500*sim.Nanosecond); got != sim.Microsecond {
		t.Errorf("stalled until %v, want 1us", got)
	}
	if got := in.DrainStalledUntil(7, 5*sim.Microsecond); got != 0 {
		t.Errorf("stalled outside window: %v", got)
	}
	if got := in.DrainStalledUntil(7, 10*sim.Microsecond); got != 11*sim.Microsecond {
		t.Errorf("second opening: stalled until %v, want 11us", got)
	}
}

func TestZeroConfig(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Error("zero config reports enabled")
	}
	if c.String() != "" {
		t.Errorf("zero config String = %q, want empty", c.String())
	}
	in := NewInjector(c, 1)
	if in.PacketJitter() != 0 || in.LinkBlockedUntil(0, 1, 100) != 0 || in.DrainStalledUntil(0, 100) != 0 {
		t.Error("zero config injected a fault")
	}
}

func TestSchedule(t *testing.T) {
	cfg, err := Parse("outage:node=1,start=5us,dur=1us;stall:node=2,start=1us,dur=1us;outage:node=3,start=9us,dur=1us")
	if err != nil {
		t.Fatal(err)
	}
	sched := cfg.Schedule(2)
	if len(sched) != 2 {
		t.Fatalf("Schedule(2) returned %d entries: %v", len(sched), sched)
	}
	if !strings.Contains(sched[0], "stall node=2") || !strings.Contains(sched[1], "outage node=1") {
		t.Errorf("schedule not time-ordered: %v", sched)
	}
}
