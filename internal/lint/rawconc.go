package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawConcCheck forbids host concurrency primitives in simulated-
// application code: `go` statements, channel types and operations,
// select, and the sync / sync-atomic packages. Application code runs on
// sim.Thread cooperative threads scheduled by the event engine; all
// synchronization must go through psync (barriers, locks) or the
// machine's messaging surface so that host goroutine scheduling can
// never leak into simulated results. A raw goroutine in an app would
// race the deterministic engine and break run-to-run reproducibility.
var RawConcCheck = &Check{
	Name:  "rawconc",
	Doc:   "forbid go statements, channels, select, and sync primitives in simulated-application code (use sim.Thread/psync)",
	Scope: "app packages (direct use; callpath covers transitive ones)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, appScopes)
	},
	Run: runRawConc,
}

func runRawConc(p *Pass) {
	const remedy = "; simulated-application code must use sim.Thread/psync so host scheduling cannot leak into results"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement spawns a host goroutine"+remedy)
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select waits on host channels"+remedy)
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "channel send"+remedy)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "channel receive"+remedy)
				}
			case *ast.ChanType:
				p.Reportf(n.Pos(), "channel type"+remedy)
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						p.Reportf(n.Pos(), "range over a channel"+remedy)
					}
				}
			case *ast.SelectorExpr:
				if isPkgSelector(p, n, "sync") || isPkgSelector(p, n, "sync/atomic") {
					p.Reportf(n.Pos(), "sync primitive %s.%s"+remedy, pkgName(p, n), n.Sel.Name)
					return true
				}
				// Method calls on sync/atomic-typed values (mu.Lock,
				// counter.Add) don't name the package at the call site, so
				// catch them through the receiver's declared type — else a
				// primitive obtained indirectly slips through.
				if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					if named := namedRecv(sel.Recv()); named != nil {
						if pkg := named.Obj().Pkg(); pkg != nil &&
							(pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
							p.Reportf(n.Pos(), "sync primitive method %s.%s"+remedy, named.Obj().Name(), n.Sel.Name)
						}
					}
				}
			}
			return true
		})
	}
}

// pkgName returns the selector's package qualifier text.
func pkgName(p *Pass, sel *ast.SelectorExpr) string {
	if id := firstIdent(sel.X); id != nil {
		return id.Name
	}
	return "sync"
}

// namedRecv unwraps a method receiver type to its named type, looking
// through a pointer.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
