package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IntMathCheck forbids floating-point arithmetic in the simulation's
// machine-model packages. Every quantity that influences event order —
// cycles, bytes, seeds, noise draws — is integer by convention (PR 7's
// samplers draw uniform/exp/heavytail jitter in fixed point precisely so
// two hosts produce bit-identical schedules); a stray float division in
// a latency computation reintroduces platform- and optimization-level
// dependence. Reporting-only float math (MHz labels, utilization
// percentages) is fenced with //lint:allow simlint/intmath and a reason.
//
// Constant-folded expressions (untyped or typed constants) are exempt:
// the compiler evaluates them identically everywhere.
var IntMathCheck = &Check{
	Name:  "intmath",
	Doc:   "forbid floating-point arithmetic in machine-model packages; cycle math must be integer or fixed-point",
	Scope: "machine-model packages (sim, machine, mesh, mem, am, fault)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, intScopes)
	},
	Run: runIntMath,
}

// intScopes are the packages whose arithmetic feeds event times and
// results. The app/workload layer and obs are excluded: apps compute on
// simulated data (moldyn's forces are float by nature), and obs only
// aggregates; neither feeds the event clock.
var intScopes = []string{
	"internal/sim",
	"internal/machine",
	"internal/mesh",
	"internal/mem",
	"internal/am",
	"internal/fault",
}

func runIntMath(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
				default:
					return true
				}
				tv, ok := p.Info.Types[ast.Expr(n)]
				if !ok || tv.Value != nil { // constant-folded: identical everywhere
					return true
				}
				if isFloat(tv.Type) {
					p.Reportf(n.OpPos, "floating-point %s on %s; cycle math must be integer or fixed-point (see internal/fault's samplers)", n.Op, tv.Type)
				}
			case *ast.AssignStmt:
				var op token.Token
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					op = n.Tok
				default:
					return true
				}
				for _, lhs := range n.Lhs {
					if tv, ok := p.Info.Types[lhs]; ok && isFloat(tv.Type) {
						p.Reportf(n.TokPos, "floating-point %s on %s; cycle math must be integer or fixed-point (see internal/fault's samplers)", op, tv.Type)
					}
				}
			case *ast.IncDecStmt:
				if tv, ok := p.Info.Types[n.X]; ok && isFloat(tv.Type) {
					p.Reportf(n.TokPos, "floating-point %s on %s; cycle math must be integer or fixed-point (see internal/fault's samplers)", n.Tok, tv.Type)
				}
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
