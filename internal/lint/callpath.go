package lint

// CallPathCheck escalates the wallclock, unseededrand, and rawconc
// conventions from direct-call detection to transitive reachability over
// the module call graph. The syntactic checks see `time.Now()` written
// inside a sim package; this one sees a sim-facing function that reaches
// `time.Now` through a host-side helper two packages away, and reports
// the full call chain.
//
// Blame lands on the boundary: the in-scope function whose next hop
// leaves the scope. Callers further up are not re-reported — fixing the
// boundary fixes them — and direct calls (chain length 1 to a forbidden
// stdlib function) are left to the syntactic checks that own them.
var CallPathCheck = &Check{
	Name:  "callpath",
	Doc:   "forbid transitively reaching wall-clock, global rand, or host concurrency from sim-facing code (reports the call chain)",
	Scope: "sim packages (rawconc half: app packages)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, simScopes)
	},
	RunModule: runCallPath,
}

func runCallPath(p *ModulePass) {
	g := p.Graph

	// nodeScope reports whether a node's declaring package is in scope;
	// literals take their lexical package.
	nodeIn := func(n *CGNode, scopes []string) bool {
		return n.Pkg != nil && inScope(n.Pkg.Path, scopes)
	}

	// report walks the in-scope nodes and flags boundary crossings:
	// node N reaches a target and its next hop is not an in-scope node
	// that also reaches (which would be blamed instead).
	report := func(reach map[*CGNode]*ReachStep, scopes []string, direct bool, what string) {
		for _, n := range g.Nodes() {
			step := reach[n]
			if step == nil || step.Next == nil || !nodeIn(n, scopes) {
				continue
			}
			if !direct && step.Dist == 1 && step.Next.External() {
				continue // a direct forbidden call; the syntactic check owns it
			}
			if nodeIn(step.Next, scopes) && reach[step.Next] != nil && reach[step.Next].Next != nil {
				continue // blame the callee, the deeper boundary
			}
			p.Reportf(step.Pos, "%s reaches %s (%s): %s", n.Name(), what, Chain(n, reach), remedyFor(what))
		}
	}

	// Wall clock: the forbidden time entry points, reached from sim scope.
	wallReach := g.Reach(func(n *CGNode) bool {
		return n.External() && n.Obj.Pkg() != nil && n.Obj.Pkg().Path() == "time" &&
			wallclockForbidden[n.Obj.Name()] != ""
	}, nil)
	report(wallReach, simScopes, false, "the host clock")

	// Global rand: math/rand package-level draws, reached from sim scope.
	randReach := g.Reach(func(n *CGNode) bool {
		if !n.External() || n.Obj.Pkg() == nil {
			return false
		}
		path := n.Obj.Pkg().Path()
		return (path == "math/rand" || path == "math/rand/v2") && randGlobals[n.Obj.Name()]
	}, nil)
	report(randReach, simScopes, false, "the global rand generator")

	// Raw concurrency: module functions outside every sim scope that use
	// host concurrency, reached from app scope. The engine-owned packages
	// (sim, mem, mesh, ...) are sanctioned concurrency and act as
	// barriers: an app reaching sim.Group's workers through the scheduler
	// API is the design, not a leak.
	sanctioned := func(n *CGNode) bool {
		return nodeIn(n, simScopes) && !nodeIn(n, appScopes)
	}
	concReach := g.Reach(func(n *CGNode) bool {
		return n.Pkg != nil && !inScope(n.Pkg.Path, simScopes) && len(n.Conc) > 0
	}, sanctioned)
	report(concReach, appScopes, true, "host concurrency")
}

func remedyFor(what string) string {
	switch what {
	case "the host clock":
		return "simulator-facing code may only observe simulated cycles (sim.Engine.Now)"
	case "the global rand generator":
		return "randomness must flow from a RunConfig seed (rand.New(rand.NewSource(seed)))"
	default:
		return "simulated-application code must use sim.Thread/psync so host scheduling cannot leak into results"
	}
}
