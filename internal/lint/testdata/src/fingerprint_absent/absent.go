package fixture //want fingerprint

// This fixture is loaded under an .../internal/core import path, where
// the memo-key fingerprint function is mandatory.

type Config struct {
	Name string
}
