// Package fixture mirrors the sharded engine's barrier idiom: worker
// goroutines, epoch atomics, and buffered park channels. Inside
// internal/sim this is the one sanctioned concurrency surface (the
// engine group owns host scheduling); the identical code in a simulated
// application would let host interleave leak into results, so rawconc
// must fire there and stay silent in sim.
package fixture

import "sync/atomic"

type windowBarrier struct {
	epoch     atomic.Uint64   //want rawconc
	remaining atomic.Int64    //want rawconc
	wake      []chan struct{} //want rawconc
}

func (b *windowBarrier) open(workers int) {
	b.remaining.Store(int64(workers)) //want rawconc
	b.epoch.Add(1)                    //want rawconc
	for w := 0; w < workers; w++ {
		w := w
		go func() { //want rawconc
			b.runShare(w)
			if b.remaining.Add(-1) == 0 { //want rawconc
				b.wake[workers] <- struct{}{} //want rawconc
			}
		}()
	}
	select { //want rawconc
	case <-b.wake[workers]: //want rawconc
	}
}

func (b *windowBarrier) runShare(w int) {}

// mergeOrder is the pure part of the barrier — sorting mailbox events by
// (at, seq, src) involves no host concurrency and is fine anywhere.
func mergeOrder(at, seq []uint64) bool {
	for i := 1; i < len(at); i++ {
		if at[i] < at[i-1] || (at[i] == at[i-1] && seq[i] < seq[i-1]) {
			return false
		}
	}
	return true
}
