package fixture

// The fixture mirrors mem.System's per-node layout and the three
// witness-transfer idioms the real tree uses: tiletransfer call sites,
// direct scheduling on a tileengine result, and the CrossAt mailbox.

// Engine mimics sim.Engine's scheduling surface.
type Engine struct{ now int64 }

func (e *Engine) After(d int64, f func()) { f() }

// CrossAt is the sanctioned mailbox: the closure is deferred into the
// target tile's own window.
func (e *Engine) CrossAt(node int, f func()) { f() }

type nodeState struct{ v int }

// Sys mirrors mem.System: element i of nodes belongs to node i's tile.
type Sys struct {
	//lint:tileowned
	nodes []*nodeState
	engs  []*Engine
}

// engAt returns node's tile engine.
//
//lint:tileengine node
func (s *Sys) engAt(node int) *Engine { return s.engs[node] }

// send ships fn to dst's tile.
//
//lint:tilelocal src
//lint:tiletransfer fn@dst
func (s *Sys) send(src, dst int, fn func()) { s.engAt(dst).After(0, fn) }

// touchOwn indexes with its witness: the owning tile touching its own
// element is the whole point.
//
//lint:tilelocal node
func (s *Sys) touchOwn(node int) { s.nodes[node].v++ }

// touchOther indexes another tile's element from this tile's context.
//
//lint:tilelocal node
func (s *Sys) touchOther(node, other int) {
	s.nodes[other].v++ //want shardsafe
}

// writeback is the PR 6 pattern: the closure shipped to home's tile may
// only touch home's element. The second send is the bug that check
// exists to catch — the home-side handler reading the evictor's state.
//
//lint:tilelocal node
func (s *Sys) writeback(node int) {
	home := (node + 1) % len(s.nodes)
	s.send(node, home, func() {
		s.nodes[home].v++
	})
	s.send(node, home, func() {
		s.nodes[node].v++ //want shardsafe
	})
}

// schedule binds closures to the engine's node: the first is fine, the
// second schedules on another tile's engine but touches this node.
//
//lint:tilelocal node
func (s *Sys) schedule(node, other int) {
	s.engAt(node).After(1, func() { s.nodes[node].v++ })
	s.engAt(other).After(1, func() {
		s.nodes[node].v++ //want shardsafe
	})
}

// deferred uses the mailbox: CrossAt closures are sanctioned cross-tile
// access, because the engine runs them in the owner's window.
//
//lint:tilelocal node
func (s *Sys) deferred(node, other int) {
	s.engAt(node).CrossAt(other, func() { s.nodes[other].v++ })
}

// unnamedDst ships a closure to a computed node: the owner cannot be
// checked against a witness variable, which is itself the finding.
//
//lint:tilelocal node
func (s *Sys) unnamedDst(node int) {
	s.send(node, node+1, func() {
		s.nodes[node].v++ //want shardsafe
	})
}

// geometry: len/cap of tileowned state is immutable layout, not state.
//
//lint:tilelocal node
func (s *Sys) geometry(node int) int { return len(s.nodes) }

// rangeAll walks every tile's element from one tile's context.
//
//lint:tilelocal node
func (s *Sys) rangeAll(node int) int {
	total := 0
	for _, nm := range s.nodes { //want shardsafe
		total += nm.v
	}
	return total
}

func use(ns []*nodeState) {}

// leak hands the whole owned slice out of a tile context.
//
//lint:tilelocal node
func (s *Sys) leak(node int) { use(s.nodes) } //want shardsafe

// helper has no witness of its own but is reachable from a tile context
// (caller below), so its unwitnessed index fires.
func (s *Sys) helper(i int) { s.nodes[i].v++ } //want shardsafe

//lint:tilelocal node
func (s *Sys) caller(node int) { s.helper(node) }

// hostOnly is never called from a tile context: setup and teardown stay
// free to touch everything.
func (s *Sys) hostOnly() {
	for i := range s.nodes {
		s.nodes[i] = &nodeState{}
	}
}

//lint:tilelocal nosuch //want shardsafe
func (s *Sys) malformed() {}
