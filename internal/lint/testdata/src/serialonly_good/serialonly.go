package fixture

// Config mirrors machine.Config's shape: fields the tiling gate
// consults (directly or through a callee) plus one declared safe in the
// manifest. Everything is classified exactly once, so the check is
// silent.
type Config struct {
	Width    int
	Height   int
	SpanCap  int
	ClockMHz int
}

var tilingSafe = map[string]string{
	"ClockMHz": "scales the cycle conversion identically on every tile",
}

// nodes is consulted only transitively: Width and Height count because
// tilingOK reaches this method through the call graph.
func (c Config) nodes() int { return c.Width * c.Height }

func (c Config) tilingOK() bool {
	if c.nodes() < 2 {
		return false
	}
	return c.SpanCap == 0
}
