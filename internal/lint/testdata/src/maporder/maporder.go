package fixture

import (
	"fmt"
	"sort"
)

type engine struct{}

func (engine) Send(k int)     {}
func (engine) Schedule(k int) {}

func hazards(m map[int]float64, e engine) []int {
	var keys []int
	var total float64
	for k, v := range m {
		keys = append(keys, k) //want maporder
		total += v //want maporder
		e.Send(k) //want maporder
		fmt.Println(k) //want maporder
	}
	_ = total
	return keys
}

func safeCollect(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func filteredCollect(m map[int]float64) []int32 {
	var keys []int32
	for k, v := range m {
		if v > 0 {
			keys = append(keys, int32(k))
		}
	}
	sortI32(keys)
	return keys
}

func sortI32(s []int32) {
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
}

func orderInsensitive(m map[int]int) int {
	n := 0
	counts := make(map[int]int, len(m))
	for k, v := range m {
		counts[k] = v // disjoint per-key writes are fine
		n += v        // integer accumulation is exact, order-free
	}
	return n + len(counts)
}

func nestedSafeCollect(outer map[string]map[int]bool) map[string][]int {
	names := make([]string, 0, len(outer))
	for name := range outer {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string][]int, len(outer))
	for _, name := range names {
		keys := make([]int, 0, len(outer[name]))
		for k := range outer[name] {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		out[name] = keys
	}
	return out
}

func suppressed(m map[int]float64) []string {
	var out []string
	for k := range m {
		//lint:allow simlint/maporder caller sorts the result before use
		out = append(out, fmt.Sprint(k))
	}
	return out
}
