package fixture

type Config struct {
	Name    string
	Workers int
	Seed    int64
}

// fingerprint rebuilds the key field-by-field and forgets Seed: two
// runs differing only in seed would alias one cache entry.
func fingerprint(c Config) Config {
	return Config{ //want fingerprint
		Name:    c.Name,
		Workers: c.Workers,
	}
}
