package fixture

import "time"

const tick = 5 * time.Millisecond // naming time types is fine; observing the clock is not

func bad() time.Duration {
	t0 := time.Now() //want wallclock
	time.Sleep(tick) //want wallclock
	d := time.Since(t0) //want wallclock
	_ = time.After(tick) //want wallclock
	return d
}

func suppressed() {
	//lint:allow simlint/wallclock host-facing progress reporting only, never observed by simulated state
	_ = time.Now()
}
