package fixture

import "math/rand"

func bad() {
	_ = rand.Intn(4) //want unseededrand
	_ = rand.Float64() //want unseededrand
	rand.Shuffle(4, func(i, j int) {}) //want unseededrand
	r := rand.New(hiddenSource()) //want unseededrand
	_ = r
}

func hiddenSource() rand.Source { return rand.NewSource(1) }

func good(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func suppressed() int {
	//lint:allow simlint/unseededrand draws host-side jitter for the CLI spinner, not simulated state
	return rand.Int()
}
