package fixture

import (
	"sync"
	"sync/atomic"
)

var mu sync.Mutex //want rawconc

var counter int64

func bad(ch chan int) { //want rawconc
	go func() {}() //want rawconc
	ch <- 1 //want rawconc
	<-ch //want rawconc
	atomic.AddInt64(&counter, 1) //want rawconc
	for range ch { //want rawconc
	}
	select { //want rawconc
	default:
	}
}

func pureCompute(xs []float64) float64 {
	acc := 0.0
	for _, x := range xs {
		acc += x
	}
	return acc
}
