package fixture

type Nested struct {
	Rate float64
	Size int
}

type Config struct {
	Name    string
	Workers int
	Tuning  Nested
	Seed    int64
}

// fingerprint normalizes and returns its parameter: every field is
// covered by construction, and all fields are pure values.
func fingerprint(c Config) Config {
	if c.Tuning.Rate == 0 {
		c.Tuning = Nested{}
	}
	return c
}
