package fixture

type Inner struct {
	Labels []string
}

type Config struct {
	Name  string
	Trace *int
	Inner Inner
}

// Fingerprint returns its parameter, but two fields have reference
// semantics: key equality would compare identity, not content.
func Fingerprint(c Config) Config { //want fingerprint fingerprint
	return c
}
