package appfix

import (
	"repro/internal/hostfix"
	simfix "repro/internal/sim/fixture"
)

// Fork reaches a host goroutine spawn outside the engine: application
// code must not do this, even at one remove.
func Fork() {
	hostfix.Spawn(func() {}) //want callpath
}

// Parallel goes through the engine's sanctioned spawn: the sim scope is
// a barrier and nothing fires.
func Parallel() {
	simfix.Go(func() {})
}
