package fixture

// Non-constant float arithmetic in a machine-model package is flagged at
// the operator.
func bad(x, y float64) float64 {
	s := x + y //want intmath
	s -= y     //want intmath
	s *= 2     //want intmath
	s /= 3     //want intmath
	return s
}

func incdec(x float64) float64 {
	x++ //want intmath
	x-- //want intmath
	return x
}

// Integer cycle math is the sanctioned idiom.
func cycles(a, b int64) int64 { return a*b + a/2 - 1 }

// Constant-folded expressions carry no runtime float op; the compiler
// evaluates them identically everywhere.
const scale = 2.0 * 1.5

func usesScale(n int64) int64 { return n * int64(scale*10) }

// A documented escape hatch fences reporting-only float math.
func seeded(u uint64) float64 {
	//lint:allow simlint/intmath 53-bit mantissa over a power of two is exact on every IEEE-754 host
	return float64(u&((1<<53)-1)) / (1 << 53)
}
