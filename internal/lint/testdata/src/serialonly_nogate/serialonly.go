package fixture

// A Config with no tilingOK method at all: the tiled engine cannot be
// gated, which is its own finding.
type Config struct { //want serialonly
	Width int
}
