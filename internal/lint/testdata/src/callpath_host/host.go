package hostfix

// Package hostfix stands in for a helper package outside every sim
// scope. Sim-facing code reaching these through the call graph is
// exactly what callpath escalates beyond the syntactic checks.

import (
	"math/rand"
	"time"
)

// NowMillis reads the host clock.
func NowMillis() int64 { return time.Now().UnixMilli() }

// Pick draws from the global generator.
func Pick() float64 { return rand.Float64() }

// Spawn runs f on a raw goroutine.
func Spawn(f func()) { go f() }
