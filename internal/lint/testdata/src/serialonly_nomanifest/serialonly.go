package fixture

// A machine package with a gate but no tilingSafe manifest: the check
// demands the manifest exist so future fields have somewhere to go.
type Config struct { //want serialonly
	Width int
}

func (c Config) tilingOK() bool { return c.Width > 0 }
