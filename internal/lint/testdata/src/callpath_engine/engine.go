package simfix

import "repro/internal/hostfix"

// Go is the engine's sanctioned worker spawn. The sim scope is a
// barrier for the concurrency half of callpath: applications reaching
// host concurrency through the engine API is the design, not a leak.
func Go(f func()) { hostfix.Spawn(f) }
