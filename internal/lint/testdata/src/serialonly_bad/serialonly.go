package fixture

// Every way a Config field can be misclassified, in one fixture: a
// field with neither guard nor manifest entry, a manifest entry
// shadowing a live guard, an entry naming no field, and an entry with
// no reason.
type Config struct {
	Width    int
	SpanCap  int
	Orphan   int //want serialonly
	Quiet    int
	ClockMHz int
}

var tilingSafe = map[string]string{
	"ClockMHz": "scales identically on every tile",
	"SpanCap":  "already guarded by tilingOK", //want serialonly
	"Ghost":    "names no Config field",       //want serialonly
	"Quiet":    "",                            //want serialonly
}

func (c Config) tilingOK() bool {
	return c.Width > 0 && c.SpanCap == 0
}
