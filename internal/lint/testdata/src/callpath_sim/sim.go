package machfix

import (
	"time"

	"repro/internal/hostfix"
)

// Stamp reaches the host clock through a helper: the boundary function
// is blamed, with the full chain in the message.
func Stamp() int64 {
	return hostfix.NowMillis() //want callpath
}

// Direct calls are the syntactic wallclock check's territory; callpath
// stays quiet to avoid double-reporting.
func Direct() time.Time { return time.Now() }

// Outer reaches the clock only through Stamp; blame lands on the deeper
// boundary, not here.
func Outer() int64 { return Stamp() }

// Jitter reaches the global rand generator transitively.
func Jitter() float64 {
	return hostfix.Pick() //want callpath
}

// Pure touches neither clock nor randomness.
func Pure(a, b int64) int64 { return a + b }
