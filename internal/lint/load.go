package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path, e.g. repro/internal/sim
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	imports []string // intra-module imports, for load ordering
}

// Load parses and type-checks the packages matched by patterns, rooted
// at the module directory root. Patterns are "./..." (every package
// under root), or "./dir" / "dir" for a single package directory.
// Test files are excluded unless includeTests is set; testdata, vendor,
// and hidden directories are always skipped.
//
// Loading is stdlib-only: module-internal imports resolve against the
// packages being loaded (so patterns that include a package's
// dependencies type-check them once), and everything else — the
// standard library — is type-checked from source via go/importer.
func Load(root string, patterns []string, includeTests bool) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package, len(dirs))
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := parseDir(fset, root, modPath, dir, includeTests)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		pkgs = append(pkgs, pkg)
		byPath[pkg.Path] = pkg
	}

	ordered, err := loadOrder(pkgs, byPath)
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package, len(ordered))
	imp := &moduleImporter{
		source:  importer.ForCompiler(fset, "source", nil),
		checked: checked,
	}
	for _, pkg := range ordered {
		if err := typeCheck(fset, pkg, imp); err != nil {
			return nil, err
		}
		checked[pkg.Path] = pkg.Pkg
	}
	return ordered, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// expandPatterns resolves the command-line patterns to package dirs.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		dir := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses one package directory; returns nil if it holds no
// buildable Go files.
func parseDir(fset *token.FileSet, root, modPath, dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	imports := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				imports[path] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	// External test packages (package foo_test) cannot be type-checked
	// together with package foo; keep only the primary package's files.
	primary := files[0].Name.Name
	for _, f := range files {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			primary = f.Name.Name
			break
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == primary {
			kept = append(kept, f)
		}
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset, Files: kept}
	for imp := range imports {
		pkg.imports = append(pkg.imports, imp)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// loadOrder topologically sorts pkgs by their intra-module imports so
// each package type-checks after its dependencies.
func loadOrder(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(pkgs))
	var ordered []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p.Path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(chain, p.Path), " -> "))
		}
		state[p.Path] = visiting
		for _, imp := range p.imports {
			dep, ok := byPath[imp]
			if !ok {
				return fmt.Errorf("lint: %s imports %s, which is outside the loaded pattern set (lint the whole module: simlint ./...)", p.Path, imp)
			}
			if err := visit(dep, append(chain, p.Path)); err != nil {
				return err
			}
		}
		state[p.Path] = done
		ordered = append(ordered, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// moduleImporter resolves module-internal imports from the packages
// loaded so far and everything else from stdlib source.
type moduleImporter struct {
	source  types.Importer
	checked map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	return m.source.Import(path)
}

// typeCheck populates pkg.Pkg and pkg.Info.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Pkg, pkg.Info = tpkg, info
	return nil
}

// CheckPackage type-checks the given files as a single package with the
// given import path and runs the checks over it — the fixture-test entry
// point (Load is the production path).
func CheckPackage(fset *token.FileSet, pkgPath string, files []*ast.File, checks []*Check) ([]Diagnostic, error) {
	pkg := &Package{Path: pkgPath, Fset: fset, Files: files}
	imp := &moduleImporter{
		source:  importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}
	if err := typeCheck(fset, pkg, imp); err != nil {
		return nil, err
	}
	return Run([]*Package{pkg}, checks), nil
}
