package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FingerprintCheck guards the sweep memoization key. The runner caches
// results by the canonical RunConfig produced by the `fingerprint`
// function; two hazards can silently alias distinct runs:
//
//  1. a config field with reference semantics (pointer, slice, map,
//     chan, func, interface) — struct equality then compares identity,
//     not content, so semantically different runs can collide (or
//     identical runs can miss) in the cache;
//  2. a fingerprint that rebuilds its result field-by-field and drops a
//     newly added field, so configurations differing only in that field
//     collapse onto one cached result.
//
// The check activates on any function named `fingerprint` (or
// `Fingerprint`) with signature func(T) T for a named struct T: every
// field reachable from T must be a pure value type, and the function
// must provably cover all fields — by returning the (possibly mutated)
// parameter, or by a composite literal that names every field. In the
// package that owns the runner (internal/core) the function's absence
// is itself an error.
var FingerprintCheck = &Check{
	Name:  "fingerprint",
	Doc:   "verify the canonical RunConfig fingerprint covers every field and that all fields have value semantics",
	Scope: "internal/driver (RunConfig and its fingerprint)",
	Run:   runFingerprint,
}

func runFingerprint(p *Pass) {
	found := false
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || (fd.Name.Name != "fingerprint" && fd.Name.Name != "Fingerprint") {
				continue
			}
			st, named := fingerprintType(p, fd)
			if st == nil {
				continue
			}
			found = true
			checkValueSemantics(p, fd, named, st)
			checkCoverage(p, fd, named, st)
		}
	}
	if !found && isCorePkg(p.PkgPath) {
		pos := p.Files[0].Package
		p.Reportf(pos, "package %s has no fingerprint(T) T function canonicalizing the memo key; the runner's cache has no guarded fingerprint", p.PkgPath)
	}
}

func isCorePkg(path string) bool {
	return path == "internal/core" || strings.HasSuffix(path, "/internal/core")
}

// fingerprintType returns T's struct type for a func(T) T declaration.
func fingerprintType(p *Pass, fd *ast.FuncDecl) (*types.Struct, *types.Named) {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return nil, nil
	}
	pt, rt := sig.Params().At(0).Type(), sig.Results().At(0).Type()
	if !types.Identical(pt, rt) {
		return nil, nil
	}
	named, ok := pt.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return st, named
}

// checkValueSemantics reports every field reachable from T whose type
// has reference semantics and so breaks memo-key equality.
func checkValueSemantics(p *Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct) {
	var walk func(prefix string, st *types.Struct, seen map[*types.Struct]bool)
	walk = func(prefix string, st *types.Struct, seen map[*types.Struct]bool) {
		if seen[st] {
			return
		}
		seen[st] = true
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			path := prefix + f.Name()
			if why := referenceKind(f.Type()); why != "" {
				p.Reportf(fd.Pos(), "%s field %s is a %s (%s); memo-key equality would compare identity, not content — keep config fields pure values",
					named.Obj().Name(), path, why, f.Type().String())
				continue
			}
			if sub, ok := structUnder(f.Type()); ok {
				walk(path+".", sub, seen)
			}
		}
	}
	walk("", st, map[*types.Struct]bool{})
}

// referenceKind names the reference-semantics kind of t, or "" when t
// is a pure value type. Arrays recurse into their element.
func referenceKind(t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return "pointer"
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	case *types.Signature:
		return "function"
	case *types.Interface:
		return "interface"
	case *types.Array:
		return referenceKind(u.Elem())
	}
	return ""
}

// structUnder returns t's underlying struct type, unwrapping arrays.
func structUnder(t types.Type) (*types.Struct, bool) {
	u := t.Underlying()
	if arr, ok := u.(*types.Array); ok {
		u = arr.Elem().Underlying()
	}
	st, ok := u.(*types.Struct)
	return st, ok
}

// checkCoverage verifies the function's return values cover every field
// of T: returning the parameter covers all fields; a composite literal
// must name each one.
func checkCoverage(p *Pass, fd *ast.FuncDecl, named *types.Named, st *types.Struct) {
	param := paramObject(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		res := ret.Results[0]
		if id, ok := res.(*ast.Ident); ok {
			if param != nil && p.Info.Uses[id] == param {
				return true // returns the whole parameter: every field covered
			}
			p.Reportf(ret.Pos(), "fingerprint returns %s, not its parameter or a fully keyed %s literal; cannot prove every field is covered", id.Name, named.Obj().Name())
			return true
		}
		lit, ok := res.(*ast.CompositeLit)
		if !ok {
			p.Reportf(ret.Pos(), "fingerprint result is not the parameter or a composite literal; cannot prove every field of %s is covered", named.Obj().Name())
			return true
		}
		covered := make(map[string]bool, len(lit.Elts))
		keyed := true
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				keyed = false
				break
			}
			if key, ok := kv.Key.(*ast.Ident); ok {
				covered[key.Name] = true
			}
		}
		if !keyed {
			if len(lit.Elts) == st.NumFields() {
				return true // positional literal with all fields present
			}
			p.Reportf(ret.Pos(), "fingerprint composite literal is positional with %d of %d fields; name every field of %s", len(lit.Elts), st.NumFields(), named.Obj().Name())
			return true
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); !covered[f.Name()] {
				p.Reportf(ret.Pos(), "fingerprint composite literal omits %s.%s; a new config field must enter the memo key or be explicitly normalized", named.Obj().Name(), f.Name())
			}
		}
		return true
	})
}

// paramObject returns the object of the function's single parameter.
func paramObject(p *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil || len(fd.Type.Params.List) != 1 || len(fd.Type.Params.List[0].Names) != 1 {
		return nil
	}
	return p.Info.Defs[fd.Type.Params.List[0].Names[0]]
}
