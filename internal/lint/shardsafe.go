package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardSafeCheck statically fences the tiled engine's ownership
// discipline: state marked per-tile may only be touched from the tile
// that owns it. PR 6's one real race — the coherence protocol's
// write-back path reading another node's cache state from the home
// tile — is exactly the bug class this check makes impossible to
// reintroduce.
//
// The discipline is declared in source with four annotations:
//
//	//lint:tileowned
//	    on a struct field (a per-node slice): element i belongs to the
//	    tile owning node i and may only be indexed by that tile.
//	//lint:tilelocal <param>
//	    on a function: the body executes on the tile owning node
//	    <param>; it may index tileowned state with that parameter.
//	//lint:tiletransfer <fnParam>@<nodeParam>
//	    on a function: the function value passed as <fnParam> will run
//	    on the tile owning node <nodeParam>. Closure arguments at call
//	    sites are checked against the node argument they ship with.
//	//lint:tileengine <param>
//	    on a function: it returns the event engine of the tile owning
//	    node <param>; closures scheduled directly on its result run
//	    there.
//
// Closures handed to the sim.Engine.CrossAt mailbox API get a wildcard:
// CrossAt is the sanctioned way to touch another tile, because the
// engine defers the closure into the destination tile's own window.
//
// Inside a tile context, indexing a tileowned slice with anything other
// than the witnessed node variable is a diagnostic. Outside any
// annotation (host context: setup, teardown, result collection) access
// is unrestricted — unless the function is reachable from a tile
// context through the call graph, in which case it may run on a tile
// and is held to the same standard. len/cap of a tileowned slice is
// always fine; the geometry is immutable once the run starts.
var ShardSafeCheck = &Check{
	Name:  "shardsafe",
	Doc:   "tileowned state may only be touched by its owning tile (tilelocal/tiletransfer witnesses, CrossAt for cross-tile)",
	Scope: "sim packages (annotations live where per-tile state lives)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, simScopes)
	},
	RunModule: runShardSafe,
}

// tileWitness is the node variable a function body may index tileowned
// state with. The zero value means host context (no tile).
type tileWitness struct {
	obj      types.Object // the witnessed node-index variable
	wildcard bool         // CrossAt closure: sanctioned cross-tile access
	unnamed  bool         // runs on a tile, but the node is not a simple variable
}

func (w tileWitness) host() bool { return w.obj == nil && !w.wildcard && !w.unnamed }

// transferSpec is one parsed //lint:tiletransfer fn@node pair, by
// parameter index.
type transferSpec struct{ fnIdx, nodeIdx int }

// funcAnn is the parsed annotation set of one declared function.
type funcAnn struct {
	local     *types.Var // tilelocal witness parameter
	transfers []transferSpec
	engineIdx int // tileengine node parameter index, -1 if absent
}

// shardCandidate is a host-context access to tileowned state, reported
// only if the function turns out to be reachable from a tile context.
type shardCandidate struct {
	node *CGNode
	pos  token.Pos
	msg  string
}

func runShardSafe(p *ModulePass) {
	s := &shardState{
		p:     p,
		owned: make(map[*types.Var]bool),
		anns:  make(map[*types.Func]*funcAnn),
	}
	// Pass 1: collect annotations module-wide.
	for _, pkg := range p.Pkgs {
		s.collectAnnotations(pkg)
	}
	if len(s.owned) == 0 {
		return // nothing is tileowned; nothing to fence
	}
	// Pass 2: walk every sim-scope function with its witness.
	for _, pkg := range p.Pkgs {
		if !inScope(pkg.Path, simScopes) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				cur := p.Graph.NodeFor(obj)
				wit := tileWitness{}
				if ann := s.anns[obj]; ann != nil && ann.local != nil {
					wit = tileWitness{obj: ann.local}
					s.roots = append(s.roots, cur)
				}
				s.scan(pkg, cur, fd.Body, wit)
			}
		}
	}
	// Pass 3: host-context candidates fire if the function is reachable
	// from any tile context.
	reachable := p.Graph.ReachableFrom(s.roots)
	for _, c := range s.candidates {
		if c.node != nil && reachable[c.node] {
			p.Reportf(c.pos, "%s (function is reachable from a tile context)", c.msg)
		}
	}
}

type shardState struct {
	p          *ModulePass
	owned      map[*types.Var]bool // tileowned field objects
	anns       map[*types.Func]*funcAnn
	roots      []*CGNode // tile-context entry points
	candidates []shardCandidate
}

// collectAnnotations parses tileowned field markers and function
// annotations in one package.
func (s *shardState) collectAnnotations(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				s.collectOwnedFields(pkg, d)
			case *ast.FuncDecl:
				s.collectFuncAnn(pkg, d)
			}
		}
	}
}

// collectOwnedFields records struct fields marked //lint:tileowned.
func (s *shardState) collectOwnedFields(pkg *Package, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			if !hasMarker(field.Doc, "lint:tileowned") && !hasMarker(field.Comment, "lint:tileowned") {
				continue
			}
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					s.owned[v] = true
				}
			}
		}
	}
}

// collectFuncAnn parses a function's tile annotations from its doc
// comment.
func (s *shardState) collectFuncAnn(pkg *Package, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	paramIdx := func(name string) (int, *types.Var) {
		sig, _ := obj.Type().(*types.Signature)
		if sig == nil {
			return -1, nil
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if v := sig.Params().At(i); v.Name() == name {
				return i, v
			}
		}
		return -1, nil
	}
	ann := &funcAnn{engineIdx: -1}
	found := false
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch {
		case strings.HasPrefix(text, "lint:tilelocal "):
			name := strings.TrimSpace(strings.TrimPrefix(text, "lint:tilelocal "))
			_, v := paramIdx(name)
			if v == nil {
				s.p.Reportf(c.Pos(), "lint:tilelocal names no parameter %q of %s", name, fd.Name.Name)
				continue
			}
			ann.local = v
			found = true
		case strings.HasPrefix(text, "lint:tiletransfer "):
			spec := strings.TrimSpace(strings.TrimPrefix(text, "lint:tiletransfer "))
			fnName, nodeName, ok := strings.Cut(spec, "@")
			fi, _ := paramIdx(strings.TrimSpace(fnName))
			ni, _ := paramIdx(strings.TrimSpace(nodeName))
			if !ok || fi < 0 || ni < 0 {
				s.p.Reportf(c.Pos(), "lint:tiletransfer wants <fnParam>@<nodeParam> naming parameters of %s", fd.Name.Name)
				continue
			}
			ann.transfers = append(ann.transfers, transferSpec{fnIdx: fi, nodeIdx: ni})
			found = true
		case strings.HasPrefix(text, "lint:tileengine "):
			name := strings.TrimSpace(strings.TrimPrefix(text, "lint:tileengine "))
			i, _ := paramIdx(name)
			if i < 0 {
				s.p.Reportf(c.Pos(), "lint:tileengine names no parameter %q of %s", name, fd.Name.Name)
				continue
			}
			ann.engineIdx = i
			found = true
		}
	}
	if found {
		s.anns[obj] = ann
	}
}

// hasMarker reports whether the comment group contains the marker.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), marker) {
			return true
		}
	}
	return false
}

// scan validates one function body under the given witness, recursing
// into literals with the witness their use site assigns.
func (s *shardState) scan(pkg *Package, cur *CGNode, body ast.Node, wit tileWitness) {
	info := pkg.Info
	// litWitness holds witnesses assigned to literal arguments by
	// annotated call sites, consumed when the walk reaches the literal.
	litWitness := make(map[*ast.FuncLit]tileWitness)
	// consumed marks tileowned selectors already handled by an enclosing
	// construct (index, len/cap, range).
	consumed := make(map[*ast.SelectorExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := s.p.Graph.LitNode(n)
			w, explicit := litWitness[n]
			if !explicit {
				w = wit // lexical inheritance: runs where it was written
			} else if child != nil {
				s.roots = append(s.roots, child)
			}
			s.scan(pkg, child, n.Body, w)
			return false
		case *ast.CallExpr:
			s.assignArgWitnesses(pkg, n, litWitness)
			// len/cap of tileowned state is geometry, not state.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args {
						if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok && s.ownedSel(info, sel) {
							consumed[sel] = true
						}
					}
				}
			}
		case *ast.IndexExpr:
			sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
			if !ok || !s.ownedSel(info, sel) {
				return true
			}
			consumed[sel] = true
			s.checkIndex(pkg, cur, sel, n.Index, wit)
		case *ast.RangeStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && s.ownedSel(info, sel) {
				consumed[sel] = true
				s.flagWhole(cur, sel, wit, "ranges over")
			}
		case *ast.SelectorExpr:
			if s.ownedSel(info, n) && !consumed[n] {
				s.flagWhole(cur, n, wit, "takes")
			}
		}
		return true
	})
}

// ownedSel reports whether the selector reads a tileowned field.
func (s *shardState) ownedSel(info *types.Info, selExpr *ast.SelectorExpr) bool {
	sln, ok := info.Selections[selExpr]
	if !ok || sln.Kind() != types.FieldVal {
		return false
	}
	v, _ := sln.Obj().(*types.Var)
	return v != nil && s.owned[v]
}

// checkIndex validates one tileowned index against the witness.
func (s *shardState) checkIndex(pkg *Package, cur *CGNode, selExpr *ast.SelectorExpr, index ast.Expr, wit tileWitness) {
	if wit.wildcard {
		return
	}
	field := selExpr.Sel.Name
	if wit.host() {
		s.candidates = append(s.candidates, shardCandidate{
			node: cur,
			pos:  selExpr.Pos(),
			msg:  "indexes tileowned " + field + " without a tile witness; annotate the function (lint:tilelocal) or keep it host-only",
		})
		return
	}
	if wit.unnamed {
		s.p.Reportf(selExpr.Pos(), "indexes tileowned %s in a tile context whose node is not a simple variable; bind the node to a local first so the owner is checkable", field)
		return
	}
	if id, ok := ast.Unparen(index).(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj == wit.obj {
			return
		}
	}
	s.p.Reportf(selExpr.Pos(), "cross-tile access: %s[...] indexed by something other than the witnessed node %q; only the owning tile may touch it (use CrossAt to defer into the owner's window)", field, wit.obj.Name())
}

// flagWhole handles non-indexed uses of a tileowned slice (ranging,
// passing the whole slice).
func (s *shardState) flagWhole(cur *CGNode, selExpr *ast.SelectorExpr, wit tileWitness, verb string) {
	if wit.wildcard {
		return
	}
	field := selExpr.Sel.Name
	if wit.host() {
		s.candidates = append(s.candidates, shardCandidate{
			node: cur,
			pos:  selExpr.Pos(),
			msg:  verb + " the whole tileowned " + field + " slice without a tile witness",
		})
		return
	}
	s.p.Reportf(selExpr.Pos(), "%s the whole tileowned %s slice from a tile context; a tile may only touch its own element", verb, field)
}

// assignArgWitnesses resolves tiletransfer / tileengine / CrossAt call
// sites, binding witnesses to literal arguments before the walk
// descends into them.
func (s *shardState) assignArgWitnesses(pkg *Package, call *ast.CallExpr, litWitness map[*ast.FuncLit]tileWitness) {
	info := pkg.Info
	witFromArg := func(arg ast.Expr) tileWitness {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				return tileWitness{obj: obj}
			}
		}
		return tileWitness{unnamed: true}
	}
	bindLit := func(arg ast.Expr, w tileWitness) {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			litWitness[lit] = w
		}
	}

	// CrossAt: the mailbox API. Closures it carries are deferred into
	// the destination tile's own window — sanctioned cross-tile access.
	if selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && selExpr.Sel.Name == "CrossAt" {
		for _, arg := range call.Args {
			bindLit(arg, tileWitness{wildcard: true})
		}
		return
	}

	// Scheduling directly on a tileengine call result:
	// s.engAt(home).After(d, func(){...}) runs the closure on home's tile.
	if selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if inner, ok := ast.Unparen(selExpr.X).(*ast.CallExpr); ok {
			if ann := s.calleeAnn(info, inner); ann != nil && ann.engineIdx >= 0 && ann.engineIdx < len(inner.Args) {
				w := witFromArg(inner.Args[ann.engineIdx])
				for _, arg := range call.Args {
					bindLit(arg, w)
				}
				return
			}
		}
	}

	// tiletransfer: the annotated callee ships fnParam to nodeParam's tile.
	if ann := s.calleeAnn(info, call); ann != nil {
		for _, t := range ann.transfers {
			if t.fnIdx < len(call.Args) && t.nodeIdx < len(call.Args) {
				bindLit(call.Args[t.fnIdx], witFromArg(call.Args[t.nodeIdx]))
			}
		}
	}
}

// calleeAnn resolves a call's static callee to its annotation set.
func (s *shardState) calleeAnn(info *types.Info, call *ast.CallExpr) *funcAnn {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sln, ok := info.Selections[fun]; ok {
			obj = sln.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	if fn == nil {
		return nil
	}
	return s.anns[fn]
}
