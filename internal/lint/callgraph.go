package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the whole-module static call graph the interprocedural
// checks (callpath, shardsafe, serialonly) share. The graph is
// deliberately simple and conservative:
//
//   - Nodes are declared functions/methods (in-module and, lazily, the
//     external stdlib functions the module calls) plus every function
//     literal. Literals are NOT folded into their enclosing function —
//     a closure handed to a scheduler runs in a different context than
//     the function that built it — but each literal carries a Parent
//     pointer and a "ref" edge from its enclosing function.
//   - Edges are "call" (direct static call), "ref" (a function value
//     taken without being called — it may be called later, so
//     reachability treats it as a call), and "iface" (a call through an
//     interface method, expanded to every in-module named type that
//     implements the interface — a deliberate over-approximation).
//   - Calls through function-typed variables and parameters are not
//     resolved; the "ref" edge at the point the function value was
//     taken is the conservative stand-in for them.
//
// Raw-concurrency facts (go statements, channel operations, sync use)
// are recorded per node while walking, so transitive checks can ask
// "does anything reachable from here spawn host concurrency?".

// EdgeKind classifies a call-graph edge.
type EdgeKind uint8

const (
	// EdgeCall is a direct static call.
	EdgeCall EdgeKind = iota
	// EdgeRef is a function value taken without being called; it may be
	// invoked later, so reachability follows it like a call.
	EdgeRef
	// EdgeIface is an interface-dispatch edge to one possible concrete
	// method (over-approximated over the module's named types).
	EdgeIface
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeRef:
		return "ref"
	case EdgeIface:
		return "iface"
	}
	return "?"
}

// CGEdge is one outgoing edge of a call-graph node.
type CGEdge struct {
	To   *CGNode
	Pos  token.Pos // call site / reference site
	Kind EdgeKind
}

// Fact is one raw-concurrency construct observed inside a function body.
type Fact struct {
	Pos  token.Pos
	What string
}

// CGNode is one function in the call graph: a declared function or
// method (Obj != nil), a function literal (Lit != nil), or an external
// function the module calls but whose body is not analyzed (Pkg == nil,
// Obj != nil).
type CGNode struct {
	Obj    *types.Func   // declared function object; nil for literals
	Lit    *ast.FuncLit  // literal; nil for declarations
	Parent *CGNode       // enclosing function, for literals
	Pkg    *Package      // owning module package; nil for external nodes
	Decl   *ast.FuncDecl // declaration AST, for in-module declarations
	Edges  []CGEdge
	Conc   []Fact // raw-concurrency facts in this body

	name string
}

// External reports whether the node is a function outside the module
// (its body was not analyzed).
func (n *CGNode) External() bool { return n.Pkg == nil && n.Lit == nil }

// Name returns a compact display name: "mem.(*System).writeback",
// "time.Now", "machine.Run$1" for the first literal inside machine.Run.
func (n *CGNode) Name() string { return n.name }

// Pos returns the node's declaration position (NoPos for externals).
func (n *CGNode) Pos() token.Pos {
	switch {
	case n.Lit != nil:
		return n.Lit.Pos()
	case n.Decl != nil:
		return n.Decl.Name.Pos()
	}
	return token.NoPos
}

// CallGraph is the module-wide call graph. Node order is deterministic:
// declaration order within load order, literals in lexical order after
// their enclosing declaration, externals in first-use order.
type CallGraph struct {
	Fset  *token.FileSet
	nodes []*CGNode
	byObj map[*types.Func]*CGNode
	byLit map[*ast.FuncLit]*CGNode
}

// Nodes returns every node in deterministic order.
func (g *CallGraph) Nodes() []*CGNode { return g.nodes }

// NodeFor returns the node for a declared function object, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *CGNode { return g.byObj[obj] }

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CGNode { return g.byLit[lit] }

// BuildCallGraph constructs the call graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		byObj: make(map[*types.Func]*CGNode),
		byLit: make(map[*ast.FuncLit]*CGNode),
	}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	// Pass 1: a node per declared function, in deterministic order, so
	// edge resolution in pass 2 can target any declaration regardless of
	// package load order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &CGNode{Obj: obj, Pkg: pkg, Decl: fd, name: declName(obj)}
				g.nodes = append(g.nodes, n)
				g.byObj[obj] = n
			}
		}
	}
	// Pass 2: walk bodies, creating literal nodes and resolving edges.
	b := &graphBuilder{g: g, pkgs: pkgs}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				b.walkBody(g.byObj[obj], pkg, fd.Body)
			}
		}
	}
	return g
}

// declName renders "pkg.Func" or "pkg.(*Recv).Method".
func declName(obj *types.Func) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Name() + "."
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		star := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			star = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, star, named.Obj().Name(), obj.Name())
		}
	}
	return pkg + obj.Name()
}

// graphBuilder carries pass-2 state.
type graphBuilder struct {
	g    *CallGraph
	pkgs []*Package
	// namedTypes caches the module's named types for interface-dispatch
	// expansion, in deterministic order.
	namedTypes []*types.Named
}

// moduleNamed returns every named (non-interface, non-alias) type
// declared in the module, in deterministic order.
func (b *graphBuilder) moduleNamed() []*types.Named {
	if b.namedTypes != nil {
		return b.namedTypes
	}
	b.namedTypes = []*types.Named{} // non-nil marks "computed"
	for _, pkg := range b.pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Assign.IsValid() {
						continue // skip aliases
					}
					obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if obj == nil {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					if _, isIface := named.Underlying().(*types.Interface); isIface {
						continue
					}
					b.namedTypes = append(b.namedTypes, named)
				}
			}
		}
	}
	return b.namedTypes
}

// external returns (creating on first use) the node for a function
// declared outside the module.
func (b *graphBuilder) external(obj *types.Func) *CGNode {
	if n := b.g.byObj[obj]; n != nil {
		return n
	}
	n := &CGNode{Obj: obj, name: declName(obj)}
	b.g.nodes = append(b.g.nodes, n)
	b.g.byObj[obj] = n
	return n
}

// walkBody resolves edges and facts for one function body, creating
// child nodes for literals as they appear.
func (b *graphBuilder) walkBody(from *CGNode, pkg *Package, body ast.Node) {
	info := pkg.Info
	litIndex := 0
	// callees collects expressions appearing in call position so the
	// function-value scan below does not double-count them as refs;
	// skipSel marks selector Sel identifiers, which are resolved through
	// their SelectorExpr rather than as bare identifiers.
	callees := make(map[ast.Expr]bool)
	skipSel := make(map[*ast.Ident]bool)

	var walk func(cur *CGNode, n ast.Node)
	inspect := func(cur *CGNode) func(ast.Node) bool {
		return func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				litIndex++
				child := &CGNode{
					Lit:    n,
					Parent: cur,
					Pkg:    pkg,
					name:   fmt.Sprintf("%s$%d", from.Name(), litIndex),
				}
				b.g.nodes = append(b.g.nodes, child)
				b.g.byLit[n] = child
				// The enclosing function holds a reference to the literal;
				// whether and where it runs is up to whoever receives it.
				cur.Edges = append(cur.Edges, CGEdge{To: child, Pos: n.Pos(), Kind: EdgeRef})
				walk(child, n.Body)
				return false // children handled by the recursive walk
			case *ast.CallExpr:
				b.resolveCall(cur, pkg, n, callees)
			case *ast.Ident:
				if !callees[n] && !skipSel[n] {
					if obj, ok := info.Uses[n].(*types.Func); ok {
						cur.Edges = append(cur.Edges, CGEdge{To: b.funcNode(obj), Pos: n.Pos(), Kind: EdgeRef})
					}
				}
			case *ast.SelectorExpr:
				skipSel[n.Sel] = true
				if !callees[n] {
					b.resolveSelectorRef(cur, pkg, n)
				}
				// Record sync / sync-atomic use as a concurrency fact,
				// both as qualified identifiers (sync.OnceFunc) and as
				// method calls on sync-typed values (mu.Lock).
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[id].(*types.PkgName); ok {
						if p := pn.Imported().Path(); p == "sync" || p == "sync/atomic" {
							cur.Conc = append(cur.Conc, Fact{n.Pos(), "sync primitive " + id.Name + "." + n.Sel.Name})
						}
					}
				}
				if s, ok := info.Selections[n]; ok && s.Kind() == types.MethodVal {
					if named := namedRecv(s.Recv()); named != nil {
						if tp := named.Obj().Pkg(); tp != nil && (tp.Path() == "sync" || tp.Path() == "sync/atomic") {
							cur.Conc = append(cur.Conc, Fact{n.Pos(), "sync primitive method " + named.Obj().Name() + "." + n.Sel.Name})
						}
					}
				}
			case *ast.GoStmt:
				cur.Conc = append(cur.Conc, Fact{n.Pos(), "go statement spawns a host goroutine"})
			case *ast.SelectStmt:
				cur.Conc = append(cur.Conc, Fact{n.Pos(), "select waits on host channels"})
			case *ast.SendStmt:
				cur.Conc = append(cur.Conc, Fact{n.Pos(), "channel send"})
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					cur.Conc = append(cur.Conc, Fact{n.Pos(), "channel receive"})
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						cur.Conc = append(cur.Conc, Fact{n.Pos(), "range over a channel"})
					}
				}
			}
			return true
		}
	}
	walk = func(cur *CGNode, n ast.Node) {
		ast.Inspect(n, inspect(cur))
	}
	walk(from, body)
}

// funcNode returns the node for obj, creating an external node if the
// function lives outside the module.
func (b *graphBuilder) funcNode(obj *types.Func) *CGNode {
	if n := b.g.byObj[obj]; n != nil {
		return n
	}
	return b.external(obj)
}

// resolveCall adds edges for one call expression.
func (b *graphBuilder) resolveCall(cur *CGNode, pkg *Package, call *ast.CallExpr, callees map[ast.Expr]bool) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		callees[fun] = true
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			cur.Edges = append(cur.Edges, CGEdge{To: b.funcNode(obj), Pos: call.Lparen, Kind: EdgeCall})
		}
		// Builtins, conversions, and func-typed variables resolve to
		// nothing: variables are covered by the ref edge taken where the
		// value was produced.
	case *ast.SelectorExpr:
		callees[fun] = true
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal && sel.Kind() != types.MethodExpr {
				return // func-typed struct field: unresolvable here
			}
			m, _ := sel.Obj().(*types.Func)
			if m == nil {
				return
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				b.expandIface(cur, iface, m.Name(), call.Lparen)
				return
			}
			cur.Edges = append(cur.Edges, CGEdge{To: b.funcNode(m), Pos: call.Lparen, Kind: EdgeCall})
			return
		}
		// Qualified identifier pkg.F, or a conversion.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			cur.Edges = append(cur.Edges, CGEdge{To: b.funcNode(obj), Pos: call.Lparen, Kind: EdgeCall})
		}
	case *ast.FuncLit:
		// (func(){...})() — the literal's node is created when the walk
		// reaches it, and the ref edge added there already carries
		// reachability; nothing further to resolve.
	}
}

// resolveSelectorRef adds a ref edge for a method value or qualified
// function taken without being called (handed to a scheduler, stored).
func (b *graphBuilder) resolveSelectorRef(cur *CGNode, pkg *Package, sel *ast.SelectorExpr) {
	info := pkg.Info
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr {
			return
		}
		m, _ := s.Obj().(*types.Func)
		if m == nil {
			return
		}
		if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
			b.expandIface(cur, iface, m.Name(), sel.Pos())
			return
		}
		cur.Edges = append(cur.Edges, CGEdge{To: b.funcNode(m), Pos: sel.Pos(), Kind: EdgeRef})
		return
	}
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		cur.Edges = append(cur.Edges, CGEdge{To: b.funcNode(obj), Pos: sel.Pos(), Kind: EdgeRef})
	}
}

// expandIface adds an edge to method name on every module named type
// implementing iface — the over-approximation for dynamic dispatch.
func (b *graphBuilder) expandIface(cur *CGNode, iface *types.Interface, name string, pos token.Pos) {
	if iface.Empty() {
		return
	}
	for _, named := range b.moduleNamed() {
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, name)
		m, _ := obj.(*types.Func)
		if m == nil {
			continue
		}
		if n := b.g.byObj[m]; n != nil {
			cur.Edges = append(cur.Edges, CGEdge{To: n, Pos: pos, Kind: EdgeIface})
		}
	}
}

// ReachStep records, for a node that transitively reaches a target, the
// next hop of a deterministic shortest path toward it.
type ReachStep struct {
	Next *CGNode   // next hop; nil when the node is itself a target
	Pos  token.Pos // position of the edge to Next
	Dist int       // hops to the nearest target
}

// Reach computes every node that transitively reaches a target node,
// following call, ref, and iface edges. isTarget marks the targets;
// barrier (optional) names nodes that neither transmit nor acquire
// reachability — paths through them are cut. The returned map holds a
// deterministic shortest chain via Next pointers.
func (g *CallGraph) Reach(isTarget func(*CGNode) bool, barrier func(*CGNode) bool) map[*CGNode]*ReachStep {
	blocked := func(n *CGNode) bool { return barrier != nil && barrier(n) }
	// Reverse adjacency in deterministic (node, edge) order.
	type pred struct {
		from *CGNode
		pos  token.Pos
	}
	rev := make(map[*CGNode][]pred)
	for _, n := range g.nodes {
		if blocked(n) {
			continue
		}
		for _, e := range n.Edges {
			rev[e.To] = append(rev[e.To], pred{from: n, pos: e.Pos})
		}
	}
	reach := make(map[*CGNode]*ReachStep)
	var frontier []*CGNode
	for _, n := range g.nodes {
		if isTarget(n) && !blocked(n) {
			reach[n] = &ReachStep{Dist: 0}
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		var next []*CGNode
		for _, m := range frontier {
			d := reach[m].Dist
			for _, p := range rev[m] {
				if _, seen := reach[p.from]; seen {
					continue
				}
				reach[p.from] = &ReachStep{Next: m, Pos: p.pos, Dist: d + 1}
				next = append(next, p.from)
			}
		}
		frontier = next
	}
	return reach
}

// Chain renders the call chain from n to its target as
// "a -> b -> c", following the Reach result.
func Chain(n *CGNode, reach map[*CGNode]*ReachStep) string {
	s := n.Name()
	for step := reach[n]; step != nil && step.Next != nil; step = reach[step.Next] {
		s += " -> " + step.Next.Name()
	}
	return s
}

// ReachableFrom computes forward reachability from the given roots,
// following call, ref, and iface edges. Roots are included.
func (g *CallGraph) ReachableFrom(roots []*CGNode) map[*CGNode]bool {
	seen := make(map[*CGNode]bool)
	var stack []*CGNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Edges {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
