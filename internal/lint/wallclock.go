package lint

import (
	"go/ast"
	"go/types"
)

// WallclockCheck forbids observing host wall-clock time in
// simulator-facing packages. A run's result must be a pure function of
// its RunConfig; the only time a simulation may observe is the simulated
// cycle count (sim.Engine.Now and its wrappers). A stray time.Now in a
// protocol handler silently breaks bit-identical reproduction of the
// paper's figures and aliases the sweep memo cache.
var WallclockCheck = &Check{
	Name:  "wallclock",
	Doc:   "forbid time.Now/Since/Sleep etc. in simulator-facing packages; only simulated cycles may be observed",
	Scope: "sim packages (direct calls; callpath covers transitive ones)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, simScopes)
	},
	Run: runWallclock,
}

// wallclockForbidden lists the time package's host-clock entry points.
// Pure data types (time.Duration arithmetic, date formatting of
// constants) are not in the list: the hazard is observing the clock,
// not naming the types.
var wallclockForbidden = map[string]string{
	"Now":       "observes the host clock",
	"Since":     "observes the host clock",
	"Until":     "observes the host clock",
	"Sleep":     "blocks on host time",
	"After":     "blocks on host time",
	"Tick":      "blocks on host time",
	"NewTimer":  "schedules on host time",
	"NewTicker": "schedules on host time",
	"AfterFunc": "schedules on host time",
}

func runWallclock(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isPkgSelector(p, sel, "time") {
				return true
			}
			if why, bad := wallclockForbidden[sel.Sel.Name]; bad {
				p.Reportf(sel.Pos(), "time.%s %s; simulator-facing code may only observe simulated cycles (sim.Engine.Now)", sel.Sel.Name, why)
			}
			return true
		})
	}
}

// isPkgSelector reports whether sel is a qualified identifier pkg.X
// where pkg is an import of the package with the given path.
func isPkgSelector(p *Pass, sel *ast.SelectorExpr, path string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}
