package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// SerialOnlyCheck is the tilingOK-completeness check. The tiled engine
// is only used when machine.Config.tilingOK() says every configured
// feature survives sharding; history (ROADMAP items 1 and 3) shows each
// new Config field tends to arrive with a "forces serial for now"
// caveat. The failure mode this check removes: a field is added, nobody
// teaches tilingOK about it, and a tiled run silently diverges from the
// serial reference.
//
// Every Config field must therefore be classified exactly one way:
//
//   - consulted — read somewhere in the call graph reachable from
//     Config.tilingOK or Config.Tiled, so the tiling decision provably
//     sees it; or
//   - declared tiling-safe — listed, with a reason, in the package's
//     `tilingSafe` map[string]string manifest.
//
// The classification is exclusive: a consulted field listed in the
// manifest is reported as redundant. That keeps the manifest honest —
// deleting a guard from tilingOK immediately leaves its field
// unclassified (or stale-manifested) and the check fails.
var SerialOnlyCheck = &Check{
	Name:  "serialonly",
	Doc:   "every machine.Config field must be consulted by tilingOK/Tiled or declared tiling-safe in the tilingSafe manifest",
	Scope: "internal/machine (Config vs the tiled-engine gate)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, []string{"internal/machine"})
	},
	RunModule: runSerialOnly,
}

func runSerialOnly(p *ModulePass) {
	for _, pkg := range p.Pkgs {
		if !inScope(pkg.Path, []string{"internal/machine"}) {
			continue
		}
		checkConfigPackage(p, pkg)
	}
}

// checkConfigPackage analyzes one package holding a Config type with a
// tilingOK method (the real internal/machine, or a fixture mirroring
// its shape). Packages without such a type are skipped silently.
func checkConfigPackage(p *ModulePass, pkg *Package) {
	cfg := lookupConfig(pkg)
	if cfg == nil {
		return
	}
	named := cfg.named
	st, _ := named.Underlying().(*types.Struct)
	if st == nil {
		return
	}

	// Forward reachability from the gate methods: everything they call
	// (TileCount, Nodes, fault.Parse, ...) counts as "the tiling
	// decision sees it".
	var roots []*CGNode
	for _, n := range p.Graph.Nodes() {
		if n.Obj == nil || n.Pkg == nil {
			continue
		}
		if (n.Obj.Name() == "tilingOK" || n.Obj.Name() == "Tiled") && recvNamed(n.Obj) == named.Obj() {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		p.Reportf(cfg.pos, "Config has no tilingOK method; the tiled engine cannot be gated on this configuration")
		return
	}
	reachable := p.Graph.ReachableFrom(roots)

	// Field objects of Config, in declaration order.
	fieldOf := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldOf[st.Field(i)] = true
	}

	// Collect consulted fields: selector reads of Config fields inside
	// reachable function bodies (literal bodies are covered by their
	// enclosing declaration's walk).
	consulted := make(map[string]bool)
	for _, n := range p.Graph.Nodes() {
		if !reachable[n] || n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			sel, ok := x.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			if v, ok := s.Obj().(*types.Var); ok && fieldOf[v] {
				consulted[v.Name()] = true
			}
			return true
		})
	}

	manifest, manifestFound := lookupTilingSafe(p, pkg)
	if !manifestFound {
		p.Reportf(cfg.pos, "package %s has no tilingSafe manifest (var tilingSafe = map[string]string{...}); fields not consulted by tilingOK must be declared tiling-safe with a reason", pkg.Pkg.Name())
	}

	// Classify every field exactly once.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		entry, inManifest := manifest[f.Name()]
		switch {
		case consulted[f.Name()] && inManifest:
			p.Reportf(entry.pos, "tilingSafe entry %q is redundant: tilingOK/Tiled already consult the field; a manifest entry would mask a deleted guard", f.Name())
		case !consulted[f.Name()] && !inManifest && manifestFound:
			p.Reportf(f.Pos(), "Config.%s is neither consulted by tilingOK/Tiled nor declared in tilingSafe; a tiled run could silently ignore it — add a guard or a manifest entry with a reason", f.Name())
		}
	}
	names := make([]string, 0, len(manifest))
	for name := range manifest {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !fieldExists(st, name) {
			p.Reportf(manifest[name].pos, "tilingSafe entry %q names no Config field", name)
		}
	}
}

// configType is a located Config declaration.
type configType struct {
	named *types.Named
	pos   token.Pos
}

// lookupConfig finds the package's named struct type "Config".
func lookupConfig(pkg *Package) *configType {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Config" {
					continue
				}
				obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				if named, ok := obj.Type().(*types.Named); ok {
					if _, isStruct := named.Underlying().(*types.Struct); isStruct {
						return &configType{named: named, pos: ts.Name.Pos()}
					}
				}
			}
		}
	}
	return nil
}

// recvNamed returns the receiver's named type object, or nil.
func recvNamed(obj *types.Func) *types.TypeName {
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	if named := namedRecv(sig.Recv().Type()); named != nil {
		return named.Obj()
	}
	return nil
}

// manifestEntry is one parsed tilingSafe map entry.
type manifestEntry struct {
	name string
	pos  token.Pos
}

// lookupTilingSafe parses the package-level `tilingSafe` composite map
// literal. Malformed entries (non-literal keys, empty reasons) are
// reported; the boolean reports whether the var was found at all.
func lookupTilingSafe(p *ModulePass, pkg *Package) (map[string]manifestEntry, bool) {
	out := make(map[string]manifestEntry)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "tilingSafe" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						p.Reportf(name.Pos(), "tilingSafe must be a map[string]string composite literal")
						return out, true
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.BasicLit)
						if !ok || key.Kind != token.STRING {
							p.Reportf(kv.Key.Pos(), "tilingSafe keys must be string literals naming Config fields")
							continue
						}
						fname, err := strconv.Unquote(key.Value)
						if err != nil {
							continue
						}
						reason, ok := kv.Value.(*ast.BasicLit)
						if !ok || reason.Kind != token.STRING || reason.Value == `""` {
							p.Reportf(kv.Value.Pos(), "tilingSafe[%q] needs a non-empty reason string", fname)
						}
						out[fname] = manifestEntry{name: fname, pos: kv.Key.Pos()}
					}
					return out, true
				}
			}
		}
	}
	return out, false
}

// fieldExists reports whether the struct has a field with the name.
func fieldExists(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
