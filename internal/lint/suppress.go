package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker is the suppression comment syntax:
//
//	//lint:allow simlint/<check> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — a suppression must document why the construct is safe.
const allowMarker = "lint:allow "

// suppression is one parsed //lint:allow comment.
type suppression struct {
	check   string
	reason  string
	pkgPath string
	pos     token.Position
	used    bool
}

// suppressions indexes parsed allow-comments by (file, line) and keeps
// them in parse order for the stale audit.
type suppressions struct {
	byLine  map[string]map[int][]*suppression
	ordered []*suppression
}

// allows reports whether d is covered by an allow-comment on its own
// line or the line above, marking the matching suppression used.
func (s *suppressions) allows(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, sup := range lines[line] {
			if sup.check == d.Check {
				sup.used = true
				hit = true
			}
		}
	}
	return hit
}

// auditStale reports every well-formed suppression that suppressed
// nothing during this run, restricted to the selected checks and to
// packages the named check concerns — a wallclock allow in a host
// package never had anything to suppress by construction, and a run
// with -checks maporder says nothing about the others.
func (s *suppressions) auditStale(checks []*Check, out *[]Diagnostic) {
	selected := make(map[string]*Check, len(checks))
	for _, c := range checks {
		selected[c.Name] = c
	}
	for _, sup := range s.ordered {
		if sup.used {
			continue
		}
		c, ok := selected[sup.check]
		if !ok {
			continue
		}
		if c.Applies != nil && !c.Applies(sup.pkgPath) {
			continue
		}
		*out = append(*out, Diagnostic{
			Check:   "allow",
			Pos:     sup.pos,
			Message: "lint:allow simlint/" + sup.check + " suppresses nothing; remove the stale suppression",
		})
	}
}

// collectModuleSuppressions parses every //lint:allow comment across the
// loaded packages. Malformed suppressions (unknown form, missing reason)
// are reported into raw under the pseudo-check "allow" so they cannot
// silently fail to suppress.
func collectModuleSuppressions(pkgs []*Package, raw *[]Diagnostic) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]*suppression)}
	for _, pkg := range pkgs {
		collectSuppressions(pkg.Fset, pkg.Path, pkg.Files, s, raw)
	}
	return s
}

// collectSuppressions parses the //lint:allow comments of one package's
// files into s.
func collectSuppressions(fset *token.FileSet, pkgPath string, files []*ast.File, s *suppressions, raw *[]Diagnostic) {
	report := func(pos token.Pos, msg string) {
		*raw = append(*raw, Diagnostic{Check: "allow", Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				name, reason, _ := strings.Cut(rest, " ")
				if !strings.HasPrefix(name, "simlint/") {
					report(c.Pos(), "lint:allow target must be simlint/<check>")
					continue
				}
				name = strings.TrimPrefix(name, "simlint/")
				if !knownCheck(name) {
					report(c.Pos(), "lint:allow names unknown check simlint/"+name)
					continue
				}
				if strings.TrimSpace(reason) == "" {
					report(c.Pos(), "lint:allow simlint/"+name+" needs a reason")
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*suppression)
					s.byLine[pos.Filename] = lines
				}
				sup := &suppression{check: name, reason: reason, pkgPath: pkgPath, pos: pos}
				lines[pos.Line] = append(lines[pos.Line], sup)
				s.ordered = append(s.ordered, sup)
			}
		}
	}
}

func knownCheck(name string) bool {
	for _, c := range Checks() {
		if c.Name == name {
			return true
		}
	}
	return false
}
