package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker is the suppression comment syntax:
//
//	//lint:allow simlint/<check> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — a suppression must document why the construct is safe.
const allowMarker = "lint:allow "

// suppression is one parsed //lint:allow comment.
type suppression struct {
	check  string
	reason string
}

// suppressions indexes parsed allow-comments by (file, line).
type suppressions struct {
	byLine map[string]map[int][]suppression
}

// allows reports whether d is covered by an allow-comment on its own
// line or the line above.
func (s *suppressions) allows(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, sup := range lines[line] {
			if sup.check == d.Check {
				return true
			}
		}
	}
	return false
}

// collectSuppressions parses every //lint:allow comment in the files.
// Malformed suppressions (unknown form, missing reason) are themselves
// reported into raw under the pseudo-check "allow" so they cannot
// silently fail to suppress.
func collectSuppressions(fset *token.FileSet, files []*ast.File, raw *[]Diagnostic) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]suppression)}
	report := func(pos token.Pos, msg string) {
		*raw = append(*raw, Diagnostic{Check: "allow", Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowMarker))
				name, reason, _ := strings.Cut(rest, " ")
				if !strings.HasPrefix(name, "simlint/") {
					report(c.Pos(), "lint:allow target must be simlint/<check>")
					continue
				}
				name = strings.TrimPrefix(name, "simlint/")
				if !knownCheck(name) {
					report(c.Pos(), "lint:allow names unknown check simlint/"+name)
					continue
				}
				if strings.TrimSpace(reason) == "" {
					report(c.Pos(), "lint:allow simlint/"+name+" needs a reason")
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]suppression)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], suppression{check: name, reason: reason})
			}
		}
	}
	return s
}

func knownCheck(name string) bool {
	for _, c := range Checks() {
		if c.Name == name {
			return true
		}
	}
	return false
}
