package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, carrying its check name and position.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: simlint/%s: %s", d.Pos, d.Check, d.Message)
}

// Check is one analyzer of the suite: either a per-package syntactic
// check (Run set) or a module-wide interprocedural check over the shared
// call graph (RunModule set).
type Check struct {
	Name string
	Doc  string
	// Scope names where the check looks, for -list ("sim packages",
	// "app packages", "module-wide", ...).
	Scope string
	// Applies reports whether the check concerns the package with the
	// given import path; nil means every package. Per-package checks run
	// only on applying packages; module checks use it to decide where
	// their //lint:allow suppressions are meaningful.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
	// RunModule runs once over the whole loaded package set with the
	// shared call graph.
	RunModule func(*ModulePass)
}

// Pass carries one (check, package) analysis run.
type Pass struct {
	Check   *Check
	Fset    *token.FileSet
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info
	Files   []*ast.File

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Check.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass carries one module-wide analysis run: every loaded package
// plus the shared call graph.
type ModulePass struct {
	Check *Check
	Fset  *token.FileSet
	Pkgs  []*Package
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Check.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Checks returns the full suite in stable order.
func Checks() []*Check {
	return []*Check{
		WallclockCheck,
		UnseededRandCheck,
		MapOrderCheck,
		RawConcCheck,
		FingerprintCheck,
		CallPathCheck,
		ShardSafeCheck,
		SerialOnlyCheck,
		IntMathCheck,
	}
}

// Select returns the named subset of the suite ("" selects all).
func Select(names string) ([]*Check, error) {
	all := Checks()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimPrefix(strings.TrimSpace(n), "simlint/")
		c, ok := byName[n]
		if !ok {
			valid := make([]string, len(all))
			for i, c := range all {
				valid[i] = c.Name
			}
			return nil, fmt.Errorf("lint: unknown check %q (valid: %s)", n, strings.Join(valid, ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// simScopes are the simulator-facing packages where only simulated
// cycles and explicitly seeded randomness may be observed: everything a
// run's result can depend on must be derived from the RunConfig.
var simScopes = []string{
	"internal/sim",
	"internal/machine",
	"internal/mem",
	"internal/mesh",
	"internal/am",
	"internal/apps",
	"internal/workload",
	"internal/fault",
	"internal/psync",
	// obs collects metrics and spans inside the simulation; its data must
	// be a pure function of the run, so it is held to the same standard.
	// (The host-side telemetry sinks — run log, heartbeat — live in
	// internal/core, deliberately outside this list.)
	"internal/obs",
}

// appScopes are the simulated-application packages where concurrency
// must go through sim.Thread/psync, never the host runtime.
var appScopes = []string{
	"internal/apps",
	"internal/workload",
	"internal/psync",
}

// inScope reports whether pkgPath falls under any of the scope path
// fragments (matched on import-path segment boundaries, so fixtures
// under any module name participate).
func inScope(pkgPath string, scopes []string) bool {
	for _, s := range scopes {
		if pkgPath == s || strings.HasPrefix(pkgPath, s+"/") ||
			strings.HasSuffix(pkgPath, "/"+s) || strings.Contains(pkgPath, "/"+s+"/") {
			return true
		}
	}
	return false
}

// Run executes the checks over the packages and returns the surviving
// diagnostics (suppressions applied, stale suppressions reported),
// sorted by position. Per-package checks run first; module-wide checks
// share one call graph, built lazily only when such a check is selected.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	var raw []Diagnostic
	sup := collectModuleSuppressions(pkgs, &raw)
	for _, pkg := range pkgs {
		for _, c := range checks {
			if c.Run == nil {
				continue
			}
			if c.Applies != nil && !c.Applies(pkg.Path) {
				continue
			}
			c.Run(&Pass{
				Check:   c,
				Fset:    pkg.Fset,
				PkgPath: pkg.Path,
				Pkg:     pkg.Pkg,
				Info:    pkg.Info,
				Files:   pkg.Files,
				diags:   &raw,
			})
		}
	}
	var graph *CallGraph
	for _, c := range checks {
		if c.RunModule == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		fset := graph.Fset
		if fset == nil && len(pkgs) > 0 {
			fset = pkgs[0].Fset
		}
		c.RunModule(&ModulePass{Check: c, Fset: fset, Pkgs: pkgs, Graph: graph, diags: &raw})
	}
	var out []Diagnostic
	for _, d := range raw {
		if sup.allows(d) {
			continue
		}
		out = append(out, d)
	}
	// A suppression that suppressed nothing is itself a finding: stale
	// allows hide the day the hazard comes back.
	sup.auditStale(checks, &out)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	// A hazard under nested map loops is found once per enclosing loop;
	// report it once.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}
