package lint

import (
	"go/ast"
)

// UnseededRandCheck forbids the global math/rand state and unseeded
// generators in simulator-facing packages. Workload generation and
// fault injection are part of the sweep memo key through their seeds;
// randomness that does not flow from an explicit seed in the RunConfig
// makes two runs of the same configuration diverge and poisons the
// memoization cache. The accepted idiom is a local generator seeded
// from configuration: rand.New(rand.NewSource(seed)).
var UnseededRandCheck = &Check{
	Name:  "unseededrand",
	Doc:   "forbid global math/rand functions and unseeded rand.New in simulator-facing packages",
	Scope: "sim packages (direct calls; callpath covers transitive ones)",
	Applies: func(pkgPath string) bool {
		return inScope(pkgPath, simScopes)
	},
	Run: runUnseededRand,
}

// randGlobals are the math/rand (and math/rand/v2) package-level
// functions that draw from implicit generator state.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	"N": true,
}

func runUnseededRand(p *Pass) {
	randPkg := func(sel *ast.SelectorExpr) bool {
		return isPkgSelector(p, sel, "math/rand") || isPkgSelector(p, sel, "math/rand/v2")
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !randPkg(sel) {
				return true
			}
			name := sel.Sel.Name
			if randGlobals[name] {
				p.Reportf(sel.Pos(), "rand.%s draws from the global generator; use rand.New(rand.NewSource(seed)) with a seed from the run configuration", name)
				return true
			}
			if name != "New" {
				return true
			}
			// rand.New must be fed a freshly seeded source right there:
			// rand.New(rand.NewSource(seed)). Anything else (a stored
			// Source, a time-seeded source) hides the seed from review.
			call := enclosingCall(f, sel)
			if call == nil || len(call.Args) != 1 || !isSeededSource(p, call.Args[0]) {
				p.Reportf(sel.Pos(), "rand.New must be called as rand.New(rand.NewSource(seed)) with a configuration-derived seed")
			}
			return true
		})
	}
}

// enclosingCall returns the CallExpr whose Fun is exactly sel, if any.
func enclosingCall(f *ast.File, sel *ast.SelectorExpr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			found = call
			return false
		}
		return true
	})
	return found
}

// isSeededSource reports whether expr is rand.NewSource(...) or
// rand.NewPCG(...) — an explicitly seeded source constructor.
func isSeededSource(p *Pass, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !isPkgSelector(p, sel, "math/rand") && !isPkgSelector(p, sel, "math/rand/v2") {
		return false
	}
	return sel.Sel.Name == "NewSource" || sel.Sel.Name == "NewPCG" ||
		sel.Sel.Name == "NewChaCha8"
}
