package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// srcPkg is one in-memory fixture package for call-graph tests.
type srcPkg struct {
	path string
	src  string
}

// buildPkgs parses and type-checks the fixture packages in order, sharing
// one importer so cross-package function objects are canonical — the
// property the call graph relies on to merge edges across packages.
func buildPkgs(t *testing.T, fset *token.FileSet, srcs []srcPkg) []*Package {
	t.Helper()
	imp := &moduleImporter{
		source:  importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}
	var pkgs []*Package
	for _, s := range srcs {
		f, err := parser.ParseFile(fset, s.path+"/fixture.go", s.src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		pkg := &Package{Path: s.path, Fset: fset, Files: []*ast.File{f}}
		if err := typeCheck(fset, pkg, imp); err != nil {
			t.Fatal(err)
		}
		imp.checked[s.path] = pkg.Pkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// nodeByName finds a call-graph node by its display name.
func nodeByName(t *testing.T, g *CallGraph, name string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	var names []string
	for _, n := range g.Nodes() {
		names = append(names, n.Name())
	}
	t.Fatalf("no node %q in graph; have: %s", name, strings.Join(names, ", "))
	return nil
}

// edgeTo reports whether from has an edge of the given kind to to.
func edgeTo(from, to *CGNode, kind EdgeKind) bool {
	for _, e := range from.Edges {
		if e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

func TestCallGraphMethodsAndLiterals(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := buildPkgs(t, fset, []srcPkg{{path: "repro/internal/cgfix", src: `package cgfix

type Box struct{ n int }

func (b *Box) Bump() { b.n++ }

func (b Box) Get() int { return b.n }

func Drive(b *Box) {
	b.Bump()
	_ = b.Get()
	f := func() { b.Bump() }
	f()
	handoff(b.Bump)
}

func handoff(f func()) { f() }
`}})
	g := BuildCallGraph(pkgs)

	drive := nodeByName(t, g, "cgfix.Drive")
	bump := nodeByName(t, g, "cgfix.(*Box).Bump")
	get := nodeByName(t, g, "cgfix.(Box).Get")
	lit := nodeByName(t, g, "cgfix.Drive$1")

	if !edgeTo(drive, bump, EdgeCall) {
		t.Error("Drive has no call edge to (*Box).Bump")
	}
	if !edgeTo(drive, get, EdgeCall) {
		t.Error("Drive has no call edge to (Box).Get")
	}
	// The literal is its own node with a ref edge from its parent, and
	// its body's call resolves from the literal, not from Drive.
	if !edgeTo(drive, lit, EdgeRef) {
		t.Error("Drive has no ref edge to its literal")
	}
	if !edgeTo(lit, bump, EdgeCall) {
		t.Error("literal has no call edge to (*Box).Bump")
	}
	if lit.Parent != drive {
		t.Error("literal's Parent is not Drive")
	}
	// b.Bump taken as a method value (not called) is a ref edge.
	found := false
	for _, e := range drive.Edges {
		if e.To == bump && e.Kind == EdgeRef {
			found = true
		}
	}
	if !found {
		t.Error("method value b.Bump produced no ref edge from Drive")
	}
}

func TestCallGraphExternalNodes(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := buildPkgs(t, fset, []srcPkg{{path: "repro/internal/cgfix", src: `package cgfix

import "strings"

func Up(s string) string { return strings.ToUpper(s) }
`}})
	g := BuildCallGraph(pkgs)
	up := nodeByName(t, g, "cgfix.Up")
	ext := nodeByName(t, g, "strings.ToUpper")
	if !ext.External() {
		t.Error("strings.ToUpper is not marked external")
	}
	if !edgeTo(up, ext, EdgeCall) {
		t.Error("Up has no call edge to strings.ToUpper")
	}
}

func TestCallGraphCrossPackage(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := buildPkgs(t, fset, []srcPkg{
		{path: "repro/internal/cglow", src: `package cglow

func Helper() int { return 1 }
`},
		{path: "repro/internal/cghigh", src: `package cghigh

import "repro/internal/cglow"

func Caller() int { return cglow.Helper() }
`},
	})
	g := BuildCallGraph(pkgs)
	caller := nodeByName(t, g, "cghigh.Caller")
	helper := nodeByName(t, g, "cglow.Helper")
	if helper.External() {
		t.Fatal("cglow.Helper resolved as external; the shared importer did not canonicalize the object")
	}
	if helper.Decl == nil {
		t.Fatal("cglow.Helper's edge target is not the declaration node")
	}
	if !edgeTo(caller, helper, EdgeCall) {
		t.Error("Caller has no cross-package call edge to cglow.Helper")
	}
}

func TestCallGraphIfaceOverApproximation(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := buildPkgs(t, fset, []srcPkg{{path: "repro/internal/cgfix", src: `package cgfix

type Runner interface{ Run() }

type A struct{}

func (A) Run() {}

type B struct{}

func (*B) Run() {}

type C struct{}

func (C) Walk() {}

func Dispatch(r Runner) { r.Run() }
`}})
	g := BuildCallGraph(pkgs)
	disp := nodeByName(t, g, "cgfix.Dispatch")
	aRun := nodeByName(t, g, "cgfix.(A).Run")
	bRun := nodeByName(t, g, "cgfix.(*B).Run")
	cWalk := nodeByName(t, g, "cgfix.(C).Walk")
	if !edgeTo(disp, aRun, EdgeIface) {
		t.Error("interface call has no iface edge to the value-receiver implementation A")
	}
	if !edgeTo(disp, bRun, EdgeIface) {
		t.Error("interface call has no iface edge to the pointer-receiver implementation *B")
	}
	for _, e := range disp.Edges {
		if e.To == cWalk {
			t.Error("interface call gained an edge to a non-implementing type's method")
		}
	}
}

func TestReachAndChain(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := buildPkgs(t, fset, []srcPkg{{path: "repro/internal/cgfix", src: `package cgfix

func a() { b() }

func b() { c() }

func c() {}

func direct() { c() }
`}})
	g := BuildCallGraph(pkgs)
	na := nodeByName(t, g, "cgfix.a")
	nb := nodeByName(t, g, "cgfix.b")
	nc := nodeByName(t, g, "cgfix.c")

	reach := g.Reach(func(n *CGNode) bool { return n == nc }, nil)
	if reach[na] == nil || reach[na].Dist != 2 {
		t.Fatalf("a's reach = %+v, want dist 2", reach[na])
	}
	if got := Chain(na, reach); got != "cgfix.a -> cgfix.b -> cgfix.c" {
		t.Errorf("Chain(a) = %q", got)
	}

	// A barrier on b cuts a's path and removes b itself.
	cut := g.Reach(func(n *CGNode) bool { return n == nc },
		func(n *CGNode) bool { return n == nb })
	if cut[na] != nil {
		t.Error("barrier on b did not cut a's reachability")
	}
	if cut[nb] != nil {
		t.Error("barrier node b still acquired reachability")
	}
	if cut[nodeByName(t, g, "cgfix.direct")] == nil {
		t.Error("direct caller of c lost reachability to an unrelated barrier")
	}
}

func TestReachableFrom(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := buildPkgs(t, fset, []srcPkg{{path: "repro/internal/cgfix", src: `package cgfix

func root() { mid() }

func mid() { leaf() }

func leaf() {}

func island() {}
`}})
	g := BuildCallGraph(pkgs)
	got := g.ReachableFrom([]*CGNode{nodeByName(t, g, "cgfix.root")})
	if !got[nodeByName(t, g, "cgfix.leaf")] {
		t.Error("leaf not reachable from root")
	}
	if got[nodeByName(t, g, "cgfix.island")] {
		t.Error("island spuriously reachable")
	}
}
