// Package lint implements simlint, a determinism and simulation-safety
// analyzer suite for this repository. The simulator's core guarantees —
// bit-identical parallel/serial sweep output, memoization keyed by
// canonical RunConfig fingerprints, and seeded fault injection — all
// rest on strict determinism conventions; simlint enforces them
// mechanically so they cannot rot under reviewer fatigue.
//
// The suite has five checks (see the per-check files for details):
//
//	wallclock    — no host time observation in simulator-facing packages
//	unseededrand — no global/unseeded math/rand in simulator-facing packages
//	maporder     — no order-sensitive work inside map iteration
//	rawconc      — no host concurrency in simulated-application code
//	fingerprint  — RunConfig memo keys cover every field, by value
//
// A diagnostic is suppressed by a comment on the flagged line or the
// line directly above it:
//
//	//lint:allow simlint/<check> <reason>
//
// The reason is mandatory: a suppression documents why the flagged
// construct is deterministic anyway (or host-facing by design).
//
// simlint is stdlib-only: packages are parsed with go/parser and
// type-checked with go/types, resolving stdlib imports from source.
package lint
