package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestFixtures runs each check over its testdata fixture package and
// compares the diagnostics against the fixture's //want annotations:
// a line expecting diagnostics carries `//want <check> [<check> ...]`.
// Every fixture both fires (annotated lines) and stays silent
// (unannotated constructs, suppressed lines, out-of-scope runs).
func TestFixtures(t *testing.T) {
	cases := []struct {
		name    string
		dir     string
		pkgPath string
		checks  []*Check
		// ignoreWants re-runs a fixture under a package path where the
		// check must not apply: every annotation must stay silent.
		ignoreWants bool
	}{
		{name: "wallclock", dir: "wallclock", pkgPath: "repro/internal/machine/fixture", checks: []*Check{WallclockCheck}},
		{name: "wallclock-out-of-scope", dir: "wallclock", pkgPath: "repro/internal/figures/fixture", checks: []*Check{WallclockCheck}, ignoreWants: true},
		// The metrics/span collectors run inside the simulation: obs is a
		// sim scope and the wallclock check fires there.
		{name: "wallclock-obs", dir: "wallclock", pkgPath: "repro/internal/obs/fixture", checks: []*Check{WallclockCheck}},
		// The runlog/heartbeat telemetry sinks measure host wall time by
		// design; they live in internal/core, which must stay out of scope.
		{name: "wallclock-runlog-host-side", dir: "wallclock", pkgPath: "repro/internal/core/fixture", checks: []*Check{WallclockCheck}, ignoreWants: true},
		{name: "unseededrand", dir: "unseededrand", pkgPath: "repro/internal/workload/fixture", checks: []*Check{UnseededRandCheck}},
		{name: "unseededrand-out-of-scope", dir: "unseededrand", pkgPath: "repro/cmd/fixture", checks: []*Check{UnseededRandCheck}, ignoreWants: true},
		{name: "maporder", dir: "maporder", pkgPath: "repro/internal/figures/fixture", checks: []*Check{MapOrderCheck}},
		{name: "rawconc", dir: "rawconc", pkgPath: "repro/internal/apps/fixture", checks: []*Check{RawConcCheck}},
		{name: "rawconc-psync", dir: "rawconc", pkgPath: "repro/internal/psync", checks: []*Check{RawConcCheck}},
		{name: "rawconc-out-of-scope", dir: "rawconc", pkgPath: "repro/internal/sim", checks: []*Check{RawConcCheck}, ignoreWants: true},
		// The sharded engine's barrier idiom (worker goroutines, epoch
		// atomics, park channels) is sanctioned inside internal/sim — the
		// group owns host scheduling — but must fire in application code.
		{name: "rawconc-shard-app", dir: "rawconc_shard", pkgPath: "repro/internal/apps/fixture", checks: []*Check{RawConcCheck}},
		{name: "rawconc-shard-sim", dir: "rawconc_shard", pkgPath: "repro/internal/sim", checks: []*Check{RawConcCheck}, ignoreWants: true},
		{name: "fingerprint-good", dir: "fingerprint_good", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-missing-field", dir: "fingerprint_missing_field", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-reference-fields", dir: "fingerprint_reference", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-absent", dir: "fingerprint_absent", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-absent-elsewhere", dir: "fingerprint_absent", pkgPath: "repro/internal/model", checks: []*Check{FingerprintCheck}, ignoreWants: true},
		{name: "intmath", dir: "intmath", pkgPath: "repro/internal/sim/fixture", checks: []*Check{IntMathCheck}},
		// Float math is fine outside the machine model: apps compute on
		// simulated data and figures post-process results.
		{name: "intmath-out-of-scope", dir: "intmath", pkgPath: "repro/internal/figures/fixture", checks: []*Check{IntMathCheck}, ignoreWants: true},
		{name: "serialonly-good", dir: "serialonly_good", pkgPath: "repro/internal/machine/fixture", checks: []*Check{SerialOnlyCheck}},
		{name: "serialonly-bad", dir: "serialonly_bad", pkgPath: "repro/internal/machine/fixture", checks: []*Check{SerialOnlyCheck}},
		{name: "serialonly-no-manifest", dir: "serialonly_nomanifest", pkgPath: "repro/internal/machine/fixture", checks: []*Check{SerialOnlyCheck}},
		{name: "serialonly-no-gate", dir: "serialonly_nogate", pkgPath: "repro/internal/machine/fixture", checks: []*Check{SerialOnlyCheck}},
		// A Config outside internal/machine is someone else's business.
		{name: "serialonly-out-of-scope", dir: "serialonly_bad", pkgPath: "repro/internal/core/fixture", checks: []*Check{SerialOnlyCheck}, ignoreWants: true},
		{name: "shardsafe", dir: "shardsafe", pkgPath: "repro/internal/mem/fixture", checks: []*Check{ShardSafeCheck}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			fset := token.NewFileSet()
			files, wants := parseFixture(t, fset, dir, tc.ignoreWants)
			diags, err := CheckPackage(fset, tc.pkgPath, files, tc.checks)
			if err != nil {
				t.Fatalf("CheckPackage: %v", err)
			}
			got := make(map[string][]string)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				got[key] = append(got[key], d.Check)
			}
			for key, names := range got {
				sort.Strings(names)
				if want := wants[key]; !equalStrings(names, want) {
					t.Errorf("%s: got %v, want %v", key, names, want)
				}
			}
			for key, names := range wants {
				if _, ok := got[key]; !ok {
					t.Errorf("%s: missing expected diagnostics %v", key, names)
				}
			}
		})
	}
}

// parseFixture parses every fixture file in dir and collects its //want
// annotations as "file:line" -> sorted check names.
func parseFixture(t *testing.T, fset *token.FileSet, dir string, ignoreWants bool) ([]*ast.File, map[string][]string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	wants := make(map[string][]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		if ignoreWants {
			continue
		}
		for i, line := range strings.Split(string(src), "\n") {
			_, rest, ok := strings.Cut(line, "//want ")
			if !ok {
				continue
			}
			names := strings.Fields(rest)
			sort.Strings(names)
			wants[fmt.Sprintf("%s:%d", e.Name(), i+1)] = names
		}
	}
	return files, wants
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCallPathFixture runs the interprocedural callpath check over a
// four-package fixture module: a host helper package (clock, global
// rand, goroutine spawn), a sim-engine package whose concurrency is
// sanctioned, a machine-like sim package, and an application package.
// Cross-package boundary blame, direct-call deferral to the syntactic
// checks, and the engine barrier are all only observable with more than
// one package, which is why this does not fit the TestFixtures harness.
func TestCallPathFixture(t *testing.T) {
	specs := []struct{ dir, path string }{
		{dir: "callpath_host", path: "repro/internal/hostfix"},
		{dir: "callpath_engine", path: "repro/internal/sim/fixture"},
		{dir: "callpath_sim", path: "repro/internal/machine/fixture"},
		{dir: "callpath_app", path: "repro/internal/apps/fixture"},
	}
	fset := token.NewFileSet()
	imp := &moduleImporter{
		source:  importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}
	var pkgs []*Package
	wants := make(map[string][]string)
	for _, s := range specs {
		dir := filepath.Join("testdata", "src", s.dir)
		files, w := parseFixture(t, fset, dir, false)
		for k, v := range w {
			wants[k] = v
		}
		pkg := &Package{Path: s.path, Fset: fset, Files: files}
		if err := typeCheck(fset, pkg, imp); err != nil {
			t.Fatalf("type-checking %s: %v", s.path, err)
		}
		imp.checked[s.path] = pkg.Pkg
		pkgs = append(pkgs, pkg)
	}
	diags := Run(pkgs, []*Check{CallPathCheck})
	got := make(map[string][]string)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = append(got[key], d.Check)
	}
	for key, names := range got {
		sort.Strings(names)
		if want := wants[key]; !equalStrings(names, want) {
			t.Errorf("%s: got %v, want %v", key, names, want)
		}
	}
	for key, names := range wants {
		if _, ok := got[key]; !ok {
			t.Errorf("%s: missing expected diagnostics %v", key, names)
		}
	}
	// The report must carry the full chain to the forbidden function.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "machfix.Stamp -> hostfix.NowMillis -> time.Now") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic carries the Stamp -> NowMillis -> time.Now chain:\n%v", diags)
	}
}

// TestSerialOnlyGuardDeletion is the check's reason to exist, exercised
// against the real module: delete the CrossTraffic guard from
// machine.Config.serialReason (the guard body tilingOK forwards to, and
// which the check's forward closure therefore covers) and serialonly
// must fail. Loading the whole module from source is slow, so the test
// is skipped under -short.
func TestSerialOnlyGuardDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module from source")
	}
	pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(pkgs, []*Check{SerialOnlyCheck}); len(diags) != 0 {
		t.Fatalf("real tree is not clean under serialonly before mutation:\n%v", diags)
	}

	// Find serialReason and cut the guard statement consulting CrossTraffic.
	var body *ast.BlockStmt
	for _, pkg := range pkgs {
		if pkg.Path != "repro/internal/machine" {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "serialReason" {
					body = fd.Body
				}
			}
		}
	}
	if body == nil {
		t.Fatal("no serialReason declaration found in repro/internal/machine")
	}
	mentions := func(st ast.Stmt, field string) bool {
		hit := false
		ast.Inspect(st, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == field {
				hit = true
			}
			return true
		})
		return hit
	}
	orig := body.List
	defer func() { body.List = orig }()
	kept := make([]ast.Stmt, 0, len(orig))
	cut := false
	for _, st := range orig {
		if !cut && mentions(st, "CrossTraffic") {
			cut = true
			continue
		}
		kept = append(kept, st)
	}
	if !cut {
		t.Fatal("serialReason has no statement consulting CrossTraffic; the fixture assumption broke")
	}
	body.List = kept

	diags := Run(pkgs, []*Check{SerialOnlyCheck})
	if len(diags) == 0 {
		t.Fatal("deleting the CrossTraffic guard from serialReason produced no serialonly diagnostic")
	}
	var hit bool
	for _, d := range diags {
		if strings.Contains(d.Message, "CrossTraffic") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no diagnostic names the unguarded CrossTraffic field:\n%v", diags)
	}
}

// TestStaleAllow checks the audit half of suppression handling: a
// well-formed allow that suppresses nothing is itself a diagnostic.
func TestStaleAllow(t *testing.T) {
	const src = `package fixture

func fine(a, b int) int {
	//lint:allow simlint/maporder nothing on this line ever fired
	return a + b
}

func covered(m map[int]int) []int {
	var out []int
	for k := range m {
		//lint:allow simlint/maporder order does not matter here
		out = append(out, k)
	}
	return out
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stale.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckPackage(fset, "repro/internal/figures/fixture", []*ast.File{f}, []*Check{MapOrderCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Check != "allow" ||
		!strings.Contains(diags[0].Message, "suppresses nothing") {
		t.Fatalf("want exactly one stale-allow diagnostic, got:\n%v", diags)
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("stale allow reported at line %d, want 4", diags[0].Pos.Line)
	}

	// The same stale allow is NOT reported when its check is deselected:
	// a -checks run says nothing about the others.
	none, err := CheckPackage(fset, "repro/internal/figures/fixture", []*ast.File{f}, []*Check{WallclockCheck})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("stale maporder allow reported under -checks wallclock:\n%v", none)
	}
}

// TestSuppressionValidation checks that malformed //lint:allow comments
// are themselves reported: a suppression may not silently fail to
// suppress.
func TestSuppressionValidation(t *testing.T) {
	const src = `package fixture

func a(m map[int]int) []int {
	var out []int
	//lint:allow simlint/maporder
	for k := range m {
		out = append(out, k)
	}
	return out
}

//lint:allow simlint/nosuchcheck because reasons
//lint:allow vet/printf wrong namespace
func b() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckPackage(fset, "repro/internal/figures/fixture", []*ast.File{f}, []*Check{MapOrderCheck})
	if err != nil {
		t.Fatal(err)
	}
	var allow, maporder int
	for _, d := range diags {
		switch d.Check {
		case "allow":
			allow++
		case "maporder":
			maporder++
		}
	}
	if allow != 3 {
		t.Errorf("got %d allow diagnostics, want 3 (missing reason, unknown check, wrong namespace):\n%v", allow, diags)
	}
	// The reasonless suppression must not suppress: the append inside
	// the map range still fires.
	if maporder != 1 {
		t.Errorf("got %d maporder diagnostics, want 1 (reasonless lint:allow must not suppress):\n%v", maporder, diags)
	}
}

// TestSelect covers the check-subset flag parsing.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Checks()) {
		t.Fatalf("Select(\"\") = %d checks, err %v", len(all), err)
	}
	two, err := Select("maporder, simlint/wallclock")
	if err != nil || len(two) != 2 || two[0].Name != "maporder" || two[1].Name != "wallclock" {
		t.Fatalf("Select subset = %v, err %v", two, err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(nosuch) did not error")
	}
}
