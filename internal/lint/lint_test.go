package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestFixtures runs each check over its testdata fixture package and
// compares the diagnostics against the fixture's //want annotations:
// a line expecting diagnostics carries `//want <check> [<check> ...]`.
// Every fixture both fires (annotated lines) and stays silent
// (unannotated constructs, suppressed lines, out-of-scope runs).
func TestFixtures(t *testing.T) {
	cases := []struct {
		name    string
		dir     string
		pkgPath string
		checks  []*Check
		// ignoreWants re-runs a fixture under a package path where the
		// check must not apply: every annotation must stay silent.
		ignoreWants bool
	}{
		{name: "wallclock", dir: "wallclock", pkgPath: "repro/internal/machine/fixture", checks: []*Check{WallclockCheck}},
		{name: "wallclock-out-of-scope", dir: "wallclock", pkgPath: "repro/internal/figures/fixture", checks: []*Check{WallclockCheck}, ignoreWants: true},
		// The metrics/span collectors run inside the simulation: obs is a
		// sim scope and the wallclock check fires there.
		{name: "wallclock-obs", dir: "wallclock", pkgPath: "repro/internal/obs/fixture", checks: []*Check{WallclockCheck}},
		// The runlog/heartbeat telemetry sinks measure host wall time by
		// design; they live in internal/core, which must stay out of scope.
		{name: "wallclock-runlog-host-side", dir: "wallclock", pkgPath: "repro/internal/core/fixture", checks: []*Check{WallclockCheck}, ignoreWants: true},
		{name: "unseededrand", dir: "unseededrand", pkgPath: "repro/internal/workload/fixture", checks: []*Check{UnseededRandCheck}},
		{name: "unseededrand-out-of-scope", dir: "unseededrand", pkgPath: "repro/cmd/fixture", checks: []*Check{UnseededRandCheck}, ignoreWants: true},
		{name: "maporder", dir: "maporder", pkgPath: "repro/internal/figures/fixture", checks: []*Check{MapOrderCheck}},
		{name: "rawconc", dir: "rawconc", pkgPath: "repro/internal/apps/fixture", checks: []*Check{RawConcCheck}},
		{name: "rawconc-psync", dir: "rawconc", pkgPath: "repro/internal/psync", checks: []*Check{RawConcCheck}},
		{name: "rawconc-out-of-scope", dir: "rawconc", pkgPath: "repro/internal/sim", checks: []*Check{RawConcCheck}, ignoreWants: true},
		// The sharded engine's barrier idiom (worker goroutines, epoch
		// atomics, park channels) is sanctioned inside internal/sim — the
		// group owns host scheduling — but must fire in application code.
		{name: "rawconc-shard-app", dir: "rawconc_shard", pkgPath: "repro/internal/apps/fixture", checks: []*Check{RawConcCheck}},
		{name: "rawconc-shard-sim", dir: "rawconc_shard", pkgPath: "repro/internal/sim", checks: []*Check{RawConcCheck}, ignoreWants: true},
		{name: "fingerprint-good", dir: "fingerprint_good", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-missing-field", dir: "fingerprint_missing_field", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-reference-fields", dir: "fingerprint_reference", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-absent", dir: "fingerprint_absent", pkgPath: "repro/internal/core", checks: []*Check{FingerprintCheck}},
		{name: "fingerprint-absent-elsewhere", dir: "fingerprint_absent", pkgPath: "repro/internal/model", checks: []*Check{FingerprintCheck}, ignoreWants: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			fset := token.NewFileSet()
			files, wants := parseFixture(t, fset, dir, tc.ignoreWants)
			diags, err := CheckPackage(fset, tc.pkgPath, files, tc.checks)
			if err != nil {
				t.Fatalf("CheckPackage: %v", err)
			}
			got := make(map[string][]string)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				got[key] = append(got[key], d.Check)
			}
			for key, names := range got {
				sort.Strings(names)
				if want := wants[key]; !equalStrings(names, want) {
					t.Errorf("%s: got %v, want %v", key, names, want)
				}
			}
			for key, names := range wants {
				if _, ok := got[key]; !ok {
					t.Errorf("%s: missing expected diagnostics %v", key, names)
				}
			}
		})
	}
}

// parseFixture parses every fixture file in dir and collects its //want
// annotations as "file:line" -> sorted check names.
func parseFixture(t *testing.T, fset *token.FileSet, dir string, ignoreWants bool) ([]*ast.File, map[string][]string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	wants := make(map[string][]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		if ignoreWants {
			continue
		}
		for i, line := range strings.Split(string(src), "\n") {
			_, rest, ok := strings.Cut(line, "//want ")
			if !ok {
				continue
			}
			names := strings.Fields(rest)
			sort.Strings(names)
			wants[fmt.Sprintf("%s:%d", e.Name(), i+1)] = names
		}
	}
	return files, wants
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSuppressionValidation checks that malformed //lint:allow comments
// are themselves reported: a suppression may not silently fail to
// suppress.
func TestSuppressionValidation(t *testing.T) {
	const src = `package fixture

func a(m map[int]int) []int {
	var out []int
	//lint:allow simlint/maporder
	for k := range m {
		out = append(out, k)
	}
	return out
}

//lint:allow simlint/nosuchcheck because reasons
//lint:allow vet/printf wrong namespace
func b() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := CheckPackage(fset, "repro/internal/figures/fixture", []*ast.File{f}, []*Check{MapOrderCheck})
	if err != nil {
		t.Fatal(err)
	}
	var allow, maporder int
	for _, d := range diags {
		switch d.Check {
		case "allow":
			allow++
		case "maporder":
			maporder++
		}
	}
	if allow != 3 {
		t.Errorf("got %d allow diagnostics, want 3 (missing reason, unknown check, wrong namespace):\n%v", allow, diags)
	}
	// The reasonless suppression must not suppress: the append inside
	// the map range still fires.
	if maporder != 1 {
		t.Errorf("got %d maporder diagnostics, want 1 (reasonless lint:allow must not suppress):\n%v", maporder, diags)
	}
}

// TestSelect covers the check-subset flag parsing.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Checks()) {
		t.Fatalf("Select(\"\") = %d checks, err %v", len(all), err)
	}
	two, err := Select("maporder, simlint/wallclock")
	if err != nil || len(two) != 2 || two[0].Name != "maporder" || two[1].Name != "wallclock" {
		t.Fatalf("Select subset = %v, err %v", two, err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(nosuch) did not error")
	}
}
