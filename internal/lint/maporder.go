package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderCheck flags `for range` over a map whose body does
// order-sensitive work: appending to slices, accumulating
// floating-point values, scheduling simulator events or messages, or
// writing output. Go randomizes map iteration order per process, so any
// of these makes two runs of the same configuration diverge — the exact
// failure mode the parallel sweep runner's bit-identical guarantee and
// the memoization cache cannot tolerate.
//
// The canonical safe idiom is recognized and stays silent: collect the
// keys into a slice and sort before doing the real work —
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Slice(keys, ...)          // or sort.Ints, slices.Sort, sortI32, ...
//	for _, k := range keys { ... }
//
// Order-insensitive bodies — integer counters, disjoint per-key writes —
// are not flagged.
var MapOrderCheck = &Check{
	Name:  "maporder",
	Doc:   "flag order-sensitive work (appends, float accumulation, event scheduling, output) inside map iteration",
	Scope: "every package",
	Run:   runMapOrder,
}

// scheduleNames are method names that schedule simulator events or
// inject messages; calling them in map order perturbs the event heap's
// tie-breaking and with it every downstream measurement.
var scheduleNames = map[string]bool{
	"Schedule": true, "Spawn": true, "SpawnAt": true, "SpawnNow": true,
	"Send": true, "SendBulk": true, "Post": true,
}

// outputNames are method names that emit output; emitting in map order
// makes generated figure data nondeterministic.
var outputNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		safe := safeCollectRanges(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(p, rs) || safe[rs] {
				return true
			}
			for _, h := range findHazards(p, rs.Body, safe) {
				p.Reportf(h.pos, "%s while iterating over a map (iteration order is randomized); collect and sort the keys first, or make the work order-insensitive", h.what)
			}
			return true
		})
	}
}

// isMapRange reports whether rs ranges over a map.
func isMapRange(p *Pass, rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// safeCollectRanges finds every map-range of the key-collection idiom:
// a body consisting solely of `s = append(s, key)` with the very next
// statement sorting s. These are the deterministic-by-construction
// loops the check must never flag.
func safeCollectRanges(p *Pass, f *ast.File) map[*ast.RangeStmt]bool {
	safe := make(map[*ast.RangeStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			rs, ok := stmt.(*ast.RangeStmt)
			if !ok || i+1 >= len(list) {
				continue
			}
			if target, ok := collectTarget(rs); ok && isSortOf(p, list[i+1], target) {
				safe[rs] = true
			}
		}
		return true
	})
	return safe
}

// collectTarget matches a range body of exactly `T = append(T, key)` —
// optionally wrapped in a single else-less if (filtered collection) —
// and returns T's source form. The appended value may be a conversion
// of the key.
func collectTarget(rs *ast.RangeStmt) (string, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || len(rs.Body.List) != 1 {
		return "", false
	}
	stmt := rs.Body.List[0]
	if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Else == nil && len(ifs.Body.List) == 1 {
		stmt = ifs.Body.List[0]
	}
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(call) || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return "", false
	}
	target := types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != target {
		return "", false
	}
	appended := call.Args[1]
	if conv, ok := appended.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		appended = conv.Args[0]
	}
	if id, ok := appended.(*ast.Ident); !ok || id.Name != key.Name {
		return "", false
	}
	return target, true
}

// isSortOf reports whether stmt is a sort call whose first argument is
// the collected slice: sort.*/slices.* or any local helper whose name
// starts with "sort" (sortI32, sortInt32, ...).
func isSortOf(p *Pass, stmt ast.Stmt, target string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) < 1 || types.ExprString(call.Args[0]) != target {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if isPkgSelector(p, fun, "sort") || isPkgSelector(p, fun, "slices") {
			return true
		}
		return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}

func isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// hazard is one order-sensitive operation inside a map-range body.
type hazard struct {
	pos  token.Pos
	what string
}

// findHazards scans a map-range body for every order-sensitive
// operation, skipping nested safe key-collection loops.
func findHazards(p *Pass, body *ast.BlockStmt, safe map[*ast.RangeStmt]bool) []hazard {
	var out []hazard
	add := func(pos token.Pos, what string) { out = append(out, hazard{pos, what}) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if safe[n] {
				return false // deterministic by construction
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if tv, ok := p.Info.Types[n.Lhs[0]]; ok && isFloat(tv.Type) {
					add(n.Pos(), "accumulates floating-point values")
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(n) {
				add(n.Pos(), "appends to a slice")
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				// Qualified identifiers (pkg.Func) only count for fmt
				// output; method calls count for scheduling and output.
				if _, isPkg := p.Info.Uses[firstIdent(sel.X)].(*types.PkgName); isPkg {
					if isPkgSelector(p, sel, "fmt") && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
						add(n.Pos(), "writes output")
					}
					return true
				}
				if scheduleNames[name] {
					add(n.Pos(), "schedules events or sends messages")
				} else if outputNames[name] {
					add(n.Pos(), "writes output")
				}
			}
		}
		return true
	})
	return out
}

// firstIdent returns expr as *ast.Ident, or nil.
func firstIdent(expr ast.Expr) *ast.Ident {
	id, _ := expr.(*ast.Ident)
	return id
}
