package figures

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

func TestWriteSweepCSV(t *testing.T) {
	pts := []core.SweepPoint{
		{X: 18, Results: map[apps.Mechanism]core.RunResult{
			apps.SM:     {Result: machine.Result{Cycles: 100}},
			apps.MPPoll: {Result: machine.Result{Cycles: 50}},
		}},
		{X: 2, Results: map[apps.Mechanism]core.RunResult{
			apps.SM:     {Result: machine.Result{Cycles: 150}},
			apps.MPPoll: {Result: machine.Result{Cycles: 60}},
		}},
	}
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, "bytes_per_cycle", []apps.Mechanism{apps.SM, apps.MPPoll}, pts); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d rows, want 3", len(records))
	}
	if records[0][0] != "bytes_per_cycle" || records[0][1] != "shared-memory_cycles" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "100" || records[2][2] != "60" {
		t.Errorf("values wrong: %v", records[1:])
	}
}

func TestWriteFig4CSVRoundTrips(t *testing.T) {
	rows, err := Fig4Data(core.ScaleTiny, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1+20 {
		t.Fatalf("got %d rows, want 21", len(records))
	}
	if len(records[0]) != 16 {
		t.Errorf("header has %d columns, want 16", len(records[0]))
	}
	// Column consistency: every data row parses numerically.
	for _, rec := range records[1:] {
		for _, col := range rec[2:] {
			if strings.TrimLeft(col, "0123456789") != "" {
				t.Fatalf("non-numeric cell %q in %v", col, rec)
			}
		}
	}
}

func TestWriteMissPenaltiesCSV(t *testing.T) {
	mp := core.MeasureMissPenalties(machine.DefaultConfig())
	var buf bytes.Buffer
	if err := WriteMissPenaltiesCSV(&buf, mp); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 12 {
		t.Errorf("got %d rows, want 12", len(records))
	}
}
