// Package figures regenerates every table and figure of the paper's
// evaluation as text: the Figure 3 cost table, the Figure 4 runtime
// breakdowns, the Figure 5 communication-volume breakdowns, the Figure 7
// cross-traffic message-length sensitivity, the Figure 8 bisection sweep,
// the Figure 9 clock-scaling sweep, the Figure 10 context-switch latency
// sweep, the Figure 1/2 region classifications derived from those sweeps,
// and Tables 1 and 2. Each generator returns the underlying data so tests
// and tools can assert on it.
package figures
