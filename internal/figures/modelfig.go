package figures

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// PrintModelComparison fits the Section 2 analytical model from two
// baseline runs and prints model-vs-simulated shared-memory runtimes
// across the latency sweep — the quantitative companion to the paper's
// conceptual Figure 2. It returns the worst model/simulated ratio.
func PrintModelComparison(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, lats []int64) (float64, error) {
	smRun, err := core.Run(core.RunConfig{App: app, Mech: apps.SM, Scale: sc,
		Machine: cfg, SkipValidate: true})
	if err != nil {
		return 0, err
	}
	mpRun, err := core.Run(core.RunConfig{App: app, Mech: apps.MPPoll, Scale: sc,
		Machine: cfg, SkipValidate: true})
	if err != nil {
		return 0, err
	}
	appP, machP, err := model.Fit(smRun, mpRun, cfg)
	if err != nil {
		return 0, err
	}

	fmt.Fprintf(w, "Analytical model vs simulator (%s, shared memory, latency sweep)\n", app)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "one-way cycles\tsimulated\tmodel\tmodel/sim\tmodel region")
	worst := 1.0
	for _, lat := range lats {
		c := cfg
		c.IdealNetOneWayCycles = lat
		simRun, err := core.Run(core.RunConfig{App: app, Mech: apps.SM, Scale: sc,
			Machine: c, SkipValidate: true})
		if err != nil {
			return 0, err
		}
		mp := machP
		mp.OneWayLatency = float64(lat)
		pred := model.Predict(appP, mp, model.SharedMemory)
		ratio := pred.Cycles / float64(simRun.Cycles)
		if ratio > worst || 1/ratio > worst {
			worst = ratio
			if 1/ratio > worst {
				worst = 1 / ratio
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.2f\t%s\n", lat, simRun.Cycles, pred.Cycles, ratio, pred.Region)
	}
	tw.Flush()
	return worst, nil
}

// PrintLogP measures and prints the machine's LogP parameters — the
// related-work framing (Martin et al.) the paper contrasts itself with.
func PrintLogP(w io.Writer, cfg machine.Config) core.LogP {
	lp := core.MeasureLogP(cfg)
	fmt.Fprintln(w, "LogP parameters of the simulated machine (cycles):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "L (latency)\t%.1f\n", lp.L)
	fmt.Fprintf(tw, "o (overhead)\t%.1f\n", lp.O)
	fmt.Fprintf(tw, "g (gap)\t%.1f\n", lp.G)
	fmt.Fprintf(tw, "P (processors)\t%d\n", lp.P)
	tw.Flush()
	fmt.Fprintln(w, "overhead-dominated (o, g >> L): latency-insensitive message passing,")
	fmt.Fprintln(w, "as the paper's EM3D results and Martin et al.'s LogP analysis agree.")
	return lp
}
