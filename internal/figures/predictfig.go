package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/model"
)

// growthOf reports the latency-tolerance growth target an options value
// resolves to (core applies the same default internally).
func growthOf(opt core.PredictOptions) float64 {
	if opt.GrowthTarget == 0 {
		return 0.10
	}
	return opt.GrowthTarget
}

// PrintPredictedSweep renders a predicted sweep: one row per
// (X, mechanism) with the dependency-graph prediction, the validating
// simulation where one ran (every point without pruning; the confirming
// subset with it), and the model's self-reported confidence. A summary
// line gives the measured error envelope and the pruning win, then the
// per-mechanism latency-tolerance metric.
func PrintPredictedSweep(w io.Writer, title, xlabel string, mechs []apps.Mechanism, ps *core.PredictedSweep, growth float64) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tmechanism\tpredicted\tsimulated\terr%%\tconf\n", xlabel)
	for _, pt := range ps.Points {
		for _, m := range mechs {
			pred, ok := pt.Pred[m]
			if !ok {
				continue
			}
			simCol, errCol := "-", "-"
			if sim, ok := pt.Sim[m]; ok && sim.Cycles > 0 {
				simCol = strconv.FormatInt(sim.Cycles, 10)
				errCol = fmt.Sprintf("%.1f", 100*math.Abs(float64(pred.Cycles)-float64(sim.Cycles))/float64(sim.Cycles))
			}
			fmt.Fprintf(tw, "%.1f\t%s\t%d\t%s\t%s\t%.2f\n",
				pt.X, m.Short(), pred.Cycles, simCol, errCol, pred.Confidence)
		}
	}
	tw.Flush()
	max, mean, n := ps.MaxErrorPct()
	fmt.Fprintf(w, "validated %d of %d mechanism-points: worst error %.1f%%, mean %.1f%%; %d simulations for the sweep (%d saved)\n",
		n, ps.Grid, max, mean, ps.Simulated, ps.Grid-ps.Simulated)
	fmt.Fprintf(w, "latency tolerance (one-way cycles at +%.0f%% runtime):", 100*growth)
	for _, m := range mechs {
		tol, ok := ps.Tolerance[m]
		if !ok {
			continue
		}
		if math.IsInf(tol, 1) {
			fmt.Fprintf(w, "  %s >10^6", m.Short())
		} else {
			fmt.Fprintf(w, "  %s %.0f", m.Short(), tol)
		}
	}
	fmt.Fprintln(w)
}

// WritePredictedCSV emits a predicted sweep as CSV: one row per
// (X, mechanism) with prediction, validating simulation (empty cells
// where pruning skipped it), error, and the model's confidence and
// estimated bisection utilization.
func WritePredictedCSV(w io.Writer, xlabel string, mechs []apps.Mechanism, ps *core.PredictedSweep) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		xlabel, "mechanism", "predicted_cycles", "simulated_cycles", "error_pct", "confidence", "rho",
	}); err != nil {
		return err
	}
	for _, pt := range ps.Points {
		for _, m := range mechs {
			pred, ok := pt.Pred[m]
			if !ok {
				continue
			}
			simCol, errCol := "", ""
			if sim, ok := pt.Sim[m]; ok && sim.Cycles > 0 {
				simCol = strconv.FormatInt(sim.Cycles, 10)
				errCol = strconv.FormatFloat(
					100*math.Abs(float64(pred.Cycles)-float64(sim.Cycles))/float64(sim.Cycles), 'f', 3, 64)
			}
			row := []string{
				strconv.FormatFloat(pt.X, 'f', 2, 64), m.String(),
				strconv.FormatInt(pred.Cycles, 10), simCol, errCol,
				strconv.FormatFloat(pred.Confidence, 'f', 4, 64),
				strconv.FormatFloat(pred.Rho, 'f', 4, 64),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// PredictedFig4 is one application's slice of the -fig 4 -predict
// validation matrix: the same base machine stressed along the two axes
// the paper sweeps, predicted from one instrumented run per mechanism.
type PredictedFig4 struct {
	App core.AppName
	// Clock is the Figure 9 axis (network latency+bandwidth via clock
	// scaling); Bisection the Figure 8 axis (cross-traffic eating cut
	// bandwidth).
	Clock, Bisection *core.PredictedSweep
}

// predFig4MhzFracs and predFig4Rates pin the validation matrix's grids:
// the base clock plus two slower clocks (raising relative network
// latency and cost), and three cross-traffic rates from an idle cut up
// to moderate load (u = 1/3). Heavier rates sit past the queueing
// model's honest range — their confidence drops below the pruning
// floor, so the -predict Figure 8 sweep validates them by simulation
// instead of holding them to the committed error bound.
var (
	predFig4MhzFracs = []float64{1.0, 0.8, 0.7}
	predFig4Rates    = []float64{0, 4, 6}
)

// PredFig4 runs the prediction validation matrix: for each application,
// a clock sweep and a bisection sweep predicted from one instrumented
// base run per mechanism, printed with their per-point errors and
// latency tolerances. It returns the per-app sweeps plus the aggregate
// error statistics over every validated mechanism-point.
func PredFig4(w io.Writer, appsToRun []core.AppName, sc core.Scale, cfg machine.Config, opt core.PredictOptions) ([]PredictedFig4, model.ErrorStats, error) {
	var (
		rows  []PredictedFig4
		stats model.ErrorStats
	)
	fmt.Fprintln(w, "Figure 4 (predicted): dependency-graph model vs simulation, per app and mechanism")
	for _, app := range appsToRun {
		mhzs := make([]float64, len(predFig4MhzFracs))
		for i, f := range predFig4MhzFracs {
			mhzs[i] = cfg.ClockMHz * f
		}
		clock, err := core.DefaultRunner.PredictedClockSweep(app, sc, apps.Mechanisms, cfg, mhzs, opt)
		if err != nil {
			return nil, stats, err
		}
		bisect, err := core.DefaultRunner.PredictedBisectionSweep(app, sc, apps.Mechanisms, cfg, predFig4Rates, 64, opt)
		if err != nil {
			return nil, stats, err
		}
		fmt.Fprintln(w)
		PrintPredictedSweep(w, fmt.Sprintf("[%s] clock axis (Figure 9 grid)", app),
			"net latency (cycles)", apps.Mechanisms, clock, growthOf(opt))
		PrintPredictedSweep(w, fmt.Sprintf("[%s] bisection axis (Figure 8 grid)", app),
			"bytes/cycle", apps.Mechanisms, bisect, growthOf(opt))
		rows = append(rows, PredictedFig4{App: app, Clock: clock, Bisection: bisect})
		for _, ps := range []*core.PredictedSweep{clock, bisect} {
			stats.Merge(sweepErrors(ps))
		}
	}
	fmt.Fprintf(w, "\nmatrix total: worst error %.1f%%, mean %.1f%% over %d validated mechanism-points\n",
		stats.MaxPct, stats.MeanPct(), stats.N)
	return rows, stats, nil
}

// sweepErrors folds a predicted sweep's validated points into ErrorStats.
func sweepErrors(ps *core.PredictedSweep) model.ErrorStats {
	var s model.ErrorStats
	for _, pt := range ps.Points {
		for mech, sim := range pt.Sim {
			if pred, ok := pt.Pred[mech]; ok {
				s.Add(float64(pred.Cycles), float64(sim.Cycles))
			}
		}
	}
	return s
}

// WritePredictedFig4CSV emits the validation matrix as CSV, both axes
// per app in one file.
func WritePredictedFig4CSV(w io.Writer, rows []PredictedFig4) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "axis", "x", "mechanism", "predicted_cycles", "simulated_cycles", "error_pct", "confidence", "rho",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, axis := range []struct {
			name string
			ps   *core.PredictedSweep
		}{{"clock", r.Clock}, {"bisection", r.Bisection}} {
			for _, pt := range axis.ps.Points {
				for _, m := range apps.Mechanisms {
					pred, ok := pt.Pred[m]
					if !ok {
						continue
					}
					simCol, errCol := "", ""
					if sim, ok := pt.Sim[m]; ok && sim.Cycles > 0 {
						simCol = strconv.FormatInt(sim.Cycles, 10)
						errCol = strconv.FormatFloat(
							100*math.Abs(float64(pred.Cycles)-float64(sim.Cycles))/float64(sim.Cycles), 'f', 3, 64)
					}
					if err := cw.Write([]string{
						string(r.App), axis.name,
						strconv.FormatFloat(pt.X, 'f', 2, 64), m.String(),
						strconv.FormatInt(pred.Cycles, 10), simCol, errCol,
						strconv.FormatFloat(pred.Confidence, 'f', 4, 64),
						strconv.FormatFloat(pred.Rho, 'f', 4, 64),
					}); err != nil {
						return err
					}
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLatencyToleranceCSV emits the latency-tolerance metric per
// (app, mechanism): the one-way network latency, in processor cycles,
// at which the model predicts runtime grows past the configured target.
// Mechanisms that never reach it at any plausible latency emit "inf".
func WriteLatencyToleranceCSV(w io.Writer, rows []PredictedFig4) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "mechanism", "tolerance_one_way_cycles"}); err != nil {
		return err
	}
	for _, r := range rows {
		for _, m := range apps.Mechanisms {
			tol, ok := r.Clock.Tolerance[m]
			if !ok {
				continue
			}
			col := "inf"
			if !math.IsInf(tol, 1) {
				col = strconv.FormatFloat(tol, 'f', 1, 64)
			}
			if err := cw.Write([]string{string(r.App), m.String(), col}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// PredFig8 is the predicted form of Figure 8 for one application: one
// instrumented run per mechanism, re-solved across the bisection grid,
// with the same crossover verdict the simulated figure prints (computed
// over the hybrid measured-where-validated curve).
func PredFig8(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, rates []float64, opt core.PredictOptions) (*core.PredictedSweep, error) {
	ps, err := core.DefaultRunner.PredictedBisectionSweep(app, sc, apps.Mechanisms, cfg, rates, 64, opt)
	if err != nil {
		return nil, err
	}
	PrintPredictedSweep(w, fmt.Sprintf("Figure 8 (%s, predicted): execution cycles vs bisection bandwidth", app),
		"bytes/cycle", apps.Mechanisms, ps, growthOf(opt))
	if x, ok := core.Crossover(ps.HybridPoints(), apps.SM, apps.MPPoll); ok {
		fmt.Fprintf(w, "SM / MP-poll crossover at ~%.1f bytes/cycle\n", x)
	} else {
		fmt.Fprintln(w, "no SM / MP-poll crossover in range")
	}
	return ps, nil
}

// PredFig9 is the predicted form of Figure 9 for one application.
func PredFig9(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, mhzs []float64, opt core.PredictOptions) (*core.PredictedSweep, error) {
	ps, err := core.DefaultRunner.PredictedClockSweep(app, sc, apps.Mechanisms, cfg, mhzs, opt)
	if err != nil {
		return nil, err
	}
	PrintPredictedSweep(w, fmt.Sprintf("Figure 9 (%s, predicted): execution cycles vs network latency (clock scaling)", app),
		"net latency (cycles)", apps.Mechanisms, ps, growthOf(opt))
	return ps, nil
}

// PredFig10 is the predicted form of Figure 10 for one application
// (message-passing curves are flat references, so their instrumented
// base runs stand at every point).
func PredFig10(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, lats []int64, opt core.PredictOptions) (*core.PredictedSweep, error) {
	ps, err := core.DefaultRunner.PredictedContextSwitchSweep(app, sc, apps.Mechanisms, cfg, lats, opt)
	if err != nil {
		return nil, err
	}
	PrintPredictedSweep(w, fmt.Sprintf("Figure 10 (%s, predicted): execution cycles vs emulated uniform latency", app),
		"one-way latency (cycles)", apps.Mechanisms, ps, growthOf(opt))
	return ps, nil
}

// PrintGraphVsClosedForm puts the two models side by side against
// simulation on the Figure 10 latency axis for shared memory: the
// fitted Section 2 closed form (which names the region) and the
// dependency-graph replay (which should win on magnitude). Returns the
// error statistics of each.
func PrintGraphVsClosedForm(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, lats []int64) (graphErr, closedErr model.ErrorStats, err error) {
	opt := core.PredictOptions{} // full validation: every point simulated
	ps, err := core.DefaultRunner.PredictedContextSwitchSweep(app, sc,
		[]apps.Mechanism{apps.SM}, cfg, lats, opt)
	if err != nil {
		return graphErr, closedErr, err
	}
	smRun, err := core.Run(core.RunConfig{App: app, Mech: apps.SM, Scale: sc,
		Machine: cfg, SkipValidate: true})
	if err != nil {
		return graphErr, closedErr, err
	}
	mpRun, err := core.Run(core.RunConfig{App: app, Mech: apps.MPPoll, Scale: sc,
		Machine: cfg, SkipValidate: true})
	if err != nil {
		return graphErr, closedErr, err
	}
	appP, machP, err := model.Fit(smRun, mpRun, cfg)
	if err != nil {
		return graphErr, closedErr, err
	}

	fmt.Fprintf(w, "Graph model vs closed form (%s, shared memory, latency sweep)\n", app)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "one-way cycles\tsimulated\tgraph\tgraph err%\tclosed form\tclosed err%\tregion")
	for i, lat := range lats {
		sim, ok := ps.Points[i].Sim[apps.SM]
		if !ok || sim.Cycles == 0 {
			continue
		}
		graph := ps.Points[i].Pred[apps.SM]
		mp := machP
		mp.OneWayLatency = float64(lat)
		closed := model.Predict(appP, mp, model.SharedMemory)
		graphErr.Add(float64(graph.Cycles), float64(sim.Cycles))
		closedErr.Add(closed.Cycles, float64(sim.Cycles))
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.0f\t%.1f\t%s\n",
			lat, sim.Cycles, graph.Cycles,
			100*math.Abs(float64(graph.Cycles)-float64(sim.Cycles))/float64(sim.Cycles),
			closed.Cycles,
			100*math.Abs(closed.Cycles-float64(sim.Cycles))/float64(sim.Cycles),
			closed.Region)
	}
	tw.Flush()
	fmt.Fprintf(w, "graph model: worst %.1f%% mean %.1f%%;  closed form: worst %.1f%% mean %.1f%%\n",
		graphErr.MaxPct, graphErr.MeanPct(), closedErr.MaxPct, closedErr.MeanPct())
	return graphErr, closedErr, nil
}
