package figures

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

// FigS1 runs and prints the node-scaling experiment for one application
// — the reproduction's extrapolation of the paper's central question
// (how mechanism rankings shift with bandwidth and latency) to machine
// sizes the paper never built. Two sweeps per app:
//
//   - fixed problem (strong scaling): the scale's workload cut into
//     more pieces, so per-node work shrinks while hop counts and
//     bisection stress grow;
//   - scaled problem (weak scaling): workload grown proportionally to
//     the node count, holding per-node work at its 32-node value.
//
// Speedup is each mechanism's 32-node runtime over its runtime at N
// nodes (so every curve starts at 1.00 and strong-scaling curves that
// flatten or invert expose the communication bottleneck). Node counts
// whose workload cannot be partitioned that finely print "-" and are
// skipped by the crossover scan.
func FigS1(w io.Writer, app core.AppName, sc core.Scale, base machine.Config, nodeCounts []int) (fixed, scaled []core.SweepPoint, err error) {
	fixed, err = core.NodeScalingSweep(app, sc, apps.Mechanisms, base, nodeCounts, false)
	if err != nil {
		return nil, nil, err
	}
	scaled, err = core.NodeScalingSweep(app, sc, apps.Mechanisms, base, nodeCounts, true)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "Figure S1 (%s): mechanism scaling with machine size (beyond the paper's 32 nodes)\n", app)
	printScaling(w, "fixed problem size (strong scaling)", apps.Mechanisms, fixed)
	printScaling(w, "scaled problem size (weak scaling)", apps.Mechanisms, scaled)
	for _, m := range []struct {
		name string
		pts  []core.SweepPoint
	}{{"fixed", fixed}, {"scaled", scaled}} {
		if x, ok := core.Crossover(m.pts, apps.SM, apps.MPPoll); ok {
			fmt.Fprintf(w, "SM / MP-poll crossover (%s) at ~%.0f nodes\n", m.name, x)
		} else {
			fmt.Fprintf(w, "no SM / MP-poll crossover (%s) in range\n", m.name)
		}
	}
	return fixed, scaled, nil
}

// printScaling renders one scaling sweep: cycles per mechanism per node
// count, then each mechanism's speedup relative to its own first
// measured point.
func printScaling(w io.Writer, title string, mechs []apps.Mechanism, pts []core.SweepPoint) {
	fmt.Fprintf(w, "-- %s --\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "nodes")
	for _, m := range mechs {
		fmt.Fprintf(tw, "\t%s", m.Short())
	}
	for _, m := range mechs {
		fmt.Fprintf(tw, "\t%s x", m.Short())
	}
	fmt.Fprintln(tw)
	for _, pt := range pts {
		fmt.Fprintf(tw, "%.0f", pt.X)
		for _, m := range mechs {
			if r, ok := pt.Results[m]; ok {
				fmt.Fprintf(tw, "\t%d", r.Cycles)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		for _, m := range mechs {
			if s, ok := Speedup(pts, m, pt); ok {
				fmt.Fprintf(tw, "\t%.2f", s)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Speedup returns mechanism m's runtime at its baseline (the sweep's
// first point that measured m) divided by its runtime at pt — >1 means
// faster than the baseline machine. ok=false when either point lacks m.
func Speedup(pts []core.SweepPoint, m apps.Mechanism, pt core.SweepPoint) (float64, bool) {
	r, ok := pt.Results[m]
	if !ok || r.Cycles == 0 {
		return 0, false
	}
	for _, p := range pts {
		if b, ok := p.Results[m]; ok {
			return float64(b.Cycles) / float64(r.Cycles), true
		}
	}
	return 0, false
}
