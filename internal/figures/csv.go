package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/stats"
)

// WriteSweepCSV emits a sweep as CSV: one row per X with runtime columns
// per mechanism — the machine-readable form of Figures 7-10.
func WriteSweepCSV(w io.Writer, xlabel string, mechs []apps.Mechanism, pts []core.SweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{xlabel}
	for _, m := range mechs {
		header = append(header, m.String()+"_cycles")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range pts {
		row := []string{strconv.FormatFloat(pt.X, 'f', 2, 64)}
		for _, m := range mechs {
			row = append(row, strconv.FormatInt(pt.Results[m].Cycles, 10))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV emits the Figure S1 node-scaling experiment as CSV:
// one row per (mode, node count) with cycles and per-mechanism speedup
// columns. Node counts a workload could not be partitioned for (e.g. a
// fixed tiny em3d graph on 512 nodes) emit empty cells rather than
// zeros, so downstream plots drop the point instead of plotting it.
func WriteScalingCSV(w io.Writer, mechs []apps.Mechanism, fixed, scaled []core.SweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"mode", "nodes"}
	for _, m := range mechs {
		header = append(header, m.String()+"_cycles")
	}
	for _, m := range mechs {
		header = append(header, m.String()+"_speedup")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, mode := range []struct {
		name string
		pts  []core.SweepPoint
	}{{"fixed", fixed}, {"scaled", scaled}} {
		for _, pt := range mode.pts {
			row := []string{mode.name, strconv.FormatFloat(pt.X, 'f', 0, 64)}
			for _, m := range mechs {
				if r, ok := pt.Results[m]; ok {
					row = append(row, strconv.FormatInt(r.Cycles, 10))
				} else {
					row = append(row, "")
				}
			}
			for _, m := range mechs {
				if s, ok := Speedup(mode.pts, m, pt); ok {
					row = append(row, strconv.FormatFloat(s, 'f', 4, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV emits the per-app/mechanism breakdown table as CSV.
func WriteFig4CSV(w io.Writer, rows []Fig4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "mechanism", "cycles",
		"sync_cycles", "msg_overhead_cycles", "mem_ni_wait_cycles", "compute_cycles",
		"volume_total", "volume_invalidates", "volume_requests", "volume_headers", "volume_data",
		"remote_misses", "messages_sent", "interrupts", "polls",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		bd := r.Res.Breakdown
		v := r.Res.Volume
		ev := r.Res.Events
		// Breakdown times are picoseconds; emit as-is (consumers can
		// divide by the clock period) plus the headline cycles.
		row := []string{
			string(r.App), r.Res.Mech.String(),
			strconv.FormatInt(r.Res.Cycles, 10),
			strconv.FormatInt(int64(bd.T[stats.BucketSync]), 10),
			strconv.FormatInt(int64(bd.T[stats.BucketMsgOverhead]), 10),
			strconv.FormatInt(int64(bd.T[stats.BucketMemWait]), 10),
			strconv.FormatInt(int64(bd.T[stats.BucketCompute]), 10),
			strconv.FormatInt(v.Total(), 10),
			strconv.FormatInt(v.Bytes[stats.VolInvalidates], 10),
			strconv.FormatInt(v.Bytes[stats.VolRequests], 10),
			strconv.FormatInt(v.Bytes[stats.VolHeaders], 10),
			strconv.FormatInt(v.Bytes[stats.VolData], 10),
			strconv.FormatInt(ev.RemoteMisses(), 10),
			strconv.FormatInt(ev.MessagesSent, 10),
			strconv.FormatInt(ev.Interrupts, 10),
			strconv.FormatInt(ev.Polls, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCritPathCSV emits the critical-path attribution per figure point:
// one row per (app, mechanism) with the critical (last-finishing)
// processor, its total cycles, and the exhaustive five-way cause split
// (the five category columns sum to total_cycles by construction). Rows
// whose run was not profiled (machine.Config.CritPath unset) are
// skipped. net_latency_share is the headline sensitivity number: the
// fraction of the critical path spent on uncongested message flight.
func WriteCritPathCSV(w io.Writer, rows []Fig4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "mechanism", "crit_node", "total_cycles",
		"compute", "mem_stall", "net_latency", "net_bandwidth", "sync",
		"net_latency_share",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		cp := r.Res.CritPath
		if cp == nil {
			continue
		}
		share := 0.0
		if cp.TotalCycles > 0 {
			share = float64(cp.NetLatency) / float64(cp.TotalCycles)
		}
		row := []string{
			string(r.App), r.Res.Mech.String(),
			strconv.Itoa(cp.Node),
			strconv.FormatInt(cp.TotalCycles, 10),
			strconv.FormatInt(cp.Compute, 10),
			strconv.FormatInt(cp.MemStall, 10),
			strconv.FormatInt(cp.NetLatency, 10),
			strconv.FormatInt(cp.NetBandwidth, 10),
			strconv.FormatInt(cp.Sync, 10),
			strconv.FormatFloat(share, 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMissPenaltiesCSV emits the Figure 3 microbenchmark results.
func WriteMissPenaltiesCSV(w io.Writer, mp core.MissPenalties) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"operation", "measured_cycles", "paper_cycles"}); err != nil {
		return err
	}
	rows := [][3]string{
		{"local_read", f(mp.LocalRead), "11"},
		{"remote_clean_read", f(mp.RemoteCleanRead), "40"},
		{"remote_dirty_read_3party", f(mp.RemoteDirtyRead), "63"},
		{"limitless_read", f(mp.LimitLESSRead), "425"},
		{"local_write", f(mp.LocalWrite), "12"},
		{"remote_clean_write", f(mp.RemoteCleanWrite), "39"},
		{"remote_inval_write", f(mp.RemoteInvalWrite), "55"},
		{"remote_dirty_write_3party", f(mp.RemoteDirtyWrite), "75"},
		{"limitless_write", f(mp.LimitLESSWrite), "707"},
		{"null_active_message", f(mp.NullAMCycles), "102"},
		{"net_latency_24B", f(mp.NetLatency24), "15"},
	}
	for _, r := range rows {
		if err := cw.Write(r[:]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.1f", v) }
