package figures

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Fig4Row is one bar of Figure 4.
type Fig4Row struct {
	App core.AppName
	Res core.RunResult
}

// Fig4Data runs all four applications under all five mechanisms on the
// base machine. The 20 runs execute on core.DefaultRunner's worker pool;
// row order matches the serial nesting (app-major, mechanism-minor).
func Fig4Data(sc core.Scale, cfg machine.Config) ([]Fig4Row, error) {
	var jobs []core.RunConfig
	for _, app := range core.AppNames {
		for _, mech := range apps.Mechanisms {
			jobs = append(jobs, core.RunConfig{App: app, Mech: mech, Scale: sc, Machine: cfg})
		}
	}
	results, err := core.DefaultRunner.RunBatch(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4Row, len(results))
	for i, r := range results {
		rows[i] = Fig4Row{App: jobs[i].App, Res: r}
	}
	return rows, nil
}

// PrintFig4 renders the runtime breakdown summary (the paper plots
// stacked bars; we print cycles and percentage splits).
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: Summary of Performance on Alewife")
	fmt.Fprintln(w, "(execution time in processor cycles; breakdown percentages of total processor time)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tmechanism\tcycles\trel\tsync%\tmsg-ovh%\tmem+ni%\tcompute%")
	var base int64
	for _, row := range rows {
		if row.Res.Mech == apps.SM {
			base = row.Res.Cycles
		}
		bd := row.Res.Breakdown
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			row.App, row.Res.Mech, row.Res.Cycles,
			float64(row.Res.Cycles)/float64(base),
			100*bd.Frac(stats.BucketSync),
			100*bd.Frac(stats.BucketMsgOverhead),
			100*bd.Frac(stats.BucketMemWait),
			100*bd.Frac(stats.BucketCompute))
	}
	tw.Flush()
}

// PrintCritPath renders the critical-path attribution for Figure 4's
// runs: which processor finished last, and where its cycles went. The
// interesting columns are the two network shares — net-lat is time the
// path waited on uncongested message flight (irreducible at a given
// HopLatency), net-bw the serialization/queueing/occupancy remainder —
// because they separate the latency sensitivity the paper measures from
// the bandwidth sensitivity.
func PrintCritPath(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Critical path: last-finishing processor's cycles by cause")
	fmt.Fprintln(w, "(percentages of that processor's total; categories are exhaustive and sum to 100)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tmechanism\tnode\tcycles\tcompute%\tmem%\tnet-lat%\tnet-bw%\tsync%")
	for _, row := range rows {
		cp := row.Res.CritPath
		if cp == nil {
			continue
		}
		pct := func(v int64) float64 {
			if cp.TotalCycles == 0 {
				return 0
			}
			return 100 * float64(v) / float64(cp.TotalCycles)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.0f\t%.0f\t%.1f\t%.1f\t%.0f\n",
			row.App, row.Res.Mech, cp.Node, cp.TotalCycles,
			pct(cp.Compute), pct(cp.MemStall), pct(cp.NetLatency), pct(cp.NetBandwidth), pct(cp.Sync))
	}
	tw.Flush()
}

// Fig5Data reuses Figure 4 runs' volume accounting.
type Fig5Row = Fig4Row

// PrintFig5 renders the communication-volume breakdowns.
func PrintFig5(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 5: Communication volume by mechanism")
	fmt.Fprintln(w, "(bytes injected into the network, by protocol component)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tmechanism\ttotal\tx-SM\tinval\treq\thdrs\tdata")
	var smTotal int64
	for _, row := range rows {
		v := row.Res.Volume
		if row.Res.Mech == apps.SM {
			smTotal = v.Total()
		}
		rel := float64(v.Total()) / float64(smTotal)
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%d\t%d\t%d\t%d\n",
			row.App, row.Res.Mech, v.Total(), rel,
			v.Bytes[stats.VolInvalidates], v.Bytes[stats.VolRequests],
			v.Bytes[stats.VolHeaders], v.Bytes[stats.VolData])
	}
	tw.Flush()
}

// PrintFig3 renders the measured miss penalties against the paper's.
func PrintFig3(w io.Writer, cfg machine.Config) core.MissPenalties {
	mp := core.MeasureMissPenalties(cfg)
	fmt.Fprintln(w, "Figure 3 (cost table): shared-memory penalties, measured vs paper")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "operation\tmeasured (cycles)\tpaper (cycles)")
	rows := []struct {
		name  string
		got   float64
		paper string
	}{
		{"local read miss", mp.LocalRead, "11"},
		{"remote clean read", mp.RemoteCleanRead, "38-42"},
		{"remote dirty read (3-party)", mp.RemoteDirtyRead, "63"},
		{"LimitLESS sw read", mp.LimitLESSRead, "425"},
		{"local write miss", mp.LocalWrite, "12"},
		{"remote clean write", mp.RemoteCleanWrite, "38-40"},
		{"remote write, 1 inval", mp.RemoteInvalWrite, "43-66"},
		{"remote dirty write (3-party)", mp.RemoteDirtyWrite, "66-84"},
		{"LimitLESS sw write", mp.LimitLESSWrite, "707"},
		{"null active message", mp.NullAMCycles, "102 + 0.8/hop"},
		{"one-way 24B network latency", mp.NetLatency24, "15"},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%s\n", r.name, r.got, r.paper)
	}
	tw.Flush()
	return mp
}

// PrintSweep renders a sweep as one series per mechanism (the paper's
// line plots), with runtime in cycles.
func PrintSweep(w io.Writer, title, xlabel string, mechs []apps.Mechanism, pts []core.SweepPoint) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, m := range mechs {
		fmt.Fprintf(tw, "\t%s", m.Short())
	}
	fmt.Fprintln(tw)
	for _, pt := range pts {
		fmt.Fprintf(tw, "%.1f", pt.X)
		for _, m := range mechs {
			fmt.Fprintf(tw, "\t%d", pt.Results[m].Cycles)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Fig8 runs and prints the bisection sweep for one application.
func Fig8(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, rates []float64) ([]core.SweepPoint, error) {
	pts, err := core.BisectionSweep(app, sc, apps.Mechanisms, cfg, rates, 64)
	if err != nil {
		return nil, err
	}
	PrintSweep(w, fmt.Sprintf("Figure 8 (%s): execution cycles vs bisection bandwidth", app),
		"bytes/cycle", apps.Mechanisms, pts)
	if x, ok := core.Crossover(pts, apps.SM, apps.MPPoll); ok {
		fmt.Fprintf(w, "SM / MP-poll crossover at ~%.1f bytes/cycle\n", x)
	} else {
		fmt.Fprintln(w, "no SM / MP-poll crossover in range")
	}
	return pts, nil
}

// Fig9 runs and prints the clock-scaling sweep for one application.
func Fig9(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, mhzs []float64) ([]core.SweepPoint, error) {
	pts, err := core.ClockSweep(app, sc, apps.Mechanisms, cfg, mhzs)
	if err != nil {
		return nil, err
	}
	PrintSweep(w, fmt.Sprintf("Figure 9 (%s): execution cycles vs network latency (clock scaling)", app),
		"net latency (cycles)", apps.Mechanisms, pts)
	return pts, nil
}

// Fig10 runs and prints the context-switch latency emulation for one
// application (message-passing curves are fixed references).
func Fig10(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, lats []int64) ([]core.SweepPoint, error) {
	pts, err := core.ContextSwitchSweep(app, sc, apps.Mechanisms, cfg, lats)
	if err != nil {
		return nil, err
	}
	PrintSweep(w, fmt.Sprintf("Figure 10 (%s): execution cycles vs emulated uniform latency", app),
		"one-way latency (cycles)", apps.Mechanisms, pts)
	return pts, nil
}

// Fig7 runs and prints the cross-traffic message-length sensitivity.
func Fig7(w io.Writer, app core.AppName, sc core.Scale, cfg machine.Config, rate float64, sizes []int) ([]core.SweepPoint, error) {
	pts, err := core.MsgLenSweep(app, sc, apps.SM, cfg, rate, sizes)
	if err != nil {
		return nil, err
	}
	PrintSweep(w, fmt.Sprintf("Figure 7 (%s): sensitivity to cross-traffic message length (%.0f bytes/cycle consumed)", app, rate),
		"msg bytes", []apps.Mechanism{apps.SM}, pts)
	return pts, nil
}

// Fig1 classifies the regions of a bisection sweep (the measured version
// of the paper's conceptual Figure 1). Bisection sweeps already run in
// decreasing-bandwidth order, which is increasing stress — classify them
// as given.
func Fig1(w io.Writer, pts []core.SweepPoint, mechs []apps.Mechanism) {
	fmt.Fprintln(w, "Figure 1 (measured): performance regions as bisection bandwidth decreases")
	printRegions(w, pts, mechs)
}

// Fig2 classifies the regions of a latency sweep (the measured version of
// the paper's conceptual Figure 2).
func Fig2(w io.Writer, pts []core.SweepPoint, mechs []apps.Mechanism) {
	fmt.Fprintln(w, "Figure 2 (measured): performance regions as network latency increases")
	printRegions(w, pts, mechs)
}

func printRegions(w io.Writer, pts []core.SweepPoint, mechs []apps.Mechanism) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, m := range mechs {
		regions := core.ClassifyRegions(pts, m)
		fmt.Fprintf(tw, "%s", m)
		for _, r := range regions {
			fmt.Fprintf(tw, "\t%s", r)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
