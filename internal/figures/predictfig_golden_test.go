package figures

import (
	"bytes"
	"encoding/csv"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/predict"
)

// updateGolden rewrites the CSV golden files instead of comparing:
//
//	go test ./internal/figures -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// handBuiltSweep is a tiny PredictedSweep with every cell shape the CSV
// writers must handle: an exact base point, a validated off-base point,
// a pruned (prediction-only) cell, and an infinite latency tolerance.
func handBuiltSweep() *core.PredictedSweep {
	sim := func(mech apps.Mechanism, cycles int64) core.RunResult {
		var rr core.RunResult
		rr.Mech = mech
		rr.Cycles = cycles
		return rr
	}
	return &core.PredictedSweep{
		Points: []core.PredictedPoint{
			{
				X: 15,
				Pred: map[apps.Mechanism]predict.Prediction{
					apps.SM:     {Cycles: 1000, Confidence: 1, Rho: 0.25},
					apps.MPPoll: {Cycles: 1100, Confidence: 0.9, Rho: 0.5},
				},
				Sim: map[apps.Mechanism]core.RunResult{
					apps.SM:     sim(apps.SM, 1000),
					apps.MPPoll: sim(apps.MPPoll, 1100),
				},
			},
			{
				X: 50,
				Pred: map[apps.Mechanism]predict.Prediction{
					apps.SM:     {Cycles: 1400, Confidence: 0.62, Rho: 0.8},
					apps.MPPoll: {Cycles: 1150, Confidence: 0.9, Rho: 0.5},
				},
				// MP-poll was pruned at this point: prediction stands alone.
				Sim: map[apps.Mechanism]core.RunResult{
					apps.SM: sim(apps.SM, 1450),
				},
			},
		},
		Base: map[apps.Mechanism]core.RunResult{
			apps.SM:     sim(apps.SM, 1000),
			apps.MPPoll: sim(apps.MPPoll, 1100),
		},
		Tolerance: map[apps.Mechanism]float64{
			apps.SM:     37.5,
			apps.MPPoll: math.Inf(1),
		},
		Grid:      4,
		Simulated: 3,
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file:\ngot:\n%s\nwant:\n%s\n(run with -update if the schema change is intended)",
			name, got, want)
	}
}

// TestWritePredictedCSVGolden pins the per-figure predicted CSV schema
// byte for byte, plus the structural invariants downstream plots rely
// on: the header names, one row per (X, mechanism), and empty — not
// zero — simulated/error cells where pruning skipped the validation.
func TestWritePredictedCSVGolden(t *testing.T) {
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	var buf bytes.Buffer
	if err := WritePredictedCSV(&buf, "one_way_latency_cycles", mechs, handBuiltSweep()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "predicted_golden.csv", buf.Bytes())

	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"one_way_latency_cycles", "mechanism", "predicted_cycles",
		"simulated_cycles", "error_pct", "confidence", "rho"}
	if !reflect.DeepEqual(recs[0], wantHeader) {
		t.Errorf("header = %v, want %v", recs[0], wantHeader)
	}
	if len(recs) != 1+4 {
		t.Fatalf("%d rows for a 2x2 sweep, want header + 4", len(recs))
	}
	for _, rec := range recs[1:] {
		if rec[1] == apps.MPPoll.String() && rec[0] == "50.00" {
			if rec[3] != "" || rec[4] != "" {
				t.Errorf("pruned cell carries simulated/error values %q/%q, want empty", rec[3], rec[4])
			}
		} else if rec[3] == "" {
			t.Errorf("validated row %v has an empty simulated cell", rec)
		}
	}
}

// TestWritePredictedFig4CSVGolden pins the validation-matrix and
// latency-tolerance CSV schemas.
func TestWritePredictedFig4CSVGolden(t *testing.T) {
	rows := []PredictedFig4{{App: core.EM3D, Clock: handBuiltSweep(), Bisection: handBuiltSweep()}}
	var buf bytes.Buffer
	if err := WritePredictedFig4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "predicted_fig4_golden.csv", buf.Bytes())

	buf.Reset()
	if err := WriteLatencyToleranceCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "predicted_tolerance_golden.csv", buf.Bytes())
	if !strings.Contains(buf.String(), ",inf\n") {
		t.Errorf("infinite tolerance not rendered as literal inf:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), ",37.5\n") {
		t.Errorf("finite tolerance missing:\n%s", buf.String())
	}
}

// TestPrintPredictedSweep smoke-checks the human-readable rendering:
// pruned cells print dashes, the error envelope and tolerance summary
// lines appear, and an infinite tolerance does not print as +Inf.
func TestPrintPredictedSweep(t *testing.T) {
	var buf bytes.Buffer
	PrintPredictedSweep(&buf, "title", "x", []apps.Mechanism{apps.SM, apps.MPPoll}, handBuiltSweep(), 0.10)
	out := buf.String()
	for _, want := range []string{
		"validated 3 of 4 mechanism-points",
		"worst error 3.4%",
		"(1 saved)",
		"latency tolerance (one-way cycles at +10% runtime)",
		">10^6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "+Inf") {
		t.Errorf("infinite tolerance leaked as +Inf:\n%s", out)
	}
}
