package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

func scalingPoint(x float64, cycles map[apps.Mechanism]int64) core.SweepPoint {
	res := map[apps.Mechanism]core.RunResult{}
	for m, c := range cycles {
		res[m] = core.RunResult{Result: machine.Result{Cycles: c}, Mech: m}
	}
	return core.SweepPoint{X: x, Results: res}
}

// TestSpeedupBaseline: speedup is relative to the mechanism's own first
// measured point, and absent mechanisms yield ok=false instead of a
// division by zero.
func TestSpeedupBaseline(t *testing.T) {
	pts := []core.SweepPoint{
		scalingPoint(32, map[apps.Mechanism]int64{apps.SM: 1000}),
		scalingPoint(64, map[apps.Mechanism]int64{apps.SM: 500, apps.MPPoll: 400}),
		scalingPoint(128, map[apps.Mechanism]int64{apps.SM: 2000, apps.MPPoll: 200}),
	}
	if s, ok := Speedup(pts, apps.SM, pts[1]); !ok || s != 2.0 {
		t.Errorf("SM speedup at 64 = %.2f/%v, want 2.00", s, ok)
	}
	if s, ok := Speedup(pts, apps.SM, pts[2]); !ok || s != 0.5 {
		t.Errorf("SM speedup at 128 = %.2f/%v, want 0.50", s, ok)
	}
	// MPPoll's baseline is its first measured point (X=64), not X=32.
	if s, ok := Speedup(pts, apps.MPPoll, pts[2]); !ok || s != 2.0 {
		t.Errorf("MPPoll speedup at 128 = %.2f/%v, want 2.00 vs its own baseline", s, ok)
	}
	if _, ok := Speedup(pts, apps.MPPoll, pts[0]); ok {
		t.Error("speedup claimed for a point that lacks the mechanism")
	}
}

// TestWriteScalingCSVMissingCells: unpartitionable points emit empty
// cells, never zeros, so plots drop them.
func TestWriteScalingCSVMissingCells(t *testing.T) {
	mechs := []apps.Mechanism{apps.SM, apps.MPPoll}
	fixed := []core.SweepPoint{
		scalingPoint(32, map[apps.Mechanism]int64{apps.SM: 1000, apps.MPPoll: 800}),
		scalingPoint(64, nil), // unpartitionable
	}
	scaled := []core.SweepPoint{
		scalingPoint(32, map[apps.Mechanism]int64{apps.SM: 1000, apps.MPPoll: 800}),
		scalingPoint(64, map[apps.Mechanism]int64{apps.SM: 1500, apps.MPPoll: 1000}),
	}
	var buf bytes.Buffer
	if err := WriteScalingCSV(&buf, mechs, fixed, scaled); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want header + 4 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "mode,nodes,shared-memory_cycles,mp-poll_cycles,shared-memory_speedup,mp-poll_speedup" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != "fixed,64,,,," {
		t.Errorf("unpartitionable row = %q, want empty cells", lines[2])
	}
	if lines[4] != "scaled,64,1500,1000,0.6667,0.8000" {
		t.Errorf("scaled row = %q", lines[4])
	}
}

// TestCatalogListsEveryFigure: the -list catalog names each of the ten
// paper figures, the S1 scaling experiment, both tables, and the model
// comparison, and PrintCatalog renders it.
func TestCatalogListsEveryFigure(t *testing.T) {
	want := []string{
		"-fig 1", "-fig 2", "-fig 3", "-fig 4", "-fig 5", "-fig 6",
		"-fig 7", "-fig 8", "-fig 9", "-fig 10", "-fig S1", "-fig S2",
		"-table 1", "-table 2", "-model", "-predict",
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(want))
	}
	for i, e := range cat {
		if e.Flag != want[i] {
			t.Errorf("catalog[%d].Flag = %q, want %q", i, e.Flag, want[i])
		}
		if e.Title == "" {
			t.Errorf("catalog[%d] (%s) has an empty title", i, e.Flag)
		}
	}
	var buf bytes.Buffer
	PrintCatalog(&buf)
	for _, f := range want {
		if !strings.Contains(buf.String(), f) {
			t.Errorf("PrintCatalog output missing %q", f)
		}
	}
}

// TestFigS1EndToEnd runs the scaling experiment small (two node counts
// at tiny scale) and checks the report's shape: both scaling modes, a
// speedup column anchored at 1.00, and identical 32-node baselines
// between the modes.
func TestFigS1EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	fixed, scaled, err := FigS1(&buf, core.EM3D, core.ScaleTiny, machine.DefaultConfig(), []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 2 || len(scaled) != 2 {
		t.Fatalf("got %d fixed / %d scaled points, want 2 each", len(fixed), len(scaled))
	}
	for _, m := range apps.Mechanisms {
		f, okF := fixed[0].Results[m]
		s, okS := scaled[0].Results[m]
		if !okF || !okS || f.Cycles != s.Cycles {
			t.Errorf("%s: 32-node baselines differ between modes (%v vs %v)", m, f.Cycles, s.Cycles)
		}
		if f.Cycles <= 0 {
			t.Errorf("%s: non-positive baseline runtime", m)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"Figure S1 (em3d)",
		"strong scaling", "weak scaling",
		"crossover (fixed)", "crossover (scaled)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FigS1 output missing %q", want)
		}
	}
}
