package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

func TestFig4DataAndPrint(t *testing.T) {
	rows, err := Fig4Data(core.ScaleTiny, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*5 {
		t.Fatalf("got %d rows, want 20", len(rows))
	}
	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Figure 4", "em3d", "unstruc", "iccg", "moldyn",
		"shared-memory", "bulk-dma", "sync%", "compute%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q", want)
		}
	}

	var buf5 bytes.Buffer
	PrintFig5(&buf5, rows)
	out5 := buf5.String()
	for _, want := range []string{"Figure 5", "inval", "hdrs", "data"} {
		if !strings.Contains(out5, want) {
			t.Errorf("Fig5 output missing %q", want)
		}
	}
}

func TestFig4VolumeShapes(t *testing.T) {
	rows, err := Fig4Data(core.ScaleTiny, machine.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// For every app: SM volume strictly exceeds fine-grained MP volume
	// (the paper's up-to-6x claim), and interrupt==poll volumes match.
	byApp := map[core.AppName]map[apps.Mechanism]int64{}
	for _, r := range rows {
		if byApp[r.App] == nil {
			byApp[r.App] = map[apps.Mechanism]int64{}
		}
		byApp[r.App][r.Res.Mech] = r.Res.Volume.Total()
	}
	for app, vols := range byApp {
		if vols[apps.SM] <= vols[apps.MPPoll] {
			t.Errorf("%s: SM volume %d <= MP volume %d", app, vols[apps.SM], vols[apps.MPPoll])
		}
		ratio := float64(vols[apps.MPInterrupt]) / float64(vols[apps.MPPoll])
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("%s: interrupt and poll volumes differ: %d vs %d",
				app, vols[apps.MPInterrupt], vols[apps.MPPoll])
		}
	}
}

func TestPrintFig3Bounds(t *testing.T) {
	var buf bytes.Buffer
	mp := PrintFig3(&buf, machine.DefaultConfig())
	if !strings.Contains(buf.String(), "LimitLESS") {
		t.Error("Fig3 output missing LimitLESS rows")
	}
	if mp.LocalRead <= 0 || mp.LimitLESSWrite < mp.LimitLESSRead {
		t.Errorf("implausible penalties: %+v", mp)
	}
}

func TestFig8EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Fig8(&buf, core.EM3D, core.ScaleTiny, machine.DefaultConfig(), []float64{0, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("missing title")
	}
	// Per-mechanism monotone degradation at the stressed point for SM.
	if pts[1].Results[apps.SM].Cycles <= pts[0].Results[apps.SM].Cycles {
		t.Error("SM did not degrade with cross-traffic")
	}
}

func TestFig9Fig10EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Fig9(&buf, core.EM3D, core.ScaleTiny, machine.DefaultConfig(), []float64{20, 14}); err != nil {
		t.Fatal(err)
	}
	pts, err := Fig10(&buf, core.EM3D, core.ScaleTiny, machine.DefaultConfig(), []int64{15, 100})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Results[apps.SM].Cycles <= pts[0].Results[apps.SM].Cycles {
		t.Error("SM did not degrade with emulated latency")
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "Figure 10") {
		t.Error("missing titles")
	}
}

func TestFig7EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	pts, err := Fig7(&buf, core.EM3D, core.ScaleTiny, machine.DefaultConfig(), 8, []int{32, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestFig1Fig2Classification(t *testing.T) {
	// Synthetic sweep with a flat then steep SM curve.
	mk := func(x float64, sm, mp int64) core.SweepPoint {
		return core.SweepPoint{X: x, Results: map[apps.Mechanism]core.RunResult{
			apps.SM:     {Result: machine.Result{Cycles: sm}},
			apps.MPPoll: {Result: machine.Result{Cycles: mp}},
		}}
	}
	pts := []core.SweepPoint{mk(18, 100, 100), mk(10, 105, 101), mk(2, 220, 110)}
	var buf bytes.Buffer
	Fig1(&buf, pts, []apps.Mechanism{apps.SM, apps.MPPoll})
	out := buf.String()
	if !strings.Contains(out, "latency") {
		t.Errorf("Fig1 produced no region labels:\n%s", out)
	}
	var buf2 bytes.Buffer
	Fig2(&buf2, pts, []apps.Mechanism{apps.SM}) // order as-is for latency sweeps
	if !strings.Contains(buf2.String(), "shared-memory") {
		t.Error("Fig2 missing mechanism label")
	}
}

func TestPrintModelComparison(t *testing.T) {
	var buf bytes.Buffer
	worst, err := PrintModelComparison(&buf, core.EM3D, core.ScaleSweep,
		machine.DefaultConfig(), []int64{15, 100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 2.2 {
		t.Errorf("model diverges from simulator by %.2fx; want within ~2x", worst)
	}
	out := buf.String()
	if !strings.Contains(out, "Analytical model") || !strings.Contains(out, "model region") {
		t.Errorf("missing headers:\n%s", out)
	}
}

func TestPrintLogP(t *testing.T) {
	var buf bytes.Buffer
	lp := PrintLogP(&buf, machine.DefaultConfig())
	if lp.P != 32 {
		t.Errorf("P = %d", lp.P)
	}
	if !strings.Contains(buf.String(), "LogP") {
		t.Error("missing header")
	}
}
