package figures

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
)

func TestDefaultNoiseSeeds(t *testing.T) {
	got := DefaultNoiseSeeds(3)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("DefaultNoiseSeeds(3) = %v, want [1 2 3]", got)
	}
	if s := DefaultNoiseSeeds(0); len(s) != 0 {
		t.Errorf("DefaultNoiseSeeds(0) = %v, want empty", s)
	}
}

// TestDefaultNoiseSpecParses pins the shipped default: it must parse,
// be pure noise (usable in Config.NoiseSpec), and round-trip so cached
// results stay addressable.
func TestDefaultNoiseSpecParses(t *testing.T) {
	c, err := fault.Parse(DefaultNoiseSpec)
	if err != nil {
		t.Fatalf("DefaultNoiseSpec does not parse: %v", err)
	}
	if !c.NoiseEnabled() || c.FaultsEnabled() {
		t.Errorf("DefaultNoiseSpec NoiseEnabled=%v FaultsEnabled=%v, want true/false",
			c.NoiseEnabled(), c.FaultsEnabled())
	}
}

// TestFigS2EndToEnd runs the noise experiment small (two seeds at tiny
// scale) and checks the report and CSV shapes: every mechanism appears
// in both panels, and the CSV long form carries seeds, summaries, and
// the hop profile.
func TestFigS2EndToEnd(t *testing.T) {
	var buf bytes.Buffer
	dists, props, err := FigS2(&buf, core.EM3D, core.ScaleTiny, machine.DefaultConfig(),
		"hostnoise:node=*,dist=exp,mean=2us", DefaultNoiseSeeds(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != len(apps.Mechanisms) || len(props) != len(apps.Mechanisms) {
		t.Fatalf("got %d dists / %d props, want %d each", len(dists), len(props), len(apps.Mechanisms))
	}
	out := buf.String()
	for _, want := range []string{
		"Figure S2 (em3d)",
		"runtime distribution over 2 noise seeds",
		"single-delay propagation from node 0",
		"p99", "absorbed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FigS2 output missing %q", want)
		}
	}
	var csv bytes.Buffer
	if err := WriteNoiseCSV(&csv, dists, props); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "section,mechanism,key,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	// Per mechanism: 2 seed rows + 6 summary rows + 4 propagation scalars
	// + 11 hop rows (8x4 mesh from node 0).
	want := 1 + len(apps.Mechanisms)*(2+6+4+11)
	if len(lines) != want {
		t.Errorf("CSV has %d lines, want %d", len(lines), want)
	}
	for _, sub := range []string{"seeds,", "summary,", "propagation,", "shift_hops_10"} {
		if !strings.Contains(csv.String(), sub) {
			t.Errorf("CSV missing %q rows", sub)
		}
	}
}
