package figures

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// CatalogEntry describes one artifact paperbench can regenerate: the
// -fig/-table selector the user passes and what comes out.
type CatalogEntry struct {
	Flag  string // the paperbench invocation that produces it
	Title string // one-line description
}

// Catalog lists every figure and table in selector order. paperbench
// -list prints it; keep entries in sync with the dispatch in
// cmd/paperbench/main.go (TestCatalogMatchesDispatch enforces the
// figure keys).
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"-fig 1", "bandwidth region classification (derived from the Figure 8 sweep)"},
		{"-fig 2", "latency region classification (derived from the Figure 10 sweep)"},
		{"-fig 3", "cost table: shared-memory miss penalties, measured vs paper"},
		{"-fig 4", "runtime breakdowns per app and mechanism"},
		{"-fig 5", "communication volume breakdowns per app and mechanism"},
		{"-fig 6", "cross-traffic topology description (I/O nodes on the mesh edges)"},
		{"-fig 7", "runtime vs cross-traffic message length"},
		{"-fig 8", "runtime vs bisection bandwidth"},
		{"-fig 9", "runtime vs network clock (latency+bandwidth scaling)"},
		{"-fig 10", "runtime vs one-way network latency"},
		{"-fig S1", "mechanism scaling with machine size, 32-512 nodes (beyond the paper)"},
		{"-fig S2", "mechanism sensitivity to stochastic noise and single-delay propagation (beyond the paper)"},
		{"-table 1", "machine configurations (printed by cmd/machines)"},
		{"-table 2", "relative machine parameters (printed by cmd/machines -relative)"},
		{"-model", "analytical model vs simulator comparison, plus LogP parameters"},
		{"-predict", "dependency-graph sweep predictions for figs 4/8/9/10 from one instrumented run per mechanism (-prune simulates only low-confidence and near-crossover points)"},
	}
}

// PrintCatalog renders the artifact catalog (paperbench -list).
func PrintCatalog(w io.Writer) {
	fmt.Fprintln(w, "paperbench artifacts:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, e := range Catalog() {
		fmt.Fprintf(tw, "  %s\t%s\n", e.Flag, e.Title)
	}
	tw.Flush()
}
