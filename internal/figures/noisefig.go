package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
)

// DefaultNoiseSpec is the Figure S2 noise model when -noise is not given:
// heavy-tailed host noise (rare long OS/daemon interruptions dilating
// compute phases, the fennel LBMachine idiom) plus light exponential
// per-packet network noise. Means are in wall time — at the paper's
// 20 MHz clock, 2us of host noise is 40 cycles per compute phase and
// 100ns of net noise is 2 cycles per packet.
const DefaultNoiseSpec = "hostnoise:node=*,dist=heavytail,mean=2us;netnoise:node=*,dist=exp,mean=100ns"

// DefaultNoiseSeeds returns the Figure S2 seed schedule: n consecutive
// seeds from 1 (seed choice is arbitrary; consecutive seeds make reruns
// and cache hits predictable).
func DefaultNoiseSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// FigS2 runs and prints the noise-sensitivity experiment for one
// application — the paper's mechanism axis re-asked under stochastic
// noise, after Afzal, Hager & Wellein's observation that one-off delays
// propagate, decay, or amplify depending on communication structure.
// Two panels:
//
//   - runtime distribution: every mechanism runs under spec once per
//     seed; mean/p50/p99 show which mechanisms absorb noise and which
//     amplify it (round-trip-heavy shared memory waits on every noised
//     reply; one-way message passing overlaps it);
//   - delay propagation: a single injected delay on delayNode, and the
//     per-node completion shift grouped by hop distance from it.
func FigS2(w io.Writer, app core.AppName, sc core.Scale, base machine.Config, spec string, seeds []uint64, delayNode int) ([]core.NoiseDistribution, []core.PropagationResult, error) {
	dists, err := core.NoiseSeedSweep(app, sc, apps.Mechanisms, base, spec, seeds)
	if err != nil {
		return nil, nil, err
	}
	props, err := core.DelayPropagation(app, sc, apps.Mechanisms, base, delayNode)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "Figure S2 (%s): mechanism sensitivity to stochastic noise (beyond the paper)\n", app)
	fmt.Fprintf(w, "-- runtime distribution over %d noise seeds, spec %q --\n", len(seeds), spec)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mechanism\tn\tmean\tp50\tp99\tmax\tspread")
	for _, d := range dists {
		s := stats.Summarize(d.Cycles)
		if s.N == 0 {
			fmt.Fprintf(tw, "%s\t0\t-\t-\t-\t-\t-\n", d.Mech.Short())
			continue
		}
		// Spread is (max-min)/mean: the noise-induced runtime variation a
		// user of that mechanism would observe across identical jobs.
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%d\t%d\t%d\t%.1f%%\n",
			d.Mech.Short(), s.N, s.Mean, s.P50, s.P99, s.Max,
			100*float64(s.Max-s.Min)/s.Mean)
	}
	tw.Flush()
	fmt.Fprintf(w, "-- single-delay propagation from node %d --\n", delayNode)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mechanism\tbase\tdelay\tshift\tabsorbed\tshift by hop distance 0..max")
	for _, p := range props {
		absorbed := 100 * (1 - float64(p.RuntimeShift)/float64(p.DelayCycles))
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f%%\t", p.Mech.Short(), p.BaseCycles, p.DelayCycles, p.RuntimeShift, absorbed)
		for h, s := range p.ShiftByHops {
			if h > 0 {
				fmt.Fprint(tw, " ")
			}
			fmt.Fprintf(tw, "%.0f", s)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return dists, props, nil
}

// WriteNoiseCSV emits the Figure S2 experiment in long form: one
// (section, mechanism, key, value) row per measurement. Sections:
// "seeds" (key = seed, value = cycles), "summary" (key = statistic),
// "propagation" (key = base_cycles/at_cycles/delay_cycles/runtime_shift
// or shift_hops_<h>).
func WriteNoiseCSV(w io.Writer, dists []core.NoiseDistribution, props []core.PropagationResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"section", "mechanism", "key", "value"}); err != nil {
		return err
	}
	row := func(section, mech, key, value string) error {
		return cw.Write([]string{section, mech, key, value})
	}
	for _, d := range dists {
		mech := d.Mech.String()
		for i, seed := range d.Seeds {
			if err := row("seeds", mech, strconv.FormatUint(seed, 10), strconv.FormatInt(d.Cycles[i], 10)); err != nil {
				return err
			}
		}
		s := stats.Summarize(d.Cycles)
		for _, kv := range []struct {
			k, v string
		}{
			{"n", strconv.Itoa(s.N)},
			{"mean", strconv.FormatFloat(s.Mean, 'f', 1, 64)},
			{"p50", strconv.FormatInt(s.P50, 10)},
			{"p99", strconv.FormatInt(s.P99, 10)},
			{"min", strconv.FormatInt(s.Min, 10)},
			{"max", strconv.FormatInt(s.Max, 10)},
		} {
			if err := row("summary", mech, kv.k, kv.v); err != nil {
				return err
			}
		}
	}
	for _, p := range props {
		mech := p.Mech.String()
		for _, kv := range []struct {
			k string
			v int64
		}{
			{"base_cycles", p.BaseCycles},
			{"at_cycles", p.AtCycles},
			{"delay_cycles", p.DelayCycles},
			{"runtime_shift", p.RuntimeShift},
		} {
			if err := row("propagation", mech, kv.k, strconv.FormatInt(kv.v, 10)); err != nil {
				return err
			}
		}
		for h, s := range p.ShiftByHops {
			if err := row("propagation", mech, fmt.Sprintf("shift_hops_%d", h), strconv.FormatFloat(s, 'f', 1, 64)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
