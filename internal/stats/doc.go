// Package stats provides the simulator's equivalent of the Alewife CMMU
// hardware statistics counters: non-intrusive counts of communication
// volume, per-processor execution time breakdowns, and protocol event
// counts. The paper's Figures 4 and 5 are built directly from these.
package stats
