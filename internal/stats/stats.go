package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// VolumeKind classifies bytes injected into the network, matching the
// four components of Figure 5 in the paper.
type VolumeKind int

const (
	// VolInvalidates is all traffic associated with invalidating cached
	// copies of remote data (invalidate messages and their acks).
	VolInvalidates VolumeKind = iota
	// VolRequests is read, write, and modify request traffic.
	VolRequests
	// VolHeaders is message headers: active-message headers for message
	// passing, cache-line transfer headers for shared memory.
	VolHeaders
	// VolData is payload: message-passing payload bytes and shared-memory
	// cache lines (including any DMA alignment padding).
	VolData

	numVolumeKinds
)

func (k VolumeKind) String() string {
	switch k {
	case VolInvalidates:
		return "invalidates"
	case VolRequests:
		return "requests"
	case VolHeaders:
		return "headers"
	case VolData:
		return "data"
	}
	return fmt.Sprintf("VolumeKind(%d)", int(k))
}

// Volume accumulates network-injected bytes by kind.
type Volume struct {
	Bytes [numVolumeKinds]int64
}

// Add records n bytes of kind k.
func (v *Volume) Add(k VolumeKind, n int64) { v.Bytes[k] += n }

// Total returns the sum across kinds.
func (v Volume) Total() int64 {
	var t int64
	for _, b := range v.Bytes {
		t += b
	}
	return t
}

// Plus returns the element-wise sum of two volumes.
func (v Volume) Plus(o Volume) Volume {
	var r Volume
	for i := range r.Bytes {
		r.Bytes[i] = v.Bytes[i] + o.Bytes[i]
	}
	return r
}

func (v Volume) String() string {
	return fmt.Sprintf("inval=%d req=%d hdr=%d data=%d total=%d",
		v.Bytes[VolInvalidates], v.Bytes[VolRequests], v.Bytes[VolHeaders],
		v.Bytes[VolData], v.Total())
}

// TimeBucket classifies processor time, matching the four components of
// Figure 4 in the paper.
type TimeBucket int

const (
	// BucketSync is time spent in barriers, acquiring locks, and
	// spin-waiting on synchronization variables.
	BucketSync TimeBucket = iota
	// BucketMsgOverhead is processor overhead to send and receive
	// messages (interrupt entry/exit, poll, message construction) and,
	// for bulk transfer, gather/scatter copying time.
	BucketMsgOverhead
	// BucketMemWait is time stalled waiting for cache misses and network
	// interface resources.
	BucketMemWait
	// BucketCompute is time spent computing.
	BucketCompute

	numTimeBuckets
)

func (b TimeBucket) String() string {
	switch b {
	case BucketSync:
		return "sync"
	case BucketMsgOverhead:
		return "msg-overhead"
	case BucketMemWait:
		return "mem+ni-wait"
	case BucketCompute:
		return "compute"
	}
	return fmt.Sprintf("TimeBucket(%d)", int(b))
}

// Breakdown accumulates simulated time by bucket for one processor.
type Breakdown struct {
	T [numTimeBuckets]sim.Time
}

// Add charges d to bucket b.
func (bd *Breakdown) Add(b TimeBucket, d sim.Time) { bd.T[b] += d }

// Total returns the sum across buckets.
func (bd Breakdown) Total() sim.Time {
	var t sim.Time
	for _, d := range bd.T {
		t += d
	}
	return t
}

// Plus returns the element-wise sum of two breakdowns.
func (bd Breakdown) Plus(o Breakdown) Breakdown {
	var r Breakdown
	for i := range r.T {
		r.T[i] = bd.T[i] + o.T[i]
	}
	return r
}

// Frac returns bucket b's share of the total, or 0 for an empty breakdown.
func (bd Breakdown) Frac(b TimeBucket) float64 {
	tot := bd.Total()
	if tot == 0 {
		return 0
	}
	return float64(bd.T[b]) / float64(tot)
}

func (bd Breakdown) String() string {
	var parts []string
	for b := TimeBucket(0); b < numTimeBuckets; b++ {
		parts = append(parts, fmt.Sprintf("%s=%v", b, bd.T[b]))
	}
	return strings.Join(parts, " ")
}

// Events counts discrete protocol and mechanism events machine-wide.
type Events struct {
	LocalMisses      int64 // cache misses satisfied by local memory
	RemoteMissesCln  int64 // remote misses, line clean at home
	RemoteMissesDty  int64 // remote misses requiring owner intervention
	LimitLESSTraps   int64 // directory overflows handled in software
	Invalidations    int64 // invalidate messages sent
	WriteBacks       int64 // dirty lines written back on eviction
	Upgrades         int64 // S->M ownership requests
	MessagesSent     int64 // active messages launched
	MessagesRecv     int64 // active messages handled
	Interrupts       int64 // message interrupts taken
	Polls            int64 // poll operations executed
	PollHits         int64 // polls that found at least one message
	BulkTransfers    int64 // DMA bulk transfers
	BulkBytes        int64 // payload bytes moved by DMA
	PrefetchIssued   int64 // prefetch instructions executed
	PrefetchUseful   int64 // prefetched lines later referenced
	PrefetchUseless  int64 // prefetched lines evicted unreferenced
	LockAcquires     int64 // spin-lock acquisitions
	LockSpins        int64 // failed lock attempts (retries)
	BarrierArrivals  int64 // per-processor barrier arrivals
	NIQueueFullStall int64 // sends that stalled on a full network queue
	XTrafficPackets  int64 // cross-traffic packets injected
	XTrafficBytes    int64 // cross-traffic bytes injected
}

// Plus returns the field-wise sum of two event counters.
func (e Events) Plus(o Events) Events {
	return Events{
		LocalMisses:      e.LocalMisses + o.LocalMisses,
		RemoteMissesCln:  e.RemoteMissesCln + o.RemoteMissesCln,
		RemoteMissesDty:  e.RemoteMissesDty + o.RemoteMissesDty,
		LimitLESSTraps:   e.LimitLESSTraps + o.LimitLESSTraps,
		Invalidations:    e.Invalidations + o.Invalidations,
		WriteBacks:       e.WriteBacks + o.WriteBacks,
		Upgrades:         e.Upgrades + o.Upgrades,
		MessagesSent:     e.MessagesSent + o.MessagesSent,
		MessagesRecv:     e.MessagesRecv + o.MessagesRecv,
		Interrupts:       e.Interrupts + o.Interrupts,
		Polls:            e.Polls + o.Polls,
		PollHits:         e.PollHits + o.PollHits,
		BulkTransfers:    e.BulkTransfers + o.BulkTransfers,
		BulkBytes:        e.BulkBytes + o.BulkBytes,
		PrefetchIssued:   e.PrefetchIssued + o.PrefetchIssued,
		PrefetchUseful:   e.PrefetchUseful + o.PrefetchUseful,
		PrefetchUseless:  e.PrefetchUseless + o.PrefetchUseless,
		LockAcquires:     e.LockAcquires + o.LockAcquires,
		LockSpins:        e.LockSpins + o.LockSpins,
		BarrierArrivals:  e.BarrierArrivals + o.BarrierArrivals,
		NIQueueFullStall: e.NIQueueFullStall + o.NIQueueFullStall,
		XTrafficPackets:  e.XTrafficPackets + o.XTrafficPackets,
		XTrafficBytes:    e.XTrafficBytes + o.XTrafficBytes,
	}
}

// RemoteMisses returns the total remote miss count.
func (e Events) RemoteMisses() int64 { return e.RemoteMissesCln + e.RemoteMissesDty }

// Summary describes a sample distribution (e.g. runtimes across noise
// seeds). Percentiles use the nearest-rank method, so every reported
// quantile is an actual sample — robust for the small sample counts a
// seed sweep produces.
type Summary struct {
	N    int     // sample count
	Mean float64 // arithmetic mean
	P50  int64   // median (nearest rank)
	P99  int64   // 99th percentile (nearest rank)
	Min  int64
	Max  int64
}

// NearestRank returns the 0-based index of the nearest-rank p-quantile
// in a sorted sample of n elements: ceil(p*n)-1, clamped to [0, n).
// Shared by Summarize and the obs histogram percentile accessors so both
// report the same quantile convention.
func NearestRank(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Summarize computes a Summary of xs (the input is not modified). A
// nil/empty input yields the zero Summary.
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, x := range s {
		sum += float64(x)
	}
	return Summary{
		N:    len(s),
		Mean: sum / float64(len(s)),
		P50:  s[NearestRank(len(s), 0.50)],
		P99:  s[NearestRank(len(s), 0.99)],
		Min:  s[0],
		Max:  s[len(s)-1],
	}
}
