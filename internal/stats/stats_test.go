package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestVolumeAddAndTotal(t *testing.T) {
	var v Volume
	v.Add(VolInvalidates, 8)
	v.Add(VolRequests, 16)
	v.Add(VolHeaders, 24)
	v.Add(VolData, 32)
	v.Add(VolData, 8)
	if v.Bytes[VolData] != 40 {
		t.Errorf("data bytes = %d, want 40", v.Bytes[VolData])
	}
	if v.Total() != 88 {
		t.Errorf("total = %d, want 88", v.Total())
	}
}

func TestVolumePlus(t *testing.T) {
	a := Volume{Bytes: [numVolumeKinds]int64{1, 2, 3, 4}}
	b := Volume{Bytes: [numVolumeKinds]int64{10, 20, 30, 40}}
	c := a.Plus(b)
	want := [numVolumeKinds]int64{11, 22, 33, 44}
	if c.Bytes != want {
		t.Errorf("Plus = %v, want %v", c.Bytes, want)
	}
}

// Property: Plus is commutative and Total distributes over Plus.
func TestVolumePlusProperty(t *testing.T) {
	prop := func(a, b [4]int16) bool {
		var va, vb Volume
		for i := 0; i < 4; i++ {
			va.Bytes[i] = int64(a[i])
			vb.Bytes[i] = int64(b[i])
		}
		ab := va.Plus(vb)
		ba := vb.Plus(va)
		return ab == ba && ab.Total() == va.Total()+vb.Total()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestVolumeKindStrings(t *testing.T) {
	want := []string{"invalidates", "requests", "headers", "data"}
	for k := VolumeKind(0); k < numVolumeKinds; k++ {
		if k.String() != want[k] {
			t.Errorf("kind %d = %q, want %q", int(k), k.String(), want[k])
		}
	}
	if !strings.Contains(VolumeKind(9).String(), "9") {
		t.Error("unknown kind string should include the value")
	}
}

func TestBreakdownAddTotalFrac(t *testing.T) {
	var bd Breakdown
	bd.Add(BucketSync, 10)
	bd.Add(BucketMsgOverhead, 20)
	bd.Add(BucketMemWait, 30)
	bd.Add(BucketCompute, 40)
	if bd.Total() != 100 {
		t.Errorf("total = %v, want 100", bd.Total())
	}
	if f := bd.Frac(BucketCompute); f != 0.4 {
		t.Errorf("compute frac = %v, want 0.4", f)
	}
	var empty Breakdown
	if empty.Frac(BucketSync) != 0 {
		t.Error("empty breakdown frac should be 0")
	}
}

func TestBreakdownPlus(t *testing.T) {
	a := Breakdown{T: [numTimeBuckets]sim.Time{1, 2, 3, 4}}
	b := Breakdown{T: [numTimeBuckets]sim.Time{5, 6, 7, 8}}
	c := a.Plus(b)
	if c.T != [numTimeBuckets]sim.Time{6, 8, 10, 12} {
		t.Errorf("Plus = %v", c.T)
	}
}

func TestBreakdownString(t *testing.T) {
	var bd Breakdown
	bd.Add(BucketSync, sim.Nanosecond)
	s := bd.String()
	for _, want := range []string{"sync", "msg-overhead", "mem+ni-wait", "compute"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTimeBucketStrings(t *testing.T) {
	want := []string{"sync", "msg-overhead", "mem+ni-wait", "compute"}
	for b := TimeBucket(0); b < numTimeBuckets; b++ {
		if b.String() != want[b] {
			t.Errorf("bucket %d = %q, want %q", int(b), b.String(), want[b])
		}
	}
	if !strings.Contains(TimeBucket(7).String(), "7") {
		t.Error("unknown bucket string should include the value")
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("Summarize(nil).N = %d, want 0", s.N)
	}
	if s := Summarize([]int64{42}); s.N != 1 || s.Mean != 42 || s.P50 != 42 || s.P99 != 42 || s.Min != 42 || s.Max != 42 {
		t.Errorf("singleton summary = %+v", s)
	}
	// 1..100 shuffled: nearest-rank percentiles are exact and the input
	// order must not matter (Summarize sorts a copy).
	xs := make([]int64, 100)
	for i := range xs {
		xs[i] = int64((i*37)%100 + 1)
	}
	orig := append([]int64(nil), xs...)
	s := Summarize(xs)
	if s.N != 100 || s.Mean != 50.5 || s.P50 != 50 || s.P99 != 99 || s.Min != 1 || s.Max != 100 {
		t.Errorf("1..100 summary = %+v, want N=100 mean=50.5 p50=50 p99=99 min=1 max=100", s)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Summarize mutated its input")
		}
	}
}

func TestEventsPlusAllFields(t *testing.T) {
	// Fill every field of one operand with a distinct value and verify
	// Plus preserves all of them (guards against forgotten fields).
	a := Events{
		LocalMisses: 1, RemoteMissesCln: 2, RemoteMissesDty: 3,
		LimitLESSTraps: 4, Invalidations: 5, WriteBacks: 6, Upgrades: 7,
		MessagesSent: 8, MessagesRecv: 9, Interrupts: 10, Polls: 11,
		PollHits: 12, BulkTransfers: 13, BulkBytes: 14,
		PrefetchIssued: 15, PrefetchUseful: 16, PrefetchUseless: 17,
		LockAcquires: 18, LockSpins: 19, BarrierArrivals: 20,
		NIQueueFullStall: 21, XTrafficPackets: 22, XTrafficBytes: 23,
	}
	sum := a.Plus(a)
	if sum != (Events{
		LocalMisses: 2, RemoteMissesCln: 4, RemoteMissesDty: 6,
		LimitLESSTraps: 8, Invalidations: 10, WriteBacks: 12, Upgrades: 14,
		MessagesSent: 16, MessagesRecv: 18, Interrupts: 20, Polls: 22,
		PollHits: 24, BulkTransfers: 26, BulkBytes: 28,
		PrefetchIssued: 30, PrefetchUseful: 32, PrefetchUseless: 34,
		LockAcquires: 36, LockSpins: 38, BarrierArrivals: 40,
		NIQueueFullStall: 42, XTrafficPackets: 44, XTrafficBytes: 46,
	}) {
		t.Errorf("Plus dropped a field: %+v", sum)
	}
	if a.RemoteMisses() != 5 {
		t.Errorf("RemoteMisses = %d, want 5", a.RemoteMisses())
	}
}
