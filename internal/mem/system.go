package mem

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// System is the distributed shared-memory system: one cache + home
// directory + controller per node, connected by the mesh (or, in the
// Figure 10 ideal-network mode, by a uniform fixed-latency fabric).
//
// Data correctness note. Shared values live in the authoritative Store;
// loads and stores complete against it at their simulated completion
// times, and the protocol supplies timing and ordering. The applications
// are data-race-free (locks, barriers, dataflow counters), so results are
// exact. Protocol corner-case races (e.g. a write-back crossing a
// re-request) are resolved defensively and can at worst perturb message
// accounting by a packet or two, never data values.
type System struct {
	eng   *sim.Engine
	net   *mesh.Network
	clk   sim.Clock
	par   Params
	store *Store
	// nodes is per-node protocol state: cache, directory, controller
	// pipeline, outstanding transactions. Element i belongs to the tile
	// that owns node i; simlint's shardsafe check enforces that only
	// code witnessed to run on that tile indexes it.
	//lint:tileowned
	nodes []*nodeMem
	// evs is per-node protocol event accounting. Each slot is only ever
	// written from its node's engine context, so tiled runs count
	// lock-free; Events sums across nodes.
	//lint:tileowned
	evs []stats.Events
	// engOf, when non-nil, maps a node to its tile engine (tiled runs);
	// nil means every node shares eng. See SetTileEngines.
	engOf func(node int) *sim.Engine

	idealNet    bool
	idealOneWay sim.Time

	// trOf, when non-nil, routes trace events to the recording node's
	// buffer. Serial runs route every node to one shared buffer; tiled
	// runs hand out per-tile buffers so recording stays single-writer.
	trOf func(node int) *trace.Buffer

	// Instruments, allocated by SetMetrics; nil when metrics are
	// disabled. Purely passive.
	mMissRd   *obs.Histogram // demand read miss latency, cycles
	mMissWr   *obs.Histogram // demand write/upgrade miss latency, cycles
	mMissPf   *obs.Histogram // prefetch fill latency, cycles
	mDirBusy  []*obs.Gauge   // high-water concurrently busy directory entries per home
	mTxnOut   []*obs.Gauge   // high-water outstanding miss transactions per node
	mTxnTotal *obs.Counter   // miss transactions started
	// mScratch is per-node scratch for the machine-wide instruments
	// above (miss histograms, transaction counter): recording sites run
	// at the node's engine, so each slot has a single writer, and
	// FinishMetrics folds the scratch into the registered instruments
	// after the run. Merge order is immaterial (commutative), so
	// snapshots are byte-identical at every worker count.
	//lint:tileowned
	mScratch []memScratch

	// crit, when non-nil, receives the critical-path decomposition of
	// miss waits and the miss/txn causal edges. All recording happens at
	// the waiting node's (or home's) engine context, so it is tile-safe
	// like mScratch.
	crit *obs.CritRecorder
}

// memScratch is one node's share of the machine-wide memory instruments.
type memScratch struct {
	missRd, missWr, missPf obs.Histogram
	txns                   int64
}

// SetMetrics registers the memory system's instruments on reg and begins
// recording: miss-latency histograms in processor cycles split by
// operation (demand read, demand write/upgrade, prefetch fill), the
// per-home high-water count of concurrently busy directory entries, the
// per-node high-water count of outstanding miss transactions, and a
// transaction counter. nil is ignored.
func (s *System) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mMissRd = reg.Histogram("mem_miss_latency_cycles", "op=read")
	s.mMissWr = reg.Histogram("mem_miss_latency_cycles", "op=write")
	s.mMissPf = reg.Histogram("mem_miss_latency_cycles", "op=prefetch")
	s.mTxnTotal = reg.Counter("mem_txn_total", "")
	s.mDirBusy = make([]*obs.Gauge, len(s.nodes))
	s.mTxnOut = make([]*obs.Gauge, len(s.nodes))
	for i := range s.nodes {
		l := obs.NodeLabel(i)
		s.mDirBusy[i] = reg.Gauge("mem_dir_busy_hw", l)
		s.mTxnOut[i] = reg.Gauge("mem_txn_outstanding_hw", l)
	}
	s.mScratch = make([]memScratch, len(s.nodes))
}

// FinishMetrics folds the per-node scratch into the registered
// machine-wide instruments. Call once after the run, before reading
// snapshots; single-threaded (the tile engines have joined by then).
func (s *System) FinishMetrics() {
	if s.mScratch == nil {
		return
	}
	for i := range s.mScratch {
		sc := &s.mScratch[i]
		s.mMissRd.Merge(&sc.missRd)
		s.mMissWr.Merge(&sc.missWr)
		s.mMissPf.Merge(&sc.missPf)
		s.mTxnTotal.Add(sc.txns)
		*sc = memScratch{}
	}
}

// SetTrace attaches an event trace buffer shared by all nodes (nil
// disables tracing). Serial engine only — for tiled runs use
// SetTraceShards.
func (s *System) SetTrace(tr *trace.Buffer) {
	if tr == nil {
		s.trOf = nil
		return
	}
	s.trOf = func(int) *trace.Buffer { return tr }
}

// SetTraceShards attaches a per-node trace routing function; under the
// tiled engine it must return the recording node's own tile buffer so
// every buffer keeps a single writer.
func (s *System) SetTraceShards(trOf func(node int) *trace.Buffer) { s.trOf = trOf }

// SetCritPath attaches a critical-path recorder (nil disables). Purely
// passive: recording never perturbs protocol timing.
func (s *System) SetCritPath(cr *obs.CritRecorder) { s.crit = cr }

// nodeMem is the per-node memory-side state.
type nodeMem struct {
	cache   *cache
	dir     *directory
	ctlFree sim.Time
	pending map[Addr]*txn
	rcSt    *rcState // write buffer, allocated on first RC store
	busyDir int      // directory entries currently in service (metrics)
}

// txn is an outstanding miss transaction at the requesting node.
type txn struct {
	line     Addr
	write    bool
	node     int
	prefetch bool
	atomic   bool     // RMW/Update: requires exclusivity even under ProtocolUpdate
	granted  bool     // home has issued the reply (it is en route)
	gen      uint64   // dirEntry.modGen of a Modified grant (0 for shared grants)
	start    sim.Time // issue time, for the miss-latency histogram

	waiters    []waiter
	onComplete []func()
}

type waiter struct {
	th     *sim.Thread
	bd     *stats.Breakdown
	bucket stats.TimeBucket
	start  sim.Time
}

// NewSystem builds the memory system over an existing store and network.
// The network's endpoints are not touched: coherence packets carry their
// own Deliver callbacks, so any endpoint that invokes Deliver (including
// mesh.AcceptAll) suffices.
func NewSystem(eng *sim.Engine, net *mesh.Network, clk sim.Clock, par Params, store *Store) *System {
	if net != nil && net.Nodes() != store.Nodes() {
		panic(fmt.Sprintf("mem: network has %d nodes, store has %d", net.Nodes(), store.Nodes()))
	}
	if store.Nodes() > MaxNodes {
		panic(fmt.Sprintf("mem: %d nodes exceeds the %d-node sharer bitset capacity", store.Nodes(), MaxNodes))
	}
	s := &System{eng: eng, net: net, clk: clk, par: par, store: store}
	s.evs = make([]stats.Events, store.Nodes())
	s.nodes = make([]*nodeMem, store.Nodes())
	for i := range s.nodes {
		s.nodes[i] = &nodeMem{
			cache:   newCache(par),
			dir:     newDirectory(),
			pending: make(map[Addr]*txn),
		}
	}
	return s
}

// SetIdealNetwork switches coherence traffic to the paper's Figure 10
// emulation: every protocol message takes exactly oneWay regardless of
// distance or load (uniform access times, infinite bandwidth).
func (s *System) SetIdealNetwork(oneWay sim.Time) {
	s.idealNet = true
	s.idealOneWay = oneWay
}

// Store returns the authoritative backing store.
func (s *System) Store() *Store { return s.store }

// Params returns the memory parameters.
func (s *System) Params() Params { return s.par }

// SetTileEngines routes per-node work to tile engines: every event the
// system schedules on behalf of node n goes to engOf(n). The serial
// engine passed to NewSystem remains the default when engOf is nil.
// Cross-node protocol messages still travel the mesh, whose banded walk
// performs the engine handoff, so every callback here runs in the
// context of the node it touches.
func (s *System) SetTileEngines(engOf func(node int) *sim.Engine) {
	s.engOf = engOf
}

// engAt returns the engine that executes node's events.
//
//lint:tileengine node
func (s *System) engAt(node int) *sim.Engine {
	if s.engOf != nil {
		return s.engOf(node)
	}
	return s.eng
}

// Events returns the accumulated protocol event counters.
func (s *System) Events() stats.Events {
	var ev stats.Events
	for i := range s.evs {
		ev = ev.Plus(s.evs[i])
	}
	return ev
}

func (s *System) cyc(n int64) sim.Time { return s.clk.Cycles(n) }

// lineHome returns the home node of a line.
func (s *System) lineHome(line Addr) int {
	return s.store.Home(line * Addr(s.par.LineWords))
}

// atCtl serializes fn through node's controller. The controller is
// pipelined: each operation's result is available HomeOccCycles after it
// starts, but the controller accepts a new operation every
// CtlServiceCycles (occupancy < latency, as in the CMMU).
//
//lint:tilelocal node
//lint:tiletransfer fn@node
func (s *System) atCtl(node int, fn func()) {
	nm := s.nodes[node]
	eng := s.engAt(node)
	start := eng.Now()
	if nm.ctlFree > start {
		start = nm.ctlFree
	}
	nm.ctlFree = start + s.cyc(s.par.CtlServiceCycles)
	eng.At(start+s.cyc(s.par.HomeOccCycles), fn)
}

// sendCoh moves a protocol message from src to dst and runs onDeliver at
// arrival. Local (src==dst) messages bypass the network; ideal-network
// mode replaces transit with the fixed one-way latency.
//
//lint:tilelocal src
//lint:tiletransfer onDeliver@dst
func (s *System) sendCoh(src, dst int, class mesh.Class, payloadBytes int, onDeliver func()) {
	switch {
	case src == dst:
		s.engAt(src).After(0, onDeliver)
	case s.idealNet:
		s.engAt(src).After(s.idealOneWay, onDeliver)
	default:
		s.net.Send(&mesh.Packet{
			Src: src, Dst: dst, Class: class,
			HdrBytes: s.par.HdrBytes, PayloadBytes: payloadBytes,
			Deliver: func(sim.Time, *mesh.Packet) { onDeliver() },
		})
	}
}

// ---------------------------------------------------------------------------
// Processor-facing operations
// ---------------------------------------------------------------------------

// Load performs a blocking sequentially-consistent load by node's
// processor thread th, charging stall time to bd's bucket.
//
//lint:tilelocal node
func (s *System) Load(th *sim.Thread, node int, a Addr, bd *stats.Breakdown, bucket stats.TimeBucket) float64 {
	if v, ok := s.rcForward(node, a); ok {
		// Read-own-write forwarding from the write buffer.
		d := s.cyc(s.par.HitCycles)
		bd.Add(stats.BucketCompute, d)
		th.Sleep(d)
		return v
	}
	s.access(th, node, a, false, nil, bd, bucket)
	return s.store.Peek(a)
}

// StoreWord performs a store: blocking under sequential consistency,
// buffered under release consistency.
//
//lint:tilelocal node
func (s *System) StoreWord(th *sim.Thread, node int, a Addr, v float64, bd *stats.Breakdown, bucket stats.TimeBucket) {
	if s.par.Consistency == RC {
		s.storeRelaxed(th, node, a, v, bd, bucket)
		return
	}
	s.access(th, node, a, true, func() { s.store.Poke(a, v) }, bd, bucket)
}

// RMW performs an atomic read-modify-write: fn is applied to the current
// value at the moment write ownership is held. It returns the value fn
// returned. Atomicity follows from per-line ownership serialization.
//
//lint:tilelocal node
func (s *System) RMW(th *sim.Thread, node int, a Addr, fn func(float64) float64, bd *stats.Breakdown, bucket stats.TimeBucket) float64 {
	s.Fence(th, node, bd, bucket) // atomics order buffered stores
	var out float64
	s.accessEx(th, node, a, true, true, func() { out = fn(s.store.Peek(a)); s.store.Poke(a, out) }, bd, bucket)
	return out
}

// Update performs an atomic update of up to a line's worth of state: fn
// runs once write ownership of a's line is held. It exists for the
// paper's producer-computes ICCG pattern, where a value and its presence
// counter share a cache line and a single ownership acquisition covers
// both.
//
//lint:tilelocal node
func (s *System) Update(th *sim.Thread, node int, a Addr, fn func(), bd *stats.Breakdown, bucket stats.TimeBucket) {
	s.Fence(th, node, bd, bucket) // atomics order buffered stores
	s.accessEx(th, node, a, true, true, fn, bd, bucket)
}

// Prefetch issues a non-binding prefetch of a's line (write requests
// exclusive ownership). It never blocks; the caller charges issue cost.
//
//lint:tilelocal node
func (s *System) Prefetch(node int, a Addr, write bool) {
	s.evs[node].PrefetchIssued++
	nm := s.nodes[node]
	line := LineOf(a, s.par.LineWords)
	if t := nm.pending[line]; t != nil {
		return // already inbound
	}
	st := nm.cache.lookup(line)
	if st == lineModified || (st == lineShared && !write) {
		return // already sufficient: useless-local prefetch, issue cost only
	}
	if i := nm.cache.pfLookup(line); i >= 0 {
		pst := nm.cache.pf[i].state
		if pst == lineModified || (pst == lineShared && !write) {
			return
		}
		// Shared copy but exclusive wanted: drop it so the write-prefetch
		// fill doesn't leave a stale duplicate behind.
		nm.cache.pfTake(i)
	}
	s.startTxn(node, line, write, true)
}

// access is the common blocking path for loads, stores and RMWs.
//
//lint:tilelocal node
func (s *System) access(th *sim.Thread, node int, a Addr, write bool, apply func(), bd *stats.Breakdown, bucket stats.TimeBucket) {
	s.accessEx(th, node, a, write, false, apply, bd, bucket)
}

// accessEx is access with the atomicity requirement made explicit.
//
//lint:tilelocal node
func (s *System) accessEx(th *sim.Thread, node int, a Addr, write, atomic bool, apply func(), bd *stats.Breakdown, bucket stats.TimeBucket) {
	line := LineOf(a, s.par.LineWords)
	nm := s.nodes[node]
	for {
		if t := nm.pending[line]; t != nil {
			if !write {
				if st := nm.cache.lookup(line); st != lineInvalid {
					// A readable copy is present; the in-flight upgrade
					// (e.g. a buffered RC store or a write prefetch)
					// need not block this read.
					d := s.cyc(s.par.HitCycles)
					bd.Add(stats.BucketCompute, d)
					th.Sleep(d)
					return
				}
			}
			if !write || t.write {
				// Join the in-flight transaction.
				if t.prefetch {
					t.prefetch = false
					s.evs[node].PrefetchUseful++
				}
				if apply != nil {
					t.onComplete = append(t.onComplete, apply)
				}
				s.wait(t, th, bd, bucket)
				return
			}
			// A write cannot join a read transaction: wait it out, retry.
			s.wait(t, th, bd, bucket)
			continue
		}

		st := nm.cache.lookup(line)
		if st == lineModified || (st == lineShared && !write) {
			// Hit.
			d := s.cyc(s.par.HitCycles)
			bd.Add(stats.BucketCompute, d)
			th.Sleep(d)
			if apply != nil {
				apply()
			}
			return
		}

		if i := nm.cache.pfLookup(line); i >= 0 {
			pst := nm.cache.pf[i].state
			if pst == lineModified || (pst == lineShared && !write) {
				// Satisfied from the prefetch buffer: move into cache.
				_, pgen := nm.cache.pfTake(i)
				s.installLine(node, line, pst, pgen)
				s.evs[node].PrefetchUseful++
				d := s.cyc(s.par.PrefetchMoveCycles)
				bd.Add(bucket, d)
				th.Sleep(d)
				if apply != nil {
					apply()
				}
				return
			}
			// Present but in insufficient state (S, need M): promote to
			// cache as shared, then fall through to an upgrade miss.
			nm.cache.pfTake(i)
			s.installLine(node, line, lineShared, 0)
			s.evs[node].PrefetchUseful++
			st = lineShared
		}

		if write && st == lineShared {
			s.evs[node].Upgrades++
		}
		t := s.startTxn(node, line, write, false)
		t.atomic = atomic
		if apply != nil {
			t.onComplete = append(t.onComplete, apply)
		}
		s.wait(t, th, bd, bucket)
		return
	}
}

// wait blocks th until t completes, charging the elapsed stall.
func (s *System) wait(t *txn, th *sim.Thread, bd *stats.Breakdown, bucket stats.TimeBucket) {
	t.waiters = append(t.waiters, waiter{th: th, bd: bd, bucket: bucket, start: th.Now()})
	th.SetWaitReason("mem-miss line", int64(t.line))
	th.Pause()
}

// installLine places a line into node's cache, emitting any victim
// write-back.
//
//lint:tilelocal node
func (s *System) installLine(node int, line Addr, st lineState, gen uint64) {
	victim, dirty, victimGen := s.nodes[node].cache.fill(line, st, gen)
	if victim != NilAddr && dirty {
		s.writeback(node, victim, victimGen)
	}
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

// startTxn opens a miss transaction at node and routes the request to
// the line's home controller.
//
//lint:tilelocal node
func (s *System) startTxn(node int, line Addr, write, prefetch bool) *txn {
	eng := s.engAt(node)
	if s.trOf != nil {
		w := int64(0)
		if write {
			w = 1
		}
		s.trOf(node).Add(trace.Event{At: eng.Now(), Node: node, Kind: trace.KMissStart, A: int64(line), B: w})
	}
	t := &txn{line: line, write: write, node: node, prefetch: prefetch, start: eng.Now()}
	s.nodes[node].pending[line] = t
	if len(s.mScratch) > 0 {
		s.mScratch[node].txns++
		s.mTxnOut[node].SetMax(int64(len(s.nodes[node].pending)))
	}
	home := s.lineHome(line)
	if node == home {
		// Local request: no network issue cost; straight to the controller.
		s.atCtl(home, func() { s.homeDispatch(home, node, line, write, t) })
		return t
	}
	eng.After(s.cyc(s.par.ReqCycles), func() {
		s.sendCoh(node, home, mesh.ClassCohReq, 0, func() {
			s.atCtl(home, func() { s.homeDispatch(home, node, line, write, t) })
		})
	})
	return t
}

// homeDispatch runs at the home controller when a request arrives. The
// directory entry services one request at a time; while one is in
// service (busy), later arrivals park in a strict FIFO queue. release
// pops exactly one queued request per completion, so no requester can
// starve behind faster re-requesters.
//
//lint:tilelocal home
func (s *System) homeDispatch(home, req int, line Addr, write bool, t *txn) {
	e := s.nodes[home].dir.entry(line)
	if e.busy {
		e.queue = append(e.queue, func() { s.homeProcess(home, req, line, write, t, e) })
		return
	}
	e.busy = true
	if s.mDirBusy != nil {
		nm := s.nodes[home]
		nm.busyDir++
		s.mDirBusy[home].SetMax(int64(nm.busyDir))
	}
	s.homeProcess(home, req, line, write, t, e)
}

// homeProcess services one request; e.busy is held by the caller and
// released via s.release at every terminal point.
//
//lint:tilelocal home
func (s *System) homeProcess(home, req int, line Addr, write bool, t *txn, e *dirEntry) {
	if e.state == dirModified && e.owner != req {
		if e.owner == home {
			// Dirty in the home's own cache: the controller pulls the
			// line from its processor's cache inline — no network, no
			// extra controller passes (Alewife's 2-party dirty case).
			serve := func() {
				s.evs[home].RemoteMissesDty++
				if write {
					s.evs[home].Invalidations++
					s.nodes[home].cache.invalidate(line)
					e.state = dirModified
					e.owner = req
					e.sharers = sharerSet{}
					e.sharers.add(req)
					e.modGen++
					t.gen = e.modGen
				} else {
					s.nodes[home].cache.downgrade(line)
					e.state = dirShared
					e.sharers = sharerSet{}
					e.sharers.add(home)
					e.sharers.add(req)
					e.owner = -1
				}
				s.grant(home, req, line, write, t, 0)
				s.release(home, e)
			}
			// If the home's own write grant is still in flight (ownership
			// recorded, fill pending), defer until the fill completes:
			// invalidating the cache now would miss the in-flight fill and
			// leave two Modified copies (mirrors ownerFetch's deferral).
			if ot := s.nodes[home].pending[line]; ot != nil && ot.write && ot.granted {
				ot.onComplete = append(ot.onComplete, serve)
				return
			}
			serve()
			return
		}
		// Dirty at a third party: fetch (and for writes, invalidate) the
		// owner's copy.
		s.evs[home].RemoteMissesDty++
		owner := e.owner
		class := mesh.ClassCohReq
		if write {
			class = mesh.ClassCohInval
			s.evs[home].Invalidations++
		}
		s.sendCoh(home, owner, class, 0, func() {
			s.atCtl(owner, func() { s.ownerFetch(owner, home, req, line, write, t) })
		})
		return
	}

	if e.state == dirModified && e.owner == req {
		// Late write-back race: the requestor evicted its dirty copy and
		// the write-back is still in flight. Safe to treat as uncached.
		e.state = dirUncached
		e.sharers = sharerSet{}
		e.owner = -1
	}

	if !write {
		s.countMiss(home, req, false)
		extra := sim.Time(0)
		if e.sharers.count() >= s.par.HWPointers {
			s.evs[home].LimitLESSTraps++
			extra = s.cyc(s.par.LimitLESSCycles)
		}
		e.state = dirShared
		e.sharers.add(req)
		s.grant(home, req, line, false, t, extra)
		s.release(home, e)
		return
	}

	// Write: invalidate all other sharers first.
	shs := e.sharers
	shs.remove(req)
	if shs.count() == 0 {
		s.countMiss(home, req, false)
		e.state = dirModified
		e.owner = req
		e.sharers = sharerSet{}
		e.sharers.add(req)
		e.modGen++
		t.gen = e.modGen
		s.grant(home, req, line, true, t, 0)
		s.release(home, e)
		return
	}
	s.countMiss(home, req, false)
	if s.par.Protocol == ProtocolUpdate && !t.atomic {
		s.updateRound(home, req, line, t, e, shs)
		return
	}
	extra := sim.Time(0)
	if shs.count() >= s.par.HWPointers {
		s.evs[home].LimitLESSTraps++
		// Software walks the overflow directory and invalidates each
		// sharer: a fixed trap cost plus a per-sharer term.
		extra = s.cyc(s.par.LimitLESSCycles + s.par.LimitLESSPerSharerCycles*int64(shs.count()))
	}
	acks := shs.count()
	shs.forEach(func(sh int) {
		s.evs[home].Invalidations++
		s.sendCoh(home, sh, mesh.ClassCohInval, 0, func() {
			s.atCtl(sh, func() {
				s.invalidateAt(sh, line, func() {
					s.sendCoh(sh, home, mesh.ClassCohInval, 0, func() {
						s.atCtl(home, func() {
							acks--
							if acks == 0 {
								e.state = dirModified
								e.owner = req
								e.sharers = sharerSet{}
								e.sharers.add(req)
								e.modGen++
								t.gen = e.modGen
								s.grant(home, req, line, true, t, extra)
								s.release(home, e)
							}
						})
					})
				})
			})
		})
	})
}

// countMiss classifies a (non-dirty-path) miss as local or remote-clean.
//
//lint:tilelocal home
func (s *System) countMiss(home, req int, dirty bool) {
	switch {
	case dirty:
		s.evs[home].RemoteMissesDty++
	case req == home:
		s.evs[home].LocalMisses++
	default:
		s.evs[home].RemoteMissesCln++
	}
}

// invalidateAt removes a line from a node's cache, deferring if a granted
// read reply is in flight (the 8-byte invalidation can overtake the
// 24-byte data reply in the network; acking first would install a stale
// shared copy). Deferral is safe only for granted read transactions,
// which complete independently of the invalidation round.
//
//lint:tilelocal node
func (s *System) invalidateAt(node int, line Addr, ack func()) {
	nm := s.nodes[node]
	if t := nm.pending[line]; t != nil && !t.write && t.granted {
		t.onComplete = append(t.onComplete, func() {
			nm.cache.invalidate(line)
			ack()
		})
		return
	}
	if s.trOf != nil {
		s.trOf(node).Add(trace.Event{At: s.engAt(node).Now(), Node: node, Kind: trace.KInval, A: int64(line)})
	}
	nm.cache.invalidate(line)
	ack()
}

// ownerFetch runs at the current owner when the home requests its dirty
// copy. If the owner's own write grant is still in flight, the fetch
// defers until the fill completes (ownership must be observed before it
// can be taken away).
//
//lint:tilelocal owner
func (s *System) ownerFetch(owner, home, req int, line Addr, write bool, t *txn) {
	nm := s.nodes[owner]
	if ot := nm.pending[line]; ot != nil && ot.write && ot.granted {
		ot.onComplete = append(ot.onComplete, func() {
			s.ownerFetchNow(owner, home, req, line, write, t)
		})
		return
	}
	s.ownerFetchNow(owner, home, req, line, write, t)
}

// ownerFetchNow surrenders the owner's dirty copy immediately.
//
//lint:tilelocal owner
func (s *System) ownerFetchNow(owner, home, req int, line Addr, write bool, t *txn) {
	nm := s.nodes[owner]
	if write {
		nm.cache.invalidate(line)
	} else {
		nm.cache.downgrade(line)
	}
	// Owner returns the line to home.
	s.sendCoh(owner, home, mesh.ClassCohData, s.par.LineBytes, func() {
		s.atCtl(home, func() {
			e := s.nodes[home].dir.entry(line)
			if write {
				e.state = dirModified
				e.owner = req
				e.sharers = sharerSet{}
				e.sharers.add(req)
				e.modGen++
				t.gen = e.modGen
			} else {
				e.state = dirShared
				e.sharers = sharerSet{}
				e.sharers.add(owner)
				e.sharers.add(req)
				e.owner = -1
			}
			s.grant(home, req, line, write, t, 0)
			s.release(home, e)
		})
	})
}

// updateRound implements the write-through update protocol: the written
// data is pushed to every sharer (which keeps its copy), acks return, and
// the writer is granted a SHARED copy — its next store to the line pays
// another round trip, and its readers never refetch.
//
//lint:tilelocal home
func (s *System) updateRound(home, req int, line Addr, t *txn, e *dirEntry, shs sharerSet) {
	e.state = dirShared
	e.sharers.add(req)
	if shs.count() == 0 {
		s.grantState(home, req, line, lineShared, t, 0)
		s.release(home, e)
		return
	}
	e.busy = true
	acks := shs.count()
	shs.forEach(func(sh int) {
		// Update carries the new data: header + one word.
		s.sendCoh(home, sh, mesh.ClassCohData, 8, func() {
			s.atCtl(sh, func() {
				s.sendCoh(sh, home, mesh.ClassCohAck, 0, func() {
					s.atCtl(home, func() {
						acks--
						if acks == 0 {
							s.grantState(home, req, line, lineShared, t, 0)
							s.release(home, e)
						}
					})
				})
			})
		})
	})
}

// grant sends the data reply to the requestor after DRAM access (plus any
// LimitLESS software penalty) and marks the transaction granted.
//
//lint:tilelocal home
func (s *System) grant(home, req int, line Addr, write bool, t *txn, extra sim.Time) {
	st := lineShared
	if write {
		st = lineModified
	}
	s.grantState(home, req, line, st, t, extra)
}

// grantState is grant with an explicit final cache state for the
// requestor (the update protocol grants writes as shared).
//
//lint:tilelocal home
func (s *System) grantState(home, req int, line Addr, st lineState, t *txn, extra sim.Time) {
	t.granted = true
	if s.crit != nil {
		// Directory txn begin→grant edge, recorded at the home (the grant
		// side); the requester-side view is the later miss→fill edge.
		s.crit.Edge(home, obs.CritEdge{Kind: "txn", Src: t.node, Dst: home, Start: t.start, End: s.engAt(home).Now()})
	}
	delay := s.cyc(s.par.DRAMCycles) + extra
	if req == home {
		// Local fill: no reply message; LocalMissCycles covers the DRAM
		// path (calibrated to the paper's ~11-cycle local miss).
		rest := s.par.LocalMissCycles - s.par.HomeOccCycles
		if rest < 0 {
			rest = 0
		}
		s.engAt(req).After(s.cyc(rest)+extra, func() {
			s.completeTxn(req, line, st, t)
		})
		return
	}
	// The DRAM delay elapses at home; the reply's delivery callback (and
	// so the fill timer) runs at the requestor.
	s.engAt(home).After(delay, func() {
		s.sendCoh(home, req, mesh.ClassCohData, s.par.LineBytes, func() {
			s.engAt(req).After(s.cyc(s.par.FillCycles), func() {
				s.completeTxn(req, line, st, t)
			})
		})
	})
}

// release finishes one request's service: it hands the entry to the
// oldest queued request (keeping busy held across the handoff so fresh
// arrivals cannot jump the queue) or marks the entry idle.
//
//lint:tilelocal home
func (s *System) release(home int, e *dirEntry) {
	if len(e.queue) > 0 {
		f := e.queue[0]
		e.queue = e.queue[1:]
		s.atCtl(home, f)
		return
	}
	e.busy = false
	if s.mDirBusy != nil {
		s.nodes[home].busyDir--
	}
}

// completeTxn installs the line, runs deferred operations, and wakes
// waiting threads.
//
//lint:tilelocal node
func (s *System) completeTxn(node int, line Addr, st lineState, t *txn) {
	eng := s.engAt(node)
	nm := s.nodes[node]
	if t.prefetch {
		evicted, dirty, evictedGen := nm.cache.pfFill(line, st, t.gen)
		if evicted != NilAddr {
			s.evs[node].PrefetchUseless++
			if dirty {
				s.writeback(node, evicted, evictedGen)
			}
		}
	} else {
		s.installLine(node, line, st, t.gen)
	}
	delete(nm.pending, line)
	if len(s.mScratch) > 0 {
		lat := s.clk.ToCycles(eng.Now() - t.start)
		switch {
		case t.prefetch:
			s.mScratch[node].missPf.Observe(lat)
		case t.write:
			s.mScratch[node].missWr.Observe(lat)
		default:
			s.mScratch[node].missRd.Observe(lat)
		}
	}
	if s.trOf != nil {
		s.trOf(node).Add(trace.Event{At: eng.Now(), Node: node, Kind: trace.KMissEnd, A: int64(line)})
	}
	for _, f := range t.onComplete {
		f()
	}
	now := eng.Now()
	if s.crit != nil {
		s.critComplete(node, line, t, now)
	}
	for _, w := range t.waiters {
		w.bd.Add(w.bucket, now-w.start)
		w.th.WakeAt(now)
	}
}

// critComplete decomposes a completed transaction's waits for the
// critical-path recorder and emits the miss→fill edge. The wait interval
// is split in priority order: up to the uncongested round-trip flight
// time is network latency, up to the protocol's fixed cycle cost stays
// memory stall, and the remainder — serialization, queueing, directory
// occupancy, invalidation rounds — is network bandwidth/occupancy.
// Waits charged to buckets other than mem-wait (synchronization spins)
// are left whole, matching the paper's bucket convention.
//
//lint:tilelocal node
func (s *System) critComplete(node int, line Addr, t *txn, now sim.Time) {
	home := s.lineHome(line)
	var latRaw, fixed sim.Time
	switch {
	case s.idealNet:
		latRaw = 2 * s.idealOneWay
		fixed = s.cyc(s.par.ReqCycles + s.par.DRAMCycles + s.par.FillCycles)
	case node == home:
		fixed = s.cyc(s.par.LocalMissCycles)
	default:
		hops := sim.Time(s.net.Hops(node, home) + 1)
		latRaw = 2 * hops * s.net.Config().HopLatency
		fixed = s.cyc(s.par.ReqCycles + s.par.HomeOccCycles + s.par.DRAMCycles + s.par.FillCycles)
	}
	split := func(d sim.Time) (lat, bw sim.Time) {
		lat = latRaw
		if lat > d {
			lat = d
		}
		rem := d - lat
		st := fixed
		if st > rem {
			st = rem
		}
		return lat, rem - st
	}
	for _, w := range t.waiters {
		if w.bucket != stats.BucketMemWait {
			continue
		}
		lat, bw := split(now - w.start)
		s.crit.MissWait(node, lat, bw)
	}
	lat, bw := split(now - t.start)
	s.crit.Edge(node, obs.CritEdge{Kind: "miss", Src: home, Dst: node, Start: t.start, End: now, Lat: lat, BW: bw})
}

// writeback returns a dirty evicted line to its home. gen is the
// ownership generation the evicted copy was granted under.
//
//lint:tilelocal node
func (s *System) writeback(node int, line Addr, gen uint64) {
	s.evs[node].WriteBacks++
	home := s.lineHome(line)
	s.sendCoh(node, home, mesh.ClassCohData, s.par.LineBytes, func() {
		s.atCtl(home, func() {
			e := s.nodes[home].dir.entry(line)
			// A fast re-request (8-byte header) can overtake the slower
			// line-sized write-back packet, so by the time the write-back
			// arrives the evictor may have re-acquired ownership. Clearing
			// the directory then would let a second node be granted
			// Modified concurrently; the write-back is stale exactly when
			// its generation is not the one the directory last granted.
			// (If a re-acquisition is merely in flight, clearing is
			// harmless: the request then finds the line uncached, exactly
			// as if it had been sent after the write-back landed. The
			// generation check keeps this decision home-local — the
			// evictor's cache and pending set may live on another tile.)
			if !e.busy && e.state == dirModified && e.owner == node &&
				e.modGen == gen {
				e.state = dirUncached
				e.sharers = sharerSet{}
				e.owner = -1
			}
		})
	})
}

// CacheHas reports (for tests) whether node's cache or prefetch buffer
// holds addr's line.
func (s *System) CacheHas(node int, a Addr) bool {
	return s.nodes[node].cache.has(LineOf(a, s.par.LineWords))
}

// FlushAll drops every cached line on every node, writing back dirty data
// accounting-free. Used between experiment phases that must start cold.
func (s *System) FlushAll() {
	for _, nm := range s.nodes {
		for i := range nm.cache.lines {
			nm.cache.lines[i].state = lineInvalid
		}
		for i := range nm.cache.pf {
			nm.cache.pf[i].used = false
		}
		nm.dir.entries = make(map[Addr]*dirEntry)
	}
}
