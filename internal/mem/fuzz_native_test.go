package mem

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FuzzProtocolOps feeds byte-driven op sequences through the coherence
// protocol and checks exact semantics plus the full invariant sweep at
// quiescence. The first byte selects the protocol variant (consistency
// model x invalidate/update); each following byte decodes to one memory
// operation on a round-robin node. `make fuzz` explores new inputs; a
// plain `go test` still executes the seed corpus below.
func FuzzProtocolOps(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 9, 42, 7, 200, 13, 88, 3, 54, 99, 250, 17})
	f.Add([]byte{2, 0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60})
	f.Add([]byte("3 read-write-prefetch-rmw soup with enough ops to collide"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 128 {
			t.Skip("empty or oversized op stream")
		}
		runFuzzOps(t, data)
	})
}

func runFuzzOps(t *testing.T, data []byte) {
	const nodes = 32
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223})
	clk := sim.NewClock(20)
	st := NewStore(nodes)
	par := DefaultParams()
	switch data[0] % 4 {
	case 1:
		par.Consistency = RC
	case 2:
		par.Protocol = ProtocolUpdate
	case 3:
		par.Consistency = RC
		par.Protocol = ProtocolUpdate
	}
	sys := NewSystem(eng, net, clk, par, st)

	const nShared = 4
	shared := make([]Addr, nShared)
	for i := range shared {
		shared[i] = st.Alloc(i, 2)
	}
	private := make([]Addr, nodes)
	for i := range private {
		private[i] = st.Alloc(i, 2)
	}

	// Decode one op per byte, round-robin across nodes so each node's
	// program order is fixed by the input alone.
	type op struct {
		kind int
		arg  int
	}
	progs := make([][]op, nodes)
	wantCount := make([]int, nShared)
	lastWrite := make([]float64, nodes)
	for i, b := range data[1:] {
		node := i % nodes
		o := op{kind: int(b) % 5, arg: int(b) / 5}
		switch o.kind {
		case 0:
			wantCount[o.arg%nShared]++
		case 1:
			lastWrite[node] = float64(o.arg + 1)
		}
		progs[node] = append(progs[node], o)
	}

	bds := make([]stats.Breakdown, nodes)
	for node := 0; node < nodes; node++ {
		node := node
		eng.Spawn("f", 0, func(th *sim.Thread) {
			want := 0.0
			for _, o := range progs[node] {
				switch o.kind {
				case 0: // atomic increment of a shared counter
					sys.RMW(th, node, shared[o.arg%nShared],
						func(v float64) float64 { return v + 1 }, &bds[node], stats.BucketSync)
				case 1: // store own private word
					want = float64(o.arg + 1)
					sys.StoreWord(th, node, private[node], want, &bds[node], stats.BucketMemWait)
				case 2: // read own private word: must see own last store
					if want != 0 {
						if got := sys.Load(th, node, private[node], &bds[node], stats.BucketMemWait); got != want {
							t.Errorf("node %d read-own-write got %v, want %v", node, got, want)
						}
					}
				case 3: // read any shared counter (any momentary value is fine)
					sys.Load(th, node, shared[o.arg%nShared], &bds[node], stats.BucketMemWait)
				case 4: // prefetch; must never change semantics
					sys.Prefetch(node, shared[o.arg%nShared], o.arg%2 == 0)
				}
				th.Sleep(clk.Cycles(int64(1 + o.arg%5)))
			}
			sys.Fence(th, node, &bds[node], stats.BucketMemWait)
		})
	}
	eng.SetEventLimit(20_000_000)
	eng.Run()

	if err := sys.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
	for c, want := range wantCount {
		if got := st.Peek(shared[c]); got != float64(want) {
			t.Errorf("counter %d = %v, want %d", c, got, want)
		}
	}
	for node, want := range lastWrite {
		if want == 0 {
			continue
		}
		if got := st.Peek(private[node]); got != want {
			t.Errorf("private[%d] = %v, want %v", node, got, want)
		}
	}
}
