package mem

import (
	"fmt"
	"sort"
)

// Invariant checking for the directory protocol. Two strengths exist
// because the protocol's transient states are legal mid-run:
//
// Weak invariants hold at every instant, even with transactions in
// flight: a line has at most one Modified holder machine-wide, and a
// Modified holder is the directory's recorded owner unless the entry is
// mid-transaction (busy). Weak checks are safe to run anywhere.
//
// Strict invariants hold only at quiescence (barriers, end of run): no
// pending transactions or busy directory entries remain, a dirModified
// entry's owner actually holds the line Modified with a singleton sharer
// set, a dirUncached line is cached nowhere, and every Shared holder has
// its sharer bit set. Sharer bitsets are conservative: silent evictions
// of clean lines leave stale bits behind, so the bitset is a superset of
// the true holders, never a subset.

// InvariantError reports a coherence invariant violation. It carries
// every violation found in one sweep, not just the first.
type InvariantError struct {
	Violations []string
}

func (e *InvariantError) Error() string {
	if len(e.Violations) == 1 {
		return "mem: invariant violated: " + e.Violations[0]
	}
	s := fmt.Sprintf("mem: %d invariants violated:", len(e.Violations))
	for _, v := range e.Violations {
		s += "\n  " + v
	}
	return s
}

// holder records one cached copy of a line for the checker's sweep.
type holder struct {
	node int
	st   lineState
}

// holders collects every cached copy (cache proper and prefetch buffer)
// of every line, keyed by line number.
func (s *System) holders() map[Addr][]holder {
	m := make(map[Addr][]holder)
	for node, nm := range s.nodes {
		for i := range nm.cache.lines {
			fr := &nm.cache.lines[i]
			if fr.state != lineInvalid {
				m[fr.tag] = append(m[fr.tag], holder{node: node, st: fr.state})
			}
		}
		for i := range nm.cache.pf {
			pf := &nm.cache.pf[i]
			if pf.used {
				m[pf.tag] = append(m[pf.tag], holder{node: node, st: pf.state})
			}
		}
	}
	return m
}

// CheckInvariants sweeps every cache, prefetch buffer and directory and
// returns an *InvariantError describing all violations, or nil. With
// strict=false only the anytime invariants are checked; strict=true adds
// the quiescence-only checks and must be called when no transactions are
// in flight (barriers, end of run).
func (s *System) CheckInvariants(strict bool) error {
	var bad []string
	hold := s.holders()

	// Deterministic sweep order for stable error messages.
	lines := make([]Addr, 0, len(hold))
	for l := range hold {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })

	for _, line := range lines {
		hs := hold[line]
		home := s.lineHome(line)
		e := s.nodes[home].dir.entries[line]

		var modified []int
		for _, h := range hs {
			if h.st == lineModified {
				modified = append(modified, h.node)
			}
		}
		if len(modified) > 1 {
			bad = append(bad, fmt.Sprintf("line %d has %d Modified holders: %v", line, len(modified), modified))
		}
		for _, owner := range modified {
			if e == nil {
				bad = append(bad, fmt.Sprintf("line %d Modified at node %d but home %d has no directory entry", line, owner, home))
				continue
			}
			if e.busy && !strict {
				continue // ownership in transit; legal mid-transaction
			}
			if e.state != dirModified || e.owner != owner {
				bad = append(bad, fmt.Sprintf("line %d Modified at node %d but home %d directory says state=%d owner=%d",
					line, owner, home, e.state, e.owner))
			}
		}

		if !strict {
			continue
		}
		// Quiescence-only checks per line.
		if e == nil || e.state == dirUncached {
			bad = append(bad, fmt.Sprintf("line %d cached at %d node(s) but home %d directory says uncached", line, len(hs), home))
			continue
		}
		for _, h := range hs {
			if h.st == lineShared && !e.sharers.has(h.node) {
				bad = append(bad, fmt.Sprintf("line %d Shared at node %d but home %d sharer bitset %v lacks it",
					line, h.node, home, e.sharers))
			}
		}
		if e.state == dirModified {
			if len(modified) != 1 || modified[0] != e.owner {
				bad = append(bad, fmt.Sprintf("line %d: home %d directory says Modified owner=%d but holders are %+v",
					line, home, e.owner, hs))
			}
			if e.sharers.count() != 1 || !e.sharers.has(e.owner) {
				bad = append(bad, fmt.Sprintf("line %d: Modified owner=%d but sharer bitset %v is not the singleton owner",
					line, e.owner, e.sharers))
			}
		}
	}

	if strict {
		for node, nm := range s.nodes {
			for line, t := range nm.pending {
				//lint:allow simlint/maporder bad is sort.Strings-ed before InvariantError is built, so emission order is irrelevant
				bad = append(bad, fmt.Sprintf("node %d has a pending transaction for line %d (write=%v, granted=%v) at quiescence",
					node, line, t.write, t.granted))
			}
			for line, e := range nm.dir.entries {
				if e.busy || len(e.queue) > 0 {
					//lint:allow simlint/maporder bad is sort.Strings-ed before InvariantError is built, so emission order is irrelevant
					bad = append(bad, fmt.Sprintf("home %d directory entry for line %d still busy (queue depth %d) at quiescence",
						node, line, len(e.queue)))
				}
				if e.state == dirModified {
					if _, ok := hold[line]; !ok {
						//lint:allow simlint/maporder bad is sort.Strings-ed before InvariantError is built, so emission order is irrelevant
						bad = append(bad, fmt.Sprintf("home %d directory says line %d Modified at owner %d but no node caches it (orphaned entry)",
							node, line, e.owner))
					}
				}
			}
			if nm.rcSt != nil {
				if nm.rcSt.outstanding != 0 || len(nm.rcSt.pending) != 0 {
					bad = append(bad, fmt.Sprintf("node %d write buffer not drained at quiescence: %d outstanding, %d pending values",
						node, nm.rcSt.outstanding, len(nm.rcSt.pending)))
				}
			}
		}
	}

	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return &InvariantError{Violations: bad}
}

// BusyDump lists directory entries currently serving a transaction (with
// their queue depths) and nodes with pending miss transactions, at most
// max entries (0 = no limit). Used by watchdog diagnostics when a run
// stalls mid-protocol.
func (s *System) BusyDump(max int) []string {
	var out []string
	add := func(line string) bool {
		out = append(out, line)
		return max > 0 && len(out) >= max
	}
	for node, nm := range s.nodes {
		// Deterministic order over map-keyed state.
		var ls []Addr
		for l, e := range nm.dir.entries {
			if e.busy || len(e.queue) > 0 {
				ls = append(ls, l)
			}
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		for _, l := range ls {
			e := nm.dir.entries[l]
			if add(fmt.Sprintf("home %d line %d busy (state=%d owner=%d sharers=%d queued=%d)",
				node, l, e.state, e.owner, e.sharers.count(), len(e.queue))) {
				return out
			}
		}
		ls = ls[:0]
		for l := range nm.pending {
			ls = append(ls, l)
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		for _, l := range ls {
			t := nm.pending[l]
			if add(fmt.Sprintf("node %d pending txn line %d (write=%v granted=%v waiters=%d)",
				node, l, t.write, t.granted, len(t.waiters))) {
				return out
			}
		}
	}
	return out
}
