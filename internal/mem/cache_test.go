package mem

import (
	"testing"
	"testing/quick"
)

func newTestCache() *cache {
	p := DefaultParams()
	p.CacheLines = 64
	p.PrefetchEntries = 4
	return newCache(p)
}

func TestCacheFillLookup(t *testing.T) {
	c := newTestCache()
	if c.lookup(10) != lineInvalid {
		t.Error("empty cache returned a hit")
	}
	victim, dirty, _ := c.fill(10, lineShared, 0)
	if victim != NilAddr || dirty {
		t.Errorf("fill into empty frame evicted %d dirty=%v", victim, dirty)
	}
	if c.lookup(10) != lineShared {
		t.Error("filled line not found")
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := newTestCache() // 64 lines: 10 and 74 conflict
	c.fill(10, lineModified, 0)
	victim, dirty, _ := c.fill(74, lineShared, 0)
	if victim != 10 || !dirty {
		t.Errorf("conflict fill: victim=%d dirty=%v, want 10 dirty", victim, dirty)
	}
	if c.lookup(10) != lineInvalid {
		t.Error("evicted line still present")
	}
	if c.lookup(74) != lineShared {
		t.Error("new line absent")
	}
}

func TestCacheRefillSameLineNoVictim(t *testing.T) {
	c := newTestCache()
	c.fill(10, lineShared, 0)
	victim, dirty, _ := c.fill(10, lineModified, 0)
	if victim != NilAddr || dirty {
		t.Errorf("same-line refill produced victim %d", victim)
	}
	if c.lookup(10) != lineModified {
		t.Error("state not upgraded")
	}
}

func TestCacheInvalidateAndDowngrade(t *testing.T) {
	c := newTestCache()
	c.fill(5, lineModified, 0)
	c.downgrade(5)
	if c.lookup(5) != lineShared {
		t.Error("downgrade failed")
	}
	if wasDirty := c.invalidate(5); wasDirty {
		t.Error("downgraded line reported dirty on invalidate")
	}
	if c.lookup(5) != lineInvalid {
		t.Error("invalidate failed")
	}
	// Invalidating an absent line is a no-op.
	if c.invalidate(99) {
		t.Error("absent line reported dirty")
	}
}

func TestPrefetchBufferFIFO(t *testing.T) {
	c := newTestCache() // 4 pf entries
	for i := Addr(0); i < 4; i++ {
		if ev, _, _ := c.pfFill(100+i, lineShared, 0); ev != NilAddr {
			t.Fatalf("early eviction of %d", ev)
		}
	}
	ev, dirty, _ := c.pfFill(200, lineModified, 0)
	if ev != 100 || dirty {
		t.Errorf("FIFO eviction = %d dirty=%v, want 100 clean", ev, dirty)
	}
	if c.pfLookup(100) >= 0 {
		t.Error("evicted pf entry still found")
	}
	if i := c.pfLookup(200); i < 0 || c.pf[i].state != lineModified {
		t.Error("new pf entry missing or wrong state")
	}
}

func TestPrefetchBufferTakeAndInvalidate(t *testing.T) {
	c := newTestCache()
	c.pfFill(42, lineModified, 0)
	i := c.pfLookup(42)
	if i < 0 {
		t.Fatal("pf entry missing")
	}
	if st, _ := c.pfTake(i); st != lineModified {
		t.Errorf("pfTake state = %d", st)
	}
	if c.pfLookup(42) >= 0 {
		t.Error("taken entry still present")
	}
	c.pfFill(43, lineModified, 0)
	if !c.invalidate(43) {
		t.Error("invalidate of modified pf entry should report dirty")
	}
	if c.pfLookup(43) >= 0 {
		t.Error("invalidated pf entry still present")
	}
}

func TestCacheHasCoversBoth(t *testing.T) {
	c := newTestCache()
	c.fill(1, lineShared, 0)
	c.pfFill(2, lineShared, 0)
	if !c.has(1) || !c.has(2) || c.has(3) {
		t.Error("has() wrong")
	}
}

// Property: after any sequence of fills, lookup(line) hits iff line was
// the most recent fill of its frame.
func TestCacheDirectMappedProperty(t *testing.T) {
	prop := func(lines []uint8) bool {
		c := newTestCache()
		last := map[Addr]Addr{} // frame -> line
		for _, l := range lines {
			line := Addr(l)
			c.fill(line, lineShared, 0)
			last[line%64] = line
		}
		for frame, line := range last {
			if c.lookup(line) == lineInvalid {
				return false
			}
			_ = frame
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSharerSetOps(t *testing.T) {
	var s sharerSet
	s.add(3)
	s.add(17)
	s.add(3)
	if s.count() != 2 || !s.has(3) || !s.has(17) || s.has(4) {
		t.Errorf("set ops wrong: %b", s)
	}
	var visited []int
	s.forEach(func(n int) { visited = append(visited, n) })
	if len(visited) != 2 || visited[0] != 3 || visited[1] != 17 {
		t.Errorf("forEach = %v", visited)
	}
	s.remove(3)
	if s.has(3) || s.count() != 1 {
		t.Error("remove failed")
	}
}
