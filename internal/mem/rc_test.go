package mem

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newRCRig() *testRig {
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223})
	clk := sim.NewClock(20)
	st := NewStore(32)
	par := DefaultParams()
	par.Consistency = RC
	sys := NewSystem(eng, net, clk, par, st)
	return &testRig{eng: eng, net: net, clk: clk, st: st, sys: sys}
}

func TestRCStoreDoesNotBlock(t *testing.T) {
	r := newRCRig()
	a := r.st.Alloc(7, 2) // remote
	var storeCyc float64
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		storeCyc = r.cycles(th, func() {
			r.sys.StoreWord(th, 0, a, 5.0, &bd, stats.BucketMemWait)
		})
	})
	// SC would stall ~42 cycles; RC retires in ~1.
	if storeCyc > 5 {
		t.Errorf("RC remote store took %.1f cycles, want ~1 (buffered)", storeCyc)
	}
	// The value still lands (after the machine quiesces).
	if got := r.st.Peek(a); got != 5.0 {
		t.Errorf("buffered store never applied: %v", got)
	}
}

func TestRCReadOwnWriteForwards(t *testing.T) {
	r := newRCRig()
	a := r.st.Alloc(7, 2)
	var got float64
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.StoreWord(th, 0, a, 9.0, &bd, stats.BucketMemWait)
		// Immediately read back: must see own store via forwarding.
		got = r.sys.Load(th, 0, a, &bd, stats.BucketMemWait)
	})
	if got != 9.0 {
		t.Errorf("read-own-write = %v, want 9", got)
	}
}

func TestRCFenceDrains(t *testing.T) {
	r := newRCRig()
	addrs := make([]Addr, 6)
	for i := range addrs {
		addrs[i] = r.st.Alloc((i*5+3)%32, 2)
	}
	var bd stats.Breakdown
	var fenceCyc float64
	r.run(func(th *sim.Thread) {
		for i, a := range addrs {
			r.sys.StoreWord(th, 0, a, float64(i+1), &bd, stats.BucketMemWait)
		}
		fenceCyc = r.cycles(th, func() {
			r.sys.Fence(th, 0, &bd, stats.BucketMemWait)
		})
		// After the fence every value is globally visible.
		for i, a := range addrs {
			if got := r.st.Peek(a); got != float64(i+1) {
				t.Errorf("addr %d = %v after fence, want %d", i, got, i+1)
			}
		}
	})
	if fenceCyc < 10 {
		t.Errorf("fence of 6 remote stores took %.1f cycles; should wait for completions", fenceCyc)
	}
}

func TestRCWriteBufferBackpressure(t *testing.T) {
	r := newRCRig()
	n := r.sys.Params().WriteBufferDepth + 4
	addrs := make([]Addr, n)
	for i := range addrs {
		addrs[i] = r.st.Alloc((i*3+1)%32, 2)
	}
	var bd stats.Breakdown
	var total float64
	r.run(func(th *sim.Thread) {
		total = r.cycles(th, func() {
			for i, a := range addrs {
				r.sys.StoreWord(th, 0, a, float64(i), &bd, stats.BucketMemWait)
			}
		})
	})
	// With depth 8 and 12 stores, some stores must have stalled.
	if total < 30 {
		t.Errorf("12 buffered remote stores took %.1f cycles; buffer depth not enforced", total)
	}
}

func TestRCAtomicsFence(t *testing.T) {
	r := newRCRig()
	data := r.st.Alloc(5, 2)
	flag := r.st.Alloc(9, 2)
	var seen float64 = -1
	var bd1, bd2 stats.Breakdown
	r.run(
		func(th *sim.Thread) {
			r.sys.StoreWord(th, 0, data, 42, &bd1, stats.BucketMemWait)
			// RMW fences the buffered store before setting the flag.
			r.sys.RMW(th, 0, flag, func(float64) float64 { return 1 }, &bd1, stats.BucketSync)
		},
		func(th *sim.Thread) {
			for r.sys.Load(th, 16, flag, &bd2, stats.BucketSync) != 1 {
				th.Sleep(r.clk.Cycles(50))
			}
			seen = r.sys.Load(th, 16, data, &bd2, stats.BucketMemWait)
		},
	)
	if seen != 42 {
		t.Errorf("consumer saw %v after acquire, want 42 (release ordering broken)", seen)
	}
}

func TestRCLastStoreWins(t *testing.T) {
	r := newRCRig()
	a := r.st.Alloc(7, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.StoreWord(th, 0, a, 1, &bd, stats.BucketMemWait)
		r.sys.StoreWord(th, 0, a, 2, &bd, stats.BucketMemWait)
		r.sys.StoreWord(th, 0, a, 3, &bd, stats.BucketMemWait)
		r.sys.Fence(th, 0, &bd, stats.BucketMemWait)
	})
	if got := r.st.Peek(a); got != 3 {
		t.Errorf("final value %v, want 3", got)
	}
}

func TestSCFenceIsNoOp(t *testing.T) {
	r := newRig() // SC rig
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		start := th.Now()
		r.sys.Fence(th, 0, &bd, stats.BucketMemWait)
		if th.Now() != start {
			t.Error("SC fence consumed time")
		}
	})
}

func TestConsistencyString(t *testing.T) {
	if SC.String() != "sequential-consistency" || RC.String() != "release-consistency" {
		t.Error("consistency strings wrong")
	}
}
