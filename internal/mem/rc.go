package mem

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Consistency selects the memory consistency model.
type Consistency int

const (
	// SC is sequential consistency: every store stalls the processor
	// until ownership is held (Alewife's model; the paper's baseline).
	SC Consistency = iota
	// RC is release consistency with blocking loads: stores retire into
	// a finite write buffer and complete asynchronously; synchronization
	// operations (RMW/Update, and explicit Fences at lock releases)
	// drain the buffer. This is the latency-tolerance technique the
	// paper's Section 2 describes but Alewife did not implement — built
	// here as an extension and exercised by the ablation benchmarks.
	RC
)

func (c Consistency) String() string {
	if c == RC {
		return "release-consistency"
	}
	return "sequential-consistency"
}

// rcState is the per-node write-buffer state used under RC.
type rcState struct {
	// values pending per address (latest store wins; loads forward).
	pending map[Addr]float64
	// outstanding counts write transactions issued by buffered stores.
	outstanding int
	// waiters are threads blocked in Fence (or on a full buffer).
	waiters []waiter
}

func (nm *nodeMem) rc() *rcState {
	if nm.rcSt == nil {
		nm.rcSt = &rcState{pending: make(map[Addr]float64)}
	}
	return nm.rcSt
}

// StoreWordRelaxed is the RC store path: it never blocks unless the write
// buffer is full. Visibility is guaranteed only after a Fence (or an
// atomic operation, which fences implicitly).
//
//lint:tilelocal node
func (s *System) storeRelaxed(th *sim.Thread, node int, a Addr, v float64, bd *stats.Breakdown, bucket stats.TimeBucket) {
	nm := s.nodes[node]
	rc := nm.rc()
	line := LineOf(a, s.par.LineWords)

	// Retire into the buffer (loads will forward from here).
	rc.pending[a] = v
	apply := func() {
		// Apply the latest buffered value; a newer store to the same
		// address may have superseded v.
		if cur, ok := rc.pending[a]; ok {
			s.store.Poke(a, cur)
			delete(rc.pending, a)
		}
		rc.outstanding--
		s.wakeRC(node, rc)
	}

	if t := nm.pending[line]; t != nil && t.write {
		// Join the in-flight write transaction without blocking.
		rc.outstanding++
		t.onComplete = append(t.onComplete, apply)
		s.chargeStoreIssue(th, bd)
		return
	}
	if st := nm.cache.lookup(line); st == lineModified {
		// Ownership already held: complete immediately.
		s.store.Poke(a, v)
		delete(rc.pending, a)
		d := s.cyc(s.par.HitCycles)
		bd.Add(stats.BucketCompute, d)
		th.Sleep(d)
		return
	}
	if t := nm.pending[line]; t != nil {
		// A read transaction is in flight; wait it out, then retry (the
		// rare case — still non-blocking in the common paths).
		s.wait(t, th, bd, bucket)
		s.storeRelaxed(th, node, a, v, bd, bucket)
		return
	}
	if i := nm.cache.pfLookup(line); i >= 0 {
		// A prefetched copy exists: consume it (leaving it would strand a
		// duplicate — and possibly second-Modified — copy in the prefetch
		// buffer once the store's own fill lands in the cache).
		pst, pgen := nm.cache.pfTake(i)
		s.installLine(node, line, pst, pgen)
		s.evs[node].PrefetchUseful++
		if pst == lineModified {
			// Prefetched ownership: the store completes locally.
			s.store.Poke(a, v)
			delete(rc.pending, a)
			d := s.cyc(s.par.PrefetchMoveCycles)
			bd.Add(stats.BucketCompute, d)
			th.Sleep(d)
			return
		}
		// Shared copy promoted to cache; fall through to the upgrade.
	}

	// Full buffer applies back-pressure.
	for rc.outstanding >= s.par.WriteBufferDepth {
		rc.waiters = append(rc.waiters, waiter{th: th, bd: bd, bucket: bucket, start: th.Now()})
		th.SetWaitReason("rc-buffer-full", int64(rc.outstanding))
		th.Pause()
	}

	rc.outstanding++
	t := s.startTxn(node, line, true, false)
	t.onComplete = append(t.onComplete, apply)
	s.chargeStoreIssue(th, bd)
}

// chargeStoreIssue charges the small processor-side cost of issuing a
// buffered store.
func (s *System) chargeStoreIssue(th *sim.Thread, bd *stats.Breakdown) {
	d := s.cyc(s.par.HitCycles)
	bd.Add(stats.BucketCompute, d)
	th.Sleep(d)
}

// wakeRC wakes all fence/full-buffer waiters to recheck their condition.
//
//lint:tilelocal node
func (s *System) wakeRC(node int, rc *rcState) {
	ws := rc.waiters
	rc.waiters = nil
	now := s.engAt(node).Now()
	for _, w := range ws {
		w.bd.Add(w.bucket, now-w.start)
		w.th.WakeAt(now)
	}
}

// Fence blocks until every buffered store by node has completed. A no-op
// under sequential consistency (stores already blocked).
//
//lint:tilelocal node
func (s *System) Fence(th *sim.Thread, node int, bd *stats.Breakdown, bucket stats.TimeBucket) {
	if s.par.Consistency != RC {
		return
	}
	rc := s.nodes[node].rc()
	for rc.outstanding > 0 {
		rc.waiters = append(rc.waiters, waiter{th: th, bd: bd, bucket: bucket, start: th.Now()})
		th.SetWaitReason("rc-fence", int64(rc.outstanding))
		th.Pause()
	}
}

// rcForward returns the pending buffered value for a, if any (RC loads
// must observe the node's own program order).
//
//lint:tilelocal node
func (s *System) rcForward(node int, a Addr) (float64, bool) {
	if s.par.Consistency != RC {
		return 0, false
	}
	nm := s.nodes[node]
	if nm.rcSt == nil {
		return 0, false
	}
	v, ok := nm.rcSt.pending[a]
	return v, ok
}
