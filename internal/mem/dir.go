package mem

import "math/bits"

// sharerSet is a bitset of node ids (the simulator supports up to 64
// nodes; Alewife and every Table 1 machine has 32).
type sharerSet uint64

func (s sharerSet) has(n int) bool { return s&(1<<uint(n)) != 0 }
func (s *sharerSet) add(n int)     { *s |= 1 << uint(n) }
func (s *sharerSet) remove(n int)  { *s &^= 1 << uint(n) }
func (s sharerSet) count() int     { return bits.OnesCount64(uint64(s)) }
func (s sharerSet) forEach(f func(int)) {
	for v := uint64(s); v != 0; {
		n := bits.TrailingZeros64(v)
		v &^= 1 << uint(n)
		f(n)
	}
}

// Directory states for a line at its home node.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirModified
)

// dirEntry is the home-side directory record for one line. Entries are
// created on first touch; absence means dirUncached with no sharers.
type dirEntry struct {
	state   dirState
	owner   int
	sharers sharerSet

	// busy serializes multi-message transactions (invalidation rounds,
	// owner fetches). Requests arriving while busy queue FIFO.
	busy  bool
	queue []func()
}

// directory is one node's home directory.
type directory struct {
	entries map[Addr]*dirEntry
}

func newDirectory() *directory {
	return &directory{entries: make(map[Addr]*dirEntry)}
}

func (d *directory) entry(line Addr) *dirEntry {
	e := d.entries[line]
	if e == nil {
		e = &dirEntry{state: dirUncached, owner: -1}
		d.entries[line] = e
	}
	return e
}
