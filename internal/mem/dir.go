package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxNodes is the largest machine the directory can track sharers for:
// the sharer bitset is a fixed-size array (pure value semantics — no
// aliasing between directory entries or snapshots taken by in-flight
// invalidation rounds), sized for the scale-out geometries (32-512
// nodes; Alewife and every Table 1 machine has 32).
const MaxNodes = 512

// sharerSet is a bitset of node ids, capacity MaxNodes. It is a value
// type: copies (e.g. the sharer snapshot an invalidation round walks
// while the live entry is rewritten) never alias.
type sharerSet [MaxNodes / 64]uint64

func (s *sharerSet) has(n int) bool { return s[n>>6]&(1<<uint(n&63)) != 0 }
func (s *sharerSet) add(n int)      { s[n>>6] |= 1 << uint(n&63) }
func (s *sharerSet) remove(n int)   { s[n>>6] &^= 1 << uint(n&63) }

func (s *sharerSet) count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// forEach visits set node ids in ascending order (determinism: every
// invalidation fan-out walks sharers in the same order).
func (s *sharerSet) forEach(f func(int)) {
	for wi, w := range s {
		for w != 0 {
			n := bits.TrailingZeros64(w)
			w &^= 1 << uint(n)
			f(wi<<6 | n)
		}
	}
}

// String renders the set as a node-id list for diagnostics.
func (s sharerSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.forEach(func(n int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", n)
	})
	b.WriteByte('}')
	return b.String()
}

// Directory states for a line at its home node.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirModified
)

// dirEntry is the home-side directory record for one line. Entries are
// created on first touch; absence means dirUncached with no sharers.
type dirEntry struct {
	state   dirState
	owner   int
	sharers sharerSet

	// busy serializes multi-message transactions (invalidation rounds,
	// owner fetches). Requests arriving while busy queue FIFO.
	busy  bool
	queue []func()

	// modGen counts Modified-ownership grants for this line. The grant
	// reply carries the value to the new owner's cache, and an eviction
	// write-back echoes it back, so home can recognize a stale
	// write-back (one overtaken by the evictor's re-acquisition) from
	// home-side state alone — under the tiled engine the evictor's cache
	// and pending set belong to another tile and must not be read here.
	modGen uint64
}

// directory is one node's home directory.
type directory struct {
	entries map[Addr]*dirEntry
}

func newDirectory() *directory {
	return &directory{entries: make(map[Addr]*dirEntry)}
}

func (d *directory) entry(line Addr) *dirEntry {
	e := d.entries[line]
	if e == nil {
		e = &dirEntry{state: dirUncached, owner: -1}
		d.entries[line] = e
	}
	return e
}
