// Package mem simulates the Alewife memory system: per-node direct-mapped
// caches, a LimitLESS-style directory cache-coherence protocol under
// sequential consistency, software prefetch with a prefetch buffer, and
// the authoritative backing store for shared data.
//
// Timing follows the paper's Figure 3 cost table: an 11-cycle local miss,
// remote clean/dirty misses of roughly 42/63 processor cycles plus 1.6
// cycles per network hop (round trip), and a ~425-cycle software handler
// when a line's sharer count overflows the directory's five hardware
// pointers. Controller and DRAM costs are expressed in processor cycles
// (the CMMU is clocked with the processor); network transit is wall-clock
// time, which is what makes the paper's clock-scaling experiment work.
package mem
