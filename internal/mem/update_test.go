package mem

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newUpdateRig() *testRig {
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223})
	clk := sim.NewClock(20)
	st := NewStore(32)
	par := DefaultParams()
	par.Protocol = ProtocolUpdate
	sys := NewSystem(eng, net, clk, par, st)
	return &testRig{eng: eng, net: net, clk: clk, st: st, sys: sys}
}

func TestUpdateProtocolReadersKeepCopies(t *testing.T) {
	r := newUpdateRig()
	a := r.st.Alloc(4, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		// Two readers cache the line.
		r.sys.Load(th, 1, a, &bd, stats.BucketMemWait)
		r.sys.Load(th, 2, a, &bd, stats.BucketMemWait)
		// A write pushes updates instead of invalidating.
		r.sys.StoreWord(th, 3, a, 7.5, &bd, stats.BucketMemWait)
		if !r.sys.CacheHas(1, a) || !r.sys.CacheHas(2, a) {
			t.Error("update protocol invalidated reader copies")
		}
		// Readers hit and see the new value.
		start := th.Now()
		if v := r.sys.Load(th, 1, a, &bd, stats.BucketMemWait); v != 7.5 {
			t.Errorf("reader saw %v, want 7.5", v)
		}
		if hit := r.clk.ToCyclesF(th.Now() - start); hit > 2 {
			t.Errorf("post-update read took %.1f cycles, want a hit", hit)
		}
	})
	if r.sys.Events().Invalidations != 0 {
		t.Errorf("update protocol sent %d invalidations", r.sys.Events().Invalidations)
	}
}

func TestUpdateProtocolWriterStaysShared(t *testing.T) {
	r := newUpdateRig()
	a := r.st.Alloc(4, 2)
	var bd stats.Breakdown
	var first, second float64
	r.run(func(th *sim.Thread) {
		r.sys.Load(th, 1, a, &bd, stats.BucketMemWait) // a sharer exists
		first = r.cycles(th, func() { r.sys.StoreWord(th, 3, a, 1, &bd, stats.BucketMemWait) })
		// Writer got a shared copy: the next store is another round trip,
		// not a hit.
		second = r.cycles(th, func() { r.sys.StoreWord(th, 3, a, 2, &bd, stats.BucketMemWait) })
	})
	if second < first/2 {
		t.Errorf("second store %.1f cycles vs first %.1f; write-through should not own the line",
			second, first)
	}
}

func TestUpdateProtocolAtomicsStillExclusive(t *testing.T) {
	r := newUpdateRig()
	a := r.st.Alloc(0, 2)
	const per = 30
	bodies := make([]func(*sim.Thread), 6)
	bds := make([]stats.Breakdown, 6)
	for i := range bodies {
		node, bd := i*5, &bds[i]
		bodies[i] = func(th *sim.Thread) {
			for k := 0; k < per; k++ {
				r.sys.RMW(th, node, a, func(v float64) float64 { return v + 1 }, bd, stats.BucketSync)
			}
		}
	}
	r.run(bodies...)
	if got := r.st.Peek(a); got != 6*per {
		t.Errorf("RMW total under update protocol = %v, want %d", got, 6*per)
	}
}

func TestUpdateProtocolProducerConsumerVolume(t *testing.T) {
	// Steady-state producer->consumer: invalidation pays ~4 messages per
	// value (invalidate, ack, re-request, refill); update pays the
	// write-through round plus one update, and the consumer's read is a
	// hit. With one consumer re-reading every value, update should move
	// fewer bytes.
	measure := func(update bool) int64 {
		var r *testRig
		if update {
			r = newUpdateRig()
		} else {
			r = newRig()
		}
		a := r.st.Alloc(4, 2)
		var bd stats.Breakdown
		var delta int64
		r.run(func(th *sim.Thread) {
			// Warm: consumer holds a copy.
			r.sys.StoreWord(th, 1, a, 0, &bd, stats.BucketMemWait)
			r.sys.Load(th, 2, a, &bd, stats.BucketMemWait)
			before := r.net.Volume().Total()
			for i := 0; i < 10; i++ {
				r.sys.StoreWord(th, 1, a, float64(i), &bd, stats.BucketMemWait)
				if v := r.sys.Load(th, 2, a, &bd, stats.BucketMemWait); v != float64(i) {
					t.Errorf("consumer saw %v, want %d", v, i)
				}
			}
			delta = r.net.Volume().Total() - before
		})
		return delta
	}
	inval := measure(false)
	upd := measure(true)
	if upd >= inval {
		t.Errorf("update volume %d >= invalidate %d for producer-consumer", upd, inval)
	}
}
